// Public header: support utilities shared with examples and benches —
// precondition checks, deterministic RNG, wall-clock timer, the thread pool
// knobs, and the ASCII table/plot helpers the bench drivers print with.
#pragma once

#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/plot.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
