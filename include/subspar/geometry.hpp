// Public header: contact-layout geometry — Layout/Contact/Rect, the paper's
// example-layout generators, polynomial moments, and the multilevel QuadTree.
#pragma once

#include "geometry/layout.hpp"
#include "geometry/layout_gen.hpp"
#include "geometry/moments.hpp"
#include "geometry/quadtree.hpp"
