// Public header: the two sparsification methods at fine grain — wavelet
// basis/pattern/extraction (Chapter 3) and the low-rank row-basis pipeline
// (Chapter 4). Most callers want the Extractor in subspar/extraction.hpp
// instead; this header serves benches and research code that dissect the
// individual phases (basis construction, combine-solves, thresholding).
#pragma once

#include "lowrank/extract.hpp"
#include "lowrank/fine_to_coarse.hpp"
#include "lowrank/row_basis.hpp"
#include "wavelet/basis.hpp"
#include "wavelet/extract.hpp"
#include "wavelet/pattern.hpp"
#include "wavelet/transform_basis.hpp"
