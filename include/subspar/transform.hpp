// Public header: fast transforms (FFT, DCT, fast Poisson) — exposed for the
// micro-kernel benches and for callers embedding the eigenfunction operator.
#pragma once

#include "transform/dct.hpp"
#include "transform/fft.hpp"
#include "transform/poisson.hpp"
