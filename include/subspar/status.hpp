// Public header: the structured error model of the extraction pipeline.
//
// Every failure mode the stack can hit — an iterative solver that never
// converges, numerical garbage (NaN/Inf) crossing a phase boundary, a
// corrupt or torn cache file, a transient IO error — maps to one ErrorCode,
// tagged with the pipeline phase it surfaced in and a human-readable detail
// string. Extractor::extract throws the typed ExtractionException;
// Extractor::try_extract returns the same information as a Status value for
// callers (job engines, services) that prefer error returns over exceptions.
//
// Recovered faults are NOT errors: the fallback chains (linalg/robust.hpp,
// the per-square RBK fallback, the cache quarantine path) report what they
// did through ExtractionReport::fallbacks and the per-phase diagnostics, and
// the extraction still succeeds. An ExtractionError means every fallback was
// exhausted.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace subspar {

/// Failure taxonomy of the extraction stack.
enum class ErrorCode {
  kOk = 0,
  kInvalidRequest,        ///< request/option validation failed
  kSolverNonConvergence,  ///< iterative solve failed after every fallback
  kNumericalBreakdown,    ///< NaN/Inf crossed a phase boundary
  kCacheCorruption,       ///< persisted model failed integrity checks
  kIoError,               ///< file read/write failure
  kCancelled,             ///< cooperative cancellation via a CancelToken
  kDeadlineExceeded,      ///< per-request deadline expired mid-pipeline
  kOverloaded,            ///< service queue full; request shed at admission
  kInternal,              ///< invariant violation / unclassified failure
};

/// Stable short name of a code ("solver-non-convergence", ...).
const char* error_code_name(ErrorCode code);

/// One structured failure: what went wrong, where in the pipeline, and the
/// underlying detail (typically the inner exception's message).
struct ExtractionError {
  ErrorCode code = ErrorCode::kOk;
  std::string phase;   ///< pipeline phase ("validate", "row-basis", ...)
  std::string detail;  ///< underlying cause, human-readable

  /// "<code-name> in phase '<phase>': <detail>".
  std::string message() const;
};

/// The typed exception Extractor::extract throws on unrecoverable failure.
/// Derives from std::runtime_error so pre-existing catch sites keep working;
/// the structured payload is available via error().
class ExtractionException : public std::runtime_error {
 public:
  explicit ExtractionException(ExtractionError error)
      : std::runtime_error(error.message()), error_(std::move(error)) {}

  const ExtractionError& error() const { return error_; }
  ErrorCode code() const { return error_.code; }
  const std::string& phase() const { return error_.phase; }

 private:
  ExtractionError error_;
};

/// Error-return counterpart of ExtractionException: default-constructed is
/// success, otherwise carries the ExtractionError. Returned by
/// Extractor::try_extract.
class Status {
 public:
  Status() = default;  // success
  explicit Status(ExtractionError error) : error_(std::move(error)) {}

  bool ok() const { return error_.code == ErrorCode::kOk; }
  explicit operator bool() const { return ok(); }
  ErrorCode code() const { return error_.code; }
  const ExtractionError& error() const { return error_; }
  /// "ok" on success, ExtractionError::message() otherwise.
  std::string message() const;

 private:
  ExtractionError error_;
};

}  // namespace subspar
