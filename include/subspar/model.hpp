// Public header: the SparsifiedModel (Q, G_w and its apply operators) and
// its serialization (save_model / load_model, ModelIoError).
//
// Also re-exports the seed-era free-function facade `extract_sparsified`,
// which is deprecated in favor of the Extractor pipeline in
// subspar/extraction.hpp and kept for one release as a thin wrapper.
#pragma once

#include "core/extractor.hpp"
#include "core/io.hpp"
