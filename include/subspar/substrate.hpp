// Public header: the substrate model and the black-box solver interface —
// SubstrateStack (layer profile), SubstrateSolver (the §2.1 black box) and
// its concrete discretizations. Prefer constructing solvers through the
// registry in subspar/solvers.hpp; the concrete types are exposed for
// callers that need solver-specific introspection (iteration stats, volume
// fields, multigrid levels).
#pragma once

#include "substrate/eigen_solver.hpp"
#include "substrate/fd_solver.hpp"
#include "substrate/multigrid.hpp"
#include "substrate/solver.hpp"
#include "substrate/stack.hpp"
