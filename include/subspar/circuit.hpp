// Public header: the small MNA circuit layer (netlist + transient simulator)
// used to drop a sparsified substrate model into a circuit simulation
// (§5.2 / the substrate_transient example).
#pragma once

#include "circuit/netlist.hpp"
#include "circuit/simulator.hpp"
