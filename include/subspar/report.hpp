// Public header: accuracy/sparsity scoring of a sparsified model against
// exact black-box columns — the ErrorStats machinery behind the paper's
// tables (§3.7).
#pragma once

#include "core/report.hpp"
