// Public header: the ExtractionRequest -> ExtractionResult pipeline.
//
// The Extractor owns everything between "here is a black-box solver over a
// contact layout" and "here is a sparse substrate model plus a structured
// account of what building it cost": option validation, the quadtree build,
// method dispatch (wavelet / low-rank, optional thresholding), deterministic
// seeding, per-phase timing, and an optional progress callback. Extract once
// per (solver, layout); issue as many requests as needed — or put a
// ModelCache (subspar/cache.hpp) in front so identical requests cost an
// apply instead of a re-extraction.
//
// The seed-era free function `extract_sparsified` (subspar/model.hpp) now
// delegates here and is deprecated.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/extractor.hpp"
#include "geometry/quadtree.hpp"
#include "substrate/solver.hpp"
#include "subspar/status.hpp"
#include "util/cancel.hpp"

namespace subspar {

/// Invoked after each completed pipeline phase with the phase name and its
/// wall-clock seconds. Phases run on the calling thread.
using ProgressCallback = std::function<void(const std::string& phase, double seconds)>;

/// Everything that determines an extraction, in one value. Field semantics
/// match the deprecated ExtractorOptions; `progress` is observational only
/// and excluded from cache keys.
struct ExtractionRequest {
  /// Which sparsification algorithm builds the change of basis Q.
  SparsifyMethod method = SparsifyMethod::kLowRank;
  /// Wavelet moment order (Chapter 3; the paper uses 2).
  int moment_order = 2;
  /// Low-rank options, including the deterministic sampling seed (Chapter 4).
  LowRankOptions lowrank;
  /// If > 1, additionally threshold G_w to ~this multiple of its
  /// conservative sparsity factor (the paper uses 6; §3.7 / §4.6). 0 = off.
  double threshold_sparsity_multiple = 0.0;
  /// Optional per-phase progress notifications.
  ProgressCallback progress;
  /// Optional cooperative cancellation/deadline token. The Extractor
  /// installs it for the duration of the pipeline and checks it at phase
  /// boundaries, at every black-box solve batch, and inside the pcg_block /
  /// RBK iteration loops; a tripped token surfaces as
  /// ErrorCode::kCancelled / kDeadlineExceeded. Observational only —
  /// excluded from cache keys, like `progress`.
  std::shared_ptr<CancelToken> cancel;
};

/// Validates a request; throws std::invalid_argument naming the offending
/// field. Called by Extractor::extract (and ModelCache) on every request.
void validate(const ExtractionRequest& request);

/// One completed pipeline phase, including the solver diagnostics the phase
/// accumulated (per-phase deltas of SolverDiagnostics). On a healthy run
/// `converged` is true and the retry/fallback counters are zero.
struct PhaseTiming {
  std::string phase;
  double seconds = 0.0;
  long solves = 0;  ///< black-box solves consumed by the phase
  long iterations = 0;  ///< inner PCG iterations spent inside the phase
  bool converged = true;  ///< false if any iterative attempt hit max_iterations
  long retries = 0;  ///< fallback-chain restarts (incl. tighter-precond restarts)
  long fallback_columns = 0;  ///< columns recovered by the dense direct fallback
  double worst_residual = 0.0;  ///< worst verified residual among recovered columns
};

/// Cache-event counters: per-request in ExtractionReport::cache (only the
/// fields touched by that request are nonzero), cumulative in
/// ModelCache::stats(). Hits include disk loads; disk_loads counts the
/// subset of hits served from the persist directory rather than memory.
struct CacheEvents {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t disk_loads = 0;
  std::size_t corruptions = 0;      ///< persisted files that failed load/validation
  std::size_t quarantines = 0;      ///< corrupt files renamed aside (.quarantined.N)
  std::size_t write_failures = 0;   ///< persist writes that failed (result still served)
  std::size_t evictions = 0;        ///< entries dropped by the LRU memory budget
};

/// Structured account of one extraction: what it cost and what it produced,
/// replacing printf side channels. `solves`/`seconds` are the cost of *this
/// request* (0 / lookup time for a cache hit); the sparsity and reduction
/// ratios always describe the returned model.
struct ExtractionReport {
  std::size_t n = 0;             ///< model dimension (number of contacts)
  long solves = 0;               ///< black-box solves consumed by this request
  double seconds = 0.0;          ///< wall-clock seconds of this request
  double gw_sparsity = 0.0;      ///< n^2 / nnz(G_w)
  double q_sparsity = 0.0;       ///< n^2 / nnz(Q)
  double solve_reduction = 0.0;  ///< n / solves that built the model
  bool from_cache = false;       ///< true when served by a ModelCache hit
  std::vector<PhaseTiming> phases;
  /// How the model's change of basis was built: "wavelet", "column-sampling"
  /// or "block-krylov" (empty on cache hits, which skip the build).
  std::string basis_scheme;
  /// Adaptive rank trajectory of the kBlockKrylov row-basis build, one entry
  /// per (level, sketch round); empty for the other schemes.
  std::vector<RbkStep> rank_trajectory;
  /// One line per degradation the pipeline recovered from (solver fallback
  /// chains, RBK per-square fallbacks, quarantined cache files). Empty on a
  /// healthy run — the model is within the deterministic route's error
  /// bound either way, these record *how* it got there.
  std::vector<std::string> fallbacks;
  /// Non-fatal advisories (e.g. columns that hit max_iterations but were
  /// recovered); also echoed to stderr as one-line warnings.
  std::vector<std::string> warnings;
  /// Retry history when the result was produced by the ExtractionService:
  /// one line per failed attempt that preceded the successful one (empty on
  /// a first-attempt success and on the direct Extractor path).
  std::vector<std::string> attempts;
  /// Cache events attributable to this request (all zero when no ModelCache
  /// was involved).
  CacheEvents cache;
  /// Active SIMD kernel backend ("scalar", "avx2", "avx512", "neon") —
  /// provenance only: the backend never changes results beyond solver
  /// tolerance and is never part of cache keys.
  std::string backend;

  /// One-line human-readable digest.
  std::string summary() const;
};

/// The pipeline product: the model plus its report.
struct ExtractionResult {
  SparsifiedModel model;
  ExtractionReport report;
};

/// The extraction engine. Binds a black-box solver to a contact hierarchy
/// once (the quadtree build is shared by every request), then serves
/// ExtractionRequests.
class Extractor {
 public:
  /// Builds and owns the quadtree over `layout` (forwarding `max_level` to
  /// QuadTree). The solver and layout must outlive the Extractor.
  Extractor(const SubstrateSolver& solver, const Layout& layout, int max_level = -1);

  /// Borrows an existing quadtree (no rebuild); it must outlive the
  /// Extractor. This is the constructor the deprecated facade delegates to.
  Extractor(const SubstrateSolver& solver, const QuadTree& tree);

  /// Runs the pipeline: validate -> method dispatch -> optional threshold.
  /// Deterministic for a fixed request (seeding comes from the request).
  /// Throws std::invalid_argument for an invalid request and
  /// ExtractionException (subspar/status.hpp) when every fallback in the
  /// recovery chain is exhausted; recovered degradations are reported via
  /// report.fallbacks instead of thrown.
  ExtractionResult extract(const ExtractionRequest& request = {}) const;

  /// Exception-free variant: runs the same pipeline but returns failures as
  /// a Status (kInvalidRequest / kSolverNonConvergence / kNumericalBreakdown
  /// / kInternal) instead of throwing. On success emplaces into *out and
  /// returns a success Status; on failure *out is reset.
  Status try_extract(const ExtractionRequest& request,
                     std::optional<ExtractionResult>* out) const;

  const SubstrateSolver& solver() const { return *solver_; }
  const QuadTree& tree() const { return *tree_; }
  /// Seconds spent building the owned quadtree (0 for a borrowed tree);
  /// kept out of per-request reports since the build is shared.
  double tree_build_seconds() const { return tree_seconds_; }

 private:
  ExtractionResult extract_impl(const ExtractionRequest& request) const;

  const SubstrateSolver* solver_;
  std::unique_ptr<QuadTree> owned_tree_;
  const QuadTree* tree_;
  double tree_seconds_ = 0.0;
};

}  // namespace subspar
