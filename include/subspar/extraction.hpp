// Public header: the ExtractionRequest -> ExtractionResult pipeline.
//
// The Extractor owns everything between "here is a black-box solver over a
// contact layout" and "here is a sparse substrate model plus a structured
// account of what building it cost": option validation, the quadtree build,
// method dispatch (wavelet / low-rank, optional thresholding), deterministic
// seeding, per-phase timing, and an optional progress callback. Extract once
// per (solver, layout); issue as many requests as needed — or put a
// ModelCache (subspar/cache.hpp) in front so identical requests cost an
// apply instead of a re-extraction.
//
// The seed-era free function `extract_sparsified` (subspar/model.hpp) now
// delegates here and is deprecated.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/extractor.hpp"
#include "geometry/quadtree.hpp"
#include "substrate/solver.hpp"

namespace subspar {

/// Invoked after each completed pipeline phase with the phase name and its
/// wall-clock seconds. Phases run on the calling thread.
using ProgressCallback = std::function<void(const std::string& phase, double seconds)>;

/// Everything that determines an extraction, in one value. Field semantics
/// match the deprecated ExtractorOptions; `progress` is observational only
/// and excluded from cache keys.
struct ExtractionRequest {
  /// Which sparsification algorithm builds the change of basis Q.
  SparsifyMethod method = SparsifyMethod::kLowRank;
  /// Wavelet moment order (Chapter 3; the paper uses 2).
  int moment_order = 2;
  /// Low-rank options, including the deterministic sampling seed (Chapter 4).
  LowRankOptions lowrank;
  /// If > 1, additionally threshold G_w to ~this multiple of its
  /// conservative sparsity factor (the paper uses 6; §3.7 / §4.6). 0 = off.
  double threshold_sparsity_multiple = 0.0;
  /// Optional per-phase progress notifications.
  ProgressCallback progress;
};

/// Validates a request; throws std::invalid_argument naming the offending
/// field. Called by Extractor::extract (and ModelCache) on every request.
void validate(const ExtractionRequest& request);

/// One completed pipeline phase.
struct PhaseTiming {
  std::string phase;
  double seconds = 0.0;
  long solves = 0;  ///< black-box solves consumed by the phase
};

/// Structured account of one extraction: what it cost and what it produced,
/// replacing printf side channels. `solves`/`seconds` are the cost of *this
/// request* (0 / lookup time for a cache hit); the sparsity and reduction
/// ratios always describe the returned model.
struct ExtractionReport {
  std::size_t n = 0;             ///< model dimension (number of contacts)
  long solves = 0;               ///< black-box solves consumed by this request
  double seconds = 0.0;          ///< wall-clock seconds of this request
  double gw_sparsity = 0.0;      ///< n^2 / nnz(G_w)
  double q_sparsity = 0.0;       ///< n^2 / nnz(Q)
  double solve_reduction = 0.0;  ///< n / solves that built the model
  bool from_cache = false;       ///< true when served by a ModelCache hit
  std::vector<PhaseTiming> phases;
  /// How the model's change of basis was built: "wavelet", "column-sampling"
  /// or "block-krylov" (empty on cache hits, which skip the build).
  std::string basis_scheme;
  /// Adaptive rank trajectory of the kBlockKrylov row-basis build, one entry
  /// per (level, sketch round); empty for the other schemes.
  std::vector<RbkStep> rank_trajectory;

  /// One-line human-readable digest.
  std::string summary() const;
};

/// The pipeline product: the model plus its report.
struct ExtractionResult {
  SparsifiedModel model;
  ExtractionReport report;
};

/// The extraction engine. Binds a black-box solver to a contact hierarchy
/// once (the quadtree build is shared by every request), then serves
/// ExtractionRequests.
class Extractor {
 public:
  /// Builds and owns the quadtree over `layout` (forwarding `max_level` to
  /// QuadTree). The solver and layout must outlive the Extractor.
  Extractor(const SubstrateSolver& solver, const Layout& layout, int max_level = -1);

  /// Borrows an existing quadtree (no rebuild); it must outlive the
  /// Extractor. This is the constructor the deprecated facade delegates to.
  Extractor(const SubstrateSolver& solver, const QuadTree& tree);

  /// Runs the pipeline: validate -> method dispatch -> optional threshold.
  /// Deterministic for a fixed request (seeding comes from the request).
  ExtractionResult extract(const ExtractionRequest& request = {}) const;

  const SubstrateSolver& solver() const { return *solver_; }
  const QuadTree& tree() const { return *tree_; }
  /// Seconds spent building the owned quadtree (0 for a borrowed tree);
  /// kept out of per-request reports since the build is shared.
  double tree_build_seconds() const { return tree_seconds_; }

 private:
  const SubstrateSolver* solver_;
  std::unique_ptr<QuadTree> owned_tree_;
  const QuadTree* tree_;
  double tree_seconds_ = 0.0;
};

}  // namespace subspar
