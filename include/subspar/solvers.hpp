// Public header: the substrate-solver registry/factory.
//
// Callers name a discretization instead of hardwiring a concrete type:
//
//   auto solver = make_solver(SolverKind::kSurface, layout, stack);
//
// returns the black-box SubstrateSolver interface, so switching between the
// surface eigenfunction solver, the volume finite-difference solver, and
// the multigrid-preconditioned variant is a one-enum change (or a string,
// for CLI/config-driven callers). Out-of-tree solvers plug in through
// register_solver and become constructible by name alongside the built-ins.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "geometry/layout.hpp"
#include "substrate/eigen_solver.hpp"
#include "substrate/fd_solver.hpp"
#include "substrate/solver.hpp"
#include "substrate/stack.hpp"

namespace subspar {

/// The built-in black-box discretizations of the substrate operator G.
enum class SolverKind {
  kSurface,    ///< eigenfunction (DCT) surface solver (§2.3) — fast, layered stacks only
  kFd,         ///< volume finite-difference solver (§2.2) — handles wells, any stack
  kMultigrid,  ///< finite-difference solver with the geometric-multigrid preconditioner
};

/// Union of per-kind construction options. Only the member matching the
/// requested kind is consulted: `surface` for kSurface, `fd` for kFd and
/// kMultigrid (whose preconditioner choice is overridden to multigrid).
///
/// The FD options carry the batched sparse-engine knobs: `fd.reorder`
/// selects the symmetric ordering the IC(0) factor is computed in
/// (SparseReorder::kRcm by default), and `fd.mg_smoother` /
/// `fd.mg_smoothing_sweeps` configure the batched multigrid V-cycle's
/// Gauss-Seidel smoother (lexicographic or red-black). All of them are
/// digested into the solver's cache_tag(), so differently tuned solvers
/// never share ModelCache entries.
struct SolverConfig {
  SurfaceSolverOptions surface{};
  FdSolverOptions fd{};
  /// Solve-precision mode, applied to whichever solver the kind selects
  /// (overrides `surface.precision` / `fd.precision` when set to kMixed):
  /// Precision::kMixed runs batched solves as mixed-precision iterative
  /// refinement — fp32-storage inner sweeps, fp64 true-residual correction,
  /// same rel_tol bound. Digested into cache_tag (kMixed legitimately
  /// changes result bits); the SIMD backend, which does not, never is.
  Precision precision = Precision::kFp64;
};

/// Stable registry name of a built-in kind ("surface", "fd", "multigrid").
const char* solver_kind_name(SolverKind kind);

/// Constructs a solver of the given kind over (layout, stack).
std::unique_ptr<SubstrateSolver> make_solver(SolverKind kind, const Layout& layout,
                                             const SubstrateStack& stack,
                                             const SolverConfig& config = {});

/// Constructs a solver by registry name; throws std::invalid_argument for
/// an unknown name (the message lists the registered names).
std::unique_ptr<SubstrateSolver> make_solver(const std::string& name, const Layout& layout,
                                             const SubstrateStack& stack,
                                             const SolverConfig& config = {});

/// Factory signature for registry entries.
using SolverFactory = std::function<std::unique_ptr<SubstrateSolver>(
    const Layout&, const SubstrateStack&, const SolverConfig&)>;

/// Registers (or replaces) a named factory. The built-ins are pre-registered
/// under their solver_kind_name()s. Thread-safe.
void register_solver(const std::string& name, SolverFactory factory);

/// Sorted names currently registered.
std::vector<std::string> registered_solvers();

}  // namespace subspar
