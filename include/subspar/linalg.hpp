// Public header: dense/sparse linear algebra used at the API boundary —
// Vector/Matrix, SparseMatrix, and the SVD entry points the benches probe.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "linalg/svd.hpp"
#include "linalg/vector.hpp"
