// Public header: dense/sparse linear algebra used at the API boundary —
// Vector/Matrix, the batched CSR SparseMatrix engine (multi-RHS SpMM,
// symmetric permutation, RCM ordering, level-scheduled IC(0)), the
// Preconditioner interface consumed by the blocked PCG, and the SVD entry
// points the benches probe.
#pragma once

#include "linalg/backend.hpp"
#include "linalg/ic0.hpp"
#include "linalg/iterative.hpp"
#include "linalg/matrix.hpp"
#include "linalg/reorder.hpp"
#include "linalg/sparse.hpp"
#include "linalg/svd.hpp"
#include "linalg/vector.hpp"
