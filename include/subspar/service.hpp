// Public header: extraction-as-a-service — the concurrent job engine over
// the ModelCache.
//
// ExtractionService turns the synchronous single-client pipeline
// (subspar/extraction.hpp) into a server-grade front end: submit() accepts
// many concurrent ExtractionRequests and returns ExtractionJob handles; a
// fixed pool of worker threads drains a bounded queue behind them. The
// robustness semantics layered on top:
//
//  * In-flight deduplication. Jobs are keyed by the ModelCache content hash
//    (model_cache_key): the first requester extracts, later requesters of
//    the same key receive a handle to the SAME job and await its result —
//    N clients x M distinct layouts cost exactly M extractions. A job that
//    FAILS is not memoized: its key leaves the in-flight table, so a later
//    requester retries fresh instead of inheriting a stale failure.
//  * Deadlines + cooperative cancellation. Each submission may carry a
//    deadline and/or a caller-held CancelToken; the token is threaded
//    through the whole pipeline (phase boundaries, every solve batch, the
//    pcg_block / RBK inner loops) and trips as the typed
//    kDeadlineExceeded / kCancelled error codes. Cancelling any handle of a
//    deduplicated job cancels the shared job and releases every waiter.
//  * Retry with bounded exponential backoff + deterministic jitter. Errors
//    the failure model classifies as transient (error_is_transient) retry
//    up to RetryPolicy::max_attempts with base_backoff_ms * multiplier^k
//    sleeps, jittered by a seeded hash of (service seed, job key, attempt)
//    so a run replays identically. The attempt history rides in
//    ExtractionReport::attempts and ExtractionJob::attempt_history().
//  * Admission control + load shedding. The queue is bounded
//    (ServiceOptions::queue_capacity); a submit against a full queue is
//    fast-rejected with a terminal kOverloaded job instead of growing an
//    unbounded backlog. The shared ModelCache takes a memory budget with
//    LRU eviction (ServiceOptions::cache_memory_budget) so N clients x M
//    layouts cannot OOM the process.
//  * ServiceStats counters (accepted / deduped / shed / retried /
//    cancelled / deadline-expired / ...) surface the traffic the same way
//    CacheEvents surfaces cache health.
//
// Determinism: workers run each extraction inline on their own thread
// (ParallelInlineScope), which the thread pool guarantees is bit-identical
// to any SUBSPAR_THREADS schedule — a single-client service run produces
// the same model bits as the direct Extractor path, and fault-injected runs
// (SUBSPAR_FAULT, including the queue site 'q') replay by seed.
//
// Thread-safety preconditions inherited from the layers below: solvers are
// stateful (solve counters), so concurrently running jobs must hold
// DISTINCT solver instances. Deduplicated submissions may share one solver
// — only the job that extracts uses it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "subspar/cache.hpp"
#include "subspar/extraction.hpp"
#include "subspar/status.hpp"
#include "util/cancel.hpp"

namespace subspar {

/// True for error codes the service retries (transient by the PR 7 failure
/// model): kSolverNonConvergence, kCacheCorruption, kIoError.
bool error_is_transient(ErrorCode code);

/// Bounded exponential backoff: attempt k (1-based) that fails transiently
/// sleeps base_backoff_ms * multiplier^(k-1) * (1 + jitter) before attempt
/// k+1, where jitter in [0, 1) is a deterministic hash of (seed, job key,
/// k) — replayable, yet decorrelated across jobs.
struct RetryPolicy {
  int max_attempts = 3;          ///< total attempts (1 = no retry)
  double base_backoff_ms = 10.0;
  double multiplier = 2.0;
};

/// Lifecycle of a job handle. Queued -> Running -> one terminal state;
/// kShed is terminal at submit() time (admission rejection).
enum class JobStatus {
  kQueued,           ///< accepted, waiting for a worker
  kRunning,          ///< extracting (or backing off between attempts)
  kSucceeded,        ///< result() is available
  kFailed,           ///< error() carries the typed cause
  kCancelled,        ///< CancelToken tripped (error code kCancelled)
  kDeadlineExpired,  ///< deadline tripped (error code kDeadlineExceeded)
  kShed,             ///< rejected at admission (error code kOverloaded)
};
const char* job_status_name(JobStatus status);
bool job_status_terminal(JobStatus status);

/// Point-in-time view of a job (ExtractionJob::progress()).
struct JobProgress {
  JobStatus status = JobStatus::kQueued;
  std::string phase;  ///< last completed pipeline phase of the running attempt
  int attempts = 0;   ///< attempts started so far
};

/// Cumulative service counters (ExtractionService::stats()). accepted
/// counts jobs admitted to the queue (dedup attaches and sheds excluded);
/// every accepted job eventually lands in exactly one of succeeded /
/// failed / cancelled / deadline_expired.
struct ServiceStats {
  std::size_t accepted = 0;
  std::size_t deduped = 0;           ///< submissions attached to an in-flight job
  std::size_t shed = 0;              ///< fast-rejected on a full queue
  std::size_t retried = 0;           ///< extra attempts after a transient failure
  std::size_t cancelled = 0;
  std::size_t deadline_expired = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;            ///< terminal failures other than cancel/deadline
  std::size_t cache_hits = 0;        ///< jobs served by the ModelCache
  std::size_t queue_depth = 0;       ///< snapshot: jobs waiting for a worker
  std::size_t in_flight = 0;         ///< snapshot: keys admitted but not terminal
};

struct ServiceOptions {
  std::size_t workers = 2;          ///< worker threads (>= 1)
  std::size_t queue_capacity = 64;  ///< bounded queue; full => kOverloaded
  /// ModelCache memory budget in bytes (0 = unbounded; see
  /// ModelCache::set_memory_budget).
  std::size_t cache_memory_budget = 0;
  /// Optional ModelCache persist directory (empty = in-memory only).
  std::string persist_dir;
  RetryPolicy retry;                ///< default policy; per-submit override
  std::uint64_t backoff_jitter_seed = 0x5eed;
};

/// Per-submission knobs.
struct SubmitOptions {
  /// Wall-clock deadline from submission, in ms (0 = none). Expiry anywhere
  /// — queued, mid-solve, or during backoff — terminates the job with
  /// kDeadlineExceeded.
  double deadline_ms = 0.0;
  /// Caller-held cancellation token (one is created internally if absent).
  /// Cancelling it is equivalent to ExtractionJob::cancel().
  std::shared_ptr<CancelToken> cancel;
  /// Overrides the service-wide RetryPolicy for this job.
  std::optional<RetryPolicy> retry;
};

namespace detail {
struct JobState;
}

/// Shared handle to one submitted job (copyable; all copies — including
/// handles returned to deduplicated requesters — observe the same job).
class ExtractionJob {
 public:
  ExtractionJob() = default;  ///< empty handle; valid() == false

  bool valid() const { return state_ != nullptr; }
  /// The ModelCache content hash the job is deduplicated under.
  const std::string& key() const;

  /// Blocks until the job is terminal; returns the final Status (ok on
  /// success, the typed ExtractionError otherwise).
  Status wait() const;
  /// Blocks up to `ms`; true iff the job reached a terminal state.
  bool wait_for(double ms) const;

  /// Requests cooperative cancellation (idempotent; affects every handle of
  /// a deduplicated job). The job lands in kCancelled unless it already
  /// reached another terminal state.
  void cancel() const;

  JobStatus status() const;
  JobProgress progress() const;

  /// Terminal accessors. result() requires status() == kSucceeded; error()
  /// is kOk until the job terminally fails.
  const ExtractionResult& result() const;
  ExtractionError error() const;
  /// One line per failed attempt ("attempt 1: io-error in ...").
  std::vector<std::string> attempt_history() const;

 private:
  friend class ExtractionService;
  explicit ExtractionJob(std::shared_ptr<detail::JobState> state);

  std::shared_ptr<detail::JobState> state_;
};

class ExtractionService {
 public:
  explicit ExtractionService(ServiceOptions options = {});
  /// Drains nothing: shutdown() — queued jobs are cancelled, the running
  /// ones finish their current cancellation window.
  ~ExtractionService();
  ExtractionService(const ExtractionService&) = delete;
  ExtractionService& operator=(const ExtractionService&) = delete;

  /// Submits an extraction. Never throws on admission: an invalid request,
  /// a full queue, or a stopped service all come back as an
  /// immediately-terminal job carrying the typed error. The solver is held
  /// alive by the job (shared_ptr) and must match (layout, stack) exactly
  /// as in ModelCache::get_or_extract.
  ExtractionJob submit(std::shared_ptr<const SubstrateSolver> solver, const Layout& layout,
                       const SubstrateStack& stack, ExtractionRequest request = {},
                       SubmitOptions options = {});

  /// Stops accepting work, cancels queued jobs (kCancelled), lets running
  /// attempts trip their cancellation points, and joins the workers.
  /// Idempotent; called by the destructor.
  void shutdown();

  ServiceStats stats() const;
  ModelCache& cache();
  const ServiceOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace subspar
