// subspar public API — umbrella header.
//
// Everything a downstream user (and this repo's examples and benches) needs:
//
//   subspar/geometry.hpp    contact layouts, generators, quadtree
//   subspar/substrate.hpp   substrate stack + black-box solver interface
//   subspar/solvers.hpp     solver registry/factory (make_solver)
//   subspar/extraction.hpp  ExtractionRequest -> Extractor -> ExtractionResult
//   subspar/status.hpp      ErrorCode/ExtractionError/Status error model
//   subspar/model.hpp       SparsifiedModel + save_model/load_model
//   subspar/cache.hpp       keyed ModelCache (memoized + persisted models)
//   subspar/service.hpp     ExtractionService concurrent job engine
//   subspar/report.hpp      accuracy/sparsity scoring vs exact columns
//   subspar/methods.hpp     wavelet / low-rank method internals
//   subspar/linalg.hpp      Vector/Matrix/SparseMatrix/SVD
//   subspar/transform.hpp   FFT/DCT/fast-Poisson kernels
//   subspar/circuit.hpp     MNA netlist + transient simulator
//   subspar/util.hpp        checks, RNG, timers, tables, thread pool
//
// The canonical flow:
//
//   auto solver = make_solver(SolverKind::kSurface, layout, stack);
//   Extractor engine(*solver, layout);
//   ExtractionResult r = engine.extract({.threshold_sparsity_multiple = 6.0});
//   Vector currents = r.model.apply(voltages);
//
// or, with reuse across identical requests / processes:
//
//   ModelCache cache("models/");
//   ExtractionResult r = cache.get_or_extract(*solver, layout, stack, request);
#pragma once

#include "subspar/cache.hpp"
#include "subspar/circuit.hpp"
#include "subspar/extraction.hpp"
#include "subspar/geometry.hpp"
#include "subspar/linalg.hpp"
#include "subspar/methods.hpp"
#include "subspar/model.hpp"
#include "subspar/report.hpp"
#include "subspar/service.hpp"
#include "subspar/solvers.hpp"
#include "subspar/status.hpp"
#include "subspar/substrate.hpp"
#include "subspar/transform.hpp"
#include "subspar/util.hpp"
