// Public header: the keyed model cache.
//
// "Extract once in O(log n) solves, then reuse the sparse model everywhere"
// is the paper's whole value proposition; ModelCache makes the reuse a
// first-class operation. Results are memoized under a content hash of
// (solver cache_tag, layout, stack, request) — everything that determines
// the extraction output — so a repeated request costs a map lookup and an
// in-memory model copy (plus an apply at the call site) instead of a
// re-extraction: zero black-box solves. With a persist
// directory set, models additionally round-trip through the save_model /
// load_model text format: a second process pays one file read, zero
// black-box solves, and gets a bit-exact copy of the original model.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

#include "subspar/extraction.hpp"
#include "substrate/stack.hpp"

namespace subspar {

/// Cumulative cache-event counters (see CacheEvents in
/// subspar/extraction.hpp); kept under the seed-era name for callers that
/// spell ModelCache::stats()'s type out.
using CacheStats = CacheEvents;

/// Deterministic content hash (16 hex digits) of everything that determines
/// an extraction: the layout (panel grid + contact rectangles), the stack
/// (layers + backplane), the request (method, moment order, low-rank
/// options incl. seed, threshold), and optionally a solver tag —
/// ModelCache passes SubstrateSolver::cache_tag(), which digests the
/// discretization, its construction options (grid spacing, wells,
/// tolerances), and the fingerprint of the (layout, stack) the solver was
/// actually built over. The last part double-binds the key: a call that
/// passes a (layout, stack) different from the solver's construction inputs
/// gets a key no consistent caller can collide with, instead of silently
/// poisoning theirs. Endian-independent and stable across processes (it is
/// the persist filename) — extend with care.
std::string model_cache_key(const Layout& layout, const SubstrateStack& stack,
                            const ExtractionRequest& request,
                            const std::string& solver_tag = {});

class ModelCache {
 public:
  /// In-memory cache only.
  ModelCache() = default;
  /// Also persists under `persist_dir` (created if absent) as
  /// model-<key>.txt files via the core/io layer (checksummed, written
  /// atomically), and serves cold lookups from there. An unreadable,
  /// truncated, bit-flipped, or dimension-mismatched file is quarantined
  /// (renamed to <file>.quarantined for post-mortem) and transparently
  /// re-extracted; the fresh extraction then publishes a good file under
  /// the original name. Callers never see the corruption as an error —
  /// only as counters (stats(), report.cache) and a report.fallbacks line.
  explicit ModelCache(std::string persist_dir);

  /// Returns the cached result for (solver.cache_tag(), layout, stack,
  /// request), extracting and caching on a miss. Precondition: (layout,
  /// stack) are the inputs `solver` was constructed over (n_contacts is
  /// checked; a mismatched same-size stack only isolates — never poisons —
  /// the key, see model_cache_key). Hits consume zero black-box solves and
  /// return an in-memory copy of the model (O(nnz), no solver work); their
  /// report has from_cache = true, solves = 0, and
  /// seconds = the lookup cost. The cache's own state is mutex-protected,
  /// but a miss runs the extraction through the caller's solver, whose
  /// solve/iteration counters are not synchronized — concurrent calls must
  /// use distinct solver instances (or an external lock per solver);
  /// concurrent misses then both extract, with one result kept. A failed
  /// persist write is swallowed (the fresh result is still returned and
  /// cached in memory); a persisted file whose dimension does not match the
  /// solver is treated as corrupt and re-extracted.
  ExtractionResult get_or_extract(const SubstrateSolver& solver, const Layout& layout,
                                  const SubstrateStack& stack,
                                  const ExtractionRequest& request = {});

  /// True when the key is resident in memory (does not consult the disk).
  bool contains(const SubstrateSolver& solver, const Layout& layout,
                const SubstrateStack& stack, const ExtractionRequest& request = {}) const;

  /// Number of models resident in memory.
  std::size_t size() const;
  /// Drops the in-memory entries (persisted files are kept).
  void clear();
  CacheStats stats() const;
  const std::string& persist_dir() const { return persist_dir_; }

 private:
  struct Entry {
    SparsifiedModel model;  // hit reports are rebuilt from the model's metadata
  };

  std::string persist_path(const std::string& key) const;

  std::string persist_dir_;
  std::map<std::string, Entry> entries_;
  CacheStats stats_;
  mutable std::mutex mutex_;
};

}  // namespace subspar
