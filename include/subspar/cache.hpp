// Public header: the keyed model cache.
//
// "Extract once in O(log n) solves, then reuse the sparse model everywhere"
// is the paper's whole value proposition; ModelCache makes the reuse a
// first-class operation. Results are memoized under a content hash of
// (solver cache_tag, layout, stack, request) — everything that determines
// the extraction output — so a repeated request costs a map lookup and an
// in-memory model copy (plus an apply at the call site) instead of a
// re-extraction: zero black-box solves. With a persist
// directory set, models additionally round-trip through the save_model /
// load_model text format: a second process pays one file read, zero
// black-box solves, and gets a bit-exact copy of the original model.
//
// The cache is fully thread-safe and built for concurrent service traffic:
// entries live in 16 reader-writer-locked shards (hits from distinct keys
// never contend on one mutex), the event counters are atomics, and an
// optional memory budget bounds residency — inserting past the budget
// evicts least-recently-used entries (the newest entry is never evicted,
// so one oversized model still serves). Eviction only drops the in-memory
// copy; persisted files survive and re-serve evicted keys from disk.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "subspar/extraction.hpp"
#include "substrate/stack.hpp"
#include "util/sync.hpp"

namespace subspar {

/// Cumulative cache-event counters (see CacheEvents in
/// subspar/extraction.hpp); kept under the seed-era name for callers that
/// spell ModelCache::stats()'s type out.
using CacheStats = CacheEvents;

/// Deterministic content hash (16 hex digits) of everything that determines
/// an extraction: the layout (panel grid + contact rectangles), the stack
/// (layers + backplane), the request (method, moment order, low-rank
/// options incl. seed, threshold), and optionally a solver tag —
/// ModelCache passes SubstrateSolver::cache_tag(), which digests the
/// discretization, its construction options (grid spacing, wells,
/// tolerances), and the fingerprint of the (layout, stack) the solver was
/// actually built over. The last part double-binds the key: a call that
/// passes a (layout, stack) different from the solver's construction inputs
/// gets a key no consistent caller can collide with, instead of silently
/// poisoning theirs. Endian-independent and stable across processes (it is
/// the persist filename) — extend with care. The observational request
/// fields (`progress`, `cancel`) are excluded.
std::string model_cache_key(const Layout& layout, const SubstrateStack& stack,
                            const ExtractionRequest& request,
                            const std::string& solver_tag = {});

/// Estimated resident bytes of a model's sparse factors — the unit of the
/// ModelCache memory budget (values + index structure of Q and G_w).
std::size_t model_memory_bytes(const SparsifiedModel& model);

class ModelCache {
 public:
  /// In-memory cache only.
  ModelCache() = default;
  /// Also persists under `persist_dir` (created if absent) as
  /// model-<key>.txt files via the core/io layer (checksummed, written
  /// atomically), and serves cold lookups from there. An unreadable,
  /// truncated, bit-flipped, or dimension-mismatched file is quarantined
  /// (renamed to <file>.quarantined.N, N monotonic per file so repeated
  /// corruption of one key preserves every specimen) and transparently
  /// re-extracted; the fresh extraction then publishes a good file under
  /// the original name. Callers never see the corruption as an error —
  /// only as counters (stats(), report.cache) and a report.fallbacks line.
  explicit ModelCache(std::string persist_dir);

  /// Returns the cached result for (solver.cache_tag(), layout, stack,
  /// request), extracting and caching on a miss. Precondition: (layout,
  /// stack) are the inputs `solver` was constructed over (n_contacts is
  /// checked; a mismatched same-size stack only isolates — never poisons —
  /// the key, see model_cache_key). Hits consume zero black-box solves and
  /// return an in-memory copy of the model (O(nnz), no solver work); their
  /// report has from_cache = true, solves = 0, and
  /// seconds = the lookup cost. The cache's own state is thread-safe
  /// (sharded reader-writer locks, atomic counters), but a miss runs the
  /// extraction through the caller's solver, whose solve/iteration counters
  /// are not synchronized — concurrent calls must use distinct solver
  /// instances (or an external lock per solver); concurrent misses of one
  /// key then both extract, with one result kept — put an ExtractionService
  /// (subspar/service.hpp) in front for in-flight deduplication. A failed
  /// persist write is swallowed (the fresh result is still returned and
  /// cached in memory); a persisted file whose dimension does not match the
  /// solver is treated as corrupt and re-extracted.
  ExtractionResult get_or_extract(const SubstrateSolver& solver, const Layout& layout,
                                  const SubstrateStack& stack,
                                  const ExtractionRequest& request = {});

  /// True when the key is resident in memory (does not consult the disk).
  bool contains(const SubstrateSolver& solver, const Layout& layout,
                const SubstrateStack& stack, const ExtractionRequest& request = {}) const;

  /// Bounds resident model bytes (model_memory_bytes units); exceeding it
  /// evicts least-recently-used entries, except the most recent one. 0 (the
  /// default) = unbounded. Takes effect immediately.
  void set_memory_budget(std::size_t bytes);
  std::size_t memory_budget() const { return memory_budget_.load(std::memory_order_acquire); }
  /// Estimated bytes currently resident in memory.
  std::size_t memory_bytes() const { return bytes_.load(std::memory_order_acquire); }

  /// Number of models resident in memory.
  std::size_t size() const;
  /// Drops the in-memory entries (persisted files are kept).
  void clear();
  CacheStats stats() const;
  const std::string& persist_dir() const { return persist_dir_; }

 private:
  struct Entry {
    Entry(SparsifiedModel m, std::size_t b, std::uint64_t tick)
        : model(std::move(m)), bytes(b), last_used(tick) {}
    SparsifiedModel model;  // hit reports are rebuilt from the model's metadata
    std::size_t bytes;
    std::atomic<std::uint64_t> last_used;  // LRU tick; stored on every hit
  };
  struct Shard {
    // Reader-writer capability: hits take SharedLock, inserts/evictions take
    // ExclusiveLock; the entry map is annotated so a clang -Wthread-safety
    // build rejects any unlocked access at compile time.
    mutable SharedMutex mutex;
    std::map<std::string, Entry> entries SUBSPAR_GUARDED_BY(mutex);
  };
  static constexpr std::size_t kShards = 16;

  std::size_t shard_index(const std::string& key) const;
  std::string persist_path(const std::string& key) const;
  /// Inserts (first writer wins) and applies the memory budget.
  void insert_entry(const std::string& key, const SparsifiedModel& model);
  void evict_to_budget();

  std::string persist_dir_;
  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> memory_budget_{0};
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::uint64_t> tick_{0};

  // Cumulative event counters (stats()); atomics so concurrent hits/misses
  // on different shards never race.
  std::atomic<std::size_t> hits_{0}, misses_{0}, disk_loads_{0}, corruptions_{0},
      quarantines_{0}, write_failures_{0}, evictions_{0};
};

}  // namespace subspar
