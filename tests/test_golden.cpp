// Golden regression pins for the quickstart pipeline (the exact numbers a
// fresh checkout prints from examples/quickstart.cpp). These values are the
// contract that refactors of the extraction internals — including the
// selectable row-basis scheme — must not perturb: the deterministic
// column-sampling route stays bit-for-bit what it was at the seed.
//
// If a change legitimately alters them (an accuracy improvement, a solver
// change), update the constants here in the same commit and say why.
#include <gtest/gtest.h>

#include "subspar/subspar.hpp"

namespace subspar {
namespace {

// The quickstart configuration: paper stack, 16x16 grid, low-rank method
// with 6x thresholding, all request fields at their defaults.
struct Quickstart {
  SubstrateStack stack = paper_stack(40.0);
  Layout layout = regular_grid_layout(16);
  std::unique_ptr<SubstrateSolver> solver = make_solver(SolverKind::kSurface, layout, stack);
  ExtractionRequest request{.method = SparsifyMethod::kLowRank,
                            .threshold_sparsity_multiple = 6.0};
};

constexpr long kGoldenSolves = 357;
constexpr std::size_t kGoldenGwNnz = 6090;
constexpr std::size_t kGoldenQNnz = 3184;
constexpr double kGoldenGwSparsity = 10.761247947454844;
constexpr double kGoldenQSparsity = 20.582914572864322;
constexpr double kGoldenResidual = 0.0020533169310501765;

TEST(GoldenQuickstart, PinsSolveCountSparsityAndResidual) {
  Quickstart qs;
  const ExtractionResult ex = Extractor(*qs.solver, qs.layout).extract(qs.request);
  const SparsifiedModel& model = ex.model;

  EXPECT_EQ(ex.report.solves, kGoldenSolves);
  EXPECT_EQ(ex.report.n, 256u);
  EXPECT_EQ(ex.report.basis_scheme, "column-sampling");
  EXPECT_TRUE(ex.report.rank_trajectory.empty());
  EXPECT_EQ(model.gw().nnz(), kGoldenGwNnz);
  EXPECT_EQ(model.q().nnz(), kGoldenQNnz);
  EXPECT_NEAR(ex.report.gw_sparsity, kGoldenGwSparsity, 1e-12);
  EXPECT_NEAR(ex.report.q_sparsity, kGoldenQSparsity, 1e-12);

  // The quickstart apply check, with its exact seed.
  Rng rng(2024);
  Vector v(qs.layout.n_contacts());
  for (auto& x : v) x = rng.uniform(-0.5, 0.5);
  const double resid = norm2(model.apply(v) - qs.solver->solve(v)) / norm2(qs.solver->solve(v));
  EXPECT_NEAR(resid, kGoldenResidual, 1e-9);

  // Every solve belongs to the row-basis phase; the later phases are pure
  // linear algebra over recorded responses.
  ASSERT_GE(ex.report.phases.size(), 3u);
  EXPECT_EQ(ex.report.phases[0].phase, "row-basis");
  EXPECT_EQ(ex.report.phases[0].solves, kGoldenSolves);
  for (std::size_t i = 1; i < ex.report.phases.size(); ++i)
    EXPECT_EQ(ex.report.phases[i].solves, 0) << ex.report.phases[i].phase;
}

TEST(GoldenQuickstart, RbkKnobsDoNotPerturbTheDeterministicRoute) {
  // A request that selects column sampling but carries exotic RBK knobs must
  // produce the identical model: the knobs are dead weight for this scheme.
  Quickstart qs;
  ExtractionRequest tweaked = qs.request;
  tweaked.lowrank.rbk.block_size = 5;
  tweaked.lowrank.rbk.max_iters = 9;
  tweaked.lowrank.rbk.target_tol = 0.5;

  const ExtractionResult base = Extractor(*qs.solver, qs.layout).extract(qs.request);
  const ExtractionResult same = Extractor(*qs.solver, qs.layout).extract(tweaked);
  EXPECT_EQ(base.report.solves, same.report.solves);
  ASSERT_EQ(base.model.gw().nnz(), same.model.gw().nnz());
  ASSERT_EQ(base.model.q().nnz(), same.model.q().nnz());
  Rng rng(31);
  Vector v(qs.layout.n_contacts());
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  const Vector ya = base.model.apply(v);
  const Vector yb = same.model.apply(v);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(ya[i], yb[i]) << "row " << i;
}

TEST(GoldenQuickstart, CacheKeysNeverAliasAcrossBasisSchemes) {
  // Same request modulo the scheme/knobs: every variant must key differently,
  // so a ModelCache can hold RBK and sampling models side by side.
  Quickstart qs;
  ExtractionRequest rbk = qs.request;
  rbk.lowrank.basis = RowBasisScheme::kBlockKrylov;
  const std::string tag = qs.solver->cache_tag();
  const std::string k_det = model_cache_key(qs.layout, qs.stack, qs.request, tag);
  const std::string k_rbk = model_cache_key(qs.layout, qs.stack, rbk, tag);
  EXPECT_NE(k_det, k_rbk);

  ExtractionRequest tweaked = rbk;
  tweaked.lowrank.rbk.block_size = 2;
  EXPECT_NE(model_cache_key(qs.layout, qs.stack, tweaked, tag), k_rbk);
  tweaked = rbk;
  tweaked.lowrank.rbk.max_iters = 4;
  EXPECT_NE(model_cache_key(qs.layout, qs.stack, tweaked, tag), k_rbk);
  tweaked = rbk;
  tweaked.lowrank.rbk.target_tol = 1e-2;
  EXPECT_NE(model_cache_key(qs.layout, qs.stack, tweaked, tag), k_rbk);

  // The knobs also separate keys when the scheme is column sampling (the
  // digest is unconditional), so no future scheme flip can collide.
  ExtractionRequest det_tweaked = qs.request;
  det_tweaked.lowrank.rbk.block_size = 2;
  EXPECT_NE(model_cache_key(qs.layout, qs.stack, det_tweaked, tag), k_det);
}

TEST(GoldenQuickstart, RbkRequestThroughThePublicPipeline) {
  // The selectable scheme end to end: fewer solves than the golden constant,
  // a populated trajectory, and an apply residual in the same band.
  Quickstart qs;
  ExtractionRequest request = qs.request;
  request.lowrank.basis = RowBasisScheme::kBlockKrylov;
  const ExtractionResult ex = Extractor(*qs.solver, qs.layout).extract(request);

  EXPECT_EQ(ex.report.basis_scheme, "block-krylov");
  EXPECT_LT(ex.report.solves, kGoldenSolves);
  EXPECT_FALSE(ex.report.rank_trajectory.empty());

  Rng rng(2024);
  Vector v(qs.layout.n_contacts());
  for (auto& x : v) x = rng.uniform(-0.5, 0.5);
  const double resid =
      norm2(ex.model.apply(v) - qs.solver->solve(v)) / norm2(qs.solver->solve(v));
  // The residual is dominated by the shared thresholding phases; the
  // randomized basis must stay in the same accuracy band.
  EXPECT_LT(resid, 2.0 * kGoldenResidual);
}

}  // namespace
}  // namespace subspar
