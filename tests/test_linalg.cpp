// Tests for the dense linear-algebra substrate: vector/matrix kernels and
// every factorization, including randomized property sweeps (TEST_P).
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/eig_sym.hpp"
#include "linalg/iterative.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace subspar {
namespace {

Matrix random_matrix(std::size_t m, std::size_t n, Rng& rng) {
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  return a;
}

Matrix random_spd(std::size_t n, Rng& rng) {
  const Matrix b = random_matrix(n, n, rng);
  Matrix a = matmul_tn(b, b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

double max_abs_diff(const Matrix& a, const Matrix& b) { return (a - b).max_abs(); }

// ---------------------------------------------------------------- vectors

TEST(Vector, ArithmeticAndNorms) {
  Vector a{1.0, 2.0, 2.0};
  Vector b{1.0, 0.0, -1.0};
  EXPECT_DOUBLE_EQ(dot(a, b), -1.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  EXPECT_DOUBLE_EQ(norm_inf(b), 1.0);
  a.axpy(2.0, b);
  EXPECT_DOUBLE_EQ(a[0], 3.0);
  EXPECT_DOUBLE_EQ(a[2], 0.0);
}

TEST(Vector, SizeMismatchThrows) {
  Vector a(3), b(4);
  EXPECT_THROW(dot(a, b), std::invalid_argument);
  EXPECT_THROW(a += b, std::invalid_argument);
}

// ---------------------------------------------------------------- matrices

TEST(Matrix, MatvecMatchesManual) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Vector x{1.0, 1.0, 1.0};
  const Vector y = matvec(a, x);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  const Vector z = matvec_t(a, Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(Matrix, MultiplyVariantsAgree) {
  Rng rng(3);
  const Matrix a = random_matrix(4, 6, rng);
  const Matrix b = random_matrix(6, 5, rng);
  const Matrix c1 = matmul(a, b);
  const Matrix c2 = matmul_tn(a.transposed(), b);
  const Matrix c3 = matmul_nt(a, b.transposed());
  EXPECT_LT(max_abs_diff(c1, c2), 1e-12);
  EXPECT_LT(max_abs_diff(c1, c3), 1e-12);
}

TEST(Matrix, BlockAndHcat) {
  Rng rng(4);
  const Matrix a = random_matrix(5, 4, rng);
  const Matrix b = a.block(1, 1, 3, 2);
  EXPECT_DOUBLE_EQ(b(0, 0), a(1, 1));
  EXPECT_DOUBLE_EQ(b(2, 1), a(3, 2));
  const Matrix c = Matrix::hcat(a, a);
  EXPECT_EQ(c.cols(), 8u);
  EXPECT_DOUBLE_EQ(c(2, 6), a(2, 2));
}

TEST(Matrix, HcatWithEmptyOperand) {
  Matrix a(3, 2, 1.0);
  Matrix empty(3, 0);
  EXPECT_EQ(Matrix::hcat(a, empty).cols(), 2u);
  EXPECT_EQ(Matrix::hcat(empty, a).cols(), 2u);
}

// ----------------------------------------------------- blocked dense kernels

// Plain triple-loop reference the blocked kernels are validated against.
Matrix ref_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  return c;
}

TEST(DenseKernels, BlockedMatmulMatchesNaiveAcrossShapes) {
  // Rectangular shapes straddling the tile (64), micro-kernel (4x8), and
  // packing-slice (256) boundaries, plus degenerate thin cases.
  const std::size_t shapes[][3] = {{67, 45, 130}, {64, 64, 64},  {65, 63, 9},
                                   {4, 300, 4},   {1, 520, 1},   {129, 257, 66},
                                   {16, 1024, 16}, {3, 2, 500}};
  Rng rng(50);
  for (const auto& s : shapes) {
    const std::size_t m = s[0], k = s[1], n = s[2];
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    const Matrix ref = ref_matmul(a, b);
    const double tol = 1e-12 * static_cast<double>(k);
    EXPECT_LT(max_abs_diff(matmul(a, b), ref), tol) << m << "x" << k << "x" << n;
    EXPECT_LT(max_abs_diff(matmul_tn(a.transposed(), b), ref), tol);
    EXPECT_LT(max_abs_diff(matmul_nt(a, b.transposed()), ref), tol);
  }
}

TEST(DenseKernels, AccumulateVariantsMatchExpandedForm) {
  Rng rng(51);
  const Matrix a = random_matrix(70, 90, rng);
  const Matrix b = random_matrix(90, 50, rng);
  const Matrix c0 = random_matrix(70, 50, rng);
  for (const double alpha : {1.0, -1.0, 2.5}) {
    Matrix c = c0;
    matmul_add(c, a, b, alpha);
    EXPECT_LT(max_abs_diff(c, c0 + alpha * matmul(a, b)), 1e-10);
    Matrix ct = random_matrix(90, 50, rng);
    const Matrix ct0 = ct;
    matmul_tn_add(ct, a, matmul(a, b), alpha);  // a' (a b): 90 x 50
    EXPECT_LT(max_abs_diff(ct, ct0 + alpha * matmul_tn(a, matmul(a, b))), 1e-9);
    Matrix cn = c0;
    matmul_nt_add(cn, a, b.transposed(), alpha);
    EXPECT_LT(max_abs_diff(cn, c0 + alpha * matmul_nt(a, b.transposed())), 1e-10);
  }
}

TEST(DenseKernels, GramTnExactlySymmetricAndMatchesTn) {
  Rng rng(52);
  for (const auto& [m, n] : {std::pair<std::size_t, std::size_t>{150, 90}, {10, 6}}) {
    const Matrix a = random_matrix(m, n, rng);
    const Matrix g = gram_tn(a);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) ASSERT_EQ(g(i, j), g(j, i));
    EXPECT_LT(max_abs_diff(g, matmul_tn(a, a)), 1e-11 * static_cast<double>(m));
  }
}

TEST(DenseKernels, BlockedTransposeMatchesElementwise) {
  Rng rng(53);
  const Matrix a = random_matrix(101, 37, rng);
  const Matrix t = a.transposed();
  ASSERT_EQ(t.rows(), 37u);
  ASSERT_EQ(t.cols(), 101u);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) ASSERT_EQ(t(j, i), a(i, j));
}

TEST(DenseKernels, TiledProductsBitIdenticalAcrossThreadCounts) {
  Rng rng(54);
  const Matrix a = random_matrix(150, 170, rng);
  const Matrix b = random_matrix(170, 140, rng);
  set_thread_count(1);
  const Matrix c1 = matmul(a, b);
  const Matrix g1 = gram_tn(a);
  set_thread_count(4);
  const Matrix c4 = matmul(a, b);
  const Matrix g4 = gram_tn(a);
  set_thread_count(1);
  EXPECT_EQ(max_abs_diff(c1, c4), 0.0);
  EXPECT_EQ(max_abs_diff(g1, g4), 0.0);
}

// ---------------------------------------------------------------- cholesky

TEST(Cholesky, ReconstructsAndSolves) {
  Rng rng(5);
  const Matrix a = random_spd(12, rng);
  const Cholesky chol(a);
  const Matrix l = chol.lower();
  EXPECT_LT(max_abs_diff(matmul_nt(l, l), a), 1e-9);
  const Vector b = random_matrix(12, 1, rng).col(0);
  const Vector x = chol.solve(b);
  EXPECT_LT(norm2(matvec(a, x) - b), 1e-9 * norm2(b));
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a = Matrix::identity(3);
  a(2, 2) = -1.0;
  EXPECT_THROW(Cholesky{a}, std::invalid_argument);
}

// ---------------------------------------------------------------- QR

TEST(QR, ThinQOrthonormalAndReconstructs) {
  Rng rng(6);
  const Matrix a = random_matrix(10, 4, rng);
  const QR qr(a);
  const Matrix q = qr.thin_q();
  const Matrix qtq = matmul_tn(q, q);
  EXPECT_LT(max_abs_diff(qtq, Matrix::identity(4)), 1e-12);
  EXPECT_LT(max_abs_diff(matmul(q, qr.r()), a), 1e-12);
}

TEST(QR, FullQOrthogonal) {
  Rng rng(7);
  const Matrix a = random_matrix(8, 3, rng);
  const Matrix q = QR(a).full_q();
  EXPECT_LT(max_abs_diff(matmul_tn(q, q), Matrix::identity(8)), 1e-12);
}

TEST(QR, LeastSquaresMatchesNormalEquations) {
  Rng rng(8);
  const Matrix a = random_matrix(12, 5, rng);
  const Vector b = random_matrix(12, 1, rng).col(0);
  const Vector x = QR(a).solve(b);
  // Residual must be orthogonal to range(A).
  const Vector r = matvec(a, x) - b;
  EXPECT_LT(norm_inf(matvec_t(a, r)), 1e-10);
}

TEST(QR, OrthonormalComplementCompletesBasis) {
  Rng rng(9);
  Matrix u = QR(random_matrix(7, 3, rng)).thin_q();
  const Matrix w = orthonormal_complement(u, 7);
  ASSERT_EQ(w.cols(), 4u);
  const Matrix full = Matrix::hcat(u, w);
  EXPECT_LT(max_abs_diff(matmul_tn(full, full), Matrix::identity(7)), 1e-12);
}

TEST(QR, OrthonormalComplementEdgeCases) {
  EXPECT_EQ(orthonormal_complement(Matrix(5, 0), 5).cols(), 5u);
  Rng rng(10);
  const Matrix u = QR(random_matrix(4, 4, rng)).thin_q();
  EXPECT_EQ(orthonormal_complement(u, 4).cols(), 0u);
}

// ---------------------------------------------------------------- SVD

TEST(Svd, ReconstructsTallMatrix) {
  Rng rng(11);
  const Matrix a = random_matrix(9, 4, rng);
  const Svd s = svd(a);
  Matrix usv(9, 4);
  for (std::size_t i = 0; i < 9; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 4; ++k) acc += s.u(i, k) * s.sigma[k] * s.v(j, k);
      usv(i, j) = acc;
    }
  EXPECT_LT(max_abs_diff(usv, a), 1e-10);
}

TEST(Svd, ReconstructsWideMatrix) {
  Rng rng(12);
  const Matrix a = random_matrix(3, 8, rng);
  const Svd s = svd(a);
  ASSERT_EQ(s.u.cols(), 3u);
  ASSERT_EQ(s.v.rows(), 8u);
  Matrix usv(3, 8);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 8; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 3; ++k) acc += s.u(i, k) * s.sigma[k] * s.v(j, k);
      usv(i, j) = acc;
    }
  EXPECT_LT(max_abs_diff(usv, a), 1e-10);
}

TEST(Svd, SingularValuesSortedAndOrthonormalFactors) {
  Rng rng(13);
  const Matrix a = random_matrix(10, 6, rng);
  const Svd s = svd(a);
  for (std::size_t k = 0; k + 1 < s.sigma.size(); ++k) EXPECT_GE(s.sigma[k], s.sigma[k + 1]);
  EXPECT_LT(max_abs_diff(matmul_tn(s.u, s.u), Matrix::identity(6)), 1e-10);
  EXPECT_LT(max_abs_diff(matmul_tn(s.v, s.v), Matrix::identity(6)), 1e-10);
}

TEST(Svd, MatchesEigenvaluesOfGram) {
  Rng rng(14);
  const Matrix a = random_matrix(7, 5, rng);
  const Svd s = svd(a);
  const EigSym e = eig_sym(matmul_tn(a, a));
  // Largest eigenvalue of A'A equals sigma_max^2.
  EXPECT_NEAR(e.values[4], s.sigma[0] * s.sigma[0], 1e-8);
  EXPECT_NEAR(e.values[0], s.sigma[4] * s.sigma[4], 1e-8);
}

TEST(Svd, DetectsExactRankDeficiency) {
  // Rank-2 matrix: third column = sum of first two.
  Rng rng(15);
  Matrix a = random_matrix(6, 3, rng);
  for (std::size_t i = 0; i < 6; ++i) a(i, 2) = a(i, 0) + a(i, 1);
  const Svd s = svd(a);
  EXPECT_EQ(numerical_rank(s.sigma, 1e-10), 2u);
}

TEST(Svd, NumericalRankOfZeroMatrix) {
  const Svd s = svd(Matrix(4, 3));
  EXPECT_EQ(numerical_rank(s.sigma, 1e-2), 0u);
}

// ------------------------------------------------ QR-preconditioned SVD

TEST(Svd, QrPreconditionedMatchesJacobiOnTallMatrix) {
  Rng rng(60);
  const Matrix a = random_matrix(200, 24, rng);  // m >= 2n: QR path engaged
  const Svd fast = svd(a);
  const Svd ref = svd_jacobi(a);
  for (std::size_t j = 0; j < ref.sigma.size(); ++j)
    EXPECT_NEAR(fast.sigma[j], ref.sigma[j], 1e-12 * ref.sigma[0]);
  EXPECT_LT(max_abs_diff(matmul_tn(fast.u, fast.u), Matrix::identity(24)), 1e-10);
  EXPECT_LT(max_abs_diff(matmul_tn(fast.v, fast.v), Matrix::identity(24)), 1e-10);
  // U Sigma V' reconstructs A.
  Matrix us = fast.u;
  for (std::size_t i = 0; i < us.rows(); ++i)
    for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= fast.sigma[j];
  EXPECT_LT(max_abs_diff(matmul_nt(us, fast.v), a), 1e-10);
}

TEST(Svd, QrPreconditionedMatchesJacobiOnWideMatrix) {
  Rng rng(61);
  const Matrix a = random_matrix(20, 170, rng);  // transposed tall path
  const Svd fast = svd(a);
  const Svd ref = svd_jacobi(a);
  for (std::size_t j = 0; j < ref.sigma.size(); ++j)
    EXPECT_NEAR(fast.sigma[j], ref.sigma[j], 1e-12 * ref.sigma[0]);
  Matrix us = fast.u;
  for (std::size_t i = 0; i < us.rows(); ++i)
    for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= fast.sigma[j];
  EXPECT_LT(max_abs_diff(matmul_nt(us, fast.v), a), 1e-10);
}

TEST(Svd, QrPreconditionedDetectsRankDeficiency) {
  Rng rng(62);
  // Rank-5 tall matrix: 10 columns built from 5 independent ones.
  const Matrix base = random_matrix(300, 5, rng);
  const Matrix mix = random_matrix(5, 10, rng);
  const Matrix a = matmul(base, mix);
  const Svd s = svd(a);
  EXPECT_EQ(numerical_rank(s.sigma, 1e-10), 5u);
}

// ---------------------------------------------------------------- eig

TEST(EigSym, DiagonalizesAndIsOrthogonal) {
  Rng rng(16);
  const Matrix a = random_spd(9, rng);
  const EigSym e = eig_sym(a);
  const Matrix v = e.vectors;
  EXPECT_LT(max_abs_diff(matmul_tn(v, v), Matrix::identity(9)), 1e-10);
  // A v_k = lambda_k v_k.
  for (std::size_t k = 0; k < 9; ++k) {
    const Vector vk = v.col(k);
    const Vector av = matvec(a, vk);
    EXPECT_LT(norm2(av - e.values[k] * vk), 1e-8 * std::abs(e.values[k]));
  }
  for (std::size_t k = 0; k + 1 < 9; ++k) EXPECT_LE(e.values[k], e.values[k + 1]);
}

// ---------------------------------------------------------------- LU

TEST(LU, SolvesGeneralSystem) {
  Rng rng(17);
  const Matrix a = random_matrix(10, 10, rng);
  const Vector b = random_matrix(10, 1, rng).col(0);
  const LU lu(a);
  ASSERT_FALSE(lu.singular());
  const Vector x = lu.solve(b);
  EXPECT_LT(norm2(matvec(a, x) - b), 1e-9 * norm2(b));
}

TEST(LU, DetectsSingularity) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;  // row 2 all zero
  const LU lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_DOUBLE_EQ(lu.det(), 0.0);
}

TEST(LU, DeterminantOfKnownMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 3.0;
  a(0, 1) = 1.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  EXPECT_NEAR(LU(a).det(), 10.0, 1e-12);
}

// ---------------------------------------------------------------- iterative

TEST(Pcg, SolvesSpdSystemUnpreconditioned) {
  Rng rng(18);
  const Matrix a = random_spd(30, rng);
  const Vector b = random_matrix(30, 1, rng).col(0);
  IterStats st;
  const Vector x = pcg([&](const Vector& v) { return matvec(a, v); }, b,
                       {.rel_tol = 1e-10, .max_iterations = 200}, &st);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(norm2(matvec(a, x) - b), 1e-8 * norm2(b));
}

TEST(Pcg, PerfectPreconditionerConvergesInOneIteration) {
  Rng rng(19);
  const Matrix a = random_spd(20, rng);
  const Cholesky chol(a);
  const Vector b = random_matrix(20, 1, rng).col(0);
  IterStats st;
  pcg([&](const Vector& v) { return matvec(a, v); }, b, {.rel_tol = 1e-10, .max_iterations = 50},
      &st, [&](const Vector& r) { return chol.solve(r); });
  EXPECT_TRUE(st.converged);
  EXPECT_LE(st.iterations, 2u);
}

TEST(Pcg, ZeroRhsReturnsZero) {
  IterStats st;
  const Vector x =
      pcg([](const Vector& v) { return v; }, Vector(5), {.rel_tol = 1e-10}, &st);
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.iterations, 0u);
  EXPECT_DOUBLE_EQ(norm2(x), 0.0);
}

TEST(PcgBlock, SolvesAllColumnsWithDeflation) {
  // Columns that converge at very different rates (an eigenvector RHS
  // converges in one iteration and then must be deflated out of the block)
  // plus an exact duplicate column; every column must still match the
  // direct solve.
  Rng rng(55);
  const Matrix a = random_spd(40, rng);
  const EigSym e = eig_sym(a);
  Matrix b(40, 5);
  b.set_col(0, e.vectors.col(0));            // converges immediately
  b.set_col(1, random_matrix(40, 1, rng).col(0));
  b.set_col(2, b.col(1));                    // duplicate: degenerate Gram
  b.set_col(3, random_matrix(40, 1, rng).col(0));
  // Column 4 stays zero: must solve to zero without breaking SPD solves.
  BlockIterStats st;
  const Matrix x = pcg_block([&](const Matrix& p) { return matmul(a, p); }, b,
                             {.rel_tol = 1e-9, .max_iterations = 300}, &st);
  EXPECT_TRUE(st.converged);
  const Cholesky chol(a);
  for (std::size_t j = 0; j < 4; ++j) {
    const Vector xj = x.col(j);
    const Vector ref = chol.solve(b.col(j));
    EXPECT_LT(norm2(xj - ref), 1e-8 * (1.0 + norm2(ref))) << "column " << j;
  }
  EXPECT_DOUBLE_EQ(norm2(x.col(4)), 0.0);
}

TEST(PcgBlock, ConsumesPreconditionerInterface) {
  // pcg_block takes a blockwise Preconditioner; with the exact inverse as
  // M^{-1} the whole block converges in O(1) iterations.
  Rng rng(56);
  const Matrix a = random_spd(30, rng);
  const Cholesky chol(a);
  const Matrix b = random_matrix(30, 4, rng);
  const FunctionPreconditioner pre([&](const Matrix& r) { return chol.solve(r); });
  BlockIterStats st;
  const Matrix x = pcg_block([&](const Matrix& p) { return matmul(a, p); }, b,
                             {.rel_tol = 1e-10, .max_iterations = 50}, &st, &pre);
  EXPECT_TRUE(st.converged);
  EXPECT_LE(st.iterations, 3u);
  EXPECT_LT((matmul(a, x) - b).max_abs(), 1e-7 * b.max_abs());
}

TEST(Preconditioner, SingleVectorApplyWrapsApplyMany) {
  Rng rng(57);
  const Matrix m = random_spd(12, rng);
  const FunctionPreconditioner pre([&](const Matrix& r) { return matmul(m, r); });
  const Vector v = random_matrix(12, 1, rng).col(0);
  const Vector z = pre.apply(v);
  EXPECT_LT(norm2(z - matvec(m, v)), 1e-14 * norm2(z));
}

TEST(Gmres, SolvesNonsymmetricSystem) {
  Rng rng(20);
  Matrix a = random_matrix(25, 25, rng);
  for (std::size_t i = 0; i < 25; ++i) a(i, i) += 10.0;  // make well-conditioned
  const Vector b = random_matrix(25, 1, rng).col(0);
  IterStats st;
  const Vector x = gmres([&](const Vector& v) { return matvec(a, v); }, b, 25,
                         {.rel_tol = 1e-10, .max_iterations = 100}, &st);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(norm2(matvec(a, x) - b), 1e-7 * norm2(b));
}

TEST(Gmres, RestartedConvergesToo) {
  Rng rng(21);
  Matrix a = random_matrix(30, 30, rng);
  for (std::size_t i = 0; i < 30; ++i) a(i, i) += 15.0;
  const Vector b = random_matrix(30, 1, rng).col(0);
  IterStats st;
  const Vector x = gmres([&](const Vector& v) { return matvec(a, v); }, b, 8,
                         {.rel_tol = 1e-9, .max_iterations = 400}, &st);
  EXPECT_LT(norm2(matvec(a, x) - b), 1e-6 * norm2(b));
}

// ------------------------------------------------- parameterized properties

class FactorizationSweep : public ::testing::TestWithParam<int> {};

TEST_P(FactorizationSweep, SvdReconstructionAcrossShapes) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t m = 2 + rng.below(12);
  const std::size_t n = 2 + rng.below(12);
  const Matrix a = random_matrix(m, n, rng);
  const Svd s = svd(a);
  const std::size_t k = std::min(m, n);
  double err = 0.0;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t t = 0; t < k; ++t) acc += s.u(i, t) * s.sigma[t] * s.v(j, t);
      err = std::max(err, std::abs(acc - a(i, j)));
    }
  EXPECT_LT(err, 1e-9) << "m=" << m << " n=" << n;
}

TEST_P(FactorizationSweep, CholeskyQrLuAgreeOnSpdSolve) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(100 + seed));
  const std::size_t n = 2 + rng.below(15);
  const Matrix a = random_spd(n, rng);
  const Vector b = random_matrix(n, 1, rng).col(0);
  const Vector x1 = Cholesky(a).solve(b);
  const Vector x2 = LU(a).solve(b);
  const Vector x3 = QR(a).solve(b);
  EXPECT_LT(norm2(x1 - x2), 1e-8 * (1.0 + norm2(x1)));
  EXPECT_LT(norm2(x1 - x3), 1e-8 * (1.0 + norm2(x1)));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, FactorizationSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace subspar

namespace subspar {
namespace {

TEST(Svd, OneByOneMatrix) {
  Matrix a(1, 1);
  a(0, 0) = -3.0;
  const Svd s = svd(a);
  EXPECT_DOUBLE_EQ(s.sigma[0], 3.0);
  EXPECT_DOUBLE_EQ(s.u(0, 0) * s.sigma[0] * s.v(0, 0), -3.0);
}

TEST(Svd, RejectsEmptyMatrix) { EXPECT_THROW(svd(Matrix(0, 0)), std::invalid_argument); }

TEST(Gmres, MatchesCholeskyOnSpdSystem) {
  Rng rng(40);
  const Matrix a = random_spd(20, rng);
  const Vector b = random_matrix(20, 1, rng).col(0);
  IterStats st;
  const Vector x = gmres([&](const Vector& v) { return matvec(a, v); }, b, 20,
                         {.rel_tol = 1e-12, .max_iterations = 100}, &st);
  EXPECT_LT(norm2(x - Cholesky(a).solve(b)), 1e-8 * norm2(b));
}

TEST(Cholesky, LogDetMatchesLuDeterminant) {
  Rng rng(41);
  const Matrix a = random_spd(8, rng);
  EXPECT_NEAR(Cholesky(a).log_det(), std::log(LU(a).det()), 1e-9);
}

TEST(Matrix, TransposeIsInvolution) {
  Rng rng(42);
  const Matrix a = random_matrix(5, 9, rng);
  EXPECT_LT((a.transposed().transposed() - a).max_abs(), 0.0 + 1e-300);
}

TEST(Matrix, ScalarMultiplyAndSubtract) {
  Matrix a(2, 2, 1.0);
  const Matrix b = 3.0 * a - a;
  EXPECT_DOUBLE_EQ(b(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(b.frobenius_norm(), 4.0);
}

TEST(Pcg, DetectsNonSpdOperator) {
  // An indefinite operator must trip the SPD invariant, not loop silently.
  Matrix a = Matrix::identity(4);
  a(2, 2) = -1.0;
  Vector b(4, 1.0);
  EXPECT_THROW(pcg([&](const Vector& v) { return matvec(a, v); }, b,
                   {.rel_tol = 1e-10, .max_iterations = 50}, nullptr),
               std::logic_error);
}

}  // namespace
}  // namespace subspar
