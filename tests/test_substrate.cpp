// Tests for the substrate solvers: stack eigenvalues against closed forms,
// solution properties of G (§2.4), eigenfunction-vs-FD cross validation, and
// the preconditioner behaviour behind Table 2.1.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "geometry/layout_gen.hpp"
#include "substrate/eigen_solver.hpp"
#include "substrate/fd_solver.hpp"
#include "substrate/multigrid.hpp"
#include "transform/poisson.hpp"
#include "substrate/solver.hpp"
#include "substrate/stack.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace subspar {
namespace {

// ---------------------------------------------------------------- stack

TEST(Stack, SingleLayerGroundedMatchesTanh) {
  const double sigma = 2.5, d = 7.0;
  const SubstrateStack st({{d, sigma}}, Backplane::kGrounded);
  for (const double gamma : {0.01, 0.1, 1.0, 10.0}) {
    EXPECT_NEAR(st.lambda(gamma), std::tanh(gamma * d) / (sigma * gamma),
                1e-12 * st.lambda(gamma));
  }
  EXPECT_NEAR(st.lambda_dc(), d / sigma, 1e-12);
}

TEST(Stack, SingleLayerFloatingMatchesCoth) {
  const double sigma = 1.0, d = 4.0;
  const SubstrateStack st({{d, sigma}}, Backplane::kFloating);
  for (const double gamma : {0.05, 0.5, 5.0}) {
    EXPECT_NEAR(st.lambda(gamma), 1.0 / (sigma * gamma * std::tanh(gamma * d)),
                1e-12 * st.lambda(gamma));
  }
  EXPECT_TRUE(std::isinf(st.lambda_dc()));
}

TEST(Stack, TwoEqualLayersEqualSingleLayer) {
  const SubstrateStack one({{10.0, 3.0}}, Backplane::kGrounded);
  const SubstrateStack two({{4.0, 3.0}, {6.0, 3.0}}, Backplane::kGrounded);
  for (const double gamma : {0.02, 0.3, 2.0, 20.0})
    EXPECT_NEAR(one.lambda(gamma), two.lambda(gamma), 1e-12 * one.lambda(gamma));
}

TEST(Stack, LargeGammaIsStableAndTopLayerDominated) {
  const SubstrateStack st = paper_stack();
  // For gamma * t_top >> 1 the mode cannot see below the top layer:
  // lambda -> 1/(sigma_top gamma).
  const double gamma = 1e4;
  const double lam = st.lambda(gamma);
  EXPECT_TRUE(std::isfinite(lam));
  EXPECT_NEAR(lam, 1.0 / gamma, 1e-3 / gamma);
}

TEST(Stack, LambdaMonotoneDecreasingInGamma) {
  const SubstrateStack st = paper_stack();
  double prev = st.lambda(1e-3);
  for (double gamma = 1e-2; gamma < 1e3; gamma *= 2.0) {
    const double cur = st.lambda(gamma);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Stack, ConductivityProfileLookup) {
  const SubstrateStack st = paper_stack(40.0, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(st.conductivity_at_depth(0.2), 1.0);
  EXPECT_DOUBLE_EQ(st.conductivity_at_depth(5.0), 100.0);
  EXPECT_DOUBLE_EQ(st.conductivity_at_depth(39.7), 0.1);
  EXPECT_DOUBLE_EQ(st.depth(), 40.0);
}

TEST(Stack, DcResistanceSeriesSum) {
  const SubstrateStack st = paper_stack(40.0, 0.5, 1.0);
  EXPECT_NEAR(st.lambda_dc(), 0.5 / 1.0 + 38.5 / 100.0 + 1.0 / 0.1, 1e-12);
}

// ------------------------------------------------------- eigenfunction solver

SubstrateStack shallow_stack() {
  // Shallow two-layer stack for fast tests.
  return SubstrateStack({{1.0, 1.0}, {7.0, 50.0}}, Backplane::kGrounded);
}

TEST(SurfaceSolver, PanelOperatorIsSymmetricPositive) {
  const Layout l = regular_grid_layout(4);
  const SurfaceSolver solver(l, shallow_stack());
  Rng rng(1);
  Vector q1(l.panels_x() * l.panels_y()), q2(q1.size());
  for (auto& v : q1) v = rng.normal();
  for (auto& v : q2) v = rng.normal();
  const Vector v1 = solver.apply_panel_operator(q1);
  const Vector v2 = solver.apply_panel_operator(q2);
  EXPECT_NEAR(dot(v1, q2), dot(v2, q1), 1e-9 * norm2(v1) * norm2(q2));
  EXPECT_GT(dot(v1, q1), 0.0);
}

TEST(SurfaceSolver, UniformCurrentSeesDcImpedance) {
  const Layout l = regular_grid_layout(4);
  const SubstrateStack st = shallow_stack();
  const SurfaceSolver solver(l, st);
  const std::size_t p = l.panels_x() * l.panels_y();
  const double total_current = 3.0;
  Vector q(p, total_current / static_cast<double>(p));
  const Vector v = solver.apply_panel_operator(q);
  const double expected = st.lambda_dc() * total_current / (l.width() * l.height());
  for (std::size_t i = 0; i < p; ++i) ASSERT_NEAR(v[i], expected, 1e-9 * expected);
}

TEST(SurfaceSolver, FullCoverContactMatchesSeriesResistance) {
  // One contact covering the whole surface: G = area / lambda_dc exactly.
  Layout l(8, 8, 2.0);
  l.add_contact(Contact(0, 0, 8, 8));
  const SubstrateStack st({{10.0, 2.0}}, Backplane::kGrounded);
  const SurfaceSolver solver(l, st);
  const Vector i = solver.solve(Vector{1.0});
  const double expected = l.width() * l.height() / st.lambda_dc();
  EXPECT_NEAR(i[0], expected, 1e-5 * expected);
}

TEST(SurfaceSolver, ConductanceMatrixSymmetric) {
  const Layout l = regular_grid_layout(4);
  const SurfaceSolver solver(l, shallow_stack());
  const Matrix g = extract_dense(solver);
  EXPECT_LT((g - g.transposed()).max_abs(), 1e-5 * g.max_abs());
}

TEST(SurfaceSolver, DiagonallyDominantWithNegativeCouplings) {
  const Layout l = regular_grid_layout(4);
  const SurfaceSolver solver(l, shallow_stack());
  const Matrix g = extract_dense(solver);
  for (std::size_t i = 0; i < g.rows(); ++i) {
    EXPECT_GT(g(i, i), 0.0);
    double off = 0.0;
    for (std::size_t j = 0; j < g.cols(); ++j) {
      if (j == i) continue;
      EXPECT_LT(g(i, j), 0.0) << i << "," << j;
      off += std::abs(g(i, j));
    }
    EXPECT_GE(g(i, i), off);  // strict with a backplane (§2.4)
  }
}

TEST(SurfaceSolver, CouplingDecaysWithDistance) {
  const Layout l = regular_grid_layout(8);
  const SurfaceSolver solver(l, paper_stack(40.0, 0.5, 1.0));
  Vector e(l.n_contacts());
  e[0] = 1.0;  // corner contact
  const Vector i = solver.solve(e);
  // Neighbor in x (contact 1) couples more strongly than a far contact.
  EXPECT_GT(std::abs(i[1]), std::abs(i[7]));
  EXPECT_GT(std::abs(i[7]), 0.0);
}

TEST(SurfaceSolver, PreconditionerDoesNotChangeAnswer) {
  const Layout l = regular_grid_layout(4);
  const SurfaceSolver with(l, shallow_stack(), {.contact_block_precond = true});
  const SurfaceSolver without(l, shallow_stack(), {.contact_block_precond = false});
  Rng rng(5);
  Vector v(l.n_contacts());
  for (auto& x : v) x = rng.normal();
  const Vector i1 = with.solve(v);
  const Vector i2 = without.solve(v);
  EXPECT_LT(norm2(i1 - i2), 1e-4 * norm2(i1));
  // And it should not be slower in iterations.
  EXPECT_LE(with.avg_iterations(), without.avg_iterations() + 1.0);
}

TEST(SurfaceSolver, SolveCountTracksCalls) {
  const Layout l = regular_grid_layout(4);
  const SurfaceSolver solver(l, shallow_stack());
  EXPECT_EQ(solver.solve_count(), 0);
  solver.solve(Vector(l.n_contacts(), 1.0));
  solver.solve(Vector(l.n_contacts(), 0.5));
  EXPECT_EQ(solver.solve_count(), 2);
  solver.reset_solve_count();
  EXPECT_EQ(solver.solve_count(), 0);
}

TEST(SampleColumns, CoversRequestedFraction) {
  const auto cols = sample_columns(100, 0.10);
  EXPECT_EQ(cols.size(), 10u);
  EXPECT_EQ(cols.front(), 0u);
  EXPECT_EQ(cols.back(), 90u);
  const auto all = sample_columns(7, 1.0);
  EXPECT_EQ(all.size(), 7u);
}

TEST(SampleColumns, RejectsEdgeArguments) {
  EXPECT_THROW(sample_columns(0, 0.5), std::invalid_argument);   // n == 0
  EXPECT_THROW(sample_columns(10, 0.0), std::invalid_argument);  // fraction <= 0
  EXPECT_THROW(sample_columns(10, -0.25), std::invalid_argument);
  EXPECT_THROW(sample_columns(10, 1.5), std::invalid_argument);  // fraction > 1
}

TEST(SampleColumns, TinyFractionsClampToSingleColumn) {
  // 1/fraction far beyond size_t range used to be an undefined cast; now it
  // clamps to stride n and still samples column 0.
  for (const double fraction : {1e-9, 1e-300}) {
    const auto cols = sample_columns(10, fraction);
    ASSERT_EQ(cols.size(), 1u);
    EXPECT_EQ(cols[0], 0u);
  }
  EXPECT_EQ(sample_columns(1, 1.0).size(), 1u);
}

TEST(SurfaceSolver, RejectsFloatingBackplane) {
  const Layout l = regular_grid_layout(4);
  const SubstrateStack st({{8.0, 1.0}}, Backplane::kFloating);
  EXPECT_THROW(SurfaceSolver(l, st), std::invalid_argument);
}

// ---------------------------------------------------------------- FD solver

SubstrateStack fd_stack(Backplane bp) {
  // Layer boundary at depth 4 = plane gap for h = 2, nz = 4, depth 8.
  return SubstrateStack({{4.0, 1.0}, {4.0, 10.0}}, bp);
}

TEST(FdSolver, ConductanceMatrixSymmetric) {
  const Layout l = regular_grid_layout(4);
  const FdSolver solver(l, fd_stack(Backplane::kGrounded), {.grid_h = 2.0});
  const Matrix g = extract_dense(solver);
  EXPECT_LT((g - g.transposed()).max_abs(), 1e-4 * g.max_abs());
}

TEST(FdSolver, FloatingBackplaneRowSumsVanish) {
  const Layout l = regular_grid_layout(4);
  const FdSolver solver(l, fd_stack(Backplane::kFloating), {.grid_h = 2.0});
  const Matrix g = extract_dense(solver);
  // No backplane: current out of one contact returns via the others
  // (tight diagonal dominance, rank-one deficiency; §2.4).
  for (std::size_t j = 0; j < g.cols(); ++j) {
    double colsum = 0.0;
    for (std::size_t i = 0; i < g.rows(); ++i) colsum += g(i, j);
    EXPECT_NEAR(colsum, 0.0, 1e-5 * g.max_abs());
  }
}

TEST(FdSolver, GroundedBackplaneLeaksCurrent) {
  const Layout l = regular_grid_layout(4);
  const FdSolver solver(l, fd_stack(Backplane::kGrounded), {.grid_h = 2.0});
  const Matrix g = extract_dense(solver);
  for (std::size_t j = 0; j < g.cols(); ++j) {
    double colsum = 0.0;
    for (std::size_t i = 0; i < g.rows(); ++i) colsum += g(i, j);
    EXPECT_GT(colsum, 0.0);  // strict dominance: some current exits below
  }
}

TEST(FdSolver, UniformSubstrateResistanceSanity) {
  // Single full-cover contact over a uniform grounded substrate: with the
  // h/2 ghost and backplane resistors, each node column is exactly a
  // resistor of length d, so G = sigma * A / d with no discretization error.
  Layout l(8, 8, 2.0);
  l.add_contact(Contact(0, 0, 8, 8));
  const SubstrateStack st({{8.0, 1.0}}, Backplane::kGrounded);
  const FdSolver solver(l, st, {.grid_h = 2.0, .rel_tol = 1e-10});
  const Vector i = solver.solve(Vector{1.0});
  const double expected = st.layers()[0].conductivity * l.width() * l.height() / st.depth();
  EXPECT_NEAR(i[0], expected, 1e-6 * expected);
}

TEST(FdSolver, PaperGhostPlacementAddsHalfSpacing) {
  // The paper's full-h ghost resistor ("first placement", eq. 2.15) makes
  // the same column a resistor of length d + h/2.
  Layout l(8, 8, 2.0);
  l.add_contact(Contact(0, 0, 8, 8));
  const SubstrateStack st({{8.0, 1.0}}, Backplane::kGrounded);
  const FdSolver solver(l, st, {.grid_h = 2.0, .rel_tol = 1e-10, .ghost_half_spacing = false});
  const Vector i = solver.solve(Vector{1.0});
  const double expected = l.width() * l.height() / (st.depth() + 0.5 * 2.0);
  EXPECT_NEAR(i[0], expected, 1e-6 * expected);
}

TEST(FdSolver, AgreesWithSurfaceSolverOnUniformStack) {
  // Cross-validation of the two independent solvers on the same physics.
  const Layout l = regular_grid_layout(4);
  const SubstrateStack st({{8.0, 1.0}}, Backplane::kGrounded);
  const SurfaceSolver ie(l, st);
  const FdSolver fd(l, st, {.grid_h = 1.0, .rel_tol = 1e-8});
  const Matrix gie = extract_dense(ie);
  const Matrix gfd = extract_dense(fd);
  // Different discretizations of the same operator: the FD solver converges
  // first-order from below (staircase + lumped stencil), so agreement at
  // this resolution is ~10% on the diagonal and ~25% on couplings.
  for (std::size_t i = 0; i < gie.rows(); ++i) {
    EXPECT_NEAR(gfd(i, i) / gie(i, i), 1.0, 0.15);
    for (std::size_t j = 0; j < gie.cols(); ++j) {
      if (i == j) continue;
      EXPECT_LT(gfd(i, j), 0.0);
      if (std::abs(gie(i, j)) > 1e-3 * gie.max_abs()) {
        EXPECT_NEAR(gfd(i, j) / gie(i, j), 1.0, 0.35) << i << "," << j;
      }
    }
  }
}

TEST(FdSolver, AllPreconditionersGiveSameSolution) {
  const Layout l = regular_grid_layout(4);
  const SubstrateStack st = fd_stack(Backplane::kGrounded);
  Rng rng(6);
  Vector v(l.n_contacts());
  for (auto& x : v) x = rng.normal();
  Vector ref;
  for (const auto kind :
       {FdPreconditioner::kNone, FdPreconditioner::kIncompleteCholesky,
        FdPreconditioner::kFastDirichlet, FdPreconditioner::kFastNeumann,
        FdPreconditioner::kFastAreaWeighted}) {
    const FdSolver solver(l, st, {.grid_h = 2.0, .precond = kind, .rel_tol = 1e-9});
    const Vector i = solver.solve(v);
    if (ref.empty()) {
      ref = i;
    } else {
      EXPECT_LT(norm2(i - ref), 1e-4 * norm2(ref)) << static_cast<int>(kind);
    }
  }
}

TEST(FdSolver, FastPreconditionerBeatsNoPreconditioner) {
  const Layout l = regular_grid_layout(4);
  const SubstrateStack st = fd_stack(Backplane::kGrounded);
  const FdSolver plain(l, st, {.grid_h = 2.0, .precond = FdPreconditioner::kNone});
  const FdSolver fast(l, st, {.grid_h = 2.0, .precond = FdPreconditioner::kFastAreaWeighted});
  Rng rng(7);
  Vector v(l.n_contacts());
  for (auto& x : v) x = rng.normal();
  plain.solve(v);
  fast.solve(v);
  EXPECT_LT(fast.avg_iterations(), plain.avg_iterations());
}

TEST(FdSolver, AreaWeightedNoWorseThanDirichlet) {
  // The Table 2.1 ordering: pure-Dirichlet is the weakest of the fast
  // preconditioners when contacts cover a minority of the surface.
  const Layout l = regular_grid_layout(4);
  const SubstrateStack st = fd_stack(Backplane::kGrounded);
  const FdSolver dirichlet(l, st, {.grid_h = 2.0, .precond = FdPreconditioner::kFastDirichlet});
  const FdSolver area(l, st, {.grid_h = 2.0, .precond = FdPreconditioner::kFastAreaWeighted});
  Rng rng(8);
  for (int t = 0; t < 3; ++t) {
    Vector v(l.n_contacts());
    for (auto& x : v) x = rng.normal();
    dirichlet.solve(v);
    area.solve(v);
  }
  EXPECT_LE(area.avg_iterations(), dirichlet.avg_iterations());
}

TEST(FdSolver, VolumeSolutionBoundedByContactVoltages) {
  // Discrete maximum principle: interior potentials lie within the imposed
  // contact voltage range (grounded case adds the 0 anchor).
  const Layout l = regular_grid_layout(4);
  const FdSolver solver(l, fd_stack(Backplane::kGrounded), {.grid_h = 2.0, .rel_tol = 1e-10});
  Vector v(l.n_contacts(), 1.0);
  const Vector x = solver.solve_volume(v);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_GE(x[i], -1e-8);
    ASSERT_LE(x[i], 1.0 + 1e-8);
  }
}


TEST(FdSolver, WellReducesContactConductance) {
  // Etching a cavity between two contacts forces current to detour around
  // it: self-conductance drops and so does the coupling magnitude.
  const Layout l = regular_grid_layout(4);
  const SubstrateStack st = fd_stack(Backplane::kGrounded);
  const FdSolver plain(l, st, {.grid_h = 2.0});
  FdSolverOptions wopt{.grid_h = 2.0};
  wopt.wells.push_back({14.0, 0.0, 4.0, 32.0, 4.0});  // trench between contact columns
  const FdSolver welled(l, st, wopt);
  Vector e(l.n_contacts());
  e[0] = 1.0;  // contact on the west side of the trench
  const Vector ip = plain.solve(e);
  const Vector iw = welled.solve(e);
  // Couplings to the east-side contacts weaken; self stays comparable.
  EXPECT_LT(std::abs(iw[3]), std::abs(ip[3]));
  EXPECT_NEAR(iw[0] / ip[0], 1.0, 0.25);
}

TEST(FdSolver, WellRejectsSwallowingContacts) {
  const Layout l = regular_grid_layout(4);
  FdSolverOptions opt{.grid_h = 2.0};
  opt.wells.push_back({0.0, 0.0, 32.0, 32.0, 2.0});  // covers contact nodes
  EXPECT_THROW(FdSolver(l, fd_stack(Backplane::kGrounded), opt), std::invalid_argument);
}

TEST(FdSolver, WelledSubstrateStillSymmetricAndDominant) {
  const Layout l = regular_grid_layout(4);
  FdSolverOptions opt{.grid_h = 2.0};
  opt.wells.push_back({14.0, 4.0, 4.0, 24.0, 4.0});
  const FdSolver solver(l, fd_stack(Backplane::kGrounded), opt);
  const Matrix g = extract_dense(solver);
  EXPECT_LT((g - g.transposed()).max_abs(), 1e-4 * g.max_abs());
  for (std::size_t i = 0; i < g.rows(); ++i) EXPECT_GT(g(i, i), 0.0);
}


// ---------------------------------------------------------------- multigrid

GridSpec small_mg_spec() {
  GridSpec spec;
  spec.nx = spec.ny = 16;
  spec.nz = 8;
  spec.h = 2.0;
  spec.sigma = {10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 1.0, 1.0};  // layered
  spec.g_top.assign(spec.nx * spec.ny, 0.0);
  for (std::size_t k = 0; k < spec.g_top.size(); k += 5) spec.g_top[k] = 4.0;
  spec.g_bottom = 2.0;
  return spec;
}

TEST(Multigrid, BuildsHierarchyAndCoarsens) {
  const GridMultigrid mg(small_mg_spec());
  EXPECT_GE(mg.levels(), 2u);
  EXPECT_EQ(mg.fine_matrix().rows(), 16u * 16u * 8u);
}

TEST(Multigrid, VcycleIsSymmetricOperator) {
  const GridMultigrid mg(small_mg_spec());
  Rng rng(21);
  Vector x(mg.fine_matrix().rows()), y(x.size());
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  EXPECT_NEAR(dot(mg.vcycle(x), y), dot(x, mg.vcycle(y)), 1e-8 * norm2(x) * norm2(y));
}

TEST(Multigrid, CyclesContractResidual) {
  const GridMultigrid mg(small_mg_spec());
  Rng rng(22);
  Vector b(mg.fine_matrix().rows());
  for (auto& v : b) v = rng.normal();
  double prev = norm2(b);
  for (std::size_t c = 2; c <= 8; c += 2) {
    const Vector x = mg.solve(b, c);
    const double r = norm2(b - mg.fine_matrix().apply(x));
    EXPECT_LT(r, 0.6 * prev);  // at least ~0.5/cycle-pair contraction
    prev = r;
  }
}

TEST(Multigrid, PreconditionsFdSolver) {
  const Layout l = regular_grid_layout(4);
  const SubstrateStack st = fd_stack(Backplane::kGrounded);
  const FdSolver plain(l, st, {.grid_h = 2.0, .precond = FdPreconditioner::kNone});
  const FdSolver mg(l, st, {.grid_h = 2.0, .precond = FdPreconditioner::kMultigrid});
  Rng rng(23);
  Vector v(l.n_contacts());
  for (auto& x : v) x = rng.normal();
  const Vector ip = plain.solve(v);
  const Vector im = mg.solve(v);
  EXPECT_LT(norm2(im - ip), 1e-4 * norm2(ip));
  EXPECT_LT(mg.avg_iterations(), 0.5 * plain.avg_iterations());
}

TEST(Multigrid, VcycleManyBitIdenticalToSingleColumns) {
  // The batched V-cycle's engine contract: column j of vcycle_many equals
  // vcycle of that column alone, bit for bit, for both smoothers.
  for (const MultigridSmoother sm :
       {MultigridSmoother::kGaussSeidel, MultigridSmoother::kRedBlack}) {
    MultigridOptions opt;
    opt.smoother = sm;
    const GridMultigrid mg(small_mg_spec(), opt);
    Rng rng(25);
    Matrix b(mg.fine_matrix().rows(), 5);
    for (std::size_t i = 0; i < b.rows(); ++i)
      for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) = rng.normal();
    const Matrix x = mg.vcycle_many(b);
    for (std::size_t j = 0; j < b.cols(); ++j) {
      const Vector xj = mg.vcycle(b.col(j));
      for (std::size_t i = 0; i < b.rows(); ++i)
        ASSERT_EQ(x(i, j), xj[i]) << "smoother " << static_cast<int>(sm) << " col " << j;
    }
  }
}

TEST(Multigrid, VcycleManyBitIdenticalAcrossThreadCounts) {
  MultigridOptions opt;
  opt.smoother = MultigridSmoother::kRedBlack;  // the parallel smoother
  const GridMultigrid mg(small_mg_spec(), opt);
  Rng rng(26);
  Matrix b(mg.fine_matrix().rows(), 4);
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) = rng.normal();
  set_thread_count(1);
  const Matrix x1 = mg.vcycle_many(b);
  set_thread_count(4);
  const Matrix x4 = mg.vcycle_many(b);
  set_thread_count(1);
  EXPECT_EQ((x1 - x4).max_abs(), 0.0);
}

TEST(Multigrid, RedBlackVcycleIsSymmetricAndContracts) {
  // RB-then-BR post-smoothing keeps the V-cycle a symmetric operator (PCG
  // requirement), and the red-black cycle still contracts the residual.
  MultigridOptions opt;
  opt.smoother = MultigridSmoother::kRedBlack;
  const GridMultigrid mg(small_mg_spec(), opt);
  Rng rng(27);
  Vector x(mg.fine_matrix().rows()), y(x.size());
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  EXPECT_NEAR(dot(mg.vcycle(x), y), dot(x, mg.vcycle(y)), 1e-8 * norm2(x) * norm2(y));
  Vector b(mg.fine_matrix().rows());
  for (auto& v : b) v = rng.normal();
  const Vector sol = mg.solve(b, 6);
  EXPECT_LT(norm2(b - mg.fine_matrix().apply(sol)), 0.2 * norm2(b));
}

TEST(Multigrid, MultigridPreconditionerWrapsVcycleMany) {
  const GridMultigrid mg(small_mg_spec());
  const MultigridPreconditioner pre(mg);
  Rng rng(28);
  Matrix r(mg.fine_matrix().rows(), 3);
  for (std::size_t i = 0; i < r.rows(); ++i)
    for (std::size_t j = 0; j < r.cols(); ++j) r(i, j) = rng.normal();
  EXPECT_EQ((pre.apply_many(r) - mg.vcycle_many(r)).max_abs(), 0.0);
}

// ------------------------------------------------- sparse-engine FD knobs

TEST(FdSolver, RcmAndNaturalIc0AgreeToTolerance) {
  const Layout l = regular_grid_layout(4);
  const SubstrateStack st = fd_stack(Backplane::kGrounded);
  FdSolverOptions rcm{.grid_h = 2.0, .precond = FdPreconditioner::kIncompleteCholesky};
  FdSolverOptions natural = rcm;
  natural.reorder = SparseReorder::kNone;
  const FdSolver a(l, st, rcm), b(l, st, natural);
  Rng rng(29);
  Vector v(l.n_contacts());
  for (auto& x : v) x = rng.normal();
  const Vector ia = a.solve(v), ib = b.solve(v);
  EXPECT_LT(norm2(ia - ib), 1e-4 * norm2(ia));
  // Orderings change the IC(0) factor, not its quality class.
  EXPECT_LT(a.avg_iterations(), 2.0 * b.avg_iterations() + 8.0);
}

TEST(FdSolver, RedBlackMultigridSolvesLikeLexicographic) {
  const Layout l = regular_grid_layout(4);
  const SubstrateStack st = fd_stack(Backplane::kGrounded);
  FdSolverOptions lex{.grid_h = 2.0, .precond = FdPreconditioner::kMultigrid};
  FdSolverOptions rb = lex;
  rb.mg_smoother = MultigridSmoother::kRedBlack;
  const FdSolver a(l, st, lex), b(l, st, rb);
  Rng rng(30);
  Matrix v(l.n_contacts(), 3);
  for (std::size_t i = 0; i < v.rows(); ++i)
    for (std::size_t j = 0; j < v.cols(); ++j) v(i, j) = rng.normal();
  const Matrix ia = a.solve_many(v), ib = b.solve_many(v);
  EXPECT_LT((ia - ib).max_abs(), 1e-4 * ia.max_abs());
}

TEST(FdSolver, CacheTagDigestsEngineKnobs) {
  const Layout l = regular_grid_layout(4);
  const SubstrateStack st = fd_stack(Backplane::kGrounded);
  FdSolverOptions base{.grid_h = 2.0, .precond = FdPreconditioner::kIncompleteCholesky};
  FdSolverOptions natural = base;
  natural.reorder = SparseReorder::kNone;
  FdSolverOptions rb{.grid_h = 2.0, .precond = FdPreconditioner::kMultigrid};
  FdSolverOptions rb2 = rb;
  rb2.mg_smoother = MultigridSmoother::kRedBlack;
  FdSolverOptions sweeps = rb;
  sweeps.mg_smoothing_sweeps = 2;
  EXPECT_NE(FdSolver(l, st, base).cache_tag(), FdSolver(l, st, natural).cache_tag());
  EXPECT_NE(FdSolver(l, st, rb).cache_tag(), FdSolver(l, st, rb2).cache_tag());
  EXPECT_NE(FdSolver(l, st, rb).cache_tag(), FdSolver(l, st, sweeps).cache_tag());
}

TEST(FdSolver, ImpossibleIterationBudgetDegradesGracefully) {
  // An impossible iteration budget no longer kills the solve: the fallback
  // chain (restart, tighter IC(0) preconditioner, dense direct solve)
  // recovers the columns, records what it did in the solver diagnostics,
  // and the currents still match a healthy solver. Exhausting the whole
  // chain still throws (see the robust_pcg_block suite in test_fault).
  const Layout l = regular_grid_layout(4);
  const FdSolver s(l, fd_stack(Backplane::kGrounded),
                   {.grid_h = 2.0, .precond = FdPreconditioner::kNone, .max_iterations = 2});
  const FdSolver ref(l, fd_stack(Backplane::kGrounded),
                     {.grid_h = 2.0, .precond = FdPreconditioner::kNone});
  Vector v(l.n_contacts());
  v[0] = 1.0;
  const Vector i_fb = s.solve(v);
  const Vector i_ref = ref.solve(v);
  const SolverDiagnostics& d = s.diagnostics();
  EXPECT_GT(d.max_iteration_hits, 0);
  EXPECT_GT(d.restarts + d.direct_columns, 0);
  EXPECT_LT(norm_inf(i_fb - i_ref), 1e-6 * norm_inf(i_ref));
  Matrix vm(l.n_contacts(), 3);
  vm(0, 0) = vm(1, 1) = vm(2, 2) = 1.0;
  EXPECT_NO_THROW(s.solve_many(vm));
  s.reset_diagnostics();
  EXPECT_EQ(s.diagnostics().restarts, 0);
}

TEST(Multigrid, AssemblyMatchesFastPoissonStencil) {
  // With uniform coefficients and no anchors the grid Laplacian must agree
  // with the FastPoisson3D stencil applied to random vectors.
  GridSpec spec;
  spec.nx = spec.ny = 8;
  spec.nz = 4;
  spec.h = 1.0;
  spec.sigma.assign(4, 3.0);
  spec.g_top.assign(64, 0.0);
  const SparseMatrix a = assemble_grid_laplacian(spec);
  PoissonGrid pg;
  pg.nx = pg.ny = 8;
  pg.nz = 4;
  pg.lateral_g.assign(4, 3.0);
  pg.vertical_g.assign(3, 3.0);
  const FastPoisson3D fp(pg);
  Rng rng(24);
  Vector x(a.rows());
  for (auto& v : x) v = rng.normal();
  EXPECT_LT(norm2(a.apply(x) - fp.apply(x)), 1e-10 * norm2(x));
}

class SolverAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreement, ReciprocityHoldsForRandomPairs) {
  // G(i,j) == G(j,i) measured through single solves (reciprocity of the
  // resistive network), for both solvers.
  const Layout l = regular_grid_layout(4);
  Rng rng(100 + GetParam());
  const std::size_t i = rng.below(l.n_contacts());
  std::size_t j = rng.below(l.n_contacts());
  if (j == i) j = (j + 1) % l.n_contacts();
  const SurfaceSolver ie(l, shallow_stack());
  Vector ei(l.n_contacts()), ej(l.n_contacts());
  ei[i] = 1.0;
  ej[j] = 1.0;
  const double gij = ie.solve(ej)[i];
  const double gji = ie.solve(ei)[j];
  EXPECT_NEAR(gij, gji, 1e-5 * std::abs(gij));
}

INSTANTIATE_TEST_SUITE_P(Pairs, SolverAgreement, ::testing::Range(0, 6));

}  // namespace
}  // namespace subspar

namespace subspar {
namespace {

TEST(SurfaceSolver, SupportsRectangularPanelGrids) {
  // The eigenfunction solver handles a != b substrates (the quadtree-based
  // sparsifiers need square surfaces, the solver itself does not).
  Layout l(32, 16, 2.0);
  l.add_contact(Contact(2, 2, 2, 2));
  l.add_contact(Contact(20, 10, 2, 2));
  const SurfaceSolver solver(l, paper_stack(16.0));
  const Matrix g = extract_dense(solver);
  EXPECT_LT((g - g.transposed()).max_abs(), 1e-5 * g.max_abs());
  EXPECT_GT(g(0, 0), 0.0);
  EXPECT_LT(g(0, 1), 0.0);
}

TEST(SurfaceSolver, SuperpositionHolds) {
  // G is linear: solve(a*v1 + b*v2) == a*solve(v1) + b*solve(v2).
  const Layout l = regular_grid_layout(4);
  const SurfaceSolver solver(l, shallow_stack());
  Rng rng(77);
  Vector v1(l.n_contacts()), v2(l.n_contacts());
  for (auto& x : v1) x = rng.normal();
  for (auto& x : v2) x = rng.normal();
  Vector combo(l.n_contacts());
  for (std::size_t i = 0; i < combo.size(); ++i) combo[i] = 2.0 * v1[i] - 0.5 * v2[i];
  const Vector lhs = solver.solve(combo);
  const Vector rhs = 2.0 * solver.solve(v1) - 0.5 * solver.solve(v2);
  EXPECT_LT(norm2(lhs - rhs), 1e-4 * norm2(lhs));
}

// ------------------------------------------------------- batched solve_many

TEST(SolveMany, SurfaceSolverMatchesLoopedSolve) {
  const Layout l = regular_grid_layout(4);
  const SurfaceSolver solver(l, shallow_stack());
  Rng rng(90);
  Matrix v(l.n_contacts(), 5);
  for (std::size_t i = 0; i < v.rows(); ++i)
    for (std::size_t j = 0; j < v.cols(); ++j) v(i, j) = rng.normal();
  const Matrix batched = solver.solve_many(v);
  for (std::size_t j = 0; j < v.cols(); ++j) {
    const Vector one = solver.solve(v.col(j));
    // Both paths converge to the same per-column residual tolerance; the
    // block Krylov space differs from the single-vector one, so agreement
    // is to solver tolerance, not bit-exact.
    EXPECT_LT(norm2(batched.col(j) - one), 1e-4 * norm2(one)) << "column " << j;
  }
}

TEST(SolveMany, FdSolverMatchesLoopedSolve) {
  const Layout l = regular_grid_layout(4);
  const FdSolver solver(l, fd_stack(Backplane::kGrounded), {.grid_h = 2.0, .rel_tol = 1e-8});
  Rng rng(91);
  Matrix v(l.n_contacts(), 4);
  for (std::size_t i = 0; i < v.rows(); ++i)
    for (std::size_t j = 0; j < v.cols(); ++j) v(i, j) = rng.normal();
  const Matrix batched = solver.solve_many(v);
  for (std::size_t j = 0; j < v.cols(); ++j) {
    const Vector one = solver.solve(v.col(j));
    EXPECT_LT(norm2(batched.col(j) - one), 1e-4 * norm2(one)) << "column " << j;
  }
}

TEST(SolveMany, CountsKSolvesAndHandlesZeroColumns) {
  const Layout l = regular_grid_layout(4);
  const SurfaceSolver solver(l, shallow_stack());
  Matrix v(l.n_contacts(), 3);
  v(0, 0) = 1.0;  // column 1 stays all-zero
  v(3, 2) = -2.0;
  solver.reset_solve_count();
  const Matrix i = solver.solve_many(v);
  EXPECT_EQ(solver.solve_count(), 3);  // batching must not change the paper's accounting
  for (std::size_t c = 0; c < i.rows(); ++c) EXPECT_EQ(i(c, 1), 0.0);
  EXPECT_GT(i(0, 0), 0.0);
}

TEST(SolveMany, MoreEfficientThanLoopedSolves) {
  // The point of the blocked PCG: one shared block-Krylov space needs
  // fewer iterations per right-hand side than independent single solves
  // (measured without the block preconditioner and at a tight tolerance so
  // the iteration counts are large enough to separate).
  const Layout l = regular_grid_layout(8);
  const SurfaceSolver solver(l, paper_stack(40.0, 0.5, 1.0),
                             {.rel_tol = 1e-9, .contact_block_precond = false});
  Rng rng(92);
  Matrix v(l.n_contacts(), 16);
  for (std::size_t i = 0; i < v.rows(); ++i)
    for (std::size_t j = 0; j < v.cols(); ++j) v(i, j) = rng.normal();
  solver.reset_iteration_stats();
  solver.solve_many(v);
  const double batched_avg = solver.avg_iterations();
  solver.reset_iteration_stats();
  for (std::size_t j = 0; j < v.cols(); ++j) solver.solve(v.col(j));
  const double looped_avg = solver.avg_iterations();
  EXPECT_LT(batched_avg, looped_avg);
}

TEST(SolveMany, BitIdenticalAcrossThreadCounts) {
  // SUBSPAR_THREADS=1 is the reference; any other pool size must reproduce
  // it exactly (threads only fan out independent per-column work).
  const Layout l = regular_grid_layout(4);
  const SurfaceSolver surface(l, shallow_stack());
  const FdSolver fd(l, fd_stack(Backplane::kGrounded), {.grid_h = 2.0});
  Rng rng(93);
  Matrix v(l.n_contacts(), 6);
  for (std::size_t i = 0; i < v.rows(); ++i)
    for (std::size_t j = 0; j < v.cols(); ++j) v(i, j) = rng.normal();
  set_thread_count(1);
  const Matrix s1 = surface.solve_many(v);
  const Matrix f1 = fd.solve_many(v);
  set_thread_count(4);
  const Matrix s4 = surface.solve_many(v);
  const Matrix f4 = fd.solve_many(v);
  set_thread_count(1);
  EXPECT_EQ((s1 - s4).max_abs(), 0.0);
  EXPECT_EQ((f1 - f4).max_abs(), 0.0);
}

TEST(SolveMany, ExtractDenseBitIdenticalAcrossThreadCounts) {
  const Layout l = regular_grid_layout(4);
  const SurfaceSolver solver(l, shallow_stack());
  set_thread_count(1);
  const Matrix g1 = extract_dense(solver);
  set_thread_count(4);
  const Matrix g4 = extract_dense(solver);
  set_thread_count(1);
  EXPECT_EQ((g1 - g4).max_abs(), 0.0);
}

TEST(SurfaceSolver, PreconditionerBlocksAreSymmetric) {
  // The kernel_block_entry-based assembly must produce exactly symmetric
  // block-Jacobi blocks (CG requires a symmetric preconditioner).
  const Layout l = regular_grid_layout(4);
  const SurfaceSolver solver(l, shallow_stack());
  const std::size_t mx = l.panels_x(), ny = l.panels_y();
  Vector unit(mx * ny);
  const std::size_t cx = mx / 2, cy = ny / 2;
  unit[cx + mx * cy] = 1.0;
  const Vector kernel = solver.apply_panel_operator(unit);
  // In-range offsets read the kernel grid directly.
  EXPECT_EQ(kernel_block_entry(kernel, mx, ny, cx, cy, 1, 2),
            kernel[(cx + 1) + mx * (cy + 2)]);
  EXPECT_EQ(kernel_block_entry(kernel, mx, ny, cx, cy, -2, 0),
            kernel[(cx - 2) + mx * cy]);
  // The kernel is even in the offset up to boundary effects (a few percent
  // at this grid size) — the property the symmetrized assembly exploits.
  EXPECT_NEAR(kernel_block_entry(kernel, mx, ny, cx, cy, 2, 1),
              kernel_block_entry(kernel, mx, ny, cx, cy, -2, -1),
              0.05 * std::abs(kernel_block_entry(kernel, mx, ny, cx, cy, 2, 1)));
  // Out-of-range offsets clamp to the edge instead of wrapping.
  EXPECT_EQ(kernel_block_entry(kernel, mx, ny, cx, cy, 1000, 0),
            kernel_block_entry(kernel, mx, ny, cx, cy, static_cast<long>(mx), 0));
}

TEST(FdSolver, DeeperGridMoreAccurateThanCoarse) {
  // First-order convergence: halving h must move G(0,0) toward the
  // eigenfunction solver's value.
  const Layout l = regular_grid_layout(4);
  const SubstrateStack st({{8.0, 1.0}}, Backplane::kGrounded);
  const SurfaceSolver ie(l, st);
  Vector e(l.n_contacts());
  e[0] = 1.0;
  const double ref = ie.solve(e)[0];
  const FdSolver coarse(l, st, {.grid_h = 2.0});
  const FdSolver fine(l, st, {.grid_h = 1.0});
  const double ec = std::abs(coarse.solve(e)[0] - ref);
  const double ef = std::abs(fine.solve(e)[0] - ref);
  EXPECT_LT(ef, ec);
}

}  // namespace
}  // namespace subspar
