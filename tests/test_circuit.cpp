// Tests for the substrate-aware circuit simulator: MNA correctness against
// hand-solved circuits, the substrate coupling block against an equivalent
// resistor network, and backward-Euler transient behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/netlist.hpp"
#include "circuit/simulator.hpp"
#include "core/extractor.hpp"
#include "geometry/layout_gen.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eig_sym.hpp"
#include "linalg/lanczos.hpp"
#include "substrate/eigen_solver.hpp"
#include "substrate/solver.hpp"
#include "util/rng.hpp"

namespace subspar {
namespace {

TEST(Netlist, BuildsAndValidates) {
  Netlist nl;
  const NodeId a = nl.add_node("a");
  const NodeId b = nl.add_node();
  nl.add_resistor(a, b, 10.0);
  nl.add_resistor(b, kGround, 5.0);
  EXPECT_EQ(nl.n_nodes(), 2u);
  EXPECT_EQ(nl.node_name(a), "a");
  EXPECT_THROW(nl.add_resistor(a, a, 1.0), std::invalid_argument);
  EXPECT_THROW(nl.add_resistor(a, 99, 1.0), std::invalid_argument);
  EXPECT_THROW(nl.add_resistor(a, b, 0.0), std::invalid_argument);
}

TEST(CircuitSim, VoltageDividerDc) {
  Netlist nl;
  const NodeId top = nl.add_node("top");
  const NodeId mid = nl.add_node("mid");
  nl.add_voltage_source(top, kGround, 9.0);
  nl.add_resistor(top, mid, 2000.0);
  nl.add_resistor(mid, kGround, 1000.0);
  CircuitSim sim(nl);
  const Vector x = sim.solve_dc();
  EXPECT_NEAR(sim.node_voltage(x, top), 9.0, 1e-9);
  EXPECT_NEAR(sim.node_voltage(x, mid), 3.0, 1e-9);
  // Source supplies 3 mA flowing top -> ground through the divider.
  EXPECT_NEAR(sim.vsource_current(x, 0), -3e-3, 1e-9);
}

TEST(CircuitSim, CurrentSourceIntoResistor) {
  Netlist nl;
  const NodeId n = nl.add_node();
  nl.add_current_source(kGround, n, 2e-3);  // 2 mA into n
  nl.add_resistor(n, kGround, 500.0);
  CircuitSim sim(nl);
  const Vector x = sim.solve_dc();
  EXPECT_NEAR(sim.node_voltage(x, n), 1.0, 1e-9);
}

TEST(CircuitSim, WheatstoneBridgeBalanced) {
  Netlist nl;
  const NodeId top = nl.add_node();
  const NodeId left = nl.add_node();
  const NodeId right = nl.add_node();
  nl.add_voltage_source(top, kGround, 10.0);
  nl.add_resistor(top, left, 100.0);
  nl.add_resistor(top, right, 100.0);
  nl.add_resistor(left, kGround, 200.0);
  nl.add_resistor(right, kGround, 200.0);
  nl.add_resistor(left, right, 55.0);  // bridge resistor carries no current
  CircuitSim sim(nl);
  const Vector x = sim.solve_dc();
  EXPECT_NEAR(sim.node_voltage(x, left), sim.node_voltage(x, right), 1e-9);
}

TEST(CircuitSim, SubstrateBlockMatchesEquivalentNetwork) {
  // Two substrate contacts bound to two circuit nodes must behave exactly
  // like the 2x2 conductance network G of the substrate (pi-equivalent).
  Layout layout(16, 16, 2.0);
  layout.add_contact(Contact(2, 2, 2, 2));
  layout.add_contact(Contact(10, 6, 2, 2));
  const SurfaceSolver solver(layout, paper_stack(16.0));
  const Matrix g = extract_dense(solver);

  // Substrate-bound circuit: drive contact 0 through a series resistor.
  Netlist nl;
  const NodeId drv = nl.add_node("drive");
  const NodeId c0 = nl.add_node("c0");
  const NodeId c1 = nl.add_node("c1");
  nl.add_voltage_source(drv, kGround, 1.0);
  nl.add_resistor(drv, c0, 0.25);
  nl.add_resistor(c1, kGround, 0.5);
  SubstrateBinding binding;
  binding.contact_nodes = {c0, c1};
  binding.coupling = [&](const Vector& vc) { return matvec(g, vc); };
  CircuitSim sim(nl, binding);
  const Vector x = sim.solve_dc();

  // Reference: same circuit with the substrate replaced by its exact
  // pi-network (g01 between the nodes, row-sum remainders to ground).
  Netlist ref;
  const NodeId rdrv = ref.add_node();
  const NodeId rc0 = ref.add_node();
  const NodeId rc1 = ref.add_node();
  ref.add_voltage_source(rdrv, kGround, 1.0);
  ref.add_resistor(rdrv, rc0, 0.25);
  ref.add_resistor(rc1, kGround, 0.5);
  ref.add_resistor(rc0, rc1, 1.0 / (-g(0, 1)));
  ref.add_resistor(rc0, kGround, 1.0 / (g(0, 0) + g(0, 1)));
  ref.add_resistor(rc1, kGround, 1.0 / (g(1, 1) + g(1, 0)));
  CircuitSim rsim(ref);
  const Vector rx = rsim.solve_dc();

  EXPECT_NEAR(sim.node_voltage(x, c0), rsim.node_voltage(rx, rc0), 1e-7);
  EXPECT_NEAR(sim.node_voltage(x, c1), rsim.node_voltage(rx, rc1), 1e-7);
}

TEST(CircuitSim, SparsifiedCouplingMatchesDenseCoupling) {
  const Layout layout = regular_grid_layout(4);
  const SurfaceSolver solver(layout, paper_stack());
  const QuadTree tree(layout);
  const Matrix g = extract_dense(solver);
  const SparsifiedModel model = extract_sparsified(solver, tree);

  auto build = [&](const std::function<Vector(const Vector&)>& coupling, Netlist& nl) {
    std::vector<NodeId> nodes;
    for (std::size_t k = 0; k < layout.n_contacts(); ++k) nodes.push_back(kGround);
    const NodeId hot = nl.add_node("hot");
    nodes[0] = hot;
    nl.add_current_source(kGround, hot, 1e-3);
    nl.add_resistor(hot, kGround, 1000.0);
    SubstrateBinding b;
    b.contact_nodes = std::move(nodes);
    b.coupling = coupling;
    return b;
  };

  Netlist nl1, nl2;
  auto b1 = build([&](const Vector& vc) { return matvec(g, vc); }, nl1);
  auto b2 = build([&](const Vector& vc) { return model.apply(vc); }, nl2);
  CircuitSim dense_sim(nl1, b1);
  CircuitSim sparse_sim(nl2, b2);
  const NodeId hot = 0;  // first node created inside build()
  const double v_dense = dense_sim.node_voltage(dense_sim.solve_dc(), hot);
  const double v_sparse = sparse_sim.node_voltage(sparse_sim.solve_dc(), hot);
  EXPECT_GT(std::abs(v_dense), 0.0);
  EXPECT_NEAR(v_sparse, v_dense, 5e-3 * std::abs(v_dense) + 1e-12);
}

TEST(NetlistText, FormatParseRoundTrip) {
  Netlist nl;
  const NodeId in = nl.add_node("in");
  const NodeId out = nl.add_node("out");
  const NodeId aux = nl.add_node();  // auto-named
  nl.add_voltage_source(in, kGround, 2.5);
  nl.add_resistor(in, out, 1000.0);
  nl.add_resistor(out, aux, 47.5);
  nl.add_capacitor(out, kGround, 1e-6);
  nl.add_current_source(kGround, aux, 3e-3);

  const std::string text = format_netlist(nl);
  const Netlist back = parse_netlist(text);
  ASSERT_EQ(back.n_nodes(), nl.n_nodes());
  ASSERT_EQ(back.resistors().size(), nl.resistors().size());
  ASSERT_EQ(back.capacitors().size(), nl.capacitors().size());
  ASSERT_EQ(back.current_sources().size(), nl.current_sources().size());
  ASSERT_EQ(back.voltage_sources().size(), nl.voltage_sources().size());
  // Every element's topology survives by NAME (ids may renumber with the
  // order of first reference), and the values survive to the last digit.
  const auto name = [](const Netlist& n, NodeId id) {
    return id == kGround ? std::string("0") : n.node_name(id);
  };
  for (std::size_t i = 0; i < nl.resistors().size(); ++i) {
    EXPECT_EQ(name(back, back.resistors()[i].a), name(nl, nl.resistors()[i].a));
    EXPECT_EQ(name(back, back.resistors()[i].b), name(nl, nl.resistors()[i].b));
    EXPECT_DOUBLE_EQ(back.resistors()[i].g, nl.resistors()[i].g);
  }
  EXPECT_EQ(name(back, back.capacitors()[0].a), "out");
  EXPECT_EQ(back.capacitors()[0].c, 1e-6);
  EXPECT_EQ(back.current_sources()[0].i, 3e-3);
  EXPECT_EQ(back.voltage_sources()[0].v, 2.5);
  // The text form is a fixed point of parse/format after the first trip.
  const std::string text2 = format_netlist(back);
  EXPECT_EQ(format_netlist(parse_netlist(text2)), text2);
}

TEST(NetlistText, ParsesHandWrittenCardsWithSuffixes) {
  const Netlist nl = parse_netlist(
      "* RC divider, hand-written\n"
      "V1 vin 0 5\n"
      "R1 vin vout 4.7k\n"
      "R2 vout 0 9400\n"
      "C1 vout gnd 2.2u\n"
      "I1 0 vout 1m\n"
      ".end\n");
  ASSERT_EQ(nl.n_nodes(), 2u);
  EXPECT_DOUBLE_EQ(1.0 / nl.resistors()[0].g, 4700.0);
  EXPECT_DOUBLE_EQ(1.0 / nl.resistors()[1].g, 9400.0);
  EXPECT_DOUBLE_EQ(nl.capacitors()[0].c, 2.2e-6);
  EXPECT_DOUBLE_EQ(nl.current_sources()[0].i, 1e-3);
  EXPECT_DOUBLE_EQ(nl.voltage_sources()[0].v, 5.0);
  // Ground accepted as both 0 and gnd.
  EXPECT_EQ(nl.capacitors()[0].b, kGround);

  // Malformed cards are rejected, not silently skipped.
  EXPECT_THROW(parse_netlist("R1 a b\n"), std::invalid_argument);          // missing value
  EXPECT_THROW(parse_netlist("R1 a b 10 extra\n"), std::invalid_argument); // trailing junk
  EXPECT_THROW(parse_netlist("X1 a b 10\n"), std::invalid_argument);       // unknown card
  EXPECT_THROW(parse_netlist("R1 a b 10q\n"), std::invalid_argument);      // bad suffix
  EXPECT_THROW(parse_netlist("R1 a b ohms\n"), std::invalid_argument);     // not a number
}

TEST(NetlistText, HardenedParserRejectsStructuralErrors) {
  // Empty input (no element cards at all) is rejected, not returned as a
  // useless zero-node netlist.
  EXPECT_THROW(parse_netlist(""), std::invalid_argument);
  EXPECT_THROW(parse_netlist("* only a comment\n.end\n"), std::invalid_argument);
  // Duplicate element definitions, case-insensitively ('r1' redefines 'R1').
  EXPECT_THROW(parse_netlist("R1 a b 10\nR1 b c 20\n"), std::invalid_argument);
  EXPECT_THROW(parse_netlist("R1 a b 10\nr1 b c 20\n"), std::invalid_argument);
  // Out-of-range values: a literal beyond double range (strtod saturates to
  // inf) and a suffix-scaled overflow.
  EXPECT_THROW(parse_netlist("R1 a b 1e400\n"), std::invalid_argument);
  EXPECT_THROW(parse_netlist("R1 a b 1e306t\n"), std::invalid_argument);
}

TEST(NetlistText, ParseErrorsCarryTheSourceLineNumber) {
  try {
    parse_netlist("V1 in 0 1\nR1 in out 1k\nR2 out 0 bad\n");
    FAIL() << "accepted a malformed value";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
  // Element preconditions (here: a self-loop resistor) surface with the
  // line context attached, not as a bare requirement failure.
  try {
    parse_netlist("V1 in 0 1\nR1 a a 10\n");
    FAIL() << "accepted a self-loop resistor";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(NetlistText, ParsedRcTransientMatchesAnalytic) {
  // The RC step-response circuit, entering the simulator from TEXT: charge
  // a 1 ms time-constant RC from a 1 V step and compare with
  // 1 - exp(-t / RC).
  Netlist nl = parse_netlist(
      "V1 src 0 0\n"
      "R1 src out 1k\n"
      "C1 out 0 1u\n");
  CircuitSim sim(nl);
  const double dt = 5e-5;
  const auto tr = sim.transient(dt, 60, {1},
                                [](double, Netlist& net) { net.set_voltage_source(0, 1.0); });
  for (std::size_t k = 0; k < tr.time.size(); ++k) {
    const double expect = 1.0 - std::exp(-tr.time[k] / 1e-3);
    EXPECT_NEAR(tr.probe_voltages[k][0], expect, 0.03);
  }
}

TEST(CircuitSim, TransientRcDecayMatchesAnalytic) {
  // Step-charge a capacitor through a resistor: the source is 0 at the DC
  // operating point and steps to 1 V for t > 0, so the backward-Euler
  // trajectory must track 1 - exp(-t/RC) to first order in dt.
  Netlist nl;
  const NodeId src = nl.add_node();
  const NodeId out = nl.add_node();
  nl.add_voltage_source(src, kGround, 0.0);
  nl.add_resistor(src, out, 1000.0);
  nl.add_capacitor(out, kGround, 1e-6);  // tau = 1 ms
  CircuitSim sim(nl);
  const double dt = 5e-5;
  const auto tr = sim.transient(dt, 60, {out},
                                [](double, Netlist& net) { net.set_voltage_source(0, 1.0); });
  for (std::size_t k = 0; k < tr.time.size(); ++k) {
    const double expect = 1.0 - std::exp(-tr.time[k] / 1e-3);
    EXPECT_NEAR(tr.probe_voltages[k][0], expect, 0.03);
  }
  // Monotone rise.
  for (std::size_t k = 1; k < tr.time.size(); ++k)
    EXPECT_GE(tr.probe_voltages[k][0] + 1e-12, tr.probe_voltages[k - 1][0]);
}

TEST(CircuitSim, TransientStimulusInjection) {
  // Square-wave current source; response must follow the stimulus sign.
  Netlist nl;
  const NodeId n = nl.add_node();
  nl.add_current_source(kGround, n, 0.0);
  nl.add_resistor(n, kGround, 100.0);
  CircuitSim sim(nl);
  const auto tr = sim.transient(1e-4, 20, {n}, [](double t, Netlist& net) {
    net.set_current_source(0, t < 1e-3 ? 1e-3 : -1e-3);
  });
  EXPECT_NEAR(tr.probe_voltages[5][0], 0.1, 1e-6);
  EXPECT_NEAR(tr.probe_voltages[15][0], -0.1, 1e-6);
}

TEST(Lanczos, RecoversSpectrumOfKnownMatrix) {
  Rng rng(5);
  const std::size_t n = 40;
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  Matrix a = matmul_tn(b, b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  const EigSym dec = eig_sym(a);
  const SpectrumEstimate est =
      lanczos_extremes([&](const Vector& v) { return matvec(a, v); }, n, 40);
  EXPECT_NEAR(est.lambda_max, dec.values[n - 1], 1e-6 * dec.values[n - 1]);
  EXPECT_NEAR(est.lambda_min, dec.values[0], 0.05 * dec.values[0]);
}

TEST(Lanczos, PreconditioningCompressesSpectrum) {
  // cond(M^{-1}A) << cond(A) for a good preconditioner — the mechanism
  // behind Table 2.1, checked on a 1-D chain with its exact inverse.
  Rng rng(6);
  const std::size_t n = 64;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 2.01;
    if (i > 0) a(i, i - 1) = -1.0;
    if (i + 1 < n) a(i, i + 1) = -1.0;
  }
  const SpectrumEstimate plain =
      lanczos_extremes([&](const Vector& v) { return matvec(a, v); }, n, 60);
  const Cholesky chol(a);
  const SpectrumEstimate prec = lanczos_extremes(
      [&](const Vector& v) { return chol.solve(matvec(a, v)); }, n, 20);
  EXPECT_GT(plain.condition(), 100.0);
  EXPECT_LT(prec.condition(), 1.5);
}

}  // namespace
}  // namespace subspar
