// Tests for the geometry substrate: layouts, quadtree square relations, and
// analytical contact moments (validated against numerical quadrature).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geometry/layout.hpp"
#include "geometry/layout_gen.hpp"
#include "geometry/moments.hpp"
#include "geometry/quadtree.hpp"
#include "util/rng.hpp"

namespace subspar {
namespace {

// ---------------------------------------------------------------- layout

TEST(Layout, AreaCentroidPanelsOfRectContact) {
  Layout l(8, 8, 2.0);
  const std::size_t id = l.add_contact(Contact(1, 2, 2, 3));
  EXPECT_DOUBLE_EQ(l.contact_area(id), 6.0 * 4.0);
  const auto [cx, cy] = l.contact_centroid(id);
  EXPECT_DOUBLE_EQ(cx, 2.0 * 2.0);  // x in [2,6], center 4
  EXPECT_DOUBLE_EQ(cy, 3.5 * 2.0);  // y in [4,10], center 7
  EXPECT_EQ(l.contact_panels(id).size(), 6u);
  EXPECT_EQ(l.panel_owner(1, 2), 0);
  EXPECT_EQ(l.panel_owner(0, 0), -1);
}

TEST(Layout, RejectsOverlapAndOutOfBounds) {
  Layout l(8, 8, 1.0);
  l.add_contact(Contact(0, 0, 2, 2));
  EXPECT_THROW(l.add_contact(Contact(1, 1, 2, 2)), std::invalid_argument);
  EXPECT_THROW(l.add_contact(Contact(7, 7, 2, 2)), std::invalid_argument);
  EXPECT_THROW(l.add_contact(Contact(0, 0, 0, 1)), std::invalid_argument);
}

TEST(Layout, MultiPartContactActsAsOne) {
  Layout l(8, 8, 1.0);
  // L-shaped contact from two rects.
  Contact c(std::vector<Rect>{{0, 0, 3, 1}, {0, 1, 1, 2}});
  const std::size_t id = l.add_contact(c);
  EXPECT_EQ(l.contact_panels(id).size(), 5u);
  const Rect bb = l.contact(id).bounding_box();
  EXPECT_EQ(bb.w, 3);
  EXPECT_EQ(bb.h, 3);
}

TEST(Layout, AsciiRenderingHasExpectedSize) {
  const Layout l = regular_grid_layout(4);
  const std::string art = l.ascii();
  // 16 panel rows, each 16 chars + newline.
  EXPECT_EQ(art.size(), 16u * 17u);
}

// ---------------------------------------------------------------- layout generators

TEST(LayoutGen, RegularGridCountsAndSpacing) {
  const Layout l = regular_grid_layout(8);
  EXPECT_EQ(l.n_contacts(), 64u);
  EXPECT_EQ(l.panels_x(), 32u);
  // All contacts the same size.
  for (std::size_t i = 0; i < l.n_contacts(); ++i)
    EXPECT_DOUBLE_EQ(l.contact_area(i), l.contact_area(0));
}

TEST(LayoutGen, IrregularDropsSitesDeterministically) {
  const Layout a = irregular_layout(16, 0.6, 7);
  const Layout b = irregular_layout(16, 0.6, 7);
  EXPECT_EQ(a.n_contacts(), b.n_contacts());
  EXPECT_LT(a.n_contacts(), 256u);
  EXPECT_GT(a.n_contacts(), 64u);
}

TEST(LayoutGen, AlternatingSizesHasTwoAreas) {
  const Layout l = alternating_size_layout(8);
  std::set<double> areas;
  for (std::size_t i = 0; i < l.n_contacts(); ++i) areas.insert(l.contact_area(i));
  EXPECT_EQ(areas.size(), 2u);
  EXPECT_EQ(l.n_contacts(), 64u);
}

TEST(LayoutGen, SimpleSixAreaRatio) {
  const Layout l = simple_six_layout();
  ASSERT_EQ(l.n_contacts(), 6u);
  EXPECT_NEAR(l.contact_area(1) / l.contact_area(0), 2.25, 1e-12);
}

TEST(LayoutGen, MixedShapesContainsRings) {
  const Layout l = mixed_shapes_layout(16, 3);
  bool has_multipart = false;
  for (std::size_t i = 0; i < l.n_contacts(); ++i)
    if (l.contact(i).parts.size() > 1) has_multipart = true;
  EXPECT_TRUE(has_multipart);
}

TEST(LayoutGen, LargeMixedScalesWithCells) {
  const Layout small = large_mixed_layout(16, 0.8, 5);
  const Layout large = large_mixed_layout(32, 0.8, 5);
  EXPECT_GT(large.n_contacts(), 2u * small.n_contacts());
}

// ---------------------------------------------------------------- quadtree

TEST(QuadTree, AutoLevelKeepsContactsInsideSquares) {
  const Layout l = regular_grid_layout(8);  // 32 panels, cells of 4
  const QuadTree qt(l);
  EXPECT_EQ(qt.max_level(), 3);  // level-3 squares are 4 panels: one cell
  for (std::size_t i = 0; i < l.n_contacts(); ++i) {
    const SquareId s = qt.home_square(i);
    EXPECT_EQ(s.level, qt.max_level());
    const auto& ids = qt.contacts_in(s);
    EXPECT_NE(std::find(ids.begin(), ids.end(), i), ids.end());
  }
}

TEST(QuadTree, ContactsAggregateUpLevels) {
  const Layout l = regular_grid_layout(8);
  const QuadTree qt(l);
  // Level 0 = everything.
  EXPECT_EQ(qt.contacts_in(SquareId{0, 0, 0}).size(), 64u);
  // Level 1: quarter each.
  EXPECT_EQ(qt.contacts_in(SquareId{1, 0, 0}).size(), 16u);
  std::size_t total = 0;
  for (const auto& s : qt.squares(2)) total += qt.contact_count(s);
  EXPECT_EQ(total, 64u);
}

TEST(QuadTree, ParentChildAncestorConsistency) {
  const Layout l = regular_grid_layout(8);
  const QuadTree qt(l);
  const SquareId s{3, 5, 6};
  const SquareId p = qt.parent(s);
  EXPECT_EQ(p, (SquareId{2, 2, 3}));
  EXPECT_EQ(qt.ancestor(s, 1), (SquareId{1, 1, 1}));
  EXPECT_EQ(qt.ancestor(s, 3), s);
  const auto kids = qt.children(p);
  EXPECT_NE(std::find(kids.begin(), kids.end(), s), kids.end());
}

TEST(QuadTree, InteractiveAndLocalDefinitions) {
  const Layout l = regular_grid_layout(8);
  const QuadTree qt(l);
  const SquareId s{3, 3, 3};  // interior square
  const auto inter = qt.interactive(s);
  const auto loc = qt.local(s);
  EXPECT_EQ(loc.size(), 9u);  // full 3x3 neighborhood populated
  // Interactive: children of parent's neighborhood minus local: 36 - 9 = 27.
  EXPECT_EQ(inter.size(), 27u);
  for (const auto& d : inter) {
    EXPECT_FALSE(QuadTree::adjacent_or_same(d, s));
    EXPECT_TRUE(QuadTree::adjacent_or_same(qt.parent(d), qt.parent(s)));
  }
}

TEST(QuadTree, InteractiveIsSymmetric) {
  const Layout l = regular_grid_layout(8);
  const QuadTree qt(l);
  for (const auto& s : qt.squares(3)) {
    for (const auto& d : qt.interactive(s)) {
      const auto back = qt.interactive(d);
      EXPECT_NE(std::find(back.begin(), back.end(), s), back.end());
    }
  }
}

TEST(QuadTree, WellSeparatedCrossLevelRule) {
  const Layout l = regular_grid_layout(8);
  const QuadTree qt(l);
  const SquareId coarse{2, 0, 0};
  // Fine square under a neighbor of `coarse`: not well separated.
  EXPECT_FALSE(qt.well_separated(coarse, SquareId{3, 2, 2}));
  // Fine square whose level-2 ancestor is 2 squares away: well separated.
  EXPECT_TRUE(qt.well_separated(coarse, SquareId{3, 6, 0}));
  // Symmetry.
  EXPECT_TRUE(qt.well_separated(SquareId{3, 6, 0}, coarse));
}

TEST(QuadTree, RejectsTooDeepExplicitLevel) {
  const Layout l = regular_grid_layout(8);
  // Contacts span 2 panels: they cross boundaries of 2-panel squares (level 4).
  EXPECT_THROW(QuadTree(l, 4), std::invalid_argument);
  EXPECT_NO_THROW(QuadTree(l, 3));
  EXPECT_NO_THROW(QuadTree(l, 2));
}

TEST(QuadTree, EmptySquaresSkipped) {
  Layout l(64, 64, 1.0);
  l.add_contact(Contact(1, 1, 2, 2));
  l.add_contact(Contact(61, 61, 2, 2));
  const QuadTree qt(l, 2);
  EXPECT_EQ(qt.squares(2).size(), 2u);
  EXPECT_TRUE(qt.is_empty(SquareId{2, 1, 1}));
}


TEST(QuadTree, FmmPartitionCoversEveryPairExactlyOnce) {
  // The correctness backbone of the multilevel apply (§4.3.2): for any two
  // contacts, either their finest-level squares are local (handled by the
  // finest-level blocks) or there is exactly one level at which their
  // ancestor squares are interactive.
  for (const Layout& l : {regular_grid_layout(8), mixed_shapes_layout(16, 3),
                          large_mixed_layout(8, 0.7, 9)}) {
    const QuadTree qt(l);
    Rng rng(17);
    for (int trial = 0; trial < 200; ++trial) {
      const std::size_t i = rng.below(l.n_contacts());
      const std::size_t j = rng.below(l.n_contacts());
      const SquareId si = qt.home_square(i), sj = qt.home_square(j);
      int interactive_levels = 0;
      for (int lev = 2; lev <= qt.max_level(); ++lev) {
        const SquareId ai = qt.ancestor(si, lev), aj = qt.ancestor(sj, lev);
        const auto inter = qt.interactive(ai);
        interactive_levels += std::count(inter.begin(), inter.end(), aj) > 0;
      }
      const bool finest_local = QuadTree::adjacent_or_same(si, sj);
      ASSERT_EQ(interactive_levels + (finest_local ? 1 : 0), 1)
          << "pair " << i << "," << j;
    }
  }
}

// ---------------------------------------------------------------- moments

TEST(Moments, CountAndIndexing) {
  EXPECT_EQ(moment_count(0), 1u);
  EXPECT_EQ(moment_count(2), 6u);
  EXPECT_EQ(moment_index(0, 0), 0u);
  EXPECT_EQ(moment_index(1, 0), 1u);
  EXPECT_EQ(moment_index(0, 1), 2u);
  EXPECT_EQ(moment_index(2, 0), 3u);
  EXPECT_EQ(moment_index(1, 1), 4u);
  EXPECT_EQ(moment_index(0, 2), 5u);
}

TEST(Moments, ZerothMomentIsArea) {
  Contact c(2, 3, 4, 5);
  const Vector m = contact_moments(c, 1.5, 0.0, 0.0, 0);
  EXPECT_NEAR(m[0], 20.0 * 1.5 * 1.5, 1e-12);
}

TEST(Moments, FirstMomentVanishesAboutCentroid) {
  Contact c(2, 3, 4, 6);
  const double h = 2.0;
  // Centroid of [4,12] x [6,18].
  const Vector m = contact_moments(c, h, 8.0, 12.0, 2);
  EXPECT_NEAR(m[moment_index(1, 0)], 0.0, 1e-10);
  EXPECT_NEAR(m[moment_index(0, 1)], 0.0, 1e-10);
}

TEST(Moments, MatchesNumericalQuadrature) {
  Contact c(std::vector<Rect>{{1, 1, 3, 1}, {1, 2, 1, 2}});  // L-shape
  const double h = 1.0, cx = 2.0, cy = 2.5;
  const int p = 3;
  const Vector m = contact_moments(c, h, cx, cy, p);
  // Midpoint quadrature over fine subcells.
  const int sub = 64;
  Vector q(moment_count(p));
  for (const auto& r : c.parts) {
    for (int iy = 0; iy < r.h * sub; ++iy) {
      for (int ix = 0; ix < r.w * sub; ++ix) {
        const double x = (r.x0 + (ix + 0.5) / sub) * h - cx;
        const double y = (r.y0 + (iy + 0.5) / sub) * h - cy;
        const double da = (h / sub) * (h / sub);
        for (int o = 0; o <= p; ++o)
          for (int a = o; a >= 0; --a)
            q[moment_index(a, o - a)] += std::pow(x, a) * std::pow(y, o - a) * da;
      }
    }
  }
  for (std::size_t k = 0; k < m.size(); ++k) EXPECT_NEAR(m[k], q[k], 1e-3 + 1e-3 * std::abs(m[k]));
}

TEST(Moments, ShiftMatrixRelocatesCenter) {
  Contact c(3, 5, 2, 4);
  const double h = 1.0;
  const int p = 2;
  const Vector m_old = contact_moments(c, h, 1.0, 2.0, p);
  const Vector m_new = contact_moments(c, h, 1.0 + 0.7, 2.0 - 1.3, p);
  const Matrix s = moment_shift(0.7, -1.3, p);
  const Vector shifted = matvec(s, m_old);
  for (std::size_t k = 0; k < m_new.size(); ++k) EXPECT_NEAR(shifted[k], m_new[k], 1e-10);
}

TEST(Moments, ShiftMatrixComposes) {
  const int p = 2;
  const Matrix s1 = moment_shift(0.5, 0.25, p);
  const Matrix s2 = moment_shift(-1.5, 2.0, p);
  const Matrix s12 = moment_shift(-1.0, 2.25, p);
  EXPECT_LT((matmul(s2, s1) - s12).max_abs(), 1e-12);
}

TEST(Moments, MomentMatrixColumnsMatchContacts) {
  const Layout l = regular_grid_layout(4);
  const std::vector<std::size_t> ids{0, 1, 5};
  const Matrix m = moment_matrix(l, ids, 10.0, 12.0, 2);
  EXPECT_EQ(m.rows(), 6u);
  EXPECT_EQ(m.cols(), 3u);
  const Vector ref = contact_moments(l.contact(1), l.panel_size(), 10.0, 12.0, 2);
  for (std::size_t k = 0; k < 6; ++k) EXPECT_DOUBLE_EQ(m(k, 1), ref[k]);
}

class MomentOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(MomentOrderSweep, ShiftIsInvertibleByOppositeShift) {
  const int p = GetParam();
  const Matrix s = moment_shift(1.3, -0.4, p);
  const Matrix si = moment_shift(-1.3, 0.4, p);
  EXPECT_LT((matmul(si, s) - Matrix::identity(moment_count(p))).max_abs(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Orders, MomentOrderSweep, ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace subspar
