// Tests for the low-rank sparsifier: singular-value decay premise
// (Fig. 4-3), row-basis fidelity, the apply-operator of §4.3.2, the
// fine-to-coarse sweep, and end-to-end accuracy including the mixed-size
// layouts where the wavelet method fails (Tables 4.1/4.2).
#include <gtest/gtest.h>

#include <cmath>

#include "core/report.hpp"
#include "geometry/layout_gen.hpp"
#include "linalg/svd.hpp"
#include "lowrank/extract.hpp"
#include "substrate/eigen_solver.hpp"
#include "substrate/solver.hpp"
#include "util/rng.hpp"
#include "wavelet/basis.hpp"
#include "wavelet/extract.hpp"

namespace subspar {
namespace {

SubstrateStack test_stack() { return paper_stack(40.0, 0.5, 1.0); }

Matrix submatrix(const Matrix& g, const std::vector<std::size_t>& rows,
                 const std::vector<std::size_t>& cols) {
  Matrix out(rows.size(), cols.size());
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t j = 0; j < cols.size(); ++j) out(i, j) = g(rows[i], cols[j]);
  return out;
}

TEST(LowRankPremise, SingularValuesDecayFastForSeparatedSquares) {
  // Fig. 4-3: the s-to-d interaction block of well-separated squares has
  // rapidly decaying singular values; the self-interaction does not.
  const Layout l = regular_grid_layout(16);
  const QuadTree tree(l);
  const SurfaceSolver solver(l, test_stack());
  const Matrix g = extract_dense(solver);
  const SquareId s{2, 0, 0};  // 16 contacts per level-2 square
  const SquareId d{2, 3, 1};  // interactive to s
  const auto& cs = tree.contacts_in(s);
  const auto& cd = tree.contacts_in(d);
  const Svd far = svd(submatrix(g, cd, cs));
  const Svd self = svd(submatrix(g, cs, cs));
  // After 6 singular values the far interaction is deep in the noise...
  EXPECT_LT(far.sigma[6] / far.sigma[0], 1e-5);
  // ...while the self-interaction hasn't even dropped by 100x.
  EXPECT_GT(self.sigma[6] / self.sigma[0], 1e-2);
}

TEST(LowRankPremise, SimpleSixVignette) {
  // §4.1: for the Fig. 4-1 layout, the second singular value of the
  // destination-from-source block is tiny, and driving the source contacts
  // with the trailing right singular vector yields near-zero far response.
  const Layout l = simple_six_layout();
  const SurfaceSolver solver(l, test_stack());
  const Matrix g = extract_dense(solver);
  const std::vector<std::size_t> src{0, 1}, dst{2, 3, 4, 5};
  const Matrix gds = submatrix(g, dst, src);
  const Svd dec = svd(gds);
  EXPECT_LT(dec.sigma[1] / dec.sigma[0], 5e-2);
  Vector drive(l.n_contacts());
  drive[0] = dec.v(0, 1);
  drive[1] = dec.v(1, 1);
  const Vector resp = solver.solve(drive);
  for (const std::size_t d : dst)
    EXPECT_LT(std::abs(resp[d]), 0.05 * std::abs(dec.sigma[0]));
}

struct LowRankFixture {
  Layout layout;
  QuadTree tree;
  SurfaceSolver solver;
  explicit LowRankFixture(Layout l)
      : layout(std::move(l)), tree(layout), solver(layout, test_stack()) {}
};

TEST(RowBasisRep, ApplyMatchesDenseOperator) {
  LowRankFixture f(regular_grid_layout(8));
  const Matrix g = extract_dense(f.solver);
  const RowBasisRep rep(f.solver, f.tree);
  Rng rng(3);
  for (int t = 0; t < 3; ++t) {
    Vector x(f.layout.n_contacts());
    for (auto& v : x) v = rng.normal();
    const Vector exact = matvec(g, x);
    const Vector approx = rep.apply(x);
    EXPECT_LT(norm2(approx - exact), 2e-2 * norm2(exact));
  }
}

TEST(RowBasisRep, ApplyAccurateOnMixedSizes) {
  LowRankFixture f(alternating_size_layout(8));
  const Matrix g = extract_dense(f.solver);
  const RowBasisRep rep(f.solver, f.tree);
  Rng rng(4);
  Vector x(f.layout.n_contacts());
  for (auto& v : x) v = rng.normal();
  const Vector exact = matvec(g, x);
  EXPECT_LT(norm2(rep.apply(x) - exact), 2e-2 * norm2(exact));
}

TEST(RowBasisRep, UsesFewSolves) {
  LowRankFixture f(regular_grid_layout(8));
  const RowBasisRep rep(f.solver, f.tree);
  EXPECT_GT(rep.solves(), 0);
  // At n = 64 the representation still needs a fraction of the naive count
  // growing sublinearly; just pin the accounting here.
  EXPECT_EQ(rep.solves(), f.solver.solve_count());
}

TEST(RowBasisRep, RowBasisCapturesInteractiveResponses) {
  LowRankFixture f(regular_grid_layout(8));
  const Matrix g = extract_dense(f.solver);
  const RowBasisRep rep(f.solver, f.tree);
  // For a finest-level square s and d in I_s, G_{d,s} should be captured:
  // columns of G_{d,s} restricted responses lie near span of recorded data.
  const SquareId s{3, 3, 3};
  const auto inter = f.tree.interactive(s);
  ASSERT_FALSE(inter.empty());
  const SquareId d = inter.front();
  const Matrix gds = submatrix(g, f.tree.contacts_in(d), f.tree.contacts_in(s));
  const Matrix& v = rep.v(s);
  // || G_ds (I - V V') || should be small relative to || G_ds ||.
  const Matrix proj = matmul(gds, Matrix::identity(v.rows()) - matmul_nt(v, v));
  EXPECT_LT(proj.frobenius_norm(), 5e-2 * gds.frobenius_norm());
}

TEST(RowBasisRep, FinestLocalBlocksMatchDenseG) {
  LowRankFixture f(regular_grid_layout(8));
  const Matrix g = extract_dense(f.solver);
  const RowBasisRep rep(f.solver, f.tree);
  const SquareId s{3, 2, 2};
  for (const SquareId& q : f.tree.local(s)) {
    const Matrix exact = submatrix(g, f.tree.contacts_in(q), f.tree.contacts_in(s));
    const Matrix& approx = rep.finest_local_g(q, s);
    EXPECT_LT((approx - exact).max_abs(), 2e-2 * g.max_abs());
  }
}

TEST(LowRankBasis, QIsOrthogonal) {
  LowRankFixture f(regular_grid_layout(8));
  const RowBasisRep rep(f.solver, f.tree);
  const LowRankBasis basis(rep);
  const Matrix qd = basis.q().to_dense();
  EXPECT_LT((matmul_tn(qd, qd) - Matrix::identity(f.layout.n_contacts())).max_abs(), 1e-10);
}

TEST(LowRankBasis, QIsOrthogonalOnIrregularLayout) {
  LowRankFixture f(mixed_shapes_layout(16, 21));
  const RowBasisRep rep(f.solver, f.tree);
  const LowRankBasis basis(rep);
  const Matrix qd = basis.q().to_dense();
  EXPECT_LT((matmul_tn(qd, qd) - Matrix::identity(f.layout.n_contacts())).max_abs(), 1e-10);
}

TEST(LowRankBasis, ColumnCountEqualsContacts) {
  LowRankFixture f(alternating_size_layout(8));
  const RowBasisRep rep(f.solver, f.tree);
  const LowRankBasis basis(rep);
  EXPECT_EQ(basis.columns().size(), f.layout.n_contacts());
  EXPECT_EQ(basis.root_level(), 2);
}

TEST(LowRankExtract, GwSymmetricAndPatternRestricted) {
  LowRankFixture f(regular_grid_layout(8));
  const LowRankExtraction ex = lowrank_extract(f.solver, f.tree);
  const Matrix d = ex.gw.to_dense();
  EXPECT_LT((d - d.transposed()).max_abs(), 1e-10 * d.max_abs());
  const WaveletPattern pattern(*ex.basis);
  for (const auto& [i, j] : ex.gw.coordinates()) EXPECT_TRUE(pattern.allowed(i, j));
}

TEST(LowRankExtract, AccurateOnRegularGrid) {
  LowRankFixture f(regular_grid_layout(16));
  const Matrix g = extract_dense(f.solver);
  f.solver.reset_solve_count();
  const LowRankExtraction ex = lowrank_extract(f.solver, f.tree);
  const ErrorStats err = reconstruction_error(ex.basis->q(), ex.gw, g);
  EXPECT_LT(err.max_rel_error, 0.10);
  // The solve count grows like O(log n) with a sizable constant: at n = 256
  // it is still below 2n, and the reduction factor grows with n (Table 4.3
  // shape, exercised by bench/table_4_3_large).
  EXPECT_LT(ex.solves, 2 * static_cast<long>(f.layout.n_contacts()));
}

TEST(LowRankExtract, FarBetterThanWaveletOnAlternatingSizes) {
  // The Chapter 4 headline (Tables 4.1/4.2): on mixed-size layouts the
  // operator-adapted basis beats the geometric moment basis on accuracy
  // while also being sparser.
  LowRankFixture f(alternating_size_layout(16));
  const Matrix g = extract_dense(f.solver);
  const WaveletBasis wbasis(f.tree);
  const WaveletExtraction wex = wavelet_extract_combined(f.solver, wbasis);
  const ErrorStats werr = reconstruction_error(wbasis.q(), wex.gws, g);
  const LowRankExtraction ex = lowrank_extract(f.solver, f.tree);
  const ErrorStats lerr = reconstruction_error(ex.basis->q(), ex.gw, g);
  EXPECT_LT(lerr.max_rel_error, 0.5 * werr.max_rel_error);
  EXPECT_LT(lerr.frac_above_10pct, 0.5 * werr.frac_above_10pct);
  EXPECT_GT(ex.gw.sparsity_factor(), wex.gws.sparsity_factor());
}

TEST(LowRankExtract, HandlesMixedShapes) {
  LowRankFixture f(mixed_shapes_layout(16, 9));
  const Matrix g = extract_dense(f.solver);
  f.solver.reset_solve_count();
  const LowRankExtraction ex = lowrank_extract(f.solver, f.tree);
  const ErrorStats err = reconstruction_error(ex.basis->q(), ex.gw, g);
  EXPECT_LT(err.frac_above_10pct, 0.05);
}

TEST(LowRankExtract, ThresholdingKeepsMostEntriesAccurate) {
  LowRankFixture f(regular_grid_layout(16));
  const Matrix g = extract_dense(f.solver);
  const LowRankExtraction ex = lowrank_extract(f.solver, f.tree);
  const SparseMatrix gwt = threshold_to_nnz(ex.gw, ex.gw.nnz() / 6);
  const ErrorStats err = reconstruction_error(ex.basis->q(), gwt, g);
  EXPECT_LT(err.frac_above_10pct, 0.10);
  EXPECT_GT(gwt.sparsity_factor(), 5.0 * ex.gw.sparsity_factor());
}

TEST(PositionsIn, MapsSortedSubsets) {
  const std::vector<std::size_t> super{1, 4, 7, 9, 12};
  const std::vector<std::size_t> sub{4, 9, 12};
  const auto pos = positions_in(sub, super);
  EXPECT_EQ(pos, (std::vector<std::size_t>{1, 3, 4}));
  EXPECT_THROW(positions_in({5}, super), std::invalid_argument);
}

class SeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweep, ApplyAccuracyRobustToSampleSeed) {
  // The row basis is built from random sample vectors; accuracy must not
  // hinge on a lucky seed.
  LowRankFixture f(regular_grid_layout(8));
  const Matrix g = extract_dense(f.solver);
  const RowBasisRep rep(f.solver, f.tree,
                        {.seed = 1000 + static_cast<std::uint64_t>(GetParam())});
  Rng rng(42);
  Vector x(f.layout.n_contacts());
  for (auto& v : x) v = rng.normal();
  const Vector exact = matvec(g, x);
  EXPECT_LT(norm2(rep.apply(x) - exact), 3e-2 * norm2(exact));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(0, 5));

}  // namespace
}  // namespace subspar
