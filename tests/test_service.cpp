// ExtractionService suite: the concurrent job engine's contract.
//
//  - a single-client service run is bit-identical to the direct Extractor
//    path (and to a ModelCache run): the service adds orchestration, never
//    different numerics;
//  - in-flight deduplication: N client threads x M distinct requests cost
//    exactly M extractions' worth of black-box solves;
//  - cancellation and deadlines release every waiter with the typed
//    kCancelled / kDeadlineExceeded error, even mid-solve;
//  - transient failures (injected at the 'q' queue site) retry with the
//    recorded attempt history and then succeed — or exhaust the policy and
//    fail typed; both replay deterministically by seed;
//  - admission control sheds on a full queue with kOverloaded, immediately;
//  - the sharded ModelCache serves concurrent hits and enforces its LRU
//    memory budget.
//
// Links tests/support/hermetic_env.cpp (ambient SUBSPAR_FAULT is stripped so
// the bit-exactness assertions survive CI's fault matrix); the retry tests
// re-arm the harness explicitly via setenv + fault_reset.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "subspar/subspar.hpp"
#include "util/fault.hpp"

namespace subspar {
namespace {

SubstrateStack test_stack() { return paper_stack(40.0); }
Layout test_layout() { return regular_grid_layout(8); }

ExtractionRequest test_request(std::uint64_t seed = 0) {
  ExtractionRequest request{.method = SparsifyMethod::kLowRank,
                            .threshold_sparsity_multiple = 6.0};
  request.lowrank.seed = seed;
  return request;
}

std::shared_ptr<SubstrateSolver> fresh_solver(const Layout& layout,
                                              const SubstrateStack& stack) {
  return std::shared_ptr<SubstrateSolver>(make_solver(SolverKind::kSurface, layout, stack));
}

void expect_models_bit_equal(const SparsifiedModel& a, const SparsifiedModel& b) {
  ASSERT_EQ(a.q().nnz(), b.q().nnz());
  ASSERT_EQ(a.gw().nnz(), b.gw().nnz());
  EXPECT_EQ((a.q().to_dense() - b.q().to_dense()).max_abs(), 0.0);
  EXPECT_EQ((a.gw().to_dense() - b.gw().to_dense()).max_abs(), 0.0);
}

/// Wrapper that sleeps before every batched solve: makes extraction slow
/// enough to cancel / deadline mid-pipeline deterministically. Forwards the
/// inner tag (prefixed) so slow and fast runs never share a cache key.
class SlowSolver : public SubstrateSolver {
 public:
  SlowSolver(std::unique_ptr<SubstrateSolver> inner, double sleep_ms)
      : inner_(std::move(inner)), sleep_ms_(sleep_ms) {}
  std::size_t n_contacts() const override { return inner_->n_contacts(); }
  std::string name() const override { return "slow(" + inner_->name() + ")"; }
  std::string cache_tag() const override { return "slow:" + inner_->cache_tag(); }

 protected:
  Vector do_solve(const Vector& v) const override {
    nap();
    return inner_->solve(v);
  }
  Matrix do_solve_many(const Matrix& v) const override {
    nap();
    return inner_->solve_many(v);
  }

 private:
  void nap() const {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(sleep_ms_));
  }
  std::unique_ptr<SubstrateSolver> inner_;
  double sleep_ms_;
};

std::shared_ptr<SubstrateSolver> slow_solver(const Layout& layout, const SubstrateStack& stack,
                                             double sleep_ms) {
  return std::make_shared<SlowSolver>(make_solver(SolverKind::kSurface, layout, stack),
                                      sleep_ms);
}

void spin_until_running(const ExtractionJob& job) {
  while (job.status() == JobStatus::kQueued)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

/// Arms/disarms SUBSPAR_FAULT around a test (hermetic_env stripped the
/// ambient value pre-main; this owns it explicitly).
class ServiceFaultEnv : public ::testing::Test {
 protected:
  static void arm(const std::string& spec) {
    ::setenv("SUBSPAR_FAULT", spec.c_str(), 1);
    fault_reset();
  }
  static void disarm() {
    ::unsetenv("SUBSPAR_FAULT");
    fault_reset();
  }
  void SetUp() override { disarm(); }
  void TearDown() override { disarm(); }
};

// ------------------------------------------------------------- determinism

TEST(Service, SingleClientIsBitIdenticalToDirectExtractorPath) {
  const SubstrateStack stack = test_stack();
  const Layout layout = test_layout();
  const ExtractionRequest request = test_request();

  const auto direct_solver = fresh_solver(layout, stack);
  const ExtractionResult direct = Extractor(*direct_solver, layout).extract(request);

  ExtractionService service({.workers = 2});
  ExtractionJob job = service.submit(fresh_solver(layout, stack), layout, stack, request);
  ASSERT_TRUE(job.valid());
  const Status status = job.wait();
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(job.status(), JobStatus::kSucceeded);
  expect_models_bit_equal(direct.model, job.result().model);
  EXPECT_FALSE(job.result().report.from_cache);
  EXPECT_TRUE(job.result().report.attempts.empty());
  EXPECT_TRUE(job.attempt_history().empty());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.succeeded, 1u);
  EXPECT_EQ(stats.failed + stats.cancelled + stats.deadline_expired + stats.shed, 0u);
}

TEST(Service, RepeatSubmissionAfterCompletionIsACacheHit) {
  const SubstrateStack stack = test_stack();
  const Layout layout = test_layout();
  ExtractionService service({.workers = 1});
  const auto solver = fresh_solver(layout, stack);

  ExtractionJob first = service.submit(solver, layout, stack, test_request());
  ASSERT_TRUE(first.wait().ok());
  const long solves_after_first = solver->solve_count();
  EXPECT_GT(solves_after_first, 0);

  ExtractionJob second = service.submit(solver, layout, stack, test_request());
  ASSERT_TRUE(second.wait().ok());
  EXPECT_TRUE(second.result().report.from_cache);
  EXPECT_EQ(solver->solve_count(), solves_after_first);  // zero new solves
  expect_models_bit_equal(first.result().model, second.result().model);
  EXPECT_GE(service.stats().cache_hits, 1u);
}

// ------------------------------------------------------------------- dedup

TEST(Service, DedupNThreadsTimesMKeysCostsExactlyMExtractions) {
  const SubstrateStack stack = test_stack();
  const Layout layout = test_layout();
  constexpr int kClients = 4;
  constexpr int kKeys = 2;

  // Serial reference: one extraction per key, counting its solves.
  std::vector<ExtractionResult> serial;
  long serial_solves = 0;
  for (int k = 0; k < kKeys; ++k) {
    const auto solver = fresh_solver(layout, stack);
    serial.push_back(Extractor(*solver, layout).extract(test_request(k)));
    serial_solves += solver->solve_count();
  }

  // Service traffic: every client submits every key. One shared solver per
  // key (dedup guarantees at most one extraction of a key runs at a time;
  // distinct keys get distinct instances).
  ExtractionService service({.workers = 4});
  std::vector<std::shared_ptr<SubstrateSolver>> solvers;
  for (int k = 0; k < kKeys; ++k) solvers.push_back(fresh_solver(layout, stack));

  std::vector<std::vector<ExtractionJob>> jobs(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (int k = 0; k < kKeys; ++k)
        jobs[c].push_back(service.submit(solvers[k], layout, stack, test_request(k)));
    });
  for (std::thread& t : clients) t.join();

  long service_solves = 0;
  for (int c = 0; c < kClients; ++c)
    for (int k = 0; k < kKeys; ++k) {
      const Status status = jobs[c][k].wait();
      ASSERT_TRUE(status.ok()) << status.message();
      expect_models_bit_equal(serial[k].model, jobs[c][k].result().model);
    }
  for (const auto& solver : solvers) service_solves += solver->solve_count();

  // The dedup invariant: N x M submissions, exactly M extractions' worth of
  // black-box solves (late submitters that miss the in-flight window get a
  // zero-solve cache hit instead).
  EXPECT_EQ(service_solves, serial_solves);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted + stats.deduped, static_cast<std::size_t>(kClients * kKeys));
  EXPECT_EQ(stats.succeeded, stats.accepted);
  EXPECT_EQ(stats.in_flight, 0u);
}

// ---------------------------------------------- cancellation and deadlines

TEST(Service, CancellationMidExtractionReleasesEveryWaiterTyped) {
  const SubstrateStack stack = test_stack();
  const Layout layout = test_layout();
  ExtractionService service({.workers = 1});
  ExtractionJob job =
      service.submit(slow_solver(layout, stack, 100.0), layout, stack, test_request());
  ExtractionJob attached =
      service.submit(slow_solver(layout, stack, 100.0), layout, stack, test_request());
  EXPECT_EQ(attached.key(), job.key());
  EXPECT_EQ(service.stats().deduped, 1u);

  std::atomic<bool> waiter_released{false};
  ExtractionError waiter_error;
  std::thread waiter([&] {
    attached.wait();
    waiter_error = attached.error();
    waiter_released.store(true);
  });

  spin_until_running(job);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // inside a solve nap
  job.cancel();
  const Status status = job.wait();
  waiter.join();

  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kCancelled);
  EXPECT_EQ(job.status(), JobStatus::kCancelled);
  EXPECT_TRUE(waiter_released.load());
  EXPECT_EQ(waiter_error.code, ErrorCode::kCancelled);
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(Service, DeadlineExpiryUnderSlowSolveFailsTyped) {
  const SubstrateStack stack = test_stack();
  const Layout layout = test_layout();
  ExtractionService service({.workers = 1});
  ExtractionJob job = service.submit(slow_solver(layout, stack, 60.0), layout, stack,
                                     test_request(), {.deadline_ms = 25.0});
  const Status status = job.wait();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(job.status(), JobStatus::kDeadlineExpired);
  EXPECT_EQ(service.stats().deadline_expired, 1u);
}

// ------------------------------------------------------------------ retry

TEST_F(ServiceFaultEnv, TransientQueueFaultRetriesThenSucceedsWithHistory) {
  // Rate 1 with cooldown 10 at the queue site: attempt 1 of the first job
  // takes the injected transient kIoError, attempt 2 runs inside the
  // cooldown window and succeeds. Deterministic for the fixed seed.
  arm("11:1:10:q");
  const SubstrateStack stack = test_stack();
  const Layout layout = test_layout();
  ExtractionService service(
      {.workers = 1, .retry = {.max_attempts = 3, .base_backoff_ms = 1.0}});
  ExtractionJob job = service.submit(fresh_solver(layout, stack), layout, stack,
                                     test_request());
  const Status status = job.wait();
  ASSERT_TRUE(status.ok()) << status.message();
  ASSERT_EQ(job.attempt_history().size(), 1u);
  EXPECT_NE(job.attempt_history()[0].find("io-error"), std::string::npos);
  ASSERT_EQ(job.result().report.attempts.size(), 1u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.retried, 1u);
  EXPECT_EQ(stats.succeeded, 1u);
  EXPECT_EQ(stats.failed, 0u);

  // The successful model is still bit-identical to a fault-free direct run:
  // the queue fault precedes the attempt, it never perturbs numerics.
  disarm();
  const auto direct_solver = fresh_solver(layout, stack);
  const ExtractionResult direct = Extractor(*direct_solver, layout).extract(test_request());
  expect_models_bit_equal(direct.model, job.result().model);
}

TEST_F(ServiceFaultEnv, ExhaustedRetryPolicyFailsTypedWithFullHistory) {
  arm("11:1:0:q");  // every attempt dies at the queue site
  const SubstrateStack stack = test_stack();
  const Layout layout = test_layout();
  ExtractionService service(
      {.workers = 1, .retry = {.max_attempts = 2, .base_backoff_ms = 1.0}});
  ExtractionJob job = service.submit(fresh_solver(layout, stack), layout, stack,
                                     test_request());
  const Status status = job.wait();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kIoError);
  EXPECT_EQ(job.status(), JobStatus::kFailed);
  EXPECT_EQ(job.attempt_history().size(), 2u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.retried, 1u);
  EXPECT_EQ(stats.failed, 1u);

  // Failed jobs are not memoized: with the harness disarmed, resubmitting
  // the same key extracts fresh and succeeds.
  disarm();
  ExtractionJob retry = service.submit(fresh_solver(layout, stack), layout, stack,
                                       test_request());
  EXPECT_TRUE(retry.wait().ok());
}

TEST_F(ServiceFaultEnv, CancelDuringRetryBackoffReleasesPromptly) {
  // Regression for the lost-wakeup race fixed in the sync migration:
  // ExtractionJob::cancel() used to flip the token and notify the job cv
  // WITHOUT holding the job mutex, while backoff_wait checks the token and
  // then parks under that mutex — a notify landing in between was lost and
  // the worker slept out the full backoff. With a 60 s base backoff this
  // test hangs (and times out) under the old code; with the notify taken
  // under the job mutex the cancel releases the job within milliseconds.
  // Cooldown 10: attempt 1 takes the injected fault and backs off; the
  // post-cancel attempt skips injection so the token check classifies the
  // interruption as kCancelled (injection precedes the token check).
  arm("11:1:10:q");
  const SubstrateStack stack = test_stack();
  const Layout layout = test_layout();
  ExtractionService service(
      {.workers = 1, .retry = {.max_attempts = 3, .base_backoff_ms = 60000.0}});
  ExtractionJob job = service.submit(fresh_solver(layout, stack), layout, stack,
                                     test_request());
  // First attempt recorded => the worker is entering (or inside) its backoff.
  while (job.attempt_history().empty())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  job.cancel();
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(job.wait_for(20000.0)) << "cancel lost during backoff park";
  const double waited_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(waited_ms, 10000.0);  // far below the 60 s backoff
  EXPECT_EQ(job.status(), JobStatus::kCancelled);
  EXPECT_EQ(job.error().code, ErrorCode::kCancelled);
  EXPECT_EQ(service.stats().cancelled, 1u);
}

// -------------------------------------------------------- admission control

TEST(Service, FullQueueShedsImmediatelyWithOverloaded) {
  const SubstrateStack stack = test_stack();
  const Layout layout = test_layout();
  ExtractionService service({.workers = 1, .queue_capacity = 1});

  // Occupy the single worker, then fill the single queue slot.
  ExtractionJob running =
      service.submit(slow_solver(layout, stack, 50.0), layout, stack, test_request(1));
  spin_until_running(running);
  ExtractionJob queued =
      service.submit(slow_solver(layout, stack, 50.0), layout, stack, test_request(2));

  ExtractionJob shed =
      service.submit(slow_solver(layout, stack, 50.0), layout, stack, test_request(3));
  EXPECT_EQ(shed.status(), JobStatus::kShed);
  EXPECT_EQ(shed.error().code, ErrorCode::kOverloaded);
  EXPECT_TRUE(shed.wait_for(0.0));  // already terminal: no blocking
  EXPECT_FALSE(shed.wait().ok());
  EXPECT_EQ(service.stats().shed, 1u);

  running.cancel();
  queued.cancel();
  running.wait();
  queued.wait();
}

TEST(Service, InvalidSubmissionsFailImmediatelyWithoutThrowing) {
  const SubstrateStack stack = test_stack();
  const Layout layout = test_layout();
  ExtractionService service({.workers = 1});

  ExtractionJob null_solver = service.submit(nullptr, layout, stack, test_request());
  EXPECT_EQ(null_solver.status(), JobStatus::kFailed);
  EXPECT_EQ(null_solver.error().code, ErrorCode::kInvalidRequest);

  ExtractionRequest bad = test_request();
  bad.lowrank.rbk.target_tol = 2.0;  // outside (0, 1)
  ExtractionJob invalid = service.submit(fresh_solver(layout, stack), layout, stack, bad);
  EXPECT_EQ(invalid.status(), JobStatus::kFailed);
  EXPECT_EQ(invalid.error().code, ErrorCode::kInvalidRequest);
  EXPECT_FALSE(invalid.wait().ok());
  EXPECT_EQ(service.stats().accepted, 0u);
}

TEST(Service, ShutdownCancelsOutstandingWorkAndRejectsNewSubmissions) {
  const SubstrateStack stack = test_stack();
  const Layout layout = test_layout();
  ExtractionService service({.workers = 1});
  ExtractionJob running =
      service.submit(slow_solver(layout, stack, 50.0), layout, stack, test_request());
  spin_until_running(running);
  service.shutdown();
  EXPECT_TRUE(job_status_terminal(running.status()));
  EXPECT_EQ(running.status(), JobStatus::kCancelled);

  ExtractionJob late = service.submit(fresh_solver(layout, stack), layout, stack,
                                      test_request());
  EXPECT_EQ(late.status(), JobStatus::kShed);
  EXPECT_EQ(late.error().code, ErrorCode::kOverloaded);
}

// ------------------------------------------------------- thread-safe cache

TEST(ServiceCache, ConcurrentHitsServeBitEqualCopiesWithoutSolves) {
  const SubstrateStack stack = test_stack();
  const Layout layout = test_layout();
  const auto solver = fresh_solver(layout, stack);
  ModelCache cache;
  const ExtractionResult warm = cache.get_or_extract(*solver, layout, stack, test_request());
  const long warm_solves = solver->solve_count();

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      const ExtractionResult hit =
          cache.get_or_extract(*solver, layout, stack, test_request());
      if (!hit.report.from_cache ||
          (hit.model.gw().to_dense() - warm.model.gw().to_dense()).max_abs() != 0.0)
        mismatches.fetch_add(1);
    });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(solver->solve_count(), warm_solves);  // hits consume zero solves
  EXPECT_EQ(cache.stats().hits, static_cast<std::size_t>(kThreads));
}

TEST(ServiceCache, MemoryBudgetEvictsLeastRecentlyUsedButNeverLast) {
  const SubstrateStack stack = test_stack();
  const Layout layout = test_layout();
  ModelCache cache;
  const auto solver = fresh_solver(layout, stack);
  const ExtractionResult first = cache.get_or_extract(*solver, layout, stack, test_request(0));
  const std::size_t one_model = model_memory_bytes(first.model);
  ASSERT_GT(one_model, 0u);

  // Budget for ~two resident models, then insert four distinct keys.
  cache.set_memory_budget(2 * one_model + one_model / 2);
  for (std::uint64_t k = 1; k < 4; ++k)
    cache.get_or_extract(*solver, layout, stack, test_request(k));
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LE(cache.memory_bytes(), cache.memory_budget());
  EXPECT_GE(cache.size(), 1u);
  EXPECT_FALSE(cache.contains(*solver, layout, stack, test_request(0)));  // LRU victim
  EXPECT_TRUE(cache.contains(*solver, layout, stack, test_request(3)));   // newest survives

  // A budget smaller than any single model keeps exactly the newest entry.
  cache.set_memory_budget(one_model / 2);
  EXPECT_EQ(cache.size(), 1u);
  const ExtractionResult still = cache.get_or_extract(*solver, layout, stack, test_request(3));
  EXPECT_TRUE(still.report.from_cache);
}

}  // namespace
}  // namespace subspar
