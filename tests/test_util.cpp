// Tests for the utility substrate: RNG determinism and statistics, table
// formatting, and the plotting helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "util/check.hpp"
#include "util/plot.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace subspar {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng r(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    sum += u;
    sumsq += u * u;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMeanAndVariance) {
  Rng r(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = r.normal();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, BelowCoversRangeWithoutBias) {
  Rng r(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowRejectsZero) { EXPECT_THROW(Rng(1).below(0), std::invalid_argument); }

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(SUBSPAR_REQUIRE(false), std::invalid_argument);
  EXPECT_NO_THROW(SUBSPAR_REQUIRE(true));
}

TEST(Check, EnsureThrowsLogicError) {
  EXPECT_THROW(SUBSPAR_ENSURE(false), std::logic_error);
}

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  const std::string s = t.str();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
  // Header + underline + 2 rows = 4 lines.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumericFormatters) {
  EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
  EXPECT_EQ(Table::num(12345.678, 3), "1.23e+04");
}

TEST(Plot, AsciiGridRendersGlyphs) {
  const auto s = ascii_grid(2, 3, [](std::size_t i, std::size_t j) {
    return (i == 0 && j == 0) ? 1 : 0;
  });
  EXPECT_EQ(s, "#..\n...\n");
}

TEST(Plot, AsciiSpyBucketsEntries) {
  std::vector<std::pair<std::size_t, std::size_t>> e = {{0, 0}, {99, 99}};
  const auto s = ascii_spy(100, e, 10);
  EXPECT_NE(s.find("nnz = 2"), std::string::npos);
  // Sparse bucket -> lightest glyph; empty bucket -> '.'.
  EXPECT_EQ(s.front(), ':');
  EXPECT_EQ(s[1], '.');
}

TEST(Plot, AsciiSpyShadesByDensity) {
  // A fully dense matrix must render as all '#'.
  std::vector<std::pair<std::size_t, std::size_t>> e;
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) e.emplace_back(i, j);
  const auto s = ascii_spy(8, e, 4);
  EXPECT_EQ(s.find('.'), std::string::npos);
  EXPECT_EQ(s.find(':'), std::string::npos);
}

TEST(Plot, PgmRoundTripHeader) {
  const std::string path = "/tmp/subspar_test.pgm";
  write_pgm(path, 2, 2, {0, 64, 128, 255});
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
  EXPECT_EQ(std::string(magic), "P5");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Timer, MeasuresNonNegativeTime) {
  Timer t;
  double sink = 0.0;
  for (int i = 0; i < 1000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GT(sink, 0.0);
}

}  // namespace
}  // namespace subspar
