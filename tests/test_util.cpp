// Tests for the utility substrate: RNG determinism and statistics, table
// formatting, plotting helpers, the annotated sync primitives, the thread
// pool's concurrent-caller guarantees, and cooperative cancellation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/plot.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace subspar {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng r(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    sum += u;
    sumsq += u * u;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, NormalMeanAndVariance) {
  Rng r(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = r.normal();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, BelowCoversRangeWithoutBias) {
  Rng r(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowRejectsZero) { EXPECT_THROW(Rng(1).below(0), std::invalid_argument); }

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(SUBSPAR_REQUIRE(false), std::invalid_argument);
  EXPECT_NO_THROW(SUBSPAR_REQUIRE(true));
}

TEST(Check, EnsureThrowsLogicError) {
  EXPECT_THROW(SUBSPAR_ENSURE(false), std::logic_error);
}

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  const std::string s = t.str();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
  // Header + underline + 2 rows = 4 lines.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumericFormatters) {
  EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
  EXPECT_EQ(Table::num(12345.678, 3), "1.23e+04");
}

TEST(Plot, AsciiGridRendersGlyphs) {
  const auto s = ascii_grid(2, 3, [](std::size_t i, std::size_t j) {
    return (i == 0 && j == 0) ? 1 : 0;
  });
  EXPECT_EQ(s, "#..\n...\n");
}

TEST(Plot, AsciiSpyBucketsEntries) {
  std::vector<std::pair<std::size_t, std::size_t>> e = {{0, 0}, {99, 99}};
  const auto s = ascii_spy(100, e, 10);
  EXPECT_NE(s.find("nnz = 2"), std::string::npos);
  // Sparse bucket -> lightest glyph; empty bucket -> '.'.
  EXPECT_EQ(s.front(), ':');
  EXPECT_EQ(s[1], '.');
}

TEST(Plot, AsciiSpyShadesByDensity) {
  // A fully dense matrix must render as all '#'.
  std::vector<std::pair<std::size_t, std::size_t>> e;
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) e.emplace_back(i, j);
  const auto s = ascii_spy(8, e, 4);
  EXPECT_EQ(s.find('.'), std::string::npos);
  EXPECT_EQ(s.find(':'), std::string::npos);
}

TEST(Plot, PgmRoundTripHeader) {
  const std::string path = "/tmp/subspar_test.pgm";
  write_pgm(path, 2, 2, {0, 64, 128, 255});
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
  EXPECT_EQ(std::string(magic), "P5");
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Timer, MeasuresNonNegativeTime) {
  Timer t;
  double sink = 0.0;
  for (int i = 0; i < 1000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GT(sink, 0.0);
}

// --- util/sync.hpp: the annotated wrappers are thin, but their semantics
// (exclusive vs shared modes, try-lock contracts, CondVar wakeups) are what
// every migrated module now leans on, so pin them here. The multi-threaded
// cases double as TSan fodder: the tsan CI job runs this suite.

TEST(Sync, MutexTryLockReflectsOwnership) {
  Mutex m;
  ASSERT_TRUE(m.try_lock());
  std::thread other([&m] {
    EXPECT_FALSE(m.try_lock());  // held exclusively by the main thread
  });
  other.join();
  m.unlock();
  ASSERT_TRUE(m.try_lock());
  m.unlock();
}

TEST(Sync, SharedMutexAllowsReadersExcludesWriter) {
  SharedMutex m;
  m.lock_shared();
  std::thread reader([&m] {
    EXPECT_TRUE(m.try_lock_shared());  // shared mode admits more readers
    m.unlock_shared();
    EXPECT_FALSE(m.try_lock());  // ...but not an exclusive owner
  });
  reader.join();
  m.unlock_shared();

  m.lock();
  std::thread blocked([&m] {
    EXPECT_FALSE(m.try_lock_shared());  // exclusive mode excludes readers
    EXPECT_FALSE(m.try_lock());
  });
  blocked.join();
  m.unlock();
}

TEST(Sync, GuardedCounterIsExactUnderContention) {
  // N threads hammer one guarded counter through MutexLock; the final value
  // is exact iff the wrapper actually locks. TSan additionally proves the
  // accesses are ordered.
  Mutex m;
  int counter = 0;  // guarded by m (by convention in this test)
  constexpr int kThreads = 4, kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        const MutexLock lock(m);
        ++counter;
      }
    });
  for (std::thread& t : threads) t.join();
  const MutexLock lock(m);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(Sync, SharedLockReadersSeeWriterUpdates) {
  SharedMutex m;
  int value = 0;  // guarded by m
  std::atomic<int> reads_done{0};
  std::thread writer([&] {
    for (int i = 1; i <= 100; ++i) {
      const ExclusiveLock lock(m);
      value = i;
    }
  });
  std::thread reader([&] {
    int last = 0;
    while (last < 100) {
      const SharedLock lock(m);
      EXPECT_GE(value, last);  // monotone under the writer above
      last = value;
      reads_done.fetch_add(1);
    }
  });
  writer.join();
  reader.join();
  EXPECT_GE(reads_done.load(), 1);
}

TEST(Sync, CondVarWakesManualWaitLoop) {
  // The project rule (see util/sync.hpp): CV waits are explicit while-loops
  // over guarded state, notify happens under the same mutex. This test is
  // the canonical shape every migrated wait site follows.
  Mutex m;
  CondVar cv;
  bool ready = false;  // guarded by m
  std::thread signaller([&] {
    const MutexLock lock(m);
    ready = true;
    cv.notify_one();
  });
  {
    MutexUniqueLock lock(m);
    while (!ready) cv.wait(lock);
    EXPECT_TRUE(ready);
  }
  signaller.join();
}

TEST(Sync, CondVarWaitUntilTimesOutCleanly) {
  Mutex m;
  CondVar cv;
  MutexUniqueLock lock(m);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  // Nobody notifies: wait_until must return timeout, with the lock re-held.
  while (cv.wait_until(lock, deadline) != std::cv_status::timeout) {
  }
  EXPECT_TRUE(lock.native().owns_lock());
}

// Regression for the pool-handle lifetime race fixed in the sync migration:
// pool() used to return a reference into the global slot, so a concurrent
// set_thread_count could destroy the Pool while parallel_for was still
// draining on it (use-after-free under TSan/ASan). Callers now hold a
// shared_ptr, so resizing mid-job is safe: the old pool dies only after the
// last job on it completes.
TEST(Parallel, SetThreadCountDuringParallelForIsSafe) {
  const std::size_t original = thread_count();
  std::atomic<bool> stop{false};
  std::thread resizer([&] {
    std::size_t n = 2;
    while (!stop.load()) {
      set_thread_count(n);
      n = (n == 2) ? 3 : 2;
    }
  });
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    parallel_for(64, [&sum](std::size_t) { sum.fetch_add(1); });
    ASSERT_EQ(sum.load(), 64);
  }
  stop.store(true);
  resizer.join();
  set_thread_count(original);
}

// Regression for the service-era pool contract: parallel_for called
// concurrently from several EXTERNAL threads must serialize whole jobs and
// keep every caller's results intact. Before the pool's per-job
// serialization, a second caller clobbered the shared job state mid-run
// (lost indices, hangs); this drives that interleaving hard.
TEST(Parallel, ConcurrentExternalCallersKeepTheirJobsIntact) {
  constexpr int kCallers = 4;
  constexpr std::size_t kItems = 2000;
  std::vector<std::vector<int>> results(kCallers, std::vector<int>(kItems, 0));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c)
    callers.emplace_back([&results, c] {
      for (int round = 0; round < 5; ++round)
        parallel_for(kItems, [&results, c](std::size_t i) {
          results[c][i] += 1;  // body writes only caller-c, index-i state
        });
    });
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c)
    for (std::size_t i = 0; i < kItems; ++i)
      ASSERT_EQ(results[c][i], 5) << "caller " << c << " lost index " << i;
}

TEST(Parallel, InlineScopeRunsBodiesOnTheCallingThread) {
  const ParallelInlineScope scope;
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  parallel_for(64, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) off_thread.fetch_add(1);
  });
  EXPECT_EQ(off_thread.load(), 0);
}

TEST(Cancel, CheckpointIsInertWithoutAScopeAndTripsInsideOne) {
  EXPECT_NO_THROW(cancellation_point("outside"));
  CancelToken token;
  {
    const CancelScope scope(&token);
    EXPECT_NO_THROW(cancellation_point("armed-but-idle"));
    token.cancel();
    EXPECT_THROW(cancellation_point("after-cancel"), CancelledError);
  }
  // Scope popped: the cancelled token no longer affects this thread.
  EXPECT_NO_THROW(cancellation_point("outside-again"));
}

TEST(Cancel, DeadlineExpiryTripsTyped) {
  CancelToken token;
  token.set_deadline_after_ms(-1.0);  // already expired
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.deadline_expired());
  const CancelScope scope(&token);
  EXPECT_THROW(cancellation_point("expired"), DeadlineExceededError);
}

TEST(Cancel, RemainingMsCountsDown) {
  CancelToken token;
  EXPECT_FALSE(token.has_deadline());
  EXPECT_GT(token.remaining_ms(), 1e12);  // effectively unbounded
  token.set_deadline_after_ms(10000.0);
  const double remaining = token.remaining_ms();
  EXPECT_GT(remaining, 0.0);
  EXPECT_LE(remaining, 10000.0);
}

}  // namespace
}  // namespace subspar
