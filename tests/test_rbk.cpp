// Tests for the randomized block-Krylov row-basis machinery
// (lowrank/rbk_basis.hpp) and its multilevel driver in RowBasisRep:
// subspace accuracy against dense SVDs, adaptive-stop behaviour, fixed-seed
// bit-reproducibility, thread-count bit-identity, and the headline
// fewer-solves-at-equal-accuracy comparison against the deterministic
// column-sampling build.
#include <gtest/gtest.h>

#include <cmath>

#include "geometry/layout_gen.hpp"
#include "linalg/svd.hpp"
#include "lowrank/rbk_basis.hpp"
#include "lowrank/row_basis.hpp"
#include "substrate/eigen_solver.hpp"
#include "substrate/solver.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace subspar {
namespace {

SubstrateStack test_stack() { return paper_stack(40.0, 0.5, 1.0); }

// A symmetric n x n matrix with singular values `sigma` and a seeded random
// orthogonal eigenbasis: the exact answers for subspace-accuracy checks.
struct KnownSpectrum {
  Matrix g;
  Matrix u;  // n x n eigenbasis, spectrum order
};

KnownSpectrum known_spectrum(std::size_t n, const Vector& sigma, std::uint64_t seed) {
  Rng rng(seed);
  Matrix raw(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) raw(i, j) = rng.normal();
  const Svd dec = svd(raw);  // u is a random orthogonal matrix
  KnownSpectrum out;
  out.u = dec.u;
  Matrix scaled = dec.u;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) scaled(i, j) *= (j < sigma.size() ? sigma[j] : 0.0);
  out.g = matmul_nt(scaled, dec.u);
  return out;
}

std::function<Matrix(const Matrix&)> dense_apply(const Matrix& g) {
  return [&g](const Matrix& x) { return matmul(g, x); };
}

// ------------------------------------------------------------ rbk_range

TEST(RbkRange, RecoversDominantSubspaceOfExactMatrix) {
  const std::size_t n = 24;
  Vector sigma(n);
  for (std::size_t i = 0; i < n; ++i) sigma[i] = std::pow(10.0, -static_cast<double>(i));
  const KnownSpectrum ks = known_spectrum(n, sigma, 99);

  RbkOptions opt;
  opt.block_size = 4;
  opt.max_iters = 4;
  opt.target_tol = 1e-6;
  const RbkRange range = rbk_range(dense_apply(ks.g), n, opt, /*max_rank=*/8, /*seed=*/7);

  ASSERT_GE(range.basis.cols(), 4u);
  // Every recovered direction must lie in the span it claims: V orthonormal.
  const Matrix vtv = matmul_tn(range.basis, range.basis);
  for (std::size_t i = 0; i < vtv.rows(); ++i)
    for (std::size_t j = 0; j < vtv.cols(); ++j)
      EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-10);
  // The top eigenvectors (sigma 1, 1e-1, 1e-2, 1e-3) are captured: the
  // basis reproduces them to a tolerance far below the next spectrum gap.
  for (std::size_t j = 0; j < 4; ++j) {
    Vector uj(n);
    for (std::size_t i = 0; i < n; ++i) uj[i] = ks.u(i, j);
    const Vector proj = matvec(range.basis, matvec_t(range.basis, uj));
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) err += (proj[i] - uj[i]) * (proj[i] - uj[i]);
    EXPECT_LT(std::sqrt(err), 1e-3) << "eigenvector " << j;
  }
}

TEST(RbkRange, CertifiedResidualMatchesTrueResidual) {
  const std::size_t n = 20;
  Vector sigma(n);
  for (std::size_t i = 0; i < n; ++i) sigma[i] = std::pow(3.0, -static_cast<double>(i));
  const KnownSpectrum ks = known_spectrum(n, sigma, 3);

  RbkOptions opt;
  opt.block_size = 3;
  opt.max_iters = 5;
  opt.target_tol = 1e-3;
  const RbkRange range = rbk_range(dense_apply(ks.g), n, opt, n, 11);
  EXPECT_TRUE(range.converged);
  // The accepted basis really does reproduce the operator's range to ~tol
  // (the certificate is stochastic; allow an order of magnitude).
  const double true_resid = rbk_subspace_residual(range.basis, ks.g);
  EXPECT_LT(true_resid, 10 * opt.target_tol);
  ASSERT_FALSE(range.trajectory.empty());
  EXPECT_LE(range.trajectory.back().max_residual, opt.target_tol);
}

TEST(RbkRange, FixedSeedIsBitReproducible) {
  const std::size_t n = 16;
  Vector sigma(n);
  for (std::size_t i = 0; i < n; ++i) sigma[i] = std::exp(-static_cast<double>(i));
  const KnownSpectrum ks = known_spectrum(n, sigma, 21);
  RbkOptions opt;
  opt.block_size = 2;
  const RbkRange a = rbk_range(dense_apply(ks.g), n, opt, 6, 42);
  const RbkRange b = rbk_range(dense_apply(ks.g), n, opt, 6, 42);
  ASSERT_EQ(a.basis.rows(), b.basis.rows());
  ASSERT_EQ(a.basis.cols(), b.basis.cols());
  for (std::size_t i = 0; i < a.basis.rows(); ++i)
    for (std::size_t j = 0; j < a.basis.cols(); ++j) EXPECT_EQ(a.basis(i, j), b.basis(i, j));
  EXPECT_EQ(a.applies, b.applies);
  // A different seed draws different probes.
  const RbkRange c = rbk_range(dense_apply(ks.g), n, opt, 6, 43);
  bool any_diff = false;
  if (c.basis.cols() == a.basis.cols()) {
    for (std::size_t i = 0; i < a.basis.rows() && !any_diff; ++i)
      for (std::size_t j = 0; j < a.basis.cols() && !any_diff; ++j)
        any_diff = a.basis(i, j) != c.basis(i, j);
  } else {
    any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// ----------------------------------------------------- adaptive rank rule

TEST(RbkAdaptiveRank, StopsWhereTailEnergyDropsBelowTolerance) {
  Vector sigma(5);
  sigma[0] = 1.0;
  sigma[1] = 1e-1;
  sigma[2] = 1e-2;
  sigma[3] = 1e-7;
  sigma[4] = 1e-9;
  // tol 1e-4: ranks 0..2 leave visible tail, rank 3 clears it.
  EXPECT_EQ(rbk_adaptive_rank(sigma, 1e-4, 10, 10), 3u);
  // Looser tolerance cuts earlier.
  EXPECT_EQ(rbk_adaptive_rank(sigma, 2e-1, 10, 10), 1u);
}

TEST(RbkAdaptiveRank, MonotoneInToleranceAndRespectsCaps) {
  Vector sigma(8);
  for (std::size_t i = 0; i < 8; ++i) sigma[i] = std::pow(10.0, -static_cast<double>(i));
  std::size_t prev = 0;
  // Tightening the tolerance never decreases the chosen rank.
  for (const double tol : {0.5, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6}) {
    const std::size_t r = rbk_adaptive_rank(sigma, tol, 8, 8);
    EXPECT_GE(r, prev) << "tol " << tol;
    prev = r;
  }
  // Caps: max_rank and the block dimension both bound the answer.
  EXPECT_LE(rbk_adaptive_rank(sigma, 1e-12, 3, 8), 3u);
  EXPECT_LE(rbk_adaptive_rank(sigma, 1e-12, 8, 2), 2u);
  // An all-zero spectrum has rank 0.
  Vector zeros(4);
  EXPECT_EQ(rbk_adaptive_rank(zeros, 1e-4, 8, 8), 0u);
}

TEST(RbkHelpers, StreamSeedsSeparateBlocksAndRounds) {
  const std::uint64_t base = rbk_stream_seed(12345, 2, 0, 0, 0);
  EXPECT_NE(base, rbk_stream_seed(12345, 2, 0, 0, 1));
  EXPECT_NE(base, rbk_stream_seed(12345, 2, 0, 1, 0));
  EXPECT_NE(base, rbk_stream_seed(12345, 2, 1, 0, 0));
  EXPECT_NE(base, rbk_stream_seed(12345, 3, 0, 0, 0));
  EXPECT_NE(base, rbk_stream_seed(12346, 2, 0, 0, 0));
  // Same tuple, same seed: the stream is a pure function of its inputs.
  EXPECT_EQ(base, rbk_stream_seed(12345, 2, 0, 0, 0));
}

TEST(RbkHelpers, GaussianProbesAreOrthonormalWhenTall) {
  const Matrix p = rbk_gaussian_probes(12, 3, 5);
  const Matrix ptp = matmul_tn(p, p);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(ptp(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

// ------------------------------------------------- multilevel RBK driver

TEST(RbkRowBasis, FewerSolvesThanDeterministicAtComparableAccuracy) {
  const Layout layout = regular_grid_layout(16);
  const SurfaceSolver solver(layout, test_stack());
  const QuadTree tree(layout);
  const Matrix g = extract_dense(solver);

  const auto worst_apply_error = [&](const RowBasisRep& rep) {
    Rng rng(77);
    double worst = 0.0;
    for (int t = 0; t < 8; ++t) {
      Vector v(layout.n_contacts());
      for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.normal();
      const Vector exact = matvec(g, v);
      const Vector approx = rep.apply(v);
      double num = 0.0, den = 0.0;
      for (std::size_t i = 0; i < v.size(); ++i) {
        num += (approx[i] - exact[i]) * (approx[i] - exact[i]);
        den += exact[i] * exact[i];
      }
      worst = std::max(worst, std::sqrt(num / den));
    }
    return worst;
  };

  const RowBasisRep det(solver, tree, {});
  LowRankOptions ro;
  ro.basis = RowBasisScheme::kBlockKrylov;
  const RowBasisRep rbk(solver, tree, ro);

  EXPECT_LT(rbk.solves(), det.solves());
  const double det_err = worst_apply_error(det);
  const double rbk_err = worst_apply_error(rbk);
  // Comparable accuracy: the randomized build must stay within 2x of the
  // deterministic apply error (both are ~1e-6 here).
  EXPECT_LT(rbk_err, 2.0 * det_err);
  EXPECT_LT(rbk_err, 1e-4);

  // The trajectory narrates the build: at least one sketch round, and the
  // full-rank shortcut leaves finer levels converged in a single round.
  ASSERT_FALSE(rbk.trajectory().empty());
  EXPECT_EQ(rbk.trajectory().front().level, 2);
  for (const RbkStep& s : rbk.trajectory()) {
    EXPECT_GE(s.round, 0);
    EXPECT_LE(s.max_rank, ro.max_rank);
  }
}

TEST(RbkRowBasis, FixedSeedIsBitReproducible) {
  const Layout layout = regular_grid_layout(16);
  const SurfaceSolver solver(layout, test_stack());
  const QuadTree tree(layout);

  LowRankOptions ro;
  ro.basis = RowBasisScheme::kBlockKrylov;
  const RowBasisRep a(solver, tree, ro);
  const RowBasisRep b(solver, tree, ro);

  Rng rng(5);
  Vector v(layout.n_contacts());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.normal();
  const Vector ya = a.apply(v);
  const Vector yb = b.apply(v);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(ya[i], yb[i]) << "row " << i;
  EXPECT_EQ(a.solves(), b.solves());
  ASSERT_EQ(a.trajectory().size(), b.trajectory().size());
  for (std::size_t i = 0; i < a.trajectory().size(); ++i)
    EXPECT_EQ(a.trajectory()[i].max_residual, b.trajectory()[i].max_residual);
}

TEST(RbkRowBasis, ThreadCountDoesNotChangeBits) {
  const Layout layout = regular_grid_layout(16);
  const SurfaceSolver solver(layout, test_stack());
  const QuadTree tree(layout);
  LowRankOptions ro;
  ro.basis = RowBasisScheme::kBlockKrylov;

  const std::size_t restore = thread_count();
  set_thread_count(1);
  const RowBasisRep one(solver, tree, ro);
  set_thread_count(4);
  const RowBasisRep four(solver, tree, ro);
  set_thread_count(restore);

  Rng rng(9);
  Vector v(layout.n_contacts());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.normal();
  const Vector y1 = one.apply(v);
  const Vector y4 = four.apply(v);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(y1[i], y4[i]) << "row " << i;
  EXPECT_EQ(one.solves(), four.solves());
}

}  // namespace
}  // namespace subspar
