// Tests for CSR sparse matrices and the IC(0) preconditioner.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/ic0.hpp"
#include "linalg/iterative.hpp"
#include "linalg/sparse.hpp"
#include "util/rng.hpp"

namespace subspar {
namespace {

// 1-D resistor-chain Laplacian with both ends grounded through g: SPD, the
// simplest relative of the substrate FD matrix.
SparseMatrix chain_laplacian(std::size_t n, double g_end) {
  SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double d = 0.0;
    if (i > 0) {
      b.add(i, i - 1, -1.0);
      d += 1.0;
    }
    if (i + 1 < n) {
      b.add(i, i + 1, -1.0);
      d += 1.0;
    }
    if (i == 0 || i + 1 == n) d += g_end;
    b.add(i, i, d);
  }
  return SparseMatrix(b);
}

TEST(Sparse, BuildSumsDuplicatesAndSorts) {
  SparseBuilder b(2, 3);
  b.add(0, 2, 1.0);
  b.add(0, 0, 2.0);
  b.add(0, 2, 3.0);  // duplicate, sums to 4
  b.add(1, 1, 5.0);
  const SparseMatrix a(b);
  EXPECT_EQ(a.nnz(), 3u);
  const Matrix d = a.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
}

TEST(Sparse, DropTolRemovesCancelledEntries) {
  SparseBuilder b(1, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, -1.0);  // cancels to zero
  b.add(0, 1, 2.0);
  const SparseMatrix a(b);
  EXPECT_EQ(a.nnz(), 1u);
}

TEST(Sparse, ApplyMatchesDense) {
  Rng rng(1);
  SparseBuilder b(6, 4);
  for (int t = 0; t < 10; ++t)
    b.add(rng.below(6), rng.below(4), rng.normal());
  const SparseMatrix a(b);
  const Matrix d = a.to_dense();
  Vector x(4);
  for (auto& v : x) v = rng.normal();
  EXPECT_LT(norm2(a.apply(x) - matvec(d, x)), 1e-14);
  Vector y(6);
  for (auto& v : y) v = rng.normal();
  EXPECT_LT(norm2(a.apply_t(y) - matvec_t(d, y)), 1e-14);
}

TEST(Sparse, TransposeIsInvolution) {
  Rng rng(2);
  SparseBuilder b(5, 7);
  for (int t = 0; t < 12; ++t) b.add(rng.below(5), rng.below(7), rng.normal());
  const SparseMatrix a(b);
  const SparseMatrix att = a.transposed().transposed();
  EXPECT_LT((a.to_dense() - att.to_dense()).max_abs(), 1e-15);
}

TEST(Sparse, FromDenseRespectsThreshold) {
  Matrix d(2, 2);
  d(0, 0) = 1.0;
  d(0, 1) = 1e-8;
  d(1, 1) = -0.5;
  const SparseMatrix a = SparseMatrix::from_dense(d, 1e-6);
  EXPECT_EQ(a.nnz(), 2u);
}

TEST(Sparse, SparsityFactorMatchesPaperDefinition) {
  Matrix d(4, 4);
  d(0, 0) = d(1, 1) = 1.0;  // 2 nonzeros of 16 entries -> sparsity 8
  const SparseMatrix a = SparseMatrix::from_dense(d);
  EXPECT_DOUBLE_EQ(a.sparsity_factor(), 8.0);
}

TEST(Sparse, CoordinatesListAllNonzeros) {
  SparseBuilder b(3, 3);
  b.add(0, 1, 1.0);
  b.add(2, 0, 1.0);
  const SparseMatrix a(b);
  const auto coords = a.coordinates();
  ASSERT_EQ(coords.size(), 2u);
  EXPECT_EQ(coords[0], (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(coords[1], (std::pair<std::size_t, std::size_t>{2, 0}));
}

TEST(Ic0, ExactForTridiagonalSpd) {
  // IC(0) of a tridiagonal matrix is the exact Cholesky factor (no fill-in
  // exists), so the preconditioner solve must be a direct solve.
  const SparseMatrix a = chain_laplacian(20, 1.0);
  const SparseMatrix la = ic0(a);
  Rng rng(3);
  Vector b(20);
  for (auto& v : b) v = rng.normal();
  const Vector x = ic0_solve(la, b);
  EXPECT_LT(norm2(a.apply(x) - b), 1e-10 * norm2(b));
}

TEST(Ic0, FactorHasNoFillIn) {
  const SparseMatrix a = chain_laplacian(10, 0.5);
  const SparseMatrix la = ic0(a);
  // Lower triangle of A has 10 diagonal + 9 subdiagonal entries.
  EXPECT_EQ(la.nnz(), 19u);
}

TEST(Ic0, PreconditionsPcgOn2dGrid) {
  // 2-D 5-point Laplacian, anchored: compare PCG iteration counts with and
  // without IC(0). The preconditioner must help.
  const std::size_t nx = 16, ny = 16, n = nx * ny;
  SparseBuilder bld(n, n);
  auto id = [&](std::size_t x, std::size_t y) { return x + nx * y; };
  for (std::size_t y = 0; y < ny; ++y)
    for (std::size_t x = 0; x < nx; ++x) {
      double d = 1e-3;  // weak anchor keeps it SPD
      auto nb = [&](std::size_t xx, std::size_t yy) {
        bld.add(id(x, y), id(xx, yy), -1.0);
        d += 1.0;
      };
      if (x > 0) nb(x - 1, y);
      if (x + 1 < nx) nb(x + 1, y);
      if (y > 0) nb(x, y - 1);
      if (y + 1 < ny) nb(x, y + 1);
      bld.add(id(x, y), id(x, y), d);
    }
  const SparseMatrix a(bld);
  const SparseMatrix la = ic0(a);
  Rng rng(4);
  Vector b(n);
  for (auto& v : b) v = rng.normal();
  const IterOptions opt{.rel_tol = 1e-8, .max_iterations = 2000};
  IterStats plain, prec;
  pcg([&](const Vector& v) { return a.apply(v); }, b, opt, &plain);
  pcg([&](const Vector& v) { return a.apply(v); }, b, opt, &prec,
      [&](const Vector& r) { return ic0_solve(la, r); });
  EXPECT_TRUE(prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations);
}

class ChainSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChainSweep, Ic0SolveMatchesDenseCholesky) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  const SparseMatrix a = chain_laplacian(n, 2.0);
  const SparseMatrix la = ic0(a);
  const Cholesky chol(a.to_dense());
  Rng rng(5 + n);
  Vector b(n);
  for (auto& v : b) v = rng.normal();
  EXPECT_LT(norm2(ic0_solve(la, b) - chol.solve(b)), 1e-9 * norm2(b));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChainSweep, ::testing::Values(2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace subspar

namespace subspar {
namespace {

class RandomSparseSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomSparseSweep, ApplyAndTransposeApplyMatchDense) {
  Rng rng(200 + GetParam());
  const std::size_t rows = 2 + rng.below(20), cols = 2 + rng.below(20);
  SparseBuilder bld(rows, cols);
  const int entries = 1 + static_cast<int>(rng.below(3 * rows));
  for (int t = 0; t < entries; ++t) bld.add(rng.below(rows), rng.below(cols), rng.normal());
  const SparseMatrix a(bld);
  const Matrix d = a.to_dense();
  Vector x(cols), y(rows);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  ASSERT_LT(norm2(a.apply(x) - matvec(d, x)), 1e-12);
  ASSERT_LT(norm2(a.apply_t(y) - matvec_t(d, y)), 1e-12);
  // <Ax, y> == <x, A'y>.
  ASSERT_NEAR(dot(a.apply(x), y), dot(x, a.apply_t(y)), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Random, RandomSparseSweep, ::testing::Range(0, 8));

TEST(Sparse, EmptyMatrixBehaves) {
  const SparseMatrix a(SparseBuilder(3, 3));
  EXPECT_EQ(a.nnz(), 0u);
  EXPECT_DOUBLE_EQ(a.sparsity_factor(), 0.0);
  EXPECT_DOUBLE_EQ(norm2(a.apply(Vector(3, 1.0))), 0.0);
}

TEST(Sparse, RowIterationMatchesCoordinates) {
  SparseBuilder b(4, 4);
  b.add(1, 2, 5.0);
  b.add(3, 0, -1.0);
  b.add(1, 0, 2.0);
  const SparseMatrix a(b);
  std::size_t count = 0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = a.row_begin(i); k < a.row_end(i); ++k) {
      ++count;
      if (i == 1 && a.col_index(k) == 2) {
        EXPECT_DOUBLE_EQ(a.value(k), 5.0);
      }
    }
  EXPECT_EQ(count, a.coordinates().size());
}

}  // namespace
}  // namespace subspar
