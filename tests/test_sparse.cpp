// Tests for CSR sparse matrices, the batched SpMM engine, RCM reordering,
// and the (level-scheduled) IC(0) preconditioner.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "linalg/cholesky.hpp"
#include "linalg/ic0.hpp"
#include "linalg/iterative.hpp"
#include "linalg/reorder.hpp"
#include "linalg/sparse.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace subspar {
namespace {

// 1-D resistor-chain Laplacian with both ends grounded through g: SPD, the
// simplest relative of the substrate FD matrix.
SparseMatrix chain_laplacian(std::size_t n, double g_end) {
  SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double d = 0.0;
    if (i > 0) {
      b.add(i, i - 1, -1.0);
      d += 1.0;
    }
    if (i + 1 < n) {
      b.add(i, i + 1, -1.0);
      d += 1.0;
    }
    if (i == 0 || i + 1 == n) d += g_end;
    b.add(i, i, d);
  }
  return SparseMatrix(b);
}

TEST(Sparse, BuildSumsDuplicatesAndSorts) {
  SparseBuilder b(2, 3);
  b.add(0, 2, 1.0);
  b.add(0, 0, 2.0);
  b.add(0, 2, 3.0);  // duplicate, sums to 4
  b.add(1, 1, 5.0);
  const SparseMatrix a(b);
  EXPECT_EQ(a.nnz(), 3u);
  const Matrix d = a.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
}

TEST(Sparse, DropTolRemovesCancelledEntries) {
  SparseBuilder b(1, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, -1.0);  // cancels to zero
  b.add(0, 1, 2.0);
  const SparseMatrix a(b);
  EXPECT_EQ(a.nnz(), 1u);
}

TEST(Sparse, ApplyMatchesDense) {
  Rng rng(1);
  SparseBuilder b(6, 4);
  for (int t = 0; t < 10; ++t)
    b.add(rng.below(6), rng.below(4), rng.normal());
  const SparseMatrix a(b);
  const Matrix d = a.to_dense();
  Vector x(4);
  for (auto& v : x) v = rng.normal();
  EXPECT_LT(norm2(a.apply(x) - matvec(d, x)), 1e-14);
  Vector y(6);
  for (auto& v : y) v = rng.normal();
  EXPECT_LT(norm2(a.apply_t(y) - matvec_t(d, y)), 1e-14);
}

TEST(Sparse, TransposeIsInvolution) {
  Rng rng(2);
  SparseBuilder b(5, 7);
  for (int t = 0; t < 12; ++t) b.add(rng.below(5), rng.below(7), rng.normal());
  const SparseMatrix a(b);
  const SparseMatrix att = a.transposed().transposed();
  EXPECT_LT((a.to_dense() - att.to_dense()).max_abs(), 1e-15);
}

TEST(Sparse, FromDenseRespectsThreshold) {
  Matrix d(2, 2);
  d(0, 0) = 1.0;
  d(0, 1) = 1e-8;
  d(1, 1) = -0.5;
  const SparseMatrix a = SparseMatrix::from_dense(d, 1e-6);
  EXPECT_EQ(a.nnz(), 2u);
}

TEST(Sparse, SparsityFactorMatchesPaperDefinition) {
  Matrix d(4, 4);
  d(0, 0) = d(1, 1) = 1.0;  // 2 nonzeros of 16 entries -> sparsity 8
  const SparseMatrix a = SparseMatrix::from_dense(d);
  EXPECT_DOUBLE_EQ(a.sparsity_factor(), 8.0);
}

TEST(Sparse, CoordinatesListAllNonzeros) {
  SparseBuilder b(3, 3);
  b.add(0, 1, 1.0);
  b.add(2, 0, 1.0);
  const SparseMatrix a(b);
  const auto coords = a.coordinates();
  ASSERT_EQ(coords.size(), 2u);
  EXPECT_EQ(coords[0], (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(coords[1], (std::pair<std::size_t, std::size_t>{2, 0}));
}

TEST(Ic0, ExactForTridiagonalSpd) {
  // IC(0) of a tridiagonal matrix is the exact Cholesky factor (no fill-in
  // exists), so the preconditioner solve must be a direct solve.
  const SparseMatrix a = chain_laplacian(20, 1.0);
  const SparseMatrix la = ic0(a);
  Rng rng(3);
  Vector b(20);
  for (auto& v : b) v = rng.normal();
  const Vector x = ic0_solve(la, b);
  EXPECT_LT(norm2(a.apply(x) - b), 1e-10 * norm2(b));
}

TEST(Ic0, FactorHasNoFillIn) {
  const SparseMatrix a = chain_laplacian(10, 0.5);
  const SparseMatrix la = ic0(a);
  // Lower triangle of A has 10 diagonal + 9 subdiagonal entries.
  EXPECT_EQ(la.nnz(), 19u);
}

TEST(Ic0, PreconditionsPcgOn2dGrid) {
  // 2-D 5-point Laplacian, anchored: compare PCG iteration counts with and
  // without IC(0). The preconditioner must help.
  const std::size_t nx = 16, ny = 16, n = nx * ny;
  SparseBuilder bld(n, n);
  auto id = [&](std::size_t x, std::size_t y) { return x + nx * y; };
  for (std::size_t y = 0; y < ny; ++y)
    for (std::size_t x = 0; x < nx; ++x) {
      double d = 1e-3;  // weak anchor keeps it SPD
      auto nb = [&](std::size_t xx, std::size_t yy) {
        bld.add(id(x, y), id(xx, yy), -1.0);
        d += 1.0;
      };
      if (x > 0) nb(x - 1, y);
      if (x + 1 < nx) nb(x + 1, y);
      if (y > 0) nb(x, y - 1);
      if (y + 1 < ny) nb(x, y + 1);
      bld.add(id(x, y), id(x, y), d);
    }
  const SparseMatrix a(bld);
  const SparseMatrix la = ic0(a);
  Rng rng(4);
  Vector b(n);
  for (auto& v : b) v = rng.normal();
  const IterOptions opt{.rel_tol = 1e-8, .max_iterations = 2000};
  IterStats plain, prec;
  pcg([&](const Vector& v) { return a.apply(v); }, b, opt, &plain);
  pcg([&](const Vector& v) { return a.apply(v); }, b, opt, &prec,
      [&](const Vector& r) { return ic0_solve(la, r); });
  EXPECT_TRUE(prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations);
}

class ChainSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChainSweep, Ic0SolveMatchesDenseCholesky) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  const SparseMatrix a = chain_laplacian(n, 2.0);
  const SparseMatrix la = ic0(a);
  const Cholesky chol(a.to_dense());
  Rng rng(5 + n);
  Vector b(n);
  for (auto& v : b) v = rng.normal();
  EXPECT_LT(norm2(ic0_solve(la, b) - chol.solve(b)), 1e-9 * norm2(b));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChainSweep, ::testing::Values(2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace subspar

namespace subspar {
namespace {

class RandomSparseSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomSparseSweep, ApplyAndTransposeApplyMatchDense) {
  Rng rng(200 + GetParam());
  const std::size_t rows = 2 + rng.below(20), cols = 2 + rng.below(20);
  SparseBuilder bld(rows, cols);
  const int entries = 1 + static_cast<int>(rng.below(3 * rows));
  for (int t = 0; t < entries; ++t) bld.add(rng.below(rows), rng.below(cols), rng.normal());
  const SparseMatrix a(bld);
  const Matrix d = a.to_dense();
  Vector x(cols), y(rows);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  ASSERT_LT(norm2(a.apply(x) - matvec(d, x)), 1e-12);
  ASSERT_LT(norm2(a.apply_t(y) - matvec_t(d, y)), 1e-12);
  // <Ax, y> == <x, A'y>.
  ASSERT_NEAR(dot(a.apply(x), y), dot(x, a.apply_t(y)), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Random, RandomSparseSweep, ::testing::Range(0, 8));

TEST(Sparse, EmptyMatrixBehaves) {
  const SparseMatrix a(SparseBuilder(3, 3));
  EXPECT_EQ(a.nnz(), 0u);
  EXPECT_DOUBLE_EQ(a.sparsity_factor(), 0.0);
  EXPECT_DOUBLE_EQ(norm2(a.apply(Vector(3, 1.0))), 0.0);
}

// ------------------------------------------------- batched SpMM engine

namespace {

SparseMatrix random_sparse(std::size_t rows, std::size_t cols, Rng& rng) {
  SparseBuilder b(rows, cols);
  const int entries = 1 + static_cast<int>(rng.below(4 * rows));
  for (int t = 0; t < entries; ++t) b.add(rng.below(rows), rng.below(cols), rng.normal());
  return SparseMatrix(b);
}

// 2-D 5-point Laplacian with a weak anchor: SPD, structurally symmetric.
SparseMatrix grid2d_laplacian(std::size_t nx, std::size_t ny) {
  SparseBuilder bld(nx * ny, nx * ny);
  auto id = [&](std::size_t x, std::size_t y) { return x + nx * y; };
  for (std::size_t y = 0; y < ny; ++y)
    for (std::size_t x = 0; x < nx; ++x) {
      double d = 1e-3;
      auto nb = [&](std::size_t xx, std::size_t yy) {
        bld.add(id(x, y), id(xx, yy), -1.0);
        d += 1.0;
      };
      if (x > 0) nb(x - 1, y);
      if (x + 1 < nx) nb(x + 1, y);
      if (y > 0) nb(x, y - 1);
      if (y + 1 < ny) nb(x, y + 1);
      bld.add(id(x, y), id(x, y), d);
    }
  return SparseMatrix(bld);
}

}  // namespace

TEST(SpMM, ApplyManyBitIdenticalToSingleApplies) {
  // The engine contract: batched columns are bit-identical to one apply()
  // per column (same FMA-contractable reduction per output entry).
  for (int trial = 0; trial < 6; ++trial) {
    Rng rng(300 + trial);
    const std::size_t rows = 2 + rng.below(40), cols = 2 + rng.below(40);
    const SparseMatrix a = random_sparse(rows, cols, rng);
    const std::size_t k = 1 + rng.below(9);
    Matrix x(cols, k);
    for (std::size_t i = 0; i < cols; ++i)
      for (std::size_t j = 0; j < k; ++j) x(i, j) = rng.normal();
    const Matrix y = a.apply_many(x);
    ASSERT_EQ(y.rows(), rows);
    for (std::size_t j = 0; j < k; ++j) {
      const Vector yj = a.apply(x.col(j));
      for (std::size_t i = 0; i < rows; ++i)
        ASSERT_EQ(y(i, j), yj[i]) << "trial " << trial << " col " << j;
    }
  }
}

TEST(SpMM, ApplyTManyBitIdenticalToSingleApplies) {
  for (int trial = 0; trial < 6; ++trial) {
    Rng rng(330 + trial);
    const std::size_t rows = 2 + rng.below(40), cols = 2 + rng.below(40);
    const SparseMatrix a = random_sparse(rows, cols, rng);
    const std::size_t k = 1 + rng.below(9);
    Matrix x(rows, k);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < k; ++j)
        x(i, j) = rng.below(4) == 0 ? 0.0 : rng.normal();  // exercise the zero skip
    const Matrix y = a.apply_t_many(x);
    for (std::size_t j = 0; j < k; ++j) {
      const Vector yj = a.apply_t(x.col(j));
      for (std::size_t i = 0; i < cols; ++i)
        ASSERT_EQ(y(i, j), yj[i]) << "trial " << trial << " col " << j;
    }
  }
}

TEST(SpMM, BitIdenticalAcrossThreadCounts) {
  Rng rng(340);
  const SparseMatrix a = grid2d_laplacian(24, 24);
  Matrix x(a.cols(), 7);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < x.cols(); ++j) x(i, j) = rng.normal();
  set_thread_count(1);
  const Matrix y1 = a.apply_many(x);
  const Matrix t1 = a.apply_t_many(x);
  set_thread_count(4);
  const Matrix y4 = a.apply_many(x);
  const Matrix t4 = a.apply_t_many(x);
  set_thread_count(1);
  EXPECT_EQ((y1 - y4).max_abs(), 0.0);
  EXPECT_EQ((t1 - t4).max_abs(), 0.0);
}

TEST(SpMM, ZeroColumnAndEmptyInputs) {
  const SparseMatrix a = grid2d_laplacian(4, 4);
  const Matrix y = a.apply_many(Matrix(a.cols(), 0));
  EXPECT_EQ(y.cols(), 0u);
  EXPECT_EQ(y.rows(), a.rows());
}

// ------------------------------------------------- symmetric permutation

TEST(Permute, PermutedMatchesDensePAPt) {
  Rng rng(350);
  const std::size_t n = 12;
  SparseBuilder b(n, n);
  for (int t = 0; t < 40; ++t) {
    const std::size_t i = rng.below(n), j = rng.below(n);
    b.add(i, j, rng.normal());
    b.add(j, i, rng.normal());  // keep the pattern symmetric
  }
  const SparseMatrix a(b);
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  for (std::size_t i = n; i-- > 1;) std::swap(p[i], p[rng.below(i + 1)]);
  const Matrix d = a.to_dense();
  const Matrix pd = a.permuted(p).to_dense();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      ASSERT_EQ(pd(i, j), d(p[i], p[j]));
}

TEST(Permute, InversePermutationRoundTrips) {
  Rng rng(351);
  const SparseMatrix a = grid2d_laplacian(5, 4);
  std::vector<std::size_t> p(a.rows());
  std::iota(p.begin(), p.end(), std::size_t{0});
  for (std::size_t i = p.size(); i-- > 1;) std::swap(p[i], p[rng.below(i + 1)]);
  const SparseMatrix round = a.permuted(p).permuted(invert_permutation(p));
  EXPECT_EQ((round.to_dense() - a.to_dense()).max_abs(), 0.0);
}

// ------------------------------------------------- RCM ordering

TEST(Rcm, ReducesBandwidthOfShuffledGrid) {
  // Scramble a banded grid Laplacian; RCM must recover a narrow band.
  Rng rng(360);
  const SparseMatrix a = grid2d_laplacian(16, 16);
  std::vector<std::size_t> shuffle(a.rows());
  std::iota(shuffle.begin(), shuffle.end(), std::size_t{0});
  for (std::size_t i = shuffle.size(); i-- > 1;) std::swap(shuffle[i], shuffle[rng.below(i + 1)]);
  const SparseMatrix scrambled = a.permuted(shuffle);
  const std::vector<std::size_t> p = rcm_ordering(scrambled);
  const SparseMatrix ordered = scrambled.permuted(p);
  EXPECT_LT(bandwidth(ordered), bandwidth(scrambled) / 4);
  EXPECT_LE(bandwidth(ordered), 40u);  // grid RCM band ~ 2 * nx
}

TEST(Rcm, IsAValidPermutationOnDisconnectedComponents) {
  // Two disjoint chains plus isolated vertices: every index appears once.
  SparseBuilder b(11, 11);
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    b.add(i, i + 1, -1.0);
    b.add(i + 1, i, -1.0);
  }
  for (std::size_t i = 5; i + 1 < 9; ++i) {
    b.add(i, i + 1, -1.0);
    b.add(i + 1, i, -1.0);
  }
  for (std::size_t i = 0; i < 11; ++i) b.add(i, i, 3.0);
  const SparseMatrix a(b);
  const std::vector<std::size_t> p = rcm_ordering(a);
  std::vector<char> seen(11, 0);
  for (const std::size_t v : p) {
    ASSERT_LT(v, 11u);
    ASSERT_FALSE(seen[v]);
    seen[v] = 1;
  }
}

TEST(Rcm, PermutedSystemSolvesLikeOriginal) {
  // P A P' equivalence: solving the reordered system and scattering back
  // reproduces the original solution (dense Cholesky on both sides).
  Rng rng(361);
  const SparseMatrix a = grid2d_laplacian(6, 5);
  const std::vector<std::size_t> p = rcm_ordering(a);
  Vector b(a.rows());
  for (auto& v : b) v = rng.normal();
  const Vector x = Cholesky(a.to_dense()).solve(b);
  Vector bp(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) bp[i] = b[p[i]];
  const Vector xp = Cholesky(a.permuted(p).to_dense()).solve(bp);
  Vector back(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) back[p[i]] = xp[i];
  EXPECT_LT(norm2(back - x), 1e-10 * norm2(x));
}

TEST(Rcm, PreservesSpectrumQuantitatively) {
  // A similarity transform by a permutation cannot change eigenvalues;
  // check via the two cheap invariants trace and log-det.
  const SparseMatrix a = grid2d_laplacian(5, 5);
  const SparseMatrix pa = a.permuted(rcm_ordering(a));
  double tra = 0.0, trp = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    tra += a.to_dense()(i, i);
    trp += pa.to_dense()(i, i);
  }
  EXPECT_NEAR(tra, trp, 1e-12);
  EXPECT_NEAR(Cholesky(a.to_dense()).log_det(), Cholesky(pa.to_dense()).log_det(), 1e-9);
}

// ------------------------------------------------- guards (empty inputs)

TEST(Sparse, FromDenseEmptyAndAllDroppedInputs) {
  EXPECT_EQ(SparseMatrix::from_dense(Matrix()).nnz(), 0u);
  EXPECT_EQ(SparseMatrix::from_dense(Matrix(0, 5)).nnz(), 0u);
  EXPECT_EQ(SparseMatrix::from_dense(Matrix(5, 0)).nnz(), 0u);
  Matrix small(3, 3, 1e-9);
  const SparseMatrix dropped = SparseMatrix::from_dense(small, 1e-6);
  EXPECT_EQ(dropped.nnz(), 0u);
  EXPECT_DOUBLE_EQ(dropped.sparsity_factor(), 0.0);  // no division by zero
  EXPECT_DOUBLE_EQ(SparseMatrix::from_dense(Matrix()).sparsity_factor(), 0.0);
}

// ------------------------------------------------- level-scheduled IC(0)

TEST(Ic0Levels, SolveManyBitIdenticalToSingleColumns) {
  const SparseMatrix a = grid2d_laplacian(12, 9);
  const Ic0Factor f = ic0_factor(a);
  Rng rng(370);
  Matrix b(a.rows(), 6);
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) = rng.normal();
  const Matrix x = ic0_solve_many(f, b);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    const Vector xj = ic0_solve(f, b.col(j));
    for (std::size_t i = 0; i < b.rows(); ++i) ASSERT_EQ(x(i, j), xj[i]) << "col " << j;
  }
}

TEST(Ic0Levels, MatchesSerialReferenceSolve) {
  // The level-scheduled sweeps must compute the same triangular solves as
  // the serial single-vector ic0_solve (to rounding).
  const SparseMatrix a = grid2d_laplacian(10, 10);
  const SparseMatrix la = ic0(a);
  const Ic0Factor f = ic0_factor(a);
  Rng rng(371);
  Vector b(a.rows());
  for (auto& v : b) v = rng.normal();
  const Vector serial = ic0_solve(la, b);
  const Vector scheduled = ic0_solve(f, b);
  EXPECT_LT(norm2(serial - scheduled), 1e-12 * norm2(serial));
}

TEST(Ic0Levels, ScheduleRespectsDependencies) {
  // Every off-diagonal entry of a row of L must reference a row of an
  // earlier forward level (and of L' an earlier backward level).
  const SparseMatrix a = grid2d_laplacian(8, 7);
  const Ic0Factor f = ic0_factor(a);
  std::vector<std::size_t> flevel(f.rows()), blevel(f.rows());
  for (std::size_t l = 0; l + 1 < f.fwd_ptr.size(); ++l)
    for (std::size_t q = f.fwd_ptr[l]; q < f.fwd_ptr[l + 1]; ++q) flevel[f.fwd_rows[q]] = l;
  for (std::size_t l = 0; l + 1 < f.bwd_ptr.size(); ++l)
    for (std::size_t q = f.bwd_ptr[l]; q < f.bwd_ptr[l + 1]; ++q) blevel[f.bwd_rows[q]] = l;
  for (std::size_t i = 0; i < f.rows(); ++i) {
    for (std::size_t e = f.l.row_begin(i); e + 1 < f.l.row_end(i); ++e)
      EXPECT_LT(flevel[f.l.col_index(e)], flevel[i]);
    for (std::size_t e = f.lt.row_begin(i) + 1; e < f.lt.row_end(i); ++e)
      EXPECT_LT(blevel[f.lt.col_index(e)], blevel[i]);
  }
  EXPECT_GT(f.forward_levels(), 1u);
}

TEST(Ic0Levels, SolveManyBitIdenticalAcrossThreadCounts) {
  const SparseMatrix a = grid2d_laplacian(16, 16);
  const Ic0Factor f = ic0_factor(a);
  Rng rng(372);
  Matrix b(a.rows(), 5);
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) = rng.normal();
  set_thread_count(1);
  const Matrix x1 = ic0_solve_many(f, b);
  set_thread_count(4);
  const Matrix x4 = ic0_solve_many(f, b);
  set_thread_count(1);
  EXPECT_EQ((x1 - x4).max_abs(), 0.0);
}

TEST(Ic0Preconditioner, RcmReorderedPreconditionsAsWellAsNatural) {
  // z = P' (L L')^{-1} P r on the RCM-permuted factor must precondition
  // PCG essentially as well as the natural-order factor (same algorithm,
  // different elimination order), and both must beat plain CG.
  const SparseMatrix a = grid2d_laplacian(20, 20);
  Rng rng(373);
  Vector b(a.rows());
  for (auto& v : b) v = rng.normal();
  const IterOptions opt{.rel_tol = 1e-10, .max_iterations = 2000};
  const LinearOp op = [&](const Vector& v) { return a.apply(v); };
  IterStats plain, natural, rcm;
  pcg(op, b, opt, &plain);
  const Ic0Preconditioner nat(a);
  const Ic0Preconditioner ord(a, rcm_ordering(a));
  const Vector xn =
      pcg(op, b, opt, &natural, [&](const Vector& r) { return nat.apply(r); });
  const Vector xo = pcg(op, b, opt, &rcm, [&](const Vector& r) { return ord.apply(r); });
  EXPECT_TRUE(natural.converged);
  EXPECT_TRUE(rcm.converged);
  EXPECT_LT(natural.iterations, plain.iterations);
  EXPECT_LT(rcm.iterations, plain.iterations);
  EXPECT_LT(static_cast<double>(rcm.iterations), 1.5 * static_cast<double>(natural.iterations));
  EXPECT_LT(norm2(xn - xo), 1e-7 * norm2(xn));
}

TEST(Ic0Preconditioner, ApplyManyMatchesApplyColumns) {
  const SparseMatrix a = grid2d_laplacian(9, 11);
  const Ic0Preconditioner m(a, rcm_ordering(a));
  Rng rng(374);
  Matrix r(a.rows(), 4);
  for (std::size_t i = 0; i < r.rows(); ++i)
    for (std::size_t j = 0; j < r.cols(); ++j) r(i, j) = rng.normal();
  const Matrix z = m.apply_many(r);
  for (std::size_t j = 0; j < r.cols(); ++j) {
    const Vector zj = m.apply(r.col(j));
    for (std::size_t i = 0; i < r.rows(); ++i) ASSERT_EQ(z(i, j), zj[i]);
  }
}

TEST(Sparse, RowIterationMatchesCoordinates) {
  SparseBuilder b(4, 4);
  b.add(1, 2, 5.0);
  b.add(3, 0, -1.0);
  b.add(1, 0, 2.0);
  const SparseMatrix a(b);
  std::size_t count = 0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = a.row_begin(i); k < a.row_end(i); ++k) {
      ++count;
      if (i == 1 && a.col_index(k) == 2) {
        EXPECT_DOUBLE_EQ(a.value(k), 5.0);
      }
    }
  EXPECT_EQ(count, a.coordinates().size());
}

}  // namespace
}  // namespace subspar
