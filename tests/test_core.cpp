// Tests for the facade (core/extractor) and shared reporting: end-to-end
// extraction with both methods, fast apply fidelity, thresholding option,
// and the error-metric helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/extractor.hpp"
#include "core/io.hpp"
#include "core/report.hpp"
#include "geometry/layout_gen.hpp"
#include "substrate/eigen_solver.hpp"
#include "substrate/solver.hpp"
#include "util/rng.hpp"

namespace subspar {
namespace {

struct CoreFixture {
  Layout layout;
  QuadTree tree;
  SurfaceSolver solver;
  explicit CoreFixture(Layout l)
      : layout(std::move(l)), tree(layout), solver(layout, paper_stack()) {}
};

TEST(Extractor, LowRankModelAppliesAccurately) {
  CoreFixture f(regular_grid_layout(8));
  const Matrix g = extract_dense(f.solver);
  f.solver.reset_solve_count();
  const SparsifiedModel model = extract_sparsified(f.solver, f.tree);
  Rng rng(1);
  Vector v(f.layout.n_contacts());
  for (auto& x : v) x = rng.normal();
  const Vector exact = matvec(g, v);
  EXPECT_LT(norm2(model.apply(v) - exact), 0.03 * norm2(exact));
  EXPECT_EQ(model.solves_used(), f.solver.solve_count());
}

TEST(Extractor, WaveletModelAppliesAccurately) {
  CoreFixture f(regular_grid_layout(8));
  const Matrix g = extract_dense(f.solver);
  const SparsifiedModel model =
      extract_sparsified(f.solver, f.tree, {.method = SparsifyMethod::kWavelet});
  Rng rng(2);
  Vector v(f.layout.n_contacts());
  for (auto& x : v) x = rng.normal();
  const Vector exact = matvec(g, v);
  EXPECT_LT(norm2(model.apply(v) - exact), 0.03 * norm2(exact));
}

TEST(Extractor, ThresholdOptionIncreasesSparsity) {
  CoreFixture f(regular_grid_layout(16));
  const SparsifiedModel plain = extract_sparsified(f.solver, f.tree);
  const SparsifiedModel thresholded =
      extract_sparsified(f.solver, f.tree, {.threshold_sparsity_multiple = 6.0});
  EXPECT_GT(thresholded.gw_sparsity_factor(), 5.0 * plain.gw_sparsity_factor());
}

TEST(Extractor, SummaryMentionsKeyMetrics) {
  CoreFixture f(regular_grid_layout(8));
  const SparsifiedModel model = extract_sparsified(f.solver, f.tree);
  const std::string s = model.summary();
  EXPECT_NE(s.find("solves"), std::string::npos);
  EXPECT_NE(s.find("sparsity"), std::string::npos);
}

TEST(Extractor, MomentOrderRespectedForWavelet) {
  CoreFixture f(regular_grid_layout(8));
  const SparsifiedModel p0 = extract_sparsified(
      f.solver, f.tree, {.method = SparsifyMethod::kWavelet, .moment_order = 0});
  const SparsifiedModel p2 = extract_sparsified(
      f.solver, f.tree, {.method = SparsifyMethod::kWavelet, .moment_order = 2});
  // Fewer constraints -> fewer leftover V vectors -> different structure;
  // both remain valid orthogonal transforms of the same size.
  EXPECT_EQ(p0.q().rows(), p2.q().rows());
  EXPECT_NE(p0.gw().nnz(), p2.gw().nnz());
}

TEST(Report, ReconstructColumnMatchesDenseProduct) {
  CoreFixture f(regular_grid_layout(4));
  const Matrix g = extract_dense(f.solver);
  const SparsifiedModel model = extract_sparsified(f.solver, f.tree);
  const Vector col = reconstruct_column(model.q(), model.gw(), 3);
  Vector e(f.layout.n_contacts());
  e[3] = 1.0;
  EXPECT_LT(norm2(col - model.apply(e)), 1e-12);
}

TEST(Report, DirectThresholdKeepsFractionSemantics) {
  Matrix g(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) g(i, j) = (i == j) ? 10.0 : 0.01;
  // Keeping ~1/3 of entries keeps the diagonal: off-diagonals all wrong.
  const ErrorStats stats = direct_threshold_error(g, 0.34);
  EXPECT_NEAR(stats.frac_above_10pct, 6.0 / 9.0, 0.01);
  EXPECT_NEAR(stats.max_rel_error, 1.0, 1e-12);
}

TEST(Report, ErrorStatsCountEntries) {
  CoreFixture f(regular_grid_layout(4));
  const Matrix g = extract_dense(f.solver);
  const SparsifiedModel model = extract_sparsified(f.solver, f.tree);
  const ErrorStats full = reconstruction_error(model.q(), model.gw(), g);
  EXPECT_EQ(full.entries, f.layout.n_contacts() * f.layout.n_contacts());
  const std::vector<std::size_t> cols{0, 5};
  const Matrix gc = extract_columns(f.solver, cols);
  const ErrorStats sampled = reconstruction_error(model.q(), model.gw(), gc, cols);
  EXPECT_EQ(sampled.entries, 2 * f.layout.n_contacts());
}


TEST(ModelIo, SaveLoadRoundTripsExactly) {
  CoreFixture f(regular_grid_layout(8));
  const SparsifiedModel model =
      extract_sparsified(f.solver, f.tree, {.threshold_sparsity_multiple = 4.0});
  const std::string path = "/tmp/subspar_model_test.txt";
  save_model(path, model);
  const SparsifiedModel loaded = load_model(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.q().nnz(), model.q().nnz());
  EXPECT_EQ(loaded.gw().nnz(), model.gw().nnz());
  EXPECT_EQ(loaded.solves_used(), model.solves_used());
  // Hex-float serialization must be bit exact.
  EXPECT_EQ((loaded.q().to_dense() - model.q().to_dense()).max_abs(), 0.0);
  EXPECT_EQ((loaded.gw().to_dense() - model.gw().to_dense()).max_abs(), 0.0);
  Rng rng(9);
  Vector v(f.layout.n_contacts());
  for (auto& x : v) x = rng.normal();
  EXPECT_EQ(norm2(loaded.apply(v) - model.apply(v)), 0.0);
}

TEST(ModelIo, LoadRejectsGarbage) {
  const std::string path = "/tmp/subspar_model_garbage.txt";
  FILE* fp = std::fopen(path.c_str(), "w");
  ASSERT_NE(fp, nullptr);
  std::fputs("not a model\n", fp);
  std::fclose(fp);
  EXPECT_THROW(load_model(path), std::invalid_argument);
  std::remove(path.c_str());
  EXPECT_THROW(load_model("/nonexistent/path/model.txt"), std::invalid_argument);
}

class MethodSweep : public ::testing::TestWithParam<SparsifyMethod> {};

TEST_P(MethodSweep, ModelsAreSymmetricOperators) {
  CoreFixture f(irregular_layout(8, 0.6, 5));
  const SparsifiedModel model = extract_sparsified(f.solver, f.tree, {.method = GetParam()});
  Rng rng(7);
  Vector a(f.layout.n_contacts()), b(f.layout.n_contacts());
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal();
  EXPECT_NEAR(dot(model.apply(a), b), dot(a, model.apply(b)),
              1e-9 * norm2(a) * norm2(b));
}

INSTANTIATE_TEST_SUITE_P(Methods, MethodSweep,
                         ::testing::Values(SparsifyMethod::kWavelet, SparsifyMethod::kLowRank));

}  // namespace
}  // namespace subspar
