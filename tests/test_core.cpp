// Tests for the facade (core/extractor) and shared reporting: end-to-end
// extraction with both methods, fast apply fidelity, thresholding option,
// and the error-metric helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/extractor.hpp"
#include "core/io.hpp"
#include "core/report.hpp"
#include "geometry/layout_gen.hpp"
#include "substrate/eigen_solver.hpp"
#include "substrate/solver.hpp"
#include "util/rng.hpp"

namespace subspar {
namespace {

struct CoreFixture {
  Layout layout;
  QuadTree tree;
  SurfaceSolver solver;
  explicit CoreFixture(Layout l)
      : layout(std::move(l)), tree(layout), solver(layout, paper_stack()) {}
};

TEST(Extractor, LowRankModelAppliesAccurately) {
  CoreFixture f(regular_grid_layout(8));
  const Matrix g = extract_dense(f.solver);
  f.solver.reset_solve_count();
  const SparsifiedModel model = extract_sparsified(f.solver, f.tree);
  Rng rng(1);
  Vector v(f.layout.n_contacts());
  for (auto& x : v) x = rng.normal();
  const Vector exact = matvec(g, v);
  EXPECT_LT(norm2(model.apply(v) - exact), 0.03 * norm2(exact));
  EXPECT_EQ(model.solves_used(), f.solver.solve_count());
}

TEST(Extractor, WaveletModelAppliesAccurately) {
  CoreFixture f(regular_grid_layout(8));
  const Matrix g = extract_dense(f.solver);
  const SparsifiedModel model =
      extract_sparsified(f.solver, f.tree, {.method = SparsifyMethod::kWavelet});
  Rng rng(2);
  Vector v(f.layout.n_contacts());
  for (auto& x : v) x = rng.normal();
  const Vector exact = matvec(g, v);
  EXPECT_LT(norm2(model.apply(v) - exact), 0.03 * norm2(exact));
}

TEST(Extractor, ThresholdOptionIncreasesSparsity) {
  CoreFixture f(regular_grid_layout(16));
  const SparsifiedModel plain = extract_sparsified(f.solver, f.tree);
  const SparsifiedModel thresholded =
      extract_sparsified(f.solver, f.tree, {.threshold_sparsity_multiple = 6.0});
  EXPECT_GT(thresholded.gw_sparsity_factor(), 5.0 * plain.gw_sparsity_factor());
}

TEST(Extractor, SummaryMentionsKeyMetrics) {
  CoreFixture f(regular_grid_layout(8));
  const SparsifiedModel model = extract_sparsified(f.solver, f.tree);
  const std::string s = model.summary();
  EXPECT_NE(s.find("solves"), std::string::npos);
  EXPECT_NE(s.find("sparsity"), std::string::npos);
}

TEST(Extractor, MomentOrderRespectedForWavelet) {
  CoreFixture f(regular_grid_layout(8));
  const SparsifiedModel p0 = extract_sparsified(
      f.solver, f.tree, {.method = SparsifyMethod::kWavelet, .moment_order = 0});
  const SparsifiedModel p2 = extract_sparsified(
      f.solver, f.tree, {.method = SparsifyMethod::kWavelet, .moment_order = 2});
  // Fewer constraints -> fewer leftover V vectors -> different structure;
  // both remain valid orthogonal transforms of the same size.
  EXPECT_EQ(p0.q().rows(), p2.q().rows());
  EXPECT_NE(p0.gw().nnz(), p2.gw().nnz());
}

TEST(Report, ReconstructColumnMatchesDenseProduct) {
  CoreFixture f(regular_grid_layout(4));
  const Matrix g = extract_dense(f.solver);
  const SparsifiedModel model = extract_sparsified(f.solver, f.tree);
  const Vector col = reconstruct_column(model.q(), model.gw(), 3);
  Vector e(f.layout.n_contacts());
  e[3] = 1.0;
  EXPECT_LT(norm2(col - model.apply(e)), 1e-12);
}

TEST(Report, DirectThresholdKeepsFractionSemantics) {
  Matrix g(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) g(i, j) = (i == j) ? 10.0 : 0.01;
  // Keeping ~1/3 of entries keeps the diagonal: off-diagonals all wrong.
  const ErrorStats stats = direct_threshold_error(g, 0.34);
  EXPECT_NEAR(stats.frac_above_10pct, 6.0 / 9.0, 0.01);
  EXPECT_NEAR(stats.max_rel_error, 1.0, 1e-12);
}

TEST(Report, ErrorStatsCountEntries) {
  CoreFixture f(regular_grid_layout(4));
  const Matrix g = extract_dense(f.solver);
  const SparsifiedModel model = extract_sparsified(f.solver, f.tree);
  const ErrorStats full = reconstruction_error(model.q(), model.gw(), g);
  EXPECT_EQ(full.entries, f.layout.n_contacts() * f.layout.n_contacts());
  const std::vector<std::size_t> cols{0, 5};
  const Matrix gc = extract_columns(f.solver, cols);
  const ErrorStats sampled = reconstruction_error(model.q(), model.gw(), gc, cols);
  EXPECT_EQ(sampled.entries, 2 * f.layout.n_contacts());
}


TEST(ModelIo, SaveLoadRoundTripsExactly) {
  CoreFixture f(regular_grid_layout(8));
  const SparsifiedModel model =
      extract_sparsified(f.solver, f.tree, {.threshold_sparsity_multiple = 4.0});
  const std::string path = "/tmp/subspar_model_test.txt";
  save_model(path, model);
  const SparsifiedModel loaded = load_model(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.q().nnz(), model.q().nnz());
  EXPECT_EQ(loaded.gw().nnz(), model.gw().nnz());
  EXPECT_EQ(loaded.solves_used(), model.solves_used());
  // Hex-float serialization must be bit exact.
  EXPECT_EQ((loaded.q().to_dense() - model.q().to_dense()).max_abs(), 0.0);
  EXPECT_EQ((loaded.gw().to_dense() - model.gw().to_dense()).max_abs(), 0.0);
  Rng rng(9);
  Vector v(f.layout.n_contacts());
  for (auto& x : v) x = rng.normal();
  EXPECT_EQ(norm2(loaded.apply(v) - model.apply(v)), 0.0);
}

namespace io_fixtures {

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, got);
  std::fclose(f);
  return content;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f), content.size());
  std::fclose(f);
}

// Expects load_model(path) to throw ModelIoError whose message contains
// `needle` (the section name the error should point at).
void expect_load_error(const std::string& path, const std::string& needle) {
  try {
    load_model(path);
    FAIL() << "load_model accepted a corrupt file (wanted error naming '" << needle << "')";
  } catch (const ModelIoError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

}  // namespace io_fixtures

TEST(ModelIo, LoadRejectsTruncatedFilesNamingTheSection) {
  using namespace io_fixtures;
  CoreFixture f(regular_grid_layout(4));
  const SparsifiedModel model = extract_sparsified(f.solver, f.tree);
  const std::string path = "/tmp/subspar_model_trunc.txt";
  save_model(path, model);
  const std::string v2 = read_file(path);

  // Any truncation of a v2 file loses (or splits) the checksum footer and is
  // rejected there before section parsing even starts.
  write_file(path, v2.substr(0, v2.size() - 10));
  expect_load_error(path, "checksum footer");

  // The section-level checks still guard legacy v1 files, which carry no
  // footer: strip it and downgrade the magic, then cut inside each section.
  const std::size_t footer = v2.rfind("checksum fnv1a ");
  ASSERT_NE(footer, std::string::npos);
  std::string good = v2.substr(0, footer);
  good.replace(good.find("v2"), 2, "v1");

  // Structural offsets: line 0 = magic, line 1 = metadata, line 2 = Q size,
  // lines 3..2+nnz(Q) = Q entries, then the G_w size line. Cuts land just
  // after a line's first token, so the truncation is always detectable (a
  // cut inside a trailing hex-float still scans as a shorter number).
  const std::size_t metadata_start = good.find('\n') + 1;
  const std::size_t q_size_line = good.find('\n', metadata_start) + 1;
  std::size_t q_entries_start = good.find('\n', q_size_line) + 1;
  std::size_t gw_size_line = q_entries_start;
  for (std::size_t e = 0; e < model.q().nnz(); ++e)
    gw_size_line = good.find('\n', gw_size_line) + 1;
  const std::size_t last_entry_start = good.rfind('\n', good.size() - 2) + 1;

  // Cut mid-way through every section: header, metadata, Q entries, G_w
  // size/entries. Each cut must fail loudly, naming the section.
  struct Cut {
    std::size_t bytes;
    const char* names;
  };
  const Cut cuts[] = {
      {4, "header"},                        // inside the magic line
      {metadata_start + 1, "metadata"},     // inside 'solves seconds'
      {q_entries_start + 2, "Q matrix"},    // inside the first Q entry
      {gw_size_line + 1, "G_w matrix"},     // inside the G_w size line
      {last_entry_start + 2, "G_w matrix"}, // missing the final entry
  };
  for (const Cut& cut : cuts) {
    ASSERT_LT(cut.bytes, good.size());
    write_file(path, good.substr(0, cut.bytes));
    expect_load_error(path, cut.names);
  }
  std::remove(path.c_str());
}

TEST(ModelIo, LoadRejectsBitFlippedFields) {
  using namespace io_fixtures;
  CoreFixture f(regular_grid_layout(4));
  const SparsifiedModel model = extract_sparsified(f.solver, f.tree);
  const std::string path = "/tmp/subspar_model_flip.txt";
  save_model(path, model);
  const std::string v2 = read_file(path);

  {  // A v2 file catches ANY payload mutation at the checksum footer, with
     // an expected-vs-got digest pair in the message — even mutations the
     // per-entry syntax checks would accept (here: a flipped hex digit that
     // still scans as a valid float).
    std::string bad = v2;
    const std::size_t mid = bad.size() / 2;
    bad[mid] = bad[mid] == '1' ? '2' : '1';
    write_file(path, bad);
    expect_load_error(path, "checksum footer");
    expect_load_error(path, "expected fnv1a ");
  }

  // Section-level validation is exercised on the legacy v1 form (no
  // footer), where mutated fields reach the parser directly.
  const std::size_t footer = v2.rfind("checksum fnv1a ");
  ASSERT_NE(footer, std::string::npos);
  std::string good = v2.substr(0, footer);
  good.replace(good.find("v2"), 2, "v1");

  // Locate the Q size line (line 3) and its first entry line (line 4).
  std::vector<std::string> lines;
  for (std::size_t pos = 0; pos < good.size();) {
    const std::size_t next = good.find('\n', pos);
    lines.push_back(good.substr(pos, next - pos));
    pos = next + 1;
  }
  const auto join = [&](const std::vector<std::string>& ls) {
    std::string out;
    for (const std::string& l : ls) out += l + "\n";
    return out;
  };

  {  // "Flipped" nnz count: promises more entries than the file holds.
    std::vector<std::string> bad = lines;
    bad[2] += "999";
    write_file(path, join(bad));
    expect_load_error(path, "Q matrix");
  }
  {  // Corrupt dimension: implausibly huge rows field.
    std::vector<std::string> bad = lines;
    bad[2] = "999999999999 " + bad[2];
    write_file(path, join(bad));
    expect_load_error(path, "Q matrix");
  }
  {  // Flipped column index on the first Q entry: out of declared range.
    std::vector<std::string> bad = lines;
    const std::size_t sp = bad[3].find(' ');
    bad[3] = bad[3].substr(0, sp) + " 888888" + bad[3].substr(bad[3].find(' ', sp + 1));
    write_file(path, join(bad));
    expect_load_error(path, "outside the declared");
  }
  {  // Flipped byte in the magic.
    std::string bad = good;
    bad[3] ^= 0x20;
    write_file(path, bad);
    expect_load_error(path, "header");
  }
  {  // Negative solve count in the metadata.
    std::vector<std::string> bad = lines;
    bad[1] = "-" + bad[1];
    write_file(path, join(bad));
    expect_load_error(path, "metadata");
  }
  std::remove(path.c_str());
}

TEST(ModelIo, LoadErrorsNameTheOffendingFile) {
  io_fixtures::expect_load_error("/nonexistent/path/model.txt", "/nonexistent/path/model.txt");
}

TEST(ModelIo, LoadRejectsGarbage) {
  const std::string path = "/tmp/subspar_model_garbage.txt";
  FILE* fp = std::fopen(path.c_str(), "w");
  ASSERT_NE(fp, nullptr);
  std::fputs("not a model\n", fp);
  std::fclose(fp);
  EXPECT_THROW(load_model(path), std::invalid_argument);
  std::remove(path.c_str());
  EXPECT_THROW(load_model("/nonexistent/path/model.txt"), std::invalid_argument);
}

class MethodSweep : public ::testing::TestWithParam<SparsifyMethod> {};

TEST_P(MethodSweep, ModelsAreSymmetricOperators) {
  CoreFixture f(irregular_layout(8, 0.6, 5));
  const SparsifiedModel model = extract_sparsified(f.solver, f.tree, {.method = GetParam()});
  Rng rng(7);
  Vector a(f.layout.n_contacts()), b(f.layout.n_contacts());
  for (auto& x : a) x = rng.normal();
  for (auto& x : b) x = rng.normal();
  EXPECT_NEAR(dot(model.apply(a), b), dot(a, model.apply(b)),
              1e-9 * norm2(a) * norm2(b));
}

INSTANTIATE_TEST_SUITE_P(Methods, MethodSweep,
                         ::testing::Values(SparsifyMethod::kWavelet, SparsifyMethod::kLowRank));

}  // namespace
}  // namespace subspar
