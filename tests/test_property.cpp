// Randomized property tests for the linalg kernels: the tiled dense
// products (matmul / matmul_tn / matmul_nt / gram_tn) against naive
// triple-loop references, and the batched CSR kernels (apply_many /
// apply_t_many) against their own single-vector contract, over fuzzed
// shapes — k = 1, non-powers-of-two, and dimensions straddling the kernel
// tile boundaries.
//
// Every run logs its seed. A failure reproduces with:
//   SUBSPAR_TEST_SEED=<seed> ./test_property
#include <gtest/gtest.h>

#include <cstdlib>
#include <cmath>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "util/rng.hpp"

namespace subspar {
namespace {

std::uint64_t test_seed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("SUBSPAR_TEST_SEED");
    const std::uint64_t s = env ? std::strtoull(env, nullptr, 10) : 20260807ULL;
    // Printed (not just recorded) so a CI log always carries the replay key.
    std::printf("[property] SUBSPAR_TEST_SEED=%llu\n", static_cast<unsigned long long>(s));
    return s;
  }();
  return seed;
}

// Shape fuzzing: small shapes, awkward primes, and dimensions straddling
// the dense kernels' internal tile sizes. k = 1 and 1-row/col cases are
// always in the pool.
std::size_t fuzz_dim(Rng& rng) {
  static const std::size_t pool[] = {1, 2, 3, 5, 7, 8, 13, 17, 31, 32, 33,
                                     47, 63, 64, 65, 96, 127, 128, 129};
  return pool[static_cast<std::size_t>(rng.uniform(0.0, 1.0) * std::size(pool)) %
              std::size(pool)];
}

Matrix random_matrix(Rng& rng, std::size_t r, std::size_t c) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  return m;
}

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k)
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += a(i, k) * b(k, j);
  return c;
}

// Tolerance scaled to the accumulation length and magnitudes involved:
// the tiled kernel reorders sums, so agreement is to rounding, not bits.
void expect_close(const Matrix& got, const Matrix& want, std::size_t inner,
                  const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  const double scale = std::max(1.0, want.max_abs());
  const double tol = 1e-13 * scale * std::sqrt(static_cast<double>(inner) + 1.0);
  for (std::size_t i = 0; i < got.rows(); ++i)
    for (std::size_t j = 0; j < got.cols(); ++j)
      ASSERT_NEAR(got(i, j), want(i, j), tol)
          << what << " at (" << i << ", " << j << "), seed " << test_seed();
}

TEST(PropertyDense, MatmulMatchesNaiveReferenceOverFuzzedShapes) {
  Rng rng(test_seed());
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t m = fuzz_dim(rng), k = fuzz_dim(rng), n = fuzz_dim(rng);
    const Matrix a = random_matrix(rng, m, k);
    const Matrix b = random_matrix(rng, k, n);
    expect_close(matmul(a, b), naive_matmul(a, b), k, "matmul");
  }
}

TEST(PropertyDense, TransposedVariantsMatchNaiveReference) {
  Rng rng(test_seed() + 1);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t m = fuzz_dim(rng), k = fuzz_dim(rng), n = fuzz_dim(rng);
    const Matrix at = random_matrix(rng, k, m);  // A' is k x m, A is m x k
    const Matrix b = random_matrix(rng, k, n);
    expect_close(matmul_tn(at, b), naive_matmul(at.transposed(), b), k, "matmul_tn");
    const Matrix a2 = random_matrix(rng, m, k);
    const Matrix bt = random_matrix(rng, n, k);
    expect_close(matmul_nt(a2, bt), naive_matmul(a2, bt.transposed()), k, "matmul_nt");
  }
}

TEST(PropertyDense, AccumulatingVariantsAddInPlace) {
  Rng rng(test_seed() + 2);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t m = fuzz_dim(rng), k = fuzz_dim(rng), n = fuzz_dim(rng);
    const Matrix a = random_matrix(rng, m, k);
    const Matrix b = random_matrix(rng, k, n);
    const Matrix c0 = random_matrix(rng, m, n);
    const double alpha = rng.uniform(-2.0, 2.0);
    Matrix c = c0;
    matmul_add(c, a, b, alpha);
    Matrix want = naive_matmul(a, b);
    want *= alpha;
    want += c0;
    expect_close(c, want, k, "matmul_add");
  }
}

TEST(PropertyDense, GramIsExactlySymmetricAndMatchesNaive) {
  Rng rng(test_seed() + 3);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m = fuzz_dim(rng), n = fuzz_dim(rng);
    const Matrix a = random_matrix(rng, m, n);
    const Matrix g = gram_tn(a);
    // Exact (bitwise) symmetry is part of the gram_tn contract.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        ASSERT_EQ(g(i, j), g(j, i)) << "gram_tn symmetry, seed " << test_seed();
    expect_close(g, naive_matmul(a.transposed(), a), m, "gram_tn");
  }
}

SparseMatrix random_sparse(Rng& rng, std::size_t r, std::size_t c, double density) {
  SparseBuilder b(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j)
      if (rng.uniform(0.0, 1.0) < density) b.add(i, j, rng.normal());
  return SparseMatrix(b);
}

TEST(PropertySparse, ApplyManyIsBitIdenticalToColumnwiseApply) {
  Rng rng(test_seed() + 4);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t r = fuzz_dim(rng), c = fuzz_dim(rng);
    const std::size_t k = trial % 5 == 0 ? 1 : fuzz_dim(rng);  // k = 1 often
    const SparseMatrix a = random_sparse(rng, r, c, 0.25);
    const Matrix x = random_matrix(rng, c, k);
    const Matrix y = a.apply_many(x);
    ASSERT_EQ(y.rows(), r);
    ASSERT_EQ(y.cols(), k);
    for (std::size_t j = 0; j < k; ++j) {
      const Vector yj = a.apply(x.col(j));
      for (std::size_t i = 0; i < r; ++i)
        ASSERT_EQ(y(i, j), yj[i]) << "apply_many col " << j << ", seed " << test_seed();
    }
  }
}

TEST(PropertySparse, ApplyTManyIsBitIdenticalToColumnwiseApplyT) {
  Rng rng(test_seed() + 5);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t r = fuzz_dim(rng), c = fuzz_dim(rng);
    const std::size_t k = trial % 5 == 0 ? 1 : fuzz_dim(rng);
    const SparseMatrix a = random_sparse(rng, r, c, 0.25);
    const Matrix x = random_matrix(rng, r, k);
    const Matrix y = a.apply_t_many(x);
    ASSERT_EQ(y.rows(), c);
    ASSERT_EQ(y.cols(), k);
    for (std::size_t j = 0; j < k; ++j) {
      const Vector yj = a.apply_t(x.col(j));
      for (std::size_t i = 0; i < c; ++i)
        ASSERT_EQ(y(i, j), yj[i]) << "apply_t_many col " << j << ", seed " << test_seed();
    }
  }
}

TEST(PropertySparse, ApplyManyMatchesDenseReference) {
  Rng rng(test_seed() + 6);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t r = fuzz_dim(rng), c = fuzz_dim(rng), k = fuzz_dim(rng);
    const SparseMatrix a = random_sparse(rng, r, c, 0.3);
    const Matrix x = random_matrix(rng, c, k);
    expect_close(a.apply_many(x), naive_matmul(a.to_dense(), x), c, "sparse apply_many");
  }
}

}  // namespace
}  // namespace subspar
