// Tests for the runtime-dispatched kernel backend (linalg/backend.hpp):
// registry/override semantics, cross-backend numerical parity, the
// batched-vs-single bit-identity invariants every backend must preserve,
// mixed-precision iterative refinement, and the golden quickstart pins
// re-run under every backend the host supports.
//
// Parity contract (backend.hpp): the scalar backend is the bit-exact
// reference; SIMD backends agree within a few ulp. Kernels that vectorize
// ACROSS outputs (SpMM over RHS columns, the DCT twiddle loops) keep each
// output's accumulation order and are bit-identical to scalar on x86 by
// the FMA contraction policy (src/CMakeLists.txt); kernels that vectorize
// WITHIN a reduction (dot, and GEMM with its deliberate contraction)
// reassociate and may differ in the last ulp of the accumulation. On a cancelling sum the
// ulp distance of the (tiny) result is the wrong yardstick for that, so
// the GEMM checks bound |ref - got| by 4 ulp of the accumulation
// magnitude max|A| * max|B| * k, falling back to plain elementwise ulp
// distance for well-conditioned entries.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "linalg/backend.hpp"
#include "linalg/iterative.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "subspar/subspar.hpp"
#include "transform/dct.hpp"
#include "util/rng.hpp"

namespace subspar {
namespace {

// Captured before main() so later set_backend calls cannot pollute it:
// this is the backend the SUBSPAR_BACKEND / CPUID resolution picked at
// process start (the CI backend matrix pins the env var and asserts on it).
const BackendKind kStartupBackend = active_backend();

// Restores the active backend on scope exit, so a failing parity test
// cannot leak a pinned backend into the remaining tests.
class BackendGuard {
 public:
  BackendGuard() : saved_(active_backend()) {}
  ~BackendGuard() { set_backend(saved_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  BackendKind saved_;
};

// Lexicographically monotone integer image of a double (negative range
// mirrored), so ulp distance is plain integer subtraction.
std::int64_t monotone_bits(double x) {
  std::int64_t i;
  std::memcpy(&i, &x, sizeof i);
  return i < 0 ? std::numeric_limits<std::int64_t>::min() - i : i;
}

std::uint64_t ulp_distance(double a, double b) {
  if (a == b) return 0;  // also covers +0 vs -0
  if (!std::isfinite(a) || !std::isfinite(b))
    return std::numeric_limits<std::uint64_t>::max();
  const std::int64_t ka = monotone_bits(a), kb = monotone_bits(b);
  return ka > kb ? static_cast<std::uint64_t>(ka) - static_cast<std::uint64_t>(kb)
                 : static_cast<std::uint64_t>(kb) - static_cast<std::uint64_t>(ka);
}

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  return m;
}

// 4-ulp agreement against the accumulation magnitude (see file comment).
void expect_close(const Matrix& ref, const Matrix& got, double scale, const std::string& what) {
  ASSERT_EQ(ref.rows(), got.rows()) << what;
  ASSERT_EQ(ref.cols(), got.cols()) << what;
  const double tol = 4.0 * std::ldexp(scale, -52);
  for (std::size_t i = 0; i < ref.rows(); ++i)
    for (std::size_t j = 0; j < ref.cols(); ++j) {
      const double r = ref(i, j), g = got(i, j);
      if (ulp_distance(r, g) <= 4) continue;
      ASSERT_LE(std::abs(r - g), tol) << what << " at (" << i << ", " << j << "): ref=" << r
                                      << " got=" << g << " ulp=" << ulp_distance(r, g);
    }
}

void expect_bitwise(const Matrix& ref, const Matrix& got, const std::string& what) {
  ASSERT_EQ(ref.rows(), got.rows()) << what;
  ASSERT_EQ(ref.cols(), got.cols()) << what;
  for (std::size_t i = 0; i < ref.rows(); ++i)
    for (std::size_t j = 0; j < ref.cols(); ++j)
      ASSERT_EQ(ref(i, j), got(i, j)) << what << " at (" << i << ", " << j << ")";
}

// Random symmetric diagonally-dominant sparse matrix (SPD), mixed-sign
// off-diagonals so accumulation-order effects would show.
SparseMatrix random_spd(std::size_t n, std::size_t extra_per_row, Rng& rng) {
  SparseBuilder b(n, n);
  std::vector<double> diag(n, 1.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.add(i, i + 1, -1.0);
    b.add(i + 1, i, -1.0);
    diag[i] += 1.0;
    diag[i + 1] += 1.0;
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t e = 0; e < extra_per_row; ++e) {
      const std::size_t j = static_cast<std::size_t>(rng.uniform(0.0, static_cast<double>(n)));
      if (j == i || j >= n) continue;
      const double v = rng.uniform(-0.5, 0.5);
      b.add(i, j, v);
      b.add(j, i, v);
      diag[i] += std::abs(v);
      diag[j] += std::abs(v);
    }
  for (std::size_t i = 0; i < n; ++i) b.add(i, i, diag[i]);
  return SparseMatrix(b);
}

// ---------------------------------------------------------------------------
// Registry and override semantics
// ---------------------------------------------------------------------------

TEST(BackendRegistry, SupportedContainsScalarAndNamesRoundTrip) {
  const std::vector<BackendKind> supported = supported_backends();
  ASSERT_FALSE(supported.empty());
  EXPECT_EQ(supported.front(), BackendKind::kScalar);
  for (BackendKind kind : supported) {
    EXPECT_EQ(parse_backend(backend_name(kind)), kind) << backend_name(kind);
  }
  // Everything supported is also compiled in.
  const std::vector<BackendKind> compiled = compiled_backends();
  for (BackendKind kind : supported)
    EXPECT_NE(std::find(compiled.begin(), compiled.end(), kind), compiled.end());
}

TEST(BackendRegistry, BogusNameRejectedListingUsableBackends) {
  try {
    parse_backend("sse9");
    FAIL() << "parse_backend accepted a bogus name";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sse9"), std::string::npos) << msg;
    EXPECT_NE(msg.find("scalar"), std::string::npos)
        << "message should list the usable backends: " << msg;
  }
  EXPECT_THROW(parse_backend(""), std::invalid_argument);
}

TEST(BackendRegistry, CompiledButUnsupportedKindsAreRejected) {
  // Kinds the binary carries but this CPU cannot run (e.g. avx512 TUs on
  // an avx2-only host) must be refused by name and by set_backend alike.
  const std::vector<BackendKind> supported = supported_backends();
  for (BackendKind kind : compiled_backends()) {
    if (std::find(supported.begin(), supported.end(), kind) != supported.end()) continue;
    EXPECT_THROW(parse_backend(backend_name(kind)), std::invalid_argument)
        << backend_name(kind);
    EXPECT_THROW(set_backend(kind), std::invalid_argument) << backend_name(kind);
  }
}

TEST(BackendRegistry, EnvOverrideHonoredAtStartup) {
  // kStartupBackend was resolved before main(): if SUBSPAR_BACKEND was set
  // (the CI backend matrix exports it), startup must have honored it;
  // otherwise it must be the best supported kind in preference order.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded test startup
  const char* env = std::getenv("SUBSPAR_BACKEND");
  if (env != nullptr && *env != '\0') {
    EXPECT_EQ(kStartupBackend, parse_backend(env));
    return;
  }
  const std::vector<BackendKind> supported = supported_backends();
  constexpr BackendKind kPreference[] = {BackendKind::kAvx512, BackendKind::kAvx2,
                                         BackendKind::kNeon, BackendKind::kScalar};
  for (BackendKind kind : kPreference) {
    if (std::find(supported.begin(), supported.end(), kind) == supported.end()) continue;
    EXPECT_EQ(kStartupBackend, kind) << "expected best supported " << backend_name(kind);
    return;
  }
  FAIL() << "supported_backends() missing scalar";
}

TEST(BackendRegistry, SetBackendSwitchesDispatch) {
  BackendGuard guard;
  for (BackendKind kind : supported_backends()) {
    set_backend(kind);
    EXPECT_EQ(active_backend(), kind) << backend_name(kind);
    EXPECT_EQ(kernel_ops().kind, kind) << backend_name(kind);
  }
}

// ---------------------------------------------------------------------------
// Cross-backend parity on fuzzed shapes
// ---------------------------------------------------------------------------

TEST(BackendParity, GemmFamilyWithin4UlpOfScalarOnFuzzedShapes) {
  BackendGuard guard;
  Rng rng(7741);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t m = 1 + static_cast<std::size_t>(rng.uniform(0.0, 48.0));
    const std::size_t k = 1 + static_cast<std::size_t>(rng.uniform(0.0, 48.0));
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(0.0, 48.0));
    const Matrix a = random_matrix(m, k, rng);        // for matmul / nt
    const Matrix b = random_matrix(k, n, rng);        // for matmul / tn
    const Matrix at = random_matrix(k, m, rng);       // for matmul_tn
    const Matrix bt = random_matrix(n, k, rng);       // for matmul_nt
    const Matrix c0 = random_matrix(m, n, rng);       // accumulate target
    const double scale = static_cast<double>(k);      // entries are in [-1, 1]

    set_backend(BackendKind::kScalar);
    const Matrix r_nn = matmul(a, b);
    const Matrix r_tn = matmul_tn(at, b);
    const Matrix r_nt = matmul_nt(a, bt);
    const Matrix r_gram = gram_tn(b);
    Matrix r_add = c0;
    matmul_add(r_add, a, b, 0.75);
    const Vector x = random_matrix(k, 1, rng).col(0);
    const Vector r_mv = matvec(a, x);

    for (BackendKind kind : supported_backends()) {
      set_backend(kind);
      const std::string tag =
          std::string(backend_name(kind)) + " trial " + std::to_string(trial);
      expect_close(r_nn, matmul(a, b), scale, "matmul " + tag);
      expect_close(r_tn, matmul_tn(at, b), scale, "matmul_tn " + tag);
      expect_close(r_nt, matmul_nt(a, bt), scale, "matmul_nt " + tag);
      expect_close(r_gram, gram_tn(b), scale, "gram_tn " + tag);
      Matrix got_add = c0;
      matmul_add(got_add, a, b, 0.75);
      expect_close(r_add, got_add, scale + 1.0, "matmul_add " + tag);
      const Vector got_mv = matvec(a, x);
      ASSERT_EQ(got_mv.size(), r_mv.size());
      for (std::size_t i = 0; i < r_mv.size(); ++i)
        EXPECT_LE(ulp_distance(r_mv[i], got_mv[i]), 4u) << "matvec " << tag << " row " << i;
    }
  }
}

TEST(BackendParity, MixedGemmAgreesAcrossBackendsAndTracksFp64) {
  BackendGuard guard;
  Rng rng(4242);
  const std::size_t m = 37, k = 53, n = 29;
  const Matrix a = random_matrix(m, k, rng);
  const Matrix at = random_matrix(k, m, rng);
  const Matrix b = random_matrix(k, n, rng);
  const double scale = static_cast<double>(k);

  set_backend(BackendKind::kScalar);
  const Matrix r_nn = matmul_mixed(a, b);
  const Matrix r_tn = matmul_tn_mixed(at, b);
  for (BackendKind kind : supported_backends()) {
    set_backend(kind);
    const std::string tag = backend_name(kind);
    expect_close(r_nn, matmul_mixed(a, b), scale, "matmul_mixed " + tag);
    expect_close(r_tn, matmul_tn_mixed(at, b), scale, "matmul_tn_mixed " + tag);
  }

  // Sanity on the mode itself: fp32 input rounding only, no fp32 summation
  // error — the mixed product stays within ~k * eps_f32 of the fp64 one.
  const Matrix fp64 = matmul(a, b);
  const double tol = static_cast<double>(k) * 1.2e-7 * 4.0;
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(r_nn(i, j), fp64(i, j), tol) << "(" << i << ", " << j << ")";
}

TEST(BackendParity, SpmmMatchesScalarOnFuzzedMatrices) {
  BackendGuard guard;
  Rng rng(993);
  for (int trial = 0; trial < 3; ++trial) {
    const std::size_t n = 40 + 37 * static_cast<std::size_t>(trial);
    const SparseMatrix a = random_spd(n, 4, rng);
    const SparseMirrorF32 mirror(a);
    const std::size_t kRhs = 1 + static_cast<std::size_t>(rng.uniform(0.0, 9.0));
    const Matrix x = random_matrix(n, kRhs, rng);

    set_backend(BackendKind::kScalar);
    const Matrix r_many = a.apply_many(x);
    const Matrix r_t_many = a.apply_t_many(x);
    const Matrix r_mirror = mirror.apply_many(x);

    for (BackendKind kind : supported_backends()) {
      set_backend(kind);
      const std::string tag =
          std::string(backend_name(kind)) + " trial " + std::to_string(trial);
      const double scale = 8.0;  // per-row accumulation: a handful of O(1) entries
      expect_close(r_many, a.apply_many(x), scale, "apply_many " + tag);
      expect_close(r_t_many, a.apply_t_many(x), scale, "apply_t_many " + tag);
      expect_close(r_mirror, mirror.apply_many(x), scale, "mirror apply_many " + tag);
#if defined(__x86_64__) || defined(__i386__)
      // On x86 the contraction policy makes the tailed kernels bit-exact
      // against scalar, not merely close (see src/CMakeLists.txt).
      expect_bitwise(r_many, a.apply_many(x), "apply_many bitwise " + tag);
      expect_bitwise(r_t_many, a.apply_t_many(x), "apply_t_many bitwise " + tag);
      expect_bitwise(r_mirror, mirror.apply_many(x), "mirror bitwise " + tag);
#endif
    }
  }
}

TEST(BackendParity, DctRoundTripUnderEveryBackend) {
  BackendGuard guard;
  Rng rng(31337);
  // 32: power-of-two Makhoul/FFT path (backend twiddle kernels);
  // 24: dense O(N^2) path (backend GEMV over the transform matrix).
  for (const std::size_t n : {std::size_t{32}, std::size_t{24}}) {
    std::vector<double> base(n * n);
    for (auto& v : base) v = rng.uniform(-1.0, 1.0);

    set_backend(BackendKind::kScalar);
    std::vector<double> ref = base;
    dct2_2d(ref, n, n);

    for (BackendKind kind : supported_backends()) {
      set_backend(kind);
      const std::string tag = std::string(backend_name(kind)) + " n=" + std::to_string(n);

      // Each output is an accumulation of n terms bounded by sqrt(2/n):
      // the dense path's dot_f64 reassociates, so measure the 4-ulp
      // agreement against that magnitude, as with GEMM.
      const double dct_tol = 4.0 * std::ldexp(std::sqrt(2.0 * static_cast<double>(n)), -52);
      std::vector<double> fwd = base;
      dct2_2d(fwd, n, n);
      for (std::size_t i = 0; i < fwd.size(); ++i) {
        if (ulp_distance(ref[i], fwd[i]) <= 4) continue;
        ASSERT_LE(std::abs(ref[i] - fwd[i]), dct_tol) << "dct2 " << tag << " i=" << i;
      }
#if defined(__x86_64__) || defined(__i386__)
      // The power-of-two path's twiddle kernels vectorize across outputs
      // (order-preserving): bit-exact against scalar on x86. The dense
      // path reduces through dot_f64, which reassociates — ulp only.
      if ((n & (n - 1)) == 0) {
        for (std::size_t i = 0; i < fwd.size(); ++i) {
          ASSERT_EQ(ref[i], fwd[i]) << "dct2 bitwise " << tag << " i=" << i;
        }
      }
#endif

      std::vector<double> back = fwd;
      dct3_2d(back, n, n);
      for (std::size_t i = 0; i < back.size(); ++i)
        EXPECT_NEAR(back[i], base[i], 1e-12) << "round-trip " << tag << " i=" << i;

      // Mixed mode reads fp32 twiddle/dense tables with fp64 accumulation:
      // the round-trip error is fp32-table-sized, far from fp32-result-sized.
      std::vector<double> mixed = base;
      dct2_2d(mixed, n, n, Precision::kMixed);
      dct3_2d(mixed, n, n, Precision::kMixed);
      for (std::size_t i = 0; i < mixed.size(); ++i)
        EXPECT_NEAR(mixed[i], base[i], 1e-5) << "mixed round-trip " << tag << " i=" << i;
    }
  }
}

TEST(BackendParity, BatchedEqualsSingleBitwiseUnderEveryBackend) {
  // The invariant the FMA contraction policy exists to protect: batched
  // entry points are bit-identical to their one-at-a-time equivalents
  // under EVERY backend (not just scalar), because a backend may not round
  // a k=1 column differently from a k=8 block.
  BackendGuard guard;
  Rng rng(555);
  const SparseMatrix a = random_spd(120, 3, rng);
  const std::size_t kRhs = 6;
  const Matrix x = random_matrix(120, kRhs, rng);
  const std::size_t n = 16;
  std::vector<double> grids(3 * n * n);
  for (auto& v : grids) v = rng.uniform(-1.0, 1.0);

  for (BackendKind kind : supported_backends()) {
    set_backend(kind);
    const std::string tag = backend_name(kind);

    const Matrix many = a.apply_many(x);
    const Matrix t_many = a.apply_t_many(x);
    for (std::size_t j = 0; j < kRhs; ++j) {
      const Vector single = a.apply(x.col(j));
      const Vector t_single = a.apply_t(x.col(j));
      for (std::size_t i = 0; i < single.size(); ++i) {
        ASSERT_EQ(many(i, j), single[i]) << "apply_many " << tag;
        ASSERT_EQ(t_many(i, j), t_single[i]) << "apply_t_many " << tag;
      }
    }

    std::vector<double> batched = grids;
    dct2_2d_many(batched, n, n, 3);
    for (std::size_t g = 0; g < 3; ++g) {
      std::vector<double> one(grids.begin() + g * n * n, grids.begin() + (g + 1) * n * n);
      dct2_2d(one, n, n);
      for (std::size_t i = 0; i < one.size(); ++i)
        ASSERT_EQ(batched[g * n * n + i], one[i]) << "dct2_2d_many " << tag;
    }
  }
}

// ---------------------------------------------------------------------------
// Mixed-precision refinement
// ---------------------------------------------------------------------------

TEST(MixedRefinement, ConvergesToTheSameResidualBoundAsFp64) {
  Rng rng(2718);
  const std::size_t n = 240, kRhs = 5;
  const SparseMatrix a = random_spd(n, 3, rng);
  const SparseMirrorF32 mirror(a);
  const Matrix b = random_matrix(n, kRhs, rng);
  IterOptions opt;
  opt.rel_tol = 1e-10;
  opt.max_iterations = 2000;
  const LinearOpMany a_hi = [&](const Matrix& v) { return a.apply_many(v); };
  const LinearOpMany a_lo = [&](const Matrix& v) { return mirror.apply_many(v); };

  BlockIterStats fp64_stats;
  const Matrix x_fp64 = pcg_block(a_hi, b, opt, &fp64_stats);
  ASSERT_TRUE(fp64_stats.converged);

  BlockIterStats mixed_stats;
  const Matrix x_mixed = pcg_block_refined(a_hi, a_lo, b, opt, &mixed_stats);
  ASSERT_TRUE(mixed_stats.converged);
  EXPECT_LE(mixed_stats.max_relative_residual, opt.rel_tol);

  // The refinement contract: the TRUE fp64 residual meets the same bound a
  // pure-fp64 run satisfies, despite every inner sweep using fp32 storage.
  const Matrix r = a.apply_many(x_mixed) - b;
  for (std::size_t j = 0; j < kRhs; ++j) {
    double rn = 0.0, bn = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      rn += r(i, j) * r(i, j);
      bn += b(i, j) * b(i, j);
    }
    EXPECT_LE(std::sqrt(rn), opt.rel_tol * std::sqrt(bn)) << "column " << j;
  }
}

TEST(MixedRefinement, PrecisionIsKeyedButBackendIsNot) {
  const SubstrateStack stack = paper_stack(40.0);
  const Layout layout = regular_grid_layout(8);
  const auto fp64 = make_solver(SolverKind::kSurface, layout, stack);
  SolverConfig mixed_cfg;
  mixed_cfg.precision = Precision::kMixed;
  const auto mixed = make_solver(SolverKind::kSurface, layout, stack, mixed_cfg);

  // kMixed legitimately changes result bits, so it must split cache keys.
  EXPECT_NE(fp64->cache_tag(), mixed->cache_tag());
  const ExtractionRequest request{.method = SparsifyMethod::kLowRank};
  EXPECT_NE(model_cache_key(layout, stack, request, fp64->cache_tag()),
            model_cache_key(layout, stack, request, mixed->cache_tag()));

  // The SIMD backend must NOT: same operator to solver tolerance, same key.
  BackendGuard guard;
  set_backend(BackendKind::kScalar);
  const std::string tag_scalar = fp64->cache_tag();
  set_backend(supported_backends().back());
  EXPECT_EQ(fp64->cache_tag(), tag_scalar);

  // And the mixed solver still solves: same operator to solver tolerance.
  Rng rng(99);
  Vector v(layout.n_contacts());
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  const Vector y_fp64 = fp64->solve(v);
  const Vector y_mixed = mixed->solve(v);
  double dn = 0.0, yn = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    dn += (y_fp64[i] - y_mixed[i]) * (y_fp64[i] - y_mixed[i]);
    yn += y_fp64[i] * y_fp64[i];
  }
  EXPECT_LE(std::sqrt(dn), 1e-6 * std::sqrt(yn));
}

// ---------------------------------------------------------------------------
// Golden quickstart pins under every backend
// ---------------------------------------------------------------------------

TEST(GoldenBackend, QuickstartPinsUnchangedUnderEveryBackend) {
  // The test_golden.cpp constants, re-run once per supported backend: the
  // discrete outputs (solve counts, sparsity patterns) must not move when
  // the kernels change ISA — that is the portability contract that lets
  // one ModelCache serve every machine.
  BackendGuard guard;
  for (BackendKind kind : supported_backends()) {
    set_backend(kind);
    SCOPED_TRACE(backend_name(kind));

    const SubstrateStack stack = paper_stack(40.0);
    const Layout layout = regular_grid_layout(16);
    const auto solver = make_solver(SolverKind::kSurface, layout, stack);
    const ExtractionRequest request{.method = SparsifyMethod::kLowRank,
                                    .threshold_sparsity_multiple = 6.0};
    const ExtractionResult ex = Extractor(*solver, layout).extract(request);
    EXPECT_EQ(ex.report.solves, 357);
    EXPECT_EQ(ex.model.gw().nnz(), 6090u);
    EXPECT_EQ(ex.model.q().nnz(), 3184u);
    EXPECT_EQ(ex.report.backend, backend_name(kind));

    ExtractionRequest rbk = request;
    rbk.lowrank.basis = RowBasisScheme::kBlockKrylov;
    const ExtractionResult ex_rbk = Extractor(*solver, layout).extract(rbk);
    EXPECT_EQ(ex_rbk.report.solves, 279);
    EXPECT_EQ(ex_rbk.report.basis_scheme, "block-krylov");
  }
}

}  // namespace
}  // namespace subspar
