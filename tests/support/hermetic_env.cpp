// Linked into every tier-1 suite EXCEPT test_fault: strips SUBSPAR_FAULT
// from the environment before main() runs, so ambient fault injection —
// e.g. the CI fault matrix exporting a seed for the whole job — cannot
// perturb suites whose assertions pin bit-exact behavior (golden solve
// counts, model bits, exact residuals). The fault harness parses its
// configuration lazily on first use, which is always after static
// initialization, so this unsetenv wins. test_fault manages the variable
// itself via setenv/fault_reset and deliberately omits this TU.
#include <cstdlib>

namespace {

[[maybe_unused]] const int kStripFaultEnv = []() {
  ::unsetenv("SUBSPAR_FAULT");
  return 0;
}();

}  // namespace
