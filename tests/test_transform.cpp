// Tests for the transform substrate: FFT vs naive DFT, fast DCT vs its
// O(N^2) reference, orthogonality/roundtrip properties, 2-D separability,
// and the fast Poisson solver against direct dense solves.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "transform/dct.hpp"
#include "transform/fft.hpp"
#include "transform/poisson.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace subspar {
namespace {

std::vector<double> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.normal();
  return x;
}

TEST(Fft, MatchesNaiveDft) {
  Rng rng(1);
  std::vector<Complex> x(32);
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  auto ref = dft_naive(x);
  auto fast = x;
  fft(fast);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(fast[k].real(), ref[k].real(), 1e-10);
    EXPECT_NEAR(fast[k].imag(), ref[k].imag(), 1e-10);
  }
}

TEST(Fft, RoundTripIdentity) {
  Rng rng(2);
  std::vector<Complex> x(64);
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  auto y = x;
  fft(y);
  ifft(y);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-12);
}

TEST(Fft, ParsevalEnergyConservation) {
  Rng rng(3);
  std::vector<Complex> x(128);
  double ex = 0.0;
  for (auto& v : x) {
    v = Complex(rng.normal(), 0.0);
    ex += std::norm(v);
  }
  auto y = x;
  fft(y);
  double ey = 0.0;
  for (const auto& v : y) ey += std::norm(v);
  EXPECT_NEAR(ey, ex * 128.0, 1e-8 * ex * 128.0);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> x(12);
  EXPECT_THROW(fft(x), std::invalid_argument);
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<Complex> x(16, Complex(0, 0));
  x[0] = Complex(1, 0);
  fft(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-13);
    EXPECT_NEAR(v.imag(), 0.0, 1e-13);
  }
}

TEST(Dct, FastMatchesNaivePowerOfTwo) {
  const auto x = random_signal(64, 4);
  const auto fast = dct2(x);
  const auto ref = dct2_naive(x);
  for (std::size_t k = 0; k < x.size(); ++k) EXPECT_NEAR(fast[k], ref[k], 1e-10);
}

TEST(Dct, Dct3FastMatchesNaive) {
  const auto y = random_signal(32, 5);
  const auto fast = dct3(y);
  const auto ref = dct3_naive(y);
  for (std::size_t k = 0; k < y.size(); ++k) EXPECT_NEAR(fast[k], ref[k], 1e-10);
}

TEST(Dct, RoundTripIdentity) {
  const auto x = random_signal(128, 6);
  const auto y = dct3(dct2(x));
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-11);
}

TEST(Dct, OrthonormalParseval) {
  const auto x = random_signal(64, 7);
  const auto y = dct2(x);
  double ex = 0.0, ey = 0.0;
  for (double v : x) ex += v * v;
  for (double v : y) ey += v * v;
  EXPECT_NEAR(ex, ey, 1e-10 * ex);
}

TEST(Dct, ConstantMapsToDcModeOnly) {
  std::vector<double> x(16, 3.0);
  const auto y = dct2(x);
  EXPECT_NEAR(y[0], 3.0 * std::sqrt(16.0), 1e-12);
  for (std::size_t k = 1; k < y.size(); ++k) EXPECT_NEAR(y[k], 0.0, 1e-12);
}

TEST(Dct, NonPowerOfTwoFallsBackToNaive) {
  const auto x = random_signal(12, 8);
  const auto y = dct3(dct2(x));
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-11);
}

TEST(Dct, LinearityProperty) {
  const auto x = random_signal(32, 9);
  const auto y = random_signal(32, 10);
  std::vector<double> z(32);
  for (std::size_t i = 0; i < 32; ++i) z[i] = 2.0 * x[i] - 3.0 * y[i];
  const auto tx = dct2(x), ty = dct2(y), tz = dct2(z);
  for (std::size_t k = 0; k < 32; ++k) EXPECT_NEAR(tz[k], 2.0 * tx[k] - 3.0 * ty[k], 1e-11);
}

TEST(Dct2d, RoundTripIdentity) {
  auto a = random_signal(16 * 8, 11);
  const auto orig = a;
  dct2_2d(a, 16, 8);
  dct3_2d(a, 16, 8);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], orig[i], 1e-11);
}

TEST(Dct2d, SeparableModeIsEigenvector) {
  // cos(pi*2(i+1/2)/8)*cos(pi*3(j+1/2)/8) must transform to a single
  // coefficient at (2,3).
  const std::size_t n = 8;
  std::vector<double> a(n * n);
  constexpr double kPi = 3.14159265358979323846;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a[i * n + j] = std::cos(kPi * 2.0 * (i + 0.5) / n) * std::cos(kPi * 3.0 * (j + 0.5) / n);
  dct2_2d(a, n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == 2 && j == 3) {
        EXPECT_NEAR(a[i * n + j], n / 2.0, 1e-10);  // (sqrt(2/n)*n/2)^2 scaling
      } else {
        EXPECT_NEAR(a[i * n + j], 0.0, 1e-10);
      }
    }
}

class DctSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(DctSizeSweep, RoundTripAcrossSizes) {
  const auto n = static_cast<std::size_t>(GetParam());
  const auto x = random_signal(n, 20 + n);
  const auto y = dct3(dct2(x));
  for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(y[i], x[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DctSizeSweep, ::testing::Values(1, 2, 3, 4, 7, 8, 16, 31, 64, 256));

// ------------------------------------------------------------ fast Poisson

PoissonGrid small_grid(double top_g, double bottom_g) {
  PoissonGrid g;
  g.nx = 4;
  g.ny = 8;
  g.nz = 5;
  g.lateral_g = {2.0, 2.0, 1.0, 1.0, 1.0};       // two-layer profile
  g.vertical_g = {2.0, std::sqrt(2.0), 1.0, 1.0};  // boundary resistor in series
  g.top_g = top_g;
  g.bottom_g = bottom_g;
  return g;
}

TEST(FastPoisson, SolveInvertsApply) {
  const FastPoisson3D fp(small_grid(0.7, 0.0));
  Rng rng(12);
  Vector b(fp.grid().size());
  for (auto& v : b) v = rng.normal();
  const Vector x = fp.solve(b);
  EXPECT_LT(norm2(fp.apply(x) - b), 1e-10 * norm2(b));
}

TEST(FastPoisson, MatchesDenseCholesky) {
  const FastPoisson3D fp(small_grid(0.3, 1.5));
  const std::size_t n = fp.grid().size();
  // Build the dense operator column by column via apply().
  Matrix a(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    Vector e(n);
    e[j] = 1.0;
    a.set_col(j, fp.apply(e));
  }
  const Cholesky chol(a);
  Rng rng(13);
  Vector b(n);
  for (auto& v : b) v = rng.normal();
  EXPECT_LT(norm2(fp.solve(b) - chol.solve(b)), 1e-9 * norm2(b));
}

TEST(FastPoisson, FloatingGridHandlesConstantMode) {
  const FastPoisson3D fp(small_grid(0.0, 0.0));  // no anchors: singular mode
  Rng rng(14);
  Vector b(fp.grid().size());
  for (auto& v : b) v = rng.normal();
  // Remove the mean so b is in the range of the singular operator.
  double mean = 0.0;
  for (double v : b) mean += v;
  mean /= static_cast<double>(b.size());
  for (auto& v : b) v -= mean;
  const Vector x = fp.solve(b);
  const Vector r = fp.apply(x) - b;
  EXPECT_LT(norm2(r), 1e-6 * norm2(b));
}

TEST(FastPoisson, ApplyIsSymmetric) {
  const FastPoisson3D fp(small_grid(0.4, 0.2));
  Rng rng(15);
  Vector x(fp.grid().size()), y(fp.grid().size());
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  EXPECT_NEAR(dot(fp.apply(x), y), dot(x, fp.apply(y)), 1e-10);
}

TEST(FastPoisson, RejectsNonPowerOfTwoLateralDims) {
  PoissonGrid g = small_grid(0.1, 0.0);
  g.nx = 6;
  EXPECT_THROW(FastPoisson3D{g}, std::invalid_argument);
}

class PoissonTopG : public ::testing::TestWithParam<double> {};

TEST_P(PoissonTopG, SolveExactAcrossTopCouplings) {
  PoissonGrid g = small_grid(GetParam(), 0.0);
  const FastPoisson3D fp(g);
  Rng rng(16);
  Vector b(fp.grid().size());
  for (auto& v : b) v = rng.normal();
  const Vector x = fp.solve(b);
  EXPECT_LT(norm2(fp.apply(x) - b), 1e-9 * norm2(b));
}

INSTANTIATE_TEST_SUITE_P(TopCouplings, PoissonTopG, ::testing::Values(0.05, 0.25, 1.0, 4.0));

}  // namespace
}  // namespace subspar

namespace subspar {
namespace {

TEST(Dct2d, RectangularGridRoundTrip) {
  auto a = random_signal(32 * 8, 30);
  const auto orig = a;
  dct2_2d(a, 8, 32);  // wide
  dct3_2d(a, 8, 32);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_NEAR(a[i], orig[i], 1e-11);
}

TEST(Dct, DeltaSpreadsToAllModes) {
  std::vector<double> x(16, 0.0);
  x[0] = 1.0;
  const auto y = dct2(x);
  for (std::size_t k = 0; k < y.size(); ++k) ASSERT_NE(y[k], 0.0);
}

TEST(FastPoisson, SingleLayerNzOne) {
  PoissonGrid g;
  g.nx = 8;
  g.ny = 8;
  g.nz = 1;
  g.lateral_g = {1.5};
  g.top_g = 0.7;
  const FastPoisson3D fp(g);
  Rng rng(31);
  Vector b(fp.grid().size());
  for (auto& v : b) v = rng.normal();
  const Vector x = fp.solve(b);
  EXPECT_LT(norm2(fp.apply(x) - b), 1e-10 * norm2(b));
}

// ------------------------------------------------ plans and batched DCTs

TEST(DctPlan, PlannedDct2MatchesNaive) {
  // 1e-13-level agreement; the O(N^2) reference itself accumulates roundoff
  // ~ sqrt(N) * eps, so the tolerance scales with sqrt(N).
  for (const std::size_t n : {2u, 8u, 64u, 256u}) {
    auto x = random_signal(n, 40 + n);
    const auto ref = dct2_naive(x);
    dct_plan(n).dct2(x.data());
    const double tol = 2e-14 * std::sqrt(static_cast<double>(n));
    for (std::size_t k = 0; k < n; ++k) ASSERT_NEAR(x[k], ref[k], tol) << "n=" << n;
  }
}

TEST(DctPlan, PlannedDct3MatchesNaive) {
  for (const std::size_t n : {2u, 8u, 64u, 256u}) {
    auto y = random_signal(n, 50 + n);
    const auto ref = dct3_naive(y);
    dct_plan(n).dct3(y.data());
    const double tol = 2e-14 * std::sqrt(static_cast<double>(n));
    for (std::size_t k = 0; k < n; ++k) ASSERT_NEAR(y[k], ref[k], tol) << "n=" << n;
  }
}

TEST(DctPlan, NonPowerOfTwoDenseTableMatchesNaive) {
  for (const std::size_t n : {1u, 3u, 12u, 31u}) {
    auto x = random_signal(n, 60 + n);
    const auto ref = dct2_naive(x);
    dct_plan(n).dct2(x.data());
    for (std::size_t k = 0; k < n; ++k) ASSERT_NEAR(x[k], ref[k], 1e-13) << "n=" << n;
  }
}

TEST(DctPlan, FreeFunctionsRouteThroughPlan) {
  const auto x = random_signal(128, 70);
  auto planned = x;
  dct_plan(x.size()).dct2(planned.data());
  const auto free_fn = dct2(x);
  for (std::size_t k = 0; k < x.size(); ++k) ASSERT_EQ(planned[k], free_fn[k]);
}

TEST(Dct2dMany, MatchesSingleGridTransformsBitExactly) {
  const std::size_t rows = 16, cols = 8, batch = 5;
  auto stacked = random_signal(batch * rows * cols, 71);
  std::vector<std::vector<double>> singles(batch);
  for (std::size_t b = 0; b < batch; ++b)
    singles[b].assign(stacked.begin() + static_cast<std::ptrdiff_t>(b * rows * cols),
                      stacked.begin() + static_cast<std::ptrdiff_t>((b + 1) * rows * cols));
  dct2_2d_many(stacked, rows, cols, batch);
  for (std::size_t b = 0; b < batch; ++b) {
    dct2_2d(singles[b], rows, cols);
    for (std::size_t i = 0; i < rows * cols; ++i)
      ASSERT_EQ(stacked[b * rows * cols + i], singles[b][i]) << "grid " << b;
  }
}

TEST(Dct2dMany, RoundTripIdentity) {
  const std::size_t rows = 8, cols = 32, batch = 3;
  auto a = random_signal(batch * rows * cols, 72);
  const auto orig = a;
  dct2_2d_many(a, rows, cols, batch);
  dct3_2d_many(a, rows, cols, batch);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_NEAR(a[i], orig[i], 1e-12);
}

TEST(Dct2dMany, BitIdenticalAcrossThreadCounts) {
  const std::size_t rows = 32, cols = 32, batch = 8;
  const auto orig = random_signal(batch * rows * cols, 73);
  set_thread_count(1);
  auto one = orig;
  dct2_2d_many(one, rows, cols, batch);
  set_thread_count(4);
  auto four = orig;
  dct2_2d_many(four, rows, cols, batch);
  set_thread_count(1);
  for (std::size_t i = 0; i < orig.size(); ++i) ASSERT_EQ(one[i], four[i]);
}

TEST(FftPlan, ForwardMatchesNaiveDft) {
  Rng rng(74);
  std::vector<Complex> x(64);
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  const auto ref = dft_naive(x);
  fft_plan(x.size()).forward(x.data());
  for (std::size_t k = 0; k < x.size(); ++k)
    ASSERT_LT(std::abs(x[k] - ref[k]), 1e-10);
}

TEST(Fft, LinearityProperty) {
  Rng rng(32);
  std::vector<Complex> x(64), y(64), z(64);
  for (std::size_t i = 0; i < 64; ++i) {
    x[i] = Complex(rng.normal(), rng.normal());
    y[i] = Complex(rng.normal(), rng.normal());
    z[i] = 2.0 * x[i] - 0.5 * y[i];
  }
  fft(x);
  fft(y);
  fft(z);
  for (std::size_t k = 0; k < 64; ++k)
    ASSERT_LT(std::abs(z[k] - (2.0 * x[k] - 0.5 * y[k])), 1e-10);
}

}  // namespace
}  // namespace subspar
