// Tests for the wavelet sparsifier: orthogonality and vanishing moments of
// the multilevel basis, exactness of the reference transform, fidelity of
// the combine-solves extraction, thresholding, and end-to-end accuracy.
#include <gtest/gtest.h>

#include <cmath>

#include "core/report.hpp"
#include "geometry/layout_gen.hpp"
#include "geometry/moments.hpp"
#include "substrate/eigen_solver.hpp"
#include "substrate/fd_solver.hpp"
#include "substrate/solver.hpp"
#include "wavelet/basis.hpp"
#include "wavelet/extract.hpp"
#include "wavelet/pattern.hpp"

namespace subspar {
namespace {

SubstrateStack test_stack() { return paper_stack(40.0, 0.5, 1.0); }

struct Fixture {
  Layout layout;
  QuadTree tree;
  WaveletBasis basis;
  explicit Fixture(Layout l, int p = 2) : layout(std::move(l)), tree(layout), basis(tree, p) {}
};

TEST(WaveletBasis, QIsOrthogonal) {
  Fixture f(regular_grid_layout(8));
  const Matrix qd = f.basis.q().to_dense();
  const Matrix qtq = matmul_tn(qd, qd);
  EXPECT_LT((qtq - Matrix::identity(f.layout.n_contacts())).max_abs(), 1e-10);
}

TEST(WaveletBasis, QIsOrthogonalOnIrregularLayout) {
  Fixture f(irregular_layout(8, 0.55, 11));
  const Matrix qd = f.basis.q().to_dense();
  EXPECT_LT((matmul_tn(qd, qd) - Matrix::identity(f.layout.n_contacts())).max_abs(), 1e-10);
}

TEST(WaveletBasis, ColumnCountEqualsContacts) {
  Fixture f(alternating_size_layout(8));
  EXPECT_EQ(f.basis.columns().size(), f.layout.n_contacts());
  EXPECT_EQ(f.basis.q().rows(), f.layout.n_contacts());
  EXPECT_EQ(f.basis.q().cols(), f.layout.n_contacts());
}

TEST(WaveletBasis, WColumnsHaveVanishingMoments) {
  Fixture f(regular_grid_layout(8));
  const int p = f.basis.p();
  for (std::size_t j = 0; j < f.basis.columns().size(); ++j) {
    const WaveletColumn& col = f.basis.columns()[j];
    if (!col.vanishing) continue;
    // Moments of the associated voltage function over the square's contacts
    // about the square center must vanish up to order p (eq. 3.14).
    const SquareBasis& sb = f.basis.square_basis(col.square);
    const auto [cx, cy] = f.tree.center(col.square);
    const Matrix ms = moment_matrix(f.layout, sb.contacts, cx, cy, p);
    Vector coeffs(sb.contacts.size());
    for (std::size_t i = 0; i < sb.contacts.size(); ++i) coeffs[i] = sb.w(i, col.m);
    const Vector mom = matvec(ms, coeffs);
    EXPECT_LT(norm_inf(mom), 1e-8) << "column " << j;
  }
}

TEST(WaveletBasis, VCountsBoundedByMomentCount) {
  Fixture f(alternating_size_layout(8));
  for (int lev = 0; lev <= f.tree.max_level(); ++lev) {
    for (const SquareId& s : f.tree.squares(lev)) {
      EXPECT_LE(f.basis.square_basis(s).v.cols(), moment_count(2));
    }
  }
}

TEST(WaveletBasis, ColumnVectorMatchesSparseQ) {
  Fixture f(regular_grid_layout(8));
  const Matrix qd = f.basis.q().to_dense();
  for (const std::size_t j : {std::size_t{0}, std::size_t{10}, f.layout.n_contacts() - 1}) {
    const Vector col = f.basis.column_vector(j);
    for (std::size_t i = 0; i < col.size(); ++i) EXPECT_DOUBLE_EQ(col[i], qd(i, j));
  }
}

TEST(WaveletBasis, ExactReconstructionWithoutDropping) {
  // Q orthogonal implies Q (Q' G Q) Q' == G exactly (no pattern, no
  // threshold) — the sanity identity behind eq. 3.1/3.2.
  Fixture f(regular_grid_layout(4));
  const SurfaceSolver solver(f.layout, test_stack());
  const Matrix g = extract_dense(solver);
  const Matrix gw = transform_congruence(f.basis.q(), g);
  const SparseMatrix gw_sparse = SparseMatrix::from_dense(gw);
  const ErrorStats err = reconstruction_error(f.basis.q(), gw_sparse, g);
  EXPECT_LT(err.max_rel_error, 1e-7);
}

TEST(WaveletBasis, TransformedMatrixConcentratesNearPattern) {
  // Energy outside the conservative pattern must be a small fraction of the
  // total (that is the entire premise of §3.5).
  Fixture f(regular_grid_layout(8));
  const SurfaceSolver solver(f.layout, test_stack());
  const Matrix g = extract_dense(solver);
  const Matrix gw = transform_congruence(f.basis.q(), g);
  const WaveletPattern pattern(f.basis);
  double in2 = 0.0, out2 = 0.0;
  for (std::size_t i = 0; i < gw.rows(); ++i)
    for (std::size_t j = 0; j < gw.cols(); ++j)
      (pattern.allowed(i, j) ? in2 : out2) += gw(i, j) * gw(i, j);
  EXPECT_LT(out2, 1e-4 * in2);
}

TEST(WaveletPattern, RootRowsAlwaysAllowed) {
  Fixture f(regular_grid_layout(8));
  const WaveletPattern pattern(f.basis);
  const std::size_t root = f.basis.root_columns().front();
  for (std::size_t j = 0; j < f.basis.columns().size(); j += 37)
    EXPECT_TRUE(pattern.allowed(root, j));
}

TEST(WaveletPattern, SymmetricAllowedRelation) {
  Fixture f(irregular_layout(8, 0.6, 3));
  const WaveletPattern pattern(f.basis);
  const std::size_t n = f.basis.columns().size();
  for (std::size_t i = 0; i < n; i += 7)
    for (std::size_t j = 0; j < n; j += 11) EXPECT_EQ(pattern.allowed(i, j), pattern.allowed(j, i));
}

TEST(Threshold, KeepsLargestEntriesSymmetrically) {
  Matrix a(4, 4);
  a(0, 1) = a(1, 0) = 5.0;
  a(2, 3) = a(3, 2) = 0.1;
  a(0, 0) = 10.0;
  const SparseMatrix sp = SparseMatrix::from_dense(a);
  const SparseMatrix t = threshold_to_nnz(sp, 3);
  EXPECT_EQ(t.nnz(), 3u);
  const Matrix td = t.to_dense();
  EXPECT_DOUBLE_EQ(td(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(td(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(td(2, 3), 0.0);
  EXPECT_DOUBLE_EQ(td(3, 2), 0.0);
}

TEST(Threshold, NoOpWhenAlreadySparseEnough) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  const SparseMatrix sp = SparseMatrix::from_dense(a);
  EXPECT_EQ(threshold_to_nnz(sp, 5).nnz(), 1u);
}

// ------------------------------------------------- extraction end-to-end

TEST(WaveletExtract, CombinedMatchesReferenceOnKeptEntries) {
  Fixture f(regular_grid_layout(4));
  const SurfaceSolver solver(f.layout, test_stack());
  const WaveletExtraction ref = wavelet_extract_reference(solver, f.basis);
  const WaveletExtraction fast = wavelet_extract_combined(solver, f.basis);
  // Same pattern, except that a pattern entry whose true magnitude is at
  // rounding level can cancel to exactly 0.0 in the dense reference and be
  // dropped by the mask — which side of zero it lands on is rounding luck,
  // not signal. Any pattern mismatch must be numerically negligible.
  const Matrix rd = ref.gws.to_dense();
  const Matrix fd = fast.gws.to_dense();
  for (std::size_t i = 0; i < rd.rows(); ++i) {
    for (std::size_t j = 0; j < rd.cols(); ++j) {
      if ((rd(i, j) == 0.0) != (fd(i, j) == 0.0)) {
        EXPECT_LT(std::max(std::abs(rd(i, j)), std::abs(fd(i, j))), 1e-10 * rd.max_abs())
            << i << "," << j;
      }
    }
  }
  // Entries agree to the accuracy of the well-separated assumption: the
  // contamination from 3-apart squares is small relative to the largest
  // entries.
  EXPECT_LT((rd - fd).max_abs(), 2e-3 * rd.max_abs());
}

TEST(WaveletExtract, CombinedUsesFarFewerSolves) {
  // Solve reduction kicks in once there are enough levels (n = 256 here;
  // the reduction factor grows with n, cf. Tables 4.1/4.3).
  Fixture f(regular_grid_layout(16));
  const SurfaceSolver solver(f.layout, test_stack());
  const WaveletExtraction fast = wavelet_extract_combined(solver, f.basis);
  EXPECT_LT(fast.solves, static_cast<long>(f.layout.n_contacts()) * 3 / 4);
}

TEST(WaveletExtract, GwsIsSymmetric) {
  Fixture f(regular_grid_layout(4));
  const SurfaceSolver solver(f.layout, test_stack());
  const WaveletExtraction fast = wavelet_extract_combined(solver, f.basis);
  const Matrix d = fast.gws.to_dense();
  EXPECT_LT((d - d.transposed()).max_abs(), 1e-12 * d.max_abs());
}

TEST(WaveletExtract, AccurateReconstructionOnRegularGrid) {
  Fixture f(regular_grid_layout(16));
  const SurfaceSolver solver(f.layout, test_stack());
  const Matrix g = extract_dense(solver);
  const WaveletExtraction fast = wavelet_extract_combined(solver, f.basis);
  const ErrorStats err = reconstruction_error(f.basis.q(), fast.gws, g);
  // Paper Table 3.1 example 1a reports 0.2% max relative error at n = 1024;
  // n = 256 measures ~0.1% here.
  EXPECT_LT(err.max_rel_error, 0.01);
  EXPECT_GT(fast.gws.sparsity_factor(), 1.25);
}

TEST(WaveletExtract, ThresholdingTradesAccuracyForSparsity) {
  Fixture f(regular_grid_layout(8));
  const SurfaceSolver solver(f.layout, test_stack());
  const Matrix g = extract_dense(solver);
  const WaveletExtraction fast = wavelet_extract_combined(solver, f.basis);
  const SparseMatrix gwt = threshold_to_nnz(fast.gws, fast.gws.nnz() / 6);
  EXPECT_GT(gwt.sparsity_factor(), 5.0 * fast.gws.sparsity_factor());
  const ErrorStats full = reconstruction_error(f.basis.q(), fast.gws, g);
  const ErrorStats thr = reconstruction_error(f.basis.q(), gwt, g);
  EXPECT_LE(full.frac_above_10pct, thr.frac_above_10pct + 1e-12);
  // Thresholded form is still far better than nothing: most entries fine.
  EXPECT_LT(thr.frac_above_10pct, 0.30);
}

TEST(WaveletExtract, BeatsDirectThresholdingOfG) {
  // The headline claim of Chapter 3: thresholding G_w is much more accurate
  // than thresholding G at the same sparsity.
  Fixture f(regular_grid_layout(8));
  const SurfaceSolver solver(f.layout, test_stack());
  const Matrix g = extract_dense(solver);
  const WaveletExtraction fast = wavelet_extract_combined(solver, f.basis);
  const std::size_t target = fast.gws.nnz() / 6;
  const SparseMatrix gwt = threshold_to_nnz(fast.gws, target);
  const ErrorStats wav = reconstruction_error(f.basis.q(), gwt, g);
  const double keep = static_cast<double>(gwt.nnz()) /
                      (static_cast<double>(g.rows()) * static_cast<double>(g.cols()));
  const ErrorStats naive = direct_threshold_error(g, keep);
  EXPECT_LT(wav.frac_above_10pct, naive.frac_above_10pct);
}

TEST(WaveletExtract, StrugglesOnAlternatingSizes) {
  // The motivating failure for Chapter 4 (Table 3.1 example 3): mixed
  // contact sizes break the geometric moment construction: accuracy is much
  // worse than on the same-size grid. Measured at n = 64: on the 4x4 grid
  // every square is local to every other, so the combined extraction is
  // near-exact there and the comparison would only see solver noise.
  Fixture reg(regular_grid_layout(8));
  Fixture alt(alternating_size_layout(8));
  const SurfaceSolver sreg(reg.layout, test_stack());
  const SurfaceSolver salt(alt.layout, test_stack());
  const Matrix greg = extract_dense(sreg);
  const Matrix galt = extract_dense(salt);
  const ErrorStats ereg = reconstruction_error(
      reg.basis.q(), wavelet_extract_combined(sreg, reg.basis).gws, greg);
  const ErrorStats ealt = reconstruction_error(
      alt.basis.q(), wavelet_extract_combined(salt, alt.basis).gws, galt);
  EXPECT_GT(ealt.max_rel_error, 3.0 * ereg.max_rel_error);
}


TEST(WaveletExtract, BlackBoxGenericityWithWelledFdSolver) {
  // The paper's portability claim (§1.3): solvers with realistic features
  // such as surface indentations plug in "with no modifications to our
  // algorithms". Sparsify through an FD solver with an etched trench.
  Fixture f(regular_grid_layout(4));
  FdSolverOptions opt{.grid_h = 2.0, .rel_tol = 1e-8};
  opt.wells.push_back({14.0, 0.0, 4.0, 32.0, 4.0});
  const SubstrateStack st({{4.0, 1.0}, {4.0, 10.0}}, Backplane::kGrounded);
  const FdSolver solver(f.layout, st, opt);
  const Matrix g = extract_dense(solver);
  const WaveletExtraction fast = wavelet_extract_combined(solver, f.basis);
  const ErrorStats err = reconstruction_error(f.basis.q(), fast.gws, g);
  EXPECT_LT(err.frac_above_10pct, 0.15);
}

class MomentOrderEffect : public ::testing::TestWithParam<int> {};

TEST_P(MomentOrderEffect, BasisOrthogonalForAllOrders) {
  const int p = GetParam();
  Layout l = regular_grid_layout(4);
  const QuadTree tree(l);
  const WaveletBasis basis(tree, p);
  const Matrix qd = basis.q().to_dense();
  EXPECT_LT((matmul_tn(qd, qd) - Matrix::identity(l.n_contacts())).max_abs(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Orders, MomentOrderEffect, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace subspar
