// The fault-injection suite: proves every recovery path of the
// fault-tolerance layer actually runs and recovers.
//
//  - the SUBSPAR_FAULT schedule is deterministic, site-maskable, replayable;
//  - robust_pcg_block walks its whole chain (verify -> restarts -> direct)
//    and throws the typed error only when everything is exhausted;
//  - a truncated / bit-flipped / torn cache file is quarantined and
//    transparently re-extracted to the identical model, never thrown;
//  - with solver faults armed, an end-to-end extraction completes within the
//    deterministic route's error bound, reports its fallbacks, and replays
//    bit-identically for a fixed seed.
//
// This suite deliberately does NOT link tests/support/hermetic_env.cpp: it
// owns SUBSPAR_FAULT via setenv/unsetenv + fault_reset() per test.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/robust.hpp"
#include "subspar/subspar.hpp"
#include "util/fault.hpp"

namespace subspar {
namespace {

namespace fs = std::filesystem;

class FaultEnv : public ::testing::Test {
 protected:
  static void arm(const std::string& spec) {
    ::setenv("SUBSPAR_FAULT", spec.c_str(), 1);
    fault_reset();
  }
  static void disarm() {
    ::unsetenv("SUBSPAR_FAULT");
    fault_reset();
  }
  void SetUp() override { disarm(); }
  void TearDown() override { disarm(); }
};

// ------------------------------------------------------------ the schedule

TEST_F(FaultEnv, DisarmedHarnessIsInert) {
  EXPECT_FALSE(fault_injection_enabled());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(fault_fire(FaultSite::kSolverApply));
  const FaultCounts c = fault_counts();
  EXPECT_EQ(c.invocations[0], 1000u);
  EXPECT_EQ(c.fired[0], 0u);
}

TEST_F(FaultEnv, ScheduleReplaysBitIdenticallyForAFixedSeed) {
  const auto run = [](const std::string& spec) {
    FaultEnv::arm(spec);
    std::vector<bool> fires;
    fires.reserve(400);
    for (int i = 0; i < 400; ++i) fires.push_back(fault_fire(FaultSite::kSolverApply));
    return fires;
  };
  const auto a1 = run("42:0.25:0:a");
  const auto a2 = run("42:0.25:0:a");
  const auto b = run("43:0.25:0:a");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_GT(fault_fired(FaultSite::kSolverApply), 0u);  // from the last run
}

TEST_F(FaultEnv, SiteMaskRestrictsFiring) {
  arm("7:1:0:w");  // rate 1, cache-write only
  EXPECT_TRUE(fault_injection_enabled());
  EXPECT_TRUE(fault_fire(FaultSite::kCacheWrite));
  EXPECT_FALSE(fault_fire(FaultSite::kSolverApply));
  EXPECT_FALSE(fault_fire(FaultSite::kSolverSolve));
  EXPECT_FALSE(fault_fire(FaultSite::kCacheRead));
  EXPECT_FALSE(fault_fire(FaultSite::kIo));
}

TEST_F(FaultEnv, CooldownSuppressesASiteAfterItFires) {
  arm("7:1:2:a");  // rate 1, cooldown 2
  int fired = 0, last = -10;
  for (int i = 0; i < 9; ++i) {
    if (fault_fire(FaultSite::kSolverApply)) {
      EXPECT_GE(i - last, 3) << "fired again inside the cooldown window";
      last = i;
      ++fired;
    }
  }
  EXPECT_EQ(fired, 3);  // every 3rd invocation at rate 1
}

// ----------------------------------------------------- robust_pcg_block

// A small well-conditioned SPD test matrix.
Matrix spd_matrix(std::size_t n) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 4.0 + static_cast<double>(i);
    if (i + 1 < n) {
      a(i, i + 1) = -1.0;
      a(i + 1, i) = -1.0;
    }
  }
  return a;
}

Matrix rhs_matrix(std::size_t n, std::size_t k) {
  Rng rng(77);
  Matrix b(n, k);
  for (std::size_t j = 0; j < k; ++j)
    for (std::size_t i = 0; i < n; ++i) b(i, j) = rng.normal();
  return b;
}

TEST(RobustPcg, HappyPathIsBitIdenticalToPcgBlock) {
  const std::size_t n = 12, k = 3;
  const Matrix a = spd_matrix(n);
  const Matrix b = rhs_matrix(n, k);
  const LinearOpMany op = [&](const Matrix& x) { return matmul(a, x); };
  const IterOptions iter{.rel_tol = 1e-10, .max_iterations = 200};
  BlockIterStats stats;
  const Matrix plain = pcg_block(op, b, iter, &stats);
  ASSERT_TRUE(stats.converged);
  RobustSolveReport rep;
  const Matrix robust = robust_pcg_block(op, b, {.iter = iter}, &rep);
  EXPECT_TRUE(rep.clean);
  EXPECT_EQ(rep.restarts, 0u);
  EXPECT_EQ((robust - plain).max_abs(), 0.0);
}

TEST(RobustPcg, ExhaustedChainThrowsTypedError) {
  const std::size_t n = 12, k = 2;
  const Matrix a = spd_matrix(n);
  const Matrix b = rhs_matrix(n, k);
  const LinearOpMany op = [&](const Matrix& x) { return matmul(a, x); };
  // One iteration cannot reach 1e-12 and there is no direct fallback.
  const RobustSolveOptions opt{.iter = {.rel_tol = 1e-12, .max_iterations = 1},
                               .max_restarts = 2,
                               .accept_factor = 1.0};
  RobustSolveReport rep;
  EXPECT_THROW(robust_pcg_block(op, b, opt, &rep), SolverConvergenceError);
  EXPECT_FALSE(rep.clean);
  EXPECT_GT(rep.max_iteration_hits, 0u);
  EXPECT_EQ(rep.restarts, 2u);
}

TEST(RobustPcg, DirectFallbackRecoversWhatIterationCannot) {
  const std::size_t n = 12, k = 2;
  const Matrix a = spd_matrix(n);
  const Matrix b = rhs_matrix(n, k);
  const LinearOpMany op = [&](const Matrix& x) { return matmul(a, x); };
  const Cholesky chol(a);
  const DirectSolveFn direct = [&](const Matrix& rhs) { return chol.solve(rhs); };
  const RobustSolveOptions opt{.iter = {.rel_tol = 1e-12, .max_iterations = 1},
                               .max_restarts = 1};
  RobustSolveReport rep;
  const Matrix x = robust_pcg_block(op, b, opt, &rep, nullptr, nullptr, direct);
  EXPECT_EQ(rep.direct_columns, k);
  EXPECT_FALSE(rep.clean);
  EXPECT_LT((matmul(a, x) - b).max_abs() / b.max_abs(), 1e-8);
}

TEST(RobustPcg, TransientGarbageIsDetectedAndRetried) {
  const std::size_t n = 12, k = 2;
  const Matrix a = spd_matrix(n);
  const Matrix b = rhs_matrix(n, k);
  // The first operator application returns NaN garbage (poisoning attempt
  // 0's Krylov recurrence); every later application is healthy. The chain
  // must detect the garbage at verification and recover via a restart.
  int calls = 0;
  const LinearOpMany op = [&](const Matrix& x) {
    Matrix y = matmul(a, x);
    if (++calls == 1)
      for (std::size_t j = 0; j < y.cols(); ++j) y(0, j) = std::nan("");
    return y;
  };
  const RobustSolveOptions opt{.iter = {.rel_tol = 1e-10, .max_iterations = 200}};
  RobustSolveReport rep;
  const Matrix x = robust_pcg_block(op, b, opt, &rep);
  EXPECT_FALSE(rep.clean);
  EXPECT_GE(rep.restarts + rep.nonfinite_events, 1u);
  EXPECT_LT((matmul(a, x) - b).max_abs() / b.max_abs(), 1e-8);
}

// -------------------------------------------------- cache corruption paths

// A small extraction rig (cheap: 64 contacts, surface solver).
struct Rig {
  SubstrateStack stack = paper_stack(40.0);
  Layout layout = regular_grid_layout(8);
  std::unique_ptr<SubstrateSolver> solver = make_solver(SolverKind::kSurface, layout, stack);
  ExtractionRequest request{.method = SparsifyMethod::kLowRank,
                            .threshold_sparsity_multiple = 6.0};
};

std::string fresh_dir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir.string();
}

std::string the_model_file(const std::string& dir) {
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string p = e.path().string();
    if (p.size() > 4 && p.substr(p.size() - 4) == ".txt") return p;
  }
  ADD_FAILURE() << "no persisted model file in " << dir;
  return {};
}

void expect_models_bit_equal(const SparsifiedModel& a, const SparsifiedModel& b) {
  ASSERT_EQ(a.q().nnz(), b.q().nnz());
  ASSERT_EQ(a.gw().nnz(), b.gw().nnz());
  EXPECT_EQ((a.q().to_dense() - b.q().to_dense()).max_abs(), 0.0);
  EXPECT_EQ((a.gw().to_dense() - b.gw().to_dense()).max_abs(), 0.0);
}

void corrupt_and_expect_transparent_reextraction(
    const std::string& dir, const std::function<void(const std::string&)>& corrupt) {
  Rig rig;
  ModelCache warm(dir);
  const ExtractionResult first = warm.get_or_extract(*rig.solver, rig.layout, rig.stack,
                                                     rig.request);
  const std::string path = the_model_file(dir);
  ASSERT_FALSE(path.empty());
  corrupt(path);

  // A second process (fresh cache over the same directory) must get the
  // identical model back with no exception, the bad file quarantined, and
  // the corruption visible only through counters and the fallbacks note.
  Rig rig2;
  ModelCache cold(dir);
  const ExtractionResult second =
      cold.get_or_extract(*rig2.solver, rig2.layout, rig2.stack, rig2.request);
  expect_models_bit_equal(first.model, second.model);
  EXPECT_FALSE(second.report.from_cache);
  EXPECT_EQ(second.report.cache.corruptions, 1u);
  EXPECT_EQ(second.report.cache.quarantines, 1u);
  EXPECT_EQ(cold.stats().corruptions, 1u);
  EXPECT_EQ(cold.stats().quarantines, 1u);
  ASSERT_FALSE(second.report.fallbacks.empty());
  EXPECT_NE(second.report.fallbacks[0].find("quarantined"), std::string::npos);
  EXPECT_TRUE(fs::exists(path + ".quarantined.1"));
  // The re-extraction re-published a healthy file under the original name.
  EXPECT_NO_THROW(load_model(path));

  // Corrupt the re-published file too: the second specimen lands beside the
  // first (.quarantined.2) instead of overwriting the earlier evidence.
  corrupt(path);
  ModelCache cold2(dir);
  const ExtractionResult third_result =
      cold2.get_or_extract(*rig2.solver, rig2.layout, rig2.stack, rig2.request);
  expect_models_bit_equal(first.model, third_result.model);
  EXPECT_TRUE(fs::exists(path + ".quarantined.1"));
  EXPECT_TRUE(fs::exists(path + ".quarantined.2"));

  // Next access: a clean disk hit.
  ModelCache third(dir);
  const ExtractionResult hit =
      third.get_or_extract(*rig2.solver, rig2.layout, rig2.stack, rig2.request);
  EXPECT_TRUE(hit.report.from_cache);
  EXPECT_EQ(hit.report.cache.disk_loads, 1u);
  fs::remove_all(dir);
}

TEST(CacheFaults, TruncatedModelFileIsQuarantinedAndReextracted) {
  corrupt_and_expect_transparent_reextraction(
      fresh_dir("subspar_fault_trunc"), [](const std::string& path) {
        std::string data;
        {
          std::FILE* f = std::fopen(path.c_str(), "rb");
          ASSERT_NE(f, nullptr);
          char buf[4096];
          std::size_t n = 0;
          while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, n);
          std::fclose(f);
        }
        std::FILE* f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(data.data(), 1, data.size() / 2, f);  // torn in half
        std::fclose(f);
      });
}

TEST(CacheFaults, BitFlippedModelFileIsQuarantinedAndReextracted) {
  corrupt_and_expect_transparent_reextraction(
      fresh_dir("subspar_fault_flip"), [](const std::string& path) {
        std::FILE* f = std::fopen(path.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        const long size = std::ftell(f);
        std::fseek(f, size / 2, SEEK_SET);
        const int c = std::fgetc(f);
        std::fseek(f, size / 2, SEEK_SET);
        std::fputc(c ^ 0x04, f);  // flip one bit mid-payload
        std::fclose(f);
      });
}

TEST_F(FaultEnv, TornWriteNeverPublishesAndIsCountedNotThrown) {
  const std::string dir = fresh_dir("subspar_fault_torn");
  arm("5:1:0:w");  // every model-file write dies before the atomic rename
  Rig rig;
  ModelCache cache(dir);
  const ExtractionResult r =
      cache.get_or_extract(*rig.solver, rig.layout, rig.stack, rig.request);
  EXPECT_EQ(r.report.cache.write_failures, 1u);
  EXPECT_EQ(cache.stats().write_failures, 1u);
  // Neither a final file nor a .tmp leftover: the destination directory
  // holds no trace of the torn write.
  for (const auto& e : fs::directory_iterator(dir))
    ADD_FAILURE() << "unexpected file survived the torn write: " << e.path();
  // The result itself is healthy and memory-cached.
  EXPECT_GT(r.model.gw().nnz(), 0u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Disarmed, a fresh cache re-extracts and the write goes through.
  disarm();
  Rig rig2;
  ModelCache retry(dir);
  const ExtractionResult r2 =
      retry.get_or_extract(*rig2.solver, rig2.layout, rig2.stack, rig2.request);
  EXPECT_EQ(retry.stats().write_failures, 0u);
  EXPECT_NO_THROW(load_model(the_model_file(dir)));
  expect_models_bit_equal(r.model, r2.model);
  fs::remove_all(dir);
}

TEST_F(FaultEnv, InjectedCacheReadFaultFallsBackToReextraction) {
  const std::string dir = fresh_dir("subspar_fault_read");
  Rig rig;
  {
    ModelCache warm(dir);
    warm.get_or_extract(*rig.solver, rig.layout, rig.stack, rig.request);
  }
  arm("9:1:0:r");  // every persisted-file read faults
  Rig rig2;
  ModelCache cache(dir);
  const ExtractionResult r =
      cache.get_or_extract(*rig2.solver, rig2.layout, rig2.stack, rig2.request);
  EXPECT_FALSE(r.report.from_cache);
  EXPECT_EQ(r.report.cache.corruptions, 1u);
  ASSERT_FALSE(r.report.fallbacks.empty());
  EXPECT_NE(r.report.fallbacks[0].find("injected cache-read fault"), std::string::npos);
  fs::remove_all(dir);
}

// ------------------------------------------------- end-to-end solver faults

TEST_F(FaultEnv, ExtractionUnderSolverFaultsStaysWithinErrorBoundAndReplays) {
  // Clean reference first.
  Rig clean;
  const ExtractionResult ref = Extractor(*clean.solver, clean.layout).extract(clean.request);
  Rng rng(2024);
  Vector v(clean.layout.n_contacts());
  for (auto& x : v) x = rng.uniform(-0.5, 0.5);
  const Vector exact = clean.solver->solve(v);
  const double ref_resid = norm2(ref.model.apply(v) - exact) / norm2(exact);

  // Armed run: solver sites only, aggressive enough to fire many times.
  const std::string spec = "2718:0.05:200:as";
  arm(spec);
  Rig faulty;
  const ExtractionResult hit = Extractor(*faulty.solver, faulty.layout).extract(faulty.request);
  const FaultCounts counts = fault_counts();
  const std::uint64_t fired = counts.fired[0] + counts.fired[1];
  ASSERT_GT(fired, 0u) << "schedule never fired; the test is vacuous";
  // Every fired fault was recovered: the report lists the fallbacks taken
  // and the solver diagnostics reached the per-phase timings.
  EXPECT_FALSE(hit.report.fallbacks.empty());
  const SolverDiagnostics& d = faulty.solver->diagnostics();
  EXPECT_GT(d.restarts + d.direct_columns + d.nonfinite_recoveries, 0l);
  // ... and the model is still within the deterministic route's error bound
  // (clean run on this rig sits around 2e-3, same as the golden pin).
  disarm();
  const double resid = norm2(hit.model.apply(v) - exact) / norm2(exact);
  EXPECT_LT(resid, 10 * ref_resid + 1e-2);

  // Fixed-seed replay: identical model bits and identical fallback lines.
  arm(spec);
  Rig replay;
  const ExtractionResult again =
      Extractor(*replay.solver, replay.layout).extract(replay.request);
  expect_models_bit_equal(hit.model, again.model);
  ASSERT_EQ(again.report.fallbacks.size(), hit.report.fallbacks.size());
  for (std::size_t i = 0; i < hit.report.fallbacks.size(); ++i)
    EXPECT_EQ(again.report.fallbacks[i], hit.report.fallbacks[i]);
}

}  // namespace
}  // namespace subspar
