// Tests for the public API layer (include/subspar/): the solver registry,
// the ExtractionRequest -> ExtractionResult pipeline, and the ModelCache.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "subspar/subspar.hpp"

namespace subspar {
namespace {

SubstrateStack tiny_stack() {
  // Boundaries on grid planes at h = 2 so the FD solvers stay cheap + exact.
  return SubstrateStack({{2.0, 1.0}, {10.0, 100.0}}, Backplane::kGrounded);
}

// ---- Solver registry -------------------------------------------------------

TEST(SolverRegistry, EveryKindConstructsAndSolves) {
  const Layout layout = regular_grid_layout(4);  // 16 contacts
  const SubstrateStack stack = tiny_stack();
  Vector v(layout.n_contacts());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = (i % 3 == 0) ? 1.0 : -0.5;
  for (const SolverKind kind :
       {SolverKind::kSurface, SolverKind::kFd, SolverKind::kMultigrid}) {
    const auto solver = make_solver(kind, layout, stack);
    ASSERT_NE(solver, nullptr);
    EXPECT_EQ(solver->n_contacts(), layout.n_contacts());
    const Vector i = solver->solve(v);
    EXPECT_EQ(i.size(), layout.n_contacts());
    EXPECT_EQ(solver->solve_count(), 1);
    // Every discretization must produce finite, nontrivial currents.
    double mx = 0.0;
    for (const double x : i) {
      ASSERT_TRUE(std::isfinite(x));
      mx = std::max(mx, std::abs(x));
    }
    EXPECT_GT(mx, 0.0) << solver_kind_name(kind);
  }
}

TEST(SolverRegistry, KindMatchesDirectConstructionBitExactly) {
  const Layout layout = regular_grid_layout(4);
  const SubstrateStack stack = tiny_stack();
  const auto via_registry = make_solver(SolverKind::kSurface, layout, stack);
  const SurfaceSolver direct(layout, stack);
  Vector v(layout.n_contacts());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 0.1 * static_cast<double>(i) - 0.7;
  EXPECT_EQ(norm2(via_registry->solve(v) - direct.solve(v)), 0.0);
}

TEST(SolverRegistry, MultigridKindForcesMultigridPreconditioner) {
  const Layout layout = regular_grid_layout(4);
  const SubstrateStack stack = tiny_stack();
  // Even when the config asks for a different preconditioner, the kind wins.
  SolverConfig config;
  config.fd.precond = FdPreconditioner::kNone;
  const auto solver = make_solver(SolverKind::kMultigrid, layout, stack, config);
  const auto reference = make_solver(SolverKind::kFd, layout, stack,
                                     {.fd = {.precond = FdPreconditioner::kMultigrid}});
  Vector v(layout.n_contacts());
  v[0] = 1.0;
  EXPECT_EQ(norm2(solver->solve(v) - reference->solve(v)), 0.0);
}

TEST(SolverRegistry, ByNameAndByKindAgree) {
  const Layout layout = regular_grid_layout(4);
  const SubstrateStack stack = tiny_stack();
  for (const SolverKind kind : {SolverKind::kSurface, SolverKind::kFd}) {
    const auto by_name = make_solver(std::string(solver_kind_name(kind)), layout, stack);
    const auto by_kind = make_solver(kind, layout, stack);
    EXPECT_EQ(by_name->name(), by_kind->name());
  }
  EXPECT_THROW(make_solver("no-such-solver", layout, stack), std::invalid_argument);
}

TEST(SolverRegistry, CustomRegistrationIsConstructibleByName) {
  const std::string name = "custom-surface-loose";
  register_solver(name, [](const Layout& l, const SubstrateStack& s, const SolverConfig& c) {
    SurfaceSolverOptions options = c.surface;
    options.rel_tol = 1e-3;
    return std::make_unique<SurfaceSolver>(l, s, options);
  });
  const auto names = registered_solvers();
  EXPECT_NE(std::find(names.begin(), names.end(), name), names.end());
  const Layout layout = regular_grid_layout(4);
  const auto solver = make_solver(name, layout, tiny_stack());
  EXPECT_EQ(solver->n_contacts(), layout.n_contacts());
}

// ---- ExtractionRequest validation -----------------------------------------

TEST(ExtractionRequestValidation, RejectsBadOptions) {
  EXPECT_NO_THROW(validate(ExtractionRequest{}));
  EXPECT_THROW(validate({.moment_order = -1}), std::invalid_argument);
  // (0, 1] thresholds were a silent no-op under the old facade; now loud.
  EXPECT_THROW(validate({.threshold_sparsity_multiple = 0.5}), std::invalid_argument);
  EXPECT_THROW(validate({.threshold_sparsity_multiple = 1.0}), std::invalid_argument);
  EXPECT_THROW(validate({.lowrank = {.sigma_rel_tol = 0.0}}), std::invalid_argument);
  EXPECT_THROW(validate({.lowrank = {.sigma_rel_tol = 2.0}}), std::invalid_argument);
  EXPECT_THROW(validate({.lowrank = {.max_rank = 0}}), std::invalid_argument);
  EXPECT_THROW(validate({.lowrank = {.u_sigma_rel_tol = -1.0}}), std::invalid_argument);
  const Layout layout = regular_grid_layout(4);
  const auto solver = make_solver(SolverKind::kSurface, layout, tiny_stack());
  const Extractor engine(*solver, layout);
  EXPECT_THROW(engine.extract({.moment_order = -3}), std::invalid_argument);
  EXPECT_EQ(solver->solve_count(), 0);  // rejected before any solve
  // The deprecated facade keeps the seed-era tolerance: thresholds <= 1
  // were a silent no-op there, not an error.
  EXPECT_NO_THROW(
      extract_sparsified(*solver, engine.tree(), {.threshold_sparsity_multiple = 0.5}));
}

TEST(ExtractionRequestValidation, MismatchedSolverAndLayoutRejected) {
  const Layout small = regular_grid_layout(4);
  const Layout big = regular_grid_layout(8);
  const auto solver = make_solver(SolverKind::kSurface, small, tiny_stack());
  EXPECT_THROW(Extractor(*solver, big), std::invalid_argument);
}

// ---- Extractor pipeline ----------------------------------------------------

TEST(ExtractorPipeline, MatchesDeprecatedFacadeBitExactly) {
  const Layout layout = regular_grid_layout(8);
  const SubstrateStack stack = paper_stack();
  const auto solver = make_solver(SolverKind::kSurface, layout, stack);
  const QuadTree tree(layout);
  for (const SparsifyMethod method : {SparsifyMethod::kWavelet, SparsifyMethod::kLowRank}) {
    const SparsifiedModel old_model =
        extract_sparsified(*solver, tree, {.method = method, .threshold_sparsity_multiple = 4.0});
    const ExtractionResult result = Extractor(*solver, layout).extract(
        {.method = method, .threshold_sparsity_multiple = 4.0});
    EXPECT_EQ(result.model.solves_used(), old_model.solves_used());
    EXPECT_EQ(result.model.q().nnz(), old_model.q().nnz());
    EXPECT_EQ(result.model.gw().nnz(), old_model.gw().nnz());
    EXPECT_EQ((result.model.q().to_dense() - old_model.q().to_dense()).max_abs(), 0.0);
    EXPECT_EQ((result.model.gw().to_dense() - old_model.gw().to_dense()).max_abs(), 0.0);
  }
}

TEST(ExtractorPipeline, ReportCarriesPhasesAndMetrics) {
  const Layout layout = regular_grid_layout(8);
  const auto solver = make_solver(SolverKind::kSurface, layout, paper_stack());
  std::vector<std::string> seen;
  const ExtractionResult result = Extractor(*solver, layout).extract(
      {.threshold_sparsity_multiple = 4.0,
       .progress = [&](const std::string& phase, double) { seen.push_back(phase); }});
  const ExtractionReport& report = result.report;
  EXPECT_EQ(report.n, layout.n_contacts());
  EXPECT_EQ(report.solves, result.model.solves_used());
  EXPECT_GT(report.solves, 0);
  EXPECT_GT(report.seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.gw_sparsity, result.model.gw_sparsity_factor());
  EXPECT_DOUBLE_EQ(report.q_sparsity, result.model.q_sparsity_factor());
  EXPECT_FALSE(report.from_cache);
  // Low-rank phases + threshold, in order, mirrored to the callback.
  ASSERT_EQ(report.phases.size(), 4u);
  EXPECT_EQ(report.phases[0].phase, "row-basis");
  EXPECT_EQ(report.phases[1].phase, "fine-to-coarse");
  EXPECT_EQ(report.phases[2].phase, "gw-fill");
  EXPECT_EQ(report.phases[3].phase, "threshold");
  ASSERT_EQ(seen.size(), report.phases.size());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], report.phases[i].phase);
  EXPECT_NE(report.summary().find("solves"), std::string::npos);
}

TEST(ExtractorPipeline, SharedTreeServesRepeatedRequests) {
  const Layout layout = regular_grid_layout(8);
  const auto solver = make_solver(SolverKind::kSurface, layout, paper_stack());
  const Extractor engine(*solver, layout);
  EXPECT_GE(engine.tree_build_seconds(), 0.0);
  const ExtractionResult wavelet = engine.extract({.method = SparsifyMethod::kWavelet});
  const ExtractionResult lowrank = engine.extract({.method = SparsifyMethod::kLowRank});
  EXPECT_EQ(wavelet.model.q().rows(), lowrank.model.q().rows());
  // A borrowed tree gives the same models as an owned one.
  const QuadTree tree(layout);
  const ExtractionResult borrowed = Extractor(*solver, tree).extract(
      {.method = SparsifyMethod::kWavelet});
  EXPECT_EQ((borrowed.model.gw().to_dense() - wavelet.model.gw().to_dense()).max_abs(), 0.0);
}

// ---- ModelCache ------------------------------------------------------------

TEST(ModelCacheTest, HitConsumesZeroSolvesAndMatchesBitExactly) {
  const Layout layout = regular_grid_layout(8);
  const SubstrateStack stack = paper_stack();
  const auto solver = make_solver(SolverKind::kSurface, layout, stack);
  ModelCache cache;
  const ExtractionRequest request{.threshold_sparsity_multiple = 4.0};

  EXPECT_FALSE(cache.contains(*solver, layout, stack, request));
  const ExtractionResult miss = cache.get_or_extract(*solver, layout, stack, request);
  EXPECT_FALSE(miss.report.from_cache);
  EXPECT_GT(miss.report.solves, 0);
  EXPECT_TRUE(cache.contains(*solver, layout, stack, request));

  const long solves_before = solver->solve_count();
  const ExtractionResult hit = cache.get_or_extract(*solver, layout, stack, request);
  EXPECT_EQ(solver->solve_count(), solves_before);  // zero black-box solves
  EXPECT_TRUE(hit.report.from_cache);
  EXPECT_EQ(hit.report.solves, 0);
  EXPECT_EQ((hit.model.q().to_dense() - miss.model.q().to_dense()).max_abs(), 0.0);
  EXPECT_EQ((hit.model.gw().to_dense() - miss.model.gw().to_dense()).max_abs(), 0.0);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ModelCacheTest, DifferentRequestsAndSolversGetDifferentKeys) {
  const Layout layout = regular_grid_layout(4);
  const SubstrateStack stack = tiny_stack();
  const ExtractionRequest a{};
  const ExtractionRequest b{.method = SparsifyMethod::kWavelet};
  const ExtractionRequest c{.lowrank = {.seed = 999}};
  EXPECT_NE(model_cache_key(layout, stack, a), model_cache_key(layout, stack, b));
  EXPECT_NE(model_cache_key(layout, stack, a), model_cache_key(layout, stack, c));
  EXPECT_NE(model_cache_key(layout, stack, a, "surface"),
            model_cache_key(layout, stack, a, "fd"));
  // Same solver kind, different construction options: cache_tag() keys them
  // apart (different grid spacing / wells discretize a different G).
  const auto fd_coarse = make_solver(SolverKind::kFd, layout, stack);
  const auto fd_fine = make_solver(SolverKind::kFd, layout, stack, {.fd = {.grid_h = 1.0}});
  const auto fd_paper_ghost =
      make_solver(SolverKind::kFd, layout, stack, {.fd = {.ghost_half_spacing = false}});
  EXPECT_EQ(fd_coarse->name(), fd_fine->name());
  EXPECT_NE(fd_coarse->cache_tag(), fd_fine->cache_tag());
  EXPECT_NE(fd_coarse->cache_tag(), fd_paper_ghost->cache_tag());
  EXPECT_EQ(fd_coarse->cache_tag(),
            make_solver(SolverKind::kFd, layout, stack)->cache_tag());
  // Same content, fresh objects: equal keys (the hash is content-based).
  EXPECT_EQ(model_cache_key(regular_grid_layout(4), tiny_stack(), ExtractionRequest{}),
            model_cache_key(layout, stack, a));
  // Progress callbacks are observational and must not affect the key.
  ExtractionRequest with_progress{};
  with_progress.progress = [](const std::string&, double) {};
  EXPECT_EQ(model_cache_key(layout, stack, with_progress), model_cache_key(layout, stack, a));
}

TEST(ModelCacheTest, PersistsAcrossCacheInstancesThroughSaveLoad) {
  const std::string dir = "/tmp/subspar_cache_test_dir";
  std::filesystem::remove_all(dir);
  const Layout layout = regular_grid_layout(8);
  const SubstrateStack stack = paper_stack();
  const auto solver = make_solver(SolverKind::kSurface, layout, stack);
  const ExtractionRequest request{.threshold_sparsity_multiple = 4.0};

  ModelCache warm(dir);
  const ExtractionResult original = warm.get_or_extract(*solver, layout, stack, request);
  EXPECT_EQ(warm.stats().misses, 1u);

  // A second cache over the same directory (a "new process") serves the
  // request from disk: zero solves, bit-exact apply through the io layer.
  ModelCache cold(dir);
  const long solves_before = solver->solve_count();
  const ExtractionResult loaded = cold.get_or_extract(*solver, layout, stack, request);
  EXPECT_EQ(solver->solve_count(), solves_before);
  EXPECT_TRUE(loaded.report.from_cache);
  EXPECT_EQ(cold.stats().disk_loads, 1u);
  EXPECT_EQ(loaded.model.solves_used(), original.model.solves_used());
  Rng rng(17);
  Vector v(layout.n_contacts());
  for (auto& x : v) x = rng.normal();
  EXPECT_EQ(norm2(loaded.model.apply(v) - original.model.apply(v)), 0.0);

  // A corrupted persisted file falls back to a fresh extraction.
  ModelCache rescued(dir);
  const std::string key = model_cache_key(layout, stack, request, solver->cache_tag());
  const std::string path = dir + "/model-" + key + ".txt";
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("subspar-model v1\ngarbage", f);
    std::fclose(f);
  }
  const ExtractionResult refreshed = rescued.get_or_extract(*solver, layout, stack, request);
  EXPECT_FALSE(refreshed.report.from_cache);
  EXPECT_EQ(norm2(refreshed.model.apply(v) - original.model.apply(v)), 0.0);

  // A well-formed persisted file of the wrong dimension (renamed/copied
  // into the cache dir) is also treated as corrupt, not served.
  {
    SparseBuilder qb(2, 2), gb(2, 2);
    qb.add(0, 0, 1.0);
    qb.add(1, 1, 1.0);
    gb.add(0, 0, 2.0);
    gb.add(1, 1, 3.0);
    save_model(path, SparsifiedModel(SparseMatrix(qb), SparseMatrix(gb), 2, 0.1));
  }
  ModelCache resized(dir);
  const ExtractionResult resized_result = resized.get_or_extract(*solver, layout, stack, request);
  EXPECT_FALSE(resized_result.report.from_cache);
  EXPECT_EQ(resized_result.model.q().rows(), layout.n_contacts());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace subspar
