// Fixture: per-file floating-point model overrides. Any of these can change
// rounding/association in a kernel that pins bit-exact results across thread
// counts (the golden suite hashes solver output bit-for-bit).
#pragma GCC optimize("fast-math")
#pragma STDC FP_CONTRACT ON

namespace subspar {

double dot(const double* a, const double* b, unsigned n) {
  double s = 0.0;
  for (unsigned i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

}  // namespace subspar
