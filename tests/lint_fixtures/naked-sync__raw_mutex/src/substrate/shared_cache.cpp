// Fixture: a module growing its own synchronization instead of using the
// annotated wrappers in util/sync.hpp. Every line below must trip naked-sync.
#include <mutex>
#include <shared_mutex>

namespace subspar {

struct SharedPlanCache {
  std::mutex mutex;               // BAD: invisible to -Wthread-safety
  std::shared_mutex table_mutex;  // BAD
  std::condition_variable cv;     // BAD

  void touch() {
    std::lock_guard<std::mutex> lock(mutex);  // BAD (twice on this line)
  }
};

}  // namespace subspar
