// Fixture: an unordered container in a file that feeds the FNV-1a content
// hash. Iteration order of std::unordered_map is implementation-defined, so
// walking it into the hash would make cache keys differ across
// processes/library versions while looking perfectly correct locally.
#include <string>
#include <unordered_map>

#include "util/hash.hpp"

namespace subspar {

std::string bad_cache_key(const std::unordered_map<std::string, double>& opts) {
  Fnv1a h;
  for (const auto& [k, v] : opts) {  // BAD: unordered walk into the hash
    h.update(k);
    h.update(v);
  }
  return h.hex();
}

}  // namespace subspar
