// Fixture: a lower layer pulling the api-layer public surface in through the
// installed headers instead of "api/..." — same inversion, different spelling.
// Lower layers may include only subspar/status.hpp of the public surface.
#include "subspar/service.hpp"
#include "subspar/status.hpp"

namespace subspar {

void rbk_that_knows_about_jobs() {}

}  // namespace subspar
