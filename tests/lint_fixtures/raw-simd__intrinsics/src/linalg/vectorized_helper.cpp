// Known-bad fixture: raw SIMD outside the kernel-backend family. Each of
// these must trip the raw-simd rule — hand-rolled intrinsics in ordinary
// module code bypass the CPUID gate in linalg/backend.cpp and make the
// binary silently non-portable.
#include <immintrin.h>

namespace subspar {

typedef double Vec4d __attribute__((vector_size(32)));

double sum4(const double* p) {
  const __m256d v = _mm256_loadu_pd(p);
  const Vec4d w = {p[0], p[1], p[2], p[3]};
  const Vec4d b = __builtin_shufflevector(w, w, 1, 0, 3, 2);
  __m128d lo = _mm256_castpd256_pd128(v);
  (void)lo;
  return b[0] + b[1] + b[2] + b[3];
}

}  // namespace subspar
