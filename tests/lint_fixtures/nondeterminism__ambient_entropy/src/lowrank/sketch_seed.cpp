// Fixture: every ambient-entropy / wall-clock seeding pattern the
// nondeterminism rule bans. Extraction results are bit-reproducible by
// contract; a sketch seeded from any of these would differ run to run.
#include <cstdlib>
#include <ctime>
#include <random>

namespace subspar {

unsigned bad_seed_sources() {
  std::random_device rd;               // BAD: ambient entropy
  std::mt19937 gen(rd());              // BAD: use util/rng.hpp's seeded Rng
  std::srand(static_cast<unsigned>(time(nullptr)));  // BAD: twice over
  return static_cast<unsigned>(rand()) + gen();      // BAD: rand()
}

}  // namespace subspar
