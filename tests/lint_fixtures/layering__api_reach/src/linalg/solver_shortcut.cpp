// Fixture: a lower-layer module reaching up into api/ internals. linalg sits
// near the bottom of the stack (util -> linalg -> ... -> core -> api); an
// include like this inverts the layering and creates a cycle risk.
#include "api/service.hpp"

namespace subspar {

void peek_at_service() {}

}  // namespace subspar
