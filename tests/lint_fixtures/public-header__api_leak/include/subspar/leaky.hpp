// Fixture: a public header reaching into src/api/ internals. The installed
// include/subspar tree must be self-contained — consumers only get
// include/ + the module headers, never src/api/.
#pragma once

#include "api/service.hpp"

namespace subspar {
struct Leaky {};
}  // namespace subspar
