// Fixture: a well-formed public header — re-exports a module header and a
// sibling public header, nothing from src/api/.
#pragma once

#include "subspar/status.hpp"
#include "util/sync.hpp"

namespace subspar {
struct Tidy {};
}  // namespace subspar
