// Fixture: a file that mentions every banned pattern in non-code positions
// (comments, string literals) plus one real occurrence carrying an explicit
// suppression. None of it may be reported — this pins the comment/string
// stripping and the `subspar-lint: allow(...)` escape hatch.
//
// In a comment, std::mutex and rand() and -ffast-math are all fine.
#include <string>

#include "subspar/status.hpp"
#include "util/sync.hpp"

namespace subspar {

const char* kDocs =
    "never use std::mutex directly; never seed from time(nullptr)";

// Suppression with a written reason, as docs/ARCHITECTURE.md requires:
// interop with a C callback API that hands us its own lock type.
using ExternalLock = std::mutex;  // subspar-lint: allow(naked-sync) - C interop shim

std::string describe() { return kDocs; }

}  // namespace subspar
