// The SparsifiedModel type and the seed-era extraction facade.
//
// DEPRECATED (facade only): `extract_sparsified` + `ExtractorOptions` are
// superseded by the public pipeline in include/subspar/extraction.hpp
// (ExtractionRequest -> Extractor -> ExtractionResult), which adds option
// validation, per-phase timing reports, progress callbacks, and cache
// integration. The free function is kept for one release as a thin wrapper
// over `Extractor` and produces bit-identical models; new code should
// include "subspar/subspar.hpp" and use the Extractor. SparsifiedModel
// itself is not deprecated — it is the model type of both APIs.
#pragma once

#include <memory>
#include <string>

#include "geometry/quadtree.hpp"
#include "linalg/sparse.hpp"
#include "lowrank/row_basis.hpp"
#include "substrate/solver.hpp"

namespace subspar {

enum class SparsifyMethod {
  kWavelet,  ///< Chapter 3: geometric vanishing-moment basis
  kLowRank,  ///< Chapter 4: operator-adapted row-basis construction
};

/// Knobs for `extract_sparsified`. Defaults give the unthresholded low-rank
/// model of Table 4.1; set `threshold_sparsity_multiple` (the paper's
/// Tables 4.2/3.1 use 6) for the thresholded trade-off.
/// Deprecated with the facade: ExtractionRequest carries the same fields.
struct ExtractorOptions {
  /// Which sparsification algorithm builds the change of basis Q.
  SparsifyMethod method = SparsifyMethod::kLowRank;
  /// Wavelet moment order (Chapter 3; the paper uses 2).
  int moment_order = 2;
  /// Low-rank options (Chapter 4).
  LowRankOptions lowrank;
  /// If > 1, additionally threshold G_w to ~this multiple of its
  /// conservative sparsity factor (the paper uses 6; §3.7 / §4.6).
  double threshold_sparsity_multiple = 0.0;
};

/// A sparsified substrate coupling model: the orthogonal change of basis Q
/// and the sparse transformed conductance G_w, with the build-cost metadata
/// the paper's tables report.
class SparsifiedModel {
 public:
  /// Takes ownership of the factors; `solves` and `seconds` record what the
  /// extraction cost (black-box substrate solves and wall-clock time).
  SparsifiedModel(SparseMatrix q, SparseMatrix gw, long solves, double seconds);

  /// Contact currents from contact voltages through Q G_w Q' —
  /// O(nnz(Q) + nnz(G_w)) instead of the dense O(n^2).
  Vector apply(const Vector& contact_voltages) const;

  /// Batched application to the columns of an n x k voltage matrix, fanned
  /// out over the SUBSPAR_THREADS pool (columns are independent; results
  /// are bit-identical for any thread count).
  Matrix apply_many(const Matrix& contact_voltages) const;

  /// The orthogonal change-of-basis factor Q.
  const SparseMatrix& q() const { return q_; }
  /// The sparse transformed conductance G_w (thresholded if requested).
  const SparseMatrix& gw() const { return gw_; }
  /// Black-box substrate solves consumed by the extraction.
  long solves_used() const { return solves_; }
  /// Wall-clock seconds spent building the model.
  double build_seconds() const { return seconds_; }

  /// Paper metrics.
  double gw_sparsity_factor() const { return gw_.sparsity_factor(); }
  double q_sparsity_factor() const { return q_.sparsity_factor(); }
  double solve_reduction_factor() const;

  /// One-line human-readable digest (sparsity factors, solves, seconds).
  std::string summary() const;

 private:
  SparseMatrix q_, gw_;
  long solves_;
  double seconds_;
};

/// Runs the selected sparsification pipeline end to end.
/// Deprecated: delegates to Extractor (subspar/extraction.hpp); use that
/// directly for validation, phase timings, progress, and caching.
SparsifiedModel extract_sparsified(const SubstrateSolver& solver, const QuadTree& tree,
                                   const ExtractorOptions& options = {});

}  // namespace subspar
