#include "core/extractor.hpp"

#include <sstream>

#include "lowrank/extract.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"
#include "wavelet/basis.hpp"
#include "wavelet/extract.hpp"
#include "wavelet/pattern.hpp"

namespace subspar {

SparsifiedModel::SparsifiedModel(SparseMatrix q, SparseMatrix gw, long solves, double seconds)
    : q_(std::move(q)), gw_(std::move(gw)), solves_(solves), seconds_(seconds) {
  SUBSPAR_REQUIRE(q_.rows() == q_.cols() && gw_.rows() == q_.cols() && gw_.cols() == q_.cols());
}

Vector SparsifiedModel::apply(const Vector& contact_voltages) const {
  return q_.apply(gw_.apply(q_.apply_t(contact_voltages)));
}

Matrix SparsifiedModel::apply_many(const Matrix& contact_voltages) const {
  SUBSPAR_REQUIRE(contact_voltages.rows() == q_.rows());
  Matrix out(q_.rows(), contact_voltages.cols());
  parallel_for(contact_voltages.cols(),
               [&](std::size_t j) { out.set_col(j, apply(contact_voltages.col(j))); });
  return out;
}

double SparsifiedModel::solve_reduction_factor() const {
  return solves_ == 0 ? 0.0
                      : static_cast<double>(q_.rows()) / static_cast<double>(solves_);
}

std::string SparsifiedModel::summary() const {
  std::ostringstream out;
  out << "n = " << q_.rows() << ", solves = " << solves_ << " (reduction "
      << solve_reduction_factor() << "x), sparsity(G_w) = " << gw_sparsity_factor()
      << ", sparsity(Q) = " << q_sparsity_factor() << ", build = " << seconds_ << " s";
  return out.str();
}

SparsifiedModel extract_sparsified(const SubstrateSolver& solver, const QuadTree& tree,
                                   const ExtractorOptions& options) {
  Timer timer;
  SparseMatrix q, gw;
  long solves = 0;
  if (options.method == SparsifyMethod::kWavelet) {
    const WaveletBasis basis(tree, options.moment_order);
    const WaveletExtraction ex = wavelet_extract_combined(solver, basis);
    q = basis.q();
    gw = ex.gws;
    solves = ex.solves;
  } else {
    LowRankExtraction ex = lowrank_extract(solver, tree, options.lowrank);
    q = ex.basis->q();
    gw = std::move(ex.gw);
    solves = ex.solves;
  }
  if (options.threshold_sparsity_multiple > 1.0) {
    const auto target =
        static_cast<std::size_t>(static_cast<double>(gw.nnz()) /
                                 options.threshold_sparsity_multiple);
    gw = threshold_to_nnz(gw, target);
  }
  return SparsifiedModel(std::move(q), std::move(gw), solves, timer.seconds());
}

}  // namespace subspar
