#include "core/extractor.hpp"

#include <sstream>

#include "subspar/extraction.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace subspar {

SparsifiedModel::SparsifiedModel(SparseMatrix q, SparseMatrix gw, long solves, double seconds)
    : q_(std::move(q)), gw_(std::move(gw)), solves_(solves), seconds_(seconds) {
  SUBSPAR_REQUIRE(q_.rows() == q_.cols() && gw_.rows() == q_.cols() && gw_.cols() == q_.cols());
}

Vector SparsifiedModel::apply(const Vector& contact_voltages) const {
  return q_.apply(gw_.apply(q_.apply_t(contact_voltages)));
}

Matrix SparsifiedModel::apply_many(const Matrix& contact_voltages) const {
  SUBSPAR_REQUIRE(contact_voltages.rows() == q_.rows());
  Matrix out(q_.rows(), contact_voltages.cols());
  parallel_for(contact_voltages.cols(),
               [&](std::size_t j) { out.set_col(j, apply(contact_voltages.col(j))); });
  return out;
}

double SparsifiedModel::solve_reduction_factor() const {
  return solves_ == 0 ? 0.0
                      : static_cast<double>(q_.rows()) / static_cast<double>(solves_);
}

std::string SparsifiedModel::summary() const {
  std::ostringstream out;
  out << "n = " << q_.rows() << ", solves = " << solves_ << " (reduction "
      << solve_reduction_factor() << "x), sparsity(G_w) = " << gw_sparsity_factor()
      << ", sparsity(Q) = " << q_sparsity_factor() << ", build = " << seconds_ << " s";
  return out.str();
}

SparsifiedModel extract_sparsified(const SubstrateSolver& solver, const QuadTree& tree,
                                   const ExtractorOptions& options) {
  // Deprecated wrapper: same fields, same pipeline, same numbers — and the
  // seed-era tolerance for thresholds <= 1 (a silent no-op then, a
  // validation reject through the strict ExtractionRequest path now).
  const double threshold =
      options.threshold_sparsity_multiple > 1.0 ? options.threshold_sparsity_multiple : 0.0;
  return Extractor(solver, tree)
      .extract({.method = options.method,
                .moment_order = options.moment_order,
                .lowrank = options.lowrank,
                .threshold_sparsity_multiple = threshold})
      .model;
}

}  // namespace subspar
