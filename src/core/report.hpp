// Accuracy and sparsity metrics shared by all benches (§3.7).
//
// The paper scores a sparsified representation Q G_w Q' entry-by-entry
// against the exact G: relative error per entry, its maximum, and the
// fraction of entries off by more than 10%. Large examples are scored on a
// column sample (Table 4.3).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace subspar {

struct ErrorStats {
  double max_rel_error = 0.0;  ///< over all entries above the noise floor
  /// Max relative error restricted to entries >= max|G| / 500 — the entry
  /// population the paper states its examples have ("the smallest entries
  /// are less than 1/500 of the largest off-diagonal entries", §5.1), for
  /// like-for-like comparison when a layout here produces a wider dynamic
  /// range (heavily shielded tiny contacts).
  double max_rel_error_significant = 0.0;
  double frac_above_10pct = 0.0;
  std::size_t entries = 0;
};

/// Entries with |G(i,j)| below this fraction of max|G| are excluded from
/// relative-error statistics: the reference columns themselves come from an
/// iterative black-box solver at ~1e-6 relative residual, so smaller entries
/// are solver noise, not signal.
inline constexpr double kEntryFloorRel = 1e-6;
/// The paper's stated entry dynamic range (1/500 of the largest).
inline constexpr double kSignificantRel = 2e-3;

/// Column j of the reconstruction Q G_w Q' (contact index space).
Vector reconstruct_column(const SparseMatrix& q, const SparseMatrix& gw, std::size_t j);

/// Compares the reconstruction against exact columns of G.
/// `g_exact_cols` holds the exact columns listed in `col_ids` (n rows).
ErrorStats reconstruction_error(const SparseMatrix& q, const SparseMatrix& gw,
                                const Matrix& g_exact_cols,
                                const std::vector<std::size_t>& col_ids);

/// Convenience overload for a full exact G (all columns).
ErrorStats reconstruction_error(const SparseMatrix& q, const SparseMatrix& gw,
                                const Matrix& g_exact);

/// Entry-error stats of directly thresholding the *original* G (the naive
/// sparsification both chapters are compared against).
ErrorStats direct_threshold_error(const Matrix& g_exact, double keep_fraction);

}  // namespace subspar
