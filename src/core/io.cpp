#include "core/io.hpp"

#include <cinttypes>
#include <cstdio>
#include <memory>

#include "util/check.hpp"

namespace subspar {
namespace {

constexpr const char* kMagic = "subspar-model v1";

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void write_sparse(std::FILE* f, const SparseMatrix& m) {
  std::fprintf(f, "%zu %zu %zu\n", m.rows(), m.cols(), m.nnz());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t k = m.row_begin(i); k < m.row_end(i); ++k)
      // Hex floats round-trip doubles exactly.
      std::fprintf(f, "%zu %zu %a\n", i, m.col_index(k), m.value(k));
}

SparseMatrix read_sparse(std::FILE* f) {
  std::size_t rows = 0, cols = 0, nnz = 0;
  SUBSPAR_REQUIRE(std::fscanf(f, "%zu %zu %zu", &rows, &cols, &nnz) == 3);
  SparseBuilder b(rows, cols);
  for (std::size_t t = 0; t < nnz; ++t) {
    std::size_t i = 0, j = 0;
    double v = 0.0;
    SUBSPAR_REQUIRE(std::fscanf(f, "%zu %zu %la", &i, &j, &v) == 3);
    b.add(i, j, v);
  }
  return SparseMatrix(b);
}

}  // namespace

void save_model(const std::string& path, const SparsifiedModel& model) {
  File f(std::fopen(path.c_str(), "w"));
  SUBSPAR_REQUIRE(f != nullptr);
  std::fprintf(f.get(), "%s\n", kMagic);
  std::fprintf(f.get(), "%ld %a\n", model.solves_used(), model.build_seconds());
  write_sparse(f.get(), model.q());
  write_sparse(f.get(), model.gw());
  SUBSPAR_ENSURE(std::ferror(f.get()) == 0);
}

SparsifiedModel load_model(const std::string& path) {
  File f(std::fopen(path.c_str(), "r"));
  SUBSPAR_REQUIRE(f != nullptr);
  char magic[64] = {};
  SUBSPAR_REQUIRE(std::fgets(magic, sizeof magic, f.get()) != nullptr);
  SUBSPAR_REQUIRE(std::string(magic).rfind(kMagic, 0) == 0);
  long solves = 0;
  double seconds = 0.0;
  SUBSPAR_REQUIRE(std::fscanf(f.get(), "%ld %la", &solves, &seconds) == 2);
  SparseMatrix q = read_sparse(f.get());
  SparseMatrix gw = read_sparse(f.get());
  return SparsifiedModel(std::move(q), std::move(gw), solves, seconds);
}

}  // namespace subspar
