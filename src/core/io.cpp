#include "core/io.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <memory>

#include "util/check.hpp"

namespace subspar {
namespace {

constexpr const char* kMagic = "subspar-model v1";

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

[[noreturn]] void fail_load(const std::string& path, const char* section,
                            const std::string& detail) {
  throw ModelIoError("load_model('" + path + "'): " + section + ": " + detail);
}

void write_sparse(std::FILE* f, const SparseMatrix& m) {
  std::fprintf(f, "%zu %zu %zu\n", m.rows(), m.cols(), m.nnz());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t k = m.row_begin(i); k < m.row_end(i); ++k)
      // Hex floats round-trip doubles exactly.
      std::fprintf(f, "%zu %zu %a\n", i, m.col_index(k), m.value(k));
}

SparseMatrix read_sparse(std::FILE* f, const std::string& path, const char* section) {
  std::size_t rows = 0, cols = 0, nnz = 0;
  if (std::fscanf(f, "%zu %zu %zu", &rows, &cols, &nnz) != 3)
    fail_load(path, section, "missing or unparsable 'rows cols nnz' size line (truncated file?)");
  if (rows == 0 || cols == 0) fail_load(path, section, "zero matrix dimension");
  // Dimension sanity cap: stops a bit-flipped size line from provoking a
  // multi-GB allocation before the entry checks can catch it (and keeps the
  // nnz <= rows * cols product below overflow).
  constexpr std::size_t kMaxDim = 50'000'000;
  if (rows > kMaxDim || cols > kMaxDim)
    fail_load(path, section,
              "implausible dimensions " + std::to_string(rows) + " x " + std::to_string(cols) +
                  " (corrupt size line?)");
  if (nnz > rows * cols)
    fail_load(path, section,
              "entry count " + std::to_string(nnz) + " exceeds " + std::to_string(rows) + " x " +
                  std::to_string(cols) + " (corrupt size line?)");
  SparseBuilder b(rows, cols);
  for (std::size_t t = 0; t < nnz; ++t) {
    std::size_t i = 0, j = 0;
    double v = 0.0;
    if (std::fscanf(f, "%zu %zu %la", &i, &j, &v) != 3)
      fail_load(path, section,
                "file ends or entry is unparsable at entry " + std::to_string(t) + " of " +
                    std::to_string(nnz) + " (truncated file?)");
    if (i >= rows || j >= cols)
      fail_load(path, section,
                "entry index (" + std::to_string(i) + ", " + std::to_string(j) +
                    ") outside the declared " + std::to_string(rows) + " x " +
                    std::to_string(cols) + " shape (bit flip?)");
    if (!std::isfinite(v))
      fail_load(path, section, "non-finite value at entry " + std::to_string(t));
    b.add(i, j, v);
  }
  return SparseMatrix(b);
}

}  // namespace

void save_model(const std::string& path, const SparsifiedModel& model) {
  File f(std::fopen(path.c_str(), "w"));
  SUBSPAR_REQUIRE(f != nullptr);
  std::fprintf(f.get(), "%s\n", kMagic);
  std::fprintf(f.get(), "%ld %a\n", model.solves_used(), model.build_seconds());
  write_sparse(f.get(), model.q());
  write_sparse(f.get(), model.gw());
  SUBSPAR_ENSURE(std::ferror(f.get()) == 0);
}

SparsifiedModel load_model(const std::string& path) {
  File f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) fail_load(path, "file", "cannot open for reading");
  char magic[64] = {};
  if (std::fgets(magic, sizeof magic, f.get()) == nullptr)
    fail_load(path, "header", "empty file");
  if (std::string(magic).rfind(kMagic, 0) != 0)
    fail_load(path, "header",
              "magic line does not start with '" + std::string(kMagic) + "'");
  long solves = 0;
  double seconds = 0.0;
  if (std::fscanf(f.get(), "%ld %la", &solves, &seconds) != 2)
    fail_load(path, "metadata", "missing or unparsable 'solves seconds' line");
  if (solves < 0) fail_load(path, "metadata", "negative solve count");
  if (!std::isfinite(seconds) || seconds < 0.0)
    fail_load(path, "metadata", "invalid build-seconds value");
  SparseMatrix q = read_sparse(f.get(), path, "Q matrix");
  SparseMatrix gw = read_sparse(f.get(), path, "G_w matrix");
  if (q.rows() != q.cols() || gw.rows() != q.cols() || gw.cols() != q.cols())
    fail_load(path, "model",
              "inconsistent shapes: Q is " + std::to_string(q.rows()) + " x " +
                  std::to_string(q.cols()) + ", G_w is " + std::to_string(gw.rows()) + " x " +
                  std::to_string(gw.cols()));
  return SparsifiedModel(std::move(q), std::move(gw), solves, seconds);
}

}  // namespace subspar
