#include "core/io.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>

#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/hash.hpp"

namespace subspar {
namespace {

constexpr const char* kMagicV2 = "subspar-model v2";
constexpr const char* kMagicV1 = "subspar-model v1";
constexpr const char* kFooterPrefix = "checksum fnv1a ";

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

/// `offset` is the byte position the reader had reached when the problem was
/// detected (-1 when no position applies, e.g. the file cannot be opened).
[[noreturn]] void fail_load(const std::string& path, const char* section, long offset,
                            const std::string& detail) {
  const std::string at = offset >= 0 ? " at byte " + std::to_string(offset) : "";
  throw ModelIoError("load_model('" + path + "'): " + section + at + ": " + detail);
}

long tell(std::FILE* f) { return std::ftell(f); }

void write_sparse(std::FILE* f, const SparseMatrix& m) {
  std::fprintf(f, "%zu %zu %zu\n", m.rows(), m.cols(), m.nnz());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t k = m.row_begin(i); k < m.row_end(i); ++k)
      // Hex floats round-trip doubles exactly.
      std::fprintf(f, "%zu %zu %a\n", i, m.col_index(k), m.value(k));
}

SparseMatrix read_sparse(std::FILE* f, const std::string& path, const char* section) {
  std::size_t rows = 0, cols = 0, nnz = 0;
  if (std::fscanf(f, "%zu %zu %zu", &rows, &cols, &nnz) != 3)
    fail_load(path, section, tell(f),
              "missing or unparsable 'rows cols nnz' size line (truncated file?)");
  if (rows == 0 || cols == 0) fail_load(path, section, tell(f), "zero matrix dimension");
  // Dimension sanity cap: stops a bit-flipped size line from provoking a
  // multi-GB allocation before the entry checks can catch it (and keeps the
  // nnz <= rows * cols product below overflow).
  constexpr std::size_t kMaxDim = 50'000'000;
  if (rows > kMaxDim || cols > kMaxDim)
    fail_load(path, section, tell(f),
              "implausible dimensions " + std::to_string(rows) + " x " + std::to_string(cols) +
                  " (corrupt size line?)");
  if (nnz > rows * cols)
    fail_load(path, section, tell(f),
              "entry count " + std::to_string(nnz) + " exceeds " + std::to_string(rows) + " x " +
                  std::to_string(cols) + " (corrupt size line?)");
  SparseBuilder b(rows, cols);
  for (std::size_t t = 0; t < nnz; ++t) {
    std::size_t i = 0, j = 0;
    double v = 0.0;
    if (std::fscanf(f, "%zu %zu %la", &i, &j, &v) != 3)
      fail_load(path, section, tell(f),
                "file ends or entry is unparsable at entry " + std::to_string(t) + " of " +
                    std::to_string(nnz) + " (truncated file?)");
    if (i >= rows || j >= cols)
      fail_load(path, section, tell(f),
                "entry index (" + std::to_string(i) + ", " + std::to_string(j) +
                    ") outside the declared " + std::to_string(rows) + " x " +
                    std::to_string(cols) + " shape (bit flip?)");
    if (!std::isfinite(v))
      fail_load(path, section, tell(f), "non-finite value at entry " + std::to_string(t));
    b.add(i, j, v);
  }
  return SparseMatrix(b);
}

}  // namespace

void save_model(const std::string& path, const SparsifiedModel& model) {
  // Serialize the payload in memory first so the checksum footer covers
  // exactly the bytes that land on disk.
  char* raw = nullptr;
  std::size_t raw_len = 0;
  {
    File mem(open_memstream(&raw, &raw_len));
    SUBSPAR_REQUIRE(mem != nullptr);
    std::fprintf(mem.get(), "%s\n", kMagicV2);
    std::fprintf(mem.get(), "%ld %a\n", model.solves_used(), model.build_seconds());
    write_sparse(mem.get(), model.q());
    write_sparse(mem.get(), model.gw());
    SUBSPAR_ENSURE(std::ferror(mem.get()) == 0);
  }
  const std::unique_ptr<char, void (*)(void*)> payload(raw, &std::free);
  Fnv1a hash;
  hash.bytes(payload.get(), raw_len);

  // Atomic publish: payload + footer go to a temp file which is then renamed
  // over the destination. Readers see either the old complete file or the
  // new complete file, never a torn intermediate.
  const std::string tmp = path + ".tmp";
  {
    File f(std::fopen(tmp.c_str(), "w"));
    if (f == nullptr)
      throw ModelIoError("save_model('" + path + "'): cannot open temp file '" + tmp +
                         "' for writing");
    const std::size_t written =
        raw_len == 0 ? 0 : std::fwrite(payload.get(), 1, raw_len, f.get());
    std::fprintf(f.get(), "%s%s\n", kFooterPrefix, hash.hex().c_str());
    if (written != raw_len || std::fflush(f.get()) != 0 || std::ferror(f.get()) != 0) {
      std::remove(tmp.c_str());
      throw ModelIoError("save_model('" + path + "'): short write to temp file '" + tmp + "'");
    }
  }
  if (fault_fire(FaultSite::kCacheWrite)) {
    // Injected torn write: the temp file dies before the rename, so the
    // destination (if any) keeps its previous complete contents.
    std::remove(tmp.c_str());
    throw ModelIoError("save_model('" + path + "'): injected cache-write fault before publish");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw ModelIoError("save_model('" + path + "'): rename to destination failed: " +
                       ec.message());
  }
}

SparsifiedModel load_model(const std::string& path) {
  std::string data;
  {
    File f(std::fopen(path.c_str(), "rb"));
    if (f == nullptr) fail_load(path, "file", -1, "cannot open for reading");
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f.get())) > 0) data.append(buf, n);
    if (std::ferror(f.get()) != 0)
      fail_load(path, "file", static_cast<long>(data.size()), "read error");
  }
  if (fault_fire(FaultSite::kIo))
    fail_load(path, "file", 0, "injected io fault while reading");
  if (data.empty()) fail_load(path, "header", 0, "empty file");

  const bool v2 = data.rfind(std::string(kMagicV2) + "\n", 0) == 0;
  const bool v1 = !v2 && data.rfind(std::string(kMagicV1) + "\n", 0) == 0;
  if (!v2 && !v1)
    fail_load(path, "header", 0,
              "magic line is neither '" + std::string(kMagicV2) + "' nor the legacy '" +
                  std::string(kMagicV1) + "'");

  // v2 files carry a whole-payload FNV-1a checksum footer; verify it before
  // parsing so a bit flip anywhere in the file is caught even where the
  // per-entry syntax checks would accept the mutated text. Legacy v1 files
  // (pre-checksum) parse without a footer.
  std::string payload = std::move(data);
  if (v2) {
    const std::size_t pos = payload.rfind(kFooterPrefix);
    if (pos == std::string::npos || pos == 0 || payload[pos - 1] != '\n')
      fail_load(path, "checksum footer", static_cast<long>(payload.size()),
                "missing '" + std::string(kFooterPrefix) +
                    "<digest>' footer line (truncated file?)");
    std::string got = payload.substr(pos + std::strlen(kFooterPrefix));
    while (!got.empty() && (got.back() == '\n' || got.back() == '\r')) got.pop_back();
    payload.resize(pos);
    Fnv1a hash;
    hash.bytes(payload.data(), payload.size());
    const std::string want = hash.hex();
    if (got != want)
      fail_load(path, "checksum footer", static_cast<long>(pos),
                "content checksum mismatch over " + std::to_string(payload.size()) +
                    " payload bytes: expected fnv1a " + want + ", got '" + got +
                    "' (bit flip or torn write?)");
  }

  File f(fmemopen(payload.data(), payload.size(), "r"));
  SUBSPAR_REQUIRE(f != nullptr);
  char magic[64] = {};
  if (std::fgets(magic, sizeof magic, f.get()) == nullptr)
    fail_load(path, "header", 0, "empty payload");
  long solves = 0;
  double seconds = 0.0;
  if (std::fscanf(f.get(), "%ld %la", &solves, &seconds) != 2)
    fail_load(path, "metadata", tell(f.get()), "missing or unparsable 'solves seconds' line");
  if (solves < 0) fail_load(path, "metadata", tell(f.get()), "negative solve count");
  if (!std::isfinite(seconds) || seconds < 0.0)
    fail_load(path, "metadata", tell(f.get()), "invalid build-seconds value");
  SparseMatrix q = read_sparse(f.get(), path, "Q matrix");
  SparseMatrix gw = read_sparse(f.get(), path, "G_w matrix");
  if (q.rows() != q.cols() || gw.rows() != q.cols() || gw.cols() != q.cols())
    fail_load(path, "model", tell(f.get()),
              "inconsistent shapes: Q is " + std::to_string(q.rows()) + " x " +
                  std::to_string(q.cols()) + ", G_w is " + std::to_string(gw.rows()) + " x " +
                  std::to_string(gw.cols()));
  return SparsifiedModel(std::move(q), std::move(gw), solves, seconds);
}

}  // namespace subspar
