// Serialization of sparsified substrate models.
//
// Extraction costs O(log n) substrate solves; a downstream circuit-
// simulation flow extracts once and reuses the model across runs. The
// format is a small self-describing text file (exact decimal round trip via
// hex floats).
#pragma once

#include <string>

#include "core/extractor.hpp"

namespace subspar {

/// Writes the model to `path`. Throws on I/O failure.
void save_model(const std::string& path, const SparsifiedModel& model);

/// Reads a model written by save_model. Validates the header and shape.
SparsifiedModel load_model(const std::string& path);

}  // namespace subspar
