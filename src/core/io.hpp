// Serialization of sparsified substrate models.
//
// Extraction costs O(log n) substrate solves; a downstream circuit-
// simulation flow extracts once and reuses the model across runs. The
// format is a small self-describing text file (exact decimal round trip via
// hex floats). The ModelCache (subspar/cache.hpp) persists through this
// layer; key-addressed files are plain save_model output.
//
// File format ("subspar-model v2"): a magic line, a 'solves seconds'
// metadata line, the Q and G_w sparse sections, then a footer line
// 'checksum fnv1a <16 hex digits>' — the FNV-1a digest of every preceding
// byte. save_model writes the whole file to '<path>.tmp' and renames it
// into place, so concurrent readers never observe a torn write. load_model
// verifies the footer before parsing and still accepts footer-less legacy
// "subspar-model v1" files.
#pragma once

#include <stdexcept>
#include <string>

#include "core/extractor.hpp"

namespace subspar {

/// Thrown by load_model for files that cannot be opened or fail validation.
/// The message names the file and the offending section (header, metadata,
/// Q matrix, G_w matrix) plus what went wrong — a truncated download and a
/// bit-flipped index fail loudly instead of producing a silently wrong
/// model. Derives from std::invalid_argument so seed-era catch sites keep
/// working.
class ModelIoError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Writes the model to `path` atomically (temp file + rename) with a
/// whole-file FNV-1a checksum footer. Throws ModelIoError on I/O failure;
/// the destination is never left half-written.
void save_model(const std::string& path, const SparsifiedModel& model);

/// Reads a model written by save_model. Verifies the checksum footer (v2),
/// then validates the header, the metadata, both matrix sections (shape
/// sanity, entry counts, index ranges, finite values), and the
/// cross-section shape consistency; throws ModelIoError naming the
/// offending section, the byte offset reached, and — for checksum
/// mismatches — the expected-vs-got digests.
SparsifiedModel load_model(const std::string& path);

}  // namespace subspar
