#include "core/report.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace subspar {

Vector reconstruct_column(const SparseMatrix& q, const SparseMatrix& gw, std::size_t j) {
  const std::size_t n = q.rows();
  SUBSPAR_REQUIRE(j < n);
  // Q G_w Q' e_j: row j of Q is Q' e_j.
  Vector qtej(q.cols());
  for (std::size_t k = q.row_begin(j); k < q.row_end(j); ++k) qtej[q.col_index(k)] = q.value(k);
  return q.apply(gw.apply(qtej));
}

namespace {

ErrorStats compare_columns(const SparseMatrix& q, const SparseMatrix& gw,
                           const Matrix& g_exact_cols, const std::vector<std::size_t>& col_ids) {
  SUBSPAR_REQUIRE(g_exact_cols.cols() == col_ids.size());
  ErrorStats stats;
  std::size_t above = 0;
  const double gmax = g_exact_cols.max_abs();
  const double floor = kEntryFloorRel * gmax;
  const double significant = kSignificantRel * gmax;
  // Reconstructed columns are independent: fan out over the pool, then
  // reduce in fixed column order (stats are max/counts, so the result is
  // schedule-independent anyway).
  std::vector<Vector> approx_cols(col_ids.size());
  parallel_for(col_ids.size(),
               [&](std::size_t c) { approx_cols[c] = reconstruct_column(q, gw, col_ids[c]); });
  for (std::size_t c = 0; c < col_ids.size(); ++c) {
    const Vector& approx = approx_cols[c];
    for (std::size_t i = 0; i < approx.size(); ++i) {
      const double exact = g_exact_cols(i, c);
      if (std::abs(exact) <= floor) continue;  // below solver resolution
      const double rel = std::abs(approx[i] - exact) / std::abs(exact);
      stats.max_rel_error = std::max(stats.max_rel_error, rel);
      if (std::abs(exact) >= significant)
        stats.max_rel_error_significant = std::max(stats.max_rel_error_significant, rel);
      above += rel > 0.10;
      ++stats.entries;
    }
  }
  stats.frac_above_10pct =
      stats.entries == 0 ? 0.0 : static_cast<double>(above) / static_cast<double>(stats.entries);
  return stats;
}

}  // namespace

ErrorStats reconstruction_error(const SparseMatrix& q, const SparseMatrix& gw,
                                const Matrix& g_exact_cols,
                                const std::vector<std::size_t>& col_ids) {
  return compare_columns(q, gw, g_exact_cols, col_ids);
}

ErrorStats reconstruction_error(const SparseMatrix& q, const SparseMatrix& gw,
                                const Matrix& g_exact) {
  std::vector<std::size_t> cols(g_exact.cols());
  for (std::size_t j = 0; j < cols.size(); ++j) cols[j] = j;
  return compare_columns(q, gw, g_exact, cols);
}

ErrorStats direct_threshold_error(const Matrix& g_exact, double keep_fraction) {
  SUBSPAR_REQUIRE(keep_fraction > 0.0 && keep_fraction <= 1.0);
  const std::size_t n = g_exact.rows();
  std::vector<double> mags;
  mags.reserve(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) mags.push_back(std::abs(g_exact(i, j)));
  const auto keep = static_cast<std::size_t>(keep_fraction * static_cast<double>(mags.size()));
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(keep), mags.end(),
                   std::greater<double>());
  const double cut = mags[keep];

  ErrorStats stats;
  std::size_t above = 0;
  const double gmax = g_exact.max_abs();
  const double floor = kEntryFloorRel * gmax;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double exact = g_exact(i, j);
      if (std::abs(exact) <= floor) continue;
      const double approx = std::abs(exact) > cut ? exact : 0.0;
      const double rel = std::abs(approx - exact) / std::abs(exact);
      stats.max_rel_error = std::max(stats.max_rel_error, rel);
      if (std::abs(exact) >= kSignificantRel * gmax)
        stats.max_rel_error_significant = std::max(stats.max_rel_error_significant, rel);
      above += rel > 0.10;
      ++stats.entries;
    }
  }
  stats.frac_above_10pct =
      stats.entries == 0 ? 0.0 : static_cast<double>(above) / static_cast<double>(stats.entries);
  return stats;
}

}  // namespace subspar
