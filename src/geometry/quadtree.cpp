#include "geometry/quadtree.hpp"

#include <algorithm>
#include <cmath>

#include "transform/fft.hpp"

namespace subspar {

const std::vector<std::size_t> QuadTree::kEmpty{};

namespace {

// Deepest level at which a bounding box [x0, x1) stays inside one square of
// side panels/2^l, over both axes.
int deepest_fitting_level(const Rect& bb, std::size_t panels) {
  int level = 0;
  for (int l = 1; (std::size_t(1) << l) <= panels; ++l) {
    const int side = static_cast<int>(panels >> l);
    if (bb.x0 / side != (bb.x1() - 1) / side) break;
    if (bb.y0 / side != (bb.y1() - 1) / side) break;
    level = l;
  }
  return level;
}

}  // namespace

QuadTree::QuadTree(const Layout& layout, int max_level) : layout_(&layout) {
  SUBSPAR_REQUIRE(layout.panels_x() == layout.panels_y());
  SUBSPAR_REQUIRE(is_power_of_two(layout.panels_x()));
  const std::size_t panels = layout.panels_x();

  int deepest = static_cast<int>(std::round(std::log2(static_cast<double>(panels))));
  for (std::size_t i = 0; i < layout.n_contacts(); ++i)
    deepest = std::min(deepest, deepest_fitting_level(layout.contact(i).bounding_box(), panels));
  if (max_level < 0) {
    max_level_ = deepest;
  } else {
    SUBSPAR_REQUIRE(max_level <= deepest);  // contacts may not cross squares
    max_level_ = max_level;
  }
  SUBSPAR_REQUIRE(max_level_ >= 2);  // the multilevel algorithms start at level 2

  cells_.resize(static_cast<std::size_t>(max_level_) + 1);
  square_lists_.resize(static_cast<std::size_t>(max_level_) + 1);
  home_.resize(layout.n_contacts());

  for (std::size_t i = 0; i < layout.n_contacts(); ++i) {
    const Rect bb = layout.contact(i).bounding_box();
    for (int l = 0; l <= max_level_; ++l) {
      const int side = static_cast<int>(panels >> l);
      const int ix = bb.x0 / side;
      const int iy = bb.y0 / side;
      cells_[static_cast<std::size_t>(l)][{ix, iy}].push_back(i);
      if (l == max_level_) home_[i] = SquareId{l, ix, iy};
    }
  }
  for (int l = 0; l <= max_level_; ++l) {
    auto& list = square_lists_[static_cast<std::size_t>(l)];
    for (const auto& [key, ids] : cells_[static_cast<std::size_t>(l)]) {
      (void)ids;
      list.push_back(SquareId{l, key.first, key.second});
    }
    std::sort(list.begin(), list.end(), [](const SquareId& a, const SquareId& b) {
      return a.iy != b.iy ? a.iy < b.iy : a.ix < b.ix;
    });
  }
}

const std::vector<SquareId>& QuadTree::squares(int level) const {
  SUBSPAR_REQUIRE(level >= 0 && level <= max_level_);
  return square_lists_[static_cast<std::size_t>(level)];
}

const std::vector<std::size_t>& QuadTree::contacts_in(const SquareId& s) const {
  SUBSPAR_REQUIRE(s.level >= 0 && s.level <= max_level_);
  const auto& m = cells_[static_cast<std::size_t>(s.level)];
  const auto it = m.find({s.ix, s.iy});
  return it == m.end() ? kEmpty : it->second;
}

SquareId QuadTree::parent(const SquareId& s) const {
  SUBSPAR_REQUIRE(s.level > 0);
  return SquareId{s.level - 1, s.ix / 2, s.iy / 2};
}

SquareId QuadTree::ancestor(const SquareId& s, int level) const {
  SUBSPAR_REQUIRE(level >= 0 && level <= s.level);
  const int shift = s.level - level;
  return SquareId{level, s.ix >> shift, s.iy >> shift};
}

std::vector<SquareId> QuadTree::children(const SquareId& s) const {
  SUBSPAR_REQUIRE(s.level < max_level_);
  std::vector<SquareId> out;
  for (int dy = 0; dy < 2; ++dy)
    for (int dx = 0; dx < 2; ++dx) {
      const SquareId c{s.level + 1, 2 * s.ix + dx, 2 * s.iy + dy};
      if (!is_empty(c)) out.push_back(c);
    }
  return out;
}

std::pair<double, double> QuadTree::center(const SquareId& s) const {
  const double sz = side(s.level);
  return {(static_cast<double>(s.ix) + 0.5) * sz, (static_cast<double>(s.iy) + 0.5) * sz};
}

double QuadTree::side(int level) const {
  return layout_->width() / static_cast<double>(std::size_t(1) << level);
}

bool QuadTree::adjacent_or_same(const SquareId& a, const SquareId& b) {
  SUBSPAR_REQUIRE(a.level == b.level);
  return std::abs(a.ix - b.ix) <= 1 && std::abs(a.iy - b.iy) <= 1;
}

std::vector<SquareId> QuadTree::interactive(const SquareId& s) const {
  std::vector<SquareId> out;
  if (s.level < 2) return out;  // interactive region empty above level 2
  const SquareId p = parent(s);
  // Children of the parent's 3x3 neighborhood that are not local to s.
  for (int py = p.iy - 1; py <= p.iy + 1; ++py) {
    for (int px = p.ix - 1; px <= p.ix + 1; ++px) {
      if (px < 0 || py < 0 || px >= (1 << (s.level - 1)) || py >= (1 << (s.level - 1))) continue;
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          const SquareId c{s.level, 2 * px + dx, 2 * py + dy};
          if (adjacent_or_same(c, s)) continue;
          if (!is_empty(c)) out.push_back(c);
        }
      }
    }
  }
  return out;
}

std::vector<SquareId> QuadTree::local(const SquareId& s) const {
  std::vector<SquareId> out;
  const int n = 1 << s.level;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      const SquareId c{s.level, s.ix + dx, s.iy + dy};
      if (c.ix < 0 || c.iy < 0 || c.ix >= n || c.iy >= n) continue;
      if (!is_empty(c)) out.push_back(c);
    }
  }
  return out;
}

bool QuadTree::well_separated(const SquareId& a, const SquareId& b) const {
  // Order so a is the coarser (or equal-level) square, then compare a with
  // the level-a ancestor of b (§3.5).
  const SquareId& coarse = a.level <= b.level ? a : b;
  const SquareId& fine = a.level <= b.level ? b : a;
  return !adjacent_or_same(coarse, ancestor(fine, coarse.level));
}

}  // namespace subspar
