// Generators for every contact layout used in the paper's evaluation:
//   * regular grid                      (Fig. 3-6, Examples 1a/1b, Ch.4 Ex.1)
//   * irregular same-size placement     (Fig. 3-7, Example 2)
//   * alternating-size grid             (Fig. 3-8, Ch.3 Ex.3 / Ch.4 Ex.2 / Ex.4)
//   * the six-contact vignette          (Fig. 4-1)
//   * mixed shapes: squares/strips/rings (Fig. 4-8, Ch.4 Ex.3)
//   * large mixed fields                (Fig. 4-10, Example 5)
//
// All generators place contacts inside pitch-4-panel cells so that no
// contact crosses a finest-level quadtree square boundary (the paper's
// splitting convention, §3.2); long thin contacts are emitted pre-split into
// per-cell segments, exactly as the paper prescribes for oversized contacts.
#pragma once

#include <cstdint>

#include "geometry/layout.hpp"

namespace subspar {

/// c x c grid of 2x2-panel contacts on a 4-panel pitch (surface = 4c panels).
/// c must be a power of two >= 4 so the quadtree reaches level 2.
Layout regular_grid_layout(int contacts_per_side, double panel_size = 2.0);

/// Same-size 2x2 contacts on the regular-grid cells, but with randomly
/// dropped sites and a few rectangular void regions (large gaps, Fig. 3-7).
Layout irregular_layout(int cells_per_side, double keep_prob, std::uint64_t seed,
                        double panel_size = 2.0);

/// Rows of cells alternate between large 3x3 and small 1x1 contacts
/// (Fig. 3-8). The mixed sizes are exactly what defeats the wavelet basis.
Layout alternating_size_layout(int cells_per_side, double panel_size = 2.0);

/// Fig. 4-1: source square with one 2x2 and one 3x3 contact (area ratio
/// 2.25), plus a well-separated destination square with four 2x2 contacts.
Layout simple_six_layout(double panel_size = 2.0);

/// Mix of small squares, 4x1 strip segments (split long thin contacts) and
/// 4x4 rings of width 1 (Fig. 4-8).
Layout mixed_shapes_layout(int cells_per_side, std::uint64_t seed, double panel_size = 1.0);

/// Large example: dense fields of small 1x1 contacts at pitch-2 within
/// randomly chosen cells plus interspersed 3x3 contacts (Fig. 4-10).
/// `cells_per_side` cells of 4 panels; each populated cell holds 4 small
/// contacts, so n grows roughly as 4 * fill * cells^2.
Layout large_mixed_layout(int cells_per_side, double fill_prob, std::uint64_t seed,
                          double panel_size = 1.0);

}  // namespace subspar
