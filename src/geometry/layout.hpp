// Contact layout geometry.
//
// The substrate top surface is discretized into square panels (Fig. 2-5).
// A contact is a union of axis-aligned panel rectangles — a single square
// for simple layouts, several parts for the rings and long-thin shapes of
// Example 3 (Fig. 4-8). Every contact is a perfect conductor: one voltage,
// one aggregated current.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace subspar {

/// Axis-aligned rectangle in panel units: panels [x0, x0+w) x [y0, y0+h).
struct Rect {
  int x0 = 0, y0 = 0, w = 0, h = 0;

  int x1() const { return x0 + w; }
  int y1() const { return y0 + h; }
  long panel_count() const { return static_cast<long>(w) * h; }
  bool valid() const { return w > 0 && h > 0; }
  bool overlaps(const Rect& o) const {
    return x0 < o.x1() && o.x0 < x1() && y0 < o.y1() && o.y0 < y1();
  }
};

/// A contact: one or more non-overlapping rectangles forming a single
/// equipotential conductor.
struct Contact {
  std::vector<Rect> parts;

  Contact() = default;
  Contact(int x0, int y0, int w, int h) : parts{{x0, y0, w, h}} {}
  explicit Contact(std::vector<Rect> p) : parts(std::move(p)) {}

  long panel_count() const;
  Rect bounding_box() const;
};

/// The substrate top-surface layout: a panels_x x panels_y grid of square
/// panels of physical side `panel_size`, plus the contact list. Enforces
/// in-bounds, non-degenerate, non-overlapping contacts via an occupancy map.
class Layout {
 public:
  Layout(std::size_t panels_x, std::size_t panels_y, double panel_size);

  /// Adds a contact; returns its index.
  std::size_t add_contact(const Contact& c);

  std::size_t panels_x() const { return px_; }
  std::size_t panels_y() const { return py_; }
  double panel_size() const { return h_; }
  double width() const { return static_cast<double>(px_) * h_; }   ///< physical a
  double height() const { return static_cast<double>(py_) * h_; }  ///< physical b

  std::size_t n_contacts() const { return contacts_.size(); }
  const Contact& contact(std::size_t i) const { return contacts_[i]; }

  /// Physical area of contact i (panel_count * panel_size^2).
  double contact_area(std::size_t i) const;
  /// Physical area centroid of contact i.
  std::pair<double, double> contact_centroid(std::size_t i) const;
  /// Flat panel indices (x + panels_x * y) covered by contact i.
  std::vector<std::size_t> contact_panels(std::size_t i) const;
  /// Owner contact of a panel, or -1 if uncovered.
  int panel_owner(std::size_t x, std::size_t y) const { return owner_[x + px_ * y]; }

  /// ASCII rendering of the occupancy map (for the layout figures).
  std::string ascii() const;

 private:
  std::size_t px_, py_;
  double h_;
  std::vector<Contact> contacts_;
  std::vector<int> owner_;  // -1 = empty
};

}  // namespace subspar
