#include "geometry/moments.hpp"

#include <cmath>

namespace subspar {
namespace {

// int_{u0}^{u1} u^k du
double power_integral(double u0, double u1, int k) {
  const double kk = static_cast<double>(k + 1);
  return (std::pow(u1, k + 1) - std::pow(u0, k + 1)) / kk;
}

double binomial(int n, int k) {
  double r = 1.0;
  for (int i = 1; i <= k; ++i) r = r * static_cast<double>(n - k + i) / static_cast<double>(i);
  return r;
}

}  // namespace

std::size_t moment_count(int p) {
  SUBSPAR_REQUIRE(p >= 0);
  return static_cast<std::size_t>((p + 1) * (p + 2) / 2);
}

std::size_t moment_index(int alpha, int beta) {
  SUBSPAR_REQUIRE(alpha >= 0 && beta >= 0);
  const int order = alpha + beta;
  // Moments of order < `order` occupy order*(order+1)/2 slots; within an
  // order, alpha runs from `order` down to 0.
  return static_cast<std::size_t>(order * (order + 1) / 2 + (order - alpha));
}

Vector contact_moments(const Contact& c, double panel_size, double cx, double cy, int p) {
  Vector m(moment_count(p));
  for (const auto& r : c.parts) {
    const double x0 = static_cast<double>(r.x0) * panel_size - cx;
    const double x1 = static_cast<double>(r.x1()) * panel_size - cx;
    const double y0 = static_cast<double>(r.y0) * panel_size - cy;
    const double y1 = static_cast<double>(r.y1()) * panel_size - cy;
    for (int order = 0; order <= p; ++order) {
      for (int alpha = order; alpha >= 0; --alpha) {
        const int beta = order - alpha;
        m[moment_index(alpha, beta)] +=
            power_integral(x0, x1, alpha) * power_integral(y0, y1, beta);
      }
    }
  }
  return m;
}

Matrix moment_matrix(const Layout& layout, const std::vector<std::size_t>& ids, double cx,
                     double cy, int p) {
  Matrix m(moment_count(p), ids.size());
  for (std::size_t j = 0; j < ids.size(); ++j) {
    const Vector col = contact_moments(layout.contact(ids[j]), layout.panel_size(), cx, cy, p);
    m.set_col(j, col);
  }
  return m;
}

Matrix moment_shift(double tx, double ty, int p) {
  // (x - t)^alpha = sum_k C(alpha,k) x^k (-t)^{alpha-k}; the new-center
  // monomial is a combination of old-center monomials of lower order.
  const std::size_t d = moment_count(p);
  Matrix s(d, d);
  for (int order = 0; order <= p; ++order) {
    for (int alpha = order; alpha >= 0; --alpha) {
      const int beta = order - alpha;
      const std::size_t row = moment_index(alpha, beta);
      for (int k = 0; k <= alpha; ++k) {
        for (int l = 0; l <= beta; ++l) {
          const double coeff = binomial(alpha, k) * binomial(beta, l) *
                               std::pow(-tx, alpha - k) * std::pow(-ty, beta - l);
          s(row, moment_index(k, l)) += coeff;
        }
      }
    }
  }
  return s;
}

}  // namespace subspar
