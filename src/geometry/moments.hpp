// Polynomial contact moments (§3.2.1).
//
// The wavelet basis requires, per square s and voltage function sigma, the
// moments
//   mu_{alpha,beta,s}(sigma) = int_{C_s} x'^alpha y'^beta sigma(x,y) dA,
// with (x', y') relative to the square centroid and alpha + beta <= p. For
// panel-rectangle contacts these integrals are exact polynomials, evaluated
// analytically here. Moment vectors translate between expansion centers
// through the (binomial) shift matrix, which is what lets the coarser-level
// construction reuse child-square moments (§3.4.2).
#pragma once

#include <cstddef>

#include "geometry/layout.hpp"
#include "linalg/matrix.hpp"

namespace subspar {

/// Number of monomials x^a y^b with a + b <= p: (p+1)(p+2)/2.
std::size_t moment_count(int p);

/// Flat index of the (alpha, beta) moment in the canonical ordering
/// (by total order, then descending alpha): (0,0),(1,0),(0,1),(2,0),...
std::size_t moment_index(int alpha, int beta);

/// Moments of the characteristic function of contact `c` (1 V on the
/// contact) about center (cx, cy), orders 0..p. Physical units.
Vector contact_moments(const Contact& c, double panel_size, double cx, double cy, int p);

/// Moment matrix M_s (eq. 3.14): moment_count(p) rows, one column per
/// contact id in `ids`, about center (cx, cy).
Matrix moment_matrix(const Layout& layout, const std::vector<std::size_t>& ids, double cx,
                     double cy, int p);

/// Shift matrix S with moments_about(c + t) = S * moments_about(c), where
/// t = (tx, ty) is the displacement of the *new* center from the old one.
Matrix moment_shift(double tx, double ty, int p);

}  // namespace subspar
