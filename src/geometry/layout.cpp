#include "geometry/layout.hpp"

#include <algorithm>

#include "util/plot.hpp"

namespace subspar {

long Contact::panel_count() const {
  long n = 0;
  for (const auto& r : parts) n += r.panel_count();
  return n;
}

Rect Contact::bounding_box() const {
  SUBSPAR_REQUIRE(!parts.empty());
  int x0 = parts[0].x0, y0 = parts[0].y0, x1 = parts[0].x1(), y1 = parts[0].y1();
  for (const auto& r : parts) {
    x0 = std::min(x0, r.x0);
    y0 = std::min(y0, r.y0);
    x1 = std::max(x1, r.x1());
    y1 = std::max(y1, r.y1());
  }
  return Rect{x0, y0, x1 - x0, y1 - y0};
}

Layout::Layout(std::size_t panels_x, std::size_t panels_y, double panel_size)
    : px_(panels_x), py_(panels_y), h_(panel_size), owner_(panels_x * panels_y, -1) {
  SUBSPAR_REQUIRE(panels_x > 0 && panels_y > 0 && panel_size > 0.0);
}

std::size_t Layout::add_contact(const Contact& c) {
  SUBSPAR_REQUIRE(!c.parts.empty());
  const int id = static_cast<int>(contacts_.size());
  // Validate, then commit; roll back on overlap within this same contact's
  // parts as well (parts must not overlap each other either).
  for (const auto& r : c.parts) {
    SUBSPAR_REQUIRE(r.valid());
    SUBSPAR_REQUIRE(r.x0 >= 0 && r.y0 >= 0);
    SUBSPAR_REQUIRE(static_cast<std::size_t>(r.x1()) <= px_ &&
                    static_cast<std::size_t>(r.y1()) <= py_);
  }
  for (const auto& r : c.parts)
    for (int y = r.y0; y < r.y1(); ++y)
      for (int x = r.x0; x < r.x1(); ++x)
        SUBSPAR_REQUIRE(owner_[static_cast<std::size_t>(x) + px_ * static_cast<std::size_t>(y)] ==
                        -1);
  for (const auto& r : c.parts)
    for (int y = r.y0; y < r.y1(); ++y)
      for (int x = r.x0; x < r.x1(); ++x)
        owner_[static_cast<std::size_t>(x) + px_ * static_cast<std::size_t>(y)] = id;
  contacts_.push_back(c);
  return static_cast<std::size_t>(id);
}

double Layout::contact_area(std::size_t i) const {
  SUBSPAR_REQUIRE(i < contacts_.size());
  return static_cast<double>(contacts_[i].panel_count()) * h_ * h_;
}

std::pair<double, double> Layout::contact_centroid(std::size_t i) const {
  SUBSPAR_REQUIRE(i < contacts_.size());
  double sx = 0.0, sy = 0.0, area = 0.0;
  for (const auto& r : contacts_[i].parts) {
    const double a = static_cast<double>(r.panel_count()) * h_ * h_;
    sx += a * 0.5 * (static_cast<double>(r.x0) + static_cast<double>(r.x1())) * h_;
    sy += a * 0.5 * (static_cast<double>(r.y0) + static_cast<double>(r.y1())) * h_;
    area += a;
  }
  return {sx / area, sy / area};
}

std::vector<std::size_t> Layout::contact_panels(std::size_t i) const {
  SUBSPAR_REQUIRE(i < contacts_.size());
  std::vector<std::size_t> panels;
  panels.reserve(static_cast<std::size_t>(contacts_[i].panel_count()));
  for (const auto& r : contacts_[i].parts)
    for (int y = r.y0; y < r.y1(); ++y)
      for (int x = r.x0; x < r.x1(); ++x)
        panels.push_back(static_cast<std::size_t>(x) + px_ * static_cast<std::size_t>(y));
  return panels;
}

std::string Layout::ascii() const {
  // Render with y increasing downward; distinct glyph classes by contact
  // parity so adjacent contacts are distinguishable.
  return ascii_grid(py_, px_, [this](std::size_t row, std::size_t col) {
    const int o = panel_owner(col, row);
    return o < 0 ? 0 : 1 + (o % 2);
  });
}

}  // namespace subspar
