#include "geometry/layout_gen.hpp"

#include <vector>

#include "transform/fft.hpp"
#include "util/rng.hpp"

namespace subspar {
namespace {

void require_grid(int cells_per_side) {
  SUBSPAR_REQUIRE(cells_per_side >= 4);
  SUBSPAR_REQUIRE(is_power_of_two(static_cast<std::size_t>(cells_per_side)));
}

}  // namespace

Layout regular_grid_layout(int contacts_per_side, double panel_size) {
  require_grid(contacts_per_side);
  const std::size_t panels = static_cast<std::size_t>(contacts_per_side) * 4;
  Layout layout(panels, panels, panel_size);
  for (int cy = 0; cy < contacts_per_side; ++cy)
    for (int cx = 0; cx < contacts_per_side; ++cx)
      layout.add_contact(Contact(4 * cx + 1, 4 * cy + 1, 2, 2));
  return layout;
}

Layout irregular_layout(int cells_per_side, double keep_prob, std::uint64_t seed,
                        double panel_size) {
  require_grid(cells_per_side);
  SUBSPAR_REQUIRE(keep_prob > 0.0 && keep_prob <= 1.0);
  const std::size_t panels = static_cast<std::size_t>(cells_per_side) * 4;
  Layout layout(panels, panels, panel_size);
  Rng rng(seed);

  // A few rectangular void regions create the "many large gaps" of Fig. 3-7.
  struct Void {
    int x0, y0, x1, y1;
  };
  std::vector<Void> voids;
  const int n_voids = 2 + static_cast<int>(rng.below(3));
  for (int v = 0; v < n_voids; ++v) {
    const int w = cells_per_side / 4 + static_cast<int>(rng.below(cells_per_side / 4 + 1));
    const int h = cells_per_side / 4 + static_cast<int>(rng.below(cells_per_side / 4 + 1));
    const int x0 = static_cast<int>(rng.below(static_cast<std::uint64_t>(cells_per_side - w)));
    const int y0 = static_cast<int>(rng.below(static_cast<std::uint64_t>(cells_per_side - h)));
    voids.push_back({x0, y0, x0 + w, y0 + h});
  }

  for (int cy = 0; cy < cells_per_side; ++cy) {
    for (int cx = 0; cx < cells_per_side; ++cx) {
      bool in_void = false;
      for (const auto& v : voids)
        if (cx >= v.x0 && cx < v.x1 && cy >= v.y0 && cy < v.y1) in_void = true;
      if (in_void || rng.uniform() > keep_prob) continue;
      layout.add_contact(Contact(4 * cx + 1, 4 * cy + 1, 2, 2));
    }
  }
  // A layout with too few contacts is a degenerate benchmark; the seeds used
  // by the benches keep several hundred.
  SUBSPAR_ENSURE(layout.n_contacts() >= 16);
  return layout;
}

Layout alternating_size_layout(int cells_per_side, double panel_size) {
  require_grid(cells_per_side);
  const std::size_t panels = static_cast<std::size_t>(cells_per_side) * 4;
  Layout layout(panels, panels, panel_size);
  // Rows alternate 3x3 and 1x1 contacts (9:1 area ratio). The strong size
  // mismatch is what defeats the geometric wavelet basis (Table 3.1 Ex. 3);
  // it also produces heavily shielded small-to-small couplings, so error
  // metrics distinguish the full entry population from the paper-comparable
  // one (>= max/500, see core/report.hpp).
  for (int cy = 0; cy < cells_per_side; ++cy) {
    const bool big_row = (cy % 2 == 0);
    for (int cx = 0; cx < cells_per_side; ++cx) {
      if (big_row) {
        layout.add_contact(Contact(4 * cx, 4 * cy, 3, 3));
      } else {
        layout.add_contact(Contact(4 * cx + 1, 4 * cy + 1, 1, 1));
      }
    }
  }
  return layout;
}

Layout simple_six_layout(double panel_size) {
  // 32x32 panels; level-2 squares are 8 panels. Source square (0,0) holds
  // contacts 1 and 2; destination square (2,1) is interactive to it
  // (separated by a square, parents adjacent).
  Layout layout(32, 32, panel_size);
  layout.add_contact(Contact(1, 1, 2, 2));  // contact 1 (small)
  layout.add_contact(Contact(4, 4, 3, 3));  // contact 2 (2.25x the area)
  // Contacts 3..6 in the destination square [16,24) x [8,16).
  layout.add_contact(Contact(17, 9, 2, 2));
  layout.add_contact(Contact(21, 9, 2, 2));
  layout.add_contact(Contact(17, 13, 2, 2));
  layout.add_contact(Contact(21, 13, 2, 2));
  return layout;
}

Layout mixed_shapes_layout(int cells_per_side, std::uint64_t seed, double panel_size) {
  require_grid(cells_per_side);
  const std::size_t panels = static_cast<std::size_t>(cells_per_side) * 4;
  Layout layout(panels, panels, panel_size);
  Rng rng(seed);
  for (int cy = 0; cy < cells_per_side; ++cy) {
    for (int cx = 0; cx < cells_per_side; ++cx) {
      const int px = 4 * cx, py = 4 * cy;
      switch (rng.below(6)) {
        case 0:  // small square
          layout.add_contact(Contact(px + 1, py + 1, 1, 1));
          break;
        case 1:  // medium square
          layout.add_contact(Contact(px + 1, py + 1, 2, 2));
          break;
        case 2: {  // ring: 4x4 annulus of width 1 (four rect parts)
          Contact ring(std::vector<Rect>{{px, py, 4, 1},
                                         {px, py + 3, 4, 1},
                                         {px, py + 1, 1, 2},
                                         {px + 3, py + 1, 1, 2}});
          layout.add_contact(ring);
          break;
        }
        case 3:  // horizontal strip segment (split long thin contact)
          layout.add_contact(Contact(px, py + 1, 4, 1));
          break;
        case 4:  // vertical strip segment
          layout.add_contact(Contact(px + 1, py, 1, 4));
          break;
        default:  // empty cell
          break;
      }
    }
  }
  SUBSPAR_ENSURE(layout.n_contacts() >= 16);
  return layout;
}

Layout large_mixed_layout(int cells_per_side, double fill_prob, std::uint64_t seed,
                          double panel_size) {
  require_grid(cells_per_side);
  SUBSPAR_REQUIRE(fill_prob > 0.0 && fill_prob <= 1.0);
  const std::size_t panels = static_cast<std::size_t>(cells_per_side) * 4;
  Layout layout(panels, panels, panel_size);
  Rng rng(seed);
  for (int cy = 0; cy < cells_per_side; ++cy) {
    for (int cx = 0; cx < cells_per_side; ++cx) {
      if (rng.uniform() > fill_prob) continue;
      const int px = 4 * cx, py = 4 * cy;
      if (rng.below(8) == 0) {
        // Occasional large contact.
        layout.add_contact(Contact(px, py, 3, 3));
      } else {
        // Field of four small contacts at pitch 2.
        layout.add_contact(Contact(px, py, 1, 1));
        layout.add_contact(Contact(px + 2, py, 1, 1));
        layout.add_contact(Contact(px, py + 2, 1, 1));
        layout.add_contact(Contact(px + 2, py + 2, 1, 1));
      }
    }
  }
  SUBSPAR_ENSURE(layout.n_contacts() >= 16);
  return layout;
}

}  // namespace subspar
