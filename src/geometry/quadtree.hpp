// Multilevel square hierarchy over the substrate surface (§3.2, §4.3).
//
// Level l partitions the surface into 2^l x 2^l squares. Contacts are
// assigned to the finest-level square that contains them (layout generators
// guarantee containment; the constructor verifies it). The tree exposes the
// interactive / local square relations of the low-rank method (Greengard's
// convention, Fig. 4-4) and the cross-level well-separated rule of the
// combine-solves technique (§3.5).
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "geometry/layout.hpp"

namespace subspar {

struct SquareId {
  int level = 0;  ///< 0 = whole surface
  int ix = 0, iy = 0;

  friend bool operator==(const SquareId&, const SquareId&) = default;
  friend auto operator<=>(const SquareId&, const SquareId&) = default;
};

class QuadTree {
 public:
  /// Builds levels 0..max_level. max_level < 0 selects the deepest level at
  /// which no contact crosses a square boundary. The layout surface must be
  /// square with a power-of-two panel count.
  explicit QuadTree(const Layout& layout, int max_level = -1);

  int max_level() const { return max_level_; }
  const Layout& layout() const { return *layout_; }

  /// Non-empty squares on a level, in (iy, ix) scan order.
  const std::vector<SquareId>& squares(int level) const;
  /// Contacts inside a square (empty vector for empty squares).
  const std::vector<std::size_t>& contacts_in(const SquareId& s) const;
  bool is_empty(const SquareId& s) const { return contacts_in(s).empty(); }

  /// Finest-level square owning contact i.
  SquareId home_square(std::size_t contact) const { return home_[contact]; }

  SquareId parent(const SquareId& s) const;
  SquareId ancestor(const SquareId& s, int level) const;
  std::vector<SquareId> children(const SquareId& s) const;  ///< non-empty only

  /// Physical center of a square.
  std::pair<double, double> center(const SquareId& s) const;
  /// Physical side length of level-l squares.
  double side(int level) const;

  /// Same level, Chebyshev distance <= 1 (the "local" relation L_s incl. s).
  static bool adjacent_or_same(const SquareId& a, const SquareId& b);

  /// Interactive squares I_s: same level, not local, parents local (§4.3).
  /// Non-empty squares only.
  std::vector<SquareId> interactive(const SquareId& s) const;
  /// Local squares L_s (including s itself). Non-empty squares only.
  std::vector<SquareId> local(const SquareId& s) const;

  /// Cross-level well-separated rule of §3.5: for levels l <= l', squares s
  /// (level l) and s' (level l') interact weakly iff the level-l ancestor of
  /// s' is neither s nor a neighbor of s. Symmetric in its arguments.
  bool well_separated(const SquareId& a, const SquareId& b) const;

  /// Number of contacts below a square.
  std::size_t contact_count(const SquareId& s) const { return contacts_in(s).size(); }

 private:
  const Layout* layout_;
  int max_level_;
  // Per level: map from (ix, iy) to contact list; squares() caches id lists.
  std::vector<std::map<std::pair<int, int>, std::vector<std::size_t>>> cells_;
  std::vector<std::vector<SquareId>> square_lists_;
  std::vector<SquareId> home_;
  static const std::vector<std::size_t> kEmpty;
};

}  // namespace subspar
