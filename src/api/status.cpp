#include "subspar/status.hpp"

namespace subspar {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidRequest: return "invalid-request";
    case ErrorCode::kSolverNonConvergence: return "solver-non-convergence";
    case ErrorCode::kNumericalBreakdown: return "numerical-breakdown";
    case ErrorCode::kCacheCorruption: return "cache-corruption";
    case ErrorCode::kIoError: return "io-error";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string ExtractionError::message() const {
  std::string out = error_code_name(code);
  if (!phase.empty()) out += " in phase '" + phase + "'";
  if (!detail.empty()) out += ": " + detail;
  return out;
}

std::string Status::message() const { return ok() ? "ok" : error_.message(); }

}  // namespace subspar
