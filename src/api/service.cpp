#include "subspar/service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <map>
#include <stdexcept>
#include <thread>
#include <utility>

#include "api/service.hpp"
#include "subspar/cache.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"
#include "util/sync.hpp"

namespace subspar {
namespace {

using detail::JobState;

/// Deterministic jitter in [0, 1) for (seed, key, attempt): a 53-bit slice
/// of the FNV digest. Pure, so a fault-injected run replays its backoff
/// schedule bit-identically.
double backoff_jitter(std::uint64_t seed, const std::string& key, int attempt) {
  Fnv1a hash;
  hash.u64(seed);
  hash.str(key);
  hash.u64(static_cast<std::uint64_t>(attempt));
  return static_cast<double>(hash.h >> 11) * (1.0 / 9007199254740992.0);  // / 2^53
}

/// Terminal status for a terminal error code.
JobStatus status_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::kCancelled:
      return JobStatus::kCancelled;
    case ErrorCode::kDeadlineExceeded:
      return JobStatus::kDeadlineExpired;
    case ErrorCode::kOverloaded:
      return JobStatus::kShed;
    default:
      return JobStatus::kFailed;
  }
}

}  // namespace

bool error_is_transient(ErrorCode code) {
  return code == ErrorCode::kSolverNonConvergence || code == ErrorCode::kCacheCorruption ||
         code == ErrorCode::kIoError;
}

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued:
      return "queued";
    case JobStatus::kRunning:
      return "running";
    case JobStatus::kSucceeded:
      return "succeeded";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kCancelled:
      return "cancelled";
    case JobStatus::kDeadlineExpired:
      return "deadline-expired";
    case JobStatus::kShed:
      return "shed";
  }
  return "unknown";
}

bool job_status_terminal(JobStatus status) {
  return status != JobStatus::kQueued && status != JobStatus::kRunning;
}

// ---------------------------------------------------------------------------
// ExtractionJob
//
// Condition-variable predicates are explicit while-loops (not lambdas) so the
// thread-safety analysis checks every guarded read against the held lock —
// see util/sync.hpp.

ExtractionJob::ExtractionJob(std::shared_ptr<detail::JobState> state)
    : state_(std::move(state)) {}

const std::string& ExtractionJob::key() const {
  SUBSPAR_REQUIRE(state_ != nullptr);
  return state_->key;
}

Status ExtractionJob::wait() const {
  SUBSPAR_REQUIRE(state_ != nullptr);
  MutexUniqueLock lock(state_->mutex);
  while (!job_status_terminal(state_->status)) state_->cv.wait(lock);
  return state_->status == JobStatus::kSucceeded ? Status() : Status(state_->error);
}

bool ExtractionJob::wait_for(double ms) const {
  SUBSPAR_REQUIRE(state_ != nullptr);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(ms));
  MutexUniqueLock lock(state_->mutex);
  while (!job_status_terminal(state_->status)) {
    if (state_->cv.wait_until(lock, deadline) == std::cv_status::timeout)
      return job_status_terminal(state_->status);
  }
  return true;
}

void ExtractionJob::cancel() const {
  SUBSPAR_REQUIRE(state_ != nullptr);
  state_->token->cancel();
  // Wake a worker parked in a retry backoff for this job (the token itself
  // is polled at the pipeline's cancellation points). The notify happens
  // under the job mutex: the backoff waiter's "check token, then park"
  // sequence holds the mutex throughout, so locking here closes the window
  // where cancel() could fire between the check and the park and the notify
  // would be lost — leaving the worker asleep for the full backoff delay.
  const MutexLock lock(state_->mutex);
  state_->cv.notify_all();
}

JobStatus ExtractionJob::status() const {
  SUBSPAR_REQUIRE(state_ != nullptr);
  const MutexLock lock(state_->mutex);
  return state_->status;
}

JobProgress ExtractionJob::progress() const {
  SUBSPAR_REQUIRE(state_ != nullptr);
  const MutexLock lock(state_->mutex);
  JobProgress out;
  out.status = state_->status;
  out.phase = state_->phase;
  out.attempts = state_->attempts;
  return out;
}

const ExtractionResult& ExtractionJob::result() const {
  SUBSPAR_REQUIRE(state_ != nullptr);
  const MutexLock lock(state_->mutex);
  SUBSPAR_REQUIRE(state_->status == JobStatus::kSucceeded);
  return *state_->result;
}

ExtractionError ExtractionJob::error() const {
  SUBSPAR_REQUIRE(state_ != nullptr);
  const MutexLock lock(state_->mutex);
  return state_->error;
}

std::vector<std::string> ExtractionJob::attempt_history() const {
  SUBSPAR_REQUIRE(state_ != nullptr);
  const MutexLock lock(state_->mutex);
  return state_->attempt_history;
}

// ---------------------------------------------------------------------------
// ExtractionService

struct ExtractionService::Impl {
  ServiceOptions options;
  std::unique_ptr<ModelCache> cache;

  // Admission state: the bounded queue and the in-flight dedup table
  // (key -> job, present from admission until the job goes terminal).
  // Acquired BEFORE any JobState::mutex when both are needed (see
  // api/service.hpp).
  Mutex mutex;
  CondVar work_cv;
  std::deque<std::shared_ptr<JobState>> queue SUBSPAR_GUARDED_BY(mutex);
  std::map<std::string, std::shared_ptr<JobState>> inflight SUBSPAR_GUARDED_BY(mutex);
  bool stopping SUBSPAR_GUARDED_BY(mutex) = false;
  std::vector<std::thread> workers SUBSPAR_GUARDED_BY(mutex);

  std::atomic<std::size_t> accepted{0}, deduped{0}, shed{0}, retried{0}, cancelled{0},
      deadline_expired{0}, succeeded{0}, failed{0}, cache_hits{0};

  void worker_loop() SUBSPAR_EXCLUDES(mutex);
  void run_job(const std::shared_ptr<JobState>& job) SUBSPAR_EXCLUDES(mutex);
  void finish(const std::shared_ptr<JobState>& job, std::optional<ExtractionResult> result,
              ExtractionError error) SUBSPAR_EXCLUDES(mutex);
  bool backoff_wait(const std::shared_ptr<JobState>& job, double delay_ms);
};

ExtractionService::ExtractionService(ServiceOptions options) : impl_(new Impl) {
  SUBSPAR_REQUIRE(options.workers >= 1 && options.queue_capacity >= 1);
  SUBSPAR_REQUIRE(options.retry.max_attempts >= 1);
  impl_->options = std::move(options);
  impl_->cache = impl_->options.persist_dir.empty()
                     ? std::make_unique<ModelCache>()
                     : std::make_unique<ModelCache>(impl_->options.persist_dir);
  if (impl_->options.cache_memory_budget > 0)
    impl_->cache->set_memory_budget(impl_->options.cache_memory_budget);
  // The workers vector is Impl state guarded by Impl::mutex; take the lock
  // even though no worker can race the constructor until it is released —
  // clang's analysis does not exempt accesses to another object's guarded
  // members just because we are in a constructor body, and the uncontended
  // acquisition is free.
  const MutexLock lock(impl_->mutex);
  impl_->workers.reserve(impl_->options.workers);
  for (std::size_t i = 0; i < impl_->options.workers; ++i)
    impl_->workers.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
}

ExtractionService::~ExtractionService() { shutdown(); }

ExtractionJob ExtractionService::submit(std::shared_ptr<const SubstrateSolver> solver,
                                        const Layout& layout, const SubstrateStack& stack,
                                        ExtractionRequest request, SubmitOptions options) {
  // Admission never throws: every rejection is an immediately-terminal job
  // carrying the typed error, so callers handle one shape of outcome.
  auto reject = [&](ErrorCode code, const std::string& phase, const std::string& detail) {
    auto state = std::make_shared<JobState>("", solver, layout, stack, request);
    state->token = options.cancel ? options.cancel : std::make_shared<CancelToken>();
    // The fresh state is not shared yet, but status/error are guarded
    // members; the uncontended lock keeps the analysis airtight.
    const MutexLock lock(state->mutex);
    state->error = ExtractionError{code, phase, detail};
    state->status = status_for(code);
    return ExtractionJob(std::move(state));
  };

  if (!solver) return reject(ErrorCode::kInvalidRequest, "submit", "solver is null");
  try {
    validate(request);
  } catch (const std::exception& e) {
    return reject(ErrorCode::kInvalidRequest, "validate", e.what());
  }
  const std::string key = model_cache_key(layout, stack, request, solver->cache_tag());

  std::shared_ptr<JobState> state;
  {
    const MutexLock lock(impl_->mutex);
    if (impl_->stopping)
      return reject(ErrorCode::kOverloaded, "submit", "service is shut down");
    const auto it = impl_->inflight.find(key);
    if (it != impl_->inflight.end()) {
      // Dedup attach: the caller's handle observes the in-flight job. A
      // per-submit cancel token / deadline is not wired into a shared job —
      // cancelling through the returned handle is.
      impl_->deduped.fetch_add(1, std::memory_order_relaxed);
      return ExtractionJob(it->second);
    }
    if (impl_->queue.size() >= impl_->options.queue_capacity) {
      impl_->shed.fetch_add(1, std::memory_order_relaxed);
      return reject(ErrorCode::kOverloaded, "submit",
                    "queue full (" + std::to_string(impl_->options.queue_capacity) + " jobs)");
    }
    state = std::make_shared<JobState>(key, std::move(solver), layout, stack,
                                       std::move(request));
    state->retry = options.retry ? *options.retry : impl_->options.retry;
    state->token = options.cancel ? options.cancel : std::make_shared<CancelToken>();
    if (options.deadline_ms > 0.0) state->token->set_deadline_after_ms(options.deadline_ms);
    impl_->accepted.fetch_add(1, std::memory_order_relaxed);
    impl_->inflight.emplace(key, state);
    impl_->queue.push_back(state);
  }
  impl_->work_cv.notify_one();
  return ExtractionJob(std::move(state));
}

void ExtractionService::Impl::worker_loop() {
  // Service workers are their own single-threaded lanes: solve fan-outs run
  // inline instead of funnelling through (and blocking behind) the shared
  // SUBSPAR_THREADS pool — see ParallelInlineScope.
  const ParallelInlineScope inline_scope;
  for (;;) {
    std::shared_ptr<JobState> job;
    {
      MutexUniqueLock lock(mutex);
      while (!stopping && queue.empty()) work_cv.wait(lock);
      if (queue.empty()) return;  // stopping, nothing left to drain
      job = std::move(queue.front());
      queue.pop_front();
    }
    run_job(job);
  }
}

void ExtractionService::Impl::run_job(const std::shared_ptr<JobState>& job) {
  {
    const MutexLock lock(job->mutex);
    job->status = JobStatus::kRunning;
  }
  ExtractionError final_error;
  for (int attempt = 1; attempt <= job->retry.max_attempts; ++attempt) {
    {
      const MutexLock lock(job->mutex);
      job->attempts = attempt;
      job->phase.clear();
    }
    ExtractionError err;
    try {
      // The queue fault site ('q'): a transient infrastructure failure
      // between dequeue and attempt start — the retry loop's own test hook.
      if (fault_fire(FaultSite::kQueue))
        throw ExtractionException({ErrorCode::kIoError, "service-queue",
                                   "injected queue fault before attempt " +
                                       std::to_string(attempt)});
      // Covers cancellation/deadline expiry that happened while queued or
      // during a backoff; later checks live inside the pipeline.
      job->token->check("service-attempt");

      ExtractionRequest req = job->request;
      req.cancel = job->token;
      const ProgressCallback user_progress = req.progress;
      const std::weak_ptr<JobState> weak = job;
      req.progress = [user_progress, weak](const std::string& phase, double seconds) {
        if (const auto state = weak.lock()) {
          const MutexLock lock(state->mutex);
          state->phase = phase;
        }
        if (user_progress) user_progress(phase, seconds);
      };

      ExtractionResult result = cache->get_or_extract(*job->solver, job->layout, job->stack, req);
      if (result.report.from_cache) cache_hits.fetch_add(1, std::memory_order_relaxed);
      succeeded.fetch_add(1, std::memory_order_relaxed);
      finish(job, std::move(result), ExtractionError{});
      return;
    } catch (const CancelledError& e) {
      err = ExtractionError{ErrorCode::kCancelled, e.where(), e.what()};
    } catch (const DeadlineExceededError& e) {
      err = ExtractionError{ErrorCode::kDeadlineExceeded, e.where(), e.what()};
    } catch (const ExtractionException& e) {
      err = e.error();
    } catch (const std::invalid_argument& e) {
      err = ExtractionError{ErrorCode::kInvalidRequest, "validate", e.what()};
    } catch (const std::exception& e) {
      err = ExtractionError{ErrorCode::kInternal, "service", e.what()};
    }
    {
      const MutexLock lock(job->mutex);
      job->attempt_history.push_back("attempt " + std::to_string(attempt) + ": " +
                                     err.message());
    }
    if (!error_is_transient(err.code) || attempt == job->retry.max_attempts) {
      final_error = err;
      break;
    }
    retried.fetch_add(1, std::memory_order_relaxed);
    const double delay = job->retry.base_backoff_ms *
                         std::pow(job->retry.multiplier, attempt - 1) *
                         (1.0 + backoff_jitter(options.backoff_jitter_seed, job->key, attempt));
    if (!backoff_wait(job, delay)) {
      // Interrupted: the next iteration's token->check (or the stopping
      // drain) classifies the interruption; keep looping so the final error
      // carries the checkpoint. A stopping service cancels tokens, so this
      // resolves to kCancelled.
      continue;
    }
  }
  if (final_error.code == ErrorCode::kOk)
    final_error = ExtractionError{ErrorCode::kInternal, "service", "retry loop exited"};
  switch (final_error.code) {
    case ErrorCode::kCancelled:
      cancelled.fetch_add(1, std::memory_order_relaxed);
      break;
    case ErrorCode::kDeadlineExceeded:
      deadline_expired.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      failed.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  finish(job, std::nullopt, std::move(final_error));
}

void ExtractionService::Impl::finish(const std::shared_ptr<JobState>& job,
                                     std::optional<ExtractionResult> result,
                                     ExtractionError error) {
  // In-flight erase precedes the terminal transition: a submit racing with a
  // FAILURE can no longer attach to (and inherit) the dead job — it starts a
  // fresh one instead. A submit racing with a success re-extracts through
  // the cache, which already holds the entry, so it degrades to a hit.
  {
    const MutexLock lock(mutex);
    inflight.erase(job->key);
  }
  {
    const MutexLock lock(job->mutex);
    if (result) {
      result->report.attempts = job->attempt_history;
      job->result = std::move(result);
      job->status = JobStatus::kSucceeded;
    } else {
      job->error = std::move(error);
      job->status = status_for(job->error.code);
    }
  }
  job->cv.notify_all();
}

bool ExtractionService::Impl::backoff_wait(const std::shared_ptr<JobState>& job,
                                           double delay_ms) {
  // Sleeps the backoff on the job's cv so cancel() (which notifies it) and
  // shutdown() (which cancels the token) interrupt immediately; a pending
  // deadline caps the wait. Returns false when interrupted. The token check
  // and the park both happen under the job mutex, pairing with the locked
  // notify in ExtractionJob::cancel()/shutdown(): an interrupt can never
  // slip between the check and the wait.
  const auto wake_at =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(delay_ms));
  MutexUniqueLock lock(job->mutex);
  for (;;) {
    if (job->token->cancelled() || job->token->deadline_expired()) return false;
    const auto now = std::chrono::steady_clock::now();
    if (now >= wake_at) return true;
    auto next = wake_at;
    if (job->token->has_deadline()) {
      const auto deadline_wake =
          now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        std::max(0.0, job->token->remaining_ms())));
      next = std::min(next, deadline_wake);
    }
    job->cv.wait_until(lock, next);
  }
}

void ExtractionService::shutdown() {
  std::vector<std::thread> workers;
  {
    const MutexLock lock(impl_->mutex);
    if (impl_->stopping && impl_->workers.empty()) return;
    impl_->stopping = true;
    // Cancel everything still in flight (queued jobs resolve to kCancelled
    // when a worker drains them; running attempts trip their next
    // cancellation point). Completed jobs are unaffected. Each job's cv is
    // notified under that job's mutex — same lost-wakeup reasoning as
    // ExtractionJob::cancel(); the service mutex is acquired first, per the
    // documented lock order.
    for (const auto& [key, job] : impl_->inflight) {
      job->token->cancel();
      const MutexLock job_lock(job->mutex);
      job->cv.notify_all();
    }
    workers.swap(impl_->workers);
  }
  impl_->work_cv.notify_all();
  for (std::thread& worker : workers) worker.join();
}

ServiceStats ExtractionService::stats() const {
  ServiceStats out;
  out.accepted = impl_->accepted.load(std::memory_order_relaxed);
  out.deduped = impl_->deduped.load(std::memory_order_relaxed);
  out.shed = impl_->shed.load(std::memory_order_relaxed);
  out.retried = impl_->retried.load(std::memory_order_relaxed);
  out.cancelled = impl_->cancelled.load(std::memory_order_relaxed);
  out.deadline_expired = impl_->deadline_expired.load(std::memory_order_relaxed);
  out.succeeded = impl_->succeeded.load(std::memory_order_relaxed);
  out.failed = impl_->failed.load(std::memory_order_relaxed);
  out.cache_hits = impl_->cache_hits.load(std::memory_order_relaxed);
  const MutexLock lock(impl_->mutex);
  out.queue_depth = impl_->queue.size();
  out.in_flight = impl_->inflight.size();
  return out;
}

ModelCache& ExtractionService::cache() { return *impl_->cache; }

const ServiceOptions& ExtractionService::options() const { return impl_->options; }

}  // namespace subspar
