#include "subspar/solvers.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "util/sync.hpp"

namespace subspar {
namespace {

struct Registry {
  Mutex mutex;
  std::map<std::string, SolverFactory> factories SUBSPAR_GUARDED_BY(mutex);

  Registry() {
    // Static-init runs single-threaded under the magic-static guard, but
    // factories is a guarded member and the uncontended lock is free.
    const MutexLock lock(mutex);
    factories[solver_kind_name(SolverKind::kSurface)] =
        [](const Layout& l, const SubstrateStack& s, const SolverConfig& c) {
          return make_solver(SolverKind::kSurface, l, s, c);
        };
    factories[solver_kind_name(SolverKind::kFd)] =
        [](const Layout& l, const SubstrateStack& s, const SolverConfig& c) {
          return make_solver(SolverKind::kFd, l, s, c);
        };
    factories[solver_kind_name(SolverKind::kMultigrid)] =
        [](const Layout& l, const SubstrateStack& s, const SolverConfig& c) {
          return make_solver(SolverKind::kMultigrid, l, s, c);
        };
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

const char* solver_kind_name(SolverKind kind) {
  switch (kind) {
    case SolverKind::kSurface:
      return "surface";
    case SolverKind::kFd:
      return "fd";
    case SolverKind::kMultigrid:
      return "multigrid";
  }
  throw std::invalid_argument("solver_kind_name: unknown SolverKind");
}

std::unique_ptr<SubstrateSolver> make_solver(SolverKind kind, const Layout& layout,
                                             const SubstrateStack& stack,
                                             const SolverConfig& config) {
  // config.precision is a one-way override: kMixed turns on refinement for
  // whichever solver the kind selects, kFp64 (the default) defers to the
  // per-solver option so callers can still configure them individually.
  switch (kind) {
    case SolverKind::kSurface: {
      SurfaceSolverOptions options = config.surface;
      if (config.precision == Precision::kMixed) options.precision = Precision::kMixed;
      return std::make_unique<SurfaceSolver>(layout, stack, options);
    }
    case SolverKind::kFd: {
      FdSolverOptions options = config.fd;
      if (config.precision == Precision::kMixed) options.precision = Precision::kMixed;
      return std::make_unique<FdSolver>(layout, stack, options);
    }
    case SolverKind::kMultigrid: {
      FdSolverOptions options = config.fd;
      if (config.precision == Precision::kMixed) options.precision = Precision::kMixed;
      options.precond = FdPreconditioner::kMultigrid;
      return std::make_unique<FdSolver>(layout, stack, options);
    }
  }
  throw std::invalid_argument("make_solver: unknown SolverKind");
}

std::unique_ptr<SubstrateSolver> make_solver(const std::string& name, const Layout& layout,
                                             const SubstrateStack& stack,
                                             const SolverConfig& config) {
  SolverFactory factory;
  {
    Registry& r = registry();
    const MutexLock lock(r.mutex);
    const auto it = r.factories.find(name);
    if (it == r.factories.end()) {
      std::string known;
      for (const auto& [k, _] : r.factories) known += (known.empty() ? "" : ", ") + k;
      throw std::invalid_argument("make_solver: unknown solver '" + name +
                                  "' (registered: " + known + ")");
    }
    factory = it->second;
  }
  return factory(layout, stack, config);
}

void register_solver(const std::string& name, SolverFactory factory) {
  Registry& r = registry();
  const MutexLock lock(r.mutex);
  r.factories[name] = std::move(factory);
}

std::vector<std::string> registered_solvers() {
  Registry& r = registry();
  const MutexLock lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, _] : r.factories) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

}  // namespace subspar
