#include "subspar/extraction.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "linalg/backend.hpp"
#include "linalg/robust.hpp"
#include "lowrank/extract.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"
#include "wavelet/basis.hpp"
#include "wavelet/extract.hpp"
#include "wavelet/pattern.hpp"

namespace subspar {
namespace {

// Phase-boundary guard: numerical garbage must surface as a typed error
// here, never as a silently wrong model downstream.
bool sparse_all_finite(const SparseMatrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t k = m.row_begin(i); k < m.row_end(i); ++k)
      if (!std::isfinite(m.value(k))) return false;
  return true;
}

}  // namespace

void validate(const ExtractionRequest& request) {
  SUBSPAR_REQUIRE(request.moment_order >= 0);
  // (0, 1] would be a silent no-op under the old facade; reject it.
  SUBSPAR_REQUIRE(request.threshold_sparsity_multiple == 0.0 ||
                  request.threshold_sparsity_multiple > 1.0);
  SUBSPAR_REQUIRE(request.lowrank.max_rank >= 1);
  SUBSPAR_REQUIRE(request.lowrank.sigma_rel_tol > 0.0 && request.lowrank.sigma_rel_tol <= 1.0);
  SUBSPAR_REQUIRE(request.lowrank.u_sigma_rel_tol > 0.0 &&
                  request.lowrank.u_sigma_rel_tol <= 1.0);
  SUBSPAR_REQUIRE(request.lowrank.rbk.block_size >= 1);
  SUBSPAR_REQUIRE(request.lowrank.rbk.max_iters >= 1);
  SUBSPAR_REQUIRE(request.lowrank.rbk.target_tol > 0.0 && request.lowrank.rbk.target_tol < 1.0);
}

std::string ExtractionReport::summary() const {
  std::ostringstream out;
  out << "n = " << n << ", solves = " << solves << " (reduction " << solve_reduction
      << "x), sparsity(G_w) = " << gw_sparsity << ", sparsity(Q) = " << q_sparsity;
  if (!basis_scheme.empty()) out << ", basis = " << basis_scheme;
  if (!fallbacks.empty()) out << ", fallbacks = " << fallbacks.size();
  out << ", " << (from_cache ? "cache hit in " : "build = ") << seconds << " s";
  if (!phases.empty()) {
    out << " [";
    for (std::size_t i = 0; i < phases.size(); ++i) {
      out << (i ? ", " : "") << phases[i].phase << " " << phases[i].seconds << " s";
      if (phases[i].solves > 0) out << " / " << phases[i].solves << " solves";
    }
    out << "]";
  }
  return out.str();
}

Extractor::Extractor(const SubstrateSolver& solver, const Layout& layout, int max_level)
    : solver_(&solver) {
  SUBSPAR_REQUIRE(solver.n_contacts() == layout.n_contacts());
  Timer timer;
  owned_tree_ = std::make_unique<QuadTree>(layout, max_level);
  tree_ = owned_tree_.get();
  tree_seconds_ = timer.seconds();
}

Extractor::Extractor(const SubstrateSolver& solver, const QuadTree& tree)
    : solver_(&solver), tree_(&tree) {
  SUBSPAR_REQUIRE(solver.n_contacts() == tree.layout().n_contacts());
}

ExtractionResult Extractor::extract(const ExtractionRequest& request) const {
  validate(request);  // stays a plain std::invalid_argument, outside the wrap
  try {
    return extract_impl(request);
  } catch (const ExtractionException&) {
    throw;
  } catch (const CancelledError& e) {
    throw ExtractionException({ErrorCode::kCancelled, e.where(), e.what()});
  } catch (const DeadlineExceededError& e) {
    throw ExtractionException({ErrorCode::kDeadlineExceeded, e.where(), e.what()});
  } catch (const SolverConvergenceError& e) {
    throw ExtractionException({ErrorCode::kSolverNonConvergence, "solve", e.what()});
  } catch (const std::exception& e) {
    throw ExtractionException({ErrorCode::kInternal, "extract", e.what()});
  }
}

Status Extractor::try_extract(const ExtractionRequest& request,
                              std::optional<ExtractionResult>* out) const {
  SUBSPAR_REQUIRE(out != nullptr);
  out->reset();
  try {
    out->emplace(extract(request));
    return Status();
  } catch (const ExtractionException& e) {
    return Status(e.error());
  } catch (const std::invalid_argument& e) {
    return Status({ErrorCode::kInvalidRequest, "validate", e.what()});
  } catch (const std::exception& e) {
    return Status({ErrorCode::kInternal, "extract", e.what()});
  }
}

ExtractionResult Extractor::extract_impl(const ExtractionRequest& request) const {
  // Install the request's cancellation token for the whole pipeline: the
  // phase boundaries below, every solve batch (substrate/solver.cpp), and
  // the pcg_block / RBK loops all check it through the thread-local scope.
  const CancelScope cancel_scope(request.cancel.get());
  cancellation_point("extract-start");
  ExtractionReport report;
  report.backend = backend_name(active_backend());
  const long solves_before = solver_->solve_count();
  Timer total;
  Timer phase_timer;
  long phase_solves_mark = solves_before;
  SolverDiagnostics diag_mark = solver_->diagnostics();
  const auto phase_done = [&](const char* name) {
    cancellation_point(name);
    const double s = phase_timer.seconds();
    const long solves = solver_->solve_count() - phase_solves_mark;
    const SolverDiagnostics now = solver_->diagnostics();
    PhaseTiming pt;
    pt.phase = name;
    pt.seconds = s;
    pt.solves = solves;
    pt.iterations = now.iterations - diag_mark.iterations;
    const long hits = now.max_iteration_hits - diag_mark.max_iteration_hits;
    const long retries = now.restarts - diag_mark.restarts;
    const long tighter = now.tighter_restarts - diag_mark.tighter_restarts;
    const long direct = now.direct_columns - diag_mark.direct_columns;
    const long nonfinite = now.nonfinite_recoveries - diag_mark.nonfinite_recoveries;
    pt.converged = hits == 0;
    pt.retries = retries;
    pt.fallback_columns = direct;
    if (hits + retries + direct + nonfinite > 0) pt.worst_residual = now.worst_residual;
    report.phases.push_back(pt);
    if (hits > 0) {
      std::ostringstream w;
      w << "phase '" << name << "': " << hits
        << " iterative attempt(s) hit max_iterations; recovered by the fallback chain";
      std::fprintf(stderr, "subspar: warning: %s\n", w.str().c_str());
      report.warnings.push_back(w.str());
    }
    if (retries + direct + nonfinite > 0) {
      std::ostringstream f;
      f << "solver: phase '" << name << "': " << retries << " restart(s) (" << tighter
        << " with a tighter preconditioner), " << direct << " direct-solve column(s), "
        << nonfinite << " non-finite recovery(ies); worst verified residual "
        << now.worst_residual;
      report.fallbacks.push_back(f.str());
    }
    diag_mark = now;
    if (request.progress) request.progress(name, s);
    phase_timer.reset();
    phase_solves_mark = solver_->solve_count();
  };

  SparseMatrix q, gw;
  if (request.method == SparsifyMethod::kWavelet) {
    report.basis_scheme = "wavelet";
    const WaveletBasis basis(*tree_, request.moment_order);
    phase_done("wavelet-basis");
    WaveletExtraction ex = wavelet_extract_combined(*solver_, basis);
    q = basis.q();
    gw = std::move(ex.gws);
    phase_done("combine-extract");
  } else {
    report.basis_scheme = request.lowrank.basis == RowBasisScheme::kBlockKrylov
                              ? "block-krylov"
                              : "column-sampling";
    const RowBasisRep rep(*solver_, *tree_, request.lowrank);
    report.rank_trajectory = rep.trajectory();
    if (rep.rbk_fallback_squares() > 0) {
      std::ostringstream f;
      f << "rbk: " << rep.rbk_fallback_squares()
        << " square(s) never certified and fell back to the deterministic "
           "sampling basis (trajectory rounds max_iters+1/+2)";
      report.fallbacks.push_back(f.str());
    }
    phase_done("row-basis");
    const LowRankBasis basis(rep);
    phase_done("fine-to-coarse");
    gw = lowrank_fill_gw(rep, basis);
    q = basis.q();
    phase_done("gw-fill");
  }
  if (!sparse_all_finite(q) || !sparse_all_finite(gw))
    throw ExtractionException(
        {ErrorCode::kNumericalBreakdown, "assemble",
         "non-finite entries in the assembled Q/G_w factors (numerical garbage "
         "crossed a phase boundary)"});
  if (request.threshold_sparsity_multiple > 1.0) {
    const auto target = static_cast<std::size_t>(static_cast<double>(gw.nnz()) /
                                                 request.threshold_sparsity_multiple);
    gw = threshold_to_nnz(gw, target);
    phase_done("threshold");
  }

  const long solves = solver_->solve_count() - solves_before;
  const double seconds = total.seconds();
  SparsifiedModel model(std::move(q), std::move(gw), solves, seconds);
  report.n = model.q().rows();
  report.solves = solves;
  report.seconds = seconds;
  report.gw_sparsity = model.gw_sparsity_factor();
  report.q_sparsity = model.q_sparsity_factor();
  report.solve_reduction = model.solve_reduction_factor();
  return ExtractionResult{std::move(model), std::move(report)};
}

}  // namespace subspar
