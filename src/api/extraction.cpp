#include "subspar/extraction.hpp"

#include <sstream>
#include <utility>

#include "lowrank/extract.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"
#include "wavelet/basis.hpp"
#include "wavelet/extract.hpp"
#include "wavelet/pattern.hpp"

namespace subspar {

void validate(const ExtractionRequest& request) {
  SUBSPAR_REQUIRE(request.moment_order >= 0);
  // (0, 1] would be a silent no-op under the old facade; reject it.
  SUBSPAR_REQUIRE(request.threshold_sparsity_multiple == 0.0 ||
                  request.threshold_sparsity_multiple > 1.0);
  SUBSPAR_REQUIRE(request.lowrank.max_rank >= 1);
  SUBSPAR_REQUIRE(request.lowrank.sigma_rel_tol > 0.0 && request.lowrank.sigma_rel_tol <= 1.0);
  SUBSPAR_REQUIRE(request.lowrank.u_sigma_rel_tol > 0.0 &&
                  request.lowrank.u_sigma_rel_tol <= 1.0);
  SUBSPAR_REQUIRE(request.lowrank.rbk.block_size >= 1);
  SUBSPAR_REQUIRE(request.lowrank.rbk.max_iters >= 1);
  SUBSPAR_REQUIRE(request.lowrank.rbk.target_tol > 0.0 && request.lowrank.rbk.target_tol < 1.0);
}

std::string ExtractionReport::summary() const {
  std::ostringstream out;
  out << "n = " << n << ", solves = " << solves << " (reduction " << solve_reduction
      << "x), sparsity(G_w) = " << gw_sparsity << ", sparsity(Q) = " << q_sparsity;
  if (!basis_scheme.empty()) out << ", basis = " << basis_scheme;
  out << ", " << (from_cache ? "cache hit in " : "build = ") << seconds << " s";
  if (!phases.empty()) {
    out << " [";
    for (std::size_t i = 0; i < phases.size(); ++i) {
      out << (i ? ", " : "") << phases[i].phase << " " << phases[i].seconds << " s";
      if (phases[i].solves > 0) out << " / " << phases[i].solves << " solves";
    }
    out << "]";
  }
  return out.str();
}

Extractor::Extractor(const SubstrateSolver& solver, const Layout& layout, int max_level)
    : solver_(&solver) {
  SUBSPAR_REQUIRE(solver.n_contacts() == layout.n_contacts());
  Timer timer;
  owned_tree_ = std::make_unique<QuadTree>(layout, max_level);
  tree_ = owned_tree_.get();
  tree_seconds_ = timer.seconds();
}

Extractor::Extractor(const SubstrateSolver& solver, const QuadTree& tree)
    : solver_(&solver), tree_(&tree) {
  SUBSPAR_REQUIRE(solver.n_contacts() == tree.layout().n_contacts());
}

ExtractionResult Extractor::extract(const ExtractionRequest& request) const {
  validate(request);
  ExtractionReport report;
  const long solves_before = solver_->solve_count();
  Timer total;
  Timer phase_timer;
  long phase_solves_mark = solves_before;
  const auto phase_done = [&](const char* name) {
    const double s = phase_timer.seconds();
    const long solves = solver_->solve_count() - phase_solves_mark;
    report.phases.push_back({name, s, solves});
    if (request.progress) request.progress(name, s);
    phase_timer.reset();
    phase_solves_mark = solver_->solve_count();
  };

  SparseMatrix q, gw;
  if (request.method == SparsifyMethod::kWavelet) {
    report.basis_scheme = "wavelet";
    const WaveletBasis basis(*tree_, request.moment_order);
    phase_done("wavelet-basis");
    WaveletExtraction ex = wavelet_extract_combined(*solver_, basis);
    q = basis.q();
    gw = std::move(ex.gws);
    phase_done("combine-extract");
  } else {
    report.basis_scheme = request.lowrank.basis == RowBasisScheme::kBlockKrylov
                              ? "block-krylov"
                              : "column-sampling";
    const RowBasisRep rep(*solver_, *tree_, request.lowrank);
    report.rank_trajectory = rep.trajectory();
    phase_done("row-basis");
    const LowRankBasis basis(rep);
    phase_done("fine-to-coarse");
    gw = lowrank_fill_gw(rep, basis);
    q = basis.q();
    phase_done("gw-fill");
  }
  if (request.threshold_sparsity_multiple > 1.0) {
    const auto target = static_cast<std::size_t>(static_cast<double>(gw.nnz()) /
                                                 request.threshold_sparsity_multiple);
    gw = threshold_to_nnz(gw, target);
    phase_done("threshold");
  }

  const long solves = solver_->solve_count() - solves_before;
  const double seconds = total.seconds();
  SparsifiedModel model(std::move(q), std::move(gw), solves, seconds);
  report.n = model.q().rows();
  report.solves = solves;
  report.seconds = seconds;
  report.gw_sparsity = model.gw_sparsity_factor();
  report.q_sparsity = model.q_sparsity_factor();
  report.solve_reduction = model.solve_reduction_factor();
  return ExtractionResult{std::move(model), std::move(report)};
}

}  // namespace subspar
