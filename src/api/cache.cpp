#include "subspar/cache.hpp"

#include <filesystem>
#include <utility>

#include "core/io.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace subspar {
namespace {

/// Renames a corrupt persisted model to '<path>.quarantined' (keeping only
/// the most recent specimen) so it can be examined post-mortem instead of
/// being silently overwritten. Rename failures are swallowed — quarantine
/// is best-effort and must never turn a recoverable corruption into an
/// error; the fresh extraction overwrites the bad file in that case.
bool quarantine(const std::string& path) {
  std::error_code ec;
  const std::string aside = path + ".quarantined";
  std::filesystem::remove(aside, ec);
  ec.clear();
  std::filesystem::rename(path, aside, ec);
  return !ec;
}

ExtractionReport hit_report(const SparsifiedModel& model, double lookup_seconds) {
  ExtractionReport report;
  report.n = model.q().rows();
  report.solves = 0;
  report.seconds = lookup_seconds;
  report.gw_sparsity = model.gw_sparsity_factor();
  report.q_sparsity = model.q_sparsity_factor();
  report.solve_reduction = model.solve_reduction_factor();
  report.from_cache = true;
  return report;
}

}  // namespace

std::string model_cache_key(const Layout& layout, const SubstrateStack& stack,
                            const ExtractionRequest& request, const std::string& solver_tag) {
  Fnv1a hash;
  hash.str(solver_tag);
  hash.str(substrate_fingerprint(layout, stack));

  hash.u64(request.method == SparsifyMethod::kWavelet ? 0 : 1);
  hash.i64(request.moment_order);
  hash.f64(request.lowrank.sigma_rel_tol);
  hash.u64(request.lowrank.max_rank);
  hash.f64(request.lowrank.u_sigma_rel_tol);
  hash.u64(request.lowrank.seed);
  // The row-basis scheme and every RBK knob digest unconditionally (not just
  // when basis == kBlockKrylov): keys must separate any two requests whose
  // option structs differ, so entries never alias across schemes.
  hash.u64(request.lowrank.basis == RowBasisScheme::kBlockKrylov ? 1 : 0);
  hash.u64(request.lowrank.rbk.block_size);
  hash.u64(request.lowrank.rbk.max_iters);
  hash.f64(request.lowrank.rbk.target_tol);
  hash.f64(request.threshold_sparsity_multiple);
  return hash.hex();
}

ModelCache::ModelCache(std::string persist_dir) : persist_dir_(std::move(persist_dir)) {
  SUBSPAR_REQUIRE(!persist_dir_.empty());
  std::filesystem::create_directories(persist_dir_);
}

std::string ModelCache::persist_path(const std::string& key) const {
  return (std::filesystem::path(persist_dir_) / ("model-" + key + ".txt")).string();
}

ExtractionResult ModelCache::get_or_extract(const SubstrateSolver& solver, const Layout& layout,
                                            const SubstrateStack& stack,
                                            const ExtractionRequest& request) {
  validate(request);
  SUBSPAR_REQUIRE(solver.n_contacts() == layout.n_contacts());
  const std::string key = model_cache_key(layout, stack, request, solver.cache_tag());
  Timer timer;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      ExtractionReport report = hit_report(it->second.model, timer.seconds());
      report.cache.hits = 1;
      return ExtractionResult{it->second.model, std::move(report)};
    }
  }
  CacheEvents events;  // events of this request, folded into stats_ at the end
  std::string corrupt_note;
  if (!persist_dir_.empty()) {
    const std::string path = persist_path(key);
    if (std::filesystem::exists(path)) {
      try {
        if (fault_fire(FaultSite::kCacheRead))
          throw ModelIoError("get_or_extract: injected cache-read fault on '" + path + "'");
        SparsifiedModel model = load_model(path);
        // A renamed/copied file can be internally consistent yet belong to
        // a different extraction; size it against the requesting solver and
        // treat a mismatch like any other corrupt file (fresh extraction).
        SUBSPAR_REQUIRE(model.q().rows() == solver.n_contacts());
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.hits;
        ++stats_.disk_loads;
        ExtractionReport report = hit_report(model, timer.seconds());
        report.cache.hits = 1;
        report.cache.disk_loads = 1;
        auto [it, inserted] = entries_.insert_or_assign(key, Entry{std::move(model)});
        (void)inserted;
        return ExtractionResult{it->second.model, std::move(report)};
      } catch (const std::exception& e) {
        // Corrupt, truncated, bit-flipped, torn, or mismatched persisted
        // model: quarantine the file for post-mortem, then fall through to
        // a fresh extraction, which publishes a good file under the
        // original name. The caller sees counters and a fallbacks line,
        // never an error.
        ++events.corruptions;
        if (quarantine(path)) ++events.quarantines;
        corrupt_note =
            "cache: quarantined corrupt model file '" + path + "' (" + e.what() +
            "); re-extracted";
      }
    }
  }

  ExtractionResult result = Extractor(solver, layout).extract(request);
  if (!persist_dir_.empty()) {
    try {
      save_model(persist_path(key), result.model);
    } catch (const std::exception&) {
      // An unwritable persist directory must not discard a successful
      // extraction: keep serving from memory, retry the write on the next
      // miss of this key (if any).
      ++events.write_failures;
    }
  }
  events.misses = 1;
  result.report.cache = events;
  if (!corrupt_note.empty()) result.report.fallbacks.push_back(corrupt_note);
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  stats_.corruptions += events.corruptions;
  stats_.quarantines += events.quarantines;
  stats_.write_failures += events.write_failures;
  entries_.insert_or_assign(key, Entry{result.model});
  return result;
}

bool ModelCache::contains(const SubstrateSolver& solver, const Layout& layout,
                          const SubstrateStack& stack, const ExtractionRequest& request) const {
  const std::string key = model_cache_key(layout, stack, request, solver.cache_tag());
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(key) != entries_.end();
}

std::size_t ModelCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ModelCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

CacheStats ModelCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace subspar
