#include "subspar/cache.hpp"

#include <filesystem>
#include <utility>

#include "core/io.hpp"
#include "linalg/backend.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/hash.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace subspar {
namespace {

/// Renames a corrupt persisted model aside for post-mortem. The suffix is
/// monotonic ('<path>.quarantined.1', '.2', ...): repeated corruption of the
/// same key preserves every specimen instead of silently overwriting the
/// earlier evidence. Rename failures are swallowed — quarantine is
/// best-effort and must never turn a recoverable corruption into an error;
/// the fresh extraction overwrites the bad file in that case.
bool quarantine(const std::string& path) {
  std::error_code ec;
  for (int n = 1; n < 10000; ++n) {
    const std::string aside = path + ".quarantined." + std::to_string(n);
    if (std::filesystem::exists(aside, ec)) continue;
    ec.clear();
    std::filesystem::rename(path, aside, ec);
    return !ec;
  }
  return false;
}

ExtractionReport hit_report(const SparsifiedModel& model, double lookup_seconds) {
  ExtractionReport report;
  report.n = model.q().rows();
  report.solves = 0;
  report.seconds = lookup_seconds;
  report.gw_sparsity = model.gw_sparsity_factor();
  report.q_sparsity = model.q_sparsity_factor();
  report.solve_reduction = model.solve_reduction_factor();
  report.from_cache = true;
  // Provenance of this process's kernels, not of the cached model: the
  // backend is not part of the cache key (it never changes results beyond
  // solver tolerance), so a hit is valid under any backend.
  report.backend = backend_name(active_backend());
  return report;
}

}  // namespace

std::string model_cache_key(const Layout& layout, const SubstrateStack& stack,
                            const ExtractionRequest& request, const std::string& solver_tag) {
  Fnv1a hash;
  hash.str(solver_tag);
  hash.str(substrate_fingerprint(layout, stack));

  hash.u64(request.method == SparsifyMethod::kWavelet ? 0 : 1);
  hash.i64(request.moment_order);
  hash.f64(request.lowrank.sigma_rel_tol);
  hash.u64(request.lowrank.max_rank);
  hash.f64(request.lowrank.u_sigma_rel_tol);
  hash.u64(request.lowrank.seed);
  // The row-basis scheme and every RBK knob digest unconditionally (not just
  // when basis == kBlockKrylov): keys must separate any two requests whose
  // option structs differ, so entries never alias across schemes.
  hash.u64(request.lowrank.basis == RowBasisScheme::kBlockKrylov ? 1 : 0);
  hash.u64(request.lowrank.rbk.block_size);
  hash.u64(request.lowrank.rbk.max_iters);
  hash.f64(request.lowrank.rbk.target_tol);
  hash.f64(request.threshold_sparsity_multiple);
  return hash.hex();
}

std::size_t model_memory_bytes(const SparsifiedModel& model) {
  // CSR storage: one value + one column index per nonzero, one row offset
  // per row, for each of the two factors.
  const std::size_t per_nnz = sizeof(double) + sizeof(std::size_t);
  return (model.q().nnz() + model.gw().nnz()) * per_nnz +
         (model.q().rows() + model.gw().rows() + 2) * sizeof(std::size_t);
}

ModelCache::ModelCache(std::string persist_dir) : persist_dir_(std::move(persist_dir)) {
  SUBSPAR_REQUIRE(!persist_dir_.empty());
  std::filesystem::create_directories(persist_dir_);
}

std::size_t ModelCache::shard_index(const std::string& key) const {
  Fnv1a hash;
  hash.str(key);
  return static_cast<std::size_t>(hash.h % kShards);
}

std::string ModelCache::persist_path(const std::string& key) const {
  return (std::filesystem::path(persist_dir_) / ("model-" + key + ".txt")).string();
}

void ModelCache::insert_entry(const std::string& key, const SparsifiedModel& model) {
  Shard& shard = shards_[shard_index(key)];
  const std::size_t bytes = model_memory_bytes(model);
  const std::uint64_t tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    const ExclusiveLock lock(shard.mutex);
    const auto [it, inserted] = shard.entries.try_emplace(key, model, bytes, tick);
    if (!inserted) {
      // Concurrent misses of one key both extract (documented); the first
      // insert wins — identical bits either way by determinism — and the
      // loser just refreshes recency.
      it->second.last_used.store(tick, std::memory_order_relaxed);
      return;
    }
  }
  bytes_.fetch_add(bytes, std::memory_order_acq_rel);
  evict_to_budget();
}

void ModelCache::evict_to_budget() {
  const std::size_t budget = memory_budget_.load(std::memory_order_acquire);
  if (budget == 0) return;
  while (bytes_.load(std::memory_order_acquire) > budget) {
    // Global LRU victim: scan every shard under shared locks for the oldest
    // tick. O(entries), but eviction is rare relative to hits and the
    // entry count at any sane budget is small.
    std::size_t victim_shard = kShards;
    std::string victim_key;
    std::uint64_t victim_tick = ~std::uint64_t{0};
    std::size_t total_entries = 0;
    for (std::size_t s = 0; s < kShards; ++s) {
      // Local shard reference: the analysis ties the lock expression and the
      // guarded accesses to the same variable.
      const Shard& scan = shards_[s];
      const SharedLock lock(scan.mutex);
      total_entries += scan.entries.size();
      for (const auto& [key, entry] : scan.entries) {
        const std::uint64_t t = entry.last_used.load(std::memory_order_relaxed);
        if (t < victim_tick) {
          victim_tick = t;
          victim_key = key;
          victim_shard = s;
        }
      }
    }
    // Never evict the last entry: one model larger than the budget still
    // serves (the budget bounds the tail, not the working item).
    if (victim_shard == kShards || total_entries <= 1) return;
    Shard& shard = shards_[victim_shard];
    const ExclusiveLock lock(shard.mutex);
    const auto it = shard.entries.find(victim_key);
    if (it == shard.entries.end()) continue;  // raced with clear(); rescan
    bytes_.fetch_sub(it->second.bytes, std::memory_order_acq_rel);
    shard.entries.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

ExtractionResult ModelCache::get_or_extract(const SubstrateSolver& solver, const Layout& layout,
                                            const SubstrateStack& stack,
                                            const ExtractionRequest& request) {
  validate(request);
  SUBSPAR_REQUIRE(solver.n_contacts() == layout.n_contacts());
  const std::string key = model_cache_key(layout, stack, request, solver.cache_tag());
  Timer timer;
  {
    Shard& shard = shards_[shard_index(key)];
    const SharedLock lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      it->second.last_used.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                                 std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      ExtractionReport report = hit_report(it->second.model, timer.seconds());
      report.cache.hits = 1;
      return ExtractionResult{it->second.model, std::move(report)};
    }
  }
  CacheEvents events;  // events of this request, folded into the counters at the end
  std::string corrupt_note;
  if (!persist_dir_.empty()) {
    const std::string path = persist_path(key);
    if (std::filesystem::exists(path)) {
      try {
        if (fault_fire(FaultSite::kCacheRead))
          throw ModelIoError("get_or_extract: injected cache-read fault on '" + path + "'");
        SparsifiedModel model = load_model(path);
        // A renamed/copied file can be internally consistent yet belong to
        // a different extraction; size it against the requesting solver and
        // treat a mismatch like any other corrupt file (fresh extraction).
        SUBSPAR_REQUIRE(model.q().rows() == solver.n_contacts());
        hits_.fetch_add(1, std::memory_order_relaxed);
        disk_loads_.fetch_add(1, std::memory_order_relaxed);
        ExtractionReport report = hit_report(model, timer.seconds());
        report.cache.hits = 1;
        report.cache.disk_loads = 1;
        insert_entry(key, model);
        return ExtractionResult{std::move(model), std::move(report)};
      } catch (const std::exception& e) {
        // Corrupt, truncated, bit-flipped, torn, or mismatched persisted
        // model: quarantine the file for post-mortem, then fall through to
        // a fresh extraction, which publishes a good file under the
        // original name. The caller sees counters and a fallbacks line,
        // never an error.
        ++events.corruptions;
        if (quarantine(path)) ++events.quarantines;
        corrupt_note =
            "cache: quarantined corrupt model file '" + path + "' (" + e.what() +
            "); re-extracted";
      }
    }
  }

  ExtractionResult result = Extractor(solver, layout).extract(request);
  if (!persist_dir_.empty()) {
    try {
      save_model(persist_path(key), result.model);
    } catch (const std::exception&) {
      // An unwritable persist directory must not discard a successful
      // extraction: keep serving from memory, retry the write on the next
      // miss of this key (if any).
      ++events.write_failures;
    }
  }
  events.misses = 1;
  result.report.cache = events;
  if (!corrupt_note.empty()) result.report.fallbacks.push_back(corrupt_note);
  misses_.fetch_add(1, std::memory_order_relaxed);
  corruptions_.fetch_add(events.corruptions, std::memory_order_relaxed);
  quarantines_.fetch_add(events.quarantines, std::memory_order_relaxed);
  write_failures_.fetch_add(events.write_failures, std::memory_order_relaxed);
  insert_entry(key, result.model);
  return result;
}

bool ModelCache::contains(const SubstrateSolver& solver, const Layout& layout,
                          const SubstrateStack& stack, const ExtractionRequest& request) const {
  const std::string key = model_cache_key(layout, stack, request, solver.cache_tag());
  const Shard& shard = shards_[shard_index(key)];
  const SharedLock lock(shard.mutex);
  return shard.entries.find(key) != shard.entries.end();
}

void ModelCache::set_memory_budget(std::size_t bytes) {
  memory_budget_.store(bytes, std::memory_order_release);
  evict_to_budget();
}

std::size_t ModelCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const SharedLock lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

void ModelCache::clear() {
  for (Shard& shard : shards_) {
    const ExclusiveLock lock(shard.mutex);
    for (const auto& [key, entry] : shard.entries)
      bytes_.fetch_sub(entry.bytes, std::memory_order_acq_rel);
    shard.entries.clear();
  }
}

CacheStats ModelCache::stats() const {
  CacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.disk_loads = disk_loads_.load(std::memory_order_relaxed);
  out.corruptions = corruptions_.load(std::memory_order_relaxed);
  out.quarantines = quarantines_.load(std::memory_order_relaxed);
  out.write_failures = write_failures_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace subspar
