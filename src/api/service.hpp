// Internal: the shared per-job state behind ExtractionJob handles.
//
// One JobState exists per admitted key (deduplicated submissions share it via
// shared_ptr). The immutable top section is written once at submit(); the
// mutable section below `mutex` is the single source of truth for the job's
// lifecycle — workers write it, handles read it, and `cv` releases every
// waiter exactly once when the job reaches a terminal status.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "geometry/layout.hpp"
#include "substrate/solver.hpp"
#include "substrate/stack.hpp"
#include "subspar/extraction.hpp"
#include "subspar/service.hpp"
#include "util/cancel.hpp"

namespace subspar::detail {

struct JobState {
  // --- immutable after submit() ---------------------------------------
  std::string key;  ///< ModelCache content hash; the dedup identity
  std::shared_ptr<const SubstrateSolver> solver;
  Layout layout;
  SubstrateStack stack;
  ExtractionRequest request;  ///< as submitted; the worker re-threads cancel/progress
  RetryPolicy retry;
  /// The job's cancellation token: the caller's (SubmitOptions::cancel) or
  /// one minted at submit. The deadline, if any, is armed on it at submit
  /// time so expiry covers queue wait as well as the attempts.
  std::shared_ptr<CancelToken> token;

  // --- lifecycle (guarded by mutex; cv signalled on every transition) --
  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  JobStatus status = JobStatus::kQueued;
  std::string phase;  ///< last completed pipeline phase of the current attempt
  int attempts = 0;   ///< attempts started
  std::vector<std::string> attempt_history;  ///< one line per failed attempt
  std::optional<ExtractionResult> result;    ///< set iff status == kSucceeded
  ExtractionError error;                     ///< set iff terminally failed

  JobState(std::string key_, std::shared_ptr<const SubstrateSolver> solver_, Layout layout_,
           SubstrateStack stack_, ExtractionRequest request_)
      : key(std::move(key_)),
        solver(std::move(solver_)),
        layout(std::move(layout_)),
        stack(std::move(stack_)),
        request(std::move(request_)) {}
};

}  // namespace subspar::detail
