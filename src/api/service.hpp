// Internal: the shared per-job state behind ExtractionJob handles.
//
// One JobState exists per admitted key (deduplicated submissions share it via
// shared_ptr). The immutable top section is written once at submit(); the
// mutable section below `mutex` is the single source of truth for the job's
// lifecycle — workers write it, handles read it, and `cv` releases every
// waiter exactly once when the job reaches a terminal status. The lifecycle
// fields carry SUBSPAR_GUARDED_BY(mutex) capability annotations: a clang
// -Wthread-safety build proves every access takes the lock.
//
// Lock ordering: when ExtractionService::Impl::mutex and a JobState::mutex
// are both needed, the service mutex is acquired FIRST (shutdown iterates
// the in-flight table and pokes each job's cv under both). No path acquires
// them in the reverse order — finish() takes them strictly in sequence.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "geometry/layout.hpp"
#include "substrate/solver.hpp"
#include "substrate/stack.hpp"
#include "subspar/extraction.hpp"
#include "subspar/service.hpp"
#include "util/cancel.hpp"
#include "util/sync.hpp"

namespace subspar::detail {

struct JobState {
  // --- immutable after submit() ---------------------------------------
  std::string key;  ///< ModelCache content hash; the dedup identity
  std::shared_ptr<const SubstrateSolver> solver;
  Layout layout;
  SubstrateStack stack;
  ExtractionRequest request;  ///< as submitted; the worker re-threads cancel/progress
  RetryPolicy retry;
  /// The job's cancellation token: the caller's (SubmitOptions::cancel) or
  /// one minted at submit. The deadline, if any, is armed on it at submit
  /// time so expiry covers queue wait as well as the attempts.
  std::shared_ptr<CancelToken> token;

  // --- lifecycle (guarded by mutex; cv signalled on every transition) --
  mutable Mutex mutex;
  mutable CondVar cv;
  JobStatus status SUBSPAR_GUARDED_BY(mutex) = JobStatus::kQueued;
  /// Last completed pipeline phase of the current attempt.
  std::string phase SUBSPAR_GUARDED_BY(mutex);
  int attempts SUBSPAR_GUARDED_BY(mutex) = 0;  ///< attempts started
  /// One line per failed attempt.
  std::vector<std::string> attempt_history SUBSPAR_GUARDED_BY(mutex);
  /// Set iff status == kSucceeded.
  std::optional<ExtractionResult> result SUBSPAR_GUARDED_BY(mutex);
  ExtractionError error SUBSPAR_GUARDED_BY(mutex);  ///< set iff terminally failed

  JobState(std::string key_, std::shared_ptr<const SubstrateSolver> solver_, Layout layout_,
           SubstrateStack stack_, ExtractionRequest request_)
      : key(std::move(key_)),
        solver(std::move(solver_)),
        layout(std::move(layout_)),
        stack(std::move(stack_)),
        request(std::move(request_)) {}
};

}  // namespace subspar::detail
