#include "lowrank/fine_to_coarse.hpp"
#include <algorithm>

#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "util/check.hpp"

namespace subspar {
namespace {

std::map<SquareId, SquareBasis> sweep(const RowBasisRep& rep) {
  const QuadTree& tree = rep.tree();
  const LowRankOptions& opt = rep.options();
  std::map<SquareId, SquareBasis> squares;

  // Finest level: U = V (row basis), T = W (its complement).
  for (const SquareId& s : tree.squares(tree.max_level())) {
    SquareBasis sb;
    sb.contacts = rep.contacts(s);
    sb.v = rep.v(s);
    sb.w = rep.finest_w(s);
    squares.emplace(s, std::move(sb));
  }

  for (int lev = tree.max_level() - 1; lev >= 2; --lev) {
    for (const SquareId& p : tree.squares(lev)) {
      SquareBasis sb;
      sb.contacts = rep.contacts(p);
      const std::size_t np = sb.contacts.size();

      // X_p: zero-padded child U columns, in p's (sorted) contact order.
      std::size_t k_total = 0;
      for (const SquareId& c : tree.children(p)) k_total += squares.at(c).v.cols();
      Matrix x(np, k_total);
      std::size_t c0 = 0;
      for (const SquareId& c : tree.children(p)) {
        const SquareBasis& cb = squares.at(c);
        const auto pos = positions_in(cb.contacts, sb.contacts);
        for (std::size_t i = 0; i < cb.contacts.size(); ++i)
          for (std::size_t j = 0; j < cb.v.cols(); ++j) x(pos[i], c0 + j) = cb.v(i, j);
        c0 += cb.v.cols();
      }
      if (k_total == 0) {
        sb.v = Matrix(np, 0);
        sb.w = Matrix(np, 0);
        squares.emplace(p, std::move(sb));
        continue;
      }

      // Y = G_{I_p, p} X_p through the row-basis representation (eq. 4.16).
      const Matrix& vp = rep.v(p);
      Matrix cs(0, k_total), os = x;
      if (vp.cols() > 0) {
        cs = matmul_tn(vp, x);
        matmul_add(os, vp, cs, -1.0);  // os = x - V_p cs, no product temporary
      }
      const auto inter = tree.interactive(p);
      std::size_t ni = 0;
      for (const SquareId& q : inter) ni += rep.contacts(q).size();

      Matrix coef_u, coef_t;
      if (ni == 0) {
        // No interactive contacts to distinguish fast from slow responses:
        // conservatively keep everything slow-decaying (pushed up).
        coef_u = Matrix::identity(k_total);
        coef_t = Matrix(k_total, 0);
      } else {
        Matrix y(ni, k_total);
        std::size_t r0 = 0;
        for (const SquareId& q : inter) {
          const std::size_t nq = rep.contacts(q).size();
          Matrix yq(nq, k_total);
          if (vp.cols() > 0) matmul_add(yq, rep.response(p, q), cs);
          if (rep.v(q).cols() > 0 && rep.has_response(q, p)) {
            matmul_add(yq, rep.v(q), matmul_tn(rep.response(q, p), os));
          }
          y.set_block(r0, 0, yq);
          r0 += nq;
        }
        const Svd dec = svd(y);
        const std::size_t r = std::min(
            {numerical_rank(dec.sigma, opt.u_sigma_rel_tol), opt.max_rank, k_total});
        coef_u = dec.v.block(0, 0, k_total, r);
        coef_t = orthonormal_complement(coef_u, k_total);
      }
      sb.v = matmul(x, coef_u);
      sb.w = matmul(x, coef_t);
      squares.emplace(p, std::move(sb));
    }
  }
  return squares;
}

}  // namespace

LowRankBasis::LowRankBasis(const RowBasisRep& rep)
    : TransformBasis(rep.tree(), sweep(rep), /*root_level=*/2) {}

}  // namespace subspar
