// End-to-end low-rank sparsification (§4.2): phase 1 (row basis) + phase 2
// (fine-to-coarse sweep) + G_w assembly on the conservative pattern.
//
// G_w entries are computed by applying the phase-1 representation to the
// (sparse) columns of Q and projecting onto the locally-interacting basis
// vectors; no additional black-box solves are consumed. The thesis sketches
// an O(n log n) local-response data structure for this step — the version
// here is output-identical and O(n * apply), fast at bench scale (see
// DESIGN.md §5.5).
#pragma once

#include <memory>

#include "lowrank/fine_to_coarse.hpp"
#include "lowrank/row_basis.hpp"
#include "wavelet/pattern.hpp"

namespace subspar {

struct LowRankExtraction {
  std::unique_ptr<RowBasisRep> rep;
  std::unique_ptr<LowRankBasis> basis;
  SparseMatrix gw;  ///< pattern-restricted transformed conductance matrix
  long solves = 0;  ///< black-box solves (all consumed in phase 1)
};

LowRankExtraction lowrank_extract(const SubstrateSolver& solver, const QuadTree& tree,
                                  LowRankOptions options = {});

/// G_w assembly given an existing representation and basis.
SparseMatrix lowrank_fill_gw(const RowBasisRep& rep, const LowRankBasis& basis);

}  // namespace subspar
