#include "lowrank/extract.hpp"

#include "util/check.hpp"

namespace subspar {

SparseMatrix lowrank_fill_gw(const RowBasisRep& rep, const LowRankBasis& basis) {
  const QuadTree& tree = rep.tree();
  const std::size_t n = basis.n();
  SymmetricEntryAccumulator acc(n);

  // Level-2 leftover (U) columns: dense rows/columns of G_w.
  for (const std::size_t k : basis.root_columns()) {
    const Vector u = rep.apply(basis.column_vector(k));
    for (std::size_t j = 0; j < n; ++j) acc.record(j, k, basis.column_dot(j, u));
  }

  // T columns: entries against T vectors of non-well-separated squares at
  // the same or finer levels (coarser-level entries come from symmetry).
  for (int lev = 2; lev <= tree.max_level(); ++lev) {
    for (const SquareId& s : tree.squares(lev)) {
      for (const std::size_t col_idx : basis.w_columns(s)) {
        const Vector u = rep.apply(basis.column_vector(col_idx));
        for (const SquareId& t : tree.local(s)) {
          for (const SquareId& sp : subtree_squares(tree, t)) {
            for (const std::size_t row_idx : basis.w_columns(sp)) {
              acc.record(row_idx, col_idx, basis.column_dot(row_idx, u));
            }
          }
        }
      }
    }
  }
  return acc.build();
}

LowRankExtraction lowrank_extract(const SubstrateSolver& solver, const QuadTree& tree,
                                  LowRankOptions options) {
  LowRankExtraction out;
  const long before = solver.solve_count();
  out.rep = std::make_unique<RowBasisRep>(solver, tree, options);
  out.basis = std::make_unique<LowRankBasis>(*out.rep);
  out.gw = lowrank_fill_gw(*out.rep, *out.basis);
  out.solves = solver.solve_count() - before;
  return out;
}

}  // namespace subspar
