// Randomized block-Krylov row-basis machinery (ROADMAP item 1).
//
// The deterministic column-sampling construction of §4.3.3 fixes its sample
// budget up front (one random vector per interactive square) and fills every
// row basis to the max_rank cap. The randomized block-Krylov (RBK) scheme
// replaces that with an adaptive loop in the Halko–Martinsson–Tropp /
// block-Lanczos family: draw a seeded Gaussian block Omega, push it through
// the black-box operator G (SubstrateSolver::solve_many at level 2, the
// combine-solve splitting method on finer levels), QR re-orthogonalize
// between steps, and stop each block as soon as a residual-norm estimate
// certifies that the captured subspace reproduces fresh responses to the
// target tolerance. Two structural savings over column sampling fall out:
//
//  * blocks whose voltage space is no larger than the rank cap take the
//    exact identity basis and skip the sampling pass entirely (on the
//    paper's grids this removes every sample solve below the second level);
//  * ranks are chosen per block from the certified residual instead of
//    being tol-filled to the cap, trimming the basis-response solves.
//
// This header provides the generic adaptive range finder (`rbk_range`, used
// directly against a SubstrateSolver and unit-tested against dense SVDs)
// plus the option/trajectory types shared with the multilevel driver in
// row_basis.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace subspar {

class SubstrateSolver;

/// How RowBasisRep builds the per-square row bases V_s (phase 1, §4.3).
enum class RowBasisScheme {
  /// §4.3.3 deterministic sampling: one random vector per interactive
  /// square, rank filled to the cap by a singular-value ratio test.
  kColumnSampling,
  /// Randomized block-Krylov sketching with per-block adaptive rank control
  /// (fewer black-box solves at equal accuracy; see rbk_basis.hpp).
  kBlockKrylov,
};

/// Knobs of the block-Krylov scheme (live in LowRankOptions::rbk; the
/// Gaussian draws reuse LowRankOptions::seed, so a request seed fixes the
/// whole construction bit-for-bit).
struct RbkOptions {
  /// Gaussian probe columns placed per source block per sketch round. The
  /// effective sketch width at a target square is block_size x |I_s| (~27x),
  /// so 1 already oversamples the <= 6-dimensional row bases heavily.
  std::size_t block_size = 1;
  /// Maximum response/refinement rounds after the initial sketch (>= 1).
  /// Blocks that certify early stop early; round counts are reported in the
  /// rank trajectory.
  std::size_t max_iters = 3;
  /// Per-block stop: accept a basis V once fresh responses S satisfy
  /// ||S - V V' S||_F <= target_tol * ||S||_F. The multilevel driver also
  /// accepts once a block's rank budget saturates (r == min(max_rank, n_s)):
  /// further rounds cannot widen the basis, and the capped sketch already
  /// matches the deterministic build's quality. The default is set from the
  /// observed interactive-block spectra (Fig. 4-3): blocks the rank budget
  /// can represent certify well below it in one round, so refinement rounds
  /// only fire on genuinely under-sampled blocks.
  double target_tol = 5e-3;
};

/// One sketch round of one quadtree level (or of one `rbk_range` call,
/// where `level` is 0) — the adaptive rank trajectory reported through
/// ExtractionReport.
struct RbkStep {
  int level = 0;                  ///< quadtree level (0 for rbk_range)
  int round = 0;                  ///< 0 = Gaussian sketch, >= 1 = Krylov round
  std::size_t probe_columns = 0;  ///< black-box solve cost of the round
  std::size_t active_blocks = 0;  ///< blocks still unconverged entering it
  std::size_t max_rank = 0;       ///< largest basis rank after the round
  double mean_rank = 0.0;         ///< mean basis rank after the round
  double max_residual = 0.0;      ///< worst certification residual observed
};

/// Adaptive rank choice: the smallest r whose singular-value tail satisfies
/// sqrt(sum_{i>r} sigma_i^2) <= target_tol * sqrt(sum_i sigma_i^2), capped
/// at max_rank and dim. Returns 0 for an all-zero spectrum.
std::size_t rbk_adaptive_rank(const Vector& sigma, double target_tol, std::size_t max_rank,
                              std::size_t dim);

/// Certification residual ||S - V V' S||_F / ||S||_F of fresh samples S
/// against an orthonormal basis V (0 when S is all-zero; 1 when V is empty
/// and S is not).
double rbk_subspace_residual(const Matrix& v, const Matrix& samples);

/// A seeded rows x cols standard-normal block, QR re-orthonormalized when
/// it is (weakly) tall so probe columns carry balanced response energy.
Matrix rbk_gaussian_probes(std::size_t rows, std::size_t cols, std::uint64_t seed);

/// Deterministic per-(seed, level, round, block) stream seed, independent
/// of which other blocks participate in the round.
std::uint64_t rbk_stream_seed(std::uint64_t seed, int level, int round, int ix, int iy);

/// Result of the generic adaptive range finder.
struct RbkRange {
  Matrix basis;                    ///< n x r, orthonormal columns
  std::vector<RbkStep> trajectory; ///< one entry per completed round
  std::size_t applies = 0;         ///< operator columns consumed
  bool converged = false;          ///< residual stop reached within max_iters
};

/// Adaptive randomized block-Krylov range finder for a symmetric operator
/// on R^n given as a batched apply (X -> G X, matching
/// SubstrateSolver::solve_many). Draws a Gaussian block, then alternates
/// (QR re-orthogonalized) Krylov rounds probing [V | fresh Gaussian block]
/// until the fresh responses certify V to options.target_tol or max_iters
/// rounds have run. Deterministic for a fixed seed and bit-identical across
/// SUBSPAR_THREADS.
RbkRange rbk_range(const std::function<Matrix(const Matrix&)>& apply_many, std::size_t n,
                   const RbkOptions& options, std::size_t max_rank, std::uint64_t seed);

/// Convenience overload sketching a SubstrateSolver's conductance operator
/// through solve_many (counts toward the solver's solve budget).
RbkRange rbk_range(const SubstrateSolver& solver, const RbkOptions& options,
                   std::size_t max_rank, std::uint64_t seed);

}  // namespace subspar
