// Phase 2 of the low-rank method: the fine-to-coarse sweep (§4.4).
//
// Starting from U_s = V_s, T_s = W_s on the finest level, each parent square
// recombines its children's slow-decaying U blocks: the SVD of the
// interactive-region response G_{I_p, p} X_p (computed from the phase-1
// row-basis data, eq. 4.16 — no further black-box solves) splits X_p into
// new slow-decaying U_p (large singular values) and fast-decaying T_p
// (eq. 4.27). The T blocks of levels 2..L plus the level-2 U leftovers form
// the same orthogonal wavelet-structured Q as Chapter 3, so the pattern,
// thresholding, and error machinery are shared.
#pragma once

#include "lowrank/row_basis.hpp"
#include "wavelet/transform_basis.hpp"

namespace subspar {

class LowRankBasis : public TransformBasis {
 public:
  explicit LowRankBasis(const RowBasisRep& rep);
};

}  // namespace subspar
