// Phase 1 of the low-rank method: the multilevel row-basis representation
// (§4.3), built coarse-to-fine from O(log n) black-box solves.
//
// Per square s the interaction G_{I_s, s} with its interactive region is
// numerically low-rank (Fig. 4-3). A row basis V_s (<= 6 columns) is
// recovered from the SVD of responses at s to random sample vectors placed
// in the squares of I_s (§4.3.3), and the responses (G_{P_s, s} V_s) to the
// basis itself are recorded over the local-plus-interactive region P_s.
// Responses on finer levels are never solved directly: a voltage with
// support in s splits into its projection onto the parent row basis
// (answered by the parent-level representation) and an orthogonal remainder
// in (W_p), whose responses combine-solve safely (eqs. 4.22-4.24, Fig. 4-7).
// The finest level stores the exact-local blocks G^(f)_{L_s, s} (eq. 4.26).
//
// The resulting representation applies G in O(n log n) (§4.3.2) and feeds
// the fine-to-coarse sweep of phase 2.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "geometry/quadtree.hpp"
#include "linalg/matrix.hpp"
#include "lowrank/rbk_basis.hpp"
#include "substrate/solver.hpp"

namespace subspar {

struct LowRankOptions {
  /// Phase-1 row-basis truncation: singular values >= sigma_rel_tol *
  /// sigma_max count. The paper quotes 1/100; because the interactive-block
  /// spectra decay like Fig. 4-3, a tighter tolerance fills the max_rank
  /// budget at negligible extra cost and buys ~30x lower representation
  /// error, so that is the default here (ablated in bench/ablation_rank).
  /// Both schemes fill ranks with it (kBlockKrylov in tail-energy form);
  /// kBlockKrylov stops refining from rbk.target_tol.
  double sigma_rel_tol = 1e-4;
  /// Row-basis width cap (paper: 6, matching the p = 2 moment count).
  std::size_t max_rank = 6;
  /// Phase-2 U/T split threshold (eq. 4.27): the paper's 1/100 keeps the
  /// slow-decaying leftovers lean, which controls the density of the
  /// root-level rows of G_w.
  double u_sigma_rel_tol = 1e-2;
  /// Seed for the random sample vectors of §4.3.3 and the RBK Gaussian
  /// probes (runs are deterministic for a fixed seed either way).
  std::uint64_t seed = 12345;
  /// How the per-square row bases are built: the paper's deterministic
  /// column sampling, or randomized block-Krylov sketching with adaptive
  /// rank control (fewer black-box solves; see lowrank/rbk_basis.hpp).
  RowBasisScheme basis = RowBasisScheme::kColumnSampling;
  /// Knobs of the kBlockKrylov scheme (ignored by kColumnSampling).
  RbkOptions rbk;
};

/// The multilevel row-basis representation of G (phase 1, §4.3). Building it
/// runs the whole coarse-to-fine construction against the black-box solver.
class RowBasisRep {
 public:
  /// Builds the representation; `tree` must outlive this object.
  RowBasisRep(const SubstrateSolver& solver, const QuadTree& tree, LowRankOptions options = {});

  /// The contact quadtree the representation was built over.
  const QuadTree& tree() const { return *tree_; }
  /// The options the representation was built with.
  const LowRankOptions& options() const { return options_; }
  /// Black-box solves consumed by the construction.
  long solves() const { return solves_; }
  /// Adaptive rank trajectory of the kBlockKrylov scheme: one entry per
  /// (level, sketch round). Empty for kColumnSampling builds.
  const std::vector<RbkStep>& trajectory() const { return trajectory_; }
  /// Squares whose kBlockKrylov certification never passed within
  /// rbk.max_iters rounds and that fell back to the deterministic
  /// one-probe-per-source sampling basis (rounds max_iters+1/+2 in the
  /// trajectory). 0 on a healthy build and always 0 for kColumnSampling.
  long rbk_fallback_squares() const { return rbk_fallback_squares_; }

  /// Approximate G v through the multilevel representation (§4.3.2).
  Vector apply(const Vector& v) const;

  /// Row basis V_s (rows ordered like contacts(s)).
  const Matrix& v(const SquareId& s) const;
  /// Approximate response block (G_{q, s} V_s)^(r), rows ordered like
  /// contacts(q); q must be in P_s.
  const Matrix& response(const SquareId& s, const SquareId& q) const;
  /// True when a response block (G_{q, s} V_s)^(r) was recorded for (s, q).
  bool has_response(const SquareId& s, const SquareId& q) const;
  /// Finest-level orthogonal complement W_s of V_s.
  const Matrix& finest_w(const SquareId& s) const;
  /// Assembled finest-level local block G^(f)_{q, s} (q in L_s).
  const Matrix& finest_local_g(const SquareId& q, const SquareId& s) const;

  /// Sorted contact ids of a square (shared row ordering of all blocks).
  const std::vector<std::size_t>& contacts(const SquareId& s) const;

 private:
  struct SquareRep {
    Matrix v;
    std::map<SquareId, Matrix> response;
  };

  // Per-square responses of one "batch" of vectors, stored over the local
  // squares of the parent (which cover P_s).
  using ResponseBlocks = std::map<SquareId, Matrix>;

  void build_level2(const SubstrateSolver& solver);
  void build_level(const SubstrateSolver& solver, int level);
  void build_finest(const SubstrateSolver& solver);

  /// Reads the response of source square t's probe batch, restricted to the
  /// contacts of square q (rows ordered like contacts(q), one column per
  /// probe column). Built per sketch round by the level oracles below.
  using RbkBlockFn = std::function<Matrix(const SquareId& t, const SquareId& q)>;
  /// Issues the black-box solves for one round of per-square probe batches
  /// and returns the block accessor over the responses.
  using RbkOracle = std::function<RbkBlockFn(const std::map<SquareId, Matrix>& batches)>;

  /// The block-Krylov basis build of one level (rbk_basis.hpp): Gaussian
  /// sketch round for squares above the rank cap, then adaptive
  /// probe/certify/refine rounds that double as the basis-response
  /// recording pass.
  void build_rbk_level(int level, const RbkOracle& oracle);
  /// Sample sources of a square: its interactive region, with the level-2
  /// degenerate-layout fallback to every non-local square.
  std::vector<SquareId> rbk_sample_sources(const SquareId& s) const;

  /// The splitting method (§4.3.3): responses to per-square column batches
  /// x_s (columns over contacts(s), level `level` >= 3), each returned over
  /// the local squares of its parent. Uses the parent-level representation
  /// plus combine-solves on the orthogonal parts.
  std::map<SquareId, ResponseBlocks> split_responses(
      const SubstrateSolver& solver, int level,
      const std::map<SquareId, Matrix>& batches);

  Matrix row_basis_from_samples(const SquareId& s,
                                const std::map<SquareId, ResponseBlocks>& sample_responses);

  const QuadTree* tree_;
  LowRankOptions options_;
  long solves_ = 0;
  long rbk_fallback_squares_ = 0;
  std::vector<RbkStep> trajectory_;
  std::map<SquareId, SquareRep> reps_;
  std::map<SquareId, Matrix> finest_w_;
  std::map<std::pair<SquareId, SquareId>, Matrix> finest_g_;  // key (q, s)
};

/// Positions of the (sorted) `sub` ids within the (sorted) `super` ids.
std::vector<std::size_t> positions_in(const std::vector<std::size_t>& sub,
                                      const std::vector<std::size_t>& super);

}  // namespace subspar
