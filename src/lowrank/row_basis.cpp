#include "lowrank/row_basis.hpp"
#include <algorithm>
#include <cmath>
#include <memory>
#include <set>


#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "subspar/status.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace subspar {

std::vector<std::size_t> positions_in(const std::vector<std::size_t>& sub,
                                      const std::vector<std::size_t>& super) {
  std::vector<std::size_t> pos;
  pos.reserve(sub.size());
  std::size_t j = 0;
  for (const std::size_t id : sub) {
    while (j < super.size() && super[j] < id) ++j;
    SUBSPAR_REQUIRE(j < super.size() && super[j] == id);
    pos.push_back(j);
  }
  return pos;
}

namespace {

Vector restrict_to(const Vector& full, const std::vector<std::size_t>& ids) {
  Vector out(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) out[i] = full[ids[i]];
  return out;
}

// Extends a block over `sub` contacts to one over `super` contacts.
Matrix extend_rows(const Matrix& x, const std::vector<std::size_t>& pos, std::size_t super_rows) {
  Matrix out(super_rows, x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i)
    std::copy(x.row_ptr(i), x.row_ptr(i) + x.cols(), out.row_ptr(pos[i]));
  return out;
}

Matrix restrict_rows(const Matrix& x, const std::vector<std::size_t>& pos) {
  Matrix out(pos.size(), x.cols());
  for (std::size_t i = 0; i < pos.size(); ++i)
    std::copy(x.row_ptr(pos[i]), x.row_ptr(pos[i]) + x.cols(), out.row_ptr(i));
  return out;
}

}  // namespace

RowBasisRep::RowBasisRep(const SubstrateSolver& solver, const QuadTree& tree,
                         LowRankOptions options)
    : tree_(&tree), options_(options) {
  SUBSPAR_REQUIRE(options.max_rank >= 1);
  const long before = solver.solve_count();
  if (options_.basis == RowBasisScheme::kBlockKrylov) {
    // Level 2 probes solve directly (responses are full contact vectors);
    // finer levels go through the splitting method like the deterministic
    // build. Phase-2 machinery (finest W blocks) is shared.
    build_rbk_level(2, [&](const std::map<SquareId, Matrix>& batches) {
      const std::size_t n = tree_->layout().n_contacts();
      auto spans = std::make_shared<std::map<SquareId, std::pair<std::size_t, std::size_t>>>();
      std::size_t total = 0;
      for (const auto& [t, x] : batches) {
        spans->emplace(t, std::make_pair(total, x.cols()));
        total += x.cols();
      }
      Matrix rhs(n, total);
      for (const auto& [t, x] : batches) {
        const auto& ids = contacts(t);
        const std::size_t off = spans->at(t).first;
        for (std::size_t c = 0; c < x.cols(); ++c)
          for (std::size_t i = 0; i < ids.size(); ++i) rhs(ids[i], off + c) = x(i, c);
      }
      auto resp = std::make_shared<Matrix>(total > 0 ? solver.solve_many(rhs) : Matrix(n, 0));
      return [this, spans, resp](const SquareId& t, const SquareId& q) {
        const auto [off, width] = spans->at(t);
        const auto& qids = contacts(q);
        Matrix out(qids.size(), width);
        for (std::size_t c = 0; c < width; ++c)
          for (std::size_t i = 0; i < qids.size(); ++i) out(i, c) = (*resp)(qids[i], off + c);
        return out;
      };
    });
    for (int lev = 3; lev <= tree.max_level(); ++lev) {
      build_rbk_level(lev, [&, lev](const std::map<SquareId, Matrix>& batches) {
        auto resp = std::make_shared<std::map<SquareId, ResponseBlocks>>(
            split_responses(solver, lev, batches));
        return [this, resp, lev](const SquareId& t, const SquareId& q) {
          const SquareId qc = tree_->ancestor(q, lev - 1);
          const Matrix& block = resp->at(t).at(qc);
          return restrict_rows(block, positions_in(contacts(q), contacts(qc)));
        };
      });
    }
  } else {
    build_level2(solver);
    for (int lev = 3; lev <= tree.max_level(); ++lev) build_level(solver, lev);
  }
  build_finest(solver);
  solves_ = solver.solve_count() - before;
}

const std::vector<std::size_t>& RowBasisRep::contacts(const SquareId& s) const {
  return tree_->contacts_in(s);
}

const Matrix& RowBasisRep::v(const SquareId& s) const { return reps_.at(s).v; }

const Matrix& RowBasisRep::response(const SquareId& s, const SquareId& q) const {
  return reps_.at(s).response.at(q);
}

bool RowBasisRep::has_response(const SquareId& s, const SquareId& q) const {
  const auto it = reps_.find(s);
  return it != reps_.end() && it->second.response.count(q) > 0;
}

const Matrix& RowBasisRep::finest_w(const SquareId& s) const { return finest_w_.at(s); }

const Matrix& RowBasisRep::finest_local_g(const SquareId& q, const SquareId& s) const {
  return finest_g_.at({q, s});
}

// ---------------------------------------------------------------- level 2

void RowBasisRep::build_level2(const SubstrateSolver& solver) {
  const QuadTree& tree = *tree_;
  const std::size_t n = tree.layout().n_contacts();
  Rng rng(options_.seed);

  // One random sample vector per square; responses by direct solves (the
  // coarsest level has only up to 16 squares, §4.3.3), batched into one
  // solve_many call. RNG draws keep the original per-square order, so the
  // sample vectors are unchanged.
  const auto level2 = tree.squares(2);
  Matrix sample_rhs(n, level2.size());
  for (std::size_t c = 0; c < level2.size(); ++c) {
    for (const std::size_t id : contacts(level2[c])) sample_rhs(id, c) = rng.normal();
  }
  const Matrix sample_resp_mat = solver.solve_many(sample_rhs);
  std::map<SquareId, Vector> sample_response;
  for (std::size_t c = 0; c < level2.size(); ++c)
    sample_response.emplace(level2[c], sample_resp_mat.col(c));

  // Row bases from the sampled interactions.
  for (const SquareId& s : tree.squares(2)) {
    const auto& ids = contacts(s);
    std::vector<SquareId> sources = tree.interactive(s);
    if (sources.empty()) {
      // Degenerate layout: sample from every non-local square instead.
      for (const SquareId& t : tree.squares(2))
        if (!QuadTree::adjacent_or_same(t, s)) sources.push_back(t);
    }
    SquareRep rep;
    if (!sources.empty()) {
      Matrix samples(ids.size(), sources.size());
      for (std::size_t c = 0; c < sources.size(); ++c)
        samples.set_col(c, restrict_to(sample_response.at(sources[c]), ids));
      const Svd dec = svd(samples);
      const std::size_t r = std::min({numerical_rank(dec.sigma, options_.sigma_rel_tol),
                                      options_.max_rank, ids.size()});
      rep.v = dec.u.block(0, 0, ids.size(), r);
    } else {
      rep.v = Matrix(ids.size(), 0);
    }
    reps_.emplace(s, std::move(rep));
  }

  // Responses to the row-basis vectors, by direct solves, recorded over
  // P_s. All basis columns of all squares are independent: one batch.
  std::vector<std::pair<SquareId, std::size_t>> v_cols;  // (square, column)
  for (const SquareId& s : level2)
    for (std::size_t k = 0; k < reps_.at(s).v.cols(); ++k) v_cols.emplace_back(s, k);
  Matrix v_rhs(n, v_cols.size());
  for (std::size_t c = 0; c < v_cols.size(); ++c) {
    const auto& [s, k] = v_cols[c];
    const auto& ids = contacts(s);
    const Matrix& v = reps_.at(s).v;
    for (std::size_t i = 0; i < ids.size(); ++i) v_rhs(ids[i], c) = v(i, k);
  }
  const Matrix v_resp = solver.solve_many(v_rhs);

  std::size_t col = 0;
  for (const SquareId& s : level2) {
    SquareRep& rep = reps_.at(s);
    const std::size_t r = rep.v.cols();
    auto region = tree.local(s);
    for (const SquareId& q : tree.interactive(s)) region.push_back(q);
    for (const SquareId& q : region) {
      const auto& qids = contacts(q);
      Matrix block(qids.size(), r);
      for (std::size_t k = 0; k < r; ++k)
        for (std::size_t i = 0; i < qids.size(); ++i) block(i, k) = v_resp(qids[i], col + k);
      rep.response.emplace(q, std::move(block));
    }
    col += r;
  }
}

// ------------------------------------------------------- splitting method

std::map<SquareId, RowBasisRep::ResponseBlocks> RowBasisRep::split_responses(
    const SubstrateSolver& solver, int level, const std::map<SquareId, Matrix>& batches) {
  const QuadTree& tree = *tree_;
  const std::size_t n = tree.layout().n_contacts();
  SUBSPAR_REQUIRE(level >= 3 && level <= tree.max_level());

  // Per square: extend the batch into the parent square's contact space,
  // split into the parent row-basis part c and the orthogonal remainder o
  // (eq. 4.22).
  struct Item {
    SquareId s, p;
    Matrix o;  // n_p x k, in (W_p)
    Matrix c;  // r_p x k
    std::size_t k = 0;
  };
  std::vector<Item> items;
  std::size_t max_k = 0;
  for (const auto& [s, x] : batches) {
    Item it;
    it.s = s;
    it.p = tree.parent(s);
    const auto pos = positions_in(contacts(s), contacts(it.p));
    const Matrix xp = extend_rows(x, pos, contacts(it.p).size());
    const Matrix& vp = reps_.at(it.p).v;
    if (vp.cols() > 0) {
      it.c = matmul_tn(vp, xp);
      it.o = xp;
      matmul_add(it.o, vp, it.c, -1.0);  // o = x_p - V_p c, no product temporary
    } else {
      it.c = Matrix(0, x.cols());
      it.o = xp;
    }
    it.k = x.cols();
    max_k = std::max(max_k, it.k);
    items.push_back(std::move(it));
  }

  std::map<SquareId, ResponseBlocks> out;
  for (const auto& it : items) {
    ResponseBlocks blocks;
    for (const SquareId& q : tree.local(it.p))
      blocks.emplace(q, Matrix(contacts(q).size(), it.k));
    out.emplace(it.s, std::move(blocks));
  }

  // Combine-solves: one solve per (column index, parent 3x3 phase, child
  // position) group; distinct members' parents are >= 3 squares apart, so
  // each orthogonal remainder's local response separates (§4.3.1). The
  // groups are mutually independent, so all combined vectors are assembled
  // first and solved as one batch; the per-group refinement below runs in
  // the original group order.
  struct CombineGroup {
    std::size_t k = 0;
    std::vector<const Item*> members;
  };
  std::vector<CombineGroup> groups;
  std::vector<Vector> thetas;
  for (std::size_t k = 0; k < max_k; ++k) {
    for (int pa = 0; pa < 3; ++pa) {
      for (int pb = 0; pb < 3; ++pb) {
        for (int ca = 0; ca < 2; ++ca) {
          for (int cb = 0; cb < 2; ++cb) {
            std::vector<const Item*> members;
            Vector theta(n);
            for (const auto& it : items) {
              if (k >= it.k) continue;
              if (it.p.ix % 3 != pa || it.p.iy % 3 != pb) continue;
              if (it.s.ix % 2 != ca || it.s.iy % 2 != cb) continue;
              const auto& pids = contacts(it.p);
              for (std::size_t i = 0; i < pids.size(); ++i) theta[pids[i]] += it.o(i, k);
              members.push_back(&it);
            }
            if (members.empty()) continue;
            groups.push_back({k, std::move(members)});
            thetas.push_back(std::move(theta));
          }
        }
      }
    }
  }
  Matrix rhs(n, thetas.size());
  for (std::size_t c = 0; c < thetas.size(); ++c) rhs.set_col(c, thetas[c]);
  const Matrix resp = thetas.empty() ? Matrix(n, 0) : solver.solve_many(rhs);

  for (std::size_t g = 0; g < groups.size(); ++g) {
    const std::size_t k = groups[g].k;
    const Vector u = resp.col(g);
    for (const Item* itp : groups[g].members) {
      const Item& it = *itp;
      Vector ocol(it.o.rows());
      for (std::size_t i = 0; i < ocol.size(); ++i) ocol[i] = it.o(i, k);
      for (const SquareId& q : tree.local(it.p)) {
        const auto& qids = contacts(q);
        const Vector raw = restrict_to(u, qids);
        // Refinement (eq. 4.24): the in-(V_q) part of the response
        // comes from the recorded parent-level data; only the
        // (W_q) part is read off the combined solve.
        Vector refined = raw;
        const SquareRep& qrep = reps_.at(q);
        if (qrep.v.cols() > 0) {
          const Vector vq_raw = matvec_t(qrep.v, raw);
          refined -= matvec(qrep.v, vq_raw);
          if (qrep.response.count(it.p) > 0) {
            // (G_{p,q} V_q)' o: rows of the stored block follow
            // contacts(p).
            const Matrix& gpq_vq = qrep.response.at(it.p);
            refined += matvec(qrep.v, matvec_t(gpq_vq, ocol));
          }
        }
        // Add the parent-row-basis part of the response (eq. 4.22).
        const SquareRep& prep = reps_.at(it.p);
        if (prep.v.cols() > 0 && prep.response.count(q) > 0) {
          Vector ccol(it.c.rows());
          for (std::size_t i = 0; i < ccol.size(); ++i) ccol[i] = it.c(i, k);
          refined += matvec(prep.response.at(q), ccol);
        }
        Matrix& dst = out.at(it.s).at(q);
        for (std::size_t i = 0; i < qids.size(); ++i) dst(i, k) = refined[i];
      }
    }
  }
  return out;
}

// ------------------------------------------------ randomized block-Krylov

std::vector<SquareId> RowBasisRep::rbk_sample_sources(const SquareId& s) const {
  std::vector<SquareId> sources = tree_->interactive(s);
  if (sources.empty() && s.level == 2) {
    // Same degenerate-layout fallback as build_level2: sample from every
    // non-local square.
    for (const SquareId& t : tree_->squares(2))
      if (!QuadTree::adjacent_or_same(t, s)) sources.push_back(t);
  }
  return sources;
}

void RowBasisRep::build_rbk_level(int level, const RbkOracle& oracle) {
  const QuadTree& tree = *tree_;
  const RbkOptions& rbk = options_.rbk;
  SUBSPAR_REQUIRE(rbk.block_size >= 1 && rbk.max_iters >= 1);
  SUBSPAR_REQUIRE(rbk.target_tol > 0.0 && rbk.target_tol < 1.0);

  struct State {
    std::vector<SquareId> sources;
    Matrix basis;
    Matrix samples;
    bool fullrank = false;  // n_s <= max_rank: identity basis, no sketch
    bool done = false;
  };
  std::map<SquareId, State> states;
  const auto squares = tree.squares(level);
  for (const SquareId& s : squares) {
    const std::size_t ns = contacts(s).size();
    State st;
    st.sources = rbk_sample_sources(s);
    st.fullrank = ns <= options_.max_rank;
    st.basis = st.fullrank ? Matrix::identity(ns) : Matrix(ns, 0);
    st.samples = Matrix(ns, 0);
    states.emplace(s, std::move(st));
  }

  // Columns polluted by non-finite values (possible only when fault
  // injection slips a corrupted solve past the solver's own guards) are
  // dropped before they can poison the SVD; the affected square fails the
  // round's certification and retries or falls back instead.
  const auto drop_nonfinite = [](Matrix m, std::size_t* dropped) {
    std::vector<std::size_t> keep;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      bool ok = true;
      for (std::size_t i = 0; i < m.rows() && ok; ++i) ok = std::isfinite(m(i, j));
      if (ok) keep.push_back(j);
    }
    if (keep.size() == m.cols()) return m;
    *dropped += m.cols() - keep.size();
    Matrix out(m.rows(), keep.size());
    for (std::size_t c = 0; c < keep.size(); ++c)
      for (std::size_t i = 0; i < m.rows(); ++i) out(i, c) = m(i, keep[c]);
    return out;
  };

  // Rank fill from the sketch spectrum uses the same sigma_rel_tol ratio
  // test as the deterministic build, so kept ranks (and G_w accuracy) track
  // it; target_tol only drives the accept/refine certification.
  const auto refine = [&](State& st, std::size_t ns) {
    const Svd dec = svd(st.samples);
    const std::size_t r =
        std::min({numerical_rank(dec.sigma, options_.sigma_rel_tol), options_.max_rank, ns});
    st.basis = dec.u.block(0, 0, ns, r);
  };
  const auto record_step = [&](int round, std::size_t probe_cols, std::size_t active,
                               double max_resid) {
    RbkStep step;
    step.level = level;
    step.round = round;
    step.probe_columns = probe_cols;
    step.active_blocks = active;
    double sum = 0.0;
    for (const SquareId& s : squares) {
      const std::size_t r = states.at(s).basis.cols();
      step.max_rank = std::max(step.max_rank, r);
      sum += static_cast<double>(r);
    }
    step.mean_rank = squares.empty() ? 0.0 : sum / static_cast<double>(squares.size());
    step.max_residual = max_resid;
    trajectory_.push_back(step);
  };

  // Round 0: the Gaussian sketch, only for squares above the rank cap —
  // full-rank squares take the exact identity basis and skip the sampling
  // pass entirely (below level 2 this removes every sample solve on the
  // paper's grids).
  std::vector<SquareId> sketching;
  for (const SquareId& s : squares)
    if (!states.at(s).fullrank && !states.at(s).sources.empty()) sketching.push_back(s);
  if (!sketching.empty()) {
    std::set<SquareId> probe_set;
    for (const SquareId& s : sketching)
      for (const SquareId& t : states.at(s).sources) probe_set.insert(t);
    std::map<SquareId, Matrix> batches;
    std::size_t probe_cols = 0;
    for (const SquareId& t : probe_set) {
      Matrix omega = rbk_gaussian_probes(contacts(t).size(), rbk.block_size,
                                         rbk_stream_seed(options_.seed, level, 0, t.ix, t.iy));
      probe_cols += omega.cols();
      batches.emplace(t, std::move(omega));
    }
    const RbkBlockFn block = oracle(batches);
    for (const SquareId& s : sketching) {
      State& st = states.at(s);
      for (const SquareId& t : st.sources) st.samples = Matrix::hcat(st.samples, block(t, s));
      refine(st, contacts(s).size());
    }
    record_step(0, probe_cols, sketching.size(), 1.0);
  }

  // Krylov rounds. Every pending square places its candidate basis, so the
  // round doubles as the basis-response recording pass AND as fresh sample
  // generation for the interactive neighbors — certification costs no
  // extra solves in the happy path. Sources of squares that failed the
  // previous certification append fresh Gaussian columns after their
  // candidates for an independent retry.
  std::set<SquareId> failed_prev;
  for (std::size_t round = 1; round <= rbk.max_iters; ++round) {
    std::vector<SquareId> pending;
    for (const SquareId& s : squares)
      if (!states.at(s).done) pending.push_back(s);
    if (pending.empty()) break;

    std::set<SquareId> fresh_set;
    for (const SquareId& s : failed_prev)
      for (const SquareId& t : states.at(s).sources) fresh_set.insert(t);

    std::map<SquareId, Matrix> batches;
    std::size_t probe_cols = 0;
    for (const SquareId& t : squares) {
      const State& st = states.at(t);
      Matrix batch = st.done ? Matrix(contacts(t).size(), 0) : st.basis;
      if (fresh_set.count(t) > 0) {
        const Matrix fresh = rbk_gaussian_probes(
            contacts(t).size(), rbk.block_size,
            rbk_stream_seed(options_.seed, level, static_cast<int>(round), t.ix, t.iy));
        batch = Matrix::hcat(batch, fresh);
      }
      // Pending squares participate even with zero columns so their (empty)
      // response blocks get recorded like the deterministic build's.
      if (batch.cols() > 0 || !st.done) {
        probe_cols += batch.cols();
        batches.emplace(t, std::move(batch));
      }
    }
    const RbkBlockFn block = oracle(batches);

    std::set<SquareId> failed_now;
    double max_resid = 0.0;
    for (const SquareId& s : pending) {
      State& st = states.at(s);
      const std::size_t ns = contacts(s).size();
      Matrix fresh_samples(ns, 0);
      for (const SquareId& t : st.sources) {
        const auto it = batches.find(t);
        if (it != batches.end() && it->second.cols() > 0)
          fresh_samples = Matrix::hcat(fresh_samples, block(t, s));
      }
      std::size_t dropped = 0;
      fresh_samples = drop_nonfinite(std::move(fresh_samples), &dropped);
      const double resid =
          fresh_samples.cols() > 0 ? rbk_subspace_residual(st.basis, fresh_samples) : 0.0;
      max_resid = std::max(max_resid, resid);
      // Accept on certification, when the rank budget is saturated (more
      // rounds cannot widen the basis, and the one-shot sketch at the cap
      // already matches the deterministic build's quality), or at sample
      // starvation (no source placed probes). A square that exhausts
      // max_iters without certifying no longer accepts its last candidate
      // silently — it takes the deterministic per-square fallback below.
      const bool saturated = st.basis.cols() >= std::min(options_.max_rank, ns);
      if (dropped == 0 && (resid <= rbk.target_tol || saturated)) {
        SquareRep rep;
        rep.v = st.basis;
        auto region = tree.local(s);
        for (const SquareId& q : tree.interactive(s)) region.push_back(q);
        for (const SquareId& q : region) {
          const Matrix resp = block(s, q);
          rep.response.emplace(q, resp.block(0, 0, resp.rows(), st.basis.cols()));
        }
        reps_.emplace(s, std::move(rep));
        st.done = true;
      } else {
        st.samples = Matrix::hcat(st.samples, fresh_samples);
        refine(st, ns);
        failed_now.insert(s);
      }
    }
    record_step(static_cast<int>(round), probe_cols, pending.size(), max_resid);
    failed_prev = std::move(failed_now);
  }

  // Per-square deterministic fallback: a square whose certification never
  // passed rebuilds its basis from scratch out of one seeded probe column
  // per source — the kColumnSampling scheme's sampling rule — discarding
  // every Krylov sample, then records responses to that basis in a second
  // pass. Bit-reproducible for a fixed seed, independent of how the Krylov
  // rounds failed. Healthy builds never reach this (certification passes
  // within max_iters on the paper's grids), so the happy-path solve count
  // is unchanged.
  std::vector<SquareId> unresolved;
  for (const SquareId& s : squares)
    if (!states.at(s).done) unresolved.push_back(s);
  if (!unresolved.empty()) {
    rbk_fallback_squares_ += static_cast<long>(unresolved.size());
    const int fb_round = static_cast<int>(rbk.max_iters) + 1;

    // Sampling pass: one raw probe column per source of an unresolved square.
    std::set<SquareId> probe_set;
    for (const SquareId& s : unresolved)
      for (const SquareId& t : states.at(s).sources) probe_set.insert(t);
    std::map<SquareId, Matrix> fb_batches;
    std::size_t fb_cols = 0;
    for (const SquareId& t : probe_set) {
      Matrix omega = rbk_gaussian_probes(
          contacts(t).size(), 1,
          rbk_stream_seed(options_.seed, level, fb_round, t.ix, t.iy));
      fb_cols += omega.cols();
      fb_batches.emplace(t, std::move(omega));
    }
    const RbkBlockFn fb_block = oracle(fb_batches);
    double fb_resid = 0.0;
    for (const SquareId& s : unresolved) {
      State& st = states.at(s);
      const std::size_t ns = contacts(s).size();
      Matrix samples(ns, 0);
      for (const SquareId& t : st.sources) samples = Matrix::hcat(samples, fb_block(t, s));
      std::size_t dropped = 0;
      st.samples = drop_nonfinite(std::move(samples), &dropped);
      refine(st, ns);
      fb_resid = std::max(fb_resid, st.samples.cols() > 0
                                        ? rbk_subspace_residual(st.basis, st.samples)
                                        : 0.0);
    }
    record_step(fb_round, fb_cols, unresolved.size(), fb_resid);

    // Recording pass: responses to the fallback bases over each square's
    // local-plus-interactive region.
    std::map<SquareId, Matrix> rec_batches;
    std::size_t rec_cols = 0;
    for (const SquareId& s : unresolved) {
      rec_cols += states.at(s).basis.cols();
      rec_batches.emplace(s, states.at(s).basis);
    }
    const RbkBlockFn rec_block = oracle(rec_batches);
    for (const SquareId& s : unresolved) {
      State& st = states.at(s);
      SquareRep rep;
      rep.v = st.basis;
      auto region = tree.local(s);
      for (const SquareId& q : tree.interactive(s)) region.push_back(q);
      for (const SquareId& q : region) {
        const Matrix resp = rec_block(s, q);
        for (std::size_t j = 0; j < resp.cols(); ++j)
          for (std::size_t i = 0; i < resp.rows(); ++i)
            if (!std::isfinite(resp(i, j)))
              throw ExtractionException(
                  {ErrorCode::kNumericalBreakdown, "row-basis",
                   "non-finite response block recorded for the fallback basis of square (" +
                       std::to_string(s.ix) + ", " + std::to_string(s.iy) + ") at level " +
                       std::to_string(level)});
        rep.response.emplace(q, resp.block(0, 0, resp.rows(), st.basis.cols()));
      }
      reps_.emplace(s, std::move(rep));
      st.done = true;
    }
    record_step(fb_round + 1, rec_cols, unresolved.size(), fb_resid);
  }
}

// ---------------------------------------------------------- finer levels

Matrix RowBasisRep::row_basis_from_samples(
    const SquareId& s, const std::map<SquareId, ResponseBlocks>& sample_responses) {
  const QuadTree& tree = *tree_;
  const auto& ids = contacts(s);
  const auto inter = tree.interactive(s);
  if (inter.empty()) return Matrix(ids.size(), 0);

  Matrix samples(ids.size(), inter.size());
  for (std::size_t c = 0; c < inter.size(); ++c) {
    const SquareId& t = inter[c];
    const SquareId q = tree.ancestor(s, s.level - 1);
    const Matrix& block = sample_responses.at(t).at(q);  // over contacts(q)
    const auto pos = positions_in(ids, contacts(q));
    for (std::size_t i = 0; i < ids.size(); ++i) samples(i, c) = block(pos[i], 0);
  }
  const Svd dec = svd(samples);
  const std::size_t r = std::min(
      {numerical_rank(dec.sigma, options_.sigma_rel_tol), options_.max_rank, ids.size()});
  return dec.u.block(0, 0, ids.size(), r);
}

void RowBasisRep::build_level(const SubstrateSolver& solver, int level) {
  const QuadTree& tree = *tree_;
  Rng rng(options_.seed + static_cast<std::uint64_t>(level) * 0x9e37ULL);

  // Random sample vector per square, responses via the splitting method.
  std::map<SquareId, Matrix> sample_batches;
  for (const SquareId& s : tree.squares(level)) {
    Matrix m(contacts(s).size(), 1);
    for (std::size_t i = 0; i < m.rows(); ++i) m(i, 0) = rng.normal();
    sample_batches.emplace(s, std::move(m));
  }
  const auto sample_resp = split_responses(solver, level, sample_batches);

  for (const SquareId& s : tree.squares(level)) {
    SquareRep rep;
    rep.v = row_basis_from_samples(s, sample_resp);
    reps_.emplace(s, std::move(rep));
  }

  // Responses to the row bases, again via the splitting method, recorded
  // over P_s by restriction from the parent-level local squares.
  std::map<SquareId, Matrix> v_batches;
  for (const SquareId& s : tree.squares(level)) v_batches.emplace(s, reps_.at(s).v);
  const auto v_resp = split_responses(solver, level, v_batches);

  for (const SquareId& s : tree.squares(level)) {
    SquareRep& rep = reps_.at(s);
    auto region = tree.local(s);
    for (const SquareId& q : tree.interactive(s)) region.push_back(q);
    for (const SquareId& qf : region) {
      const SquareId q = tree.ancestor(qf, s.level - 1);
      const Matrix& block = v_resp.at(s).at(q);
      rep.response.emplace(qf, restrict_rows(block, positions_in(contacts(qf), contacts(q))));
    }
  }
}

// ---------------------------------------------------------- finest level

void RowBasisRep::build_finest(const SubstrateSolver& solver) {
  const QuadTree& tree = *tree_;
  const int maxlev = tree.max_level();
  const std::size_t n = tree.layout().n_contacts();

  std::map<SquareId, Matrix> w_batches;
  for (const SquareId& s : tree.squares(maxlev)) {
    const Matrix w = orthonormal_complement(reps_.at(s).v, contacts(s).size());
    finest_w_.emplace(s, w);
    w_batches.emplace(s, w);
  }

  // Responses to the W columns: splitting method when a parent level
  // exists, direct solves when level 2 is already the finest.
  std::map<SquareId, ResponseBlocks> w_resp;
  if (maxlev >= 3) {
    w_resp = split_responses(solver, maxlev, w_batches);
  } else {
    // Level 2 is already the finest: direct solves, all W columns of all
    // squares batched into one solve_many call.
    std::vector<std::pair<SquareId, std::size_t>> w_cols;  // (square, column)
    for (const SquareId& s : tree.squares(maxlev))
      for (std::size_t k = 0; k < w_batches.at(s).cols(); ++k) w_cols.emplace_back(s, k);
    Matrix rhs(n, w_cols.size());
    for (std::size_t c = 0; c < w_cols.size(); ++c) {
      const auto& [s, k] = w_cols[c];
      const auto& ids = contacts(s);
      const Matrix& w = w_batches.at(s);
      for (std::size_t i = 0; i < ids.size(); ++i) rhs(ids[i], c) = w(i, k);
    }
    const Matrix resp = solver.solve_many(rhs);

    std::size_t col = 0;
    for (const SquareId& s : tree.squares(maxlev)) {
      const Matrix& w = w_batches.at(s);
      ResponseBlocks blocks;
      for (const SquareId& q : tree.local(s)) {
        const auto& qids = contacts(q);
        Matrix block(qids.size(), w.cols());
        for (std::size_t k = 0; k < w.cols(); ++k)
          for (std::size_t i = 0; i < qids.size(); ++i) block(i, k) = resp(qids[i], col + k);
        blocks.emplace(q, std::move(block));
      }
      w_resp.emplace(s, std::move(blocks));
      col += w.cols();
    }
  }

  // Assemble the finest-level local blocks (eq. 4.26).
  for (const SquareId& s : tree.squares(maxlev)) {
    const Matrix& v = reps_.at(s).v;
    const Matrix& w = finest_w_.at(s);
    for (const SquareId& q : tree.local(s)) {
      const SquareId qc = maxlev >= 3 ? tree.ancestor(q, maxlev - 1) : q;
      const Matrix& wblock_coarse = w_resp.at(s).at(qc);
      const Matrix gw = maxlev >= 3 ? restrict_rows(wblock_coarse,
                                                    positions_in(contacts(q), contacts(qc)))
                                    : wblock_coarse;
      Matrix g(contacts(q).size(), contacts(s).size());
      if (v.cols() > 0) matmul_nt_add(g, reps_.at(s).response.at(q), v);
      if (w.cols() > 0) matmul_nt_add(g, gw, w);
      finest_g_.emplace(std::make_pair(q, s), std::move(g));
    }
  }
}

// ------------------------------------------------------------------ apply

Vector RowBasisRep::apply(const Vector& x) const {
  const QuadTree& tree = *tree_;
  SUBSPAR_REQUIRE(x.size() == tree.layout().n_contacts());
  Vector out(x.size());

  for (int lev = 2; lev <= tree.max_level(); ++lev) {
    for (const SquareId& s : tree.squares(lev)) {
      const auto& ids = contacts(s);
      const Vector xs = restrict_to(x, ids);
      const SquareRep& rep = reps_.at(s);
      Vector cs, os = xs;
      if (rep.v.cols() > 0) {
        cs = matvec_t(rep.v, xs);
        os -= matvec(rep.v, cs);
      }
      for (const SquareId& d : tree.interactive(s)) {
        const auto& dids = contacts(d);
        Vector id(dids.size());
        // (G_{d,s} V_s) V_s' x_s ...
        if (rep.v.cols() > 0) id += matvec(rep.response.at(d), cs);
        // ... + V_d (G_{s,d} V_d)' (x_s - V_s V_s' x_s)   (eq. 4.16)
        const SquareRep& drep = reps_.at(d);
        if (drep.v.cols() > 0 && drep.response.count(s) > 0) {
          id += matvec(drep.v, matvec_t(drep.response.at(s), os));
        }
        for (std::size_t i = 0; i < dids.size(); ++i) out[dids[i]] += id[i];
      }
    }
  }

  for (const SquareId& s : tree.squares(tree.max_level())) {
    const Vector xs = restrict_to(x, contacts(s));
    for (const SquareId& q : tree.local(s)) {
      const auto& qids = contacts(q);
      const Vector iq = matvec(finest_g_.at({q, s}), xs);
      for (std::size_t i = 0; i < qids.size(); ++i) out[qids[i]] += iq[i];
    }
  }
  return out;
}

}  // namespace subspar
