#include "lowrank/rbk_basis.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "substrate/solver.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace subspar {

std::size_t rbk_adaptive_rank(const Vector& sigma, double target_tol, std::size_t max_rank,
                              std::size_t dim) {
  SUBSPAR_REQUIRE(target_tol > 0.0);
  double total = 0.0;
  for (const double s : sigma) total += s * s;
  if (total == 0.0) return 0;
  const std::size_t cap = std::min(max_rank, dim);
  const double budget = target_tol * target_tol * total;
  double tail = total;
  for (std::size_t r = 0; r < sigma.size(); ++r) {
    if (r >= cap) return cap;
    if (tail <= budget) return r;
    tail -= sigma[r] * sigma[r];
  }
  return std::min(sigma.size(), cap);
}

double rbk_subspace_residual(const Matrix& v, const Matrix& samples) {
  const double total = samples.frobenius_norm();
  if (total == 0.0) return 0.0;
  if (v.cols() == 0) return 1.0;
  Matrix resid = samples;
  const Matrix coeff = matmul_tn(v, samples);
  matmul_add(resid, v, coeff, -1.0);  // S - V (V'S)
  return resid.frobenius_norm() / total;
}

Matrix rbk_gaussian_probes(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix omega(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) omega(i, j) = rng.normal();
  // QR re-orthonormalization: probe columns with unit norm and no mutual
  // overlap spread the response energy evenly, which keeps the residual
  // certificate well scaled. Wide blocks (cols > rows) stay raw — QR would
  // need rows >= cols — and are truncated by the caller's rank caps anyway.
  if (rows >= cols && cols > 0) return QR(omega).thin_q();
  return omega;
}

std::uint64_t rbk_stream_seed(std::uint64_t seed, int level, int round, int ix, int iy) {
  // SplitMix64-style finalization over the tuple so each (block, round)
  // draws an independent stream regardless of which other blocks probe.
  std::uint64_t z = seed;
  const auto mix = [&z](std::uint64_t v) {
    z += 0x9e3779b97f4a7c15ULL + v;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
  };
  mix(static_cast<std::uint64_t>(level));
  mix(static_cast<std::uint64_t>(round));
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(ix)));
  mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(iy)));
  return z;
}

RbkRange rbk_range(const std::function<Matrix(const Matrix&)>& apply_many, std::size_t n,
                   const RbkOptions& options, std::size_t max_rank, std::uint64_t seed) {
  SUBSPAR_REQUIRE(n > 0 && options.block_size >= 1 && options.max_iters >= 1);
  SUBSPAR_REQUIRE(options.target_tol > 0.0 && options.target_tol < 1.0);
  const std::size_t b = std::min(options.block_size, n);

  RbkRange out;
  Matrix samples(n, 0);

  const auto record = [&](int round, std::size_t probes, double residual) {
    RbkStep step;
    step.level = 0;
    step.round = round;
    step.probe_columns = probes;
    step.active_blocks = 1;
    step.max_rank = out.basis.cols();
    step.mean_rank = static_cast<double>(out.basis.cols());
    step.max_residual = residual;
    out.trajectory.push_back(step);
  };

  // Round 0: the Gaussian sketch.
  {
    const Matrix omega = rbk_gaussian_probes(n, b, rbk_stream_seed(seed, 0, 0, 0, 0));
    const Matrix y = apply_many(omega);
    out.applies += omega.cols();
    samples = Matrix::hcat(samples, y);
    const Svd dec = svd(samples);
    const std::size_t r = rbk_adaptive_rank(dec.sigma, options.target_tol, max_rank, n);
    out.basis = dec.u.block(0, 0, n, r);
    record(0, omega.cols(), 1.0);
  }

  // Krylov rounds: probe [V | fresh Gaussian block]. The V columns push the
  // sketch one power of G deeper (V spans previous responses, so G V adds
  // G^2-filtered directions); the fresh Gaussian columns supply the
  // independent responses the residual certificate is measured on.
  for (std::size_t round = 1; round <= options.max_iters; ++round) {
    // Each Krylov round consumes a batch of black-box solves; checking here
    // (in addition to the per-solve checkpoint) keeps a cancelled sketch
    // from launching the next round's probe block.
    cancellation_point("rbk-range");
    const Matrix fresh =
        rbk_gaussian_probes(n, b, rbk_stream_seed(seed, 0, static_cast<int>(round), 0, 0));
    const Matrix probes = Matrix::hcat(out.basis, fresh);
    const Matrix y = apply_many(probes);
    out.applies += probes.cols();
    const Matrix y_fresh = y.block(0, out.basis.cols(), n, fresh.cols());
    const double residual = rbk_subspace_residual(out.basis, y_fresh);
    samples = Matrix::hcat(samples, y);
    if (residual <= options.target_tol) {
      record(static_cast<int>(round), probes.cols(), residual);
      out.converged = true;
      return out;
    }
    const Svd dec = svd(samples);
    const std::size_t r = rbk_adaptive_rank(dec.sigma, options.target_tol, max_rank, n);
    out.basis = dec.u.block(0, 0, n, r);
    record(static_cast<int>(round), probes.cols(), residual);
  }
  return out;
}

RbkRange rbk_range(const SubstrateSolver& solver, const RbkOptions& options,
                   std::size_t max_rank, std::uint64_t seed) {
  return rbk_range([&](const Matrix& x) { return solver.solve_many(x); },
                   solver.n_contacts(), options, max_rank, seed);
}

}  // namespace subspar
