// Annotated synchronization primitives: the only place in the library that
// may name a std:: mutex or lock type (enforced by tools/subspar_lint.py).
//
// Every wrapper carries Clang Thread Safety Analysis capability attributes,
// so a clang build with -Wthread-safety proves at compile time that every
// access to a SUBSPAR_GUARDED_BY member happens under its mutex, that
// SUBSPAR_REQUIRES contracts hold at every call site, and that no lock is
// leaked or double-acquired — before any test runs, on every interleaving.
// Under GCC/MSVC the annotations compile to nothing and the wrappers are
// zero-cost forwarding shims over the std primitives.
//
// Two analysis-shaped rules of use (see docs/ARCHITECTURE.md, "Static
// analysis & invariants"):
//  - Condition-variable predicates are written as explicit while-loops in
//    the waiting function, never as lambdas passed to wait(): the analysis
//    checks each lambda body as its own function, so a predicate lambda
//    reading guarded state would need a suppression — the loop form needs
//    none and is equally correct.
//  - Constructors/destructors are not analyzed by Clang (documented
//    limitation); hot-path invariants therefore never live only in a ctor.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Attribute macros (Clang Thread Safety Analysis; no-ops elsewhere)
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define SUBSPAR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SUBSPAR_THREAD_ANNOTATION(x)  // not a thread-safety-analysis compiler
#endif

/// Declares a type to be a capability (a lockable resource).
#define SUBSPAR_CAPABILITY(x) SUBSPAR_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type whose lifetime holds a capability.
#define SUBSPAR_SCOPED_CAPABILITY SUBSPAR_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding `x`.
#define SUBSPAR_GUARDED_BY(x) SUBSPAR_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose pointee is guarded by `x` (the pointer itself is not).
#define SUBSPAR_PT_GUARDED_BY(x) SUBSPAR_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function precondition: caller holds the capability exclusively.
#define SUBSPAR_REQUIRES(...) \
  SUBSPAR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function precondition: caller holds the capability at least shared.
#define SUBSPAR_REQUIRES_SHARED(...) \
  SUBSPAR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability exclusively (does not already hold it).
#define SUBSPAR_ACQUIRE(...) \
  SUBSPAR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function acquires the capability shared.
#define SUBSPAR_ACQUIRE_SHARED(...) \
  SUBSPAR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the capability (any mode for scoped types).
#define SUBSPAR_RELEASE(...) \
  SUBSPAR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function releases a shared hold of the capability.
#define SUBSPAR_RELEASE_SHARED(...) \
  SUBSPAR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function acquires exclusively iff it returns `result`.
#define SUBSPAR_TRY_ACQUIRE(result, ...) \
  SUBSPAR_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))
/// Function acquires shared iff it returns `result`.
#define SUBSPAR_TRY_ACQUIRE_SHARED(result, ...) \
  SUBSPAR_THREAD_ANNOTATION(try_acquire_shared_capability(result, __VA_ARGS__))
/// Function must be called WITHOUT the capability held (deadlock guard).
#define SUBSPAR_EXCLUDES(...) SUBSPAR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (trusted by the analysis).
#define SUBSPAR_ASSERT_CAPABILITY(x) SUBSPAR_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the named capability.
#define SUBSPAR_RETURN_CAPABILITY(x) SUBSPAR_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch; requires a written justification per the NOLINT policy.
#define SUBSPAR_NO_THREAD_SAFETY_ANALYSIS \
  SUBSPAR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace subspar {

// ---------------------------------------------------------------------------
// Capability types
// ---------------------------------------------------------------------------

/// std::mutex as an annotated capability. Non-recursive, non-copyable.
class SUBSPAR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SUBSPAR_ACQUIRE() { m_.lock(); }
  void unlock() SUBSPAR_RELEASE() { m_.unlock(); }
  bool try_lock() SUBSPAR_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// Underlying handle — for CondVar only; never lock through it directly
  /// (the analysis cannot see acquisitions made on the native handle).
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// std::shared_mutex as an annotated capability: one writer or many readers.
class SUBSPAR_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() SUBSPAR_ACQUIRE() { m_.lock(); }
  void unlock() SUBSPAR_RELEASE() { m_.unlock(); }
  bool try_lock() SUBSPAR_TRY_ACQUIRE(true) { return m_.try_lock(); }

  void lock_shared() SUBSPAR_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() SUBSPAR_RELEASE_SHARED() { m_.unlock_shared(); }
  bool try_lock_shared() SUBSPAR_TRY_ACQUIRE_SHARED(true) {
    return m_.try_lock_shared();
  }

 private:
  std::shared_mutex m_;
};

// ---------------------------------------------------------------------------
// Scoped locks
// ---------------------------------------------------------------------------

/// std::lock_guard equivalent over Mutex: exclusive for the full scope.
class SUBSPAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SUBSPAR_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SUBSPAR_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// std::unique_lock equivalent over Mutex: exclusive for the full scope and
/// waitable via CondVar. (No deferred/adopted modes: the analysis tracks a
/// scoped capability as held for its whole lifetime, so conditional
/// ownership would lie to it. Use Mutex::try_lock for opportunistic paths.)
class SUBSPAR_SCOPED_CAPABILITY MutexUniqueLock {
 public:
  explicit MutexUniqueLock(Mutex& mutex) SUBSPAR_ACQUIRE(mutex)
      : lock_(mutex.native()) {}
  ~MutexUniqueLock() SUBSPAR_RELEASE() {}  // member unique_lock releases
  MutexUniqueLock(const MutexUniqueLock&) = delete;
  MutexUniqueLock& operator=(const MutexUniqueLock&) = delete;

  /// For CondVar only.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Writer lock over SharedMutex: exclusive for the full scope.
class SUBSPAR_SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& mutex) SUBSPAR_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~ExclusiveLock() SUBSPAR_RELEASE() { mutex_.unlock(); }
  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Reader lock over SharedMutex: shared for the full scope.
class SUBSPAR_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mutex) SUBSPAR_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~SharedLock() SUBSPAR_RELEASE() { mutex_.unlock_shared(); }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mutex_;
};

// ---------------------------------------------------------------------------
// Condition variable
// ---------------------------------------------------------------------------

/// std::condition_variable over MutexUniqueLock. Waits take the lock object,
/// so the analysis sees the mutex held across the wait (the internal
/// release/reacquire is invisible to it — and irrelevant: guarded state is
/// only ever read while the wait has the mutex). Predicates are deliberately
/// NOT accepted; write the while-loop in the caller, where guarded reads are
/// checked against the held capability (see file header).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(MutexUniqueLock& lock) { cv_.wait(lock.native()); }

  template <class Clock, class Duration>
  std::cv_status wait_until(MutexUniqueLock& lock,
                            const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lock.native(), tp);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexUniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.native(), d);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace subspar
