// Lightweight precondition / invariant checking.
//
// SUBSPAR_REQUIRE is used for caller-facing preconditions (throws
// std::invalid_argument); SUBSPAR_ENSURE for internal invariants (throws
// std::logic_error). Both stay enabled in release builds: every check guards
// a numerical-validity condition whose violation would silently corrupt an
// extraction run.
#pragma once

#include <stdexcept>
#include <string>

namespace subspar {

[[noreturn]] inline void fail_require(const char* cond, const char* file, int line) {
  throw std::invalid_argument(std::string("requirement failed: ") + cond + " at " + file + ":" +
                              std::to_string(line));
}

[[noreturn]] inline void fail_ensure(const char* cond, const char* file, int line) {
  throw std::logic_error(std::string("invariant failed: ") + cond + " at " + file + ":" +
                         std::to_string(line));
}

}  // namespace subspar

#define SUBSPAR_REQUIRE(cond) \
  do {                        \
    if (!(cond)) ::subspar::fail_require(#cond, __FILE__, __LINE__); \
  } while (0)

#define SUBSPAR_ENSURE(cond) \
  do {                       \
    if (!(cond)) ::subspar::fail_ensure(#cond, __FILE__, __LINE__); \
  } while (0)
