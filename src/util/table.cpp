#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace subspar {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SUBSPAR_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  SUBSPAR_REQUIRE(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string Table::fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string Table::pct(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, 100.0 * v);
  return buf;
}

}  // namespace subspar
