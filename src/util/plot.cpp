#include "util/plot.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace subspar {

std::string ascii_grid(std::size_t rows, std::size_t cols,
                       const std::function<int(std::size_t, std::size_t)>& cell) {
  // Glyph per occupancy class; class 0 is empty space.
  static const char glyphs[] = {'.', '#', 'o', '+', 'x', '@', '%', '&'};
  std::ostringstream out;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const int v = cell(i, j);
      const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(v < 0 ? 0 : v),
                                                  sizeof(glyphs) - 1);
      out << glyphs[k];
    }
    out << '\n';
  }
  return out.str();
}

std::string ascii_spy(std::size_t n,
                      const std::vector<std::pair<std::size_t, std::size_t>>& entries,
                      std::size_t max_side) {
  SUBSPAR_REQUIRE(n > 0 && max_side > 0);
  const std::size_t side = std::min(n, max_side);
  std::vector<int> bucket(side * side, 0);
  for (const auto& [r, c] : entries) {
    SUBSPAR_REQUIRE(r < n && c < n);
    const std::size_t br = r * side / n;
    const std::size_t bc = c * side / n;
    ++bucket[br * side + bc];
  }
  // Shade by bucket fill fraction so dense and sparse matrices both show
  // their structure (a raw count threshold saturates once n >> max_side).
  const double capacity = (static_cast<double>(n) / static_cast<double>(side)) *
                          (static_cast<double>(n) / static_cast<double>(side));
  std::ostringstream out;
  for (std::size_t i = 0; i < side; ++i) {
    for (std::size_t j = 0; j < side; ++j) {
      const double f = static_cast<double>(bucket[i * side + j]) / capacity;
      out << (f == 0.0 ? '.' : (f < 0.25 ? ':' : (f < 0.6 ? '*' : '#')));
    }
    out << '\n';
  }
  out << "nnz = " << entries.size() << " of " << n << "x" << n << '\n';
  return out.str();
}

void write_pgm(const std::string& path, std::size_t rows, std::size_t cols,
               const std::vector<unsigned char>& pixels) {
  SUBSPAR_REQUIRE(pixels.size() == rows * cols);
  std::ofstream f(path, std::ios::binary);
  SUBSPAR_REQUIRE(f.good());
  f << "P5\n" << cols << " " << rows << "\n255\n";
  f.write(reinterpret_cast<const char*>(pixels.data()),
          static_cast<std::streamsize>(pixels.size()));
}

}  // namespace subspar
