#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace subspar {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 expansion avoids the all-zero state xoshiro cannot leave.
  for (auto& s : s_) s = splitmix64(seed);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits give a uniform dyadic rational in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  SUBSPAR_REQUIRE(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace subspar
