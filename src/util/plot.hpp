// Text and PGM rendering of contact layouts and matrix sparsity ("spy")
// plots, standing in for the MATLAB figures of the paper (Figs. 3-6..3-10,
// 4-8..4-11).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace subspar {

/// Render an occupancy grid (row 0 printed at the top) as ASCII art.
/// `cell(i, j)` returns 0 for empty; nonzero values map to distinct glyphs.
std::string ascii_grid(std::size_t rows, std::size_t cols,
                       const std::function<int(std::size_t, std::size_t)>& cell);

/// MATLAB-style spy plot downsampled to at most `max_side` character cells.
/// `entries` lists (row, col) coordinates of nonzeros of an n-by-n matrix.
std::string ascii_spy(std::size_t n, const std::vector<std::pair<std::size_t, std::size_t>>& entries,
                      std::size_t max_side = 64);

/// 8-bit binary PGM (grayscale) writer; pixels are row-major, 0 = black.
void write_pgm(const std::string& path, std::size_t rows, std::size_t cols,
               const std::vector<unsigned char>& pixels);

}  // namespace subspar
