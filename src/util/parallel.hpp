// Fixed-size thread pool shared by the batched solve pipeline.
//
// The pool size comes from the SUBSPAR_THREADS environment variable at
// first use (default: hardware concurrency). Size 1 runs everything inline
// on the caller — fully deterministic single-threaded execution. Because
// every parallel_for body writes only to its own disjoint output slots and
// per-index arithmetic is independent of the schedule, results are
// bit-identical for ANY thread count; SUBSPAR_THREADS=1 is the reference.
#pragma once

#include <cstddef>
#include <functional>

namespace subspar {

/// Current pool size (>= 1). Resolved from SUBSPAR_THREADS on first use.
std::size_t thread_count();

/// Re-sizes the pool (tests and tools; >= 1). Takes effect immediately:
/// existing workers are joined and a new pool is spun up.
void set_thread_count(std::size_t n);

/// Runs fn(i) for every i in [0, n), blocking until all complete. The body
/// must only write state owned by index i. Work is executed inline when the
/// pool has one thread, when called from inside a pool worker (no nested
/// parallelism), or when the calling thread is inside a ParallelInlineScope.
/// Concurrent calls from distinct external threads are safe: the pool runs
/// one job at a time and serializes the callers. The first exception thrown
/// by any body is rethrown on the caller.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// RAII marker for external job-engine worker threads (ExtractionService
/// workers and anything like them): every parallel_for issued from this
/// thread while the scope is alive runs inline on the caller instead of
/// scheduling on — and blocking behind — the shared SUBSPAR_THREADS pool.
/// Without this, N service workers all funnel their solve_many fan-outs
/// through the one pool and serialize (or, worse, a pool sized below the
/// worker count deadlocks the system under a blocking-job design); with it,
/// each worker is its own single-threaded lane and jobs overlap freely.
/// Inline execution is bit-identical to pooled execution by the pool's
/// schedule-independence guarantee. Scopes nest.
class ParallelInlineScope {
 public:
  ParallelInlineScope();
  ~ParallelInlineScope();
  ParallelInlineScope(const ParallelInlineScope&) = delete;
  ParallelInlineScope& operator=(const ParallelInlineScope&) = delete;

 private:
  bool previous_;
};

}  // namespace subspar
