#include "util/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/sync.hpp"

namespace subspar {
namespace {

thread_local bool g_in_worker = false;    // pool worker thread
thread_local bool g_in_parallel = false;  // caller currently inside parallel_for
thread_local bool g_inline_scope = false;  // inside a ParallelInlineScope

std::size_t env_thread_count() {
  // Read once per pool construction, before any worker exists; the value is
  // then immutable for the pool's lifetime.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): single read at pool construction
  if (const char* env = std::getenv("SUBSPAR_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

// Persistent worker pool. One job at a time (parallel_for blocks), indices
// handed out through an atomic counter, completion signalled back through a
// countdown + condition variable. The in-flight job's descriptor (fn, n) is
// published under mutex_ and handed to drain() by value, so workers never
// read job state outside the lock.
class Pool {
 public:
  explicit Pool(std::size_t threads) : threads_(threads) {
    for (std::size_t t = 0; t + 1 < threads_; ++t)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~Pool() {
    {
      const MutexLock lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t threads() const { return threads_; }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn)
      SUBSPAR_EXCLUDES(run_mutex_, mutex_) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    // One job at a time: concurrent external callers (e.g. two service
    // worker threads outside any ParallelInlineScope) would otherwise
    // clobber the in-flight job_fn_/active_ state mid-job. The second
    // caller queues here until the first job fully drains.
    const MutexLock serialize(run_mutex_);
    std::exception_ptr error;
    {
      const MutexLock lock(mutex_);
      job_fn_ = &fn;
      job_n_ = n;
      next_.store(0, std::memory_order_relaxed);
      active_ = workers_.size();
      ++generation_;
    }
    wake_.notify_all();
    drain(fn, n);  // the caller participates
    {
      MutexUniqueLock lock(mutex_);
      while (active_ != 0) done_.wait(lock);
      job_fn_ = nullptr;
      error = first_error_;
      first_error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void drain(const std::function<void(std::size_t)>& fn, std::size_t n)
      SUBSPAR_EXCLUDES(mutex_) {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const MutexLock lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
        next_.store(n, std::memory_order_relaxed);  // cancel the rest
      }
    }
  }

  void worker_loop() SUBSPAR_EXCLUDES(mutex_) {
    g_in_worker = true;
    std::size_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t n = 0;
      {
        MutexUniqueLock lock(mutex_);
        while (!stop_ && generation_ == seen) wake_.wait(lock);
        if (stop_) return;
        seen = generation_;
        fn = job_fn_;
        n = job_n_;
      }
      if (fn) drain(*fn, n);
      {
        const MutexLock lock(mutex_);
        if (--active_ == 0) done_.notify_all();
      }
    }
  }

  std::size_t threads_;
  std::vector<std::thread> workers_;
  Mutex run_mutex_;  // serializes whole jobs across external callers
  Mutex mutex_;
  CondVar wake_, done_;
  bool stop_ SUBSPAR_GUARDED_BY(mutex_) = false;
  std::size_t generation_ SUBSPAR_GUARDED_BY(mutex_) = 0;
  const std::function<void(std::size_t)>* job_fn_ SUBSPAR_GUARDED_BY(mutex_) = nullptr;
  std::size_t job_n_ SUBSPAR_GUARDED_BY(mutex_) = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ SUBSPAR_GUARDED_BY(mutex_) = 0;
  std::exception_ptr first_error_ SUBSPAR_GUARDED_BY(mutex_);
};

Mutex g_pool_mutex;
// shared_ptr, not unique_ptr: callers take a reference-counted handle under
// the lock and run their job on it outside the lock, so set_thread_count()
// replacing the pool mid-job can no longer destroy (and join) a pool another
// thread is still dispatching on — the old pool dies with its last user.
std::shared_ptr<Pool> g_pool SUBSPAR_GUARDED_BY(g_pool_mutex);

std::shared_ptr<Pool> pool() SUBSPAR_EXCLUDES(g_pool_mutex) {
  const MutexLock lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_shared<Pool>(env_thread_count());
  return g_pool;
}

}  // namespace

std::size_t thread_count() { return pool()->threads(); }

void set_thread_count(std::size_t n) {
  SUBSPAR_REQUIRE(n >= 1);
  std::shared_ptr<Pool> old;
  {
    const MutexLock lock(g_pool_mutex);
    old.swap(g_pool);
    g_pool = std::make_shared<Pool>(n);
  }
  // `old` (if last owner) is destroyed here, outside the lock: its
  // destructor joins worker threads and must not block pool() callers.
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  // No nested parallelism: a body running on a pool worker OR on a caller
  // that is itself inside a parallel_for (the caller participates in
  // draining its own job) runs inline — re-entering Pool::run mid-job
  // would clobber the in-flight job state. ParallelInlineScope callers
  // (external job-engine workers) run inline by design: they must not
  // block behind the shared pool while sibling workers hold it.
  if (g_in_worker || g_in_parallel || g_inline_scope) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  g_in_parallel = true;
  try {
    pool()->run(n, fn);
  } catch (...) {
    g_in_parallel = false;
    throw;
  }
  g_in_parallel = false;
}

ParallelInlineScope::ParallelInlineScope() : previous_(g_inline_scope) {
  g_inline_scope = true;
}

ParallelInlineScope::~ParallelInlineScope() { g_inline_scope = previous_; }

}  // namespace subspar
