#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace subspar {
namespace {

thread_local bool g_in_worker = false;    // pool worker thread
thread_local bool g_in_parallel = false;  // caller currently inside parallel_for
thread_local bool g_inline_scope = false;  // inside a ParallelInlineScope

std::size_t env_thread_count() {
  if (const char* env = std::getenv("SUBSPAR_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

// Persistent worker pool. One job at a time (parallel_for blocks), indices
// handed out through an atomic counter, completion signalled back through a
// countdown + condition variable.
class Pool {
 public:
  explicit Pool(std::size_t threads) : threads_(threads) {
    for (std::size_t t = 0; t + 1 < threads_; ++t)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~Pool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t threads() const { return threads_; }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    // One job at a time: concurrent external callers (e.g. two service
    // worker threads outside any ParallelInlineScope) would otherwise
    // clobber the in-flight job_fn_/active_ state mid-job. The second
    // caller queues here until the first job fully drains.
    const std::lock_guard<std::mutex> serialize(run_mutex_);
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_fn_ = &fn;
      job_n_ = n;
      next_.store(0, std::memory_order_relaxed);
      active_ = workers_.size();
      ++generation_;
    }
    wake_.notify_all();
    drain(fn);  // the caller participates
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_.wait(lock, [this] { return active_ == 0; });
      job_fn_ = nullptr;
      error = first_error_;
      first_error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void drain(const std::function<void(std::size_t)>& fn) {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= job_n_) return;
      try {
        fn(i);
      } catch (...) {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
        next_.store(job_n_, std::memory_order_relaxed);  // cancel the rest
      }
    }
  }

  void worker_loop() {
    g_in_worker = true;
    std::size_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        fn = job_fn_;
      }
      if (fn) drain(*fn);
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (--active_ == 0) done_.notify_all();
      }
    }
  }

  std::size_t threads_;
  std::vector<std::thread> workers_;
  std::mutex run_mutex_;  // serializes whole jobs across external callers
  std::mutex mutex_;
  std::condition_variable wake_, done_;
  bool stop_ = false;
  std::size_t generation_ = 0;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;
  std::exception_ptr first_error_;
};

std::mutex g_pool_mutex;
std::unique_ptr<Pool> g_pool;  // guarded by g_pool_mutex

Pool& pool() {
  std::unique_lock<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<Pool>(env_thread_count());
  return *g_pool;
}

}  // namespace

std::size_t thread_count() { return pool().threads(); }

void set_thread_count(std::size_t n) {
  SUBSPAR_REQUIRE(n >= 1);
  std::unique_lock<std::mutex> lock(g_pool_mutex);
  g_pool = std::make_unique<Pool>(n);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  // No nested parallelism: a body running on a pool worker OR on a caller
  // that is itself inside a parallel_for (the caller participates in
  // draining its own job) runs inline — re-entering Pool::run mid-job
  // would clobber the in-flight job state. ParallelInlineScope callers
  // (external job-engine workers) run inline by design: they must not
  // block behind the shared pool while sibling workers hold it.
  if (g_in_worker || g_in_parallel || g_inline_scope) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  g_in_parallel = true;
  try {
    pool().run(n, fn);
  } catch (...) {
    g_in_parallel = false;
    throw;
  }
  g_in_parallel = false;
}

ParallelInlineScope::ParallelInlineScope() : previous_(g_inline_scope) {
  g_inline_scope = true;
}

ParallelInlineScope::~ParallelInlineScope() { g_inline_scope = previous_; }

}  // namespace subspar
