// Cooperative cancellation and deadlines for long-running extractions.
//
// A CancelToken is a tiny shared flag (+ optional absolute deadline) that a
// client thread flips while an extraction runs on another thread. The
// extraction side never polls the token directly: the Extractor installs the
// request's token into a thread-local CancelScope for the duration of the
// pipeline, and the long loops deep in the stack (pcg_block iterations,
// RBK sketch rounds, every black-box solve_many batch) call
// cancellation_point(), which is a single thread-local load when no token is
// installed — the uncancellable fast path costs nothing measurable.
//
// Cancellation and deadline expiry surface as the typed exceptions below;
// Extractor::extract maps them to ErrorCode::kCancelled /
// kDeadlineExceeded (subspar/status.hpp). Checks never perturb numerics:
// a run that is not cancelled is bit-identical to one with no token at all.
//
// Static-analysis note: this module is deliberately lock-free — every shared
// member is a std::atomic with acquire/release ordering, so there is no
// capability to annotate (util/sync.hpp). Waiting on a token (service
// backoff) pairs the atomic reads with a CondVar under the job mutex; the
// notify side must hold that mutex — see ExtractionJob::cancel().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace subspar {

/// Thrown at a cancellation point after CancelToken::cancel(); mapped to
/// ErrorCode::kCancelled by the Extractor.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& where)
      : std::runtime_error("cancelled at '" + where + "'"), where_(where) {}
  const std::string& where() const { return where_; }

 private:
  std::string where_;
};

/// Thrown at a cancellation point once the token's deadline has passed;
/// mapped to ErrorCode::kDeadlineExceeded by the Extractor.
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(const std::string& where)
      : std::runtime_error("deadline exceeded at '" + where + "'"), where_(where) {}
  const std::string& where() const { return where_; }

 private:
  std::string where_;
};

/// Shared cancellation flag + optional deadline. All members are lock-free
/// and safe to call from any thread; the token outlives the extraction via
/// shared_ptr ownership (ExtractionRequest::cancel, ExtractionJob).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cooperative cancellation; idempotent.
  void cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// Arms an absolute deadline `ms` milliseconds from now (steady clock).
  /// ms <= 0 arms an already-expired deadline.
  void set_deadline_after_ms(double ms);
  bool has_deadline() const { return deadline_ns_.load(std::memory_order_acquire) != 0; }
  bool deadline_expired() const;
  /// Milliseconds until the deadline (negative once expired); a very large
  /// value when no deadline is armed.
  double remaining_ms() const;

  /// Throws CancelledError / DeadlineExceededError if the token demands it;
  /// `where` names the checkpoint for the error message.
  void check(const char* where) const;

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  // steady_clock ns since epoch; 0 = none
};

/// RAII installer of the calling thread's active token. Scopes nest (the
/// previous token is restored on destruction); the token may be null, which
/// makes every cancellation_point in the scope a no-op.
class CancelScope {
 public:
  explicit CancelScope(const CancelToken* token);
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  const CancelToken* previous_;
};

/// The token installed on the calling thread (nullptr outside any scope).
const CancelToken* current_cancel_token();

/// Checkpoint: throws the typed cancellation/deadline error when the
/// thread's installed token demands it; a single thread-local load
/// otherwise. Safe to call from tight loops.
void cancellation_point(const char* where);

}  // namespace subspar
