// Fixed-width text tables for the bench harnesses that regenerate the
// paper's tables. Columns auto-size to content; numeric cells are produced
// by the caller (so each table controls its own significant digits).
#pragma once

#include <string>
#include <vector>

namespace subspar {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render with aligned columns, a header underline, and 2-space gutters.
  std::string str() const;

  /// Format helpers used by the benches.
  static std::string num(double v, int precision = 3);
  static std::string fixed(double v, int decimals = 1);
  static std::string pct(double v, int decimals = 1);  ///< v is a fraction

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace subspar
