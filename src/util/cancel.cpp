#include "util/cancel.hpp"

namespace subspar {
namespace {

thread_local const CancelToken* g_current_token = nullptr;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void CancelToken::set_deadline_after_ms(double ms) {
  const double ns = ms * 1e6;
  std::int64_t deadline = now_ns() + static_cast<std::int64_t>(ns);
  if (deadline == 0) deadline = 1;  // 0 is the "no deadline" sentinel
  deadline_ns_.store(deadline, std::memory_order_release);
}

bool CancelToken::deadline_expired() const {
  const std::int64_t d = deadline_ns_.load(std::memory_order_acquire);
  return d != 0 && now_ns() >= d;
}

double CancelToken::remaining_ms() const {
  const std::int64_t d = deadline_ns_.load(std::memory_order_acquire);
  if (d == 0) return 1e300;
  return static_cast<double>(d - now_ns()) * 1e-6;
}

void CancelToken::check(const char* where) const {
  if (cancelled()) throw CancelledError(where);
  if (deadline_expired()) throw DeadlineExceededError(where);
}

CancelScope::CancelScope(const CancelToken* token) : previous_(g_current_token) {
  g_current_token = token;
}

CancelScope::~CancelScope() { g_current_token = previous_; }

const CancelToken* current_cancel_token() { return g_current_token; }

void cancellation_point(const char* where) {
  const CancelToken* token = g_current_token;
  if (token != nullptr) token->check(where);
}

}  // namespace subspar
