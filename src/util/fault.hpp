// Deterministic fault injection for the extraction stack.
//
// The fault-tolerance layer (linalg/robust.hpp, the solver fallback chains,
// the checksummed ModelCache) has recovery paths that never run in a healthy
// build. This harness makes them testable: setting
//
//   SUBSPAR_FAULT="<seed>[:<rate>[:<cooldown>[:<sites>]]]"
//
// arms a deterministic, seeded schedule that fires faults at instrumented
// sites — corrupted operator applies / solve results inside the solvers,
// failing reads/writes in the cache and model-IO layers. The schedule is a
// pure function of (seed, site, per-site invocation count), so a run replays
// bit-identically for a fixed seed and the CI fault matrix pins three of
// them. `rate` is the per-invocation fire probability (default 0.02);
// `cooldown` suppresses a site for that many invocations after it fires
// (default 500) so a recovery attempt is not re-poisoned before it can
// verify; `sites` restricts firing to a subset (letters a/s/r/w/i/q per the
// FaultSite enum, default all).
//
// With SUBSPAR_FAULT unset the harness is inert: fault_fire() returns false
// and instrumented code paths are bit-identical to an uninstrumented build.
#pragma once

#include <cstdint>
#include <string>

namespace subspar {

/// Instrumented injection points.
enum class FaultSite : int {
  kSolverApply = 0,  ///< operator application inside an iterative solve ('a')
  kSolverSolve,      ///< candidate solution block before verification ('s')
  kCacheRead,        ///< ModelCache persisted-file read ('r')
  kCacheWrite,       ///< model-file write, before the atomic rename ('w')
  kIo,               ///< low-level model-file parse ('i')
  kQueue,            ///< service queue path, before a job attempt starts ('q')
};
inline constexpr int kFaultSiteCount = 6;

/// Human-readable site name ("solver-apply", ...).
const char* fault_site_name(FaultSite site);

/// True when SUBSPAR_FAULT armed the harness (parsed once, lazily; see
/// fault_reset()).
bool fault_injection_enabled();

/// Advances the site's invocation counter and reports whether the schedule
/// fires a fault at this invocation. Deterministic for a fixed seed;
/// thread-safe; always false when the harness is disarmed.
bool fault_fire(FaultSite site);

/// Deterministic corruption value for the site's k-th fired fault:
/// alternates a quiet NaN with a huge finite value so both garbage kinds
/// (non-finite and wildly wrong) exercise the guards.
double fault_corrupt_value(std::uint64_t fired_index);

/// Deterministic entry index in [0, extent) for the site's k-th fired fault.
std::uint64_t fault_corrupt_index(FaultSite site, std::uint64_t fired_index,
                                  std::uint64_t extent);

struct FaultCounts {
  std::uint64_t invocations[kFaultSiteCount] = {};
  std::uint64_t fired[kFaultSiteCount] = {};
};
/// Snapshot of the per-site counters since arm/reset.
FaultCounts fault_counts();

/// Number of faults fired at `site` so far (convenience over fault_counts).
std::uint64_t fault_fired(FaultSite site);

/// Re-reads SUBSPAR_FAULT and zeroes every counter. Tests call this after
/// setenv/unsetenv; production code never needs it.
void fault_reset();

}  // namespace subspar
