// 64-bit FNV-1a content hashing for cache keys and fingerprints.
//
// Deliberately not std::hash: keys derived from this hash are used as
// on-disk filenames and must be identical across processes, platforms, and
// endiannesses. Integers are folded in fixed little-endian byte order and
// doubles as their exact %a hex-float text, so equal values always hash
// equally regardless of host representation.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace subspar {

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
  void str(const std::string& s) {
    bytes(s.data(), s.size());
    sep();
  }
  void u64(std::uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(b, sizeof b);
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%a", v);
    bytes(buf, std::strlen(buf));
    sep();
  }
  void sep() { bytes("|", 1); }

  /// The digest as 16 lowercase hex digits.
  std::string hex() const {
    char out[17];
    std::snprintf(out, sizeof out, "%016llx", static_cast<unsigned long long>(h));
    return out;
  }
};

}  // namespace subspar
