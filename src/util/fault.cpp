#include "util/fault.hpp"

#include <cmath>
#include <cstdlib>

#include "util/sync.hpp"

namespace subspar {
namespace {

// SplitMix64 finalizer: the schedule is a pure hash of (seed, site,
// invocation), so it replays bit-identically and is independent of call
// interleaving across sites.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash3(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = seed;
  z = mix(z + 0x9e3779b97f4a7c15ULL + a);
  z = mix(z + 0x9e3779b97f4a7c15ULL + b);
  return z;
}

struct Config {
  bool enabled = false;
  std::uint64_t seed = 0;
  double rate = 0.02;
  std::uint64_t cooldown = 500;
  bool site_on[kFaultSiteCount] = {true, true, true, true, true, true};
};

Config parse_env() {
  Config cfg;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read under State::mutex only
  const char* env = std::getenv("SUBSPAR_FAULT");
  if (env == nullptr || *env == '\0') return cfg;
  // "<seed>[:<rate>[:<cooldown>[:<sites>]]]"; malformed fields keep their
  // defaults rather than aborting the host process.
  char* end = nullptr;
  cfg.seed = std::strtoull(env, &end, 10);
  if (end == env) return cfg;  // no leading seed: stay disarmed
  cfg.enabled = true;
  if (*end == ':') {
    const char* p = end + 1;
    const double rate = std::strtod(p, &end);
    if (end != p && rate >= 0.0 && rate <= 1.0) cfg.rate = rate;
  }
  if (*end == ':') {
    const char* p = end + 1;
    const std::uint64_t cd = std::strtoull(p, &end, 10);
    if (end != p) cfg.cooldown = cd;
  }
  if (*end == ':') {
    for (int i = 0; i < kFaultSiteCount; ++i) cfg.site_on[i] = false;
    for (const char* p = end + 1; *p != '\0'; ++p) {
      switch (*p) {
        case 'a': cfg.site_on[static_cast<int>(FaultSite::kSolverApply)] = true; break;
        case 's': cfg.site_on[static_cast<int>(FaultSite::kSolverSolve)] = true; break;
        case 'r': cfg.site_on[static_cast<int>(FaultSite::kCacheRead)] = true; break;
        case 'w': cfg.site_on[static_cast<int>(FaultSite::kCacheWrite)] = true; break;
        case 'i': cfg.site_on[static_cast<int>(FaultSite::kIo)] = true; break;
        case 'q': cfg.site_on[static_cast<int>(FaultSite::kQueue)] = true; break;
        default: break;  // ignore separators/unknown letters
      }
    }
  }
  return cfg;
}

struct State {
  Mutex mutex;
  bool loaded SUBSPAR_GUARDED_BY(mutex) = false;
  Config config SUBSPAR_GUARDED_BY(mutex);
  FaultCounts counts SUBSPAR_GUARDED_BY(mutex);
  // Cooldown horizon per site.
  std::uint64_t quiet_until[kFaultSiteCount] SUBSPAR_GUARDED_BY(mutex) = {};

  void ensure_loaded() SUBSPAR_REQUIRES(mutex) {
    if (!loaded) {
      config = parse_env();
      loaded = true;
    }
  }
};

State& state() {
  static State st;
  return st;
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kSolverApply: return "solver-apply";
    case FaultSite::kSolverSolve: return "solver-solve";
    case FaultSite::kCacheRead: return "cache-read";
    case FaultSite::kCacheWrite: return "cache-write";
    case FaultSite::kIo: return "io";
    case FaultSite::kQueue: return "queue";
  }
  return "unknown";
}

bool fault_injection_enabled() {
  State& st = state();
  const MutexLock lock(st.mutex);
  st.ensure_loaded();
  return st.config.enabled;
}

bool fault_fire(FaultSite site) {
  State& st = state();
  const MutexLock lock(st.mutex);
  st.ensure_loaded();
  const int i = static_cast<int>(site);
  const std::uint64_t n = ++st.counts.invocations[i];
  if (!st.config.enabled || !st.config.site_on[i]) return false;
  if (n <= st.quiet_until[i]) return false;
  const std::uint64_t z = hash3(st.config.seed, static_cast<std::uint64_t>(i), n);
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  if (u >= st.config.rate) return false;
  ++st.counts.fired[i];
  st.quiet_until[i] = n + st.config.cooldown;
  return true;
}

double fault_corrupt_value(std::uint64_t fired_index) {
  return fired_index % 2 == 0 ? std::nan("") : 0x1.0p100;
}

std::uint64_t fault_corrupt_index(FaultSite site, std::uint64_t fired_index,
                                  std::uint64_t extent) {
  if (extent == 0) return 0;
  return hash3(0x5eedULL + static_cast<std::uint64_t>(site), fired_index, extent) % extent;
}

FaultCounts fault_counts() {
  State& st = state();
  const MutexLock lock(st.mutex);
  return st.counts;
}

std::uint64_t fault_fired(FaultSite site) {
  State& st = state();
  const MutexLock lock(st.mutex);
  return st.counts.fired[static_cast<int>(site)];
}

void fault_reset() {
  State& st = state();
  const MutexLock lock(st.mutex);
  st.config = parse_env();
  st.loaded = true;
  st.counts = FaultCounts{};
  for (auto& q : st.quiet_until) q = 0;
}

}  // namespace subspar
