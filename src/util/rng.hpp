// Deterministic random number generation.
//
// All stochastic pieces of the library (irregular layout generation, the
// random sample vectors of the low-rank method, test inputs) draw from this
// seeded xoshiro256** generator so that every extraction run and every bench
// table is exactly reproducible.
#pragma once

#include <cstdint>

namespace subspar {

/// xoshiro256** seeded via SplitMix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t below(std::uint64_t n);
  /// Standard normal deviate (Box-Muller, cached pair).
  double normal();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace subspar
