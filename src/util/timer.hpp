// Wall-clock timing for the benchmark harnesses (Table 2.2 style rows).
#pragma once

#include <chrono>

namespace subspar {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Elapsed wall-clock seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace subspar
