// Multilevel vanishing-moment ("wavelet") basis construction (§3.4).
//
// Per finest-level square s the SVD of the moment matrix M_s splits the
// square's voltage space into V_s (nonvanishing moments, pushed up) and W_s
// (all moments of order <= p vanish: fast-decaying current response). Coarser
// levels recombine the child V's through the SVD of their (center-shifted)
// moments (eq. 3.16). The columns of the orthogonal change-of-basis matrix Q
// are all W vectors plus the level-0 leftovers V_root (eq. 3.10).
#pragma once

#include "wavelet/transform_basis.hpp"

namespace subspar {

/// One column of Q in sparse form (alias of the shared TransformBasis type).
using WaveletColumn = BasisColumn;

/// The Chapter-3 change of basis: construction is purely geometric (moment
/// matrices only), so it never touches the substrate solver.
class WaveletBasis : public TransformBasis {
 public:
  /// p: vanishing-moment order (the paper uses p = 2, i.e. 6 constraints).
  /// rank_rel_tol: singular values below rank_rel_tol * sigma_max count as
  /// zero when sizing V_s.
  explicit WaveletBasis(const QuadTree& tree, int p = 2, double rank_rel_tol = 1e-10);

  /// The vanishing-moment order the basis was built with.
  int p() const { return p_; }

 private:
  int p_;
};

}  // namespace subspar
