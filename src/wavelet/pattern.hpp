// The conservative sparsity pattern of G_ws (§3.5).
//
// Two fast-decaying basis vectors are assumed to interact negligibly exactly
// when their squares are well-separated under the cross-level rule of
// QuadTree; root-level leftover (slow-decaying) interactions are never
// dropped. Shared by the wavelet and low-rank sparsifiers — the fine-to-
// coarse sweep of §4.4 keeps the same "local" interactions.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "linalg/sparse.hpp"
#include "wavelet/transform_basis.hpp"

namespace subspar {

class WaveletPattern {
 public:
  explicit WaveletPattern(const TransformBasis& basis) : basis_(&basis) {}

  /// True if entry (i, j) of G_w is kept under the conservative assumption.
  bool allowed(std::size_t i, std::size_t j) const;

  /// Masks a dense transformed matrix to the allowed pattern (the reference
  /// n-solve path against which combine-solves extraction is validated).
  SparseMatrix mask(const Matrix& gw) const;

  /// Number of allowed entries (the nnz of an exact-arithmetic G_ws).
  std::size_t count_allowed() const;

 private:
  const TransformBasis* basis_;
};

/// Accumulates measurements of entries of a symmetric matrix; entries
/// estimated from both directions (i response to j, j response to i) are
/// averaged, preserving symmetry of the assembled result.
class SymmetricEntryAccumulator {
 public:
  explicit SymmetricEntryAccumulator(std::size_t n) : n_(n) {}

  void record(std::size_t i, std::size_t j, double v) {
    const std::size_t a = std::min(i, j), b = std::max(i, j);
    auto& slot = acc_[a * n_ + b];
    slot.first += v;
    ++slot.second;
  }

  SparseMatrix build() const {
    SparseBuilder builder(n_, n_);
    for (const auto& [key, slot] : acc_) {
      const std::size_t i = key / n_, j = key % n_;
      const double v = slot.first / static_cast<double>(slot.second);
      builder.add(i, j, v);
      if (i != j) builder.add(j, i, v);
    }
    return SparseMatrix(builder);
  }

 private:
  std::size_t n_;
  std::unordered_map<std::size_t, std::pair<double, int>> acc_;
};

/// All non-empty squares in the subtree rooted at `t` (including t), i.e.
/// its descendants at every finer level.
std::vector<SquareId> subtree_squares(const QuadTree& tree, const SquareId& t);

/// Keeps the `target_nnz` largest-magnitude entries of a symmetric sparse
/// matrix (threshold chosen by order statistics — the paper's binary search
/// reduced to a selection). Symmetric pairs are kept or dropped together.
SparseMatrix threshold_to_nnz(const SparseMatrix& a, std::size_t target_nnz);

}  // namespace subspar
