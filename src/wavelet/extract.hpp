// Extraction of G_ws in the wavelet basis (§3.5).
//
// Two paths produce G_ws ~ Q' G Q restricted to the conservative pattern:
//   * reference: n black-box solves (dense G), transform, mask — the ground
//     truth the fast path is validated against;
//   * combine-solves: basis vectors of well-separated squares (>= 3 apart on
//     their level) are summed into one voltage vector per (level, 3x3 phase,
//     m) triple (eq. 3.24), cutting the solve count to O(log n).
#pragma once

#include "linalg/sparse.hpp"
#include "substrate/solver.hpp"
#include "wavelet/basis.hpp"
#include "wavelet/pattern.hpp"

namespace subspar {

struct WaveletExtraction {
  SparseMatrix gws;   ///< pattern-restricted transformed conductance matrix
  long solves = 0;    ///< black-box solves consumed
};

/// Fast path: combine-solves technique. Accepts any multilevel basis with
/// the W/V structure (wavelet or low-rank fine-to-coarse output).
WaveletExtraction wavelet_extract_combined(const SubstrateSolver& solver,
                                           const TransformBasis& basis);

/// Reference path: dense extraction (n solves) then transform + mask.
WaveletExtraction wavelet_extract_reference(const SubstrateSolver& solver,
                                            const TransformBasis& basis);

/// Q' G Q for a dense G using the sparse Q (helper shared with tests).
Matrix transform_congruence(const SparseMatrix& q, const Matrix& g);

}  // namespace subspar
