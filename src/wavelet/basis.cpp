#include "wavelet/basis.hpp"

#include "geometry/moments.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "util/check.hpp"

namespace subspar {
namespace {

std::map<SquareId, SquareBasis> build_moment_squares(const QuadTree& tree, int p,
                                                     double rank_rel_tol) {
  SUBSPAR_REQUIRE(p >= 0);
  const Layout& layout = tree.layout();
  const int maxlev = tree.max_level();
  const std::size_t d = moment_count(p);
  std::map<SquareId, SquareBasis> squares;

  // ---- finest level: SVD of the moment matrices (eq. 3.15)
  for (const SquareId& s : tree.squares(maxlev)) {
    SquareBasis sb;
    sb.contacts = tree.contacts_in(s);
    const std::size_t ns = sb.contacts.size();
    const auto [cx, cy] = tree.center(s);
    const Matrix ms = moment_matrix(layout, sb.contacts, cx, cy, p);
    const Svd dec = svd(ms);
    const std::size_t vs = std::min(numerical_rank(dec.sigma, rank_rel_tol), ns);
    sb.v = dec.v.block(0, 0, ns, vs);
    sb.w = orthonormal_complement(sb.v, ns);
    sb.v_moments = matmul(ms, sb.v);
    SUBSPAR_ENSURE(vs <= d);
    squares.emplace(s, std::move(sb));
  }

  // ---- coarser levels: recombine child V's (eq. 3.16)
  for (int lev = maxlev - 1; lev >= 0; --lev) {
    for (const SquareId& s : tree.squares(lev)) {
      const auto kids = tree.children(s);
      SUBSPAR_ENSURE(!kids.empty());
      const auto [cx, cy] = tree.center(s);

      // Assemble V^(children) and the parent-centered moments B of its
      // columns, shifting each child's stored moments to the new center.
      std::size_t rows = 0, cols = 0;
      for (const auto& c : kids) {
        rows += squares.at(c).contacts.size();
        cols += squares.at(c).v.cols();
      }
      SquareBasis sb;
      sb.contacts.reserve(rows);
      Matrix vch(rows, cols);
      Matrix b(d, cols);
      std::size_t r0 = 0, c0 = 0;
      for (const auto& c : kids) {
        const SquareBasis& cb = squares.at(c);
        sb.contacts.insert(sb.contacts.end(), cb.contacts.begin(), cb.contacts.end());
        vch.set_block(r0, c0, cb.v);
        const auto [ccx, ccy] = tree.center(c);
        const Matrix shift = moment_shift(cx - ccx, cy - ccy, p);
        b.set_block(0, c0, matmul(shift, cb.v_moments));
        r0 += cb.contacts.size();
        c0 += cb.v.cols();
      }

      if (cols == 0) {
        sb.v = Matrix(rows, 0);
        sb.w = Matrix(rows, 0);
        sb.v_moments = Matrix(d, 0);
        squares.emplace(s, std::move(sb));
        continue;
      }

      const Svd dec = svd(b);
      const std::size_t vs = std::min(numerical_rank(dec.sigma, rank_rel_tol), cols);
      const Matrix t = dec.v.block(0, 0, cols, vs);
      const Matrix r = orthonormal_complement(t, cols);
      sb.v = matmul(vch, t);
      sb.w = matmul(vch, r);
      sb.v_moments = matmul(b, t);
      squares.emplace(s, std::move(sb));
    }
  }
  return squares;
}

}  // namespace

WaveletBasis::WaveletBasis(const QuadTree& tree, int p, double rank_rel_tol)
    : TransformBasis(tree, build_moment_squares(tree, p, rank_rel_tol), /*root_level=*/0),
      p_(p) {}

}  // namespace subspar
