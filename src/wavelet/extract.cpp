#include "wavelet/extract.hpp"

#include "util/check.hpp"

namespace subspar {

Matrix transform_congruence(const SparseMatrix& q, const Matrix& g) {
  const std::size_t n = g.rows();
  SUBSPAR_REQUIRE(q.rows() == n && q.cols() == n && g.cols() == n);
  // GQ column by column (Q columns are sparse), then Q' (GQ).
  Matrix gq(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    Vector acc(n);
    Vector ej(n);
    ej[j] = 1.0;
    const Vector qj = q.apply(ej);  // dense column of Q
    for (std::size_t k = 0; k < n; ++k) {
      if (qj[k] == 0.0) continue;
      const double w = qj[k];
      for (std::size_t i = 0; i < n; ++i) acc[i] += w * g(i, k);
    }
    gq.set_col(j, acc);
  }
  Matrix gw(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    const Vector col = gq.col(j);
    const Vector qtcol = q.apply_t(col);
    gw.set_col(j, qtcol);
  }
  return gw;
}

WaveletExtraction wavelet_extract_reference(const SubstrateSolver& solver,
                                            const TransformBasis& basis) {
  const long before = solver.solve_count();
  const Matrix g = extract_dense(solver);
  const Matrix gw = transform_congruence(basis.q(), g);
  WaveletExtraction out;
  out.gws = WaveletPattern(basis).mask(gw);
  out.solves = solver.solve_count() - before;
  return out;
}

WaveletExtraction wavelet_extract_combined(const SubstrateSolver& solver,
                                           const TransformBasis& basis) {
  const QuadTree& tree = basis.tree();
  const std::size_t n = basis.n();
  const long before = solver.solve_count();
  SymmetricEntryAccumulator acc(n);

  // ---- root-level leftovers: one solve per V column gives a full row and
  // column of G_w (expressions 3.21-3.23). The columns are independent, so
  // they go to the solver as one batch.
  const std::vector<std::size_t>& root = basis.root_columns();
  if (!root.empty()) {
    Matrix rhs(n, root.size());
    for (std::size_t c = 0; c < root.size(); ++c) rhs.set_col(c, basis.column_vector(root[c]));
    const Matrix u = solver.solve_many(rhs);
    for (std::size_t c = 0; c < root.size(); ++c) {
      const Vector uc = u.col(c);
      for (std::size_t j = 0; j < n; ++j) acc.record(j, root[c], basis.column_dot(j, uc));
    }
  }

  // ---- W blocks: combine basis vectors of squares >= 3 apart (eq. 3.24).
  // All (m, 3x3-phase) combined voltage vectors of one level are mutually
  // independent, so each level assembles them into one batch and rides the
  // blocked solve path; the per-theta entry extraction stays in the original
  // sequential order, which keeps results identical to the one-at-a-time
  // pipeline.
  for (int lev = basis.root_level(); lev <= tree.max_level(); ++lev) {
    const std::size_t max_m = basis.max_w_on_level(lev);
    struct ThetaGroup {
      std::size_t m = 0;              // W column index within each member
      std::vector<SquareId> members;  // constituent squares
    };
    std::vector<ThetaGroup> groups;
    std::vector<Vector> thetas;
    for (std::size_t m = 0; m < max_m; ++m) {
      for (int pa = 0; pa < 3; ++pa) {
        for (int pb = 0; pb < 3; ++pb) {
          // Gather this phase's constituent squares.
          std::vector<SquareId> members;
          Vector theta(n);
          for (const SquareId& s : tree.squares(lev)) {
            if (s.ix % 3 != pa || s.iy % 3 != pb) continue;
            const auto& wcols = basis.w_columns(s);
            if (m >= wcols.size()) continue;
            theta += basis.column_vector(wcols[m]);
            members.push_back(s);
          }
          if (members.empty()) continue;
          groups.push_back({m, std::move(members)});
          thetas.push_back(std::move(theta));
        }
      }
    }
    if (groups.empty()) continue;
    Matrix rhs(n, thetas.size());
    for (std::size_t c = 0; c < thetas.size(); ++c) rhs.set_col(c, thetas[c]);
    const Matrix resp = solver.solve_many(rhs);

    for (std::size_t g = 0; g < groups.size(); ++g) {
      const Vector u = resp.col(g);
      // Extract the response to each constituent at every basis vector
      // whose square is not well-separated from it (levels >= lev; the
      // coarser-level entries come from symmetry).
      for (const SquareId& s : groups[g].members) {
        const std::size_t col_idx = basis.w_columns(s)[groups[g].m];
        for (const SquareId& t : tree.local(s)) {
          for (const SquareId& sp : subtree_squares(tree, t)) {
            for (const std::size_t row_idx : basis.w_columns(sp)) {
              acc.record(row_idx, col_idx, basis.column_dot(row_idx, u));
            }
          }
        }
      }
    }
  }

  WaveletExtraction out;
  out.gws = acc.build();
  out.solves = solver.solve_count() - before;
  return out;
}

}  // namespace subspar
