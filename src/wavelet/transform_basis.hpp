// Shared container for multilevel orthogonal change-of-basis matrices.
//
// Both sparsifiers produce the same structure (§3.4 / §4.4): per square a
// block of "fast-decaying" basis vectors W (wavelet: vanishing moments;
// low-rank: T, orthogonal to the operator row basis) plus "slow-decaying"
// leftovers V pushed up the tree, with the leftovers of the coarsest
// processed level (`root_level`) entering Q directly. This class owns the
// per-square blocks, the global column ordering (coarsest first,
// quadrant-hierarchical within a level — the spy-plot ordering of §3.7.1)
// and the sparse orthogonal Q.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "geometry/quadtree.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace subspar {

/// Per-square slice of a multilevel basis.
struct SquareBasis {
  std::vector<std::size_t> contacts;  ///< row ordering of v/w (global contact ids)
  Matrix v;                           ///< slow-decaying ("pushed up") block, n_s x v_s
  Matrix w;                           ///< fast-decaying block, n_s x w_s
  Matrix v_moments;                   ///< wavelet only: moments of v about the square center
};

/// One column of Q.
struct BasisColumn {
  SquareId square;
  bool vanishing = true;  ///< false for the root-level leftover V columns
  std::size_t m = 0;      ///< column index within the square's W (or root V)
};

class TransformBasis {
 public:
  /// `squares` must contain every non-empty square for levels
  /// root_level..max_level and satisfy the telescoping dimension count
  /// (total W columns + root V columns == n).
  TransformBasis(const QuadTree& tree, std::map<SquareId, SquareBasis> squares, int root_level);

  const QuadTree& tree() const { return *tree_; }
  int root_level() const { return root_level_; }
  std::size_t n() const { return n_; }

  const std::vector<BasisColumn>& columns() const { return columns_; }
  const SquareBasis& square_basis(const SquareId& s) const;

  /// Column indices of the W block of a square (empty if none).
  const std::vector<std::size_t>& w_columns(const SquareId& s) const;
  /// Column indices of the root-level leftover V blocks (all root squares).
  const std::vector<std::size_t>& root_columns() const { return root_columns_; }
  /// Largest W-block width on a level.
  std::size_t max_w_on_level(int level) const;

  /// The orthogonal n x n change-of-basis matrix (contacts x columns).
  const SparseMatrix& q() const { return q_; }

  /// Zero-padded column j as a dense contact vector.
  Vector column_vector(std::size_t j) const;

  /// Sparse dot of column j with a full contact-space vector (the
  /// projection q_j' u used throughout extraction).
  double column_dot(std::size_t j, const Vector& u) const;

 private:
  const QuadTree* tree_;
  int root_level_;
  std::size_t n_;
  std::map<SquareId, SquareBasis> squares_;
  std::vector<BasisColumn> columns_;
  std::map<SquareId, std::vector<std::size_t>> w_column_index_;
  std::vector<std::size_t> root_columns_;
  SparseMatrix q_;
  static const std::vector<std::size_t> kNoColumns;
};

}  // namespace subspar
