#include "wavelet/pattern.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace subspar {

bool WaveletPattern::allowed(std::size_t i, std::size_t j) const {
  const auto& cols = basis_->columns();
  SUBSPAR_REQUIRE(i < cols.size() && j < cols.size());
  const BasisColumn& a = cols[i];
  const BasisColumn& b = cols[j];
  if (!a.vanishing || !b.vanishing) return true;  // root V rows/cols all kept
  return !basis_->tree().well_separated(a.square, b.square);
}

std::vector<SquareId> subtree_squares(const QuadTree& tree, const SquareId& t) {
  std::vector<SquareId> out;
  out.push_back(t);
  for (std::size_t k = 0; k < out.size(); ++k) {
    if (out[k].level >= tree.max_level()) continue;
    for (const SquareId& c : tree.children(out[k])) out.push_back(c);
  }
  return out;
}

SparseMatrix WaveletPattern::mask(const Matrix& gw) const {
  const std::size_t n = basis_->n();
  SUBSPAR_REQUIRE(gw.rows() == n && gw.cols() == n);
  SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (gw(i, j) != 0.0 && allowed(i, j)) b.add(i, j, gw(i, j));
  return SparseMatrix(b);
}

std::size_t WaveletPattern::count_allowed() const {
  const std::size_t n = basis_->n();
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) count += allowed(i, j);
  return count;
}

SparseMatrix threshold_to_nnz(const SparseMatrix& a, std::size_t target_nnz) {
  if (a.nnz() <= target_nnz) return a;
  std::vector<double> mags;
  mags.reserve(a.nnz());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = a.row_begin(i); k < a.row_end(i); ++k)
      mags.push_back(std::abs(a.value(k)));
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(target_nnz),
                   mags.end(), std::greater<double>());
  const double cut = mags[target_nnz];
  SparseBuilder b(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = a.row_begin(i); k < a.row_end(i); ++k)
      if (std::abs(a.value(k)) > cut) b.add(i, a.col_index(k), a.value(k));
  return SparseMatrix(b);
}

}  // namespace subspar
