#include "wavelet/transform_basis.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace subspar {

const std::vector<std::size_t> TransformBasis::kNoColumns{};

namespace {

// Quadrant-hierarchical (Morton, y-major) key for the in-level square
// ordering of §3.7.1.
std::uint64_t morton_key(const SquareId& s) {
  std::uint64_t key = 0;
  for (int bit = 0; bit < 16; ++bit) {
    key |= static_cast<std::uint64_t>((s.iy >> bit) & 1) << (2 * bit + 1);
    key |= static_cast<std::uint64_t>((s.ix >> bit) & 1) << (2 * bit);
  }
  return key;
}

std::vector<SquareId> morton_sorted(std::vector<SquareId> squares) {
  std::sort(squares.begin(), squares.end(),
            [](const SquareId& a, const SquareId& b) { return morton_key(a) < morton_key(b); });
  return squares;
}

}  // namespace

TransformBasis::TransformBasis(const QuadTree& tree, std::map<SquareId, SquareBasis> squares,
                               int root_level)
    : tree_(&tree),
      root_level_(root_level),
      n_(tree.layout().n_contacts()),
      squares_(std::move(squares)) {
  SUBSPAR_REQUIRE(root_level >= 0 && root_level <= tree.max_level());

  // Root-level leftovers first, then W blocks coarsest-to-finest.
  for (const SquareId& s : morton_sorted(tree.squares(root_level))) {
    const SquareBasis& sb = squares_.at(s);
    for (std::size_t m = 0; m < sb.v.cols(); ++m) {
      root_columns_.push_back(columns_.size());
      columns_.push_back(BasisColumn{s, /*vanishing=*/false, m});
    }
  }
  for (int lev = root_level; lev <= tree.max_level(); ++lev) {
    for (const SquareId& s : morton_sorted(tree.squares(lev))) {
      const SquareBasis& sb = squares_.at(s);
      auto& idx = w_column_index_[s];
      for (std::size_t m = 0; m < sb.w.cols(); ++m) {
        idx.push_back(columns_.size());
        columns_.push_back(BasisColumn{s, /*vanishing=*/true, m});
      }
    }
  }
  SUBSPAR_ENSURE(columns_.size() == n_);  // the multilevel split must be exhaustive

  SparseBuilder qb(n_, n_);
  for (std::size_t j = 0; j < columns_.size(); ++j) {
    const BasisColumn& col = columns_[j];
    const SquareBasis& sb = squares_.at(col.square);
    const Matrix& block = col.vanishing ? sb.w : sb.v;
    for (std::size_t i = 0; i < sb.contacts.size(); ++i) {
      const double val = block(i, col.m);
      if (val != 0.0) qb.add(sb.contacts[i], j, val);
    }
  }
  q_ = SparseMatrix(qb);
}

const SquareBasis& TransformBasis::square_basis(const SquareId& s) const {
  const auto it = squares_.find(s);
  SUBSPAR_REQUIRE(it != squares_.end());
  return it->second;
}

const std::vector<std::size_t>& TransformBasis::w_columns(const SquareId& s) const {
  const auto it = w_column_index_.find(s);
  return it == w_column_index_.end() ? kNoColumns : it->second;
}

std::size_t TransformBasis::max_w_on_level(int level) const {
  std::size_t m = 0;
  for (const SquareId& s : tree_->squares(level)) {
    const auto it = squares_.find(s);
    if (it != squares_.end()) m = std::max(m, it->second.w.cols());
  }
  return m;
}

Vector TransformBasis::column_vector(std::size_t j) const {
  SUBSPAR_REQUIRE(j < columns_.size());
  const BasisColumn& col = columns_[j];
  const SquareBasis& sb = square_basis(col.square);
  const Matrix& block = col.vanishing ? sb.w : sb.v;
  Vector out(n_);
  for (std::size_t i = 0; i < sb.contacts.size(); ++i) out[sb.contacts[i]] = block(i, col.m);
  return out;
}

double TransformBasis::column_dot(std::size_t j, const Vector& u) const {
  SUBSPAR_REQUIRE(j < columns_.size() && u.size() == n_);
  const BasisColumn& col = columns_[j];
  const SquareBasis& sb = square_basis(col.square);
  const Matrix& block = col.vanishing ? sb.w : sb.v;
  double s = 0.0;
  for (std::size_t i = 0; i < sb.contacts.size(); ++i) s += block(i, col.m) * u[sb.contacts[i]];
  return s;
}

}  // namespace subspar
