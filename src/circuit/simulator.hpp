// Substrate-aware circuit simulation (§5.2).
//
// Modified nodal analysis over a Netlist, with substrate coupling attached
// as a black-box operator: selected circuit nodes are bound to substrate
// contacts, and the coupling block contributes contact currents
// i_c = G_sub(v_c) to the KCL rows. Because the sparsified model applies in
// O(n log n), it can sit inside the Krylov iteration exactly as the dense G
// never could — the point of the whole exercise (§1.1, ref. [11]).
//
// DC solves use GMRES on the (indefinite, because of voltage-source rows)
// MNA operator; transient analysis uses backward Euler.
#pragma once

#include <functional>
#include <vector>

#include "circuit/netlist.hpp"
#include "linalg/iterative.hpp"
#include "linalg/sparse.hpp"

namespace subspar {

/// Binding of substrate contacts to circuit nodes. contact_nodes[k] is the
/// circuit node of substrate contact k (kGround pins the contact to 0 V).
/// `coupling` maps contact voltages to contact currents — use
/// SparsifiedModel::apply, a raw SubstrateSolver, or a dense G.
struct SubstrateBinding {
  std::vector<NodeId> contact_nodes;
  std::function<Vector(const Vector&)> coupling;

  bool active() const { return static_cast<bool>(coupling); }
};

class CircuitSim {
 public:
  explicit CircuitSim(Netlist& netlist, SubstrateBinding binding = {});

  /// Unknown vector: node voltages then voltage-source branch currents.
  std::size_t n_unknowns() const;

  /// DC operating point.
  Vector solve_dc(IterStats* stats = nullptr) const;

  double node_voltage(const Vector& solution, NodeId node) const;
  double vsource_current(const Vector& solution, std::size_t k) const;

  struct Transient {
    std::vector<double> time;
    std::vector<Vector> probe_voltages;  ///< one entry per step, per probe
  };
  /// Backward-Euler transient from the DC operating point. `stimulus` may
  /// mutate source values at each time point before the step is solved.
  Transient transient(double dt, std::size_t steps, const std::vector<NodeId>& probes,
                      const std::function<void(double, Netlist&)>& stimulus = {}) const;

 private:
  Vector solve_system(double cap_scale, const Vector& rhs, IterStats* stats) const;
  Vector rhs_dc() const;
  Vector apply_operator(double cap_scale, const Vector& x) const;

  Netlist* netlist_;
  SubstrateBinding binding_;
};

}  // namespace subspar
