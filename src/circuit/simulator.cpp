#include "circuit/simulator.hpp"

#include "util/check.hpp"

namespace subspar {

CircuitSim::CircuitSim(Netlist& netlist, SubstrateBinding binding)
    : netlist_(&netlist), binding_(std::move(binding)) {
  if (binding_.active()) {
    for (const NodeId n : binding_.contact_nodes)
      SUBSPAR_REQUIRE(n >= kGround && n < static_cast<NodeId>(netlist.n_nodes()));
  }
}

std::size_t CircuitSim::n_unknowns() const {
  return netlist_->n_nodes() + netlist_->n_vsources();
}

Vector CircuitSim::apply_operator(double cap_scale, const Vector& x) const {
  const Netlist& nl = *netlist_;
  const std::size_t nn = nl.n_nodes();
  SUBSPAR_REQUIRE(x.size() == n_unknowns());
  Vector y(x.size());

  auto v_of = [&](NodeId n) { return n == kGround ? 0.0 : x[static_cast<std::size_t>(n)]; };
  auto kcl = [&](NodeId n, double current_out) {
    if (n != kGround) y[static_cast<std::size_t>(n)] += current_out;
  };

  for (const auto& r : nl.resistors()) {
    const double i = r.g * (v_of(r.a) - v_of(r.b));
    kcl(r.a, i);
    kcl(r.b, -i);
  }
  // Capacitors enter as conductance c * cap_scale (backward Euler: 1/dt).
  if (cap_scale != 0.0) {
    for (const auto& c : nl.capacitors()) {
      const double i = c.c * cap_scale * (v_of(c.a) - v_of(c.b));
      kcl(c.a, i);
      kcl(c.b, -i);
    }
  }
  // Voltage sources: branch current unknowns + the defining rows.
  for (std::size_t k = 0; k < nl.voltage_sources().size(); ++k) {
    const auto& vs = nl.voltage_sources()[k];
    const double branch_i = x[nn + k];  // flows a -> b through the source
    kcl(vs.a, branch_i);
    kcl(vs.b, -branch_i);
    y[nn + k] = v_of(vs.a) - v_of(vs.b);
  }
  // Substrate coupling block.
  if (binding_.active()) {
    Vector vc(binding_.contact_nodes.size());
    for (std::size_t k = 0; k < vc.size(); ++k) vc[k] = v_of(binding_.contact_nodes[k]);
    const Vector ic = binding_.coupling(vc);
    SUBSPAR_ENSURE(ic.size() == vc.size());
    for (std::size_t k = 0; k < ic.size(); ++k) kcl(binding_.contact_nodes[k], ic[k]);
  }
  return y;
}

Vector CircuitSim::rhs_dc() const {
  const Netlist& nl = *netlist_;
  Vector b(n_unknowns());
  for (const auto& s : nl.current_sources()) {
    if (s.a != kGround) b[static_cast<std::size_t>(s.a)] -= s.i;
    if (s.b != kGround) b[static_cast<std::size_t>(s.b)] += s.i;
  }
  for (std::size_t k = 0; k < nl.voltage_sources().size(); ++k)
    b[nl.n_nodes() + k] = nl.voltage_sources()[k].v;
  return b;
}

Vector CircuitSim::solve_system(double cap_scale, const Vector& rhs, IterStats* stats) const {
  const LinearOp op = [&](const Vector& x) { return apply_operator(cap_scale, x); };
  IterStats local;
  const Vector x = gmres(op, rhs, std::min<std::size_t>(n_unknowns(), 200),
                         {.rel_tol = 1e-10, .max_iterations = 20 * n_unknowns() + 200}, &local);
  SUBSPAR_ENSURE(local.converged);
  if (stats) *stats = local;
  return x;
}

Vector CircuitSim::solve_dc(IterStats* stats) const {
  return solve_system(/*cap_scale=*/0.0, rhs_dc(), stats);
}

double CircuitSim::node_voltage(const Vector& solution, NodeId node) const {
  SUBSPAR_REQUIRE(solution.size() == n_unknowns());
  if (node == kGround) return 0.0;
  SUBSPAR_REQUIRE(node >= 0 && node < static_cast<NodeId>(netlist_->n_nodes()));
  return solution[static_cast<std::size_t>(node)];
}

double CircuitSim::vsource_current(const Vector& solution, std::size_t k) const {
  SUBSPAR_REQUIRE(k < netlist_->n_vsources());
  return solution[netlist_->n_nodes() + k];
}

CircuitSim::Transient CircuitSim::transient(
    double dt, std::size_t steps, const std::vector<NodeId>& probes,
    const std::function<void(double, Netlist&)>& stimulus) const {
  SUBSPAR_REQUIRE(dt > 0.0);
  const std::size_t nn = netlist_->n_nodes();
  Transient out;
  Vector x = solve_dc();
  for (std::size_t step = 1; step <= steps; ++step) {
    const double t = static_cast<double>(step) * dt;
    if (stimulus) stimulus(t, *netlist_);
    // Backward Euler: (G + C/dt) x_new = b(t) + (C/dt) x_old on cap rows.
    Vector rhs = rhs_dc();
    for (const auto& c : netlist_->capacitors()) {
      const double vprev = (c.a == kGround ? 0.0 : x[static_cast<std::size_t>(c.a)]) -
                           (c.b == kGround ? 0.0 : x[static_cast<std::size_t>(c.b)]);
      const double hist = c.c / dt * vprev;
      if (c.a != kGround) rhs[static_cast<std::size_t>(c.a)] += hist;
      if (c.b != kGround) rhs[static_cast<std::size_t>(c.b)] -= hist;
    }
    x = solve_system(1.0 / dt, rhs, nullptr);
    out.time.push_back(t);
    Vector pv(probes.size());
    for (std::size_t p = 0; p < probes.size(); ++p) pv[p] = node_voltage(x, probes[p]);
    out.probe_voltages.push_back(std::move(pv));
    (void)nn;
  }
  return out;
}

}  // namespace subspar
