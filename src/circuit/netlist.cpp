#include "circuit/netlist.hpp"

namespace subspar {

NodeId Netlist::add_node(std::string name) {
  if (name.empty()) name = "n" + std::to_string(names_.size());
  names_.push_back(std::move(name));
  return static_cast<NodeId>(names_.size() - 1);
}

void Netlist::add_resistor(NodeId a, NodeId b, double ohms) {
  check_node(a);
  check_node(b);
  SUBSPAR_REQUIRE(ohms > 0.0);
  SUBSPAR_REQUIRE(a != b);
  res_.push_back({a, b, 1.0 / ohms});
}

void Netlist::add_capacitor(NodeId a, NodeId b, double farads) {
  check_node(a);
  check_node(b);
  SUBSPAR_REQUIRE(farads > 0.0);
  SUBSPAR_REQUIRE(a != b);
  cap_.push_back({a, b, farads});
}

void Netlist::add_current_source(NodeId a, NodeId b, double amps) {
  check_node(a);
  check_node(b);
  isrc_.push_back({a, b, amps});
}

void Netlist::add_voltage_source(NodeId a, NodeId b, double volts) {
  check_node(a);
  check_node(b);
  SUBSPAR_REQUIRE(a != b);
  vsrc_.push_back({a, b, volts});
}

const std::string& Netlist::node_name(NodeId n) const {
  check_node(n);
  SUBSPAR_REQUIRE(n != kGround);
  return names_[static_cast<std::size_t>(n)];
}

void Netlist::set_current_source(std::size_t k, double amps) {
  SUBSPAR_REQUIRE(k < isrc_.size());
  isrc_[k].i = amps;
}

void Netlist::set_voltage_source(std::size_t k, double volts) {
  SUBSPAR_REQUIRE(k < vsrc_.size());
  vsrc_[k].v = volts;
}

}  // namespace subspar
