#include "circuit/netlist.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

namespace subspar {

NodeId Netlist::add_node(std::string name) {
  if (name.empty()) name = "n" + std::to_string(names_.size());
  names_.push_back(std::move(name));
  return static_cast<NodeId>(names_.size() - 1);
}

void Netlist::add_resistor(NodeId a, NodeId b, double ohms) {
  check_node(a);
  check_node(b);
  SUBSPAR_REQUIRE(ohms > 0.0);
  SUBSPAR_REQUIRE(a != b);
  res_.push_back({a, b, 1.0 / ohms});
}

void Netlist::add_capacitor(NodeId a, NodeId b, double farads) {
  check_node(a);
  check_node(b);
  SUBSPAR_REQUIRE(farads > 0.0);
  SUBSPAR_REQUIRE(a != b);
  cap_.push_back({a, b, farads});
}

void Netlist::add_current_source(NodeId a, NodeId b, double amps) {
  check_node(a);
  check_node(b);
  isrc_.push_back({a, b, amps});
}

void Netlist::add_voltage_source(NodeId a, NodeId b, double volts) {
  check_node(a);
  check_node(b);
  SUBSPAR_REQUIRE(a != b);
  vsrc_.push_back({a, b, volts});
}

const std::string& Netlist::node_name(NodeId n) const {
  check_node(n);
  SUBSPAR_REQUIRE(n != kGround);
  return names_[static_cast<std::size_t>(n)];
}

void Netlist::set_current_source(std::size_t k, double amps) {
  SUBSPAR_REQUIRE(k < isrc_.size());
  isrc_[k].i = amps;
}

void Netlist::set_voltage_source(std::size_t k, double volts) {
  SUBSPAR_REQUIRE(k < vsrc_.size());
  vsrc_[k].v = volts;
}

// ------------------------------------------------------------ text format

namespace {

std::string node_token(const Netlist& nl, NodeId n) {
  return n == kGround ? std::string("0") : nl.node_name(n);
}

std::string value_token(double v) {
  // %.17g round-trips every finite double through strtod.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Parse errors carry the 1-based source line so a bad card in a generated
// netlist can be found without bisecting the file. std::invalid_argument
// keeps seed-era catch sites working.
[[noreturn]] void fail_line(std::size_t line_no, const std::string& detail) {
  throw std::invalid_argument("parse_netlist: line " + std::to_string(line_no) + ": " + detail);
}

double parse_value(const std::string& token, std::size_t line_no) {
  const char* s = token.c_str();
  char* end = nullptr;
  const double base = std::strtod(s, &end);
  if (end == s) fail_line(line_no, "value '" + token + "' does not start with a number");
  std::string suffix;
  for (const char* p = end; *p != '\0'; ++p)
    suffix += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  double scaled = base;
  if (!suffix.empty()) {
    if (suffix == "meg") {  // before the 'm' (milli) match
      scaled = base * 1e6;
    } else {
      switch (suffix[0]) {
        case 'f': scaled = base * 1e-15; break;
        case 'p': scaled = base * 1e-12; break;
        case 'n': scaled = base * 1e-9; break;
        case 'u': scaled = base * 1e-6; break;
        case 'm': scaled = base * 1e-3; break;
        case 'k': scaled = base * 1e3; break;
        case 'g': scaled = base * 1e9; break;
        case 't': scaled = base * 1e12; break;
        default:
          fail_line(line_no,
                    "unknown engineering suffix '" + suffix + "' in value '" + token + "'");
      }
    }
  }
  // Catches both a literal out of double range (strtod saturates to inf)
  // and a suffix-scaled overflow like '1e306t'.
  if (!std::isfinite(scaled))
    fail_line(line_no, "value '" + token + "' is outside the representable range");
  return scaled;
}

}  // namespace

std::string format_netlist(const Netlist& nl) {
  std::ostringstream out;
  out << "* subspar netlist: " << nl.n_nodes() << " nodes\n";
  std::size_t k = 0;
  for (const auto& r : nl.resistors())
    out << "R" << ++k << " " << node_token(nl, r.a) << " " << node_token(nl, r.b) << " "
        << value_token(1.0 / r.g) << "\n";
  k = 0;
  for (const auto& c : nl.capacitors())
    out << "C" << ++k << " " << node_token(nl, c.a) << " " << node_token(nl, c.b) << " "
        << value_token(c.c) << "\n";
  k = 0;
  for (const auto& i : nl.current_sources())
    out << "I" << ++k << " " << node_token(nl, i.a) << " " << node_token(nl, i.b) << " "
        << value_token(i.i) << "\n";
  k = 0;
  for (const auto& v : nl.voltage_sources())
    out << "V" << ++k << " " << node_token(nl, v.a) << " " << node_token(nl, v.b) << " "
        << value_token(v.v) << "\n";
  out << ".end\n";
  return out.str();
}

Netlist parse_netlist(const std::string& text) {
  Netlist nl;
  std::map<std::string, NodeId> nodes;
  const auto node_of = [&](const std::string& token) {
    if (token == "0" || token == "gnd" || token == "GND") return kGround;
    const auto it = nodes.find(token);
    if (it != nodes.end()) return it->second;
    const NodeId id = nl.add_node(token);
    nodes.emplace(token, id);
    return id;
  };

  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  std::size_t cards = 0;
  std::set<std::string> element_names;  // canonical (upper-cased) card names
  while (std::getline(lines, line)) {
    ++line_no;
    std::istringstream card(line);
    std::string head;
    if (!(card >> head)) continue;          // blank line
    if (head[0] == '*') continue;           // comment
    if (head == ".end" || head == ".END") continue;
    std::string a, b, value;
    card >> a >> b >> value;
    if (value.empty())
      fail_line(line_no, "card '" + head + "' is incomplete (every card is "
                         "'<name> <node> <node> <value>')");
    std::string trailing;
    if (card >> trailing)
      fail_line(line_no, "trailing token '" + trailing + "' after the value");
    std::string canon;
    for (const char c : head)
      canon += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (!element_names.insert(canon).second)
      fail_line(line_no, "duplicate definition of element '" + head + "'");
    const char kind = canon[0];
    if (kind != 'R' && kind != 'C' && kind != 'I' && kind != 'V')
      fail_line(line_no, "unknown card type '" + head + "' (expected R/C/I/V)");
    const NodeId na = node_of(a);
    const NodeId nb = node_of(b);
    const double v = parse_value(value, line_no);
    try {
      switch (kind) {
        case 'R': nl.add_resistor(na, nb, v); break;
        case 'C': nl.add_capacitor(na, nb, v); break;
        case 'I': nl.add_current_source(na, nb, v); break;
        case 'V': nl.add_voltage_source(na, nb, v); break;
      }
    } catch (const std::invalid_argument& e) {
      // Element precondition (non-positive R/C value, a self-loop, ...)
      // rethrown with the source line attached.
      fail_line(line_no, std::string("invalid card: ") + e.what());
    }
    ++cards;
  }
  if (cards == 0)
    throw std::invalid_argument(
        "parse_netlist: no element cards found (empty netlist?) in " +
        std::to_string(line_no) + " line(s)");
  return nl;
}

}  // namespace subspar
