// Circuit netlist for substrate-aware simulation (§5.2 / ref. [11]).
//
// The end purpose of extraction is to drop the substrate model into a
// circuit simulator. This module provides a small modified-nodal-analysis
// (MNA) netlist: resistors, capacitors, independent current and voltage
// sources, plus a binding that attaches selected circuit nodes to substrate
// contacts so the (sparse or dense) coupling operator joins the nodal
// equations.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace subspar {

/// Circuit node handle; kGround is the reference node.
using NodeId = int;
inline constexpr NodeId kGround = -1;

class Netlist {
 public:
  /// Creates a named node and returns its handle.
  NodeId add_node(std::string name = {});

  void add_resistor(NodeId a, NodeId b, double ohms);
  void add_capacitor(NodeId a, NodeId b, double farads);
  /// Current `amps` flows from node a to node b (into b).
  void add_current_source(NodeId a, NodeId b, double amps);
  /// Ideal voltage source: v(a) - v(b) = volts. Adds an MNA branch unknown.
  void add_voltage_source(NodeId a, NodeId b, double volts);

  std::size_t n_nodes() const { return names_.size(); }
  std::size_t n_vsources() const { return vsrc_.size(); }
  const std::string& node_name(NodeId n) const;

  struct Resistor {
    NodeId a, b;
    double g;  ///< conductance
  };
  struct Capacitor {
    NodeId a, b;
    double c;
  };
  struct CurrentSource {
    NodeId a, b;
    double i;
  };
  struct VoltageSource {
    NodeId a, b;
    double v;
  };
  const std::vector<Resistor>& resistors() const { return res_; }
  const std::vector<Capacitor>& capacitors() const { return cap_; }
  const std::vector<CurrentSource>& current_sources() const { return isrc_; }
  const std::vector<VoltageSource>& voltage_sources() const { return vsrc_; }

  /// Mutable source values (for transient stimulus updates).
  void set_current_source(std::size_t k, double amps);
  void set_voltage_source(std::size_t k, double volts);

 private:
  void check_node(NodeId n) const {
    SUBSPAR_REQUIRE(n >= kGround && n < static_cast<NodeId>(names_.size()));
  }
  std::vector<std::string> names_;
  std::vector<Resistor> res_;
  std::vector<Capacitor> cap_;
  std::vector<CurrentSource> isrc_;
  std::vector<VoltageSource> vsrc_;
};

/// Serializes a netlist as SPICE-style cards, one element per line
/// (`R1 a b 1000`, `C1 out 0 1e-06`, ...), ground spelled `0`. The output
/// round-trips through parse_netlist: element order, node names, and values
/// (printed with enough digits to be exact) are all preserved.
std::string format_netlist(const Netlist& netlist);

/// Parses SPICE-style cards into a Netlist. Supported cards: R (resistor),
/// C (capacitor), I (current source, current flows first -> second node),
/// V (voltage source), each as `<card><name> <node> <node> <value>`. Blank
/// lines, `*` comment lines, and a trailing `.end` are ignored; node `0`
/// (or `gnd`) is ground; other node tokens name nodes, created in order of
/// first reference. Values accept the usual engineering suffixes
/// (f p n u m k meg g t, case-insensitive). Throws std::invalid_argument
/// (via SUBSPAR_REQUIRE) on malformed cards.
Netlist parse_netlist(const std::string& text);

}  // namespace subspar
