// Sparse-matrix orderings for locality and parallelism.
//
// Reverse Cuthill-McKee (RCM) clusters the grid-of-resistors Laplacian's
// neighbors into a narrow band: the IC(0) factor of the permuted matrix has
// the same nnz but far better cache behavior in the triangular solves, and
// its level sets (linalg/ic0.hpp) get wider, exposing more rows per
// parallel step. Orderings are plain permutation vectors consumed by
// SparseMatrix::permuted.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/sparse.hpp"

namespace subspar {

/// Reverse Cuthill-McKee ordering of a structurally symmetric square
/// matrix, returned as a permutation p with p[new_index] = old_index —
/// i.e. `a.permuted(p)` is the RCM-reordered matrix. Every connected
/// component is seeded from a pseudo-peripheral vertex (BFS-refined
/// minimum-degree start) and traversed breadth-first with neighbors
/// visited in (degree, index) order, then the whole order is reversed.
/// Fully deterministic. The pattern of `a` is symmetrized implicitly
/// (edges are taken from rows; for the SPD matrices this is built for the
/// pattern already is symmetric).
std::vector<std::size_t> rcm_ordering(const SparseMatrix& a);

/// Inverse permutation: q[p[i]] = i.
std::vector<std::size_t> invert_permutation(const std::vector<std::size_t>& p);

/// Half-bandwidth max_i max_{j in row i} |i - j| of a square matrix; the
/// quantity RCM minimizes (diagnostics and tests).
std::size_t bandwidth(const SparseMatrix& a);

}  // namespace subspar
