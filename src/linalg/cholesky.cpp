#include "linalg/cholesky.hpp"

#include <cmath>

#include "util/check.hpp"

namespace subspar {

Cholesky::Cholesky(const Matrix& a) : l_(a.rows(), a.cols()) {
  SUBSPAR_REQUIRE(a.rows() == a.cols());
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    SUBSPAR_REQUIRE(d > 0.0);  // not positive definite otherwise
    const double ljj = std::sqrt(d);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / ljj;
    }
  }
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = l_.rows();
  SUBSPAR_REQUIRE(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::solve(const Matrix& b) const {
  Matrix x(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) x.set_col(j, solve(b.col(j)));
  return x;
}

double Cholesky::log_det() const {
  double s = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

}  // namespace subspar
