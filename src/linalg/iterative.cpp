#include "linalg/iterative.hpp"

#include <cmath>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/check.hpp"

namespace subspar {

Vector pcg(const LinearOp& a, const Vector& b, const IterOptions& opt, IterStats* stats,
           const LinearOp& precond) {
  const std::size_t n = b.size();
  Vector x(n);
  Vector r = b;  // x0 = 0
  const double bnorm = norm2(b);
  IterStats local;
  if (bnorm == 0.0) {
    local.converged = true;
    if (stats) *stats = local;
    return x;
  }
  Vector z = precond ? precond(r) : r;
  Vector p = z;
  double rz = dot(r, z);
  for (std::size_t it = 0; it < opt.max_iterations; ++it) {
    const Vector ap = a(p);
    const double pap = dot(p, ap);
    SUBSPAR_ENSURE(pap > 0.0);  // operator (or preconditioner) not SPD otherwise
    const double alpha = rz / pap;
    x.axpy(alpha, p);
    r.axpy(-alpha, ap);
    local.iterations = it + 1;
    const double rnorm = norm2(r);
    if (rnorm <= opt.rel_tol * bnorm) {
      local.converged = true;
      local.relative_residual = rnorm / bnorm;
      if (stats) *stats = local;
      return x;
    }
    z = precond ? precond(r) : r;
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  local.relative_residual = norm2(r) / bnorm;
  if (stats) *stats = local;
  return x;
}

Vector gmres(const LinearOp& a, const Vector& b, std::size_t restart, const IterOptions& opt,
             IterStats* stats) {
  SUBSPAR_REQUIRE(restart >= 1);
  const std::size_t n = b.size();
  Vector x(n);
  const double bnorm = norm2(b);
  IterStats local;
  if (bnorm == 0.0) {
    local.converged = true;
    if (stats) *stats = local;
    return x;
  }
  std::size_t total_iters = 0;
  while (total_iters < opt.max_iterations) {
    Vector r = b - a(x);
    double beta = norm2(r);
    if (beta <= opt.rel_tol * bnorm) {
      local.converged = true;
      break;
    }
    const std::size_t m = restart;
    std::vector<Vector> v;
    v.reserve(m + 1);
    v.push_back((1.0 / beta) * r);
    Matrix h(m + 1, m);                 // Hessenberg
    std::vector<double> cs(m), sn(m);   // Givens rotations
    Vector g(m + 1);
    g[0] = beta;
    std::size_t k = 0;
    for (; k < m && total_iters < opt.max_iterations; ++k, ++total_iters) {
      Vector w = a(v[k]);
      // Modified Gram-Schmidt.
      for (std::size_t i = 0; i <= k; ++i) {
        h(i, k) = dot(w, v[i]);
        w.axpy(-h(i, k), v[i]);
      }
      h(k + 1, k) = norm2(w);
      if (h(k + 1, k) > 0.0) v.push_back((1.0 / h(k + 1, k)) * w);
      // Apply accumulated rotations, then generate a new one.
      for (std::size_t i = 0; i < k; ++i) {
        const double t = cs[i] * h(i, k) + sn[i] * h(i + 1, k);
        h(i + 1, k) = -sn[i] * h(i, k) + cs[i] * h(i + 1, k);
        h(i, k) = t;
      }
      const double denom = std::hypot(h(k, k), h(k + 1, k));
      cs[k] = denom == 0.0 ? 1.0 : h(k, k) / denom;
      sn[k] = denom == 0.0 ? 0.0 : h(k + 1, k) / denom;
      h(k, k) = denom;
      h(k + 1, k) = 0.0;
      g[k + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];
      if (std::abs(g[k + 1]) <= opt.rel_tol * bnorm) {
        ++k;
        break;
      }
      if (h(k, k) == 0.0) break;  // breakdown: x is already exact in span
    }
    // Solve the small triangular system and update x.
    Vector y(k);
    for (std::size_t ii = k; ii-- > 0;) {
      double s = g[ii];
      for (std::size_t j = ii + 1; j < k; ++j) s -= h(ii, j) * y[j];
      y[ii] = h(ii, ii) == 0.0 ? 0.0 : s / h(ii, ii);
    }
    for (std::size_t i = 0; i < k; ++i) x.axpy(y[i], v[i]);
    if (k < m) {  // converged (or breakdown) inside the cycle
      const Vector rr = b - a(x);
      local.relative_residual = norm2(rr) / bnorm;
      local.converged = local.relative_residual <= opt.rel_tol * 10.0;
      break;
    }
  }
  local.iterations = total_iters;
  if (local.relative_residual == 0.0) {
    const Vector rr = b - a(x);
    local.relative_residual = norm2(rr) / bnorm;
    local.converged = local.relative_residual <= opt.rel_tol * 10.0;
  }
  if (stats) *stats = local;
  return x;
}

}  // namespace subspar
