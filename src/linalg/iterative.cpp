#include "linalg/iterative.hpp"

#include <cmath>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/eig_sym.hpp"
#include "linalg/matrix.hpp"
#include "util/cancel.hpp"
#include "util/check.hpp"

namespace subspar {
namespace {

// Solve the small symmetric k x k system T Y = S of the block recurrences:
// Cholesky on the SPD fast path, spectral pseudo-inverse when the block has
// gone (near-)rank-deficient — e.g. a column converged, making its search
// direction numerically dependent on the others.
Matrix solve_block_gram(const Matrix& t, const Matrix& s) {
  Matrix tsym = t;
  for (std::size_t i = 0; i < t.rows(); ++i)
    for (std::size_t j = 0; j < i; ++j)
      tsym(i, j) = tsym(j, i) = 0.5 * (t(i, j) + t(j, i));
  try {
    return Cholesky(tsym).solve(s);
  } catch (const std::invalid_argument&) {
    const EigSym eig = eig_sym(tsym);
    double lmax = 0.0;
    for (std::size_t i = 0; i < eig.values.size(); ++i)
      lmax = std::max(lmax, std::abs(eig.values[i]));
    const double cut = lmax * 1e-13;
    Matrix vts = matmul_tn(eig.vectors, s);
    for (std::size_t i = 0; i < vts.rows(); ++i) {
      const double lam = eig.values[i];
      const double inv = std::abs(lam) > cut ? 1.0 / lam : 0.0;
      for (std::size_t j = 0; j < vts.cols(); ++j) vts(i, j) *= inv;
    }
    return matmul(eig.vectors, vts);
  }
}

}  // namespace

Vector Preconditioner::apply(const Vector& r) const {
  Matrix rm(r.size(), 1);
  rm.set_col(0, r);
  return apply_many(rm).col(0);
}

Vector pcg(const LinearOp& a, const Vector& b, const IterOptions& opt, IterStats* stats,
           const LinearOp& precond) {
  const std::size_t n = b.size();
  Vector x(n);
  Vector r = b;  // x0 = 0
  const double bnorm = norm2(b);
  IterStats local;
  if (bnorm == 0.0) {
    local.converged = true;
    if (stats) *stats = local;
    return x;
  }
  Vector z = precond ? precond(r) : r;
  Vector p = z;
  double rz = dot(r, z);
  for (std::size_t it = 0; it < opt.max_iterations; ++it) {
    const Vector ap = a(p);
    const double pap = dot(p, ap);
    SUBSPAR_ENSURE(pap > 0.0);  // operator (or preconditioner) not SPD otherwise
    const double alpha = rz / pap;
    x.axpy(alpha, p);
    r.axpy(-alpha, ap);
    local.iterations = it + 1;
    const double rnorm = norm2(r);
    if (rnorm <= opt.rel_tol * bnorm) {
      local.converged = true;
      local.relative_residual = rnorm / bnorm;
      if (stats) *stats = local;
      return x;
    }
    z = precond ? precond(r) : r;
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  local.relative_residual = norm2(r) / bnorm;
  if (stats) *stats = local;
  return x;
}

namespace {

// Selects the `keep` columns of a matrix (column compaction after
// deflating converged block-CG columns).
Matrix select_cols(const Matrix& m, const std::vector<std::size_t>& keep) {
  Matrix out(m.rows(), keep.size());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* src = m.row_ptr(i);
    double* dst = out.row_ptr(i);
    for (std::size_t j = 0; j < keep.size(); ++j) dst[j] = src[keep[j]];
  }
  return out;
}

}  // namespace

Matrix pcg_block(const LinearOpMany& a, const Matrix& b, const IterOptions& opt,
                 BlockIterStats* stats, const Preconditioner* precond,
                 Precision precision) {
  const std::size_t n = b.rows();
  const std::size_t k = b.cols();
  Matrix x(n, k);
  BlockIterStats local;

  // The dense block-Krylov algebra through the requested GEMM engine. The
  // small Gram solves (solve_block_gram) stay fp64 in both modes.
  const bool mixed = precision == Precision::kMixed;
  const auto mm_tn = [mixed](const Matrix& u, const Matrix& v) {
    return mixed ? matmul_tn_mixed(u, v) : matmul_tn(u, v);
  };
  const auto mm_add = [mixed](Matrix& c, const Matrix& u, const Matrix& v, double alpha) {
    if (mixed)
      matmul_add_mixed(c, u, v, alpha);
    else
      matmul_add(c, u, v, alpha);
  };

  // Zero columns solve to zero; drop them so the Gram systems stay SPD.
  std::vector<double> bnorm_all(k, 0.0);
  std::vector<std::size_t> active;  // original column index of each live slot
  for (std::size_t j = 0; j < k; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += b(i, j) * b(i, j);
    bnorm_all[j] = std::sqrt(s);
    if (bnorm_all[j] > 0.0) active.push_back(j);
  }
  if (active.empty()) {
    local.converged = true;
    if (stats) *stats = local;
    return x;
  }
  std::vector<double> bnorm(active.size());
  Matrix r(n, active.size());
  for (std::size_t j = 0; j < active.size(); ++j) {
    bnorm[j] = bnorm_all[active[j]];
    for (std::size_t i = 0; i < n; ++i) r(i, j) = b(i, active[j]);
  }

  Matrix xa(n, active.size());
  Matrix z = precond ? precond->apply_many(r) : r;
  Matrix p = z;
  Matrix s = mm_tn(z, r);  // live x live Gram of the recurrence
  // Stagnation watchdog: if the worst residual has not halved within a
  // window, the search directions have degenerated — recompute the true
  // residual and restart the recurrence from the current iterate.
  constexpr std::size_t kStallWindow = 50;
  double stall_ref = 0.0;
  std::size_t stall_it = 0;
  for (std::size_t it = 0; it < opt.max_iterations; ++it) {
    // Cooperative cancellation/deadline checkpoint: a long solve on a large
    // grid spends essentially all its time in this loop, so per-iteration
    // granularity is what bounds a cancelled job's latency.
    cancellation_point("pcg_block");
    const Matrix q = a(p);
    const Matrix t = mm_tn(p, q);
    const Matrix alpha = solve_block_gram(t, s);
    mm_add(xa, p, alpha, 1.0);
    mm_add(r, q, alpha, -1.0);
    local.iterations = it + 1;

    // Per-column residuals; deflate converged columns out of the block so
    // the Gram systems stay well-conditioned for the stragglers.
    const std::size_t ka = active.size();
    std::vector<std::size_t> keep;
    double worst = 0.0;
    for (std::size_t j = 0; j < ka; ++j) {
      double rs = 0.0;
      for (std::size_t i = 0; i < n; ++i) rs += r(i, j) * r(i, j);
      const double rel = std::sqrt(rs) / bnorm[j];
      if (rel <= opt.rel_tol) {
        for (std::size_t i = 0; i < n; ++i) x(i, active[j]) = xa(i, j);
      } else {
        keep.push_back(j);
        worst = std::max(worst, rel);
      }
    }
    local.max_relative_residual = worst;
    if (keep.empty()) {
      local.converged = true;
      break;
    }
    const bool deflated = keep.size() < ka;
    if (deflated) {
      std::vector<std::size_t> next_active(keep.size());
      std::vector<double> next_bnorm(keep.size());
      for (std::size_t j = 0; j < keep.size(); ++j) {
        next_active[j] = active[keep[j]];
        next_bnorm[j] = bnorm[keep[j]];
      }
      active = std::move(next_active);
      bnorm = std::move(next_bnorm);
      xa = select_cols(xa, keep);
      r = select_cols(r, keep);
      // p is not compacted: every post-deflation path below restarts the
      // recurrence with p = z.
    }

    if (worst <= 0.5 * stall_ref || stall_ref == 0.0) {
      stall_ref = worst;
      stall_it = it;
    }
    if (it - stall_it >= kStallWindow) {
      // True-residual restart: one extra operator apply, only on stall.
      r = a(xa);
      r *= -1.0;
      for (std::size_t j = 0; j < active.size(); ++j)
        for (std::size_t i = 0; i < n; ++i) r(i, j) += b(i, active[j]);
      z = precond ? precond->apply_many(r) : r;
      p = z;
      s = mm_tn(z, r);
      stall_ref = worst;
      stall_it = it;
      continue;
    }

    z = precond ? precond->apply_many(r) : r;
    const Matrix s_next = mm_tn(z, r);
    if (deflated) {
      // Fresh directions for the surviving columns (their cross terms with
      // the deflated ones are gone); CG re-accelerates from here.
      p = z;
      s = s_next;
      continue;
    }
    const Matrix beta = solve_block_gram(s, s_next);
    Matrix p_next = z;
    mm_add(p_next, p, beta, 1.0);
    p = std::move(p_next);
    s = s_next;
  }

  for (std::size_t j = 0; j < active.size(); ++j)
    for (std::size_t i = 0; i < n; ++i) x(i, active[j]) = xa(i, j);
  if (stats) *stats = local;
  return x;
}

Matrix pcg_block_refined(const LinearOpMany& a_hi, const LinearOpMany& a_lo,
                         const Matrix& b, const IterOptions& opt, BlockIterStats* stats,
                         const Preconditioner* precond) {
  const std::size_t n = b.rows();
  const std::size_t k = b.cols();
  // Inner sweeps only need to contract the residual by ~kInnerTol per outer
  // round: fp32 operator entries carry ~6e-8 relative rounding, so pushing
  // an inner sweep much past 1e-4 buys nothing the fp64 correction doesn't
  // redo. Invariants of the loop: (1) x is only ever updated by ADDING a
  // correction solved against the current TRUE fp64 residual, so no inner
  // inaccuracy accumulates across rounds; (2) convergence is judged ONLY
  // against the fp64 operator, never the mirror — the exit bound is
  // therefore identical to pure-fp64 pcg_block's.
  constexpr double kInnerTol = 1e-4;
  constexpr std::size_t kMaxOuter = 8;
  BlockIterStats total;
  Matrix x(n, k);

  std::vector<double> bnorm(k, 0.0);
  bool any = false;
  for (std::size_t j = 0; j < k; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += b(i, j) * b(i, j);
    bnorm[j] = std::sqrt(s);
    any = any || bnorm[j] > 0.0;
  }
  if (!any) {
    total.converged = true;
    if (stats) *stats = total;
    return x;
  }

  IterOptions inner = opt;
  inner.rel_tol = std::max(opt.rel_tol, kInnerTol);
  Matrix r = b;
  double prev_worst = 0.0;
  for (std::size_t outer = 0; outer < kMaxOuter; ++outer) {
    BlockIterStats is;
    const Matrix d = pcg_block(a_lo, r, inner, &is, precond, Precision::kMixed);
    total.iterations += is.iterations;
    for (std::size_t i = 0; i < n; ++i) {
      double* xrow = x.row_ptr(i);
      const double* drow = d.row_ptr(i);
      for (std::size_t j = 0; j < k; ++j) xrow[j] += drow[j];
    }
    // One fp64 operator apply per round: the true residual r = b - A x.
    r = a_hi(x);
    r *= -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      double* rrow = r.row_ptr(i);
      const double* brow = b.row_ptr(i);
      for (std::size_t j = 0; j < k; ++j) rrow[j] += brow[j];
    }
    double worst = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (bnorm[j] == 0.0) continue;
      double rs = 0.0;
      for (std::size_t i = 0; i < n; ++i) rs += r(i, j) * r(i, j);
      worst = std::max(worst, std::sqrt(rs) / bnorm[j]);
    }
    total.max_relative_residual = worst;
    if (worst <= opt.rel_tol) {
      total.converged = true;
      break;
    }
    // No meaningful contraction: the fp32 mirror's accuracy floor. Stop and
    // let the caller's fp64 fallback chain take over.
    if (outer > 0 && !(worst < 0.5 * prev_worst)) break;
    prev_worst = worst;
  }
  if (stats) *stats = total;
  return x;
}

Vector gmres(const LinearOp& a, const Vector& b, std::size_t restart, const IterOptions& opt,
             IterStats* stats) {
  SUBSPAR_REQUIRE(restart >= 1);
  const std::size_t n = b.size();
  Vector x(n);
  const double bnorm = norm2(b);
  IterStats local;
  if (bnorm == 0.0) {
    local.converged = true;
    if (stats) *stats = local;
    return x;
  }
  std::size_t total_iters = 0;
  while (total_iters < opt.max_iterations) {
    Vector r = b - a(x);
    double beta = norm2(r);
    if (beta <= opt.rel_tol * bnorm) {
      local.converged = true;
      break;
    }
    const std::size_t m = restart;
    std::vector<Vector> v;
    v.reserve(m + 1);
    v.push_back((1.0 / beta) * r);
    Matrix h(m + 1, m);                 // Hessenberg
    std::vector<double> cs(m), sn(m);   // Givens rotations
    Vector g(m + 1);
    g[0] = beta;
    std::size_t k = 0;
    for (; k < m && total_iters < opt.max_iterations; ++k, ++total_iters) {
      Vector w = a(v[k]);
      // Modified Gram-Schmidt.
      for (std::size_t i = 0; i <= k; ++i) {
        h(i, k) = dot(w, v[i]);
        w.axpy(-h(i, k), v[i]);
      }
      h(k + 1, k) = norm2(w);
      if (h(k + 1, k) > 0.0) v.push_back((1.0 / h(k + 1, k)) * w);
      // Apply accumulated rotations, then generate a new one.
      for (std::size_t i = 0; i < k; ++i) {
        const double t = cs[i] * h(i, k) + sn[i] * h(i + 1, k);
        h(i + 1, k) = -sn[i] * h(i, k) + cs[i] * h(i + 1, k);
        h(i, k) = t;
      }
      const double denom = std::hypot(h(k, k), h(k + 1, k));
      cs[k] = denom == 0.0 ? 1.0 : h(k, k) / denom;
      sn[k] = denom == 0.0 ? 0.0 : h(k + 1, k) / denom;
      h(k, k) = denom;
      h(k + 1, k) = 0.0;
      g[k + 1] = -sn[k] * g[k];
      g[k] = cs[k] * g[k];
      if (std::abs(g[k + 1]) <= opt.rel_tol * bnorm) {
        ++k;
        break;
      }
      if (h(k, k) == 0.0) break;  // breakdown: x is already exact in span
    }
    // Solve the small triangular system and update x.
    Vector y(k);
    for (std::size_t ii = k; ii-- > 0;) {
      double s = g[ii];
      for (std::size_t j = ii + 1; j < k; ++j) s -= h(ii, j) * y[j];
      y[ii] = h(ii, ii) == 0.0 ? 0.0 : s / h(ii, ii);
    }
    for (std::size_t i = 0; i < k; ++i) x.axpy(y[i], v[i]);
    if (k < m) {  // converged (or breakdown) inside the cycle
      const Vector rr = b - a(x);
      local.relative_residual = norm2(rr) / bnorm;
      local.converged = local.relative_residual <= opt.rel_tol * 10.0;
      break;
    }
  }
  local.iterations = total_iters;
  if (local.relative_residual == 0.0) {
    const Vector rr = b - a(x);
    local.relative_residual = norm2(rr) / bnorm;
    local.converged = local.relative_residual <= opt.rel_tol * 10.0;
  }
  if (stats) *stats = local;
  return x;
}

}  // namespace subspar
