// Shared kernel source for the per-ISA backend translation units.
//
// Each backend_<isa>.cpp sets three macros and includes this file:
//   SUBSPAR_BK_NS      unique namespace (scalar / avx2 / avx512 / neon), so
//                      the multiple instantiations can never collide (ODR)
//   SUBSPAR_BK_KIND    the BackendKind enumerator this TU implements
//   SUBSPAR_BK_SCALAR  1 for the scalar reference TU: selects the original
//                      pre-backend loops verbatim (the bit-exact golden-pin
//                      path), 0 for SIMD TUs (vector-extension kernels)
//
// The SIMD kernels are written once against the portable GCC/Clang vector
// extension at a fixed 8-lane double width; the per-TU -mavx2/-mavx512f/
// NEON flags decide how the compiler lowers them (2 x ymm, 1 x zmm, or
// 4 x q-registers). Every kernel keeps ascending inner-index accumulation
// order per output element, and every kernel with a scalar tail also keeps
// multiply-then-add rounding (fusing is suppressed, see SUBSPAR_BK_MUL), so
// on targets whose baseline ISA cannot fuse (x86-64) the tailed fp64
// kernels — SpMM, dot, DCT twiddles — are bit-identical across ALL
// backends: lane position, tail handling, and vector width never change a
// result bit. GEMM alone may contract (see gemm_f64): its packed tile is
// position-uniform, so fusing shifts results at most a ulp from the scalar
// backend without ever making one element round differently from another.
//
// Everything except ops() has internal linkage (anonymous namespace inside
// the per-TU namespace); ops() is the single externally visible symbol.

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "linalg/backend.hpp"

#if !SUBSPAR_BK_SCALAR && (defined(__GNUC__) || defined(__clang__))
#define SUBSPAR_BK_VEC 1
#else
#define SUBSPAR_BK_VEC 0
#endif

// A product that feeds an add, with FMA contraction suppressed in the x86
// SIMD TUs. Those TUs already build with -ffp-contract=off, but GCC before
// 14 fuses autovectorized loops (the kernels' scalar tails) despite the
// flag, so the -mfma TUs would silently drift a ulp away from the scalar
// reference at tail positions — breaking the batched-vs-single and
// cross-backend bit-identity contracts. __builtin_assoc_barrier closes
// that hole per expression; Clang lacks the builtin but honors the flag.
// The scalar TU keeps the plain expressions — its baseline ISA decides,
// exactly as before the backend layer existed — and so does the NEON TU,
// because aarch64's baseline HAS fused multiply-add: there, matching the
// scalar reference means contracting alike, not blocking it.
#if SUBSPAR_BK_VEC && defined(__GNUC__) && !defined(__clang__) && \
    (defined(__x86_64__) || defined(__i386__))
#define SUBSPAR_BK_MUL(a, b) __builtin_assoc_barrier((a) * (b))
#else
#define SUBSPAR_BK_MUL(a, b) ((a) * (b))
#endif

// The inverse knob, for the GEMM micro-kernels only: re-enable contraction
// under the TU's -ffp-contract=off (GCC: per-function optimize attribute;
// Clang: fp-contract pragma at the top of the body). GEMM's packed tile
// has no scalar tail, so fusing rounds every output element the same way —
// at most a uniform ulp from the scalar backend, inside the 4-ulp parity
// contract, never a batched-vs-single break — and is worth ~2x on this
// compute-bound path. Both expand empty in the scalar TU (baseline flags,
// legacy code verbatim) and the NEON TU (default contraction already on).
#if SUBSPAR_BK_VEC && defined(__GNUC__) && !defined(__clang__) && \
    (defined(__x86_64__) || defined(__i386__))
#define SUBSPAR_BK_GEMM_CONTRACT __attribute__((optimize("fp-contract=fast")))
#define SUBSPAR_BK_GEMM_CONTRACT_PRAGMA
#elif SUBSPAR_BK_VEC && defined(__clang__) && \
    (defined(__x86_64__) || defined(__i386__))
#define SUBSPAR_BK_GEMM_CONTRACT
#define SUBSPAR_BK_GEMM_CONTRACT_PRAGMA _Pragma("clang fp contract(fast)")
#else
#define SUBSPAR_BK_GEMM_CONTRACT
#define SUBSPAR_BK_GEMM_CONTRACT_PRAGMA
#endif

namespace subspar {
namespace backend_detail {
namespace SUBSPAR_BK_NS {
namespace {

constexpr std::size_t MR = 4;   // GEMM register tile rows (dense_kernels.cpp)
constexpr std::size_t NR = 16;  // GEMM register tile cols

#if defined(__GNUC__) || defined(__clang__)
using Vec8d __attribute__((vector_size(8 * sizeof(double)))) = double;
using Vec4d __attribute__((vector_size(4 * sizeof(double)))) = double;
#if SUBSPAR_BK_VEC
using Vec8f __attribute__((vector_size(8 * sizeof(float)))) = float;
#endif

// The original dense_kernels.cpp micro-kernel, unchanged: two 8-wide vector
// accumulators per tile row, ascending-k. In the scalar TU this compiles at
// the build's baseline flags and therefore IS the pre-backend kernel bit
// for bit; the SIMD TUs lower it wider and fuse the multiply-adds
// (SUBSPAR_BK_GEMM_CONTRACT above — position-uniform, so at most a uniform
// ulp from the scalar backend).
SUBSPAR_BK_GEMM_CONTRACT
void gemm_f64(const double* __restrict ap, const double* __restrict bp, std::size_t k,
              double* __restrict acc) {
  SUBSPAR_BK_GEMM_CONTRACT_PRAGMA
  Vec8d a00{}, a01{}, a10{}, a11{}, a20{}, a21{}, a30{}, a31{};
  for (std::size_t l = 0; l < k; ++l) {
    Vec8d b0, b1;
    std::memcpy(&b0, bp + l * NR, sizeof b0);
    std::memcpy(&b1, bp + l * NR + 8, sizeof b1);
    const double* ar = ap + l * MR;
    a00 += ar[0] * b0;
    a01 += ar[0] * b1;
    a10 += ar[1] * b0;
    a11 += ar[1] * b1;
    a20 += ar[2] * b0;
    a21 += ar[2] * b1;
    a30 += ar[3] * b0;
    a31 += ar[3] * b1;
  }
  std::memcpy(acc + 0 * NR, &a00, sizeof a00);
  std::memcpy(acc + 0 * NR + 8, &a01, sizeof a01);
  std::memcpy(acc + 1 * NR, &a10, sizeof a10);
  std::memcpy(acc + 1 * NR + 8, &a11, sizeof a11);
  std::memcpy(acc + 2 * NR, &a20, sizeof a20);
  std::memcpy(acc + 2 * NR + 8, &a21, sizeof a21);
  std::memcpy(acc + 3 * NR, &a30, sizeof a30);
  std::memcpy(acc + 3 * NR + 8, &a31, sizeof a31);
}

// Mixed micro-kernel: fp32-packed strips (half the packed bytes streamed
// per k step), widened lane-wise to fp64 before the multiply-accumulate.
SUBSPAR_BK_GEMM_CONTRACT
void gemm_f32(const float* __restrict ap, const float* __restrict bp, std::size_t k,
              double* __restrict acc) {
  SUBSPAR_BK_GEMM_CONTRACT_PRAGMA
  Vec8d a00{}, a01{}, a10{}, a11{}, a20{}, a21{}, a30{}, a31{};
  for (std::size_t l = 0; l < k; ++l) {
#if SUBSPAR_BK_VEC
    Vec8f bf0, bf1;
    std::memcpy(&bf0, bp + l * NR, sizeof bf0);
    std::memcpy(&bf1, bp + l * NR + 8, sizeof bf1);
    const Vec8d b0 = __builtin_convertvector(bf0, Vec8d);
    const Vec8d b1 = __builtin_convertvector(bf1, Vec8d);
#else
    Vec8d b0, b1;
    for (std::size_t c = 0; c < 8; ++c) {
      b0[c] = static_cast<double>(bp[l * NR + c]);
      b1[c] = static_cast<double>(bp[l * NR + 8 + c]);
    }
#endif
    const float* ar = ap + l * MR;
    const double a0 = static_cast<double>(ar[0]);
    const double a1 = static_cast<double>(ar[1]);
    const double a2 = static_cast<double>(ar[2]);
    const double a3 = static_cast<double>(ar[3]);
    a00 += a0 * b0;
    a01 += a0 * b1;
    a10 += a1 * b0;
    a11 += a1 * b1;
    a20 += a2 * b0;
    a21 += a2 * b1;
    a30 += a3 * b0;
    a31 += a3 * b1;
  }
  std::memcpy(acc + 0 * NR, &a00, sizeof a00);
  std::memcpy(acc + 0 * NR + 8, &a01, sizeof a01);
  std::memcpy(acc + 1 * NR, &a10, sizeof a10);
  std::memcpy(acc + 1 * NR + 8, &a11, sizeof a11);
  std::memcpy(acc + 2 * NR, &a20, sizeof a20);
  std::memcpy(acc + 2 * NR + 8, &a21, sizeof a21);
  std::memcpy(acc + 3 * NR, &a30, sizeof a30);
  std::memcpy(acc + 3 * NR + 8, &a31, sizeof a31);
}
#else
// Non-GNU fallback (portable scalar loops; only the scalar TU is built).
void gemm_f64(const double* ap, const double* bp, std::size_t k, double* acc) {
  for (std::size_t r = 0; r < MR; ++r)
    for (std::size_t c = 0; c < NR; ++c) acc[r * NR + c] = 0.0;
  for (std::size_t l = 0; l < k; ++l) {
    const double* ar = ap + l * MR;
    const double* br = bp + l * NR;
    for (std::size_t r = 0; r < MR; ++r) {
      const double av = ar[r];
      for (std::size_t c = 0; c < NR; ++c) acc[r * NR + c] += av * br[c];
    }
  }
}

void gemm_f32(const float* ap, const float* bp, std::size_t k, double* acc) {
  for (std::size_t r = 0; r < MR; ++r)
    for (std::size_t c = 0; c < NR; ++c) acc[r * NR + c] = 0.0;
  for (std::size_t l = 0; l < k; ++l) {
    const float* ar = ap + l * MR;
    const float* br = bp + l * NR;
    for (std::size_t r = 0; r < MR; ++r) {
      const double av = static_cast<double>(ar[r]);
      for (std::size_t c = 0; c < NR; ++c)
        acc[r * NR + c] += av * static_cast<double>(br[c]);
    }
  }
}
#endif

#if SUBSPAR_BK_VEC
// SpMM row kernel, vectorized across right-hand-side columns: for each
// 8/4-wide column block the entry loop runs once with a vector accumulator,
// so the k * nnz scalar FMAs of the reference become (k/8) * nnz vector
// FMAs. Per output element the accumulation is still ascending-e.
void spmm_row_f64(const double* __restrict vals, const std::size_t* __restrict cols,
                  std::size_t nnz, const double* __restrict x, std::size_t ldx,
                  double* __restrict yrow, std::size_t k) {
  std::size_t j = 0;
  for (; j + 8 <= k; j += 8) {
    Vec8d acc{};
    for (std::size_t e = 0; e < nnz; ++e) {
      Vec8d xv;
      std::memcpy(&xv, x + cols[e] * ldx + j, sizeof xv);
      acc += SUBSPAR_BK_MUL(vals[e], xv);
    }
    std::memcpy(yrow + j, &acc, sizeof acc);
  }
  for (; j + 4 <= k; j += 4) {
    Vec4d acc{};
    for (std::size_t e = 0; e < nnz; ++e) {
      Vec4d xv;
      std::memcpy(&xv, x + cols[e] * ldx + j, sizeof xv);
      acc += SUBSPAR_BK_MUL(vals[e], xv);
    }
    std::memcpy(yrow + j, &acc, sizeof acc);
  }
  for (; j < k; ++j) {
    double s = 0.0;
    for (std::size_t e = 0; e < nnz; ++e)
      s += SUBSPAR_BK_MUL(vals[e], x[cols[e] * ldx + j]);
    yrow[j] = s;
  }
}

void spmm_row_f32(const float* __restrict vals, const std::uint32_t* __restrict cols,
                  std::size_t nnz, const double* __restrict x, std::size_t ldx,
                  double* __restrict yrow, std::size_t k) {
  std::size_t j = 0;
  for (; j + 8 <= k; j += 8) {
    Vec8d acc{};
    for (std::size_t e = 0; e < nnz; ++e) {
      Vec8d xv;
      std::memcpy(&xv, x + cols[e] * ldx + j, sizeof xv);
      acc += SUBSPAR_BK_MUL(static_cast<double>(vals[e]), xv);
    }
    std::memcpy(yrow + j, &acc, sizeof acc);
  }
  for (; j + 4 <= k; j += 4) {
    Vec4d acc{};
    for (std::size_t e = 0; e < nnz; ++e) {
      Vec4d xv;
      std::memcpy(&xv, x + cols[e] * ldx + j, sizeof xv);
      acc += SUBSPAR_BK_MUL(static_cast<double>(vals[e]), xv);
    }
    std::memcpy(yrow + j, &acc, sizeof acc);
  }
  for (; j < k; ++j) {
    double s = 0.0;
    for (std::size_t e = 0; e < nnz; ++e)
      s += SUBSPAR_BK_MUL(static_cast<double>(vals[e]), x[cols[e] * ldx + j]);
    yrow[j] = s;
  }
}

// Transpose-apply scatter. The scalar reference skips xrow[j] == 0.0 terms;
// the vector kernel adds them (v * 0.0 contributions), which can only flip
// a signed zero — within every backend-parity tolerance.
void spmm_t_row_f64(const double* __restrict vals, const std::size_t* __restrict cols,
                    std::size_t nnz, const double* __restrict xrow, std::size_t j0,
                    std::size_t j1, double* __restrict y, std::size_t ldy) {
  for (std::size_t e = 0; e < nnz; ++e) {
    const double v = vals[e];
    double* yrow = y + cols[e] * ldy;
    std::size_t j = j0;
    for (; j + 4 <= j1; j += 4) {
      Vec4d xv, yv;
      std::memcpy(&xv, xrow + j, sizeof xv);
      std::memcpy(&yv, yrow + j, sizeof yv);
      yv += SUBSPAR_BK_MUL(v, xv);
      std::memcpy(yrow + j, &yv, sizeof yv);
    }
    for (; j < j1; ++j) yrow[j] += SUBSPAR_BK_MUL(v, xrow[j]);
  }
}

// Horizontal sum in fixed lane order (deterministic for a given backend).
// By reference: a by-value 512-bit vector argument would change ABI (and
// warn under -Wpsabi) in the TUs compiled without -mavx512f.
inline double hsum(const Vec8d& v) {
  return ((v[0] + v[1]) + (v[2] + v[3])) + ((v[4] + v[5]) + (v[6] + v[7]));
}

double dot_f64(const double* __restrict a, const double* __restrict b, std::size_t n) {
  Vec8d acc{};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Vec8d av, bv;
    std::memcpy(&av, a + i, sizeof av);
    std::memcpy(&bv, b + i, sizeof bv);
    acc += SUBSPAR_BK_MUL(av, bv);
  }
  double s = hsum(acc);
  for (; i < n; ++i) s += SUBSPAR_BK_MUL(a[i], b[i]);
  return s;
}

double dot_f32(const float* __restrict a, const double* __restrict b, std::size_t n) {
  Vec8d acc{};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Vec8f af;
    Vec8d bv;
    std::memcpy(&af, a + i, sizeof af);
    std::memcpy(&bv, b + i, sizeof bv);
    acc += SUBSPAR_BK_MUL(__builtin_convertvector(af, Vec8d), bv);
  }
  double s = hsum(acc);
  for (; i < n; ++i) s += SUBSPAR_BK_MUL(static_cast<double>(a[i]), b[i]);
  return s;
}

// DCT-II post-twiddle: deinterleave 8 complex values into (re, im) lane
// vectors with one shuffle each, then one fused twiddle/scale expression.
void dct2_post_f64(const double* __restrict tc, const double* __restrict ts,
                   const double* __restrict v, double* __restrict x, std::size_t n,
                   double s0, double sk) {
  x[0] = v[0] * s0;
  std::size_t j = 1;
  for (; j + 8 <= n; j += 8) {
    Vec8d v0, v1, c, s;
    std::memcpy(&v0, v + 2 * j, sizeof v0);
    std::memcpy(&v1, v + 2 * j + 8, sizeof v1);
    std::memcpy(&c, tc + j, sizeof c);
    std::memcpy(&s, ts + j, sizeof s);
    const Vec8d re = __builtin_shufflevector(v0, v1, 0, 2, 4, 6, 8, 10, 12, 14);
    const Vec8d im = __builtin_shufflevector(v0, v1, 1, 3, 5, 7, 9, 11, 13, 15);
    const Vec8d out = (SUBSPAR_BK_MUL(c, re) - SUBSPAR_BK_MUL(s, im)) * sk;
    std::memcpy(x + j, &out, sizeof out);
  }
  for (; j < n; ++j)
    x[j] = (SUBSPAR_BK_MUL(tc[j], v[2 * j]) - SUBSPAR_BK_MUL(ts[j], v[2 * j + 1])) * sk;
}

void dct2_post_f32(const float* __restrict tc, const float* __restrict ts,
                   const double* __restrict v, double* __restrict x, std::size_t n,
                   double s0, double sk) {
  x[0] = v[0] * s0;
  std::size_t j = 1;
  for (; j + 8 <= n; j += 8) {
    Vec8d v0, v1;
    Vec8f cf, sf;
    std::memcpy(&v0, v + 2 * j, sizeof v0);
    std::memcpy(&v1, v + 2 * j + 8, sizeof v1);
    std::memcpy(&cf, tc + j, sizeof cf);
    std::memcpy(&sf, ts + j, sizeof sf);
    const Vec8d c = __builtin_convertvector(cf, Vec8d);
    const Vec8d s = __builtin_convertvector(sf, Vec8d);
    const Vec8d re = __builtin_shufflevector(v0, v1, 0, 2, 4, 6, 8, 10, 12, 14);
    const Vec8d im = __builtin_shufflevector(v0, v1, 1, 3, 5, 7, 9, 11, 13, 15);
    const Vec8d out = (SUBSPAR_BK_MUL(c, re) - SUBSPAR_BK_MUL(s, im)) * sk;
    std::memcpy(x + j, &out, sizeof out);
  }
  for (; j < n; ++j)
    x[j] = (SUBSPAR_BK_MUL(static_cast<double>(tc[j]), v[2 * j]) -
            SUBSPAR_BK_MUL(static_cast<double>(ts[j]), v[2 * j + 1])) *
           sk;
}

// DCT-III pre-twiddle: forward load of x[k..k+7], reversed load of the
// mirrored block x[n-k-7..n-k], then interleave (re, im) back into v.
void dct3_pre_f64(const double* __restrict tc, const double* __restrict ts,
                  const double* __restrict x, double* __restrict v, std::size_t n,
                  double s0, double sk) {
  v[0] = x[0] / s0;
  v[1] = 0.0;
  std::size_t j = 1;
  for (; j + 8 <= n; j += 8) {
    Vec8d xk, xr, c, s;
    std::memcpy(&xk, x + j, sizeof xk);
    std::memcpy(&xr, x + (n - j - 7), sizeof xr);
    std::memcpy(&c, tc + j, sizeof c);
    std::memcpy(&s, ts + j, sizeof s);
    s = -s;
    // Divide like the scalar reference (not * (1/sk)): the extra latency
    // hides behind the loads, and matching its rounding keeps the fast
    // DCT-III bit-identical across backends.
    const Vec8d ck = xk / sk;
    const Vec8d cnk = __builtin_shufflevector(xr, xr, 7, 6, 5, 4, 3, 2, 1, 0) / sk;
    const Vec8d re = SUBSPAR_BK_MUL(c, ck) + SUBSPAR_BK_MUL(s, cnk);
    const Vec8d im = SUBSPAR_BK_MUL(s, ck) - SUBSPAR_BK_MUL(c, cnk);
    const Vec8d lo = __builtin_shufflevector(re, im, 0, 8, 1, 9, 2, 10, 3, 11);
    const Vec8d hi = __builtin_shufflevector(re, im, 4, 12, 5, 13, 6, 14, 7, 15);
    std::memcpy(v + 2 * j, &lo, sizeof lo);
    std::memcpy(v + 2 * j + 8, &hi, sizeof hi);
  }
  for (; j < n; ++j) {
    const double ck = x[j] / sk;
    const double cnk = x[n - j] / sk;
    const double c = tc[j], s = -ts[j];
    v[2 * j] = SUBSPAR_BK_MUL(c, ck) + SUBSPAR_BK_MUL(s, cnk);
    v[2 * j + 1] = SUBSPAR_BK_MUL(s, ck) - SUBSPAR_BK_MUL(c, cnk);
  }
}

void dct3_pre_f32(const float* __restrict tc, const float* __restrict ts,
                  const double* __restrict x, double* __restrict v, std::size_t n,
                  double s0, double sk) {
  v[0] = x[0] / s0;
  v[1] = 0.0;
  std::size_t j = 1;
  for (; j + 8 <= n; j += 8) {
    Vec8d xk, xr;
    Vec8f cf, sf;
    std::memcpy(&xk, x + j, sizeof xk);
    std::memcpy(&xr, x + (n - j - 7), sizeof xr);
    std::memcpy(&cf, tc + j, sizeof cf);
    std::memcpy(&sf, ts + j, sizeof sf);
    const Vec8d c = __builtin_convertvector(cf, Vec8d);
    const Vec8d s = -__builtin_convertvector(sf, Vec8d);
    const Vec8d ck = xk / sk;
    const Vec8d cnk = __builtin_shufflevector(xr, xr, 7, 6, 5, 4, 3, 2, 1, 0) / sk;
    const Vec8d re = SUBSPAR_BK_MUL(c, ck) + SUBSPAR_BK_MUL(s, cnk);
    const Vec8d im = SUBSPAR_BK_MUL(s, ck) - SUBSPAR_BK_MUL(c, cnk);
    const Vec8d lo = __builtin_shufflevector(re, im, 0, 8, 1, 9, 2, 10, 3, 11);
    const Vec8d hi = __builtin_shufflevector(re, im, 4, 12, 5, 13, 6, 14, 7, 15);
    std::memcpy(v + 2 * j, &lo, sizeof lo);
    std::memcpy(v + 2 * j + 8, &hi, sizeof hi);
  }
  for (; j < n; ++j) {
    const double ck = x[j] / sk;
    const double cnk = x[n - j] / sk;
    const double c = static_cast<double>(tc[j]), s = -static_cast<double>(ts[j]);
    v[2 * j] = SUBSPAR_BK_MUL(c, ck) + SUBSPAR_BK_MUL(s, cnk);
    v[2 * j + 1] = SUBSPAR_BK_MUL(s, ck) - SUBSPAR_BK_MUL(c, cnk);
  }
}

#else  // !SUBSPAR_BK_VEC — the scalar reference TU: pre-backend loops verbatim.

// The original sparse.cpp apply_many inner loops: j outer, ascending-e
// inner, one scalar accumulator per output element.
void spmm_row_f64(const double* vals, const std::size_t* cols, std::size_t nnz,
                  const double* x, std::size_t ldx, double* yrow, std::size_t k) {
  for (std::size_t j = 0; j < k; ++j) {
    double s = 0.0;
    for (std::size_t e = 0; e < nnz; ++e) s += vals[e] * x[cols[e] * ldx + j];
    yrow[j] = s;
  }
}

void spmm_row_f32(const float* vals, const std::uint32_t* cols, std::size_t nnz,
                  const double* x, std::size_t ldx, double* yrow, std::size_t k) {
  for (std::size_t j = 0; j < k; ++j) {
    double s = 0.0;
    for (std::size_t e = 0; e < nnz; ++e)
      s += static_cast<double>(vals[e]) * x[cols[e] * ldx + j];
    yrow[j] = s;
  }
}

// The original apply_t_many scatter, including its xrow[j] == 0.0 skip.
void spmm_t_row_f64(const double* vals, const std::size_t* cols, std::size_t nnz,
                    const double* xrow, std::size_t j0, std::size_t j1, double* y,
                    std::size_t ldy) {
  for (std::size_t e = 0; e < nnz; ++e) {
    const double v = vals[e];
    double* yrow = y + cols[e] * ldy;
    for (std::size_t j = j0; j < j1; ++j)
      if (xrow[j] != 0.0) yrow[j] += v * xrow[j];
  }
}

double dot_f64(const double* a, const double* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double dot_f32(const float* a, const double* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

// The original dct.cpp fast-path twiddle loops.
void dct2_post_f64(const double* tc, const double* ts, const double* v, double* x,
                   std::size_t n, double s0, double sk) {
  x[0] = v[0] * s0;
  for (std::size_t j = 1; j < n; ++j)
    x[j] = (tc[j] * v[2 * j] - ts[j] * v[2 * j + 1]) * sk;
}

void dct2_post_f32(const float* tc, const float* ts, const double* v, double* x,
                   std::size_t n, double s0, double sk) {
  x[0] = v[0] * s0;
  for (std::size_t j = 1; j < n; ++j)
    x[j] = (static_cast<double>(tc[j]) * v[2 * j] -
            static_cast<double>(ts[j]) * v[2 * j + 1]) *
           sk;
}

void dct3_pre_f64(const double* tc, const double* ts, const double* x, double* v,
                  std::size_t n, double s0, double sk) {
  v[0] = x[0] / s0;
  v[1] = 0.0;
  for (std::size_t j = 1; j < n; ++j) {
    const double ck = x[j] / sk;
    const double cnk = x[n - j] / sk;
    const double c = tc[j], s = -ts[j];
    v[2 * j] = c * ck + s * cnk;
    v[2 * j + 1] = s * ck - c * cnk;
  }
}

void dct3_pre_f32(const float* tc, const float* ts, const double* x, double* v,
                  std::size_t n, double s0, double sk) {
  v[0] = x[0] / s0;
  v[1] = 0.0;
  for (std::size_t j = 1; j < n; ++j) {
    const double ck = x[j] / sk;
    const double cnk = x[n - j] / sk;
    const double c = static_cast<double>(tc[j]), s = -static_cast<double>(ts[j]);
    v[2 * j] = c * ck + s * cnk;
    v[2 * j + 1] = s * ck - c * cnk;
  }
}

#endif  // SUBSPAR_BK_VEC

constexpr KernelOps kOps = {
    SUBSPAR_BK_KIND,
    &gemm_f64,
    &gemm_f32,
    &spmm_row_f64,
    &spmm_row_f32,
    &spmm_t_row_f64,
    &dot_f64,
    &dot_f32,
    &dct2_post_f64,
    &dct3_pre_f64,
    &dct2_post_f32,
    &dct3_pre_f32,
};

}  // namespace

const KernelOps& ops() { return kOps; }

}  // namespace SUBSPAR_BK_NS
}  // namespace backend_detail
}  // namespace subspar

#undef SUBSPAR_BK_GEMM_CONTRACT_PRAGMA
#undef SUBSPAR_BK_GEMM_CONTRACT
#undef SUBSPAR_BK_MUL
#undef SUBSPAR_BK_VEC
