#include "linalg/reorder.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace subspar {
namespace {

// Adjacency of the symmetrized pattern, diagonal excluded, neighbor lists
// sorted by (degree, index) so BFS visit order is deterministic and the
// Cuthill-McKee low-degree-first rule holds.
struct Graph {
  std::vector<std::size_t> ptr, adj, degree;
};

Graph build_graph(const SparseMatrix& a) {
  const std::size_t n = a.rows();
  Graph g;
  g.ptr.assign(n + 1, 0);
  // Symmetrize: count every off-diagonal entry for both endpoints, then
  // dedupe (i, j) pairs appearing in both triangles.
  std::vector<std::vector<std::size_t>> nbr(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      const std::size_t j = a.col_index(e);
      if (j == i) continue;
      nbr[i].push_back(j);
      nbr[j].push_back(i);
    }
  g.degree.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    auto& v = nbr[i];
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    g.degree[i] = v.size();
    g.ptr[i + 1] = g.ptr[i] + v.size();
  }
  g.adj.reserve(g.ptr[n]);
  for (std::size_t i = 0; i < n; ++i) {
    auto& v = nbr[i];
    std::sort(v.begin(), v.end(), [&](std::size_t x, std::size_t y) {
      return g.degree[x] != g.degree[y] ? g.degree[x] < g.degree[y] : x < y;
    });
    g.adj.insert(g.adj.end(), v.begin(), v.end());
  }
  return g;
}

// BFS from `root` over unvisited-in-`order` vertices of one component;
// returns the traversal (Cuthill-McKee order) and the index of a vertex in
// the last (deepest) BFS level with minimum degree — the candidate
// pseudo-peripheral endpoint.
struct Bfs {
  std::vector<std::size_t> order;
  std::size_t last_level_min_degree = 0;
  std::size_t eccentricity = 0;
};

Bfs bfs(const Graph& g, std::size_t root, std::vector<char>& visited) {
  Bfs out;
  out.order.push_back(root);
  visited[root] = 1;
  std::size_t level_begin = 0;
  while (level_begin < out.order.size()) {
    const std::size_t level_end = out.order.size();
    for (std::size_t q = level_begin; q < level_end; ++q) {
      const std::size_t u = out.order[q];
      for (std::size_t e = g.ptr[u]; e < g.ptr[u + 1]; ++e) {
        const std::size_t v = g.adj[e];
        if (!visited[v]) {
          visited[v] = 1;
          out.order.push_back(v);
        }
      }
    }
    if (out.order.size() == level_end) break;  // no deeper level discovered
    ++out.eccentricity;
    level_begin = level_end;
  }
  // Min-degree vertex of the deepest level (ties -> smallest index; the
  // level is a contiguous tail slice [level_begin, size)).
  std::size_t best = out.order[level_begin];
  for (std::size_t q = level_begin; q < out.order.size(); ++q) {
    const std::size_t v = out.order[q];
    if (g.degree[v] < g.degree[best] || (g.degree[v] == g.degree[best] && v < best)) best = v;
  }
  out.last_level_min_degree = best;
  return out;
}

}  // namespace

std::vector<std::size_t> rcm_ordering(const SparseMatrix& a) {
  SUBSPAR_REQUIRE(a.rows() == a.cols());
  const std::size_t n = a.rows();
  const Graph g = build_graph(a);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<char> visited(n, 0);

  for (std::size_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    // Component start: the unvisited vertex of minimum degree at or after
    // `seed` would require a scan per component; the standard (George-Liu)
    // refinement below washes out the exact choice, so start from `seed`
    // and refine toward a pseudo-peripheral vertex: alternate BFS sweeps,
    // re-rooting at the deepest level's min-degree vertex while the
    // eccentricity keeps growing. Trial sweeps mark `visited` and undo
    // their own marks (the traversal order IS the touched set), keeping
    // the whole ordering O(components * component-size), not O(n^2).
    auto trial_bfs = [&](std::size_t root) {
      Bfs sweep = bfs(g, root, visited);
      for (const std::size_t v : sweep.order) visited[v] = 0;
      return sweep;
    };
    std::size_t root = seed;
    Bfs sweep = trial_bfs(root);
    for (int iter = 0; iter < 4; ++iter) {
      const std::size_t cand = sweep.last_level_min_degree;
      if (cand == root) break;
      Bfs next = trial_bfs(cand);
      if (next.eccentricity <= sweep.eccentricity && iter > 0) break;
      root = cand;
      sweep = std::move(next);
    }
    // Final Cuthill-McKee traversal of the component (marks `visited`).
    const Bfs cm = bfs(g, root, visited);
    order.insert(order.end(), cm.order.begin(), cm.order.end());
  }
  SUBSPAR_ENSURE(order.size() == n);
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<std::size_t> invert_permutation(const std::vector<std::size_t>& p) {
  std::vector<std::size_t> q(p.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    SUBSPAR_REQUIRE(p[i] < p.size() && q[p[i]] == p.size());
    q[p[i]] = i;
  }
  return q;
}

std::size_t bandwidth(const SparseMatrix& a) {
  SUBSPAR_REQUIRE(a.rows() == a.cols());
  std::size_t bw = 0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t e = a.row_begin(i); e < a.row_end(i); ++e) {
      const std::size_t j = a.col_index(e);
      bw = std::max(bw, i > j ? i - j : j - i);
    }
  return bw;
}

}  // namespace subspar
