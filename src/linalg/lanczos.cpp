#include "linalg/lanczos.hpp"

#include <cmath>

#include "linalg/eig_sym.hpp"
#include "linalg/matrix.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace subspar {

SpectrumEstimate lanczos_extremes(const LinearOp& a, std::size_t n, std::size_t iterations,
                                  std::uint64_t seed) {
  SUBSPAR_REQUIRE(n > 0);
  const std::size_t m = std::min(iterations, n);
  Rng rng(seed);
  Vector q(n);
  for (auto& v : q) v = rng.normal();
  q *= 1.0 / norm2(q);

  // Lanczos three-term recurrence with full reorthogonalization (cheap at
  // m <= ~40 and removes ghost eigenvalues).
  std::vector<Vector> basis;
  basis.push_back(q);
  Vector alpha(m), beta(m);  // beta[k] couples step k to k+1
  std::size_t steps = 0;
  Vector q_prev(n);
  double beta_prev = 0.0;
  for (std::size_t k = 0; k < m; ++k) {
    Vector w = a(basis[k]);
    alpha[k] = dot(w, basis[k]);
    w.axpy(-alpha[k], basis[k]);
    if (k > 0) w.axpy(-beta_prev, basis[k - 1]);
    for (const Vector& b : basis) w.axpy(-dot(w, b), b);  // reorthogonalize
    const double nb = norm2(w);
    ++steps;
    if (nb <= 1e-13 * std::abs(alpha[0]) || k + 1 == m) break;
    beta[k] = nb;
    beta_prev = nb;
    basis.push_back((1.0 / nb) * w);
  }

  Matrix t(steps, steps);
  for (std::size_t k = 0; k < steps; ++k) {
    t(k, k) = alpha[k];
    if (k + 1 < steps) {
      t(k, k + 1) = beta[k];
      t(k + 1, k) = beta[k];
    }
  }
  const EigSym dec = eig_sym(t);
  SpectrumEstimate out;
  out.lambda_min = dec.values[0];
  out.lambda_max = dec.values[steps - 1];
  return out;
}

}  // namespace subspar
