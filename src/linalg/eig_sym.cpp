#include "linalg/eig_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace subspar {

EigSym eig_sym(const Matrix& a_in) {
  SUBSPAR_REQUIRE(a_in.rows() == a_in.cols());
  const std::size_t n = a_in.rows();
  // Symmetrize to guard against roundoff-level asymmetry in callers.
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = 0.5 * (a_in(i, j) + a_in(j, i));

  Matrix v = Matrix::identity(n);
  const int max_sweeps = 60;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    if (std::sqrt(off) <= 1e-14 * (1.0 + a.frobenius_norm())) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (a(p, q) == 0.0) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        // A <- J' A J applied to rows and columns p, q.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a(x, x) < a(y, y); });

  EigSym out;
  out.values = Vector(n);
  out.vectors = Matrix(n, n);
  for (std::size_t jj = 0; jj < n; ++jj) {
    out.values[jj] = a(order[jj], order[jj]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, jj) = v(i, order[jj]);
  }
  return out;
}

}  // namespace subspar
