#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace subspar {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  SUBSPAR_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  SUBSPAR_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double a) {
  for (auto& v : data_) v *= a;
  return *this;
}

Vector Matrix::col(std::size_t j) const {
  SUBSPAR_REQUIRE(j < cols_);
  Vector v(rows_);
  for (std::size_t i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
  return v;
}

Vector Matrix::row(std::size_t i) const {
  SUBSPAR_REQUIRE(i < rows_);
  Vector v(cols_);
  for (std::size_t j = 0; j < cols_; ++j) v[j] = (*this)(i, j);
  return v;
}

void Matrix::set_col(std::size_t j, const Vector& v) {
  SUBSPAR_REQUIRE(j < cols_ && v.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr, std::size_t nc) const {
  SUBSPAR_REQUIRE(r0 + nr <= rows_ && c0 + nc <= cols_);
  Matrix b(nr, nc);
  for (std::size_t i = 0; i < nr; ++i)
    for (std::size_t j = 0; j < nc; ++j) b(i, j) = (*this)(r0 + i, c0 + j);
  return b;
}

void Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix& b) {
  SUBSPAR_REQUIRE(r0 + b.rows() <= rows_ && c0 + b.cols() <= cols_);
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) (*this)(r0 + i, c0 + j) = b(i, j);
}

Matrix Matrix::hcat(const Matrix& a, const Matrix& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  SUBSPAR_REQUIRE(a.rows() == b.rows());
  Matrix c(a.rows(), a.cols() + b.cols());
  c.set_block(0, 0, a);
  c.set_block(0, a.cols(), b);
  return c;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

Vector matvec(const Matrix& a, const Vector& x) {
  SUBSPAR_REQUIRE(a.cols() == x.size());
  Vector y(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row_ptr(i);
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

Vector matvec_t(const Matrix& a, const Vector& x) {
  SUBSPAR_REQUIRE(a.rows() == x.size());
  Vector y(a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row_ptr(i);
    const double xi = x[i];
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  SUBSPAR_REQUIRE(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  // i-k-j order keeps the inner loop streaming over contiguous rows.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double* crow = c.row_ptr(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.row_ptr(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  SUBSPAR_REQUIRE(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const double* arow = a.row_ptr(k);
    const double* brow = b.row_ptr(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.row_ptr(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  SUBSPAR_REQUIRE(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.row_ptr(i);
    double* crow = c.row_ptr(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* brow = b.row_ptr(j);
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += arow[k] * brow[k];
      crow[j] = s;
    }
  }
  return c;
}

}  // namespace subspar
