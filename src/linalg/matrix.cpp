#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace subspar {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  // Cache-blocked: both the read and the write stream stay inside one
  // 32 x 32 block (8 KB each), instead of striding the full matrix.
  constexpr std::size_t B = 32;
  for (std::size_t i0 = 0; i0 < rows_; i0 += B) {
    const std::size_t i1 = std::min(i0 + B, rows_);
    for (std::size_t j0 = 0; j0 < cols_; j0 += B) {
      const std::size_t j1 = std::min(j0 + B, cols_);
      for (std::size_t i = i0; i < i1; ++i)
        for (std::size_t j = j0; j < j1; ++j) t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  SUBSPAR_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  SUBSPAR_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double a) {
  for (auto& v : data_) v *= a;
  return *this;
}

Vector Matrix::col(std::size_t j) const {
  SUBSPAR_REQUIRE(j < cols_);
  Vector v(rows_);
  for (std::size_t i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
  return v;
}

Vector Matrix::row(std::size_t i) const {
  SUBSPAR_REQUIRE(i < rows_);
  Vector v(cols_);
  std::copy(row_ptr(i), row_ptr(i) + cols_, v.begin());
  return v;
}

void Matrix::set_col(std::size_t j, const Vector& v) {
  SUBSPAR_REQUIRE(j < cols_ && v.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr, std::size_t nc) const {
  SUBSPAR_REQUIRE(r0 + nr <= rows_ && c0 + nc <= cols_);
  Matrix b(nr, nc);
  for (std::size_t i = 0; i < nr; ++i) {
    const double* src = row_ptr(r0 + i) + c0;
    std::copy(src, src + nc, b.row_ptr(i));
  }
  return b;
}

void Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix& b) {
  SUBSPAR_REQUIRE(r0 + b.rows() <= rows_ && c0 + b.cols() <= cols_);
  for (std::size_t i = 0; i < b.rows(); ++i)
    std::copy(b.row_ptr(i), b.row_ptr(i) + b.cols(), row_ptr(r0 + i) + c0);
}

Matrix Matrix::hcat(const Matrix& a, const Matrix& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  SUBSPAR_REQUIRE(a.rows() == b.rows());
  Matrix c(a.rows(), a.cols() + b.cols());
  c.set_block(0, 0, a);
  c.set_block(0, a.cols(), b);
  return c;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

Vector matvec(const Matrix& a, const Vector& x) {
  SUBSPAR_REQUIRE(a.cols() == x.size());
  Vector y(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row_ptr(i);
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += row[j] * x[j];
    y[i] = s;
  }
  return y;
}

Vector matvec_t(const Matrix& a, const Vector& x) {
  SUBSPAR_REQUIRE(a.rows() == x.size());
  Vector y(a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = a.row_ptr(i);
    const double xi = x[i];
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

// The matmul family lives in linalg/dense_kernels.cpp (blocked core).

}  // namespace subspar
