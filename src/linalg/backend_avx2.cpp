// AVX2 + FMA backend: same vector-extension kernel source as the other SIMD
// TUs, lowered to 256-bit ymm + FMA by this file's -mavx2 -mfma flags (set
// per-source in src/CMakeLists.txt). Only dispatched when CPUID reports
// AVX2 and FMA.
#define SUBSPAR_BK_NS avx2
#define SUBSPAR_BK_KIND BackendKind::kAvx2
#define SUBSPAR_BK_SCALAR 0
#include "linalg/backend_kernels.inl"
