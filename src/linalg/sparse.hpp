// Compressed sparse row (CSR) matrices.
//
// Sparse matrices appear in three roles: the 7-point finite-difference
// Laplacian of §2.2, the change-of-basis matrix Q of both sparsifiers, and
// the sparsified transformed conductance matrices G_ws / G_wt. The paper's
// "sparsity" metric n^2 / nnz is provided here.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace subspar {

/// Triplet accumulator; duplicate (row, col) entries are summed on build.
class SparseBuilder {
 public:
  SparseBuilder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}
  void add(std::size_t r, std::size_t c, double v);
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  friend class SparseMatrix;
  std::size_t rows_, cols_;
  std::vector<std::size_t> r_, c_;
  std::vector<double> v_;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;
  explicit SparseMatrix(const SparseBuilder& b, double drop_tol = 0.0);

  /// Dense-to-sparse conversion keeping |a(i,j)| > drop_tol.
  static SparseMatrix from_dense(const Matrix& a, double drop_tol = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return val_.size(); }
  /// Paper metric: total entries / nonzeros ("sparsity of the matrix").
  double sparsity_factor() const;

  Vector apply(const Vector& x) const;    ///< y = A x
  Vector apply_t(const Vector& x) const;  ///< y = A' x

  Matrix to_dense() const;
  SparseMatrix transposed() const;

  /// Row access for iteration: [col_index(k), value(k)) for k in
  /// [row_begin(i), row_end(i)).
  std::size_t row_begin(std::size_t i) const { return rowptr_[i]; }
  std::size_t row_end(std::size_t i) const { return rowptr_[i + 1]; }
  std::size_t col_index(std::size_t k) const { return colidx_[k]; }
  double value(std::size_t k) const { return val_[k]; }

  /// (row, col) coordinates of all nonzeros, for spy plots.
  std::vector<std::pair<std::size_t, std::size_t>> coordinates() const;

 private:
  friend SparseMatrix ic0(const SparseMatrix&);
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::size_t> rowptr_{0};
  std::vector<std::size_t> colidx_;
  std::vector<double> val_;
};

}  // namespace subspar
