// Compressed sparse row (CSR) matrices.
//
// Sparse matrices appear in three roles: the 7-point finite-difference
// Laplacian of §2.2, the change-of-basis matrix Q of both sparsifiers, and
// the sparsified transformed conductance matrices G_ws / G_wt. The paper's
// "sparsity" metric n^2 / nnz is provided here.
//
// Column indices within each row are always sorted ascending (the builder
// sorts, every derived matrix preserves the invariant), so row iteration is
// ordered and the batched kernels accumulate in a fixed order — the basis
// of the bit-identical-for-any-SUBSPAR_THREADS contract of apply_many /
// apply_t_many.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace subspar {

/// Triplet accumulator; duplicate (row, col) entries are summed on build.
class SparseBuilder {
 public:
  SparseBuilder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}
  void add(std::size_t r, std::size_t c, double v);
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  friend class SparseMatrix;
  std::size_t rows_, cols_;
  std::vector<std::size_t> r_, c_;
  std::vector<double> v_;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;
  explicit SparseMatrix(const SparseBuilder& b, double drop_tol = 0.0);

  /// Dense-to-sparse conversion keeping |a(i,j)| > drop_tol. Empty inputs
  /// (zero rows or columns) and inputs whose every entry is dropped are
  /// valid and produce a zero-nnz matrix.
  static SparseMatrix from_dense(const Matrix& a, double drop_tol = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return val_.size(); }
  /// Paper metric: total entries / nonzeros ("sparsity of the matrix").
  /// Defined as 0 for empty and zero-nnz matrices (never divides by zero).
  double sparsity_factor() const;

  Vector apply(const Vector& x) const;    ///< y = A x
  Vector apply_t(const Vector& x) const;  ///< y = A' x

  /// Y = A X for k dense right-hand sides (the columns of X): one CSR
  /// traversal feeds all k columns (row-major X keeps the inner loop
  /// contiguous). Row-partitioned over the util/parallel pool in fixed-size
  /// chunks; each output row is produced by exactly one task with ascending
  /// column-index accumulation, so the result is bit-identical to k apply()
  /// calls for ANY SUBSPAR_THREADS.
  Matrix apply_many(const Matrix& x) const;
  /// Y = A' X. Parallel over fixed-width column chunks of X (each task
  /// scatters into its own output columns, scanning rows in ascending
  /// order), bit-identical to k apply_t() calls for any thread count.
  Matrix apply_t_many(const Matrix& x) const;

  /// Symmetric permutation B = P A P' with B(i, j) = A(p[i], p[j]): entry
  /// (i, j) of the result is entry (p[i], p[j]) of this matrix. `p` must be
  /// a permutation of [0, rows) and the matrix square. Solving with B:
  /// x = P' B^{-1} P b (gather rows by p, solve, scatter back) — see
  /// Ic0Preconditioner for the canonical use with an RCM ordering.
  SparseMatrix permuted(const std::vector<std::size_t>& p) const;

  Matrix to_dense() const;
  SparseMatrix transposed() const;

  /// Row access for iteration: [col_index(k), value(k)) for k in
  /// [row_begin(i), row_end(i)).
  std::size_t row_begin(std::size_t i) const { return rowptr_[i]; }
  std::size_t row_end(std::size_t i) const { return rowptr_[i + 1]; }
  std::size_t col_index(std::size_t k) const { return colidx_[k]; }
  double value(std::size_t k) const { return val_[k]; }

  /// (row, col) coordinates of all nonzeros, for spy plots.
  std::vector<std::pair<std::size_t, std::size_t>> coordinates() const;

 private:
  friend SparseMatrix ic0(const SparseMatrix&);
  friend class SparseMirrorF32;
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::size_t> rowptr_{0};
  std::vector<std::size_t> colidx_;
  std::vector<double> val_;
};

/// Mixed-precision mirror of a SparseMatrix: the same CSR pattern with fp32
/// values and 32-bit column indices — half the bytes per traversed entry on
/// the bandwidth-bound SpMM path — applied against fp64 right-hand sides
/// with fp64 accumulators (KernelOps::spmm_row_f32). The mirror is an
/// APPROXIMATION of its source (values carry one fp32 rounding), used as
/// the inner operator of iterative refinement (pcg_block_refined) where an
/// fp64 true-residual correction restores full accuracy. Requires
/// cols < 2^32. Holds no reference to the source matrix.
class SparseMirrorF32 {
 public:
  SparseMirrorF32() = default;
  explicit SparseMirrorF32(const SparseMatrix& a);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return val_.size(); }

  /// Y = mirror(A) X, same chunking/determinism contract as
  /// SparseMatrix::apply_many (bit-identical for any SUBSPAR_THREADS under
  /// a fixed backend).
  Matrix apply_many(const Matrix& x) const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<std::size_t> rowptr_{0};
  std::vector<std::uint32_t> colidx_;
  std::vector<float> val_;
};

}  // namespace subspar
