// Lanczos extreme-eigenvalue estimation for SPD black-box operators.
//
// Used to quantify what the fast-solver preconditioners of §2.2.2 actually
// do: PCG iteration counts track sqrt(cond(M^{-1/2} A M^{-1/2})), so
// estimating the preconditioned spectrum's edges explains Table 2.1.
#pragma once

#include <cstddef>

#include "linalg/iterative.hpp"

namespace subspar {

struct SpectrumEstimate {
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  double condition() const { return lambda_min > 0.0 ? lambda_max / lambda_min : 0.0; }
};

/// Estimates the extreme eigenvalues of the SPD operator `a` (dimension n)
/// with `iterations` Lanczos steps from a seeded random start. Ritz values
/// converge to the spectrum edges from inside, so the condition estimate is
/// a (usually tight) lower bound.
SpectrumEstimate lanczos_extremes(const LinearOp& a, std::size_t n, std::size_t iterations = 40,
                                  std::uint64_t seed = 99);

}  // namespace subspar
