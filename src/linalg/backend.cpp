// Backend registry + runtime dispatch (see backend.hpp for the contracts).
//
// Which per-ISA TUs exist in this binary is communicated by compile
// definitions set on THIS file only (src/CMakeLists.txt): the SIMD TUs are
// compiled whenever the compiler can target them, and the CPU gate happens
// here at runtime, so one binary carries every variant and never executes
// an instruction the host lacks.
#include "linalg/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

namespace subspar {

namespace backend_detail {
// One externally visible symbol per compiled-in backend TU.
namespace scalar {
const KernelOps& ops();
}
#if defined(SUBSPAR_HAVE_AVX2_TU)
namespace avx2 {
const KernelOps& ops();
}
#endif
#if defined(SUBSPAR_HAVE_AVX512_TU)
namespace avx512 {
const KernelOps& ops();
}
#endif
#if defined(SUBSPAR_HAVE_NEON_TU)
namespace neon {
const KernelOps& ops();
}
#endif
}  // namespace backend_detail

namespace {

bool cpu_supports(BackendKind kind) {
  switch (kind) {
    case BackendKind::kScalar:
      return true;
    case BackendKind::kAvx2:
    case BackendKind::kAvx512:
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
      if (kind == BackendKind::kAvx2)
        return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
      return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case BackendKind::kNeon:
      // NEON is baseline on AArch64; the TU only exists on ARM builds.
#if defined(__aarch64__) || defined(_M_ARM64)
      return true;
#else
      return false;
#endif
  }
  return false;
}

const KernelOps* ops_for(BackendKind kind) {
  switch (kind) {
    case BackendKind::kScalar:
      return &backend_detail::scalar::ops();
#if defined(SUBSPAR_HAVE_AVX2_TU)
    case BackendKind::kAvx2:
      return &backend_detail::avx2::ops();
#endif
#if defined(SUBSPAR_HAVE_AVX512_TU)
    case BackendKind::kAvx512:
      return &backend_detail::avx512::ops();
#endif
#if defined(SUBSPAR_HAVE_NEON_TU)
    case BackendKind::kNeon:
      return &backend_detail::neon::ops();
#endif
    default:
      return nullptr;  // kind not compiled into this binary
  }
}

std::string usable_names() {
  std::string s;
  for (BackendKind kind : supported_backends()) {
    if (!s.empty()) s += ", ";
    s += backend_name(kind);
  }
  return s;
}

// Resolution order for the startup default; best first.
constexpr BackendKind kPreference[] = {BackendKind::kAvx512, BackendKind::kAvx2,
                                       BackendKind::kNeon, BackendKind::kScalar};

const KernelOps* resolve_default() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): single read at first dispatch
  const char* env = std::getenv("SUBSPAR_BACKEND");
  if (env != nullptr && *env != '\0') return ops_for(parse_backend(env));
  for (BackendKind kind : kPreference) {
    const KernelOps* ops = ops_for(kind);
    if (ops != nullptr && cpu_supports(kind)) return ops;
  }
  return &backend_detail::scalar::ops();
}

// Lazily resolved on first use. The resolution is deterministic (pure
// function of the environment and CPUID), so a benign first-use race would
// install the same pointer from every thread; release/acquire ordering
// still keeps the publication well-defined.
std::atomic<const KernelOps*> g_active{nullptr};

}  // namespace

const char* backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kScalar:
      return "scalar";
    case BackendKind::kAvx2:
      return "avx2";
    case BackendKind::kAvx512:
      return "avx512";
    case BackendKind::kNeon:
      return "neon";
  }
  return "scalar";
}

BackendKind parse_backend(const std::string& name) {
  BackendKind kind;
  if (name == "scalar") {
    kind = BackendKind::kScalar;
  } else if (name == "avx2") {
    kind = BackendKind::kAvx2;
  } else if (name == "avx512") {
    kind = BackendKind::kAvx512;
  } else if (name == "neon") {
    kind = BackendKind::kNeon;
  } else {
    throw std::invalid_argument("subspar: unknown backend \"" + name +
                                "\" (usable on this machine: " + usable_names() + ")");
  }
  if (ops_for(kind) == nullptr || !cpu_supports(kind))
    throw std::invalid_argument("subspar: backend \"" + name +
                                "\" is not usable on this machine (usable: " +
                                usable_names() + ")");
  return kind;
}

std::vector<BackendKind> compiled_backends() {
  std::vector<BackendKind> out{BackendKind::kScalar};
#if defined(SUBSPAR_HAVE_AVX2_TU)
  out.push_back(BackendKind::kAvx2);
#endif
#if defined(SUBSPAR_HAVE_AVX512_TU)
  out.push_back(BackendKind::kAvx512);
#endif
#if defined(SUBSPAR_HAVE_NEON_TU)
  out.push_back(BackendKind::kNeon);
#endif
  return out;
}

std::vector<BackendKind> supported_backends() {
  std::vector<BackendKind> out;
  for (BackendKind kind : compiled_backends())
    if (cpu_supports(kind)) out.push_back(kind);
  return out;
}

const KernelOps& kernel_ops() {
  const KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    ops = resolve_default();
    g_active.store(ops, std::memory_order_release);
  }
  return *ops;
}

BackendKind active_backend() { return kernel_ops().kind; }

void set_backend(BackendKind kind) {
  const KernelOps* ops = ops_for(kind);
  if (ops == nullptr || !cpu_supports(kind))
    throw std::invalid_argument(std::string("subspar: backend \"") + backend_name(kind) +
                                "\" is not usable on this machine (usable: " +
                                usable_names() + ")");
  g_active.store(ops, std::memory_order_release);
}

}  // namespace subspar
