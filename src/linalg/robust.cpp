#include "linalg/robust.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace subspar {
namespace {

Matrix gather_cols(const Matrix& b, const std::vector<std::size_t>& cols) {
  Matrix out(b.rows(), cols.size());
  for (std::size_t j = 0; j < cols.size(); ++j)
    for (std::size_t i = 0; i < b.rows(); ++i) out(i, j) = b(i, cols[j]);
  return out;
}

bool all_finite(const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (!std::isfinite(m(i, j))) return false;
  return true;
}

}  // namespace

bool fault_corrupt(FaultSite site, Matrix& y) {
  if (y.rows() == 0 || y.cols() == 0) return false;
  if (!fault_fire(site)) return false;
  const std::uint64_t k = fault_fired(site);
  const std::uint64_t idx =
      fault_corrupt_index(site, k, static_cast<std::uint64_t>(y.rows() * y.cols()));
  y(static_cast<std::size_t>(idx) / y.cols(), static_cast<std::size_t>(idx) % y.cols()) =
      fault_corrupt_value(k);
  return true;
}

bool fault_corrupt(FaultSite site, Vector& y) {
  if (y.size() == 0) return false;
  if (!fault_fire(site)) return false;
  const std::uint64_t k = fault_fired(site);
  const std::uint64_t idx = fault_corrupt_index(site, k, static_cast<std::uint64_t>(y.size()));
  y[static_cast<std::size_t>(idx)] = fault_corrupt_value(k);
  return true;
}

Matrix robust_pcg_block(const LinearOpMany& a, const Matrix& b, const RobustSolveOptions& opt,
                        RobustSolveReport* report, const Preconditioner* precond,
                        const Preconditioner* tighter, const DirectSolveFn& direct,
                        const LinearOpMany& a_lo) {
  RobustSolveReport rep;
  BlockIterStats stats;
  // Mixed mode swaps only attempt 0 for iterative refinement against the
  // fp32 mirror; its exit test is the fp64 true residual, so acceptance
  // below is unchanged. All restarts/fallbacks run pure fp64.
  Matrix x = a_lo ? pcg_block_refined(a, a_lo, b, opt.iter, &stats, precond)
                  : pcg_block(a, b, opt.iter, &stats, precond);
  rep.iterations = stats.iterations;
  rep.worst_residual = stats.max_relative_residual;
  const bool corrupted = fault_corrupt(FaultSite::kSolverSolve, x);
  if (stats.converged && !corrupted && all_finite(x)) {
    if (report) *report = rep;
    return x;  // bit-identical to the plain pcg_block path
  }

  // Fallback chain. From here every candidate block is verified against the
  // TRUE residual (one extra batched apply per attempt) before acceptance.
  rep.clean = false;
  if (!stats.converged) ++rep.max_iteration_hits;
  const std::size_t n = b.rows(), k = b.cols();
  const double accept_tol = opt.iter.rel_tol * opt.accept_factor;
  Matrix out(n, k);
  std::vector<std::size_t> bad;

  // Verifies candidate columns `xs` for rhs columns `cols`; accepted columns
  // are written into `out`, the rest returned for the next stage.
  const auto verify_and_keep = [&](const Matrix& xs, const std::vector<std::size_t>& cols) {
    const Matrix axs = a(xs);
    std::vector<std::size_t> still;
    for (std::size_t j = 0; j < cols.size(); ++j) {
      bool finite = true;
      for (std::size_t i = 0; i < n && finite; ++i) finite = std::isfinite(xs(i, j));
      if (!finite) {
        ++rep.nonfinite_events;
        still.push_back(cols[j]);
        continue;
      }
      double bn = 0.0, rn = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double bv = b(i, cols[j]);
        const double d = bv - axs(i, j);
        bn += bv * bv;
        rn += d * d;
      }
      const double rel = bn > 0.0 ? std::sqrt(rn / bn) : (rn > 0.0 ? 1.0 : 0.0);
      if (std::isfinite(rel) && rel <= accept_tol) {
        for (std::size_t i = 0; i < n; ++i) out(i, cols[j]) = xs(i, j);
        rep.worst_residual = std::max(rep.worst_residual, rel);
      } else {
        still.push_back(cols[j]);
      }
    }
    return still;
  };

  {
    std::vector<std::size_t> all(k);
    for (std::size_t j = 0; j < k; ++j) all[j] = j;
    rep.worst_residual = 0.0;  // re-measured from verified residuals only
    bad = verify_and_keep(x, all);
  }

  for (std::size_t attempt = 0; attempt < opt.max_restarts && !bad.empty(); ++attempt) {
    const bool use_tighter = tighter != nullptr && attempt + 1 == opt.max_restarts;
    const Matrix bsub = gather_cols(b, bad);
    BlockIterStats rstats;
    Matrix xs = pcg_block(a, bsub, opt.iter, &rstats, use_tighter ? tighter : precond);
    rep.iterations += rstats.iterations;
    ++rep.restarts;
    if (use_tighter) ++rep.tighter_restarts;
    if (!rstats.converged) ++rep.max_iteration_hits;
    (void)fault_corrupt(FaultSite::kSolverSolve, xs);
    bad = verify_and_keep(xs, bad);
  }

  if (!bad.empty() && direct) {
    const std::size_t before = bad.size();
    try {
      const Matrix bsub = gather_cols(b, bad);
      const Matrix xs = direct(bsub);
      bad = verify_and_keep(xs, bad);
    } catch (const std::exception&) {
      // A failed factorization (e.g. loss of positive definiteness) leaves
      // the columns unrecovered; the throw below reports them.
    }
    rep.direct_columns += before - bad.size();
  }

  if (report) *report = rep;  // populated even on the throw path below
  if (!bad.empty()) {
    char msg[192];
    std::snprintf(msg, sizeof msg,
                  "robust_pcg_block: %zu of %zu column(s) unrecovered after %zu restart(s) "
                  "and direct fallback (accept tol %.3e)",
                  bad.size(), k, rep.restarts, accept_tol);
    throw SolverConvergenceError(msg);
  }
  return out;
}

}  // namespace subspar
