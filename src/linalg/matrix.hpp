// Dense row-major matrix with the BLAS-2/3 kernels used throughout subspar.
// All factorizations live in their own headers (cholesky.hpp, qr.hpp,
// svd.hpp, eig_sym.hpp, lu.hpp); this type is deliberately plain data plus
// arithmetic.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector.hpp"
#include "util/check.hpp"

namespace subspar {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double operator()(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }
  double* row_ptr(std::size_t i) { return data_.data() + i * cols_; }
  const double* row_ptr(std::size_t i) const { return data_.data() + i * cols_; }

  Matrix transposed() const;

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double a);
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(double a, Matrix m) { return m *= a; }

  Vector col(std::size_t j) const;
  Vector row(std::size_t i) const;
  void set_col(std::size_t j, const Vector& v);

  /// Contiguous block copy: rows [r0, r0+nr) x cols [c0, c0+nc).
  Matrix block(std::size_t r0, std::size_t c0, std::size_t nr, std::size_t nc) const;
  void set_block(std::size_t r0, std::size_t c0, const Matrix& b);

  /// Horizontal concatenation [A B] (rows must match; empty operands allowed).
  static Matrix hcat(const Matrix& a, const Matrix& b);

  double frobenius_norm() const;
  double max_abs() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// y = A x
Vector matvec(const Matrix& a, const Vector& x);
/// y = A' x
Vector matvec_t(const Matrix& a, const Vector& x);

// Dense products run through a register-tiled, cache-blocked kernel
// (linalg/dense_kernels.cpp). Large outputs are partitioned into fixed
// tiles dispatched over the util/parallel pool; each tile is computed by
// exactly one task with a fixed loop order, so results are bit-identical
// for any SUBSPAR_THREADS. Prefer the *_add variants when accumulating
// (C += alpha A B) — they skip the product temporary entirely — and
// gram_tn for A'A, which computes only the upper triangle and mirrors it.

/// C = A B
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A' B
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A B'
Matrix matmul_nt(const Matrix& a, const Matrix& b);
/// C += alpha A B, in place (no temporary).
void matmul_add(Matrix& c, const Matrix& a, const Matrix& b, double alpha = 1.0);
/// C += alpha A' B, in place.
void matmul_tn_add(Matrix& c, const Matrix& a, const Matrix& b, double alpha = 1.0);
/// C += alpha A B', in place.
void matmul_nt_add(Matrix& c, const Matrix& a, const Matrix& b, double alpha = 1.0);
/// A' A: exactly symmetric (upper triangle computed, lower mirrored).
Matrix gram_tn(const Matrix& a);

// Mixed-precision GEMM (Precision::kMixed engine): operands are packed as
// fp32 strips — half the bytes streamed through the micro-kernel — while
// every accumulator stays fp64, so the result carries fp32 input rounding
// but no fp32 summation error. Deterministic for a fixed backend; products
// below the packing threshold run the fp64 path unchanged (no bandwidth to
// save in cache). Used by the iterative-refinement inner sweeps
// (pcg_block_refined), which correct with fp64 true residuals.
/// C = A B, fp32-packed operands with fp64 accumulation.
Matrix matmul_mixed(const Matrix& a, const Matrix& b);
/// C = A' B, fp32-packed operands with fp64 accumulation.
Matrix matmul_tn_mixed(const Matrix& a, const Matrix& b);
/// C += alpha A B in place, fp32-packed operands with fp64 accumulation.
void matmul_add_mixed(Matrix& c, const Matrix& a, const Matrix& b, double alpha = 1.0);

}  // namespace subspar
