// Dense Cholesky factorization A = L L' for symmetric positive definite A.
// Used for reference solves in tests and as the exact counterpart of the
// incomplete-Cholesky preconditioner of §2.2.2.
#pragma once

#include "linalg/matrix.hpp"

namespace subspar {

class Cholesky {
 public:
  /// Factors the SPD matrix `a`. Throws std::invalid_argument if a pivot is
  /// not strictly positive (matrix not positive definite to working
  /// precision).
  explicit Cholesky(const Matrix& a);

  const Matrix& lower() const { return l_; }
  Vector solve(const Vector& b) const;
  Matrix solve(const Matrix& b) const;
  /// log(det A) = 2 sum log diag(L); cheap conditioning diagnostic.
  double log_det() const;

 private:
  Matrix l_;
};

}  // namespace subspar
