// Incomplete Cholesky IC(0) preconditioner (§2.2.2, "ICCG").
//
// The paper's first attempt at preconditioning the finite-difference
// Laplacian: Cholesky restricted to the sparsity pattern of A. Kept here
// both as a baseline row of the Table 2.1 study and as a generally useful
// sparse preconditioner.
#pragma once

#include "linalg/sparse.hpp"

namespace subspar {

/// Returns the lower-triangular IC(0) factor La of an SPD CSR matrix, with
/// nonzeros only where the lower triangle of A has them (no fill-in).
/// Diagonal breakdowns (non-positive pivots) are repaired by the standard
/// shift-to-positive fallback so the factor is always usable as a
/// preconditioner.
SparseMatrix ic0(const SparseMatrix& a);

/// Applies (La La')^{-1} via forward and backward substitution.
Vector ic0_solve(const SparseMatrix& la, const Vector& b);

}  // namespace subspar
