// Incomplete Cholesky IC(0) preconditioner (§2.2.2, "ICCG").
//
// The paper's first attempt at preconditioning the finite-difference
// Laplacian: Cholesky restricted to the sparsity pattern of A. Kept here
// both as a baseline row of the Table 2.1 study and as a generally useful
// sparse preconditioner.
//
// The batched engine entry points are Ic0Factor (the factor plus its
// level-set schedule: rows grouped so that every row in a level depends
// only on rows of earlier levels, for both the forward L solve and the
// backward L' solve) and ic0_solve_many, which sweeps k right-hand sides
// through each level with the rows of a level fanned out across the
// util/parallel pool. Ic0Preconditioner packages factor + optional
// symmetric reordering (RCM) behind the Preconditioner interface.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/iterative.hpp"
#include "linalg/sparse.hpp"

namespace subspar {

/// Returns the lower-triangular IC(0) factor La of an SPD CSR matrix, with
/// nonzeros only where the lower triangle of A has them (no fill-in).
/// Diagonal breakdowns (non-positive pivots) are repaired by the standard
/// shift-to-positive fallback so the factor is always usable as a
/// preconditioner.
SparseMatrix ic0(const SparseMatrix& a);

/// Applies (La La')^{-1} via forward and backward substitution (serial
/// single-vector reference; the engine path is ic0_solve_many below).
Vector ic0_solve(const SparseMatrix& la, const Vector& b);

/// An IC(0) factor prepared for parallel triangular solves: the factor L,
/// its transpose L' (CSR rows of L' = columns of L, for a gather-based
/// backward sweep), reciprocal diagonal, and the level-set schedules.
/// Level sets are stored CSR-style: rows of forward level l are
/// fwd_rows[fwd_ptr[l] .. fwd_ptr[l+1]), ascending within each level. All
/// rows of one level are mutually independent, so a level is one
/// parallel_for with deterministic per-row arithmetic — bit-identical for
/// any SUBSPAR_THREADS.
struct Ic0Factor {
  SparseMatrix l;                          ///< lower-triangular factor
  SparseMatrix lt;                         ///< L' (upper-triangular CSR)
  std::vector<double> inv_diag;            ///< 1 / L(i,i)
  std::vector<std::size_t> fwd_ptr, fwd_rows;  ///< schedule for L y = b
  std::vector<std::size_t> bwd_ptr, bwd_rows;  ///< schedule for L' x = y

  std::size_t rows() const { return l.rows(); }
  std::size_t forward_levels() const { return fwd_ptr.empty() ? 0 : fwd_ptr.size() - 1; }
  std::size_t backward_levels() const { return bwd_ptr.empty() ? 0 : bwd_ptr.size() - 1; }
};

/// Factors `a` (IC(0), as ic0()) and builds the level-set schedule.
Ic0Factor ic0_factor(const SparseMatrix& a);

/// X = (La La')^{-1} B for k right-hand-side columns at once:
/// level-scheduled forward/backward substitution, each level's rows run in
/// parallel, the k columns of one row swept contiguously. Column j is
/// bit-identical to ic0_solve_many of that column alone, for any thread
/// count.
Matrix ic0_solve_many(const Ic0Factor& f, const Matrix& b);

/// Single-vector wrapper over the level-scheduled path (1-column
/// ic0_solve_many).
Vector ic0_solve(const Ic0Factor& f, const Vector& b);

/// IC(0) behind the blockwise Preconditioner interface, optionally on a
/// symmetrically permuted matrix: with a permutation p (typically
/// rcm_ordering(a)), the factor is built from P A P' and applied as
/// z = P' (L L')^{-1} P r, which is again symmetric positive definite.
/// RCM shrinks the factor's bandwidth (cache locality) and widens its
/// level sets (parallelism).
class Ic0Preconditioner final : public Preconditioner {
 public:
  /// Factors `a` directly (empty perm) or P A P' (perm = p, a permutation
  /// of [0, a.rows())).
  explicit Ic0Preconditioner(const SparseMatrix& a, std::vector<std::size_t> perm = {});

  Matrix apply_many(const Matrix& r) const override;

  const Ic0Factor& factor() const { return factor_; }
  const std::vector<std::size_t>& permutation() const { return perm_; }

 private:
  std::vector<std::size_t> perm_;  // empty = natural ordering
  Ic0Factor factor_;
};

}  // namespace subspar
