// Singular value decomposition via one-sided Jacobi.
//
// The SVD is the workhorse of both sparsifiers: the wavelet basis splits a
// square's voltage space with the SVD of its moment matrix (eq. 3.15), and
// the low-rank method builds row bases from SVDs of sampled response
// matrices (eq. 4.19) and recombines child bases in the fine-to-coarse sweep
// (eq. 4.27). Every such matrix is small (tens on a side), so the very
// accurate O(n^3)-per-sweep one-sided Jacobi iteration is the right tool.
#pragma once

#include "linalg/matrix.hpp"

namespace subspar {

struct Svd {
  Matrix u;          ///< m x k with orthonormal columns (k = min(m, n))
  Vector sigma;      ///< k singular values, descending
  Matrix v;          ///< n x k with orthonormal columns; A ~= U diag(sigma) V'
};

/// Thin SVD of an arbitrary m x n matrix.
Svd svd(const Matrix& a);

/// Number of singular values >= rel_tol * sigma_max (0 for an all-zero
/// matrix). The paper's "large singular value" criterion uses rel_tol = 1e-2
/// with an additional cap (§4.6); the cap is applied by callers.
std::size_t numerical_rank(const Vector& sigma, double rel_tol);

}  // namespace subspar
