// Singular value decomposition via one-sided Jacobi, QR-preconditioned for
// tall matrices.
//
// The SVD is the workhorse of both sparsifiers: the wavelet basis splits a
// square's voltage space with the SVD of its moment matrix (eq. 3.15), and
// the low-rank method builds row bases from SVDs of sampled response
// matrices (eq. 4.19) and recombines child bases in the fine-to-coarse sweep
// (eq. 4.27). The short side is always small (tens of columns), so the very
// accurate one-sided Jacobi iteration is the right tool; for the m >> n
// sample matrices, a Householder QR first reduces A to its n x n R factor so
// each Jacobi rotation costs O(n) instead of O(m).
#pragma once

#include "linalg/matrix.hpp"

namespace subspar {

struct Svd {
  Matrix u;          ///< m x k with orthonormal columns (k = min(m, n))
  Vector sigma;      ///< k singular values, descending
  Matrix v;          ///< n x k with orthonormal columns; A ~= U diag(sigma) V'
};

/// Thin SVD of an arbitrary m x n matrix. Routes tall (m >= 2n) inputs
/// through the QR-preconditioned path; same accuracy as `svd_jacobi`.
Svd svd(const Matrix& a);

/// Plain one-sided Jacobi without the QR preconditioning step — the
/// reference implementation `svd` is validated (and benchmarked) against.
Svd svd_jacobi(const Matrix& a);

/// Number of singular values >= rel_tol * sigma_max (0 for an all-zero
/// matrix). The paper's "large singular value" criterion uses rel_tol = 1e-2
/// with an additional cap (§4.6); the cap is applied by callers.
std::size_t numerical_rank(const Vector& sigma, double rel_tol);

}  // namespace subspar
