// Dense LU factorization with partial pivoting, for general (non-symmetric)
// reference solves in tests and small auxiliary systems.
#pragma once

#include "linalg/matrix.hpp"

namespace subspar {

class LU {
 public:
  explicit LU(const Matrix& a);

  Vector solve(const Vector& b) const;
  double det() const;
  bool singular() const { return singular_; }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int sign_ = 1;
  bool singular_ = false;
};

}  // namespace subspar
