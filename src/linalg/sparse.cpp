#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/backend.hpp"
#include "linalg/reorder.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace subspar {
namespace {
/// Rows per SpMM task: fine-grained enough to balance irregular rows, and a
/// fixed constant so the row -> task mapping (and hence every accumulation)
/// is independent of the pool size.
constexpr std::size_t kSpmmRowChunk = 64;
/// Output columns per transpose-SpMM task (each task owns a column slice).
constexpr std::size_t kSpmmColChunk = 8;
}  // namespace

void SparseBuilder::add(std::size_t r, std::size_t c, double v) {
  SUBSPAR_REQUIRE(r < rows_ && c < cols_);
  r_.push_back(r);
  c_.push_back(c);
  v_.push_back(v);
}

SparseMatrix::SparseMatrix(const SparseBuilder& b, double drop_tol)
    : rows_(b.rows_), cols_(b.cols_) {
  // Counting sort by row, then sort each row's segment by column and merge
  // duplicates.
  std::vector<std::size_t> order(b.r_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return b.r_[x] != b.r_[y] ? b.r_[x] < b.r_[y] : b.c_[x] < b.c_[y];
  });
  rowptr_.assign(rows_ + 1, 0);
  for (std::size_t t = 0; t < order.size(); ++t) {
    const std::size_t k = order[t];
    const std::size_t r = b.r_[k], c = b.c_[k];
    double v = b.v_[k];
    while (t + 1 < order.size() && b.r_[order[t + 1]] == r && b.c_[order[t + 1]] == c) {
      ++t;
      v += b.v_[order[t]];
    }
    if (std::abs(v) <= drop_tol) continue;
    colidx_.push_back(c);
    val_.push_back(v);
    ++rowptr_[r + 1];
  }
  for (std::size_t i = 0; i < rows_; ++i) rowptr_[i + 1] += rowptr_[i];
}

SparseMatrix SparseMatrix::from_dense(const Matrix& a, double drop_tol) {
  SparseBuilder b(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (std::abs(a(i, j)) > drop_tol) b.add(i, j, a(i, j));
  return SparseMatrix(b);
}

double SparseMatrix::sparsity_factor() const {
  // Zero-nnz (including 0 x n / n x 0) matrices have no meaningful sparsity
  // factor; return 0 rather than dividing by zero.
  if (rows_ == 0 || cols_ == 0 || nnz() == 0) return 0.0;
  return static_cast<double>(rows_) * static_cast<double>(cols_) / static_cast<double>(nnz());
}

Vector SparseMatrix::apply(const Vector& x) const {
  SUBSPAR_REQUIRE(x.size() == cols_);
  Vector y(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t k = rowptr_[i]; k < rowptr_[i + 1]; ++k) s += val_[k] * x[colidx_[k]];
    y[i] = s;
  }
  return y;
}

Vector SparseMatrix::apply_t(const Vector& x) const {
  SUBSPAR_REQUIRE(x.size() == rows_);
  Vector y(cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t k = rowptr_[i]; k < rowptr_[i + 1]; ++k) y[colidx_[k]] += val_[k] * xi;
  }
  return y;
}

Matrix SparseMatrix::apply_many(const Matrix& x) const {
  SUBSPAR_REQUIRE(x.rows() == cols_);
  const std::size_t k = x.cols();
  Matrix y(rows_, k);
  if (k == 0 || rows_ == 0) return y;
  const KernelOps& ops = kernel_ops();
  const std::size_t chunks = (rows_ + kSpmmRowChunk - 1) / kSpmmRowChunk;
  parallel_for(chunks, [&](std::size_t t) {
    const std::size_t i0 = t * kSpmmRowChunk;
    const std::size_t i1 = std::min(rows_, i0 + kSpmmRowChunk);
    for (std::size_t i = i0; i < i1; ++i) {
      double* yrow = y.row_ptr(i);
      const std::size_t e0 = rowptr_[i], e1 = rowptr_[i + 1];
      // Reduction per (row, column) in ascending entry order — under the
      // scalar backend the same operation sequence (incl. FMA contraction)
      // as apply(), so the batched result is bit-identical to k single
      // applies; SIMD backends vectorize across columns, keeping the
      // per-element entry order. The row's entries stay in L1 across the k
      // columns: one effective traversal of A feeds the whole block.
      ops.spmm_row_f64(val_.data() + e0, colidx_.data() + e0, e1 - e0, x.row_ptr(0),
                       k, yrow, k);
    }
  });
  return y;
}

Matrix SparseMatrix::apply_t_many(const Matrix& x) const {
  SUBSPAR_REQUIRE(x.rows() == rows_);
  const std::size_t k = x.cols();
  Matrix y(cols_, k);
  if (k == 0 || cols_ == 0) return y;
  const KernelOps& ops = kernel_ops();
  const std::size_t chunks = (k + kSpmmColChunk - 1) / kSpmmColChunk;
  parallel_for(chunks, [&](std::size_t t) {
    const std::size_t j0 = t * kSpmmColChunk;
    const std::size_t j1 = std::min(k, j0 + kSpmmColChunk);
    for (std::size_t i = 0; i < rows_; ++i) {
      // The scalar backend's kernel keeps the per-element zero skip that
      // mirrors apply_t()'s row skip exactly (bit-identical even through
      // signed-zero accumulation); SIMD backends add the v * 0.0 terms,
      // which can only flip a signed zero.
      const std::size_t e0 = rowptr_[i], e1 = rowptr_[i + 1];
      ops.spmm_t_row_f64(val_.data() + e0, colidx_.data() + e0, e1 - e0, x.row_ptr(i),
                         j0, j1, y.row_ptr(0), k);
    }
  });
  return y;
}

SparseMirrorF32::SparseMirrorF32(const SparseMatrix& a)
    : rows_(a.rows_), cols_(a.cols_), rowptr_(a.rowptr_) {
  SUBSPAR_REQUIRE(a.cols_ < (std::size_t{1} << 32));
  colidx_.reserve(a.colidx_.size());
  val_.reserve(a.val_.size());
  for (std::size_t c : a.colidx_) colidx_.push_back(static_cast<std::uint32_t>(c));
  for (double v : a.val_) val_.push_back(static_cast<float>(v));
}

Matrix SparseMirrorF32::apply_many(const Matrix& x) const {
  SUBSPAR_REQUIRE(x.rows() == cols_);
  const std::size_t k = x.cols();
  Matrix y(rows_, k);
  if (k == 0 || rows_ == 0) return y;
  const KernelOps& ops = kernel_ops();
  const std::size_t chunks = (rows_ + kSpmmRowChunk - 1) / kSpmmRowChunk;
  parallel_for(chunks, [&](std::size_t t) {
    const std::size_t i0 = t * kSpmmRowChunk;
    const std::size_t i1 = std::min(rows_, i0 + kSpmmRowChunk);
    for (std::size_t i = i0; i < i1; ++i) {
      const std::size_t e0 = rowptr_[i], e1 = rowptr_[i + 1];
      ops.spmm_row_f32(val_.data() + e0, colidx_.data() + e0, e1 - e0, x.row_ptr(0), k,
                       y.row_ptr(i), k);
    }
  });
  return y;
}

SparseMatrix SparseMatrix::permuted(const std::vector<std::size_t>& p) const {
  SUBSPAR_REQUIRE(rows_ == cols_ && p.size() == rows_);
  const std::vector<std::size_t> inv = invert_permutation(p);  // validates p
  // Row i of the result is row p[i] of *this with columns relabelled by
  // inv; the CSR constructor re-sorts each row, keeping the sorted-column
  // invariant.
  SparseBuilder b(rows_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t e = rowptr_[p[i]]; e < rowptr_[p[i] + 1]; ++e)
      b.add(i, inv[colidx_[e]], val_[e]);
  return SparseMatrix(b);
}

Matrix SparseMatrix::to_dense() const {
  Matrix a(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = rowptr_[i]; k < rowptr_[i + 1]; ++k) a(i, colidx_[k]) = val_[k];
  return a;
}

SparseMatrix SparseMatrix::transposed() const {
  SparseBuilder b(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = rowptr_[i]; k < rowptr_[i + 1]; ++k) b.add(colidx_[k], i, val_[k]);
  return SparseMatrix(b);
}

std::vector<std::pair<std::size_t, std::size_t>> SparseMatrix::coordinates() const {
  std::vector<std::pair<std::size_t, std::size_t>> coords;
  coords.reserve(nnz());
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = rowptr_[i]; k < rowptr_[i + 1]; ++k) coords.emplace_back(i, colidx_[k]);
  return coords;
}

}  // namespace subspar
