#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace subspar {

void SparseBuilder::add(std::size_t r, std::size_t c, double v) {
  SUBSPAR_REQUIRE(r < rows_ && c < cols_);
  r_.push_back(r);
  c_.push_back(c);
  v_.push_back(v);
}

SparseMatrix::SparseMatrix(const SparseBuilder& b, double drop_tol)
    : rows_(b.rows_), cols_(b.cols_) {
  // Counting sort by row, then sort each row's segment by column and merge
  // duplicates.
  std::vector<std::size_t> order(b.r_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return b.r_[x] != b.r_[y] ? b.r_[x] < b.r_[y] : b.c_[x] < b.c_[y];
  });
  rowptr_.assign(rows_ + 1, 0);
  for (std::size_t t = 0; t < order.size(); ++t) {
    const std::size_t k = order[t];
    const std::size_t r = b.r_[k], c = b.c_[k];
    double v = b.v_[k];
    while (t + 1 < order.size() && b.r_[order[t + 1]] == r && b.c_[order[t + 1]] == c) {
      ++t;
      v += b.v_[order[t]];
    }
    if (std::abs(v) <= drop_tol) continue;
    colidx_.push_back(c);
    val_.push_back(v);
    ++rowptr_[r + 1];
  }
  for (std::size_t i = 0; i < rows_; ++i) rowptr_[i + 1] += rowptr_[i];
}

SparseMatrix SparseMatrix::from_dense(const Matrix& a, double drop_tol) {
  SparseBuilder b(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (std::abs(a(i, j)) > drop_tol) b.add(i, j, a(i, j));
  return SparseMatrix(b);
}

double SparseMatrix::sparsity_factor() const {
  if (nnz() == 0) return 0.0;
  return static_cast<double>(rows_) * static_cast<double>(cols_) / static_cast<double>(nnz());
}

Vector SparseMatrix::apply(const Vector& x) const {
  SUBSPAR_REQUIRE(x.size() == cols_);
  Vector y(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t k = rowptr_[i]; k < rowptr_[i + 1]; ++k) s += val_[k] * x[colidx_[k]];
    y[i] = s;
  }
  return y;
}

Vector SparseMatrix::apply_t(const Vector& x) const {
  SUBSPAR_REQUIRE(x.size() == rows_);
  Vector y(cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t k = rowptr_[i]; k < rowptr_[i + 1]; ++k) y[colidx_[k]] += val_[k] * xi;
  }
  return y;
}

Matrix SparseMatrix::to_dense() const {
  Matrix a(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = rowptr_[i]; k < rowptr_[i + 1]; ++k) a(i, colidx_[k]) = val_[k];
  return a;
}

SparseMatrix SparseMatrix::transposed() const {
  SparseBuilder b(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = rowptr_[i]; k < rowptr_[i + 1]; ++k) b.add(colidx_[k], i, val_[k]);
  return SparseMatrix(b);
}

std::vector<std::pair<std::size_t, std::size_t>> SparseMatrix::coordinates() const {
  std::vector<std::pair<std::size_t, std::size_t>> coords;
  coords.reserve(nnz());
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = rowptr_[i]; k < rowptr_[i + 1]; ++k) coords.emplace_back(i, colidx_[k]);
  return coords;
}

}  // namespace subspar
