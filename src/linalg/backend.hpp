// Runtime-dispatched SIMD kernel backend (ROADMAP item 4).
//
// The hot kernels — the packed GEMM micro-kernel, the multi-RHS CSR
// SpMM row kernels, and the DCT twiddle/dense loops — are compiled several
// times into per-ISA translation units (scalar baseline, AVX2+FMA, AVX-512,
// NEON) and selected ONCE per process through a table of function pointers.
// One binary therefore serves every ISA: the default build carries all
// variants the compiler can target and CPUID picks the best supported one
// at first use, overridable with SUBSPAR_BACKEND=scalar|avx2|avx512|neon.
//
// Contracts:
//  - kScalar is the bit-exact deterministic reference: its kernels are the
//    pre-backend code compiled with the build's baseline flags, so forcing
//    SUBSPAR_BACKEND=scalar reproduces the golden pins bit for bit.
//  - SIMD backends keep the same per-output accumulation ORDER (ascending
//    inner index per output element) but may contract multiply-adds into
//    FMAs and vectorize across independent outputs, so they agree with
//    scalar to solver tolerance (tests pin a few-ULP bound), not bitwise.
//  - The backend choice is NEVER digested into cache tags or ModelCache
//    keys: all backends implement the same operator to solver tolerance, so
//    a model extracted under one backend is valid under every other.
//  - Precision::kMixed (fp32-storage / fp64-accumulate kernels plus the
//    iterative-refinement outer loop in pcg_block_refined) IS digested into
//    cache_tag: mixed results are legitimately different bits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace subspar {

/// Kernel arithmetic mode carried by SolverConfig and the solver options.
/// kFp64 is the default full-precision engine; kMixed stores operators in
/// fp32 (half the bytes moved on the bandwidth-bound paths) while keeping
/// every accumulator in fp64 and correcting with fp64 true residuals.
enum class Precision { kFp64, kMixed };

enum class BackendKind { kScalar, kAvx2, kAvx512, kNeon };

/// Stable lower-case name ("scalar", "avx2", "avx512", "neon") — the
/// SUBSPAR_BACKEND vocabulary and the ExtractionReport::backend value.
const char* backend_name(BackendKind kind);

/// Parses a SUBSPAR_BACKEND value. Throws std::invalid_argument for unknown
/// names and for backends that are compiled in but not supported by this
/// CPU (the message lists the usable names).
BackendKind parse_backend(const std::string& name);

/// The per-ISA kernel table. Every member is a plain function pointer so a
/// backend is one table, dispatch is one indirect call per kernel strip/row
/// (amortized over the strip's work), and tests can swap backends at will.
struct KernelOps {
  BackendKind kind = BackendKind::kScalar;

  /// acc[4 x 16] = (packed MR-row A strip) x (packed NR-col B strip) over
  /// depth k; strips laid out as dense_kernels.cpp packs them.
  void (*gemm_f64)(const double* ap, const double* bp, std::size_t k, double* acc);
  /// Mixed GEMM micro-kernel: fp32-packed strips, fp64 accumulators.
  void (*gemm_f32)(const float* ap, const float* bp, std::size_t k, double* acc);

  /// One CSR output row of Y = A X: yrow[j] = sum_e vals[e] * x(cols[e], j)
  /// for all k right-hand-side columns (x row-major with leading dim ldx).
  void (*spmm_row_f64)(const double* vals, const std::size_t* cols, std::size_t nnz,
                       const double* x, std::size_t ldx, double* yrow, std::size_t k);
  /// Mixed SpMM row: fp32 values + 32-bit column indices (half the bytes
  /// per traversed entry), fp64 right-hand sides and accumulators.
  void (*spmm_row_f32)(const float* vals, const std::uint32_t* cols, std::size_t nnz,
                       const double* x, std::size_t ldx, double* yrow, std::size_t k);
  /// Transpose-apply scatter of one CSR row: y(cols[e], j) += vals[e] *
  /// xrow[j] for j in [j0, j1) (y row-major with leading dim ldy).
  void (*spmm_t_row_f64)(const double* vals, const std::size_t* cols, std::size_t nnz,
                         const double* xrow, std::size_t j0, std::size_t j1, double* y,
                         std::size_t ldy);

  /// Contiguous dot products (the dense-table DCT path).
  double (*dot_f64)(const double* a, const double* b, std::size_t n);
  double (*dot_f32)(const float* a, const double* b, std::size_t n);

  /// DCT-II post-twiddle: x[0] = re(v[0]) * s0, x[k] = (tc[k] re(v[k]) -
  /// ts[k] im(v[k])) * sk for k in [1, n). `v` is n interleaved (re, im)
  /// pairs (std::complex<double> layout).
  void (*dct2_post_f64)(const double* tc, const double* ts, const double* v, double* x,
                        std::size_t n, double s0, double sk);
  /// DCT-III pre-twiddle: v[0] = (x[0]/s0, 0) and for k in [1, n) with
  /// c = tc[k], s = -ts[k], ck = x[k]/sk, cnk = x[n-k]/sk:
  /// v[k] = (c ck + s cnk, s ck - c cnk).
  void (*dct3_pre_f64)(const double* tc, const double* ts, const double* x, double* v,
                       std::size_t n, double s0, double sk);
  /// Mixed twiddles: fp32 tables, fp64 data and arithmetic.
  void (*dct2_post_f32)(const float* tc, const float* ts, const double* v, double* x,
                        std::size_t n, double s0, double sk);
  void (*dct3_pre_f32)(const float* tc, const float* ts, const double* x, double* v,
                       std::size_t n, double s0, double sk);
};

/// Backends compiled into this binary (always contains kScalar; the SIMD
/// variants depend on the target architecture and compiler).
std::vector<BackendKind> compiled_backends();

/// Compiled backends this CPU can execute (CPUID-gated subset of
/// compiled_backends(); always contains kScalar).
std::vector<BackendKind> supported_backends();

/// The active backend. Resolved on first use: SUBSPAR_BACKEND when set and
/// non-empty (invalid values throw std::invalid_argument), otherwise the
/// best supported backend in the order avx512 > avx2 > neon > scalar.
BackendKind active_backend();

/// Switches the active backend (tests, benches, tools). Throws
/// std::invalid_argument when `kind` is not supported on this CPU. Not
/// intended to race in-flight kernels: callers switch between solves.
void set_backend(BackendKind kind);

/// Kernel table of the active backend.
const KernelOps& kernel_ops();

}  // namespace subspar
