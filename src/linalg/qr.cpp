#include "linalg/qr.hpp"

#include <cmath>

#include "util/check.hpp"

namespace subspar {

QR::QR(const Matrix& a) : qr_(a), beta_(a.cols()) {
  const std::size_t m = a.rows(), n = a.cols();
  SUBSPAR_REQUIRE(m >= n);
  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double sigma = 0.0;
    for (std::size_t i = k; i < m; ++i) sigma += qr_(i, k) * qr_(i, k);
    const double alpha = std::sqrt(sigma);
    if (alpha == 0.0) {
      beta_[k] = 0.0;  // column already zero below diagonal
      continue;
    }
    const double akk = qr_(k, k);
    const double rkk = (akk >= 0.0) ? -alpha : alpha;  // sign avoids cancellation
    // v = x - rkk*e1; store v (normalized so v[k] = 1) below the diagonal.
    const double vk = akk - rkk;
    beta_[k] = -vk / rkk;  // beta = 2 / (v'v) with this normalization
    for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) /= vk;
    qr_(k, k) = rkk;
    // Apply H = I - beta v v' to the trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= beta_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

Matrix QR::apply_q(Matrix x, bool transpose) const {
  // Q = H_0 H_1 ... H_{n-1}; Q' applies them in forward order, Q in reverse.
  const std::size_t m = qr_.rows(), n = qr_.cols();
  SUBSPAR_REQUIRE(x.rows() == m);
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t k = transpose ? t : n - 1 - t;
    if (beta_[k] == 0.0) continue;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      double s = x(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * x(i, j);
      s *= beta_[k];
      x(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) x(i, j) -= s * qr_(i, k);
    }
  }
  return x;
}

Matrix QR::thin_q() const {
  const std::size_t m = qr_.rows(), n = qr_.cols();
  Matrix e(m, n);
  for (std::size_t j = 0; j < n; ++j) e(j, j) = 1.0;
  return apply_q(std::move(e), /*transpose=*/false);
}

Matrix QR::full_q() const {
  return apply_q(Matrix::identity(qr_.rows()), /*transpose=*/false);
}

Matrix QR::q_mul(Matrix x) const { return apply_q(std::move(x), /*transpose=*/false); }

Matrix QR::r() const {
  const std::size_t n = qr_.cols();
  Matrix r(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) r(i, j) = qr_(i, j);
  return r;
}

Vector QR::solve(const Vector& b) const {
  const std::size_t m = qr_.rows(), n = qr_.cols();
  SUBSPAR_REQUIRE(b.size() == m);
  Matrix bm(m, 1);
  for (std::size_t i = 0; i < m; ++i) bm(i, 0) = b[i];
  const Matrix qtb = apply_q(std::move(bm), /*transpose=*/true);
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = qtb(ii, 0);
    for (std::size_t j = ii + 1; j < n; ++j) s -= qr_(ii, j) * x[j];
    SUBSPAR_REQUIRE(qr_(ii, ii) != 0.0);
    x[ii] = s / qr_(ii, ii);
  }
  return x;
}

Matrix orthonormal_complement(const Matrix& u, std::size_t n) {
  const std::size_t r = u.cols();
  SUBSPAR_REQUIRE(u.rows() == n || r == 0);
  SUBSPAR_REQUIRE(r <= n);
  if (r == n) return Matrix(n, 0);
  if (r == 0) return Matrix::identity(n);
  // Full Q of QR(U): its first r columns span range(U), the rest span the
  // complement (U has full column rank because its columns are orthonormal).
  const Matrix q = QR(u).full_q();
  return q.block(0, r, n, n - r);
}

}  // namespace subspar
