// Krylov-subspace solvers operating on black-box operators (§2.2.2).
//
// Both substrate solvers use PCG: the finite-difference solver with the
// fast-Poisson-solver preconditioners of Table 2.1 (or incomplete Cholesky),
// the eigenfunction solver unpreconditioned. GMRES(m) is provided for
// non-symmetric experimentation.
#pragma once

#include <cstddef>
#include <functional>

#include "linalg/backend.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace subspar {

/// y = A x for a black-box linear operator.
using LinearOp = std::function<Vector(const Vector&)>;

/// Y = A X columnwise for a black-box linear operator (each column of X is
/// an independent vector; implementations may batch or thread the columns).
using LinearOpMany = std::function<Matrix(const Matrix&)>;

/// The preconditioner interface of the batched sparse engine: one object
/// per factorization/setup, applied to whole blocks of residuals at once.
/// Implementations must be symmetric positive definite as operators (PCG
/// requirement), deterministic, and bit-identical for any SUBSPAR_THREADS;
/// apply_many on a 1-column matrix is the single-vector action. Concrete
/// engines: Ic0Preconditioner (linalg/ic0.hpp, level-scheduled triangular
/// solves on an RCM-permuted factor), MultigridPreconditioner
/// (substrate/multigrid.hpp, batched V-cycles), and the fast-Poisson and
/// block-Jacobi wrappers inside the substrate solvers.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// Z = M^{-1} R columnwise for k residual columns at once.
  virtual Matrix apply_many(const Matrix& r) const = 0;

  /// Single-vector convenience wrapper over apply_many.
  Vector apply(const Vector& r) const;
};

/// Adapter for ad-hoc preconditioners (tests, out-of-tree operators): wraps
/// a columnwise callable as a Preconditioner.
class FunctionPreconditioner final : public Preconditioner {
 public:
  explicit FunctionPreconditioner(LinearOpMany fn) : fn_(std::move(fn)) {}
  Matrix apply_many(const Matrix& r) const override { return fn_(r); }

 private:
  LinearOpMany fn_;
};

struct IterStats {
  std::size_t iterations = 0;
  double relative_residual = 0.0;  ///< ||b - A x|| / ||b|| at exit
  bool converged = false;
};

struct IterOptions {
  double rel_tol = 1e-9;
  std::size_t max_iterations = 1000;
};

/// Preconditioned conjugate gradient for SPD A (and SPD preconditioner
/// M^{-1}, passed as an operator; identity if omitted). Returns the solution
/// and fills `stats`.
Vector pcg(const LinearOp& a, const Vector& b, const IterOptions& opt, IterStats* stats,
           const LinearOp& precond = nullptr);

struct BlockIterStats {
  std::size_t iterations = 0;          ///< block iterations (shared by all columns)
  double max_relative_residual = 0.0;  ///< worst column at exit
  bool converged = false;              ///< every column converged
};

/// Blocked PCG for SPD A with k right-hand sides (the columns of b), sharing
/// one block-Krylov space across the columns (O'Leary): each iteration runs
/// ONE batched operator application for all k columns, and the block search
/// directions deflate the extremal spectrum, so the iteration count drops
/// well below the single-vector pcg()'s. Columns converge to the same
/// per-column tolerance as pcg(). Near-dependence inside the block (e.g. a
/// converged column) is handled by a spectral pseudo-inverse of the small
/// k x k Gram systems, so the method never breaks down. Zero columns of b
/// return zero columns. Deterministic for any SUBSPAR_THREADS.
/// Preconditioning goes through the blockwise Preconditioner interface
/// (nullptr = identity); wrap ad-hoc callables in FunctionPreconditioner.
/// `precision` selects the GEMM engine for the block-Krylov dense algebra
/// (Gram products and direction updates): Precision::kMixed uses the
/// fp32-packed / fp64-accumulate kernels — used by the refinement inner
/// sweeps, where the fp64 outer correction absorbs the fp32 input rounding.
Matrix pcg_block(const LinearOpMany& a, const Matrix& b, const IterOptions& opt,
                 BlockIterStats* stats, const Preconditioner* precond = nullptr,
                 Precision precision = Precision::kFp64);

/// Mixed-precision iterative refinement around pcg_block (§kMixed engine):
/// inner block-PCG sweeps solve against the LOW-precision operator `a_lo`
/// (e.g. SparseMirrorF32::apply_many or an fp32-table DCT operator) with a
/// loose inner tolerance and Precision::kMixed dense algebra; each outer
/// round then computes the TRUE fp64 residual with `a_hi` and re-solves for
/// the correction, until every column meets opt.rel_tol against the fp64
/// operator — the returned solution satisfies the SAME residual bound as a
/// pure-fp64 pcg_block run. Returns converged=false when the refinement
/// stalls at the fp32 representation floor before reaching rel_tol (callers
/// like robust_pcg_block then fall back to the fp64 path). `stats` reports
/// summed inner iterations and the final fp64 residual.
Matrix pcg_block_refined(const LinearOpMany& a_hi, const LinearOpMany& a_lo,
                         const Matrix& b, const IterOptions& opt, BlockIterStats* stats,
                         const Preconditioner* precond = nullptr);

/// Restarted GMRES(m).
Vector gmres(const LinearOp& a, const Vector& b, std::size_t restart, const IterOptions& opt,
             IterStats* stats);

}  // namespace subspar
