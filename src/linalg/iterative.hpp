// Krylov-subspace solvers operating on black-box operators (§2.2.2).
//
// Both substrate solvers use PCG: the finite-difference solver with the
// fast-Poisson-solver preconditioners of Table 2.1 (or incomplete Cholesky),
// the eigenfunction solver unpreconditioned. GMRES(m) is provided for
// non-symmetric experimentation.
#pragma once

#include <cstddef>
#include <functional>

#include "linalg/vector.hpp"

namespace subspar {

/// y = A x for a black-box linear operator.
using LinearOp = std::function<Vector(const Vector&)>;

struct IterStats {
  std::size_t iterations = 0;
  double relative_residual = 0.0;  ///< ||b - A x|| / ||b|| at exit
  bool converged = false;
};

struct IterOptions {
  double rel_tol = 1e-9;
  std::size_t max_iterations = 1000;
};

/// Preconditioned conjugate gradient for SPD A (and SPD preconditioner
/// M^{-1}, passed as an operator; identity if omitted). Returns the solution
/// and fills `stats`.
Vector pcg(const LinearOp& a, const Vector& b, const IterOptions& opt, IterStats* stats,
           const LinearOp& precond = nullptr);

/// Restarted GMRES(m).
Vector gmres(const LinearOp& a, const Vector& b, std::size_t restart, const IterOptions& opt,
             IterStats* stats);

}  // namespace subspar
