// Scalar reference backend: the pre-backend kernel loops compiled at the
// build's baseline flags — the bit-exact deterministic path behind the
// golden pins and SUBSPAR_BACKEND=scalar.
#define SUBSPAR_BK_NS scalar
#define SUBSPAR_BK_KIND BackendKind::kScalar
#define SUBSPAR_BK_SCALAR 1
#include "linalg/backend_kernels.inl"
