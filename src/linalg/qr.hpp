// Householder QR factorization. Besides least-squares solves, QR supplies
// `orthonormal_complement`, which both sparsifiers use to turn a partial
// orthonormal basis V_s into the full split (V_s | W_s) of a square's
// voltage space (eq. 3.14 / §4.3.1).
#pragma once

#include "linalg/matrix.hpp"

namespace subspar {

class QR {
 public:
  /// Factors an m x n matrix with m >= n.
  explicit QR(const Matrix& a);

  /// Thin Q: m x n with orthonormal columns.
  Matrix thin_q() const;
  /// Full Q: m x m orthogonal.
  Matrix full_q() const;
  /// Upper-triangular R (n x n).
  Matrix r() const;
  /// Q X for an m x p matrix X, applied from the Householder factors
  /// without ever forming Q (O(m n p) instead of the O(m^2 p) a formed
  /// full Q would cost). Used by the QR-preconditioned SVD.
  Matrix q_mul(Matrix x) const;
  /// Least-squares solve min ||A x - b||.
  Vector solve(const Vector& b) const;

 private:
  Matrix qr_;      // packed Householder vectors below the diagonal, R above
  Vector beta_;    // Householder scalars
  Matrix apply_q(Matrix x, bool transpose) const;
};

/// Given U (n x r) with orthonormal columns (r <= n), returns an
/// n x (n - r) matrix with orthonormal columns spanning the orthogonal
/// complement of range(U), so that [U W] is orthogonal.
Matrix orthonormal_complement(const Matrix& u, std::size_t n);

}  // namespace subspar
