// Fault-tolerant wrapper around the blocked PCG engine.
//
// pcg_block reports non-convergence through BlockIterStats, but until this
// layer nothing consumed it: the solvers asserted and died. robust_pcg_block
// turns the flag (plus NaN/Inf garbage and injected faults) into a graceful
// degradation chain:
//
//   attempt 0   pcg_block as before — on success the result is returned
//               bit-identical, with zero extra operator applies;
//   verify      per-column TRUE residuals via one extra batched apply, so a
//               corrupted recurrence cannot silently accept garbage (a
//               corrupted verify apply can only cause a spurious retry);
//   restarts    up to max_restarts fresh pcg_block runs over the still-bad
//               columns, the last one with the tighter preconditioner when
//               the caller provides one (e.g. FdSolver swaps its fast-Poisson
//               preconditioner for IC(0));
//   direct      a dense Cholesky/LU direct solve of the remaining columns
//               (caller-provided, typically size-gated), verified like any
//               other attempt;
//   failure     SolverConvergenceError naming the columns and residuals —
//               the typed error the Extractor maps to
//               ErrorCode::kSolverNonConvergence.
//
// Everything is deterministic: the chain's control flow depends only on the
// numerical results (and the seeded fault schedule of util/fault.hpp).
#pragma once

#include <cstddef>
#include <stdexcept>

#include "linalg/iterative.hpp"
#include "util/fault.hpp"

namespace subspar {

/// Thrown when every stage of the fallback chain failed for some column.
class SolverConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct RobustSolveOptions {
  IterOptions iter;
  /// Fresh iterative re-runs after the first attempt (the last one uses the
  /// tighter preconditioner when available).
  std::size_t max_restarts = 2;
  /// A recovered column is accepted when its verified TRUE relative residual
  /// is within accept_factor * iter.rel_tol (the recurrence residual that
  /// drives pcg_block's own convergence test is slightly optimistic).
  double accept_factor = 10.0;
};

/// What the chain did — callers fold this into SolverDiagnostics.
struct RobustSolveReport {
  std::size_t iterations = 0;         ///< block iterations, summed over attempts
  std::size_t restarts = 0;           ///< iterative re-runs taken
  std::size_t tighter_restarts = 0;   ///< restarts that used the tighter preconditioner
  std::size_t direct_columns = 0;     ///< columns recovered by the direct fallback
  std::size_t nonfinite_events = 0;   ///< non-finite candidate columns detected
  std::size_t max_iteration_hits = 0; ///< attempts that exhausted max_iterations
  double worst_residual = 0.0;        ///< worst verified residual among accepted columns
  bool clean = true;                  ///< attempt 0 succeeded; no fallback machinery ran
};

/// Dense direct solve of the still-bad right-hand-side columns.
using DirectSolveFn = std::function<Matrix(const Matrix& b)>;

/// Runs the chain described above. The happy path returns pcg_block's result
/// bit-identical. Throws SolverConvergenceError when columns remain
/// unrecovered after the whole chain.
///
/// `a_lo` (optional) is a LOW-precision mirror of `a` (fp32 storage — e.g.
/// SparseMirrorF32 or an fp32-table DCT operator): when provided, attempt 0
/// runs mixed-precision iterative refinement (pcg_block_refined) instead of
/// plain pcg_block — the fp64 true-residual correction gives the same
/// residual bound — and every restart and fallback stays pure fp64, so the
/// recovery chain is never weaker than the fp64 path.
Matrix robust_pcg_block(const LinearOpMany& a, const Matrix& b, const RobustSolveOptions& opt,
                        RobustSolveReport* report, const Preconditioner* precond = nullptr,
                        const Preconditioner* tighter = nullptr,
                        const DirectSolveFn& direct = nullptr,
                        const LinearOpMany& a_lo = nullptr);

/// Applies the seeded fault schedule to a result block: when `site` fires,
/// one deterministic entry of `y` is overwritten with a deterministic
/// garbage value (alternating NaN / huge). Returns whether a fault fired.
/// A no-op (bit-identical `y`) when the harness is disarmed.
bool fault_corrupt(FaultSite site, Matrix& y);
/// Single-vector overload.
bool fault_corrupt(FaultSite site, Vector& y);

}  // namespace subspar
