#include "linalg/ic0.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace subspar {

SparseMatrix ic0(const SparseMatrix& a) {
  SUBSPAR_REQUIRE(a.rows() == a.cols());
  const std::size_t n = a.rows();
  // Row-wise working storage for L: sorted (col, val) pairs, cols <= row.
  std::vector<std::vector<std::pair<std::size_t, double>>> l(n);

  for (std::size_t i = 0; i < n; ++i) {
    double diag = 0.0;
    for (std::size_t k = a.row_begin(i); k < a.row_end(i); ++k) {
      const std::size_t j = a.col_index(k);
      if (j > i) continue;
      const double aij = a.value(k);
      if (j == i) {
        diag = aij;
        continue;
      }
      // L(i,j) = (A(i,j) - sum_{t<j} L(i,t) L(j,t)) / L(j,j), restricted to
      // the pattern (sparse dot of rows i and j of L).
      double s = aij;
      std::size_t pi = 0, pj = 0;
      const auto& ri = l[i];
      const auto& rj = l[j];
      while (pi < ri.size() && pj < rj.size()) {
        if (ri[pi].first == rj[pj].first) {
          s -= ri[pi].second * rj[pj].second;
          ++pi;
          ++pj;
        } else if (ri[pi].first < rj[pj].first) {
          ++pi;
        } else {
          ++pj;
        }
      }
      SUBSPAR_ENSURE(!rj.empty() && rj.back().first == j);  // L(j,j) stored last
      l[i].emplace_back(j, s / rj.back().second);
    }
    double s = diag;
    for (const auto& [c, v] : l[i]) s -= v * v;
    // Breakdown repair: IC(0) can produce non-positive pivots for matrices
    // that are positive definite but not M-matrices; shift keeps the factor
    // usable as a preconditioner.
    if (s <= 0.0) s = std::max(1e-12, 1e-3 * std::abs(diag));
    l[i].emplace_back(i, std::sqrt(s));
  }

  SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (const auto& [c, v] : l[i]) b.add(i, c, v);
  return SparseMatrix(b);
}

Vector ic0_solve(const SparseMatrix& la, const Vector& b) {
  const std::size_t n = la.rows();
  SUBSPAR_REQUIRE(b.size() == n && la.cols() == n);
  // Forward: L y = b (rows of L hold columns <= i, diagonal last).
  Vector y = b;
  for (std::size_t i = 0; i < n; ++i) {
    double s = y[i];
    double dii = 0.0;
    for (std::size_t k = la.row_begin(i); k < la.row_end(i); ++k) {
      const std::size_t j = la.col_index(k);
      if (j == i) {
        dii = la.value(k);
      } else {
        s -= la.value(k) * y[j];
      }
    }
    SUBSPAR_ENSURE(dii != 0.0);
    y[i] = s / dii;
  }
  // Backward: L' x = y, via column scatter from the rows of L.
  Vector x = y;
  for (std::size_t ii = n; ii-- > 0;) {
    double dii = 0.0;
    for (std::size_t k = la.row_begin(ii); k < la.row_end(ii); ++k)
      if (la.col_index(k) == ii) dii = la.value(k);
    x[ii] /= dii;
    const double xi = x[ii];
    for (std::size_t k = la.row_begin(ii); k < la.row_end(ii); ++k) {
      const std::size_t j = la.col_index(k);
      if (j != ii) x[j] -= la.value(k) * xi;
    }
  }
  return x;
}

}  // namespace subspar
