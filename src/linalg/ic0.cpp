#include "linalg/ic0.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace subspar {

SparseMatrix ic0(const SparseMatrix& a) {
  SUBSPAR_REQUIRE(a.rows() == a.cols());
  const std::size_t n = a.rows();
  // Row-wise working storage for L: sorted (col, val) pairs, cols <= row.
  std::vector<std::vector<std::pair<std::size_t, double>>> l(n);

  for (std::size_t i = 0; i < n; ++i) {
    double diag = 0.0;
    for (std::size_t k = a.row_begin(i); k < a.row_end(i); ++k) {
      const std::size_t j = a.col_index(k);
      if (j > i) continue;
      const double aij = a.value(k);
      if (j == i) {
        diag = aij;
        continue;
      }
      // L(i,j) = (A(i,j) - sum_{t<j} L(i,t) L(j,t)) / L(j,j), restricted to
      // the pattern (sparse dot of rows i and j of L).
      double s = aij;
      std::size_t pi = 0, pj = 0;
      const auto& ri = l[i];
      const auto& rj = l[j];
      while (pi < ri.size() && pj < rj.size()) {
        if (ri[pi].first == rj[pj].first) {
          s -= ri[pi].second * rj[pj].second;
          ++pi;
          ++pj;
        } else if (ri[pi].first < rj[pj].first) {
          ++pi;
        } else {
          ++pj;
        }
      }
      SUBSPAR_ENSURE(!rj.empty() && rj.back().first == j);  // L(j,j) stored last
      l[i].emplace_back(j, s / rj.back().second);
    }
    double s = diag;
    for (const auto& [c, v] : l[i]) s -= v * v;
    // Breakdown repair: IC(0) can produce non-positive pivots for matrices
    // that are positive definite but not M-matrices; shift keeps the factor
    // usable as a preconditioner.
    if (s <= 0.0) s = std::max(1e-12, 1e-3 * std::abs(diag));
    l[i].emplace_back(i, std::sqrt(s));
  }

  SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (const auto& [c, v] : l[i]) b.add(i, c, v);
  return SparseMatrix(b);
}

Vector ic0_solve(const SparseMatrix& la, const Vector& b) {
  const std::size_t n = la.rows();
  SUBSPAR_REQUIRE(b.size() == n && la.cols() == n);
  // Forward: L y = b (rows of L hold columns <= i, diagonal last).
  Vector y = b;
  for (std::size_t i = 0; i < n; ++i) {
    double s = y[i];
    double dii = 0.0;
    for (std::size_t k = la.row_begin(i); k < la.row_end(i); ++k) {
      const std::size_t j = la.col_index(k);
      if (j == i) {
        dii = la.value(k);
      } else {
        s -= la.value(k) * y[j];
      }
    }
    SUBSPAR_ENSURE(dii != 0.0);
    y[i] = s / dii;
  }
  // Backward: L' x = y, via column scatter from the rows of L.
  Vector x = y;
  for (std::size_t ii = n; ii-- > 0;) {
    double dii = 0.0;
    for (std::size_t k = la.row_begin(ii); k < la.row_end(ii); ++k)
      if (la.col_index(k) == ii) dii = la.value(k);
    x[ii] /= dii;
    const double xi = x[ii];
    for (std::size_t k = la.row_begin(ii); k < la.row_end(ii); ++k) {
      const std::size_t j = la.col_index(k);
      if (j != ii) x[j] -= la.value(k) * xi;
    }
  }
  return x;
}

namespace {

// Groups rows into dependency levels: level(i) = 1 + max level over the
// off-diagonal entries of row i (entries of `m` strictly below/above the
// diagonal depending on the sweep direction), bucketed CSR-style. Rows are
// scanned in `forward` order so dependencies are already levelled.
void schedule_levels(const SparseMatrix& m, bool forward, std::vector<std::size_t>& ptr,
                     std::vector<std::size_t>& rows) {
  const std::size_t n = m.rows();
  std::vector<std::size_t> level(n, 0);
  std::size_t nlevels = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t i = forward ? t : n - 1 - t;
    std::size_t lv = 0;
    for (std::size_t e = m.row_begin(i); e < m.row_end(i); ++e) {
      const std::size_t j = m.col_index(e);
      if (j == i) continue;
      lv = std::max(lv, level[j] + 1);
    }
    level[i] = lv;
    nlevels = std::max(nlevels, lv + 1);
  }
  ptr.assign(n == 0 ? 1 : nlevels + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++ptr[level[i] + 1];
  for (std::size_t l = 0; l + 1 < ptr.size(); ++l) ptr[l + 1] += ptr[l];
  rows.resize(n);
  std::vector<std::size_t> fill(ptr.begin(), ptr.end() - 1);
  // Ascending row index within each level (i ascending fills buckets in
  // order), for a deterministic, cache-friendly schedule.
  for (std::size_t i = 0; i < n; ++i) rows[fill[level[i]]++] = i;
}

}  // namespace

Ic0Factor ic0_factor(const SparseMatrix& a) {
  Ic0Factor f;
  f.l = ic0(a);
  f.lt = f.l.transposed();
  const std::size_t n = f.l.rows();
  f.inv_diag.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    // Sorted columns: the diagonal is the last entry of row i of L.
    SUBSPAR_ENSURE(f.l.row_end(i) > f.l.row_begin(i));
    const std::size_t e = f.l.row_end(i) - 1;
    SUBSPAR_ENSURE(f.l.col_index(e) == i && f.l.value(e) != 0.0);
    f.inv_diag[i] = 1.0 / f.l.value(e);
  }
  schedule_levels(f.l, /*forward=*/true, f.fwd_ptr, f.fwd_rows);
  schedule_levels(f.lt, /*forward=*/false, f.bwd_ptr, f.bwd_rows);
  return f;
}

Matrix ic0_solve_many(const Ic0Factor& f, const Matrix& b) {
  const std::size_t n = f.rows();
  const std::size_t k = b.cols();
  SUBSPAR_REQUIRE(b.rows() == n);
  Matrix x = b;
  if (n == 0 || k == 0) return x;
  // Forward: L y = b. Rows of one level are independent (their off-diagonal
  // columns all lie in earlier levels), so each level is one parallel_for;
  // a row's k columns are swept in its contiguous slice.
  for (std::size_t l = 0; l + 1 < f.fwd_ptr.size(); ++l) {
    const std::size_t r0 = f.fwd_ptr[l], r1 = f.fwd_ptr[l + 1];
    parallel_for(r1 - r0, [&](std::size_t t) {
      const std::size_t i = f.fwd_rows[r0 + t];
      double* xi = x.row_ptr(i);
      const std::size_t e0 = f.l.row_begin(i), e1 = f.l.row_end(i) - 1;  // diag last
      const double d = f.inv_diag[i];
      // Scalar reduction per column in ascending entry order: the same
      // operation sequence for every k, so batched columns are
      // bit-identical to 1-column solves.
      for (std::size_t j = 0; j < k; ++j) {
        double s = xi[j];
        for (std::size_t e = e0; e < e1; ++e)
          s -= f.l.value(e) * x.row_ptr(f.l.col_index(e))[j];
        xi[j] = s * d;
      }
    });
  }
  // Backward: L' x = y, gathered from the rows of L' (first entry of row i
  // of L' is the diagonal; the rest are columns > i, already solved).
  for (std::size_t l = 0; l + 1 < f.bwd_ptr.size(); ++l) {
    const std::size_t r0 = f.bwd_ptr[l], r1 = f.bwd_ptr[l + 1];
    parallel_for(r1 - r0, [&](std::size_t t) {
      const std::size_t i = f.bwd_rows[r0 + t];
      double* xi = x.row_ptr(i);
      const std::size_t e0 = f.lt.row_begin(i) + 1, e1 = f.lt.row_end(i);  // diag first
      const double d = f.inv_diag[i];
      for (std::size_t j = 0; j < k; ++j) {
        double s = xi[j];
        for (std::size_t e = e0; e < e1; ++e)
          s -= f.lt.value(e) * x.row_ptr(f.lt.col_index(e))[j];
        xi[j] = s * d;
      }
    });
  }
  return x;
}

Vector ic0_solve(const Ic0Factor& f, const Vector& b) {
  Matrix bm(b.size(), 1);
  bm.set_col(0, b);
  return ic0_solve_many(f, bm).col(0);
}

Ic0Preconditioner::Ic0Preconditioner(const SparseMatrix& a, std::vector<std::size_t> perm)
    : perm_(std::move(perm)),
      factor_(perm_.empty() ? ic0_factor(a) : ic0_factor(a.permuted(perm_))) {}

Matrix Ic0Preconditioner::apply_many(const Matrix& r) const {
  if (perm_.empty()) return ic0_solve_many(factor_, r);
  const std::size_t n = factor_.rows();
  const std::size_t k = r.cols();
  SUBSPAR_REQUIRE(r.rows() == n);
  // z = P' (L L')^{-1} P r: gather rows by the permutation, solve on the
  // reordered factor, scatter back.
  Matrix rp(n, k);
  for (std::size_t i = 0; i < n; ++i)
    std::copy(r.row_ptr(perm_[i]), r.row_ptr(perm_[i]) + k, rp.row_ptr(i));
  const Matrix yp = ic0_solve_many(factor_, rp);
  Matrix z(n, k);
  for (std::size_t i = 0; i < n; ++i)
    std::copy(yp.row_ptr(i), yp.row_ptr(i) + k, z.row_ptr(perm_[i]));
  return z;
}

}  // namespace subspar
