#include "linalg/lu.hpp"

#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace subspar {

LU::LU(const Matrix& a) : lu_(a), perm_(a.rows()) {
  SUBSPAR_REQUIRE(a.rows() == a.cols());
  const std::size_t n = a.rows();
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(lu_(i, k)) > best) {
        best = std::abs(lu_(i, k));
        piv = i;
      }
    }
    if (best == 0.0) {
      singular_ = true;
      continue;
    }
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[k], perm_[piv]);
      sign_ = -sign_;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      lu_(i, k) /= lu_(k, k);
      const double lik = lu_(i, k);
      if (lik == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= lik * lu_(k, j);
    }
  }
}

Vector LU::solve(const Vector& b) const {
  SUBSPAR_REQUIRE(!singular_);
  const std::size_t n = lu_.rows();
  SUBSPAR_REQUIRE(b.size() == n);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t k = 0; k < i; ++k) s -= lu_(i, k) * y[k];
    y[i] = s;
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= lu_(ii, k) * x[k];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

double LU::det() const {
  if (singular_) return 0.0;
  double d = sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

}  // namespace subspar
