// NEON backend (aarch64): NEON is baseline on AArch64, so no extra target
// flags are needed — the 8-wide vector-extension kernels lower to pairs of
// 128-bit q-register operations. Compiled only on ARM targets (see
// src/CMakeLists.txt).
#define SUBSPAR_BK_NS neon
#define SUBSPAR_BK_KIND BackendKind::kNeon
#define SUBSPAR_BK_SCALAR 0
#include "linalg/backend_kernels.inl"
