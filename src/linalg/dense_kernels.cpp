// Blocked dense-kernel core behind the matmul family (see matrix.hpp).
//
// Layout is the classic shared-packing GEMM scheme, in three phases:
//  1. A is packed into MR-row strips and B into NR-column strips, each strip
//     spanning the full inner dimension, zero-padded to the register tile.
//     Each strip is packed by exactly one util/parallel task (disjoint
//     output slots). Packing also absorbs the transposed operand layouts,
//     so one micro-kernel serves NN / TN / NT.
//  2. The output C is partitioned into fixed TILE_M x TILE_N tiles, each
//     owned by exactly one task.
//  3. Inside a tile, every MR x NR register block accumulates over the full
//     inner dimension from the packed strips (unit-stride, k-unrolled) and
//     is added into C once, scaled by alpha.
//
// Every C element is written by exactly one task and its accumulation runs
// in fixed ascending-k order, so results are bit-identical for any
// SUBSPAR_THREADS value.
//
// Products too small to amortize packing fall through to the naive
// streaming loops (the dispatch depends only on shapes, never on the
// thread count, so determinism is unaffected).
#include <algorithm>
#include <cstddef>
#include <cstring>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace subspar {
namespace {

enum class Op { NN, TN, NT };  // which operand(s) the packing reads transposed

constexpr std::size_t MR = 4;       // register tile rows
constexpr std::size_t NR = 16;      // register tile cols
constexpr std::size_t TILE_M = 64;  // output tile owned by one task
constexpr std::size_t TILE_N = 64;
// Below this flop count the packing setup outweighs the locality win.
constexpr std::size_t SMALL_FLOPS = 32 * 1024;

// Logical element readers: a(i, l) and b(l, j) of the m x k by k x n
// product, independent of storage orientation.
inline double read_a(const Matrix& a, Op op, std::size_t i, std::size_t l) {
  return op == Op::TN ? a(l, i) : a(i, l);
}
inline double read_b(const Matrix& b, Op op, std::size_t l, std::size_t j) {
  return op == Op::NT ? b(j, l) : b(l, j);
}

// acc[MR][NR] = (packed A strip) (packed B strip) over the full depth k.
// The MR x NR accumulator block stays in registers for the whole k loop;
// each output element accumulates in ascending-k order (the lane order of a
// vector accumulator equals the scalar loop order, so the choice of kernel
// below never affects the thread-count determinism contract).
#if defined(__GNUC__) || defined(__clang__)
// Two 8-wide vector accumulators per tile row, via the portable GCC/Clang
// vector extension — explicit registers instead of hoping the
// auto-vectorizer keeps a 4 x 16 array out of memory (it often does not).
using Vec8 __attribute__((vector_size(8 * sizeof(double)))) = double;
static_assert(MR == 4 && NR == 16, "micro_kernel is written for a 4 x 16 tile");

void micro_kernel(const double* __restrict ap, const double* __restrict bp, std::size_t k,
                  double acc[MR][NR]) {
  Vec8 a00{}, a01{}, a10{}, a11{}, a20{}, a21{}, a30{}, a31{};
  for (std::size_t l = 0; l < k; ++l) {
    Vec8 b0, b1;
    std::memcpy(&b0, bp + l * NR, sizeof b0);
    std::memcpy(&b1, bp + l * NR + 8, sizeof b1);
    const double* ar = ap + l * MR;
    a00 += ar[0] * b0;
    a01 += ar[0] * b1;
    a10 += ar[1] * b0;
    a11 += ar[1] * b1;
    a20 += ar[2] * b0;
    a21 += ar[2] * b1;
    a30 += ar[3] * b0;
    a31 += ar[3] * b1;
  }
  std::memcpy(acc[0], &a00, sizeof a00);
  std::memcpy(acc[0] + 8, &a01, sizeof a01);
  std::memcpy(acc[1], &a10, sizeof a10);
  std::memcpy(acc[1] + 8, &a11, sizeof a11);
  std::memcpy(acc[2], &a20, sizeof a20);
  std::memcpy(acc[2] + 8, &a21, sizeof a21);
  std::memcpy(acc[3], &a30, sizeof a30);
  std::memcpy(acc[3] + 8, &a31, sizeof a31);
}
#else
void micro_kernel(const double* __restrict ap, const double* __restrict bp, std::size_t k,
                  double acc[MR][NR]) {
  for (std::size_t r = 0; r < MR; ++r)
    for (std::size_t c = 0; c < NR; ++c) acc[r][c] = 0.0;
  for (std::size_t l = 0; l < k; ++l) {
    const double* ar = ap + l * MR;
    const double* br = bp + l * NR;
    for (std::size_t r = 0; r < MR; ++r) {
      const double av = ar[r];
      for (std::size_t c = 0; c < NR; ++c) acc[r][c] += av * br[c];
    }
  }
}
#endif

// Naive fallback for small products: streaming accumulation straight into C
// (no packing, no temporaries).
void gemm_naive(Matrix& c, const Matrix& a, const Matrix& b, Op op, double alpha,
                std::size_t m, std::size_t n, std::size_t k) {
  if (op == Op::NT) {
    for (std::size_t i = 0; i < m; ++i) {
      const double* arow = a.row_ptr(i);
      double* crow = c.row_ptr(i);
      for (std::size_t j = 0; j < n; ++j) {
        const double* brow = b.row_ptr(j);
        double s = 0.0;
        for (std::size_t l = 0; l < k; ++l) s += arow[l] * brow[l];
        crow[j] += alpha * s;
      }
    }
    return;
  }
  if (op == Op::TN) {
    for (std::size_t l = 0; l < k; ++l) {
      const double* arow = a.row_ptr(l);
      const double* brow = b.row_ptr(l);
      for (std::size_t i = 0; i < m; ++i) {
        const double ali = alpha * arow[i];
        if (ali == 0.0) continue;
        double* crow = c.row_ptr(i);
        for (std::size_t j = 0; j < n; ++j) crow[j] += ali * brow[j];
      }
    }
    return;
  }
  for (std::size_t i = 0; i < m; ++i) {
    double* crow = c.row_ptr(i);
    for (std::size_t l = 0; l < k; ++l) {
      const double ail = alpha * a(i, l);
      if (ail == 0.0) continue;
      const double* brow = b.row_ptr(l);
      for (std::size_t j = 0; j < n; ++j) crow[j] += ail * brow[j];
    }
  }
}

// Shared packed operands: A as ceil(m/MR) MR-row strips, B as ceil(n/NR)
// NR-column strips, both over the full depth k and zero-padded to the tile.
// The buffers are thread_local so repeated products reuse the same pages
// instead of paying an mmap + page-fault + zero cycle per call (they are
// fully overwritten for the region in use each time).
struct Packed {
  std::vector<double> a, b;
};

Packed& pack_operands(const Matrix& a, const Matrix& b, Op op, std::size_t m, std::size_t n,
                      std::size_t k) {
  thread_local Packed pk;
  const std::size_t a_strips = (m + MR - 1) / MR;
  const std::size_t b_strips = (n + NR - 1) / NR;
  if (pk.a.size() < a_strips * MR * k) pk.a.resize(a_strips * MR * k);
  if (pk.b.size() < b_strips * NR * k) pk.b.resize(b_strips * NR * k);
  // Captured as plain pointers: a lambda body naming `pk` directly would
  // re-resolve the thread_local on the executing pool worker, not here.
  double* const pka = pk.a.data();
  double* const pkb = pk.b.data();
  parallel_for(a_strips, [&, pka](std::size_t s) {
    double* dst = pka + s * k * MR;
    const std::size_t rows = std::min(MR, m - s * MR);
    if (rows == MR) {
      for (std::size_t l = 0; l < k; ++l)
        for (std::size_t r = 0; r < MR; ++r) dst[l * MR + r] = read_a(a, op, s * MR + r, l);
    } else {
      for (std::size_t l = 0; l < k; ++l)
        for (std::size_t r = 0; r < MR; ++r)
          dst[l * MR + r] = r < rows ? read_a(a, op, s * MR + r, l) : 0.0;
    }
  });
  parallel_for(b_strips, [&, pkb](std::size_t s) {
    double* dst = pkb + s * k * NR;
    const std::size_t cols = std::min(NR, n - s * NR);
    if (cols == NR) {
      for (std::size_t l = 0; l < k; ++l)
        for (std::size_t c = 0; c < NR; ++c) dst[l * NR + c] = read_b(b, op, l, s * NR + c);
    } else {
      for (std::size_t l = 0; l < k; ++l)
        for (std::size_t c = 0; c < NR; ++c)
          dst[l * NR + c] = c < cols ? read_b(b, op, l, s * NR + c) : 0.0;
    }
  });
  return pk;
}

// One output tile: C[i0:i0+mc, j0:j0+nc] += alpha * (A B) restricted to the
// tile, from the shared packed strips. Runs on a single task.
void compute_tile(Matrix& c, const Packed& pk, double alpha, bool accumulate,
                  std::size_t k, std::size_t m, std::size_t n, std::size_t i0,
                  std::size_t mc, std::size_t j0, std::size_t nc) {
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t cols = std::min(NR, n - (j0 + jr));
    const double* bp = pk.b.data() + ((j0 + jr) / NR) * k * NR;
    for (std::size_t ir = 0; ir < mc; ir += MR) {
      const std::size_t rows = std::min(MR, m - (i0 + ir));
      const double* ap = pk.a.data() + ((i0 + ir) / MR) * k * MR;
      double acc[MR][NR];
      micro_kernel(ap, bp, k, acc);
      for (std::size_t r = 0; r < rows; ++r) {
        double* crow = c.row_ptr(i0 + ir + r) + j0 + jr;
        if (accumulate) {
          for (std::size_t cc = 0; cc < cols; ++cc) crow[cc] += alpha * acc[r][cc];
        } else {
          for (std::size_t cc = 0; cc < cols; ++cc) crow[cc] = alpha * acc[r][cc];
        }
      }
    }
  }
}

// C += alpha op(A) op(B) (or C = alpha op(A) op(B) when accumulate is
// false: a fresh zero C need not be re-read). Dispatch depends only on the
// shapes.
void gemm_add(Matrix& c, const Matrix& a, const Matrix& b, Op op, double alpha,
              bool accumulate = true) {
  const std::size_t m = c.rows(), n = c.cols();
  const std::size_t k = op == Op::TN ? a.rows() : a.cols();
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;
  if (m * n * k <= SMALL_FLOPS) {
    gemm_naive(c, a, b, op, alpha, m, n, k);
    return;
  }
  const Packed& pk = pack_operands(a, b, op, m, n, k);
  const std::size_t mt = (m + TILE_M - 1) / TILE_M;
  const std::size_t nt = (n + TILE_N - 1) / TILE_N;
  parallel_for(mt * nt, [&](std::size_t t) {
    const std::size_t i0 = (t / nt) * TILE_M, j0 = (t % nt) * TILE_N;
    compute_tile(c, pk, alpha, accumulate, k, m, n, i0, std::min(TILE_M, m - i0), j0,
                 std::min(TILE_N, n - j0));
  });
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  SUBSPAR_REQUIRE(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  gemm_add(c, a, b, Op::NN, 1.0, /*accumulate=*/false);
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  SUBSPAR_REQUIRE(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  gemm_add(c, a, b, Op::TN, 1.0, /*accumulate=*/false);
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  SUBSPAR_REQUIRE(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  gemm_add(c, a, b, Op::NT, 1.0, /*accumulate=*/false);
  return c;
}

void matmul_add(Matrix& c, const Matrix& a, const Matrix& b, double alpha) {
  SUBSPAR_REQUIRE(a.cols() == b.rows() && c.rows() == a.rows() && c.cols() == b.cols());
  gemm_add(c, a, b, Op::NN, alpha);
}

void matmul_tn_add(Matrix& c, const Matrix& a, const Matrix& b, double alpha) {
  SUBSPAR_REQUIRE(a.rows() == b.rows() && c.rows() == a.cols() && c.cols() == b.cols());
  gemm_add(c, a, b, Op::TN, alpha);
}

void matmul_nt_add(Matrix& c, const Matrix& a, const Matrix& b, double alpha) {
  SUBSPAR_REQUIRE(a.cols() == b.cols() && c.rows() == a.rows() && c.cols() == b.rows());
  gemm_add(c, a, b, Op::NT, alpha);
}

Matrix gram_tn(const Matrix& a) {
  const std::size_t n = a.cols(), k = a.rows();
  Matrix c(n, n);
  if (n == 0 || k == 0) return c;
  if (n * n * k <= SMALL_FLOPS) {
    gemm_naive(c, a, a, Op::TN, 1.0, n, n, k);
  } else {
    // Only tiles on or above the diagonal; the strict lower triangle is
    // mirrored afterwards so the result is exactly symmetric.
    const Packed& pk = pack_operands(a, a, Op::TN, n, n, k);
    const std::size_t nt = (n + TILE_N - 1) / TILE_N;
    std::vector<std::pair<std::size_t, std::size_t>> tiles;
    for (std::size_t ti = 0; ti < nt; ++ti)
      for (std::size_t tj = ti; tj < nt; ++tj) tiles.emplace_back(ti, tj);
    parallel_for(tiles.size(), [&](std::size_t t) {
      const std::size_t i0 = tiles[t].first * TILE_N, j0 = tiles[t].second * TILE_N;
      compute_tile(c, pk, 1.0, /*accumulate=*/false, k, n, n, i0, std::min(TILE_N, n - i0),
                   j0, std::min(TILE_N, n - j0));
    });
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) c(j, i) = c(i, j);
  return c;
}

}  // namespace subspar
