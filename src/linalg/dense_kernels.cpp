// Blocked dense-kernel core behind the matmul family (see matrix.hpp).
//
// Layout is the classic shared-packing GEMM scheme, in three phases:
//  1. A is packed into MR-row strips and B into NR-column strips, each strip
//     spanning the full inner dimension, zero-padded to the register tile.
//     Each strip is packed by exactly one util/parallel task (disjoint
//     output slots). Packing also absorbs the transposed operand layouts,
//     so one micro-kernel serves NN / TN / NT.
//  2. The output C is partitioned into fixed TILE_M x TILE_N tiles, each
//     owned by exactly one task.
//  3. Inside a tile, every MR x NR register block accumulates over the full
//     inner dimension from the packed strips (unit-stride, k-unrolled) and
//     is added into C once, scaled by alpha.
//
// Every C element is written by exactly one task and its accumulation runs
// in fixed ascending-k order, so results are bit-identical for any
// SUBSPAR_THREADS value.
//
// Products too small to amortize packing fall through to the naive
// streaming loops (the dispatch depends only on shapes, never on the
// thread count, so determinism is unaffected).
// The MR x NR register block itself lives in the runtime-dispatched kernel
// backend (linalg/backend.hpp): this file owns packing, tiling, and
// dispatch; KernelOps::gemm_f64 / gemm_f32 own the inner loop. The fp32
// variant packs the strips in single precision (mixed mode: half the bytes
// streamed per k step) while the accumulators stay fp64.
#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "linalg/backend.hpp"
#include "linalg/matrix.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace subspar {
namespace {

enum class Op { NN, TN, NT };  // which operand(s) the packing reads transposed

constexpr std::size_t MR = 4;       // register tile rows
constexpr std::size_t NR = 16;      // register tile cols
constexpr std::size_t TILE_M = 64;  // output tile owned by one task
constexpr std::size_t TILE_N = 64;
// Below this flop count the packing setup outweighs the locality win.
constexpr std::size_t SMALL_FLOPS = 32 * 1024;

// Logical element readers: a(i, l) and b(l, j) of the m x k by k x n
// product, independent of storage orientation.
inline double read_a(const Matrix& a, Op op, std::size_t i, std::size_t l) {
  return op == Op::TN ? a(l, i) : a(i, l);
}
inline double read_b(const Matrix& b, Op op, std::size_t l, std::size_t j) {
  return op == Op::NT ? b(j, l) : b(l, j);
}

static_assert(MR == 4 && NR == 16, "KernelOps::gemm_* implements a 4 x 16 tile");

// Naive fallback for small products: streaming accumulation straight into C
// (no packing, no temporaries).
void gemm_naive(Matrix& c, const Matrix& a, const Matrix& b, Op op, double alpha,
                std::size_t m, std::size_t n, std::size_t k) {
  if (op == Op::NT) {
    for (std::size_t i = 0; i < m; ++i) {
      const double* arow = a.row_ptr(i);
      double* crow = c.row_ptr(i);
      for (std::size_t j = 0; j < n; ++j) {
        const double* brow = b.row_ptr(j);
        double s = 0.0;
        for (std::size_t l = 0; l < k; ++l) s += arow[l] * brow[l];
        crow[j] += alpha * s;
      }
    }
    return;
  }
  if (op == Op::TN) {
    for (std::size_t l = 0; l < k; ++l) {
      const double* arow = a.row_ptr(l);
      const double* brow = b.row_ptr(l);
      for (std::size_t i = 0; i < m; ++i) {
        const double ali = alpha * arow[i];
        if (ali == 0.0) continue;
        double* crow = c.row_ptr(i);
        for (std::size_t j = 0; j < n; ++j) crow[j] += ali * brow[j];
      }
    }
    return;
  }
  for (std::size_t i = 0; i < m; ++i) {
    double* crow = c.row_ptr(i);
    for (std::size_t l = 0; l < k; ++l) {
      const double ail = alpha * a(i, l);
      if (ail == 0.0) continue;
      const double* brow = b.row_ptr(l);
      for (std::size_t j = 0; j < n; ++j) crow[j] += ail * brow[j];
    }
  }
}

// Shared packed operands: A as ceil(m/MR) MR-row strips, B as ceil(n/NR)
// NR-column strips, both over the full depth k and zero-padded to the tile.
// The buffers are thread_local so repeated products reuse the same pages
// instead of paying an mmap + page-fault + zero cycle per call (they are
// fully overwritten for the region in use each time). T = double is the
// bit-exact fp64 engine (static_cast<double>(double) is the identity);
// T = float packs the mixed-precision strips.
template <typename T>
struct Packed {
  std::vector<T> a, b;
};

template <typename T>
Packed<T>& pack_operands(const Matrix& a, const Matrix& b, Op op, std::size_t m,
                         std::size_t n, std::size_t k) {
  thread_local Packed<T> pk;
  const std::size_t a_strips = (m + MR - 1) / MR;
  const std::size_t b_strips = (n + NR - 1) / NR;
  if (pk.a.size() < a_strips * MR * k) pk.a.resize(a_strips * MR * k);
  if (pk.b.size() < b_strips * NR * k) pk.b.resize(b_strips * NR * k);
  // Captured as plain pointers: a lambda body naming `pk` directly would
  // re-resolve the thread_local on the executing pool worker, not here.
  T* const pka = pk.a.data();
  T* const pkb = pk.b.data();
  parallel_for(a_strips, [&, pka](std::size_t s) {
    T* dst = pka + s * k * MR;
    const std::size_t rows = std::min(MR, m - s * MR);
    if (rows == MR) {
      for (std::size_t l = 0; l < k; ++l)
        for (std::size_t r = 0; r < MR; ++r)
          dst[l * MR + r] = static_cast<T>(read_a(a, op, s * MR + r, l));
    } else {
      for (std::size_t l = 0; l < k; ++l)
        for (std::size_t r = 0; r < MR; ++r)
          dst[l * MR + r] = r < rows ? static_cast<T>(read_a(a, op, s * MR + r, l)) : T(0);
    }
  });
  parallel_for(b_strips, [&, pkb](std::size_t s) {
    T* dst = pkb + s * k * NR;
    const std::size_t cols = std::min(NR, n - s * NR);
    if (cols == NR) {
      for (std::size_t l = 0; l < k; ++l)
        for (std::size_t c = 0; c < NR; ++c)
          dst[l * NR + c] = static_cast<T>(read_b(b, op, l, s * NR + c));
    } else {
      for (std::size_t l = 0; l < k; ++l)
        for (std::size_t c = 0; c < NR; ++c)
          dst[l * NR + c] = c < cols ? static_cast<T>(read_b(b, op, l, s * NR + c)) : T(0);
    }
  });
  return pk;
}

// One output tile: C[i0:i0+mc, j0:j0+nc] += alpha * (A B) restricted to the
// tile, from the shared packed strips. Runs on a single task. The micro-
// kernel comes from the active backend; accumulators are fp64 either way.
template <typename T>
void compute_tile(const KernelOps& ops, Matrix& c, const Packed<T>& pk, double alpha,
                  bool accumulate, std::size_t k, std::size_t m, std::size_t n,
                  std::size_t i0, std::size_t mc, std::size_t j0, std::size_t nc) {
  for (std::size_t jr = 0; jr < nc; jr += NR) {
    const std::size_t cols = std::min(NR, n - (j0 + jr));
    const T* bp = pk.b.data() + ((j0 + jr) / NR) * k * NR;
    for (std::size_t ir = 0; ir < mc; ir += MR) {
      const std::size_t rows = std::min(MR, m - (i0 + ir));
      const T* ap = pk.a.data() + ((i0 + ir) / MR) * k * MR;
      double acc[MR][NR];
      if constexpr (std::is_same_v<T, float>)
        ops.gemm_f32(ap, bp, k, &acc[0][0]);
      else
        ops.gemm_f64(ap, bp, k, &acc[0][0]);
      for (std::size_t r = 0; r < rows; ++r) {
        double* crow = c.row_ptr(i0 + ir + r) + j0 + jr;
        if (accumulate) {
          for (std::size_t cc = 0; cc < cols; ++cc) crow[cc] += alpha * acc[r][cc];
        } else {
          for (std::size_t cc = 0; cc < cols; ++cc) crow[cc] = alpha * acc[r][cc];
        }
      }
    }
  }
}

// C += alpha op(A) op(B) (or C = alpha op(A) op(B) when accumulate is
// false: a fresh zero C need not be re-read). Dispatch depends only on the
// shapes and the requested precision. Products below the packing threshold
// take the fp64 naive path even in mixed mode: the fp32 win is bandwidth,
// and there is none to save on a product that fits in cache.
void gemm_add(Matrix& c, const Matrix& a, const Matrix& b, Op op, double alpha,
              bool accumulate = true, Precision precision = Precision::kFp64) {
  const std::size_t m = c.rows(), n = c.cols();
  const std::size_t k = op == Op::TN ? a.rows() : a.cols();
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;
  if (m * n * k <= SMALL_FLOPS) {
    gemm_naive(c, a, b, op, alpha, m, n, k);
    return;
  }
  const KernelOps& ops = kernel_ops();
  const std::size_t mt = (m + TILE_M - 1) / TILE_M;
  const std::size_t nt = (n + TILE_N - 1) / TILE_N;
  const auto run_tiles = [&](const auto& pk) {
    parallel_for(mt * nt, [&](std::size_t t) {
      const std::size_t i0 = (t / nt) * TILE_M, j0 = (t % nt) * TILE_N;
      compute_tile(ops, c, pk, alpha, accumulate, k, m, n, i0, std::min(TILE_M, m - i0),
                   j0, std::min(TILE_N, n - j0));
    });
  };
  if (precision == Precision::kMixed)
    run_tiles(pack_operands<float>(a, b, op, m, n, k));
  else
    run_tiles(pack_operands<double>(a, b, op, m, n, k));
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b) {
  SUBSPAR_REQUIRE(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  gemm_add(c, a, b, Op::NN, 1.0, /*accumulate=*/false);
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  SUBSPAR_REQUIRE(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  gemm_add(c, a, b, Op::TN, 1.0, /*accumulate=*/false);
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  SUBSPAR_REQUIRE(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  gemm_add(c, a, b, Op::NT, 1.0, /*accumulate=*/false);
  return c;
}

void matmul_add(Matrix& c, const Matrix& a, const Matrix& b, double alpha) {
  SUBSPAR_REQUIRE(a.cols() == b.rows() && c.rows() == a.rows() && c.cols() == b.cols());
  gemm_add(c, a, b, Op::NN, alpha);
}

void matmul_tn_add(Matrix& c, const Matrix& a, const Matrix& b, double alpha) {
  SUBSPAR_REQUIRE(a.rows() == b.rows() && c.rows() == a.cols() && c.cols() == b.cols());
  gemm_add(c, a, b, Op::TN, alpha);
}

void matmul_nt_add(Matrix& c, const Matrix& a, const Matrix& b, double alpha) {
  SUBSPAR_REQUIRE(a.cols() == b.cols() && c.rows() == a.rows() && c.cols() == b.rows());
  gemm_add(c, a, b, Op::NT, alpha);
}

Matrix matmul_mixed(const Matrix& a, const Matrix& b) {
  SUBSPAR_REQUIRE(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  gemm_add(c, a, b, Op::NN, 1.0, /*accumulate=*/false, Precision::kMixed);
  return c;
}

Matrix matmul_tn_mixed(const Matrix& a, const Matrix& b) {
  SUBSPAR_REQUIRE(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  gemm_add(c, a, b, Op::TN, 1.0, /*accumulate=*/false, Precision::kMixed);
  return c;
}

void matmul_add_mixed(Matrix& c, const Matrix& a, const Matrix& b, double alpha) {
  SUBSPAR_REQUIRE(a.cols() == b.rows() && c.rows() == a.rows() && c.cols() == b.cols());
  gemm_add(c, a, b, Op::NN, alpha, /*accumulate=*/true, Precision::kMixed);
}

Matrix gram_tn(const Matrix& a) {
  const std::size_t n = a.cols(), k = a.rows();
  Matrix c(n, n);
  if (n == 0 || k == 0) return c;
  if (n * n * k <= SMALL_FLOPS) {
    gemm_naive(c, a, a, Op::TN, 1.0, n, n, k);
  } else {
    // Only tiles on or above the diagonal; the strict lower triangle is
    // mirrored afterwards so the result is exactly symmetric.
    const KernelOps& ops = kernel_ops();
    const Packed<double>& pk = pack_operands<double>(a, a, Op::TN, n, n, k);
    const std::size_t nt = (n + TILE_N - 1) / TILE_N;
    std::vector<std::pair<std::size_t, std::size_t>> tiles;
    for (std::size_t ti = 0; ti < nt; ++ti)
      for (std::size_t tj = ti; tj < nt; ++tj) tiles.emplace_back(ti, tj);
    parallel_for(tiles.size(), [&](std::size_t t) {
      const std::size_t i0 = tiles[t].first * TILE_N, j0 = tiles[t].second * TILE_N;
      compute_tile(ops, c, pk, 1.0, /*accumulate=*/false, k, n, n, i0,
                   std::min(TILE_N, n - i0), j0, std::min(TILE_N, n - j0));
    });
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) c(j, i) = c(i, j);
  return c;
}

}  // namespace subspar
