// Dense real vector with the handful of BLAS-1 operations the solvers and
// sparsifiers need. Kept header-only: every member is a short loop.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace subspar {

class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }
  const std::vector<double>& raw() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }
  void resize(std::size_t n, double v = 0.0) { data_.resize(n, v); }

  Vector& operator+=(const Vector& o) {
    SUBSPAR_REQUIRE(size() == o.size());
    for (std::size_t i = 0; i < size(); ++i) data_[i] += o[i];
    return *this;
  }
  Vector& operator-=(const Vector& o) {
    SUBSPAR_REQUIRE(size() == o.size());
    for (std::size_t i = 0; i < size(); ++i) data_[i] -= o[i];
    return *this;
  }
  Vector& operator*=(double a) {
    for (auto& v : data_) v *= a;
    return *this;
  }

  friend Vector operator+(Vector a, const Vector& b) { return a += b; }
  friend Vector operator-(Vector a, const Vector& b) { return a -= b; }
  friend Vector operator*(double a, Vector v) { return v *= a; }
  friend Vector operator*(Vector v, double a) { return v *= a; }

  /// y += a * x (BLAS axpy).
  void axpy(double a, const Vector& x) {
    SUBSPAR_REQUIRE(size() == x.size());
    for (std::size_t i = 0; i < size(); ++i) data_[i] += a * x[i];
  }

 private:
  std::vector<double> data_;
};

inline double dot(const Vector& a, const Vector& b) {
  SUBSPAR_REQUIRE(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

inline double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

inline double norm_inf(const Vector& a) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i]));
  return m;
}

}  // namespace subspar
