// AVX-512 backend: the 8-wide double kernels lower to single zmm registers
// under this file's -mavx512f -mfma flags (set per-source in
// src/CMakeLists.txt). Only dispatched when CPUID reports AVX-512F.
#define SUBSPAR_BK_NS avx512
#define SUBSPAR_BK_KIND BackendKind::kAvx512
#define SUBSPAR_BK_SCALAR 0
#include "linalg/backend_kernels.inl"
