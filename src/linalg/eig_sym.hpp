// Symmetric eigendecomposition via the classical cyclic Jacobi method.
// Used for conditioning diagnostics (PCG iteration-count analysis of §2.2.2)
// and as an independent cross-check of the SVD in the test suite.
#pragma once

#include "linalg/matrix.hpp"

namespace subspar {

struct EigSym {
  Vector values;   ///< eigenvalues, ascending
  Matrix vectors;  ///< corresponding orthonormal eigenvectors in columns
};

/// Eigendecomposition of a symmetric matrix (symmetry is required; only the
/// lower triangle is trusted as authoritative if the input is slightly
/// asymmetric from roundoff).
EigSym eig_sym(const Matrix& a);

}  // namespace subspar
