#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/qr.hpp"
#include "util/check.hpp"

namespace subspar {
namespace {

// One-sided Jacobi on a tall (m >= n) matrix: right-multiplies plane
// rotations until all column pairs are orthogonal. On exit `a` holds U*Sigma
// and `v` accumulates the rotations.
void one_sided_jacobi(Matrix& a, Matrix& v) {
  const std::size_t m = a.rows(), n = a.cols();
  v = Matrix::identity(n);
  if (n < 2) return;
  const double tol = 1e-14;
  const int max_sweeps = 60;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double ap = a(i, p), aq = a(i, q);
          app += ap * ap;
          aqq += aq * aq;
          apq += ap * aq;
        }
        if (std::abs(apq) <= tol * std::sqrt(app * aqq) || apq == 0.0) continue;
        converged = false;
        // Jacobi rotation that zeroes the (p,q) Gram entry.
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double ap = a(i, p), aq = a(i, q);
          a(i, p) = c * ap - s * aq;
          a(i, q) = s * ap + c * aq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p), vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }
}

Svd svd_tall(const Matrix& a_in) {
  Matrix a = a_in;
  const std::size_t m = a.rows(), n = a.cols();
  Matrix v;
  one_sided_jacobi(a, v);

  Vector sigma(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < m; ++i) s += a(i, j) * a(i, j);
    sigma[j] = std::sqrt(s);
  }
  // Sort columns by descending singular value.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  Svd out;
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  out.sigma = Vector(n);
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t j = order[jj];
    out.sigma[jj] = sigma[j];
    if (sigma[j] > 0.0) {
      for (std::size_t i = 0; i < m; ++i) out.u(i, jj) = a(i, j) / sigma[j];
    }
    // Zero singular value: leave the U column zero; callers that need a full
    // orthonormal U use orthonormal_complement on the kept columns.
    for (std::size_t i = 0; i < n; ++i) out.v(i, jj) = v(i, j);
  }
  return out;
}

// QR-preconditioned path for m >> n: factor A = Q R once (O(m n^2)), run
// the Jacobi sweeps on the small n x n R only (O(n) per rotation instead
// of O(m)), then lift U = Q U_R. Worth it once the m-dependent rotation
// work dominates the one-off QR cost.
constexpr std::size_t kQrAspect = 2;  // use QR path when m >= kQrAspect * n

Svd svd_tall_qr(const Matrix& a) {
  const std::size_t m = a.rows(), n = a.cols();
  const QR qr(a);
  Svd out = svd_tall(qr.r());
  // U = Q [U_R; 0], applied from the Householder factors.
  Matrix upad(m, n);
  upad.set_block(0, 0, out.u);
  out.u = qr.q_mul(std::move(upad));
  return out;
}

Svd svd_of_tall(const Matrix& a) {
  if (a.cols() > 1 && a.rows() >= kQrAspect * a.cols()) return svd_tall_qr(a);
  return svd_tall(a);
}

}  // namespace

Svd svd(const Matrix& a) {
  SUBSPAR_REQUIRE(!a.empty());
  if (a.rows() >= a.cols()) return svd_of_tall(a);
  Svd t = svd_of_tall(a.transposed());
  std::swap(t.u, t.v);
  return t;
}

Svd svd_jacobi(const Matrix& a) {
  SUBSPAR_REQUIRE(!a.empty());
  if (a.rows() >= a.cols()) return svd_tall(a);
  Svd t = svd_tall(a.transposed());
  std::swap(t.u, t.v);
  return t;
}

std::size_t numerical_rank(const Vector& sigma, double rel_tol) {
  if (sigma.empty() || sigma[0] <= 0.0) return 0;
  const double cut = rel_tol * sigma[0];
  std::size_t r = 0;
  while (r < sigma.size() && sigma[r] >= cut) ++r;
  return r;
}

}  // namespace subspar
