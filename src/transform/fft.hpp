// Iterative radix-2 complex FFT.
//
// The fast DCTs used by the eigenfunction substrate solver (§2.3.1) and the
// fast-Poisson preconditioner (§2.2.2) are built on this transform.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace subspar {

using Complex = std::complex<double>;

bool is_power_of_two(std::size_t n);

/// In-place forward FFT, X_k = sum_j x_j e^{-2 pi i j k / N}. N must be a
/// power of two.
void fft(std::vector<Complex>& x);

/// In-place inverse FFT including the 1/N normalization.
void ifft(std::vector<Complex>& x);

/// O(N^2) reference DFT for validation in tests (any N).
std::vector<Complex> dft_naive(const std::vector<Complex>& x);

}  // namespace subspar
