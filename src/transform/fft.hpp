// Iterative radix-2 complex FFT.
//
// The fast DCTs used by the eigenfunction substrate solver (§2.3.1) and the
// fast-Poisson preconditioner (§2.2.2) are built on this transform. Hot
// paths (every PCG iteration of both substrate solvers runs several 2-D
// DCTs) go through cached `FftPlan`s, which precompute the bit-reversal
// permutation and the twiddle-factor table once per length instead of
// re-deriving them with sin/cos on every call.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace subspar {

using Complex = std::complex<double>;

bool is_power_of_two(std::size_t n);

/// Precomputed radix-2 FFT of one fixed power-of-two length: bit-reversal
/// permutation plus the e^{-2 pi i k / N} root table, shared by the forward
/// and inverse directions. Plans are immutable after construction and safe
/// to share across threads.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward FFT, X_k = sum_j x_j e^{-2 pi i j k / N}.
  void forward(Complex* x) const;
  /// In-place inverse FFT including the 1/N normalization.
  void inverse(Complex* x) const;

 private:
  void run(Complex* x, bool inverse) const;

  std::size_t n_;
  std::vector<std::size_t> rev_;  ///< bit-reversal permutation
  std::vector<Complex> roots_;    ///< e^{-2 pi i k / N}, k < N/2
};

/// Per-thread plan cache: the returned reference stays valid for the
/// lifetime of the calling thread. All plan-based entry points (fft, ifft,
/// the DCTs, FastPoisson3D) share this cache.
const FftPlan& fft_plan(std::size_t n);

/// In-place forward FFT through the cached plan. N must be a power of two.
void fft(std::vector<Complex>& x);

/// In-place inverse FFT including the 1/N normalization.
void ifft(std::vector<Complex>& x);

/// O(N^2) reference DFT for validation in tests (any N).
std::vector<Complex> dft_naive(const std::vector<Complex>& x);

}  // namespace subspar
