#include "transform/fft.hpp"

#include <cmath>
#include <map>

#include "util/check.hpp"

namespace subspar {
namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

bool is_power_of_two(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

FftPlan::FftPlan(std::size_t n) : n_(n) {
  SUBSPAR_REQUIRE(is_power_of_two(n));
  rev_.resize(n);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    rev_[i] = j;
  }
  roots_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -2.0 * kPi * static_cast<double>(k) / static_cast<double>(n);
    roots_[k] = Complex(std::cos(ang), std::sin(ang));
  }
}

void FftPlan::run(Complex* x, bool inverse) const {
  const std::size_t n = n_;
  if (n <= 1) return;
  for (std::size_t i = 1; i < n; ++i)
    if (i < rev_[i]) std::swap(x[i], x[rev_[i]]);
  // Danielson-Lanczos butterflies; stage `len` uses every (n/len)-th root.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t stride = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex w =
            inverse ? std::conj(roots_[k * stride]) : roots_[k * stride];
        const Complex u = x[i + k];
        const Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
      }
    }
  }
}

void FftPlan::forward(Complex* x) const { run(x, /*inverse=*/false); }

void FftPlan::inverse(Complex* x) const {
  run(x, /*inverse=*/true);
  const double inv = 1.0 / static_cast<double>(n_);
  for (std::size_t i = 0; i < n_; ++i) x[i] *= inv;
}

const FftPlan& fft_plan(std::size_t n) {
  // Per-thread plan cache: thread_local IS the synchronization discipline —
  // no cross-thread sharing, so no capability to annotate and nothing for
  // -Wthread-safety to prove. tools/subspar_lint.py keeps naked mutexes out
  // of this module; a shared cache would have to move onto util/sync.hpp.
  thread_local std::map<std::size_t, FftPlan> cache;
  auto it = cache.find(n);
  if (it == cache.end()) it = cache.emplace(n, FftPlan(n)).first;
  return it->second;
}

void fft(std::vector<Complex>& x) { fft_plan(x.size()).forward(x.data()); }

void ifft(std::vector<Complex>& x) { fft_plan(x.size()).inverse(x.data()); }

std::vector<Complex> dft_naive(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex s(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * kPi * static_cast<double>(j * k) / static_cast<double>(n);
      s += x[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = s;
  }
  return out;
}

}  // namespace subspar
