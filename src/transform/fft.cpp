#include "transform/fft.hpp"

#include <cmath>

#include "util/check.hpp"

namespace subspar {
namespace {
constexpr double kPi = 3.14159265358979323846;

void fft_core(std::vector<Complex>& x, bool inverse) {
  const std::size_t n = x.size();
  SUBSPAR_REQUIRE(is_power_of_two(n));
  if (n <= 1) return;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  // Danielson-Lanczos butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = x[i + k];
        const Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

void fft(std::vector<Complex>& x) { fft_core(x, /*inverse=*/false); }

void ifft(std::vector<Complex>& x) {
  fft_core(x, /*inverse=*/true);
  const double inv = 1.0 / static_cast<double>(x.size());
  for (auto& v : x) v *= inv;
}

std::vector<Complex> dft_naive(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex s(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * kPi * static_cast<double>(j * k) / static_cast<double>(n);
      s += x[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = s;
  }
  return out;
}

}  // namespace subspar
