#include "transform/dct.hpp"

#include <cmath>

#include "transform/fft.hpp"
#include "util/check.hpp"

namespace subspar {
namespace {
constexpr double kPi = 3.14159265358979323846;

// Unnormalized DCT-II, C_k = sum_j x_j cos(pi k (2j+1) / (2N)), via Makhoul's
// even-odd permutation + length-N FFT.
std::vector<double> dct2_unnormalized_fast(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> v(n);
  for (std::size_t j = 0; j < n / 2; ++j) {
    v[j] = Complex(x[2 * j], 0.0);
    v[n - 1 - j] = Complex(x[2 * j + 1], 0.0);
  }
  fft(v);
  std::vector<double> c(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = -kPi * static_cast<double>(k) / (2.0 * static_cast<double>(n));
    c[k] = (Complex(std::cos(ang), std::sin(ang)) * v[k]).real();
  }
  return c;
}

// Inverse of the unnormalized DCT-II above.
std::vector<double> dct3_from_unnormalized_fast(const std::vector<double>& c) {
  const std::size_t n = c.size();
  std::vector<Complex> v(n);
  v[0] = Complex(c[0], 0.0);
  for (std::size_t k = 1; k < n; ++k) {
    // V_k = e^{+i pi k / 2N} (C_k - i C_{N-k}); the conjugate-symmetry of the
    // FFT of the real permuted sequence gives C_{N-k} = -Im(e^{-i pi k/2N} V_k).
    const double ang = kPi * static_cast<double>(k) / (2.0 * static_cast<double>(n));
    v[k] = Complex(std::cos(ang), std::sin(ang)) * Complex(c[k], -c[n - k]);
  }
  ifft(v);
  std::vector<double> x(n);
  for (std::size_t j = 0; j < n / 2; ++j) {
    x[2 * j] = v[j].real();
    x[2 * j + 1] = v[n - 1 - j].real();
  }
  return x;
}

double scale0(std::size_t n) { return std::sqrt(1.0 / static_cast<double>(n)); }
double scalek(std::size_t n) { return std::sqrt(2.0 / static_cast<double>(n)); }

}  // namespace

std::vector<double> dct2(const std::vector<double>& x) {
  const std::size_t n = x.size();
  SUBSPAR_REQUIRE(n > 0);
  if (!is_power_of_two(n) || n == 1) return dct2_naive(x);
  auto c = dct2_unnormalized_fast(x);
  c[0] *= scale0(n);
  const double sk = scalek(n);
  for (std::size_t k = 1; k < n; ++k) c[k] *= sk;
  return c;
}

std::vector<double> dct3(const std::vector<double>& y) {
  const std::size_t n = y.size();
  SUBSPAR_REQUIRE(n > 0);
  if (!is_power_of_two(n) || n == 1) return dct3_naive(y);
  std::vector<double> c(n);
  c[0] = y[0] / scale0(n);
  const double sk = scalek(n);
  for (std::size_t k = 1; k < n; ++k) c[k] = y[k] / sk;
  // The unnormalized inverse reconstructs x from C with the implicit factor
  // (2/N) sum' (DCT-II/DCT-III duality); fold it in here.
  auto x = dct3_from_unnormalized_fast(c);
  // dct3_from_unnormalized_fast returns x such that
  // dct2_unnormalized(x') = c with x' = x; the pair is exactly inverse, so
  // no further scaling is needed.
  return x;
}

std::vector<double> dct2_naive(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<double> y(n);
  for (std::size_t k = 0; k < n; ++k) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      s += x[j] * std::cos(kPi * static_cast<double>(k) * (2.0 * static_cast<double>(j) + 1.0) /
                           (2.0 * static_cast<double>(n)));
    y[k] = s * (k == 0 ? scale0(n) : scalek(n));
  }
  return y;
}

std::vector<double> dct3_naive(const std::vector<double>& y) {
  const std::size_t n = y.size();
  std::vector<double> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t k = 0; k < n; ++k)
      s += y[k] * (k == 0 ? scale0(n) : scalek(n)) *
           std::cos(kPi * static_cast<double>(k) * (2.0 * static_cast<double>(j) + 1.0) /
                    (2.0 * static_cast<double>(n)));
    x[j] = s;
  }
  return x;
}

namespace {

template <typename Transform1D>
void separable_2d(std::vector<double>& a, std::size_t rows, std::size_t cols,
                  Transform1D&& t1d) {
  SUBSPAR_REQUIRE(a.size() == rows * cols);
  std::vector<double> buf;
  // Rows.
  for (std::size_t i = 0; i < rows; ++i) {
    buf.assign(a.begin() + static_cast<std::ptrdiff_t>(i * cols),
               a.begin() + static_cast<std::ptrdiff_t>((i + 1) * cols));
    auto out = t1d(buf);
    std::copy(out.begin(), out.end(), a.begin() + static_cast<std::ptrdiff_t>(i * cols));
  }
  // Columns.
  std::vector<double> colbuf(rows);
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t i = 0; i < rows; ++i) colbuf[i] = a[i * cols + j];
    auto out = t1d(colbuf);
    for (std::size_t i = 0; i < rows; ++i) a[i * cols + j] = out[i];
  }
}

}  // namespace

void dct2_2d(std::vector<double>& a, std::size_t rows, std::size_t cols) {
  separable_2d(a, rows, cols, [](const std::vector<double>& v) { return dct2(v); });
}

void dct3_2d(std::vector<double>& a, std::size_t rows, std::size_t cols) {
  separable_2d(a, rows, cols, [](const std::vector<double>& v) { return dct3(v); });
}

}  // namespace subspar
