#include "transform/dct.hpp"

#include <cmath>
#include <map>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace subspar {
namespace {
constexpr double kPi = 3.14159265358979323846;

double scale0(std::size_t n) { return std::sqrt(1.0 / static_cast<double>(n)); }
double scalek(std::size_t n) { return std::sqrt(2.0 / static_cast<double>(n)); }

}  // namespace

DctPlan::DctPlan(std::size_t n) : n_(n), fast_(is_power_of_two(n) && n > 1) {
  SUBSPAR_REQUIRE(n > 0);
  s0_ = scale0(n);
  sk_ = scalek(n);
  if (fast_) {
    (void)fft_plan(n);  // warm the FFT plan for this thread
    tw_cos_.resize(n);
    tw_sin_.resize(n);
    tw_cos_f_.resize(n);
    tw_sin_f_.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      const double ang = -kPi * static_cast<double>(k) / (2.0 * static_cast<double>(n));
      tw_cos_[k] = std::cos(ang);
      tw_sin_[k] = std::sin(ang);
      tw_cos_f_[k] = static_cast<float>(tw_cos_[k]);
      tw_sin_f_[k] = static_cast<float>(tw_sin_[k]);
    }
    scratch_.resize(n);
  } else {
    // Dense orthonormal DCT-II matrix, row-major: one trigonometric table
    // instead of O(N^2) cos calls per transform. The transpose gives dct3
    // contiguous rows (a plain dot per output), and the fp32 mirrors feed
    // the kMixed path.
    dense_.resize(n * n);
    dense_t_.resize(n * n);
    dense_f_.resize(n * n);
    dense_t_f_.resize(n * n);
    for (std::size_t k = 0; k < n; ++k) {
      const double s = k == 0 ? s0_ : sk_;
      for (std::size_t j = 0; j < n; ++j)
        dense_[k * n + j] = s * std::cos(kPi * static_cast<double>(k) *
                                         (2.0 * static_cast<double>(j) + 1.0) /
                                         (2.0 * static_cast<double>(n)));
    }
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t j = 0; j < n; ++j) {
        dense_t_[j * n + k] = dense_[k * n + j];
        dense_f_[k * n + j] = static_cast<float>(dense_[k * n + j]);
        dense_t_f_[j * n + k] = static_cast<float>(dense_[k * n + j]);
      }
    }
  }
}

void DctPlan::dct2(double* x, Precision precision) const {
  const std::size_t n = n_;
  const KernelOps& ops = kernel_ops();
  if (!fast_) {
    // Dense rows are contiguous: one backend dot per output (the scalar
    // backend's dot is the original ascending-j loop, bit for bit).
    std::vector<double> y(n, 0.0);
    if (precision == Precision::kMixed) {
      for (std::size_t k = 0; k < n; ++k) y[k] = ops.dot_f32(dense_f_.data() + k * n, x, n);
    } else {
      for (std::size_t k = 0; k < n; ++k) y[k] = ops.dot_f64(dense_.data() + k * n, x, n);
    }
    for (std::size_t k = 0; k < n; ++k) x[k] = y[k];
    return;
  }
  // Makhoul even-odd permutation + length-N FFT.
  Complex* v = scratch_.data();
  for (std::size_t j = 0; j < n / 2; ++j) {
    v[j] = Complex(x[2 * j], 0.0);
    v[n - 1 - j] = Complex(x[2 * j + 1], 0.0);
  }
  fft_plan(n).forward(v);
  // Post-twiddle on the backend; std::complex<double> is array-compatible
  // with interleaved (re, im) doubles by the standard's layout guarantee.
  const double* vd = reinterpret_cast<const double*>(v);
  if (precision == Precision::kMixed)
    ops.dct2_post_f32(tw_cos_f_.data(), tw_sin_f_.data(), vd, x, n, s0_, sk_);
  else
    ops.dct2_post_f64(tw_cos_.data(), tw_sin_.data(), vd, x, n, s0_, sk_);
}

void DctPlan::dct3(double* x, Precision precision) const {
  const std::size_t n = n_;
  const KernelOps& ops = kernel_ops();
  if (!fast_) {
    // dct3 is the transpose product; dense_t_ makes each output a
    // contiguous dot in the original ascending-k accumulation order.
    std::vector<double> y(n, 0.0);
    if (precision == Precision::kMixed) {
      for (std::size_t j = 0; j < n; ++j) y[j] = ops.dot_f32(dense_t_f_.data() + j * n, x, n);
    } else {
      for (std::size_t j = 0; j < n; ++j) y[j] = ops.dot_f64(dense_t_.data() + j * n, x, n);
    }
    for (std::size_t j = 0; j < n; ++j) x[j] = y[j];
    return;
  }
  // Pre-twiddle on the backend: V_k = e^{+i pi k / 2N} (C_k - i C_{N-k});
  // the conjugate-symmetry of the FFT of the real permuted sequence gives
  // C_{N-k} = -Im(e^{-i pi k/2N} V_k). e^{+i a} has cos = tw_cos,
  // sin = -tw_sin.
  Complex* v = scratch_.data();
  double* vd = reinterpret_cast<double*>(v);
  if (precision == Precision::kMixed)
    ops.dct3_pre_f32(tw_cos_f_.data(), tw_sin_f_.data(), x, vd, n, s0_, sk_);
  else
    ops.dct3_pre_f64(tw_cos_.data(), tw_sin_.data(), x, vd, n, s0_, sk_);
  fft_plan(n).inverse(v);
  for (std::size_t j = 0; j < n / 2; ++j) {
    x[2 * j] = v[j].real();
    x[2 * j + 1] = v[n - 1 - j].real();
  }
}

const DctPlan& dct_plan(std::size_t n) {
  // Per-thread plan cache: thread_local IS the synchronization discipline
  // (see fft.cpp); keep this module mutex-free per tools/subspar_lint.py.
  thread_local std::map<std::size_t, DctPlan> cache;
  auto it = cache.find(n);
  if (it == cache.end()) it = cache.emplace(n, DctPlan(n)).first;
  return it->second;
}

std::vector<double> dct2(const std::vector<double>& x) {
  SUBSPAR_REQUIRE(!x.empty());
  std::vector<double> y = x;
  dct_plan(y.size()).dct2(y.data());
  return y;
}

std::vector<double> dct3(const std::vector<double>& y) {
  SUBSPAR_REQUIRE(!y.empty());
  std::vector<double> x = y;
  dct_plan(x.size()).dct3(x.data());
  return x;
}

std::vector<double> dct2_naive(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<double> y(n);
  for (std::size_t k = 0; k < n; ++k) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      s += x[j] * std::cos(kPi * static_cast<double>(k) * (2.0 * static_cast<double>(j) + 1.0) /
                           (2.0 * static_cast<double>(n)));
    y[k] = s * (k == 0 ? scale0(n) : scalek(n));
  }
  return y;
}

std::vector<double> dct3_naive(const std::vector<double>& y) {
  const std::size_t n = y.size();
  std::vector<double> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t k = 0; k < n; ++k)
      s += y[k] * (k == 0 ? scale0(n) : scalek(n)) *
           std::cos(kPi * static_cast<double>(k) * (2.0 * static_cast<double>(j) + 1.0) /
                    (2.0 * static_cast<double>(n)));
    x[j] = s;
  }
  return x;
}

namespace {

// One grid: rows through the length-`cols` plan in place, columns gathered
// through the length-`rows` plan. No per-row allocation; one column buffer.
void separable_2d_planned(double* a, std::size_t rows, std::size_t cols, bool forward,
                          Precision precision) {
  const DctPlan& row_plan = dct_plan(cols);
  const DctPlan& col_plan = dct_plan(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    double* row = a + i * cols;
    forward ? row_plan.dct2(row, precision) : row_plan.dct3(row, precision);
  }
  std::vector<double> colbuf(rows);
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t i = 0; i < rows; ++i) colbuf[i] = a[i * cols + j];
    forward ? col_plan.dct2(colbuf.data(), precision)
            : col_plan.dct3(colbuf.data(), precision);
    for (std::size_t i = 0; i < rows; ++i) a[i * cols + j] = colbuf[i];
  }
}

void separable_2d_many(std::vector<double>& a, std::size_t rows, std::size_t cols,
                       std::size_t batch, bool forward, Precision precision) {
  SUBSPAR_REQUIRE(a.size() == batch * rows * cols);
  const std::size_t grid = rows * cols;
  parallel_for(batch, [&](std::size_t b) {
    separable_2d_planned(a.data() + b * grid, rows, cols, forward, precision);
  });
}

}  // namespace

void dct2_2d(std::vector<double>& a, std::size_t rows, std::size_t cols,
             Precision precision) {
  SUBSPAR_REQUIRE(a.size() == rows * cols);
  separable_2d_planned(a.data(), rows, cols, /*forward=*/true, precision);
}

void dct3_2d(std::vector<double>& a, std::size_t rows, std::size_t cols,
             Precision precision) {
  SUBSPAR_REQUIRE(a.size() == rows * cols);
  separable_2d_planned(a.data(), rows, cols, /*forward=*/false, precision);
}

void dct2_2d_many(std::vector<double>& a, std::size_t rows, std::size_t cols,
                  std::size_t batch, Precision precision) {
  separable_2d_many(a, rows, cols, batch, /*forward=*/true, precision);
}

void dct3_2d_many(std::vector<double>& a, std::size_t rows, std::size_t cols,
                  std::size_t batch, Precision precision) {
  separable_2d_many(a, rows, cols, batch, /*forward=*/false, precision);
}

}  // namespace subspar
