#include "transform/dct.hpp"

#include <cmath>
#include <map>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace subspar {
namespace {
constexpr double kPi = 3.14159265358979323846;

double scale0(std::size_t n) { return std::sqrt(1.0 / static_cast<double>(n)); }
double scalek(std::size_t n) { return std::sqrt(2.0 / static_cast<double>(n)); }

}  // namespace

DctPlan::DctPlan(std::size_t n) : n_(n), fast_(is_power_of_two(n) && n > 1) {
  SUBSPAR_REQUIRE(n > 0);
  s0_ = scale0(n);
  sk_ = scalek(n);
  if (fast_) {
    (void)fft_plan(n);  // warm the FFT plan for this thread
    tw_cos_.resize(n);
    tw_sin_.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      const double ang = -kPi * static_cast<double>(k) / (2.0 * static_cast<double>(n));
      tw_cos_[k] = std::cos(ang);
      tw_sin_[k] = std::sin(ang);
    }
    scratch_.resize(n);
  } else {
    // Dense orthonormal DCT-II matrix, row-major: one trigonometric table
    // instead of O(N^2) cos calls per transform.
    dense_.resize(n * n);
    for (std::size_t k = 0; k < n; ++k) {
      const double s = k == 0 ? s0_ : sk_;
      for (std::size_t j = 0; j < n; ++j)
        dense_[k * n + j] = s * std::cos(kPi * static_cast<double>(k) *
                                         (2.0 * static_cast<double>(j) + 1.0) /
                                         (2.0 * static_cast<double>(n)));
    }
  }
}

void DctPlan::dct2(double* x) const {
  const std::size_t n = n_;
  if (!fast_) {
    std::vector<double> y(n, 0.0);
    for (std::size_t k = 0; k < n; ++k) {
      double s = 0.0;
      const double* row = dense_.data() + k * n;
      for (std::size_t j = 0; j < n; ++j) s += row[j] * x[j];
      y[k] = s;
    }
    for (std::size_t k = 0; k < n; ++k) x[k] = y[k];
    return;
  }
  // Makhoul even-odd permutation + length-N FFT.
  Complex* v = scratch_.data();
  for (std::size_t j = 0; j < n / 2; ++j) {
    v[j] = Complex(x[2 * j], 0.0);
    v[n - 1 - j] = Complex(x[2 * j + 1], 0.0);
  }
  fft_plan(n).forward(v);
  x[0] = v[0].real() * s0_;
  for (std::size_t k = 1; k < n; ++k)
    x[k] = (tw_cos_[k] * v[k].real() - tw_sin_[k] * v[k].imag()) * sk_;
}

void DctPlan::dct3(double* x) const {
  const std::size_t n = n_;
  if (!fast_) {
    std::vector<double> y(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += dense_[k * n + j] * x[k];
      y[j] = s;
    }
    for (std::size_t j = 0; j < n; ++j) x[j] = y[j];
    return;
  }
  Complex* v = scratch_.data();
  v[0] = Complex(x[0] / s0_, 0.0);
  for (std::size_t k = 1; k < n; ++k) {
    // V_k = e^{+i pi k / 2N} (C_k - i C_{N-k}); the conjugate-symmetry of
    // the FFT of the real permuted sequence gives C_{N-k} =
    // -Im(e^{-i pi k/2N} V_k). e^{+i a} has cos = tw_cos, sin = -tw_sin.
    const double ck = x[k] / sk_;
    const double cnk = x[n - k] / sk_;
    const double c = tw_cos_[k], s = -tw_sin_[k];
    v[k] = Complex(c * ck + s * cnk, s * ck - c * cnk);
  }
  fft_plan(n).inverse(v);
  for (std::size_t j = 0; j < n / 2; ++j) {
    x[2 * j] = v[j].real();
    x[2 * j + 1] = v[n - 1 - j].real();
  }
}

const DctPlan& dct_plan(std::size_t n) {
  // Per-thread plan cache: thread_local IS the synchronization discipline
  // (see fft.cpp); keep this module mutex-free per tools/subspar_lint.py.
  thread_local std::map<std::size_t, DctPlan> cache;
  auto it = cache.find(n);
  if (it == cache.end()) it = cache.emplace(n, DctPlan(n)).first;
  return it->second;
}

std::vector<double> dct2(const std::vector<double>& x) {
  SUBSPAR_REQUIRE(!x.empty());
  std::vector<double> y = x;
  dct_plan(y.size()).dct2(y.data());
  return y;
}

std::vector<double> dct3(const std::vector<double>& y) {
  SUBSPAR_REQUIRE(!y.empty());
  std::vector<double> x = y;
  dct_plan(x.size()).dct3(x.data());
  return x;
}

std::vector<double> dct2_naive(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<double> y(n);
  for (std::size_t k = 0; k < n; ++k) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      s += x[j] * std::cos(kPi * static_cast<double>(k) * (2.0 * static_cast<double>(j) + 1.0) /
                           (2.0 * static_cast<double>(n)));
    y[k] = s * (k == 0 ? scale0(n) : scalek(n));
  }
  return y;
}

std::vector<double> dct3_naive(const std::vector<double>& y) {
  const std::size_t n = y.size();
  std::vector<double> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (std::size_t k = 0; k < n; ++k)
      s += y[k] * (k == 0 ? scale0(n) : scalek(n)) *
           std::cos(kPi * static_cast<double>(k) * (2.0 * static_cast<double>(j) + 1.0) /
                    (2.0 * static_cast<double>(n)));
    x[j] = s;
  }
  return x;
}

namespace {

// One grid: rows through the length-`cols` plan in place, columns gathered
// through the length-`rows` plan. No per-row allocation; one column buffer.
void separable_2d_planned(double* a, std::size_t rows, std::size_t cols, bool forward) {
  const DctPlan& row_plan = dct_plan(cols);
  const DctPlan& col_plan = dct_plan(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    double* row = a + i * cols;
    forward ? row_plan.dct2(row) : row_plan.dct3(row);
  }
  std::vector<double> colbuf(rows);
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t i = 0; i < rows; ++i) colbuf[i] = a[i * cols + j];
    forward ? col_plan.dct2(colbuf.data()) : col_plan.dct3(colbuf.data());
    for (std::size_t i = 0; i < rows; ++i) a[i * cols + j] = colbuf[i];
  }
}

void separable_2d_many(std::vector<double>& a, std::size_t rows, std::size_t cols,
                       std::size_t batch, bool forward) {
  SUBSPAR_REQUIRE(a.size() == batch * rows * cols);
  const std::size_t grid = rows * cols;
  parallel_for(batch, [&](std::size_t b) {
    separable_2d_planned(a.data() + b * grid, rows, cols, forward);
  });
}

}  // namespace

void dct2_2d(std::vector<double>& a, std::size_t rows, std::size_t cols) {
  SUBSPAR_REQUIRE(a.size() == rows * cols);
  separable_2d_planned(a.data(), rows, cols, /*forward=*/true);
}

void dct3_2d(std::vector<double>& a, std::size_t rows, std::size_t cols) {
  SUBSPAR_REQUIRE(a.size() == rows * cols);
  separable_2d_planned(a.data(), rows, cols, /*forward=*/false);
}

void dct2_2d_many(std::vector<double>& a, std::size_t rows, std::size_t cols,
                  std::size_t batch) {
  separable_2d_many(a, rows, cols, batch, /*forward=*/true);
}

void dct3_2d_many(std::vector<double>& a, std::size_t rows, std::size_t cols,
                  std::size_t batch) {
  separable_2d_many(a, rows, cols, batch, /*forward=*/false);
}

}  // namespace subspar
