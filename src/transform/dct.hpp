// Orthonormal discrete cosine transforms (DCT-II and its inverse DCT-III).
//
// The cosine modes cos(m pi (j+1/2)/N) are the eigenvectors of both the
// Neumann-boundary grid Laplacian (fast-Poisson preconditioner, §2.2.2) and
// the layered-substrate surface operator (eigenfunction solver, §2.3.1), so
// these transforms diagonalize both.
//
// Convention: with s_0 = sqrt(1/N), s_k = sqrt(2/N),
//   (dct2 x)_k = s_k * sum_j x_j cos(pi k (2j+1) / (2N)),
// which makes the transform matrix orthogonal: dct3 = dct2^T = dct2^{-1}.
//
// Hot paths go through cached `DctPlan`s (precomputed Makhoul twiddles, the
// underlying FftPlan, and reusable scratch); the batched `*_2d_many` entry
// points transform a stack of independent grids and fan out over the
// SUBSPAR_THREADS pool.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/backend.hpp"
#include "linalg/vector.hpp"
#include "transform/fft.hpp"

namespace subspar {

/// Precomputed orthonormal DCT-II / DCT-III of one fixed length: the
/// Makhoul e^{-i pi k / 2N} twiddle table, the normalization scales, and a
/// reusable complex scratch buffer. Power-of-two lengths run through the
/// cached FftPlan in O(N log N); other lengths precompute the dense
/// transform matrix once and apply it in O(N^2) without any trigonometry
/// per call.
///
/// The scratch buffer makes the transform methods non-reentrant: share
/// plans only through the per-thread `dct_plan()` cache (or give each
/// thread its own instance).
class DctPlan {
 public:
  explicit DctPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place orthonormal DCT-II of x[0..n). The twiddle/dense loops run on
  /// the active kernel backend; Precision::kMixed reads the fp32 mirror
  /// tables (fp64 data and accumulation — the FFT core stays fp64 either
  /// way), trading one fp32 rounding per table entry for half the table
  /// bandwidth.
  void dct2(double* x, Precision precision = Precision::kFp64) const;
  /// In-place orthonormal DCT-III (inverse of dct2).
  void dct3(double* x, Precision precision = Precision::kFp64) const;

 private:
  std::size_t n_;
  bool fast_;                       ///< power-of-two FFT path
  double s0_ = 0.0, sk_ = 0.0;      ///< orthonormal scales sqrt(1/N), sqrt(2/N)
  std::vector<double> tw_cos_;      ///< cos(-pi k / 2N)
  std::vector<double> tw_sin_;      ///< sin(-pi k / 2N)
  std::vector<float> tw_cos_f_;     ///< fp32 mirror of tw_cos_ (kMixed)
  std::vector<float> tw_sin_f_;     ///< fp32 mirror of tw_sin_ (kMixed)
  std::vector<double> dense_;       ///< row-major dct2 matrix (slow path)
  std::vector<double> dense_t_;     ///< its transpose: dct3 rows contiguous
  std::vector<float> dense_f_;      ///< fp32 mirror of dense_ (kMixed)
  std::vector<float> dense_t_f_;    ///< fp32 mirror of dense_t_ (kMixed)
  mutable std::vector<Complex> scratch_;
};

/// Per-thread plan cache (same lifetime contract as fft_plan()).
const DctPlan& dct_plan(std::size_t n);

/// Orthonormal DCT-II through the cached plan. Fast (FFT-based) for
/// power-of-two N, O(N^2) otherwise.
std::vector<double> dct2(const std::vector<double>& x);
/// Orthonormal DCT-III (inverse of dct2).
std::vector<double> dct3(const std::vector<double>& x);

/// O(N^2) reference implementations (any N), for validation.
std::vector<double> dct2_naive(const std::vector<double>& x);
std::vector<double> dct3_naive(const std::vector<double>& x);

/// Separable 2-D transforms on a row-major rows x cols buffer, in place.
void dct2_2d(std::vector<double>& a, std::size_t rows, std::size_t cols,
             Precision precision = Precision::kFp64);
void dct3_2d(std::vector<double>& a, std::size_t rows, std::size_t cols,
             Precision precision = Precision::kFp64);

/// Batched separable 2-D transforms: `a` holds `batch` independent
/// row-major rows x cols grids back to back (size batch * rows * cols).
/// Grids are transformed independently (identical per-grid arithmetic to
/// the single-grid calls) and fan out over the SUBSPAR_THREADS pool, so
/// results are bit-identical for any thread count.
void dct2_2d_many(std::vector<double>& a, std::size_t rows, std::size_t cols,
                  std::size_t batch, Precision precision = Precision::kFp64);
void dct3_2d_many(std::vector<double>& a, std::size_t rows, std::size_t cols,
                  std::size_t batch, Precision precision = Precision::kFp64);

}  // namespace subspar
