// Orthonormal discrete cosine transforms (DCT-II and its inverse DCT-III).
//
// The cosine modes cos(m pi (j+1/2)/N) are the eigenvectors of both the
// Neumann-boundary grid Laplacian (fast-Poisson preconditioner, §2.2.2) and
// the layered-substrate surface operator (eigenfunction solver, §2.3.1), so
// these transforms diagonalize both.
//
// Convention: with s_0 = sqrt(1/N), s_k = sqrt(2/N),
//   (dct2 x)_k = s_k * sum_j x_j cos(pi k (2j+1) / (2N)),
// which makes the transform matrix orthogonal: dct3 = dct2^T = dct2^{-1}.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector.hpp"

namespace subspar {

/// Orthonormal DCT-II. Fast (FFT-based) for power-of-two N, O(N^2) otherwise.
std::vector<double> dct2(const std::vector<double>& x);
/// Orthonormal DCT-III (inverse of dct2).
std::vector<double> dct3(const std::vector<double>& x);

/// O(N^2) reference implementations (any N), for validation.
std::vector<double> dct2_naive(const std::vector<double>& x);
std::vector<double> dct3_naive(const std::vector<double>& x);

/// Separable 2-D transforms on a row-major rows x cols buffer, in place.
void dct2_2d(std::vector<double>& a, std::size_t rows, std::size_t cols);
void dct3_2d(std::vector<double>& a, std::size_t rows, std::size_t cols);

}  // namespace subspar
