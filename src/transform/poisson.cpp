#include "transform/poisson.hpp"

#include <cmath>

#include "transform/dct.hpp"
#include "transform/fft.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace subspar {
namespace {
constexpr double kPi = 3.14159265358979323846;

// Apply the 1-D orthonormal DCT (or its inverse) along one dimension of the
// 3-D brick, through the cached plan (no per-line allocation; x-lines are
// contiguous and transform in place).
void transform_dim(std::vector<double>& a, const PoissonGrid& g, int dim, bool forward) {
  const std::size_t nx = g.nx, ny = g.ny, nz = g.nz;
  const std::size_t len = dim == 0 ? nx : (dim == 1 ? ny : nz);
  const DctPlan& plan = dct_plan(len);
  if (dim == 0) {
    for (std::size_t o2 = 0; o2 < nz; ++o2)
      for (std::size_t o1 = 0; o1 < ny; ++o1) {
        double* line = a.data() + g.index(0, o1, o2);
        forward ? plan.dct2(line) : plan.dct3(line);
      }
    return;
  }
  std::vector<double> buf(len);
  const std::size_t outer1 = nx;
  const std::size_t outer2 = dim == 2 ? ny : nz;
  for (std::size_t o2 = 0; o2 < outer2; ++o2) {
    for (std::size_t o1 = 0; o1 < outer1; ++o1) {
      for (std::size_t i = 0; i < len; ++i)
        buf[i] = a[dim == 1 ? g.index(o1, i, o2) : g.index(o1, o2, i)];
      forward ? plan.dct2(buf.data()) : plan.dct3(buf.data());
      for (std::size_t i = 0; i < len; ++i)
        a[dim == 1 ? g.index(o1, i, o2) : g.index(o1, o2, i)] = buf[i];
    }
  }
}

}  // namespace

FastPoisson3D::FastPoisson3D(PoissonGrid grid) : grid_(std::move(grid)) {
  SUBSPAR_REQUIRE(grid_.nx > 0 && grid_.ny > 0 && grid_.nz > 0);
  SUBSPAR_REQUIRE(is_power_of_two(grid_.nx) && is_power_of_two(grid_.ny));
  SUBSPAR_REQUIRE(grid_.lateral_g.size() == grid_.nz);
  SUBSPAR_REQUIRE(grid_.vertical_g.size() + 1 == grid_.nz || grid_.nz == 1);
  mu_x_.resize(grid_.nx);
  mu_y_.resize(grid_.ny);
  for (std::size_t k = 0; k < grid_.nx; ++k)
    mu_x_[k] = 2.0 - 2.0 * std::cos(kPi * static_cast<double>(k) / static_cast<double>(grid_.nx));
  for (std::size_t k = 0; k < grid_.ny; ++k)
    mu_y_[k] = 2.0 - 2.0 * std::cos(kPi * static_cast<double>(k) / static_cast<double>(grid_.ny));
}

Vector FastPoisson3D::solve(const Vector& b) const {
  const auto& g = grid_;
  SUBSPAR_REQUIRE(b.size() == g.size());
  std::vector<double> a(b.begin(), b.end());
  transform_dim(a, g, /*dim=*/0, /*forward=*/true);
  transform_dim(a, g, /*dim=*/1, /*forward=*/true);

  // Per-(kx, ky) tridiagonal solve along z (Thomas algorithm).
  const std::size_t nz = g.nz;
  std::vector<double> diag(nz), rhs(nz), cprime(nz);
  for (std::size_t ky = 0; ky < g.ny; ++ky) {
    for (std::size_t kx = 0; kx < g.nx; ++kx) {
      const double lat = mu_x_[kx] + mu_y_[ky];
      for (std::size_t z = 0; z < nz; ++z) {
        double d = g.lateral_g[z] * lat;
        if (z > 0) d += g.vertical_g[z - 1];
        if (z + 1 < nz) d += g.vertical_g[z];
        if (z == nz - 1) d += g.top_g;
        if (z == 0) d += g.bottom_g;
        diag[z] = d;
        rhs[z] = a[g.index(kx, ky, z)];
      }
      if (kx == 0 && ky == 0 && g.top_g == 0.0 && g.bottom_g == 0.0) {
        // Floating constant mode: anchor weakly so the solve stays defined
        // (approximates the pseudo-inverse with a huge finite response).
        double gmax = 0.0;
        for (double v : g.vertical_g) gmax = std::max(gmax, v);
        for (double v : g.lateral_g) gmax = std::max(gmax, v);
        diag[nz - 1] += 1e-10 * (gmax > 0.0 ? gmax : 1.0);
      }
      // Thomas forward sweep.
      double d0 = diag[0];
      SUBSPAR_ENSURE(d0 != 0.0);
      cprime[0] = (nz > 1) ? -g.vertical_g[0] / d0 : 0.0;
      rhs[0] /= d0;
      for (std::size_t z = 1; z < nz; ++z) {
        const double lower = -g.vertical_g[z - 1];
        const double m = diag[z] - lower * cprime[z - 1];
        SUBSPAR_ENSURE(m != 0.0);
        cprime[z] = (z + 1 < nz) ? -g.vertical_g[z] / m : 0.0;
        rhs[z] = (rhs[z] - lower * rhs[z - 1]) / m;
      }
      for (std::size_t z = nz - 1; z-- > 0;) rhs[z] -= cprime[z] * rhs[z + 1];
      for (std::size_t z = 0; z < nz; ++z) a[g.index(kx, ky, z)] = rhs[z];
    }
  }

  transform_dim(a, g, /*dim=*/1, /*forward=*/false);
  transform_dim(a, g, /*dim=*/0, /*forward=*/false);
  return Vector(std::move(a));
}

Matrix FastPoisson3D::solve_many(const Matrix& b) const {
  SUBSPAR_REQUIRE(b.rows() == grid_.size());
  Matrix x(b.rows(), b.cols());
  parallel_for(b.cols(), [&](std::size_t j) { x.set_col(j, solve(b.col(j))); });
  return x;
}

Vector FastPoisson3D::apply(const Vector& x) const {
  const auto& g = grid_;
  SUBSPAR_REQUIRE(x.size() == g.size());
  Vector y(g.size());
  for (std::size_t z = 0; z < g.nz; ++z) {
    const double gl = g.lateral_g[z];
    for (std::size_t yy = 0; yy < g.ny; ++yy) {
      for (std::size_t xx = 0; xx < g.nx; ++xx) {
        const std::size_t i = g.index(xx, yy, z);
        double s = 0.0;
        auto couple = [&](std::size_t j, double gc) { s += gc * (x[i] - x[j]); };
        if (xx > 0) couple(g.index(xx - 1, yy, z), gl);
        if (xx + 1 < g.nx) couple(g.index(xx + 1, yy, z), gl);
        if (yy > 0) couple(g.index(xx, yy - 1, z), gl);
        if (yy + 1 < g.ny) couple(g.index(xx, yy + 1, z), gl);
        if (z > 0) couple(g.index(xx, yy, z - 1), g.vertical_g[z - 1]);
        if (z + 1 < g.nz) couple(g.index(xx, yy, z + 1), g.vertical_g[z]);
        if (z == g.nz - 1) s += g.top_g * x[i];
        if (z == 0) s += g.bottom_g * x[i];
        y[i] = s;
      }
    }
  }
  return y;
}

}  // namespace subspar
