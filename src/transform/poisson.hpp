// Fast direct solver for the layered grid-of-resistors Poisson problem with
// uniform boundary conditions on each face (§2.2.2, "fast-solver
// preconditioners").
//
// The lateral (x, y) couplings are diagonalized by 2-D DCTs (Neumann
// sidewalls); what remains is an independent tridiagonal system in z per
// (kx, ky) mode, solved directly. Exact for uniform top-face conditions;
// used as the PCG preconditioner M when the top face mixes contact
// (Dirichlet) and non-contact (Neumann) nodes. The `top_coupling` knob is
// the paper's p parameter: p = 1 gives the pure-Dirichlet preconditioner,
// p = 0 pure-Neumann, intermediate values the area-weighted variant of
// Table 2.1.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"

namespace subspar {

struct PoissonGrid {
  std::size_t nx = 0, ny = 0, nz = 0;  ///< node counts; z index 0 = bottom
  /// Lateral resistor conductance per z-plane (sigma(z) * h).
  std::vector<double> lateral_g;
  /// Vertical conductance between plane j and j+1 (size nz - 1).
  std::vector<double> vertical_g;
  /// Extra diagonal coupling on every top-plane node (Dirichlet ghost
  /// resistor, the paper's p * sigma_L * h). 0 disables.
  double top_g = 0.0;
  /// Extra diagonal coupling on every bottom-plane node (backplane contact).
  double bottom_g = 0.0;

  std::size_t size() const { return nx * ny * nz; }
  std::size_t index(std::size_t x, std::size_t y, std::size_t z) const {
    return x + nx * (y + ny * z);
  }
};

class FastPoisson3D {
 public:
  /// nx and ny must be powers of two (fast DCT path); nz is arbitrary.
  explicit FastPoisson3D(PoissonGrid grid);

  /// Exact solve of M x = b in O(N log N). If the grid is floating (no top
  /// or bottom anchors), the all-constant mode is regularized by a tiny
  /// anchor so M stays usable as an SPD preconditioner.
  Vector solve(const Vector& b) const;

  /// X = M^{-1} B for k right-hand-side columns, fanned out over the
  /// util/parallel pool. Per-column arithmetic is exactly solve()'s, so
  /// columns are bit-identical to single solves for any SUBSPAR_THREADS.
  Matrix solve_many(const Matrix& b) const;

  /// y = M x (real-space stencil application) for validation.
  Vector apply(const Vector& x) const;

  const PoissonGrid& grid() const { return grid_; }

 private:
  PoissonGrid grid_;
  std::vector<double> mu_x_, mu_y_;  // Neumann Laplacian eigenvalues
};

}  // namespace subspar
