#include "substrate/multigrid.hpp"

#include <cmath>

#include "linalg/cholesky.hpp"
#include "util/check.hpp"

namespace subspar {

SparseMatrix assemble_grid_laplacian(const GridSpec& s) {
  SUBSPAR_REQUIRE(s.nx > 0 && s.ny > 0 && s.nz > 0 && s.h > 0.0);
  SUBSPAR_REQUIRE(s.sigma.size() == s.nz);
  SUBSPAR_REQUIRE(s.g_top.size() == s.nx * s.ny);
  SUBSPAR_REQUIRE(s.removed.empty() || s.removed.size() == s.size());
  auto gone = [&](std::size_t i) { return !s.removed.empty() && s.removed[i]; };

  std::vector<double> gz(s.nz > 1 ? s.nz - 1 : 0);
  for (std::size_t z = 0; z + 1 < s.nz; ++z)
    gz[z] = 2.0 * s.h * s.sigma[z] * s.sigma[z + 1] / (s.sigma[z] + s.sigma[z + 1]);

  SparseBuilder bld(s.size(), s.size());
  for (std::size_t z = 0; z < s.nz; ++z) {
    const double gl = s.sigma[z] * s.h;
    for (std::size_t y = 0; y < s.ny; ++y) {
      for (std::size_t x = 0; x < s.nx; ++x) {
        const std::size_t i = s.index(x, y, z);
        if (gone(i)) {
          bld.add(i, i, 1.0);
          continue;
        }
        double diag = 0.0;
        auto stamp = [&](std::size_t j, double g) {
          if (gone(j)) return;
          bld.add(i, j, -g);
          diag += g;
        };
        if (x > 0) stamp(s.index(x - 1, y, z), gl);
        if (x + 1 < s.nx) stamp(s.index(x + 1, y, z), gl);
        if (y > 0) stamp(s.index(x, y - 1, z), gl);
        if (y + 1 < s.ny) stamp(s.index(x, y + 1, z), gl);
        if (z > 0) stamp(s.index(x, y, z - 1), gz[z - 1]);
        if (z + 1 < s.nz) stamp(s.index(x, y, z + 1), gz[z]);
        if (z == s.nz - 1) diag += s.g_top[x + s.nx * y];
        if (z == 0) diag += s.g_bottom;
        bld.add(i, i, diag > 0.0 ? diag : 1.0);
      }
    }
  }
  return SparseMatrix(bld);
}

namespace {

// Halves the marked dimensions, aggregating coefficients so that net
// conductances are preserved in the multigrid sense: plane conductivities
// average, per-node contact couplings sum over the merged footprint and
// rescale by 1/2 (conductance of a resistor grid scales with h).
GridSpec coarsen(const GridSpec& f, bool cx, bool cy, bool cz) {
  GridSpec c;
  c.nx = cx ? f.nx / 2 : f.nx;
  c.ny = cy ? f.ny / 2 : f.ny;
  c.nz = cz ? f.nz / 2 : f.nz;
  c.h = f.h * ((cx || cy || cz) ? 2.0 : 1.0);
  c.sigma.resize(c.nz);
  for (std::size_t z = 0; z < c.nz; ++z)
    c.sigma[z] = cz ? 0.5 * (f.sigma[2 * z] + f.sigma[2 * z + 1]) : f.sigma[z];
  c.g_top.assign(c.nx * c.ny, 0.0);
  const double lateral_merge = (cx ? 2.0 : 1.0) * (cy ? 2.0 : 1.0);
  for (std::size_t y = 0; y < f.ny; ++y)
    for (std::size_t x = 0; x < f.nx; ++x) {
      const std::size_t xx = cx ? x / 2 : x, yy = cy ? y / 2 : y;
      c.g_top[xx + c.nx * yy] += f.g_top[x + f.nx * y] / lateral_merge;
    }
  // Conductance per node grows with h: rescale aggregated couplings.
  for (auto& g : c.g_top) g *= c.h / f.h;
  c.g_bottom = f.g_bottom * lateral_merge / lateral_merge * (c.h / f.h);
  if (!f.removed.empty()) {
    c.removed.assign(c.size(), 0);
    std::vector<int> votes(c.size(), 0), total(c.size(), 0);
    for (std::size_t z = 0; z < f.nz; ++z)
      for (std::size_t y = 0; y < f.ny; ++y)
        for (std::size_t x = 0; x < f.nx; ++x) {
          const std::size_t ci =
              c.index(cx ? x / 2 : x, cy ? y / 2 : y, cz ? z / 2 : z);
          votes[ci] += f.removed[f.index(x, y, z)];
          ++total[ci];
        }
    for (std::size_t i = 0; i < c.size(); ++i) c.removed[i] = 2 * votes[i] > total[i];
  }
  return c;
}

}  // namespace

GridMultigrid::GridMultigrid(GridSpec fine, MultigridOptions options) : options_(options) {
  Level lvl;
  lvl.spec = std::move(fine);
  lvl.a = assemble_grid_laplacian(lvl.spec);
  levels_.push_back(std::move(lvl));

  while (static_cast<int>(levels_.size()) < options_.max_levels &&
         levels_.back().spec.size() > options_.coarsest_max_nodes) {
    Level& prev = levels_.back();
    const GridSpec& s = prev.spec;
    const bool cx = s.nx % 2 == 0 && s.nx >= 4;
    const bool cy = s.ny % 2 == 0 && s.ny >= 4;
    const bool cz = s.nz % 2 == 0 && s.nz >= 4;
    if (!cx && !cy && !cz) break;  // nothing left to halve
    prev.cx = cx;
    prev.cy = cy;
    prev.cz = cz;
    Level next;
    next.spec = coarsen(s, cx, cy, cz);
    next.a = assemble_grid_laplacian(next.spec);
    levels_.push_back(std::move(next));
  }

  for (Level& l : levels_) {
    l.diag.assign(l.a.rows(), 0);
    for (std::size_t i = 0; i < l.a.rows(); ++i) {
      bool found = false;
      for (std::size_t k = l.a.row_begin(i); k < l.a.row_end(i); ++k) {
        if (l.a.col_index(k) == i) {
          l.diag[i] = k;
          found = true;
        }
      }
      SUBSPAR_ENSURE(found && l.a.value(l.diag[i]) > 0.0);
    }
  }
  coarse_solver_ = std::make_unique<Cholesky>(levels_.back().a.to_dense());
}

GridMultigrid::~GridMultigrid() = default;

const SparseMatrix& GridMultigrid::fine_matrix() const { return levels_.front().a; }

void GridMultigrid::smooth(const Level& lvl, Vector& x, const Vector& b, bool forward) const {
  const SparseMatrix& a = lvl.a;
  const std::size_t n = a.rows();
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t i = forward ? t : n - 1 - t;
    double s = b[i];
    for (std::size_t k = a.row_begin(i); k < a.row_end(i); ++k) {
      const std::size_t j = a.col_index(k);
      if (j != i) s -= a.value(k) * x[j];
    }
    x[i] = s / a.value(lvl.diag[i]);
  }
}

Vector GridMultigrid::restrict_to_coarse(std::size_t fl, const Vector& r) const {
  const Level& f = levels_[fl];
  const GridSpec& fs = f.spec;
  const GridSpec& cs = levels_[fl + 1].spec;
  Vector rc(cs.size());
  for (std::size_t z = 0; z < fs.nz; ++z)
    for (std::size_t y = 0; y < fs.ny; ++y)
      for (std::size_t x = 0; x < fs.nx; ++x)
        rc[cs.index(f.cx ? x / 2 : x, f.cy ? y / 2 : y, f.cz ? z / 2 : z)] +=
            r[fs.index(x, y, z)];
  // Scale so R = P' / 2 (conductance halves per refinement: the Galerkin-
  // consistent weight for piecewise-constant P on a resistor grid).
  rc *= 0.5;
  return rc;
}

Vector GridMultigrid::prolong_to_fine(std::size_t fl, const Vector& xc) const {
  const Level& f = levels_[fl];
  const GridSpec& fs = f.spec;
  const GridSpec& cs = levels_[fl + 1].spec;
  Vector xf(fs.size());
  for (std::size_t z = 0; z < fs.nz; ++z)
    for (std::size_t y = 0; y < fs.ny; ++y)
      for (std::size_t x = 0; x < fs.nx; ++x)
        xf[fs.index(x, y, z)] =
            xc[cs.index(f.cx ? x / 2 : x, f.cy ? y / 2 : y, f.cz ? z / 2 : z)];
  return xf;
}

void GridMultigrid::cycle(std::size_t level, Vector& x, const Vector& b) const {
  if (level + 1 == levels_.size()) {
    x = coarse_solver_->solve(b);
    return;
  }
  const Level& lvl = levels_[level];
  for (int s = 0; s < options_.smoothing_sweeps; ++s) smooth(lvl, x, b, /*forward=*/true);
  const Vector r = b - lvl.a.apply(x);
  const Vector rc = restrict_to_coarse(level, r);
  Vector xc(rc.size());
  cycle(level + 1, xc, rc);
  x += prolong_to_fine(level, xc);
  for (int s = 0; s < options_.smoothing_sweeps; ++s) smooth(lvl, x, b, /*forward=*/false);
}

Vector GridMultigrid::vcycle(const Vector& b) const {
  SUBSPAR_REQUIRE(b.size() == levels_.front().spec.size());
  Vector x(b.size());
  cycle(0, x, b);
  return x;
}

Vector GridMultigrid::solve(const Vector& b, std::size_t cycles) const {
  Vector x(b.size());
  for (std::size_t c = 0; c < cycles; ++c) {
    const Vector r = b - levels_.front().a.apply(x);
    Vector dx(b.size());
    cycle(0, dx, r);
    x += dx;
  }
  return x;
}

}  // namespace subspar
