#include "substrate/multigrid.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace subspar {

SparseMatrix assemble_grid_laplacian(const GridSpec& s) {
  SUBSPAR_REQUIRE(s.nx > 0 && s.ny > 0 && s.nz > 0 && s.h > 0.0);
  SUBSPAR_REQUIRE(s.sigma.size() == s.nz);
  SUBSPAR_REQUIRE(s.g_top.size() == s.nx * s.ny);
  SUBSPAR_REQUIRE(s.removed.empty() || s.removed.size() == s.size());
  auto gone = [&](std::size_t i) { return !s.removed.empty() && s.removed[i]; };

  std::vector<double> gz(s.nz > 1 ? s.nz - 1 : 0);
  for (std::size_t z = 0; z + 1 < s.nz; ++z)
    gz[z] = 2.0 * s.h * s.sigma[z] * s.sigma[z + 1] / (s.sigma[z] + s.sigma[z + 1]);

  SparseBuilder bld(s.size(), s.size());
  for (std::size_t z = 0; z < s.nz; ++z) {
    const double gl = s.sigma[z] * s.h;
    for (std::size_t y = 0; y < s.ny; ++y) {
      for (std::size_t x = 0; x < s.nx; ++x) {
        const std::size_t i = s.index(x, y, z);
        if (gone(i)) {
          bld.add(i, i, 1.0);
          continue;
        }
        double diag = 0.0;
        auto stamp = [&](std::size_t j, double g) {
          if (gone(j)) return;
          bld.add(i, j, -g);
          diag += g;
        };
        if (x > 0) stamp(s.index(x - 1, y, z), gl);
        if (x + 1 < s.nx) stamp(s.index(x + 1, y, z), gl);
        if (y > 0) stamp(s.index(x, y - 1, z), gl);
        if (y + 1 < s.ny) stamp(s.index(x, y + 1, z), gl);
        if (z > 0) stamp(s.index(x, y, z - 1), gz[z - 1]);
        if (z + 1 < s.nz) stamp(s.index(x, y, z + 1), gz[z]);
        if (z == s.nz - 1) diag += s.g_top[x + s.nx * y];
        if (z == 0) diag += s.g_bottom;
        bld.add(i, i, diag > 0.0 ? diag : 1.0);
      }
    }
  }
  return SparseMatrix(bld);
}

namespace {

// Halves the marked dimensions, aggregating coefficients so that net
// conductances are preserved in the multigrid sense: plane conductivities
// average, per-node contact couplings sum over the merged footprint and
// rescale by 1/2 (conductance of a resistor grid scales with h).
GridSpec coarsen(const GridSpec& f, bool cx, bool cy, bool cz) {
  GridSpec c;
  c.nx = cx ? f.nx / 2 : f.nx;
  c.ny = cy ? f.ny / 2 : f.ny;
  c.nz = cz ? f.nz / 2 : f.nz;
  c.h = f.h * ((cx || cy || cz) ? 2.0 : 1.0);
  c.sigma.resize(c.nz);
  for (std::size_t z = 0; z < c.nz; ++z)
    c.sigma[z] = cz ? 0.5 * (f.sigma[2 * z] + f.sigma[2 * z + 1]) : f.sigma[z];
  c.g_top.assign(c.nx * c.ny, 0.0);
  const double lateral_merge = (cx ? 2.0 : 1.0) * (cy ? 2.0 : 1.0);
  for (std::size_t y = 0; y < f.ny; ++y)
    for (std::size_t x = 0; x < f.nx; ++x) {
      const std::size_t xx = cx ? x / 2 : x, yy = cy ? y / 2 : y;
      c.g_top[xx + c.nx * yy] += f.g_top[x + f.nx * y] / lateral_merge;
    }
  // Conductance per node grows with h: rescale aggregated couplings.
  for (auto& g : c.g_top) g *= c.h / f.h;
  c.g_bottom = f.g_bottom * lateral_merge / lateral_merge * (c.h / f.h);
  if (!f.removed.empty()) {
    c.removed.assign(c.size(), 0);
    std::vector<int> votes(c.size(), 0), total(c.size(), 0);
    for (std::size_t z = 0; z < f.nz; ++z)
      for (std::size_t y = 0; y < f.ny; ++y)
        for (std::size_t x = 0; x < f.nx; ++x) {
          const std::size_t ci =
              c.index(cx ? x / 2 : x, cy ? y / 2 : y, cz ? z / 2 : z);
          votes[ci] += f.removed[f.index(x, y, z)];
          ++total[ci];
        }
    for (std::size_t i = 0; i < c.size(); ++i) c.removed[i] = 2 * votes[i] > total[i];
  }
  return c;
}

}  // namespace

GridMultigrid::GridMultigrid(GridSpec fine, MultigridOptions options) : options_(options) {
  // Zero sweeps would leave M^{-1} = P Ac^{-1} R: rank-deficient, so PCG's
  // rho = z'r can vanish with r != 0 and the recurrence divides by zero.
  SUBSPAR_REQUIRE(options_.smoothing_sweeps >= 1 && options_.max_levels >= 1);
  Level lvl;
  lvl.spec = std::move(fine);
  lvl.a = assemble_grid_laplacian(lvl.spec);
  levels_.push_back(std::move(lvl));

  while (static_cast<int>(levels_.size()) < options_.max_levels &&
         levels_.back().spec.size() > options_.coarsest_max_nodes) {
    Level& prev = levels_.back();
    const GridSpec& s = prev.spec;
    const bool cx = s.nx % 2 == 0 && s.nx >= 4;
    const bool cy = s.ny % 2 == 0 && s.ny >= 4;
    const bool cz = s.nz % 2 == 0 && s.nz >= 4;
    if (!cx && !cy && !cz) break;  // nothing left to halve
    prev.cx = cx;
    prev.cy = cy;
    prev.cz = cz;
    Level next;
    next.spec = coarsen(s, cx, cy, cz);
    next.a = assemble_grid_laplacian(next.spec);
    levels_.push_back(std::move(next));
  }

  for (Level& l : levels_) {
    l.diag.assign(l.a.rows(), 0);
    for (std::size_t i = 0; i < l.a.rows(); ++i) {
      bool found = false;
      for (std::size_t k = l.a.row_begin(i); k < l.a.row_end(i); ++k) {
        if (l.a.col_index(k) == i) {
          l.diag[i] = k;
          found = true;
        }
      }
      SUBSPAR_ENSURE(found && l.a.value(l.diag[i]) > 0.0);
    }
    // Red-black parity classes: the 7-point stencil couples only nodes of
    // opposite (x + y + z) parity, so each class smooths in parallel.
    const GridSpec& sp = l.spec;
    for (std::size_t z = 0; z < sp.nz; ++z)
      for (std::size_t y = 0; y < sp.ny; ++y)
        for (std::size_t x = 0; x < sp.nx; ++x)
          ((x + y + z) % 2 == 0 ? l.red : l.black).push_back(sp.index(x, y, z));
  }
  coarse_solver_ = std::make_unique<Cholesky>(levels_.back().a.to_dense());
}

GridMultigrid::~GridMultigrid() = default;

const SparseMatrix& GridMultigrid::fine_matrix() const { return levels_.front().a; }

namespace {
/// Rows per parallel red-black smoothing task (fixed chunking keeps the
/// row -> task map independent of the pool size).
constexpr std::size_t kSmoothRowChunk = 256;
}  // namespace

// One Gauss-Seidel half-sweep on all k columns: each relaxed row updates
// its contiguous k-column slice in place. Lexicographic mode relaxes rows
// serially (ascending forward, descending backward); red-black mode
// relaxes one parity class at a time with the rows of a class fanned out
// across the pool — rows of a class never couple, so the result is
// schedule-independent. Per-column arithmetic is identical in batched and
// single-vector use.
void GridMultigrid::smooth_many(const Level& lvl, Matrix& x, const Matrix& b,
                                bool forward) const {
  const SparseMatrix& a = lvl.a;
  const std::size_t n = a.rows();
  const std::size_t k = x.cols();
  auto relax_row = [&](std::size_t i) {
    const double* brow = b.row_ptr(i);
    double* xi = x.row_ptr(i);
    const double d = a.value(lvl.diag[i]);
    const std::size_t e0 = a.row_begin(i), e1 = a.row_end(i);
    // Scalar reduction per column in ascending entry order (diagonal
    // skipped): the same operation sequence for every k, so batched
    // columns relax bit-identically to 1-column sweeps. xi[j] is written
    // only after its reduction completes.
    for (std::size_t j = 0; j < k; ++j) {
      double s = brow[j];
      for (std::size_t e = e0; e < e1; ++e) {
        const std::size_t c = a.col_index(e);
        if (c != i) s -= a.value(e) * x.row_ptr(c)[j];
      }
      xi[j] = s / d;
    }
  };
  if (options_.smoother == MultigridSmoother::kGaussSeidel) {
    for (std::size_t t = 0; t < n; ++t) relax_row(forward ? t : n - 1 - t);
    return;
  }
  // Symmetric red-black: red then black forward, black then red backward.
  const std::vector<std::size_t>* phases[2] = {&lvl.red, &lvl.black};
  if (!forward) std::swap(phases[0], phases[1]);
  for (const auto* phase : phases) {
    const std::size_t chunks = (phase->size() + kSmoothRowChunk - 1) / kSmoothRowChunk;
    parallel_for(chunks, [&](std::size_t t) {
      const std::size_t i0 = t * kSmoothRowChunk;
      const std::size_t i1 = std::min(phase->size(), i0 + kSmoothRowChunk);
      for (std::size_t q = i0; q < i1; ++q) relax_row((*phase)[q]);
    });
  }
}

// Batched restriction: each coarse node gathers its merged fine children
// (up to 2^3, enumerated z-major then y then x — the same accumulation
// order as a fine-lexicographic scatter), for all k columns at once.
// Coarse rows are partitioned in fixed chunks over the pool; each output
// row is produced by exactly one task.
Matrix GridMultigrid::restrict_to_coarse(std::size_t fl, const Matrix& r) const {
  const Level& f = levels_[fl];
  const GridSpec& fs = f.spec;
  const GridSpec& cs = levels_[fl + 1].spec;
  const std::size_t k = r.cols();
  Matrix rc(cs.size(), k);
  const std::size_t rows = cs.ny * cs.nz;  // one task unit = one coarse x-row
  parallel_for(rows, [&](std::size_t t) {
    const std::size_t cy = t % cs.ny, cz = t / cs.ny;
    for (std::size_t cxn = 0; cxn < cs.nx; ++cxn) {
      double* out = rc.row_ptr(cs.index(cxn, cy, cz));
      const std::size_t z0 = f.cz ? 2 * cz : cz, z1 = f.cz ? z0 + 2 : z0 + 1;
      const std::size_t y0 = f.cy ? 2 * cy : cy, y1 = f.cy ? y0 + 2 : y0 + 1;
      const std::size_t x0 = f.cx ? 2 * cxn : cxn, x1 = f.cx ? x0 + 2 : x0 + 1;
      for (std::size_t z = z0; z < z1; ++z)
        for (std::size_t y = y0; y < y1; ++y)
          for (std::size_t x = x0; x < x1; ++x) {
            const double* in = r.row_ptr(fs.index(x, y, z));
            for (std::size_t j = 0; j < k; ++j) out[j] += in[j];
          }
      // Scale so R = P' / 2 (conductance halves per refinement: the
      // Galerkin-consistent weight for piecewise-constant P on a resistor
      // grid).
      for (std::size_t j = 0; j < k; ++j) out[j] *= 0.5;
    }
  });
  return rc;
}

// Piecewise-constant prolongation added in place: x_f += P x_c, all k
// columns per fine row at once.
void GridMultigrid::prolong_add_to_fine(std::size_t fl, Matrix& xf, const Matrix& xc) const {
  const Level& f = levels_[fl];
  const GridSpec& fs = f.spec;
  const GridSpec& cs = levels_[fl + 1].spec;
  const std::size_t k = xf.cols();
  const std::size_t rows = fs.ny * fs.nz;
  parallel_for(rows, [&](std::size_t t) {
    const std::size_t y = t % fs.ny, z = t / fs.ny;
    for (std::size_t x = 0; x < fs.nx; ++x) {
      double* out = xf.row_ptr(fs.index(x, y, z));
      const double* in =
          xc.row_ptr(cs.index(f.cx ? x / 2 : x, f.cy ? y / 2 : y, f.cz ? z / 2 : z));
      for (std::size_t j = 0; j < k; ++j) out[j] += in[j];
    }
  });
}

void GridMultigrid::cycle_many(std::size_t level, Matrix& x, const Matrix& b) const {
  if (level + 1 == levels_.size()) {
    // Coarsest grid: the dense Cholesky factored once at construction
    // back-solves the whole block.
    x = coarse_solver_->solve(b);
    return;
  }
  const Level& lvl = levels_[level];
  for (int s = 0; s < options_.smoothing_sweeps; ++s) smooth_many(lvl, x, b, /*forward=*/true);
  const Matrix r = b - lvl.a.apply_many(x);
  const Matrix rc = restrict_to_coarse(level, r);
  Matrix xc(rc.rows(), rc.cols());
  cycle_many(level + 1, xc, rc);
  prolong_add_to_fine(level, x, xc);
  for (int s = 0; s < options_.smoothing_sweeps; ++s) smooth_many(lvl, x, b, /*forward=*/false);
}

Matrix GridMultigrid::vcycle_many(const Matrix& b) const {
  SUBSPAR_REQUIRE(b.rows() == levels_.front().spec.size());
  Matrix x(b.rows(), b.cols());
  if (b.cols() > 0) cycle_many(0, x, b);
  return x;
}

Vector GridMultigrid::vcycle(const Vector& b) const {
  Matrix bm(b.size(), 1);
  bm.set_col(0, b);
  return vcycle_many(bm).col(0);
}

Vector GridMultigrid::solve(const Vector& b, std::size_t cycles) const {
  Vector x(b.size());
  for (std::size_t c = 0; c < cycles; ++c) {
    const Vector r = b - levels_.front().a.apply(x);
    x += vcycle(r);
  }
  return x;
}

}  // namespace subspar
