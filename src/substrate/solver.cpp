#include "substrate/solver.hpp"

#include <algorithm>

#include "util/cancel.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace subspar {

std::string substrate_fingerprint(const Layout& layout, const SubstrateStack& stack) {
  Fnv1a hash;
  hash.u64(layout.panels_x());
  hash.u64(layout.panels_y());
  hash.f64(layout.panel_size());
  hash.u64(layout.n_contacts());
  for (std::size_t i = 0; i < layout.n_contacts(); ++i) {
    const Contact& c = layout.contact(i);
    hash.u64(c.parts.size());
    for (const Rect& r : c.parts) {
      hash.i64(r.x0);
      hash.i64(r.y0);
      hash.i64(r.w);
      hash.i64(r.h);
    }
  }
  hash.u64(stack.layers().size());
  for (const SubstrateLayer& layer : stack.layers()) {
    hash.f64(layer.thickness);
    hash.f64(layer.conductivity);
  }
  hash.u64(stack.backplane() == Backplane::kGrounded ? 0 : 1);
  return hash.hex();
}

Vector SubstrateSolver::solve(const Vector& contact_voltages) const {
  SUBSPAR_REQUIRE(contact_voltages.size() == n_contacts());
  cancellation_point("solve");
  ++solve_count_;
  return do_solve(contact_voltages);
}

Matrix SubstrateSolver::solve_many(const Matrix& contact_voltages) const {
  SUBSPAR_REQUIRE(contact_voltages.rows() == n_contacts());
  cancellation_point("solve-many");
  solve_count_ += static_cast<long>(contact_voltages.cols());
  return do_solve_many(contact_voltages);
}

Matrix SubstrateSolver::do_solve_many(const Matrix& contact_voltages) const {
  Matrix out(n_contacts(), contact_voltages.cols());
  for (std::size_t j = 0; j < contact_voltages.cols(); ++j)
    out.set_col(j, do_solve(contact_voltages.col(j)));
  return out;
}

Matrix extract_dense(const SubstrateSolver& solver) {
  const std::size_t n = solver.n_contacts();
  Matrix e = Matrix::identity(n);
  return solver.solve_many(e);
}

Matrix extract_columns(const SubstrateSolver& solver, const std::vector<std::size_t>& cols) {
  const std::size_t n = solver.n_contacts();
  Matrix e(n, cols.size());
  for (std::size_t k = 0; k < cols.size(); ++k) {
    SUBSPAR_REQUIRE(cols[k] < n);
    e(cols[k], k) = 1.0;
  }
  return solver.solve_many(e);
}

std::vector<std::size_t> sample_columns(std::size_t n, double fraction) {
  SUBSPAR_REQUIRE(n > 0);
  SUBSPAR_REQUIRE(fraction > 0.0);
  SUBSPAR_REQUIRE(fraction <= 1.0);
  // Clamp the stride to n before the size_t cast: for tiny fractions
  // 1 / fraction can exceed the range of size_t (undefined conversion), and
  // any stride >= n means "just column 0" anyway. The sample is never empty.
  const double inv = 1.0 / fraction;
  const std::size_t stride =
      inv >= static_cast<double>(n)
          ? n
          : std::max<std::size_t>(1, static_cast<std::size_t>(inv));
  std::vector<std::size_t> cols;
  for (std::size_t j = 0; j < n; j += stride) cols.push_back(j);
  return cols;
}

}  // namespace subspar
