#include "substrate/solver.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace subspar {

Vector SubstrateSolver::solve(const Vector& contact_voltages) const {
  SUBSPAR_REQUIRE(contact_voltages.size() == n_contacts());
  ++solve_count_;
  return do_solve(contact_voltages);
}

Matrix extract_dense(const SubstrateSolver& solver) {
  const std::size_t n = solver.n_contacts();
  Matrix g(n, n);
  Vector e(n);
  for (std::size_t j = 0; j < n; ++j) {
    e.fill(0.0);
    e[j] = 1.0;
    g.set_col(j, solver.solve(e));
  }
  return g;
}

Matrix extract_columns(const SubstrateSolver& solver, const std::vector<std::size_t>& cols) {
  const std::size_t n = solver.n_contacts();
  Matrix g(n, cols.size());
  Vector e(n);
  for (std::size_t k = 0; k < cols.size(); ++k) {
    SUBSPAR_REQUIRE(cols[k] < n);
    e.fill(0.0);
    e[cols[k]] = 1.0;
    g.set_col(k, solver.solve(e));
  }
  return g;
}

std::vector<std::size_t> sample_columns(std::size_t n, double fraction) {
  SUBSPAR_REQUIRE(fraction > 0.0 && fraction <= 1.0);
  const std::size_t stride = std::max<std::size_t>(1, static_cast<std::size_t>(1.0 / fraction));
  std::vector<std::size_t> cols;
  for (std::size_t j = 0; j < n; j += stride) cols.push_back(j);
  return cols;
}

}  // namespace subspar
