#include "substrate/solver.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace subspar {

Vector SubstrateSolver::solve(const Vector& contact_voltages) const {
  SUBSPAR_REQUIRE(contact_voltages.size() == n_contacts());
  ++solve_count_;
  return do_solve(contact_voltages);
}

Matrix SubstrateSolver::solve_many(const Matrix& contact_voltages) const {
  SUBSPAR_REQUIRE(contact_voltages.rows() == n_contacts());
  solve_count_ += static_cast<long>(contact_voltages.cols());
  return do_solve_many(contact_voltages);
}

Matrix SubstrateSolver::do_solve_many(const Matrix& contact_voltages) const {
  Matrix out(n_contacts(), contact_voltages.cols());
  for (std::size_t j = 0; j < contact_voltages.cols(); ++j)
    out.set_col(j, do_solve(contact_voltages.col(j)));
  return out;
}

Matrix extract_dense(const SubstrateSolver& solver) {
  const std::size_t n = solver.n_contacts();
  Matrix e = Matrix::identity(n);
  return solver.solve_many(e);
}

Matrix extract_columns(const SubstrateSolver& solver, const std::vector<std::size_t>& cols) {
  const std::size_t n = solver.n_contacts();
  Matrix e(n, cols.size());
  for (std::size_t k = 0; k < cols.size(); ++k) {
    SUBSPAR_REQUIRE(cols[k] < n);
    e(cols[k], k) = 1.0;
  }
  return solver.solve_many(e);
}

std::vector<std::size_t> sample_columns(std::size_t n, double fraction) {
  SUBSPAR_REQUIRE(fraction > 0.0 && fraction <= 1.0);
  const std::size_t stride = std::max<std::size_t>(1, static_cast<std::size_t>(1.0 / fraction));
  std::vector<std::size_t> cols;
  for (std::size_t j = 0; j < n; j += stride) cols.push_back(j);
  return cols;
}

}  // namespace subspar
