#include "substrate/stack.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace subspar {

SubstrateStack::SubstrateStack(std::vector<SubstrateLayer> layers, Backplane backplane)
    : layers_(std::move(layers)), backplane_(backplane) {
  SUBSPAR_REQUIRE(!layers_.empty());
  for (const auto& l : layers_) SUBSPAR_REQUIRE(l.thickness > 0.0 && l.conductivity > 0.0);
}

double SubstrateStack::depth() const {
  double d = 0.0;
  for (const auto& l : layers_) d += l.thickness;
  return d;
}

double SubstrateStack::conductivity_at_depth(double d) const {
  SUBSPAR_REQUIRE(d >= 0.0);
  double acc = 0.0;
  for (const auto& l : layers_) {
    acc += l.thickness;
    if (d <= acc) return l.conductivity;
  }
  // Depth numerically at (or just past) the backplane: bottom layer.
  SUBSPAR_REQUIRE(d <= acc * (1.0 + 1e-9));
  return layers_.back().conductivity;
}

double SubstrateStack::lambda(double gamma) const {
  SUBSPAR_REQUIRE(gamma > 0.0);
  // Track Z as a projective pair (num, den) so the floating start Z =
  // infinity is exact: grounded -> (0, 1), floating -> (1, 0).
  double num = (backplane_ == Backplane::kGrounded) ? 0.0 : 1.0;
  double den = (backplane_ == Backplane::kGrounded) ? 1.0 : 0.0;
  // Propagate bottom-up.
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    const double z0 = 1.0 / (it->conductivity * gamma);
    const double th = std::tanh(gamma * it->thickness);
    const double new_num = z0 * (num + z0 * th * den);
    const double new_den = z0 * den + num * th;
    num = new_num;
    den = new_den;
    // Renormalize to dodge overflow/underflow across many layers.
    const double scale = std::max(std::abs(num), std::abs(den));
    SUBSPAR_ENSURE(scale > 0.0);
    num /= scale;
    den /= scale;
  }
  SUBSPAR_ENSURE(den > 0.0);  // the surface impedance of a lossy stack is finite
  return num / den;
}

double SubstrateStack::lambda_dc() const {
  if (backplane_ == Backplane::kFloating) return std::numeric_limits<double>::infinity();
  double r = 0.0;
  for (const auto& l : layers_) r += l.thickness / l.conductivity;
  return r;
}

SubstrateStack paper_stack(double depth, double top_layer_thickness, double sigma_top) {
  SUBSPAR_REQUIRE(depth > top_layer_thickness + 1.0);
  // Top layer sigma, bulk 100 sigma, thin 0.1 sigma layer above the
  // groundplane (the paper's floating-backplane emulation, §3.7).
  const double bottom_thickness = 1.0;
  return SubstrateStack({{top_layer_thickness, sigma_top},
                         {depth - top_layer_thickness - bottom_thickness, 100.0 * sigma_top},
                         {bottom_thickness, 0.1 * sigma_top}},
                        Backplane::kGrounded);
}

}  // namespace subspar
