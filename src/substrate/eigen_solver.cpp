#include "substrate/eigen_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/robust.hpp"
#include "transform/dct.hpp"
#include "transform/fft.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace subspar {
namespace {
constexpr double kPi = 3.14159265358979323846;

/// Widest column block fed to one pcg_block call: bounds the O(k^2 n) Gram
/// work and the O(k^3) small solves while keeping the spectrum deflation
/// that makes the blocked iteration converge in far fewer iterations.
constexpr std::size_t kMaxSolveBlock = 16;

/// Size gate for the dense direct-solve fallback: materializing and
/// factoring the restricted panel operator is O(p^2) memory / O(p^3) work.
constexpr std::size_t kMaxDirectDim = 4096;

void accumulate_diag(SolverDiagnostics& d, const RobustSolveReport& r) {
  d.iterations += static_cast<long>(r.iterations);
  d.max_iteration_hits += static_cast<long>(r.max_iteration_hits);
  d.restarts += static_cast<long>(r.restarts);
  d.tighter_restarts += static_cast<long>(r.tighter_restarts);
  d.direct_columns += static_cast<long>(r.direct_columns);
  d.nonfinite_recoveries += static_cast<long>(r.nonfinite_events);
  if (!r.clean) d.worst_residual = std::max(d.worst_residual, r.worst_residual);
}

// Panel-averaging factor for mode m over M panels:
// mean over a panel of cos(m pi x / a) relative to its center value.
double sinc_factor(std::size_t m, std::size_t panels) {
  if (m == 0) return 1.0;
  const double u = kPi * static_cast<double>(m) / (2.0 * static_cast<double>(panels));
  return std::sin(u) / u;
}

}  // namespace

double kernel_block_entry(const Vector& kernel, std::size_t mx, std::size_t ny,
                          std::size_t cx, std::size_t cy, long dx, long dy) {
  SUBSPAR_REQUIRE(kernel.size() == mx * ny);
  const long kx = std::clamp(static_cast<long>(cx) + dx, 0L, static_cast<long>(mx) - 1);
  const long ky = std::clamp(static_cast<long>(cy) + dy, 0L, static_cast<long>(ny) - 1);
  return kernel[static_cast<std::size_t>(kx) + mx * static_cast<std::size_t>(ky)];
}

struct SurfaceSolver::Impl {
  Layout layout;
  SubstrateStack stack;
  SurfaceSolverOptions options;

  std::vector<double> lambda_tilde;       // (m, n) -> scaled eigenvalue, row-major m*N+n
  std::vector<std::size_t> panels;        // flattened contact-panel grid indices
  std::vector<std::size_t> contact_begin; // offsets into `panels`, size n+1
  std::vector<Cholesky> block_factors;    // per-contact preconditioner blocks
  mutable std::unique_ptr<Cholesky> direct_factor;  // lazy dense fallback factor
  mutable long total_iterations = 0;
  mutable long stat_solves = 0;

  Impl(const Layout& l, const SubstrateStack& s, SurfaceSolverOptions o)
      : layout(l), stack(s), options(o) {}

  std::size_t grid_size() const { return layout.panels_x() * layout.panels_y(); }

  // Eigenvalue multiply on one already-transformed grid.
  void scale_modes(double* a) const {
    const std::size_t mx = layout.panels_x(), ny = layout.panels_y();
    for (std::size_t y = 0; y < ny; ++y)
      for (std::size_t x = 0; x < mx; ++x) a[y * mx + x] *= lambda_tilde[x * ny + y];
  }

  Vector apply_grid(const Vector& q) const {
    const std::size_t mx = layout.panels_x(), ny = layout.panels_y();
    std::vector<double> a(q.begin(), q.end());
    // Grid storage is x + mx * y; rows of length mx vary x, so the
    // row-transform runs over x (modes m) and the column transform over y.
    dct2_2d(a, ny, mx);
    scale_modes(a.data());
    dct3_2d(a, ny, mx);
    return Vector(std::move(a));
  }

  // Restricted operator on all columns at once: pad each column into its
  // own panel grid, run the batched 2-D DCTs (threaded over columns),
  // scale by the operator eigenvalues, transform back, restrict. Identical
  // per-column arithmetic to the single-vector path for any thread count.
  Matrix apply_restricted_many(const Matrix& x,
                               Precision precision = Precision::kFp64) const {
    const std::size_t mx = layout.panels_x(), ny = layout.panels_y();
    const std::size_t gsz = grid_size();
    const std::size_t k = x.cols();
    std::vector<double> grids(k * gsz, 0.0);
    for (std::size_t j = 0; j < k; ++j) {
      double* g = grids.data() + j * gsz;
      for (std::size_t idx = 0; idx < panels.size(); ++idx) g[panels[idx]] = x(idx, j);
    }
    // kMixed drops only the transform tables to fp32; the eigenvalue
    // scaling between the transforms stays fp64 — it is O(n) against the
    // transforms' O(n log n) and carries the stack's dynamic range.
    dct2_2d_many(grids, ny, mx, k, precision);
    parallel_for(k, [&](std::size_t j) { scale_modes(grids.data() + j * gsz); });
    dct3_2d_many(grids, ny, mx, k, precision);
    Matrix out(panels.size(), k);
    for (std::size_t j = 0; j < k; ++j) {
      const double* g = grids.data() + j * gsz;
      for (std::size_t idx = 0; idx < panels.size(); ++idx) out(idx, j) = g[panels[idx]];
    }
    return out;
  }

  // Block-Jacobi preconditioner applied per column (threaded).
  Matrix precondition_many(const Matrix& r) const {
    const std::size_t k = r.cols();
    Matrix z(r.rows(), k);
    parallel_for(k, [&](std::size_t j) {
      for (std::size_t c = 0; c + 1 < contact_begin.size(); ++c) {
        const std::size_t b = contact_begin[c], e = contact_begin[c + 1];
        Vector rc(e - b);
        for (std::size_t idx = b; idx < e; ++idx) rc[idx - b] = r(idx, j);
        const Vector zc = block_factors[c].solve(rc);
        for (std::size_t idx = b; idx < e; ++idx) z(idx, j) = zc[idx - b];
      }
    });
    return z;
  }

  // Dense direct fallback for the robust chain: materializes the restricted
  // panel operator once (p batched applies through the clean operator, no
  // fault instrumentation) and Cholesky-factors it; the factor is reused by
  // every later fallback.
  Matrix direct_solve(const Matrix& b) const {
    if (!direct_factor) {
      const std::size_t p = panels.size();
      Matrix a_cc = apply_restricted_many(Matrix::identity(p));
      // The DCT round trip is symmetric only to rounding; Cholesky needs it
      // exact.
      for (std::size_t i = 0; i < p; ++i)
        for (std::size_t j = i + 1; j < p; ++j) {
          const double v = 0.5 * (a_cc(i, j) + a_cc(j, i));
          a_cc(i, j) = v;
          a_cc(j, i) = v;
        }
      direct_factor = std::make_unique<Cholesky>(a_cc);
    }
    return direct_factor->solve(b);
  }

  // Shared solve core: contact-voltage columns -> contact-current columns,
  // one blocked PCG per chunk of <= kMaxSolveBlock columns, each run through
  // the robust fallback chain (restarts, then the dense direct solve).
  Matrix solve_block(const Matrix& contact_voltages, SolverDiagnostics& diag) const {
    const std::size_t n = layout.n_contacts();
    const std::size_t k = contact_voltages.cols();
    Matrix currents(n, k);
    for (std::size_t j0 = 0; j0 < k; j0 += kMaxSolveBlock) {
      const std::size_t kc = std::min(kMaxSolveBlock, k - j0);
      // Right-hand sides: each contact's panels sit at the contact voltage.
      Matrix v(panels.size(), kc);
      for (std::size_t j = 0; j < kc; ++j)
        for (std::size_t c = 0; c < n; ++c)
          for (std::size_t idx = contact_begin[c]; idx < contact_begin[c + 1]; ++idx)
            v(idx, j) = contact_voltages(c, j0 + j);

      RobustSolveReport rrep;
      const LinearOpMany op = [&](const Matrix& x) {
        Matrix y = apply_restricted_many(x);
        fault_corrupt(FaultSite::kSolverApply, y);
        return y;
      };
      const FunctionPreconditioner pre(
          [&](const Matrix& r) { return precondition_many(r); });
      const DirectSolveFn direct =
          panels.size() <= kMaxDirectDim
              ? DirectSolveFn([&](const Matrix& bb) { return direct_solve(bb); })
              : DirectSolveFn();
      // kMixed: the fp32-table operator drives the refinement inner sweeps;
      // the fp64 exit test (and the whole fallback chain) keeps the rel_tol
      // bound. Faults target the trusted fp64 applies only.
      const LinearOpMany op_lo =
          options.precision == Precision::kMixed
              ? LinearOpMany([&](const Matrix& x) {
                  return apply_restricted_many(x, Precision::kMixed);
                })
              : LinearOpMany();
      const Matrix q = robust_pcg_block(
          op, v,
          {.iter = {.rel_tol = options.rel_tol, .max_iterations = options.max_iterations}},
          &rrep, options.contact_block_precond ? &pre : nullptr, /*tighter=*/nullptr, direct,
          op_lo);
      accumulate_diag(diag, rrep);
      total_iterations += static_cast<long>(rrep.iterations) * static_cast<long>(kc);
      stat_solves += static_cast<long>(kc);

      for (std::size_t j = 0; j < kc; ++j) {
        for (std::size_t c = 0; c < n; ++c) {
          double s = 0.0;
          for (std::size_t idx = contact_begin[c]; idx < contact_begin[c + 1]; ++idx)
            s += q(idx, j);
          currents(c, j0 + j) = s;
        }
      }
    }
    return currents;
  }
};

SurfaceSolver::SurfaceSolver(const Layout& layout, const SubstrateStack& stack,
                             SurfaceSolverOptions options)
    : impl_(std::make_unique<Impl>(layout, stack, options)) {
  SUBSPAR_REQUIRE(layout.n_contacts() > 0);
  // Like QuickSub, the eigendecomposition path needs a finite DC eigenvalue:
  // floating substrates are handled by the resistive-layer emulation.
  SUBSPAR_REQUIRE(stack.backplane() == Backplane::kGrounded);
  SUBSPAR_REQUIRE(is_power_of_two(layout.panels_x()) && is_power_of_two(layout.panels_y()));

  const std::size_t mx = layout.panels_x(), ny = layout.panels_y();
  const double a = layout.width(), b = layout.height();
  const double h2 = layout.panel_size() * layout.panel_size();
  auto& lt = impl_->lambda_tilde;
  lt.resize(mx * ny);
  for (std::size_t m = 0; m < mx; ++m) {
    for (std::size_t n = 0; n < ny; ++n) {
      double lam;
      if (m == 0 && n == 0) {
        lam = stack.lambda_dc();
      } else {
        const double gamma = kPi * std::sqrt((static_cast<double>(m) / a) * (static_cast<double>(m) / a) +
                                             (static_cast<double>(n) / b) * (static_cast<double>(n) / b));
        lam = stack.lambda(gamma);
      }
      const double sm = sinc_factor(m, mx);
      const double sn = sinc_factor(n, ny);
      lt[m * ny + n] = lam * sm * sm * sn * sn / h2;
      SUBSPAR_ENSURE(lt[m * ny + n] > 0.0 && std::isfinite(lt[m * ny + n]));
    }
  }

  // Flatten contact panels.
  impl_->contact_begin.push_back(0);
  for (std::size_t c = 0; c < layout.n_contacts(); ++c) {
    for (const std::size_t p : layout.contact_panels(c)) impl_->panels.push_back(p);
    impl_->contact_begin.push_back(impl_->panels.size());
  }

  if (options.contact_block_precond) {
    // Approximate per-contact diagonal blocks of A_cc assuming translation
    // invariance of the panel kernel: one operator apply at a central panel
    // gives the kernel column, from which each (small) block is assembled.
    Vector unit(impl_->grid_size());
    const std::size_t cx = mx / 2, cy = ny / 2;
    unit[cx + mx * cy] = 1.0;
    const Vector kernel = impl_->apply_grid(unit);
    for (std::size_t c = 0; c < layout.n_contacts(); ++c) {
      const auto cpanels = layout.contact_panels(c);
      const std::size_t np = cpanels.size();
      Matrix blockm(np, np);
      for (std::size_t i = 0; i < np; ++i) {
        const long xi = static_cast<long>(cpanels[i] % mx), yi = static_cast<long>(cpanels[i] / mx);
        for (std::size_t j = i; j < np; ++j) {
          const long xj = static_cast<long>(cpanels[j] % mx), yj = static_cast<long>(cpanels[j] / mx);
          // One kernel lookup per unordered panel pair, symmetrized by
          // construction (the kernel is even in the offset up to boundary
          // effects, which a preconditioner may ignore). Iterating j >= i
          // only also keeps the lookup of pair (i, j) from being silently
          // overwritten by the mirrored lookup of pair (j, i).
          const double val = kernel_block_entry(kernel, mx, ny, cx, cy, xj - xi, yj - yi);
          blockm(i, j) = val;
          blockm(j, i) = val;
        }
      }
      // Postcondition, not a tautology-by-intent: CG requires a symmetric
      // preconditioner, so any future change to the assembly above must
      // keep the block exactly symmetric or fail loudly here.
      for (std::size_t i = 0; i < np; ++i)
        for (std::size_t j = i + 1; j < np; ++j)
          SUBSPAR_ENSURE(blockm(i, j) == blockm(j, i));
      try {
        impl_->block_factors.emplace_back(blockm);
      } catch (const std::invalid_argument&) {
        // The translation-invariant approximation can go indefinite for
        // contacts large relative to the grid; fall back to the diagonal.
        Matrix diag(np, np);
        for (std::size_t i = 0; i < np; ++i) diag(i, i) = blockm(i, i);
        impl_->block_factors.emplace_back(diag);
      }
    }
  }
}

SurfaceSolver::~SurfaceSolver() = default;

std::size_t SurfaceSolver::n_contacts() const { return impl_->layout.n_contacts(); }

std::string SurfaceSolver::cache_tag() const {
  const SurfaceSolverOptions& o = impl_->options;
  char buf[96];
  // `precision` is digested (kMixed legitimately changes result bits); the
  // SIMD backend deliberately is not (all backends agree to solver
  // tolerance).
  std::snprintf(buf, sizeof buf, "|%a|%zu|%d|p%d|", o.rel_tol, o.max_iterations,
                o.contact_block_precond ? 1 : 0, static_cast<int>(o.precision));
  return name() + buf + substrate_fingerprint(impl_->layout, impl_->stack);
}

Vector SurfaceSolver::apply_panel_operator(const Vector& panel_currents) const {
  SUBSPAR_REQUIRE(panel_currents.size() == impl_->grid_size());
  return impl_->apply_grid(panel_currents);
}

double SurfaceSolver::avg_iterations() const {
  return impl_->stat_solves == 0
             ? 0.0
             : static_cast<double>(impl_->total_iterations) /
                   static_cast<double>(impl_->stat_solves);
}

void SurfaceSolver::reset_iteration_stats() const {
  impl_->total_iterations = 0;
  impl_->stat_solves = 0;
}

Vector SurfaceSolver::do_solve(const Vector& contact_voltages) const {
  Matrix v(contact_voltages.size(), 1);
  v.set_col(0, contact_voltages);
  return impl_->solve_block(v, diag()).col(0);
}

Matrix SurfaceSolver::do_solve_many(const Matrix& contact_voltages) const {
  return impl_->solve_block(contact_voltages, diag());
}

}  // namespace subspar
