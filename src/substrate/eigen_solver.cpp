#include "substrate/eigen_solver.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/cholesky.hpp"
#include "transform/dct.hpp"
#include "transform/fft.hpp"
#include "util/check.hpp"

namespace subspar {
namespace {
constexpr double kPi = 3.14159265358979323846;

// Panel-averaging factor for mode m over M panels:
// mean over a panel of cos(m pi x / a) relative to its center value.
double sinc_factor(std::size_t m, std::size_t panels) {
  if (m == 0) return 1.0;
  const double u = kPi * static_cast<double>(m) / (2.0 * static_cast<double>(panels));
  return std::sin(u) / u;
}

}  // namespace

struct SurfaceSolver::Impl {
  Layout layout;
  SubstrateStack stack;
  SurfaceSolverOptions options;

  std::vector<double> lambda_tilde;       // (m, n) -> scaled eigenvalue, row-major m*N+n
  std::vector<std::size_t> panels;        // flattened contact-panel grid indices
  std::vector<std::size_t> contact_begin; // offsets into `panels`, size n+1
  std::vector<Cholesky> block_factors;    // per-contact preconditioner blocks
  mutable long total_iterations = 0;
  mutable long stat_solves = 0;

  Impl(const Layout& l, const SubstrateStack& s, SurfaceSolverOptions o)
      : layout(l), stack(s), options(o) {}

  std::size_t grid_size() const { return layout.panels_x() * layout.panels_y(); }

  Vector apply_grid(const Vector& q) const {
    const std::size_t mx = layout.panels_x(), ny = layout.panels_y();
    std::vector<double> a(q.begin(), q.end());
    // Grid storage is x + mx * y; rows of length mx vary x, so the
    // row-transform runs over x (modes m) and the column transform over y.
    dct2_2d(a, ny, mx);
    for (std::size_t y = 0; y < ny; ++y)
      for (std::size_t x = 0; x < mx; ++x) a[y * mx + x] *= lambda_tilde[x * ny + y];
    dct3_2d(a, ny, mx);
    return Vector(std::move(a));
  }

  // Restricted operator on contact panels only.
  Vector apply_restricted(const Vector& x) const {
    Vector q(grid_size());
    for (std::size_t k = 0; k < panels.size(); ++k) q[panels[k]] = x[k];
    const Vector v = apply_grid(q);
    Vector out(panels.size());
    for (std::size_t k = 0; k < panels.size(); ++k) out[k] = v[panels[k]];
    return out;
  }

  Vector precondition(const Vector& r) const {
    Vector z(r.size());
    for (std::size_t c = 0; c + 1 < contact_begin.size(); ++c) {
      const std::size_t b = contact_begin[c], e = contact_begin[c + 1];
      Vector rc(e - b);
      for (std::size_t k = b; k < e; ++k) rc[k - b] = r[k];
      const Vector zc = block_factors[c].solve(rc);
      for (std::size_t k = b; k < e; ++k) z[k] = zc[k - b];
    }
    return z;
  }
};

SurfaceSolver::SurfaceSolver(const Layout& layout, const SubstrateStack& stack,
                             SurfaceSolverOptions options)
    : impl_(std::make_unique<Impl>(layout, stack, options)) {
  SUBSPAR_REQUIRE(layout.n_contacts() > 0);
  // Like QuickSub, the eigendecomposition path needs a finite DC eigenvalue:
  // floating substrates are handled by the resistive-layer emulation.
  SUBSPAR_REQUIRE(stack.backplane() == Backplane::kGrounded);
  SUBSPAR_REQUIRE(is_power_of_two(layout.panels_x()) && is_power_of_two(layout.panels_y()));

  const std::size_t mx = layout.panels_x(), ny = layout.panels_y();
  const double a = layout.width(), b = layout.height();
  const double h2 = layout.panel_size() * layout.panel_size();
  auto& lt = impl_->lambda_tilde;
  lt.resize(mx * ny);
  for (std::size_t m = 0; m < mx; ++m) {
    for (std::size_t n = 0; n < ny; ++n) {
      double lam;
      if (m == 0 && n == 0) {
        lam = stack.lambda_dc();
      } else {
        const double gamma = kPi * std::sqrt((static_cast<double>(m) / a) * (static_cast<double>(m) / a) +
                                             (static_cast<double>(n) / b) * (static_cast<double>(n) / b));
        lam = stack.lambda(gamma);
      }
      const double sm = sinc_factor(m, mx);
      const double sn = sinc_factor(n, ny);
      lt[m * ny + n] = lam * sm * sm * sn * sn / h2;
      SUBSPAR_ENSURE(lt[m * ny + n] > 0.0 && std::isfinite(lt[m * ny + n]));
    }
  }

  // Flatten contact panels.
  impl_->contact_begin.push_back(0);
  for (std::size_t c = 0; c < layout.n_contacts(); ++c) {
    for (const std::size_t p : layout.contact_panels(c)) impl_->panels.push_back(p);
    impl_->contact_begin.push_back(impl_->panels.size());
  }

  if (options.contact_block_precond) {
    // Approximate per-contact diagonal blocks of A_cc assuming translation
    // invariance of the panel kernel: one operator apply at a central panel
    // gives the kernel column, from which each (small) block is assembled.
    Vector unit(impl_->grid_size());
    const std::size_t cx = mx / 2, cy = ny / 2;
    unit[cx + mx * cy] = 1.0;
    const Vector kernel = impl_->apply_grid(unit);
    for (std::size_t c = 0; c < layout.n_contacts(); ++c) {
      const auto cpanels = layout.contact_panels(c);
      const std::size_t np = cpanels.size();
      Matrix blockm(np, np);
      for (std::size_t i = 0; i < np; ++i) {
        const long xi = static_cast<long>(cpanels[i] % mx), yi = static_cast<long>(cpanels[i] / mx);
        for (std::size_t j = 0; j < np; ++j) {
          const long xj = static_cast<long>(cpanels[j] % mx), yj = static_cast<long>(cpanels[j] / mx);
          // Offset from the kernel center, clamped to the grid: panel pairs
          // further apart than the grid half-width get the edge value, a
          // harmless approximation for a preconditioner.
          const long dx = xj - xi, dy = yj - yi;
          const long kx = std::clamp(static_cast<long>(cx) + dx, 0L, static_cast<long>(mx) - 1);
          const long ky = std::clamp(static_cast<long>(cy) + dy, 0L, static_cast<long>(ny) - 1);
          const double val = kernel[static_cast<std::size_t>(kx) +
                                    mx * static_cast<std::size_t>(ky)];
          // Symmetrize (the kernel is even in the offset up to boundary
          // effects, which a preconditioner may ignore).
          blockm(i, j) = val;
          blockm(j, i) = val;
        }
      }
      try {
        impl_->block_factors.emplace_back(blockm);
      } catch (const std::invalid_argument&) {
        // The translation-invariant approximation can go indefinite for
        // contacts large relative to the grid; fall back to the diagonal.
        Matrix diag(np, np);
        for (std::size_t i = 0; i < np; ++i) diag(i, i) = blockm(i, i);
        impl_->block_factors.emplace_back(diag);
      }
    }
  }
}

SurfaceSolver::~SurfaceSolver() = default;

std::size_t SurfaceSolver::n_contacts() const { return impl_->layout.n_contacts(); }

Vector SurfaceSolver::apply_panel_operator(const Vector& panel_currents) const {
  SUBSPAR_REQUIRE(panel_currents.size() == impl_->grid_size());
  return impl_->apply_grid(panel_currents);
}

double SurfaceSolver::avg_iterations() const {
  return impl_->stat_solves == 0
             ? 0.0
             : static_cast<double>(impl_->total_iterations) /
                   static_cast<double>(impl_->stat_solves);
}

void SurfaceSolver::reset_iteration_stats() const {
  impl_->total_iterations = 0;
  impl_->stat_solves = 0;
}

Vector SurfaceSolver::do_solve(const Vector& contact_voltages) const {
  const Impl& im = *impl_;
  // Right-hand side: each contact's panels sit at the contact voltage.
  Vector v(im.panels.size());
  for (std::size_t c = 0; c < n_contacts(); ++c)
    for (std::size_t k = im.contact_begin[c]; k < im.contact_begin[c + 1]; ++k)
      v[k] = contact_voltages[c];

  IterStats stats;
  const LinearOp op = [&](const Vector& x) { return im.apply_restricted(x); };
  const LinearOp pre = im.options.contact_block_precond
                           ? LinearOp([&](const Vector& r) { return im.precondition(r); })
                           : LinearOp();
  const Vector q = pcg(op, v,
                       {.rel_tol = im.options.rel_tol, .max_iterations = im.options.max_iterations},
                       &stats, pre);
  SUBSPAR_ENSURE(stats.converged);
  im.total_iterations += static_cast<long>(stats.iterations);
  ++im.stat_solves;

  Vector currents(n_contacts());
  for (std::size_t c = 0; c < n_contacts(); ++c) {
    double s = 0.0;
    for (std::size_t k = im.contact_begin[c]; k < im.contact_begin[c + 1]; ++k) s += q[k];
    currents[c] = s;
  }
  return currents;
}

}  // namespace subspar
