// Finite-difference (grid-of-resistors) substrate solver (§2.2).
//
// The substrate volume is discretized into an nx x ny x nz node grid with
// resistors g = sigma h between lateral neighbors, series-combined resistors
// across layer boundaries (Fig. 2-2), Neumann sidewalls by omission, contact
// (Dirichlet) ghost nodes half a grid spacing above the surface eliminated
// into the top-plane equations, and an optional grounded backplane. The SPD
// system is solved with PCG under a selectable preconditioner — the subject
// of Table 2.1.
#pragma once

#include <cstddef>
#include <memory>

#include "geometry/layout.hpp"
#include "linalg/backend.hpp"
#include "substrate/multigrid.hpp"
#include "substrate/solver.hpp"
#include "substrate/stack.hpp"

namespace subspar {

enum class FdPreconditioner {
  kNone,
  kIncompleteCholesky,  ///< ICCG baseline (§2.2.2)
  kFastDirichlet,       ///< fast Poisson solver, p = 1
  kFastNeumann,         ///< fast Poisson solver, p = 0
  kFastAreaWeighted,    ///< fast Poisson solver, p = contact-area fraction
  kMultigrid,           ///< geometric V-cycle (the §2.2.2 future-work idea)
};

/// A well: a rectangular indentation in the top substrate surface (§2.1,
/// §2.2 — the realistic-feature case only the volume discretization can
/// handle, and the reason the sparsifiers assume nothing beyond a black
/// box). The region's top `depth` is etched away: those grid nodes are
/// removed (their resistors omitted = Neumann walls around the cavity).
/// Rectangle in physical units; may not overlap any contact.
struct SubstrateWell {
  double x0 = 0.0, y0 = 0.0, width = 0.0, height = 0.0;
  double depth = 0.0;
};

/// Symmetric sparse-matrix reordering applied before factoring (the IC(0)
/// preconditioner branch of the batched sparse engine).
enum class SparseReorder {
  kNone,  ///< natural (grid-lexicographic) ordering
  kRcm,   ///< reverse Cuthill-McKee: narrow band, wider solve level sets
};

struct FdSolverOptions {
  double grid_h = 2.0;  ///< node spacing; surface width / grid_h must be a power of two
  FdPreconditioner precond = FdPreconditioner::kFastAreaWeighted;
  double rel_tol = 1e-6;
  std::size_t max_iterations = 5000;
  /// Contact ghost resistor length: the top surface sits h/2 above the top
  /// node plane, so the accurate ghost conductance is 2 sigma h (true).
  /// false reproduces the paper's full-h "first placement" stencil
  /// (eq. 2.15), which adds h/2 of spurious contact resistance.
  bool ghost_half_spacing = true;
  /// Surface indentations. Non-empty wells disable the fast-solver
  /// preconditioners' exactness (they still work as approximations) and are
  /// invisible to the sparsifiers — exactly the black-box genericity claim.
  std::vector<SubstrateWell> wells{};
  /// IC(0) branch: ordering the factor is computed in. RCM (the default)
  /// keeps the preconditioner mathematically equivalent in quality while
  /// making the level-scheduled triangular solves cache-friendly and
  /// parallel; kNone factors in natural grid order.
  SparseReorder reorder = SparseReorder::kRcm;
  /// Multigrid branch: Gauss-Seidel sweep ordering of the batched V-cycle
  /// smoother (kRedBlack parallelizes each half-sweep) and the number of
  /// pre/post sweeps per level.
  MultigridSmoother mg_smoother = MultigridSmoother::kGaussSeidel;
  int mg_smoothing_sweeps = 1;
  /// kMixed: batched solves run mixed-precision iterative refinement — an
  /// fp32 mirror of the grid Laplacian (SparseMirrorF32) drives the inner
  /// PCG sweeps and an fp64 true-residual correction restores the rel_tol
  /// bound. Legitimately different result bits (digested into cache_tag).
  Precision precision = Precision::kFp64;
};

class FdSolver : public SubstrateSolver {
 public:
  FdSolver(const Layout& layout, const SubstrateStack& stack, FdSolverOptions options = {});
  ~FdSolver() override;

  std::size_t n_contacts() const override;
  std::string name() const override { return "finite-difference"; }
  /// name() plus every option that changes the discretized operator —
  /// grid spacing, ghost placement, wells, preconditioner, tolerances —
  /// plus the construction (layout, stack) fingerprint
  /// (see SubstrateSolver::cache_tag).
  std::string cache_tag() const override;

  std::size_t grid_nodes() const;
  double avg_iterations() const;
  void reset_iteration_stats() const;

  /// Full interior voltage solution for given contact voltages (the raw
  /// PCG solution; exposed for tests and field inspection).
  Vector solve_volume(const Vector& contact_voltages) const;

 protected:
  Vector do_solve(const Vector& contact_voltages) const override;
  /// Batched solve: blocked PCG over column chunks, the operator applied
  /// as one row-partitioned SpMM and the preconditioner as one blockwise
  /// Preconditioner::apply_many per iteration (level-scheduled IC(0) on
  /// the RCM-permuted factor, batched multigrid V-cycles, or threaded
  /// fast-Poisson solves). Throws std::runtime_error if PCG fails to
  /// converge within options.max_iterations.
  Matrix do_solve_many(const Matrix& contact_voltages) const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace subspar
