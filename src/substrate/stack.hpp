// Layered substrate model (Fig. 1-1) and the eigenvalues of its
// current-density-to-potential surface operator (§2.3.1).
//
// The thesis derives the eigenvalues lambda_mn through a coefficient
// recursion (eqs. 2.34-2.36) that overflows for large gamma_mn * d. We use
// the mathematically identical transmission-line form: each layer transforms
// the "input impedance" Z = phi / (sigma dphi/dz) looking down from its top
// surface as
//     Z_top = Z0 * (Z_bot + Z0 tanh(gamma t)) / (Z0 + Z_bot tanh(gamma t)),
// with Z0 = 1 / (sigma gamma). tanh saturates, so the recursion is stable
// for every mode. lambda(gamma) is Z at the top surface; a grounded
// backplane starts from Z = 0, a floating one from Z = infinity.
#pragma once

#include <vector>

namespace subspar {

struct SubstrateLayer {
  double thickness;     ///< physical, > 0
  double conductivity;  ///< sigma, > 0
};

enum class Backplane { kGrounded, kFloating };

class SubstrateStack {
 public:
  /// Layers listed top-down: layers[0] touches the contact surface.
  SubstrateStack(std::vector<SubstrateLayer> layers, Backplane backplane);

  double depth() const;
  const std::vector<SubstrateLayer>& layers() const { return layers_; }
  Backplane backplane() const { return backplane_; }

  /// sigma at depth d below the surface, d in [0, depth()].
  double conductivity_at_depth(double d) const;

  /// Surface spectral impedance lambda(gamma) = potential / current-density
  /// for the cos mode with lateral wavenumber gamma > 0.
  double lambda(double gamma) const;

  /// gamma -> 0 limit: sum of t_k / sigma_k for a grounded backplane;
  /// +infinity for a floating one (uniform current cannot leave, §2.3.1).
  double lambda_dc() const;

 private:
  std::vector<SubstrateLayer> layers_;
  Backplane backplane_;
};

/// The two-layer profile (plus the thin resistive layer adjacent to the
/// backplane that emulates a floating backplane with a solver requiring a
/// groundplane) used throughout §3.7 / §4.6: conductivities
/// (1, 100, 0.1) * sigma_top with interfaces just below the surface and just
/// above the backplane.
SubstrateStack paper_stack(double depth = 40.0, double top_layer_thickness = 0.5,
                           double sigma_top = 1.0);

}  // namespace subspar
