#include "substrate/fd_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/ic0.hpp"
#include "linalg/iterative.hpp"
#include "linalg/reorder.hpp"
#include "linalg/robust.hpp"
#include "linalg/sparse.hpp"
#include "substrate/multigrid.hpp"
#include "transform/fft.hpp"
#include "transform/poisson.hpp"
#include "util/check.hpp"

namespace subspar {
namespace {
/// Column-chunk width per pcg_block call (see eigen_solver.cpp).
constexpr std::size_t kMaxSolveBlock = 16;

/// The Table 2.1 fast-Poisson preconditioner behind the blockwise
/// Preconditioner interface: column fan-out over the pool, per-column
/// arithmetic identical to a single solve.
class FastPoissonPreconditioner final : public Preconditioner {
 public:
  explicit FastPoissonPreconditioner(PoissonGrid grid) : fp_(std::move(grid)) {}
  Matrix apply_many(const Matrix& r) const override { return fp_.solve_many(r); }

 private:
  FastPoisson3D fp_;
};

/// Size gate for the dense direct-solve fallback (O(n^2) memory, O(n^3)
/// factorization over the full grid).
constexpr std::size_t kMaxDirectDim = 4096;

/// Tighter-preconditioner stage of the fallback chain: an RCM-reordered
/// IC(0) factor built lazily on first use, so healthy runs under the cheap
/// fast-Poisson / multigrid preconditioners never pay for it.
class LazyIc0Preconditioner final : public Preconditioner {
 public:
  explicit LazyIc0Preconditioner(const SparseMatrix& a) : a_(&a) {}
  Matrix apply_many(const Matrix& r) const override {
    if (!inner_) inner_ = std::make_unique<Ic0Preconditioner>(*a_, rcm_ordering(*a_));
    return inner_->apply_many(r);
  }

 private:
  const SparseMatrix* a_;
  mutable std::unique_ptr<Ic0Preconditioner> inner_;
};

void accumulate_diag(SolverDiagnostics& d, const RobustSolveReport& r) {
  d.iterations += static_cast<long>(r.iterations);
  d.max_iteration_hits += static_cast<long>(r.max_iteration_hits);
  d.restarts += static_cast<long>(r.restarts);
  d.tighter_restarts += static_cast<long>(r.tighter_restarts);
  d.direct_columns += static_cast<long>(r.direct_columns);
  d.nonfinite_recoveries += static_cast<long>(r.nonfinite_events);
  if (!r.clean) d.worst_residual = std::max(d.worst_residual, r.worst_residual);
}

}  // namespace

struct FdSolver::Impl {
  Layout layout;
  SubstrateStack stack;
  FdSolverOptions options;

  std::size_t nx = 0, ny = 0, nz = 0;
  double h = 0.0;
  double g_contact = 0.0;  ///< ghost-resistor conductance sigma_top * h

  SparseMatrix a;  // grid-of-resistors Laplacian
  // Mixed-precision mirror of `a` (fp32 values, 32-bit column indices):
  // drives the inner sweeps of iterative refinement. Empty in kFp64 mode.
  SparseMirrorF32 a_lo;
  // The sparse engine's preconditioner branch (fast-Poisson / batched
  // multigrid / RCM-reordered level-scheduled IC(0)); null = plain CG.
  // The multigrid hierarchy outlives its non-owning preconditioner wrapper.
  std::unique_ptr<GridMultigrid> multigrid;
  std::unique_ptr<Preconditioner> precond;
  // Fallback-chain stages: the tighter preconditioner (lazy IC(0); null when
  // IC(0) already is the primary) and the size-gated dense direct factor.
  std::unique_ptr<Preconditioner> tighter;
  mutable std::unique_ptr<Cholesky> direct_factor;

  // Top-plane node indices per contact (into the full grid vector).
  std::vector<std::vector<std::size_t>> contact_nodes;

  mutable long total_iterations = 0;
  mutable long stat_solves = 0;

  Impl(const Layout& l, const SubstrateStack& s, FdSolverOptions o)
      : layout(l), stack(s), options(o) {}

  std::size_t index(std::size_t x, std::size_t y, std::size_t z) const {
    return x + nx * (y + ny * z);
  }

  // Dense direct fallback: the sparse Laplacian densified and
  // Cholesky-factored once, reused by every later fallback.
  Matrix direct_solve(const Matrix& b) const {
    if (!direct_factor) {
      const std::size_t n = a.rows();
      Matrix dense(n, n);
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t t = a.row_begin(i); t < a.row_end(i); ++t)
          dense(i, a.col_index(t)) = a.value(t);
      direct_factor = std::make_unique<Cholesky>(dense);
    }
    return direct_factor->solve(b);
  }

  // One right-hand-side chunk through the robust fallback chain: pcg_block,
  // then restarts (the last with the lazy IC(0)), then the size-gated dense
  // direct solve. Throws SolverConvergenceError when all of it fails.
  Matrix robust_chunk(const Matrix& b, SolverDiagnostics& d, std::size_t* iterations) const {
    RobustSolveReport rrep;
    const LinearOpMany op = [&](const Matrix& p) {
      Matrix y = a.apply_many(p);
      fault_corrupt(FaultSite::kSolverApply, y);
      return y;
    };
    const DirectSolveFn direct =
        b.rows() <= kMaxDirectDim
            ? DirectSolveFn([this](const Matrix& bb) { return direct_solve(bb); })
            : DirectSolveFn();
    // kMixed: the fp32 mirror drives the refinement inner sweeps; the fp64
    // true-residual correction (and the whole fallback chain) keeps the
    // rel_tol bound. Faults are injected on the fp64 applies only — the
    // mirror is an approximation the refinement already treats as untrusted.
    const LinearOpMany op_lo =
        options.precision == Precision::kMixed
            ? LinearOpMany([&](const Matrix& p) { return a_lo.apply_many(p); })
            : LinearOpMany();
    const Matrix xc = robust_pcg_block(
        op, b,
        {.iter = {.rel_tol = options.rel_tol, .max_iterations = options.max_iterations}},
        &rrep, precond.get(), tighter.get(), direct, op_lo);
    accumulate_diag(d, rrep);
    if (iterations) *iterations = rrep.iterations;
    return xc;
  }

  // Right-hand-side columns [j0, j0 + kc) of the volume system: each
  // contact's ghost resistors inject g_contact * V into its top-plane
  // nodes (shared by the single-column and blocked paths).
  Matrix assemble_rhs(const Matrix& contact_voltages, std::size_t j0, std::size_t kc) const {
    Matrix b(nx * ny * nz, kc);
    for (std::size_t j = 0; j < kc; ++j)
      for (std::size_t c = 0; c < contact_nodes.size(); ++c)
        for (const std::size_t node : contact_nodes[c])
          b(node, j) += g_contact * contact_voltages(c, j0 + j);
    return b;
  }

  // Shared volume-solve core: contact-voltage columns -> interior voltage
  // columns, one blocked PCG per chunk of <= kMaxSolveBlock columns. The
  // operator is one row-partitioned SpMM per iteration; the preconditioner
  // one blockwise apply_many. A single column skips the block machinery
  // (k x k Gram solves, deflation bookkeeping, Matrix temporaries) and
  // runs the scalar-recurrence pcg() — substantially cheaper per iteration
  // at equal arithmetic per operator apply.
  Matrix solve_volume_block(const Matrix& contact_voltages, SolverDiagnostics& d) const {
    const std::size_t nodes = nx * ny * nz;
    const std::size_t k = contact_voltages.cols();
    Matrix x(nodes, k);
    // The scalar fast path is fp64-only: mixed-precision refinement is a
    // batched construct (fp32 SpMM bandwidth + fp64 correction), so a mixed
    // single column routes through robust_chunk like any other block.
    if (k == 1 && options.precision == Precision::kFp64) {
      const Matrix bm = assemble_rhs(contact_voltages, 0, 1);
      const Vector b = bm.col(0);
      IterStats stats;
      const LinearOp op = [&](const Vector& p) {
        Vector y = a.apply(p);
        fault_corrupt(FaultSite::kSolverApply, y);
        return y;
      };
      const LinearOp pre = precond
          ? LinearOp([&](const Vector& r) { return precond->apply(r); })
          : LinearOp();
      Vector xv = pcg(
          op, b, {.rel_tol = options.rel_tol, .max_iterations = options.max_iterations},
          &stats, pre);
      const bool corrupted = fault_corrupt(FaultSite::kSolverSolve, xv);
      bool finite = true;
      for (std::size_t i = 0; i < xv.size() && finite; ++i) finite = std::isfinite(xv[i]);
      total_iterations += static_cast<long>(stats.iterations);
      stat_solves += 1;
      d.iterations += static_cast<long>(stats.iterations);
      if (stats.converged && !corrupted && finite) {
        x.set_col(0, xv);
        return x;
      }
      // Scalar fast path failed: escalate the single column into the same
      // robust chain the blocked path uses.
      if (!stats.converged) ++d.max_iteration_hits;
      if (!finite) ++d.nonfinite_recoveries;
      std::size_t it = 0;
      const Matrix xc = robust_chunk(bm, d, &it);
      total_iterations += static_cast<long>(it);
      x.set_col(0, xc.col(0));
      return x;
    }
    for (std::size_t j0 = 0; j0 < k; j0 += kMaxSolveBlock) {
      const std::size_t kc = std::min(kMaxSolveBlock, k - j0);
      const Matrix b = assemble_rhs(contact_voltages, j0, kc);
      std::size_t it = 0;
      const Matrix xc = robust_chunk(b, d, &it);
      total_iterations += static_cast<long>(it) * static_cast<long>(kc);
      stat_solves += static_cast<long>(kc);
      for (std::size_t j = 0; j < kc; ++j)
        for (std::size_t i = 0; i < nodes; ++i) x(i, j0 + j) = xc(i, j);
    }
    return x;
  }

  // Contact currents read off a volume solution column.
  Vector currents_from(const Matrix& contact_voltages, const Matrix& x, std::size_t j) const {
    Vector currents(contact_nodes.size());
    for (std::size_t c = 0; c < contact_nodes.size(); ++c) {
      double s = 0.0;
      for (const std::size_t node : contact_nodes[c])
        s += g_contact * (contact_voltages(c, j) - x(node, j));
      currents[c] = s;
    }
    return currents;
  }
};

FdSolver::FdSolver(const Layout& layout, const SubstrateStack& stack, FdSolverOptions options)
    : impl_(std::make_unique<Impl>(layout, stack, options)) {
  Impl& im = *impl_;
  SUBSPAR_REQUIRE(layout.n_contacts() > 0);
  SUBSPAR_REQUIRE(options.grid_h > 0.0);
  const double h = options.grid_h;
  im.h = h;

  const double width = layout.width(), height = layout.height(), depth = stack.depth();
  im.nx = static_cast<std::size_t>(std::round(width / h));
  im.ny = static_cast<std::size_t>(std::round(height / h));
  im.nz = static_cast<std::size_t>(std::round(depth / h));
  SUBSPAR_REQUIRE(im.nz >= 2);
  SUBSPAR_REQUIRE(std::abs(static_cast<double>(im.nx) * h - width) < 1e-9 * width);
  SUBSPAR_REQUIRE(is_power_of_two(im.nx) && is_power_of_two(im.ny));

  // Plane conductivities: node plane z (0 = bottom) sits at depth
  // d - (z + 1/2) h below the surface.
  std::vector<double> sigma(im.nz);
  for (std::size_t z = 0; z < im.nz; ++z)
    sigma[z] = stack.conductivity_at_depth(depth - (static_cast<double>(z) + 0.5) * h);
  const double sigma_top = sigma[im.nz - 1];
  im.g_contact = (options.ghost_half_spacing ? 2.0 : 1.0) * sigma_top * h;

  std::vector<double> gz(im.nz - 1);
  for (std::size_t z = 0; z + 1 < im.nz; ++z)
    // Two h/2 resistors in series across the plane gap (Fig. 2-2).
    gz[z] = 2.0 * h * sigma[z] * sigma[z + 1] / (sigma[z] + sigma[z + 1]);

  const bool grounded = stack.backplane() == Backplane::kGrounded;
  const double g_bottom = grounded ? 2.0 * sigma[0] * h : 0.0;

  // Contact nodes: panels -> top-plane node ranges (node x covers physical
  // [x h, (x+1) h), matching the panel grid when grid_h == panel_size).
  const double hp = layout.panel_size();
  std::vector<char> is_contact(im.nx * im.ny, 0);
  for (std::size_t c = 0; c < layout.n_contacts(); ++c) {
    std::vector<std::size_t> nodes;
    for (const auto& r : layout.contact(c).parts) {
      const long x0 = std::lround(static_cast<double>(r.x0) * hp / h);
      const long x1 = std::lround(static_cast<double>(r.x1()) * hp / h);
      const long y0 = std::lround(static_cast<double>(r.y0) * hp / h);
      const long y1 = std::lround(static_cast<double>(r.y1()) * hp / h);
      for (long y = y0; y < y1; ++y)
        for (long x = x0; x < x1; ++x) {
          SUBSPAR_REQUIRE(x >= 0 && y >= 0 && x < static_cast<long>(im.nx) &&
                          y < static_cast<long>(im.ny));
          nodes.push_back(im.index(static_cast<std::size_t>(x), static_cast<std::size_t>(y),
                                   im.nz - 1));
          is_contact[static_cast<std::size_t>(x) + im.nx * static_cast<std::size_t>(y)] = 1;
        }
    }
    SUBSPAR_REQUIRE(!nodes.empty());  // grid too coarse for this contact otherwise
    im.contact_nodes.push_back(std::move(nodes));
  }

  // Wells: etched-away grid nodes (§2.1). Removed nodes keep identity rows
  // so the system stays SPD with a fixed size; all resistors touching them
  // are omitted, which is exactly a Neumann boundary around the cavity.
  const std::size_t n = im.nx * im.ny * im.nz;
  std::vector<char> removed(n, 0);
  for (const SubstrateWell& w : options.wells) {
    SUBSPAR_REQUIRE(w.width > 0.0 && w.height > 0.0 && w.depth > 0.0);
    SUBSPAR_REQUIRE(w.depth < depth);
    for (std::size_t z = 0; z < im.nz; ++z) {
      const double node_depth = depth - (static_cast<double>(z) + 0.5) * h;
      if (node_depth >= w.depth) continue;  // below the cavity floor
      for (std::size_t y = 0; y < im.ny; ++y) {
        for (std::size_t x = 0; x < im.nx; ++x) {
          const double cx = (static_cast<double>(x) + 0.5) * h;
          const double cy = (static_cast<double>(y) + 0.5) * h;
          if (cx >= w.x0 && cx <= w.x0 + w.width && cy >= w.y0 && cy <= w.y0 + w.height)
            removed[im.index(x, y, z)] = 1;
        }
      }
    }
  }
  for (const auto& nodes : im.contact_nodes)
    for (const std::size_t node : nodes)
      SUBSPAR_REQUIRE(!removed[node]);  // wells may not swallow contacts

  // Assemble the grid-of-resistors matrix (eq. 2.9).
  SparseBuilder bld(n, n);
  for (std::size_t z = 0; z < im.nz; ++z) {
    const double gl = sigma[z] * h;
    for (std::size_t y = 0; y < im.ny; ++y) {
      for (std::size_t x = 0; x < im.nx; ++x) {
        const std::size_t i = im.index(x, y, z);
        if (removed[i]) {
          bld.add(i, i, 1.0);  // decoupled identity row
          continue;
        }
        double diag = 0.0;
        auto stamp = [&](std::size_t j, double g) {
          if (removed[j]) return;  // omitted resistor = Neumann cavity wall
          bld.add(i, j, -g);
          diag += g;
        };
        if (x > 0) stamp(im.index(x - 1, y, z), gl);
        if (x + 1 < im.nx) stamp(im.index(x + 1, y, z), gl);
        if (y > 0) stamp(im.index(x, y - 1, z), gl);
        if (y + 1 < im.ny) stamp(im.index(x, y + 1, z), gl);
        if (z > 0) stamp(im.index(x, y, z - 1), gz[z - 1]);
        if (z + 1 < im.nz) stamp(im.index(x, y, z + 1), gz[z]);
        if (z == 0 && grounded) diag += g_bottom;
        if (z == im.nz - 1 && is_contact[x + im.nx * y]) diag += im.g_contact;
        // A fully isolated interior node (possible only in pathological well
        // shapes) degenerates to an identity row.
        bld.add(i, i, diag > 0.0 ? diag : 1.0);
      }
    }
  }
  im.a = SparseMatrix(bld);
  if (options.precision == Precision::kMixed) im.a_lo = SparseMirrorF32(im.a);
  // The fallback chain's tighter preconditioner; pointless when IC(0) is
  // already the primary. Lazy: the factor is only built if a solve fails.
  if (options.precond != FdPreconditioner::kIncompleteCholesky)
    im.tighter = std::make_unique<LazyIc0Preconditioner>(im.a);

  // Preconditioner setup: every branch is a Preconditioner instance the
  // blocked PCG applies to whole residual blocks.
  switch (options.precond) {
    case FdPreconditioner::kNone:
      break;
    case FdPreconditioner::kIncompleteCholesky:
      im.precond = std::make_unique<Ic0Preconditioner>(
          im.a, options.reorder == SparseReorder::kRcm ? rcm_ordering(im.a)
                                                       : std::vector<std::size_t>{});
      break;
    case FdPreconditioner::kMultigrid: {
      GridSpec spec;
      spec.nx = im.nx;
      spec.ny = im.ny;
      spec.nz = im.nz;
      spec.h = h;
      spec.sigma = sigma;
      spec.g_top.assign(im.nx * im.ny, 0.0);
      for (std::size_t k = 0; k < im.nx * im.ny; ++k)
        if (is_contact[k]) spec.g_top[k] = im.g_contact;
      spec.g_bottom = g_bottom;
      if (!options.wells.empty()) spec.removed = removed;
      MultigridOptions mg_options;
      mg_options.smoother = options.mg_smoother;
      mg_options.smoothing_sweeps = options.mg_smoothing_sweeps;
      im.multigrid = std::make_unique<GridMultigrid>(std::move(spec), mg_options);
      im.precond = std::make_unique<MultigridPreconditioner>(*im.multigrid);
      break;
    }
    default: {
      double p = 1.0;
      if (options.precond == FdPreconditioner::kFastNeumann) p = 0.0;
      if (options.precond == FdPreconditioner::kFastAreaWeighted) {
        double contact_area = 0.0;
        for (std::size_t c = 0; c < layout.n_contacts(); ++c)
          contact_area += layout.contact_area(c);
        p = contact_area / (width * height);
      }
      PoissonGrid pg;
      pg.nx = im.nx;
      pg.ny = im.ny;
      pg.nz = im.nz;
      pg.lateral_g.resize(im.nz);
      for (std::size_t z = 0; z < im.nz; ++z) pg.lateral_g[z] = sigma[z] * h;
      pg.vertical_g = gz;
      pg.top_g = p * im.g_contact;
      pg.bottom_g = g_bottom;
      im.precond = std::make_unique<FastPoissonPreconditioner>(std::move(pg));
      break;
    }
  }
}

FdSolver::~FdSolver() = default;

std::size_t FdSolver::n_contacts() const { return impl_->layout.n_contacts(); }

std::string FdSolver::cache_tag() const {
  const FdSolverOptions& o = impl_->options;
  char buf[160];
  // The sparse-engine knobs (reorder, multigrid smoother/sweeps) cannot
  // change the operator G beyond solver tolerance, but they select
  // different preconditioners — digest them so perf A/B runs get distinct
  // cache entries too.
  // `precision` is digested too: kMixed legitimately produces different
  // result bits (same residual bound), unlike the SIMD backend, which is
  // deliberately NOT part of the tag.
  std::snprintf(buf, sizeof buf, "|%a|%d|%a|%zu|%d|%d|%d|%d|p%d", o.grid_h,
                static_cast<int>(o.precond), o.rel_tol, o.max_iterations,
                o.ghost_half_spacing ? 1 : 0, static_cast<int>(o.reorder),
                static_cast<int>(o.mg_smoother), o.mg_smoothing_sweeps,
                static_cast<int>(o.precision));
  std::string tag = name() + buf;
  for (const SubstrateWell& w : o.wells) {
    std::snprintf(buf, sizeof buf, "|%a,%a,%a,%a,%a", w.x0, w.y0, w.width, w.height, w.depth);
    tag += buf;
  }
  return tag + "|" + substrate_fingerprint(impl_->layout, impl_->stack);
}

std::size_t FdSolver::grid_nodes() const { return impl_->nx * impl_->ny * impl_->nz; }

double FdSolver::avg_iterations() const {
  return impl_->stat_solves == 0 ? 0.0
                                 : static_cast<double>(impl_->total_iterations) /
                                       static_cast<double>(impl_->stat_solves);
}

void FdSolver::reset_iteration_stats() const {
  impl_->total_iterations = 0;
  impl_->stat_solves = 0;
}

Vector FdSolver::solve_volume(const Vector& contact_voltages) const {
  SUBSPAR_REQUIRE(contact_voltages.size() == n_contacts());
  Matrix v(contact_voltages.size(), 1);
  v.set_col(0, contact_voltages);
  return impl_->solve_volume_block(v, diag()).col(0);
}

Vector FdSolver::do_solve(const Vector& contact_voltages) const {
  Matrix v(contact_voltages.size(), 1);
  v.set_col(0, contact_voltages);
  const Matrix x = impl_->solve_volume_block(v, diag());
  return impl_->currents_from(v, x, 0);
}

Matrix FdSolver::do_solve_many(const Matrix& contact_voltages) const {
  const Matrix x = impl_->solve_volume_block(contact_voltages, diag());
  Matrix currents(n_contacts(), contact_voltages.cols());
  for (std::size_t j = 0; j < contact_voltages.cols(); ++j)
    currents.set_col(j, impl_->currents_from(contact_voltages, x, j));
  return currents;
}

}  // namespace subspar
