// The black-box substrate solver interface (§2.1).
//
// Everything the sparsification algorithms assume about the substrate is
// captured here: a routine that maps the vector of contact voltages to the
// vector of contact currents (i.e., applies the dense conductance matrix G
// implicitly). The base class counts solves so the benches can report the
// paper's solve-reduction factors.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geometry/layout.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector.hpp"
#include "substrate/stack.hpp"

namespace subspar {

/// Content fingerprint (16 hex digits) of a solver's construction inputs:
/// panel grid, contact rectangles, layer profile, backplane. Concrete
/// solvers fold it into cache_tag() so a solver is cache-keyed to the
/// geometry it was actually built over, and the ModelCache key reuses it
/// for the (layout, stack) the caller passes — the two match exactly when
/// the caller keeps the documented precondition.
std::string substrate_fingerprint(const Layout& layout, const SubstrateStack& stack);

/// Robustness counters a solver accumulates across its solve calls. The
/// iterative solvers feed these from the robust_pcg_block fallback chain
/// (linalg/robust.hpp); the Extractor snapshots per-phase deltas into the
/// ExtractionReport. All zeros on a healthy run.
struct SolverDiagnostics {
  long iterations = 0;            ///< inner PCG iterations (block iterations per chunk)
  long max_iteration_hits = 0;    ///< iterative attempts that exhausted max_iterations
  long restarts = 0;              ///< fresh iterative re-runs taken by the fallback chain
  long tighter_restarts = 0;      ///< restarts that switched to a tighter preconditioner
  long direct_columns = 0;        ///< columns recovered by the dense direct fallback
  long nonfinite_recoveries = 0;  ///< non-finite candidate columns detected and retried
  double worst_residual = 0.0;    ///< worst verified residual among recovered columns
};

class SubstrateSolver {
 public:
  virtual ~SubstrateSolver() = default;

  /// Applies G: contact voltages in, contact currents out.
  Vector solve(const Vector& contact_voltages) const;

  /// Applies G to k voltage vectors at once (the columns of
  /// `contact_voltages`, an n_contacts x k matrix). Counts as k black-box
  /// solves — the paper's solve-reduction factors are unchanged by
  /// batching. The base implementation loops over do_solve(); solvers
  /// override do_solve_many() to share work across the columns (blocked
  /// PCG, batched transforms, thread fan-out). Results for each column
  /// agree with solve() of that column to solver tolerance, and are
  /// bit-identical across SUBSPAR_THREADS settings.
  Matrix solve_many(const Matrix& contact_voltages) const;

  /// Number of contact panels, i.e. the dimension of G.
  virtual std::size_t n_contacts() const = 0;
  /// Short solver label used in bench/table output.
  virtual std::string name() const = 0;

  /// Configuration digest for cache keying (subspar/cache.hpp): two solvers
  /// with equal cache_tag()s must implement the same operator G to solver
  /// tolerance. The base returns name(); concrete solvers append every
  /// construction option that changes G or its accuracy (grid spacing,
  /// wells, tolerances, ...) plus the substrate_fingerprint of the
  /// (layout, stack) they were built over, so a tag binds a solver to its
  /// actual construction geometry.
  virtual std::string cache_tag() const { return name(); }

  /// Black-box solves performed since construction / the last reset.
  long solve_count() const { return solve_count_; }
  /// Zeroes the solve counter (benches call this between phases).
  void reset_solve_count() const { solve_count_ = 0; }

  /// Robustness counters accumulated since construction / the last reset.
  const SolverDiagnostics& diagnostics() const { return diagnostics_; }
  void reset_diagnostics() const { diagnostics_ = SolverDiagnostics{}; }

 protected:
  /// Mutable hook for concrete solvers to fold fallback-chain reports into.
  SolverDiagnostics& diag() const { return diagnostics_; }

  /// Implementation hook: one application of G (solve() wraps this and
  /// maintains the solve counter).
  virtual Vector do_solve(const Vector& contact_voltages) const = 0;

  /// Implementation hook for batched application; the default loops over
  /// do_solve() column by column.
  virtual Matrix do_solve_many(const Matrix& contact_voltages) const;

 private:
  mutable long solve_count_ = 0;
  mutable SolverDiagnostics diagnostics_;
};

/// Naive extraction: G(:, i) = solver(e_i), n solves (§1.2).
Matrix extract_dense(const SubstrateSolver& solver);

/// Extracts the columns listed in `cols` only (the 10% sample used to score
/// large examples in Table 4.3).
Matrix extract_columns(const SubstrateSolver& solver, const std::vector<std::size_t>& cols);

/// A deterministic every-k-th column sample covering ~`fraction` of columns.
/// Requires n > 0 and fraction in (0, 1]; always returns at least column 0.
std::vector<std::size_t> sample_columns(std::size_t n, double fraction);

}  // namespace subspar
