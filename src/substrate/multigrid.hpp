// Geometric multigrid for the grid-of-resistors substrate system — the
// direction §2.2.2 leaves as future work ("multigrid techniques ... may be
// very useful here. The iteration counts could possibly be reduced somewhat,
// and each iteration would probably cost less than for PCG").
//
// A V-cycle over rediscretized coarse grids: each level halves every even
// dimension (semicoarsening in x/y when nz is odd), with layer conductivity
// profiles and the contact/backplane couplings re-sampled per level — the
// "dealing with layer boundaries in the coarse-grid representation" issue
// the thesis calls out is handled by conductance-preserving aggregation.
// Smoothing is symmetric Gauss-Seidel and restriction is the transpose of
// piecewise-constant prolongation (scaled), so one V-cycle is a symmetric
// positive operator usable directly as a PCG preconditioner.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "linalg/sparse.hpp"
#include "linalg/vector.hpp"

namespace subspar {

/// Geometry + coefficients of one structured substrate grid.
struct GridSpec {
  std::size_t nx = 0, ny = 0, nz = 0;  ///< z index 0 = bottom
  double h = 0.0;
  std::vector<double> sigma;     ///< plane conductivities, size nz
  std::vector<double> g_top;     ///< per-top-node contact ghost conductance, nx*ny (0 = none)
  double g_bottom = 0.0;         ///< per-bottom-node backplane conductance
  std::vector<char> removed;     ///< optional etched nodes, nx*ny*nz (empty = none)

  std::size_t size() const { return nx * ny * nz; }
  std::size_t index(std::size_t x, std::size_t y, std::size_t z) const {
    return x + nx * (y + ny * z);
  }
};

/// Assembles the SPD grid-of-resistors matrix of a GridSpec (eq. 2.9, with
/// series-combined layer-boundary resistors and identity rows for removed
/// nodes).
SparseMatrix assemble_grid_laplacian(const GridSpec& spec);

struct MultigridOptions {
  int max_levels = 8;
  std::size_t coarsest_max_nodes = 600;  ///< dense Cholesky below this
  int smoothing_sweeps = 1;              ///< symmetric GS pre/post sweeps
};

class GridMultigrid {
 public:
  explicit GridMultigrid(GridSpec fine, MultigridOptions options = {});
  ~GridMultigrid();

  /// One V-cycle applied to b from a zero initial guess: the preconditioner
  /// action M^{-1} b.
  Vector vcycle(const Vector& b) const;

  /// Stand-alone iterative solve by repeated V-cycles (residual-corrected),
  /// mostly for tests; returns the iterate after `cycles` cycles.
  Vector solve(const Vector& b, std::size_t cycles) const;

  std::size_t levels() const { return levels_.size(); }
  const SparseMatrix& fine_matrix() const;

 private:
  struct Level {
    GridSpec spec;
    SparseMatrix a;
    std::vector<std::size_t> diag;  // CSR index of the diagonal per row
    bool cx = false, cy = false, cz = false;  // which dims the next level halves
  };

  void smooth(const Level& lvl, Vector& x, const Vector& b, bool forward) const;
  Vector restrict_to_coarse(std::size_t fine_level, const Vector& r) const;
  Vector prolong_to_fine(std::size_t fine_level, const Vector& xc) const;
  void cycle(std::size_t level, Vector& x, const Vector& b) const;

  MultigridOptions options_;
  std::vector<Level> levels_;
  std::unique_ptr<class Cholesky> coarse_solver_;
};

}  // namespace subspar
