// Geometric multigrid for the grid-of-resistors substrate system — the
// direction §2.2.2 leaves as future work ("multigrid techniques ... may be
// very useful here. The iteration counts could possibly be reduced somewhat,
// and each iteration would probably cost less than for PCG").
//
// A V-cycle over rediscretized coarse grids: each level halves every even
// dimension (semicoarsening in x/y when nz is odd), with layer conductivity
// profiles and the contact/backplane couplings re-sampled per level — the
// "dealing with layer boundaries in the coarse-grid representation" issue
// the thesis calls out is handled by conductance-preserving aggregation.
// Smoothing is symmetric Gauss-Seidel (lexicographic, or red-black for
// parallel sweeps) and restriction is the transpose of piecewise-constant
// prolongation (scaled), so one V-cycle is a symmetric positive operator
// usable directly as a PCG preconditioner.
//
// The engine entry point is vcycle_many: all k right-hand sides descend
// the hierarchy together — one smoothing sweep, one restriction, one
// coarse solve (dense Cholesky, factored once at construction) per level
// per *block* instead of per vector, with each row's k columns swept
// contiguously.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "linalg/iterative.hpp"
#include "linalg/sparse.hpp"
#include "linalg/vector.hpp"

namespace subspar {

/// Geometry + coefficients of one structured substrate grid.
struct GridSpec {
  std::size_t nx = 0, ny = 0, nz = 0;  ///< z index 0 = bottom
  double h = 0.0;
  std::vector<double> sigma;     ///< plane conductivities, size nz
  std::vector<double> g_top;     ///< per-top-node contact ghost conductance, nx*ny (0 = none)
  double g_bottom = 0.0;         ///< per-bottom-node backplane conductance
  std::vector<char> removed;     ///< optional etched nodes, nx*ny*nz (empty = none)

  std::size_t size() const { return nx * ny * nz; }
  std::size_t index(std::size_t x, std::size_t y, std::size_t z) const {
    return x + nx * (y + ny * z);
  }
};

/// Assembles the SPD grid-of-resistors matrix of a GridSpec (eq. 2.9, with
/// series-combined layer-boundary resistors and identity rows for removed
/// nodes).
SparseMatrix assemble_grid_laplacian(const GridSpec& spec);

/// Gauss-Seidel sweep ordering inside one smoothing pass.
enum class MultigridSmoother {
  kGaussSeidel,  ///< lexicographic symmetric GS: serial rows, columns batched
  kRedBlack,     ///< red-black GS: each color's rows sweep in parallel
};

struct MultigridOptions {
  int max_levels = 8;
  std::size_t coarsest_max_nodes = 600;  ///< dense Cholesky below this
  int smoothing_sweeps = 1;              ///< symmetric GS pre/post sweeps
  MultigridSmoother smoother = MultigridSmoother::kGaussSeidel;
};

class GridMultigrid {
 public:
  explicit GridMultigrid(GridSpec fine, MultigridOptions options = {});
  ~GridMultigrid();

  /// One V-cycle applied to b from a zero initial guess: the preconditioner
  /// action M^{-1} b. Single-vector wrapper over vcycle_many.
  Vector vcycle(const Vector& b) const;

  /// One V-cycle on k right-hand sides at once (the columns of b): the
  /// whole block descends each level together. Column j is bit-identical
  /// to vcycle_many of that column alone, for any SUBSPAR_THREADS.
  Matrix vcycle_many(const Matrix& b) const;

  /// Stand-alone iterative solve by repeated V-cycles (residual-corrected),
  /// mostly for tests; returns the iterate after `cycles` cycles.
  Vector solve(const Vector& b, std::size_t cycles) const;

  std::size_t levels() const { return levels_.size(); }
  const SparseMatrix& fine_matrix() const;

 private:
  struct Level {
    GridSpec spec;
    SparseMatrix a;
    std::vector<std::size_t> diag;  // CSR index of the diagonal per row
    std::vector<std::size_t> red, black;      // (x+y+z) parity classes
    bool cx = false, cy = false, cz = false;  // which dims the next level halves
  };

  void smooth_many(const Level& lvl, Matrix& x, const Matrix& b, bool forward) const;
  Matrix restrict_to_coarse(std::size_t fine_level, const Matrix& r) const;
  void prolong_add_to_fine(std::size_t fine_level, Matrix& xf, const Matrix& xc) const;
  void cycle_many(std::size_t level, Matrix& x, const Matrix& b) const;

  MultigridOptions options_;
  std::vector<Level> levels_;
  std::unique_ptr<class Cholesky> coarse_solver_;
};

/// A GridMultigrid V-cycle behind the blockwise Preconditioner interface
/// (non-owning; the multigrid must outlive the preconditioner).
class MultigridPreconditioner final : public Preconditioner {
 public:
  explicit MultigridPreconditioner(const GridMultigrid& mg) : mg_(&mg) {}
  Matrix apply_many(const Matrix& r) const override { return mg_->vcycle_many(r); }

 private:
  const GridMultigrid* mg_;
};

}  // namespace subspar
