// Eigenfunction (surface-variable) substrate solver (§2.3.1, Fig. 2-6).
//
// The panel current-to-potential operator A is diagonalized by the 2-D DCT:
//   v = (1/h^2) * DCT^T diag(lambda_mn * sinc_m^2 * sinc_n^2) DCT q,
// where lambda_mn comes from the layer recursion (SubstrateStack::lambda)
// and the sinc^2 factors are the Galerkin panel-averaging weights of the
// uniform-current / average-potential discretization. A is symmetric
// positive definite, so the contact-panel system A_cc q = v is solved with
// (optionally block-preconditioned) CG; contact currents are the per-contact
// panel-current sums.
//
// This solver plays the role of Chou's QuickSub integral-equation code in
// the paper's experiments: same operator, different (CG vs multigrid) inner
// iteration. Like QuickSub it requires a grounded backplane; floating
// substrates use the resistive-bottom-layer emulation (paper_stack).
#pragma once

#include <cstddef>
#include <memory>

#include "geometry/layout.hpp"
#include "linalg/backend.hpp"
#include "linalg/iterative.hpp"
#include "substrate/solver.hpp"
#include "substrate/stack.hpp"

namespace subspar {

struct SurfaceSolverOptions {
  double rel_tol = 1e-6;           ///< CG residual tolerance (paper's choice)
  std::size_t max_iterations = 2000;
  bool contact_block_precond = true;  ///< block-Jacobi over contacts
  /// kMixed: batched solves run mixed-precision iterative refinement — the
  /// inner PCG sweeps apply the panel operator through fp32 DCT twiddle /
  /// dense tables (eigenvalue scaling stays fp64) and an fp64 true-residual
  /// correction restores the rel_tol bound. Legitimately different result
  /// bits (digested into cache_tag).
  Precision precision = Precision::kFp64;
};

class SurfaceSolver : public SubstrateSolver {
 public:
  SurfaceSolver(const Layout& layout, const SubstrateStack& stack,
                SurfaceSolverOptions options = {});
  ~SurfaceSolver() override;

  std::size_t n_contacts() const override;
  std::string name() const override { return "eigenfunction"; }
  /// name() plus the solve-accuracy options plus the construction
  /// (layout, stack) fingerprint (see SubstrateSolver::cache_tag).
  std::string cache_tag() const override;

  /// v = A q on the full panel grid (q, v of length panels_x * panels_y).
  Vector apply_panel_operator(const Vector& panel_currents) const;

  /// Average CG iterations per solve since the last reset.
  double avg_iterations() const;
  void reset_iteration_stats() const;

 protected:
  Vector do_solve(const Vector& contact_voltages) const override;
  /// Batched solve: one blocked PCG over all columns (chunked to a small
  /// block width), with batched DCT operator applications fanned out over
  /// the SUBSPAR_THREADS pool.
  Matrix do_solve_many(const Matrix& contact_voltages) const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Translation-invariant kernel lookup used to assemble the per-contact
/// block-Jacobi preconditioner (shared with the test suite): the value of
/// the centered panel-response `kernel` (row-major mx x ny grid with the
/// unit source at (cx, cy)) at panel offset (dx, dy). Offsets past the grid
/// edge are clamped to the edge value — a harmless approximation for a
/// preconditioner.
double kernel_block_entry(const Vector& kernel, std::size_t mx, std::size_t ny,
                          std::size_t cx, std::size_t cy, long dx, long dy);

}  // namespace subspar
