// Reproduces Table 4.3: the low-rank method on larger examples, scored on a
// 10% column sample of the exact G.
//
// Paper rows (sparsity / max rel err / thresholded sparsity / frac > 10% /
// solve reduction):
//   Ex. 4: 64x64 alternating grid, n = 4096:   10 / 6.3% /  62 / 1.7% /  8.7
//   Ex. 5: mixed fields,         n = 10240:    21 / 5.3% / 129 / 3.2% / 18
// Expected shape: sparsity, thresholded sparsity and solve reduction all
// GROW with n (the representation is O(n log n)), with a few percent of
// sampled entries off by more than 10%.
//
// Default runs scaled sizes (n ~ 1024 and ~3000); --full runs the paper's;
// --smoke runs only the smallest (anchor) example — the CI configuration.
#include "common.hpp"

using namespace subspar;
using namespace subspar::bench;

namespace {

bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  return false;
}

void run(const char* name, const char* paper, const Layout& layout, Table& table) {
  const auto solver = make_solver(SolverKind::kSurface, layout, bench_stack());
  const QuadTree tree(layout);
  const ExactColumns exact = exact_columns(*solver, 0.10);  // 10% sample (§4.6)
  const MethodRow lr = run_lowrank(*solver, tree, exact, 6.0);
  const MethodRow rbk = run_lowrank_rbk(*solver, tree, exact, 6.0);
  table.add_row({name, std::to_string(layout.n_contacts()), Table::fixed(lr.sparsity, 1),
                 Table::pct(lr.error.max_rel_error_significant, 1),
                 Table::pct(rbk.error.max_rel_error_significant, 1),
                 Table::fixed(lr.threshold_sparsity, 1),
                 Table::pct(lr.threshold_error.frac_above_10pct, 1),
                 Table::fixed(lr.solve_reduction, 1), std::to_string(lr.solves),
                 std::to_string(rbk.solves), Table::fixed(lr.q_sparsity, 1), paper});
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const bool smoke = smoke_mode(argc, argv);
  std::printf("Table 4.3 — low-rank method on larger examples (10%% column sample)\n");
  if (smoke) std::printf("[--smoke: anchor example only]\n");
  else if (!full) std::printf("[scaled sizes; pass --full for the paper's n = 4096 / 10240]\n");
  std::printf("\n");
  Table table({"example", "n", "sparsity", "max rel err", "max err RBK", "thresh. sparsity",
               "frac > 10%", "solve red.", "solves LR", "solves RBK", "sparsity(Q)",
               "paper (sp/err/thsp/frac/sr)"});
  // A smaller anchor point demonstrates the growth trend within one run.
  run("anchor: regular", "-", example_regular(full), table);
  if (!smoke) {
    run("Ex. 4 alternating", "10/6.3%/62/1.7%/8.7", example_4_large_alternating(full), table);
    run("Ex. 5 mixed fields", "21/5.3%/129/3.2%/18", example_5_large_mixed(full), table);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: sparsity and solve reduction grow with n\n"
              "(O(n log n) representation; §4.6, §5.1).\n");
  return 0;
}
