// Reproduces Figs. 3-1 through 3-4: the standard contact-voltage basis, the
// transformed (vanishing-moment) basis on the finest level, and the
// recombined basis on the next-coarser level, rendered as ASCII voltage
// maps ('+' = positive, '-' = negative, '.' = zero volts, ' ' = no contact).
#include <cmath>

#include "common.hpp"

using namespace subspar;
using namespace subspar::bench;

namespace {

// Renders the voltage function of a basis column over a square's panels.
void render(const Layout& layout, const QuadTree& tree, const Vector& col, const SquareId& s) {
  const int side = static_cast<int>(layout.panels_x()) >> s.level;
  const int x0 = s.ix * side, y0 = s.iy * side;
  double vmax = 0.0;
  for (std::size_t i = 0; i < col.size(); ++i) vmax = std::max(vmax, std::abs(col[i]));
  (void)tree;
  for (int y = y0; y < y0 + side; ++y) {
    for (int x = x0; x < x0 + side; ++x) {
      const int owner = layout.panel_owner(static_cast<std::size_t>(x),
                                           static_cast<std::size_t>(y));
      if (owner < 0) {
        std::printf(" ");
        continue;
      }
      const double v = col[static_cast<std::size_t>(owner)];
      std::printf("%c", std::abs(v) < 1e-9 * vmax ? '.' : (v > 0 ? '+' : '-'));
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // 64 contacts; cap the quadtree at level 2 so finest squares hold a 2x2
  // quad of contacts, matching the four-contact groups of Figs. 3-1/3-2.
  const Layout layout = regular_grid_layout(8);
  const QuadTree tree(layout, 2);
  const WaveletBasis basis(tree, /*p=*/0);  // zeroth-moment balancing (§3.1)

  const SquareId fine{2, 1, 1};
  std::printf("Fig. 3-1 — standard basis: 1 V on one contact of the quad\n\n");
  {
    Vector e(layout.n_contacts());
    e[tree.contacts_in(fine).front()] = 1.0;
    render(layout, tree, e, fine);
  }

  std::printf("Fig. 3-2 — transformed basis: balanced (vanishing-moment) functions\n\n");
  for (const std::size_t j : basis.w_columns(fine)) {
    render(layout, tree, basis.column_vector(j), fine);
  }

  const SquareId coarse{1, 0, 0};
  std::printf("Fig. 3-3 — leftover all-one functions pushed up: V of a child square\n\n");
  {
    const SquareBasis& sb = basis.square_basis(SquareId{2, 0, 0});
    Vector v(layout.n_contacts());
    for (std::size_t i = 0; i < sb.contacts.size(); ++i) v[sb.contacts[i]] = sb.v(i, 0);
    render(layout, tree, v, coarse);
  }

  std::printf("Fig. 3-4 — recombined balanced functions on the coarser level\n\n");
  for (const std::size_t j : basis.w_columns(coarse)) {
    render(layout, tree, basis.column_vector(j), coarse);
  }

  std::printf("note: three of each four-dimensional space balance to zero net\n"
              "voltage; one all-positive function per square is pushed up (§3.1).\n");
  return 0;
}
