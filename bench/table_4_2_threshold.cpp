// Reproduces Table 4.2: the thresholded sparsity/accuracy trade-off of the
// low-rank method, with the wavelet method compared at *equal sparsity*.
//
// Paper rows (low-rank: thresholded sparsity / entries off by > 10%;
// wavelet at equal sparsity: entries off by > 10%):
//   1 regular        23 / 0.4%  |  wavelet at sparsity 20: 0.8%
//   2 alternating    24 / 1.0%  |  wavelet (*) 2.5: 89%   (*) even
//   3 mixed shapes   21 / 1.4%  |  wavelet 6.6: 94%        unthresholded
//                                                          wavelet can't
//                                                          match low-rank
// Expected shape: a few percent of entries off for the low-rank method at
// ~20x sparsity; the wavelet method collapses on examples 2 and 3.
#include "common.hpp"

using namespace subspar;
using namespace subspar::bench;

namespace {

void run(const char* name, const char* paper, const Layout& layout, Table& table) {
  const auto solver = make_solver(SolverKind::kSurface, layout, bench_stack());
  const QuadTree tree(layout);
  const Extractor engine(*solver, tree);
  const ExactColumns exact = exact_columns(*solver, 1.0);

  // Low-rank, thresholded to ~6x its unthresholded sparsity (§4.6) —
  // built both ways (deterministic column sampling and block-Krylov).
  const MethodRow lr = run_lowrank(*solver, tree, exact, 6.0);
  const MethodRow rbk = run_lowrank_rbk(*solver, tree, exact, 6.0);

  // Wavelet thresholded to the same *absolute* sparsity as the low-rank
  // G_wt (equal-sparsity comparison).
  const ExtractionResult wr = engine.extract({.method = SparsifyMethod::kWavelet});
  const double target_sparsity = lr.threshold_sparsity;
  const auto target_nnz = static_cast<std::size_t>(
      static_cast<double>(layout.n_contacts()) * static_cast<double>(layout.n_contacts()) /
      target_sparsity);
  const SparseMatrix wt = threshold_to_nnz(wr.model.gw(), target_nnz);
  const ErrorStats werr = reconstruction_error(wr.model.q(), wt, exact.g, exact.ids);
  const bool wavelet_could_not_match = wr.model.gw().nnz() <= target_nnz;

  table.add_row({name, std::to_string(layout.n_contacts()),
                 Table::fixed(lr.threshold_sparsity, 1),
                 Table::pct(lr.threshold_error.frac_above_10pct, 1),
                 Table::pct(rbk.threshold_error.frac_above_10pct, 1),
                 std::string(Table::fixed(wt.sparsity_factor(), 1)) +
                     (wavelet_could_not_match ? " (*)" : ""),
                 Table::pct(werr.frac_above_10pct, 1), paper});
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  std::printf("Table 4.2 — thresholded comparison (equal-sparsity wavelet)\n\n");
  Table table({"example", "n", "sparsity G_wt (LR)", ">10% (LR)", ">10% (RBK)",
               "sparsity (W)", ">10% (W)", "paper (spLR/fracLR | spW/fracW)"});
  run("1 regular", "23/0.4% | 20/0.8%", example_regular(full), table);
  run("2 alternating", "24/1.0% | 2.5(*)/89%", example_alternating(full), table);
  run("3 mixed shapes", "21/1.4% | 6.6/94%", example_shapes(full), table);
  std::printf("%s\n", table.str().c_str());
  std::printf("(*) = the wavelet G_ws was already sparser than the target, i.e.\n"
              "unthresholded wavelets could not reach the low-rank accuracy (paper's *)\n");
  return 0;
}
