// Reproduces Table 4.1: low-rank vs wavelet sparsification without
// thresholding — sparsity factor, max relative error, solve reduction —
// plus the randomized block-Krylov (RBK) row-basis build of the low-rank
// method, which must reach the same accuracy band on fewer black-box
// solves than the deterministic column-sampling construction.
//
// Paper rows (low-rank sparsity / wavelet sparsity / low-rank max err /
// wavelet max err / low-rank solve reduction / wavelet solve reduction):
//   1 regular          3.9 / 2.5 / 5.1% / 0.2% / 3.2 / 2.9
//   2 alternating      4.1 / 2.5 / 5.7% /  47% / 3.3 / 2.9
//   3 mixed shapes     3.5 / 2.3 /  12% /  31% / 2.8 / 2.5
// Expected shape: wavelets win on the regular grid's max error; the
// low-rank method wins decisively on both mixed-size examples while being
// at least as sparse. RBK rows: strictly fewer solves at comparable error.
//
// --json <path> additionally writes the solve-count comparison as a JSON
// artifact (consumed by CI).
#include <fstream>

#include "common.hpp"

using namespace subspar;
using namespace subspar::bench;

namespace {

struct JsonRow {
  std::string name;
  std::size_t n = 0;
  MethodRow sampling;
  MethodRow rbk;
};

void run(const char* name, const char* paper, const Layout& layout, Table& table,
         std::vector<JsonRow>& json_rows) {
  const auto solver = make_solver(SolverKind::kSurface, layout, bench_stack());
  const QuadTree tree(layout);
  const ExactColumns exact = exact_columns(*solver, 1.0);
  const MethodRow lr = run_lowrank(*solver, tree, exact, 6.0);
  const MethodRow rbk = run_lowrank_rbk(*solver, tree, exact, 6.0);
  const MethodRow wv = run_wavelet(*solver, tree, exact, 6.0);
  table.add_row({name, std::to_string(layout.n_contacts()), Table::fixed(lr.sparsity, 1),
                 Table::fixed(wv.sparsity, 1),
                 Table::pct(lr.error.max_rel_error_significant, 1),
                 Table::pct(rbk.error.max_rel_error_significant, 1),
                 Table::pct(wv.error.max_rel_error_significant, 1),
                 Table::pct(lr.error.frac_above_10pct, 1),
                 Table::pct(wv.error.frac_above_10pct, 1),
                 std::to_string(lr.solves), std::to_string(rbk.solves),
                 Table::fixed(wv.solve_reduction, 2), paper});
  json_rows.push_back({name, layout.n_contacts(), lr, rbk});
}

// The solve-count comparison the CI uploads: one object per example with
// both low-rank builds' cost and accuracy.
void write_json(const std::string& path, const std::vector<JsonRow>& rows) {
  std::ofstream out(path);
  out << "{\n  \"table\": \"4.1\",\n  \"examples\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    out << "    {\n"
        << "      \"name\": \"" << r.name << "\",\n"
        << "      \"n\": " << r.n << ",\n"
        << "      \"column_sampling\": {\"solves\": " << r.sampling.solves
        << ", \"max_rel_error_significant\": " << r.sampling.error.max_rel_error_significant
        << ", \"sparsity\": " << r.sampling.sparsity << "},\n"
        << "      \"block_krylov\": {\"solves\": " << r.rbk.solves
        << ", \"max_rel_error_significant\": " << r.rbk.error.max_rel_error_significant
        << ", \"sparsity\": " << r.rbk.sparsity << "},\n"
        << "      \"solve_savings\": "
        << (r.sampling.solves > 0
                ? 1.0 - static_cast<double>(r.rbk.solves) / static_cast<double>(r.sampling.solves)
                : 0.0)
        << "\n    }" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

const char* json_path(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  std::printf("Table 4.1 — low-rank (sampling + block-Krylov) vs wavelet, no thresholding\n");
  std::printf("(max err over entries >= max|G|/500, the paper's stated range)\n\n");
  Table table({"example", "n", "sparsity LR", "sparsity W", "max err LR", "max err RBK",
               "max err W", ">10% LR", ">10% W", "solves LR", "solves RBK", "solve red. W",
               "paper (spLR/spW/errLR/errW/srLR/srW)"});
  std::vector<JsonRow> json_rows;
  run("1 regular", "3.9/2.5/5.1%/0.2%/3.2/2.9", example_regular(full), table, json_rows);
  run("2 alternating", "4.1/2.5/5.7%/47%/3.3/2.9", example_alternating(full), table, json_rows);
  run("3 mixed shapes", "3.5/2.3/12%/31%/2.8/2.5", example_shapes(full), table, json_rows);
  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: low-rank at least as sparse everywhere, far more\n"
              "accurate on examples 2 and 3 (mixed contact sizes/shapes); the\n"
              "block-Krylov build strictly cheaper than column sampling.\n");

  bool rbk_cheaper_everywhere = true;
  for (const JsonRow& r : json_rows)
    if (r.rbk.solves >= r.sampling.solves) rbk_cheaper_everywhere = false;
  std::printf("block-Krylov fewer solves on every example: %s\n",
              rbk_cheaper_everywhere ? "yes" : "NO");

  if (const char* path = json_path(argc, argv)) {
    write_json(path, json_rows);
    std::printf("solve-count comparison written to %s\n", path);
  }
  return rbk_cheaper_everywhere ? 0 : 1;
}
