// Reproduces Table 4.1: low-rank vs wavelet sparsification without
// thresholding — sparsity factor, max relative error, solve reduction.
//
// Paper rows (low-rank sparsity / wavelet sparsity / low-rank max err /
// wavelet max err / low-rank solve reduction / wavelet solve reduction):
//   1 regular          3.9 / 2.5 / 5.1% / 0.2% / 3.2 / 2.9
//   2 alternating      4.1 / 2.5 / 5.7% /  47% / 3.3 / 2.9
//   3 mixed shapes     3.5 / 2.3 /  12% /  31% / 2.8 / 2.5
// Expected shape: wavelets win on the regular grid's max error; the
// low-rank method wins decisively on both mixed-size examples while being
// at least as sparse.
#include "common.hpp"

using namespace subspar;
using namespace subspar::bench;

namespace {

void run(const char* name, const char* paper, const Layout& layout, Table& table) {
  const auto solver = make_solver(SolverKind::kSurface, layout, bench_stack());
  const QuadTree tree(layout);
  const ExactColumns exact = exact_columns(*solver, 1.0);
  const MethodRow lr = run_lowrank(*solver, tree, exact, 6.0);
  const MethodRow wv = run_wavelet(*solver, tree, exact, 6.0);
  table.add_row({name, std::to_string(layout.n_contacts()), Table::fixed(lr.sparsity, 1),
                 Table::fixed(wv.sparsity, 1),
                 Table::pct(lr.error.max_rel_error_significant, 1),
                 Table::pct(wv.error.max_rel_error_significant, 1),
                 Table::pct(lr.error.frac_above_10pct, 1),
                 Table::pct(wv.error.frac_above_10pct, 1),
                 Table::fixed(lr.solve_reduction, 2), Table::fixed(wv.solve_reduction, 2),
                 paper});
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  std::printf("Table 4.1 — low-rank vs wavelet, no thresholding\n");
  std::printf("(max err over entries >= max|G|/500, the paper's stated range)\n\n");
  Table table({"example", "n", "sparsity LR", "sparsity W", "max err LR", "max err W",
               ">10% LR", ">10% W", "solve red. LR", "solve red. W",
               "paper (spLR/spW/errLR/errW/srLR/srW)"});
  run("1 regular", "3.9/2.5/5.1%/0.2%/3.2/2.9", example_regular(full), table);
  run("2 alternating", "4.1/2.5/5.7%/47%/3.3/2.9", example_alternating(full), table);
  run("3 mixed shapes", "3.5/2.3/12%/31%/2.8/2.5", example_shapes(full), table);
  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: low-rank at least as sparse everywhere, far more\n"
              "accurate on examples 2 and 3 (mixed contact sizes/shapes).\n");
  return 0;
}
