// Reproduces Table 3.1: sparsity and accuracy of wavelet sparsification on
// the four Chapter-3 examples.
//
// Paper rows (sparsity of G_ws / max rel err / sparsity of G_wt / fraction
// of entries > 10% rel err after ~6x thresholding):
//   1a regular, IE solver      2.5 / 0.2% / 15.3 / 0.1%
//   1b regular, FD solver      2.5 / 0.2% / 15.4 / 5.2%
//   2  irregular placement     3.5 / 0.2% / 20.6 / 1.1%
//   3  alternating sizes       2.5 /  47% / 15.3 /  80%
// Expected shape: sub-percent max error on the same-size examples, the FD
// row noisier after thresholding, and a blow-up on alternating sizes.
#include <memory>

#include "common.hpp"

using namespace subspar;
using namespace subspar::bench;

namespace {

void run(const char* name, const char* paper, const Layout& layout,
         const SubstrateSolver& solver, Table& table) {
  const QuadTree tree(layout);
  const ExactColumns exact = exact_columns(solver, 1.0);
  const MethodRow row = run_wavelet(solver, tree, exact, 6.0);
  table.add_row({name, std::to_string(layout.n_contacts()), Table::fixed(row.sparsity, 1),
                 Table::pct(row.error.max_rel_error_significant, 2),
                 Table::fixed(row.threshold_sparsity, 1),
                 Table::pct(row.threshold_error.frac_above_10pct, 1),
                 Table::fixed(row.solve_reduction, 2), paper});
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  std::printf("Table 3.1 — sparsity and accuracy of wavelet sparsification\n");
  std::printf("(thresholded G_wt targets ~6x the sparsity of G_ws, as in §3.7)\n\n");

  // "max rel err" is scored over entries >= max|G|/500, the dynamic range
  // the paper states its examples have (see core/report.hpp).
  Table table({"example", "n", "sparsity G_ws", "max rel err", "sparsity G_wt",
               "frac > 10%", "solve red.", "paper (sp/err/sp/frac)"});

  {
    const Layout l = example_regular(full);
    const auto s = make_solver(SolverKind::kSurface, l, bench_stack());
    run("1a regular (IE)", "2.5 / 0.2% / 15.3 / 0.1%", l, *s, table);
  }
  {
    const Layout l = example_regular_fd(full);
    const auto s =
        make_solver(SolverKind::kFd, l, bench_stack_fd(), {.fd = {.grid_h = 2.0}});
    run("1b regular (FD)", "2.5 / 0.2% / 15.4 / 5.2%", l, *s, table);
  }
  {
    const Layout l = example_irregular(full);
    const auto s = make_solver(SolverKind::kSurface, l, bench_stack());
    run("2  irregular", "3.5 / 0.2% / 20.6 / 1.1%", l, *s, table);
  }
  {
    const Layout l = example_alternating(full);
    const auto s = make_solver(SolverKind::kSurface, l, bench_stack());
    run("3  alternating", "2.5 /  47% / 15.3 /  80%", l, *s, table);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: accurate on 1a/1b/2, large errors on the\n"
              "alternating-size example 3 — the failure that motivates Ch. 4.\n");
  return 0;
}
