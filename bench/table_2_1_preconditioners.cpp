// Reproduces Table 2.1: effectiveness of the fast-solver preconditioners for
// the finite-difference substrate solver (average PCG iterations per solve).
//
// Paper values: pure-Dirichlet 22.2, pure-Neumann 7.9, area-weighted 6.8;
// incomplete Cholesky was reported as needing "hundreds of iterations".
// The expected *shape*: area-weighted <= Neumann << Dirichlet << IC(0).
#include <stdexcept>

#include "common.hpp"

using namespace subspar;
using namespace subspar::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const Layout layout = example_regular_fd(full);
  const SubstrateStack stack = bench_stack_fd();
  std::printf("Table 2.1 — preconditioner effectiveness (FD solver)\n");
  std::printf("layout: %zu contacts; grid %zux%zux%zu nodes; workload: %s\n\n",
              layout.n_contacts(), layout.panels_x() * (full ? 2 : 1),
              layout.panels_x() * (full ? 2 : 1), std::size_t(20),
              "12 representative solves (unit-contact + random patterns)");

  struct Row {
    const char* name;
    FdPreconditioner kind;
    double paper;  // iterations reported in the thesis (-1 = not reported)
  };
  const Row rows[] = {
      {"none (plain CG)", FdPreconditioner::kNone, -1.0},
      {"incomplete Cholesky", FdPreconditioner::kIncompleteCholesky, -1.0},
      {"fast solver, Dirichlet", FdPreconditioner::kFastDirichlet, 22.2},
      {"fast solver, Neumann", FdPreconditioner::kFastNeumann, 7.9},
      {"fast solver, area-weighted", FdPreconditioner::kFastAreaWeighted, 6.8},
      // The thesis' future-work suggestion (§2.2.2), answered here.
      {"geometric multigrid", FdPreconditioner::kMultigrid, -1.0},
  };

  Table table({"preconditioner", "avg iterations", "time/solve (ms)", "paper iters"});
  Rng rng(11);
  std::vector<Vector> workload;
  for (int t = 0; t < 12; ++t) {
    Vector v(layout.n_contacts());
    if (t < 4) {
      v[rng.below(layout.n_contacts())] = 1.0;  // single-contact excitations
    } else {
      for (auto& x : v) x = rng.normal();  // dense random patterns
    }
    workload.push_back(std::move(v));
  }

  for (const Row& row : rows) {
    const auto solver = make_solver(SolverKind::kFd, layout, stack,
                                    {.fd = {.grid_h = 2.0, .precond = row.kind}});
    Timer t;
    // Non-convergence (FdSolver raises std::runtime_error) becomes an
    // annotated row instead of killing the driver — every preconditioner
    // row runs to completion either way.
    bool converged = true;
    try {
      for (const Vector& v : workload) solver->solve(v);
    } catch (const std::runtime_error& e) {
      std::printf("[%s: %s]\n", row.name, e.what());
      converged = false;
    }
    const double per_solve = 1e3 * t.seconds() / static_cast<double>(workload.size());
    const double iters = dynamic_cast<const FdSolver&>(*solver).avg_iterations();
    table.add_row({row.name,
                   converged ? Table::fixed(iters, 1) : "no convergence",
                   converged ? Table::fixed(per_solve, 1) : "-",
                   row.paper < 0 ? "-" : Table::fixed(row.paper, 1)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "expected shape: the fast-solver family beats IC(0) by an order of\n"
      "magnitude and plain CG by two; pure-Dirichlet is the weakest fast\n"
      "variant (the paper found the area-weighted p best, Neumann close —\n"
      "the Neumann/area ordering is stack- and stencil-sensitive).\n");
  return 0;
}
