// Shared infrastructure for the benchmark harnesses: the paper's evaluation
// examples at reproducible scales, and the evaluation loop that produces the
// sparsity / accuracy / solve-reduction rows of Tables 3.1, 4.1-4.3.
//
// Every bench accepts --full to run at the paper's sizes; the default sizes
// are scaled for a single-core run of the whole suite (documented per table
// in EXPERIMENTS.md). All randomness is seeded: reruns are bit-identical.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "subspar/subspar.hpp"

namespace subspar::bench {

inline bool full_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--full") == 0) return true;
  return false;
}

/// The §3.7 substrate: two layers (1, 100) plus the thin resistive layer
/// that emulates a floating backplane; dimensions 128 x 128 x 40.
inline SubstrateStack bench_stack() { return paper_stack(40.0, 0.5, 1.0); }

/// FD-friendly variant: layer boundaries land on grid-plane gaps at h = 2.
inline SubstrateStack bench_stack_fd() {
  return SubstrateStack({{2.0, 1.0}, {36.0, 100.0}, {2.0, 0.1}}, Backplane::kGrounded);
}

// ---- the paper's example layouts (surface is 128 physical units across;
// panel size adjusts so that panel grids stay power-of-two).

inline Layout example_regular(bool full) {  // Fig. 3-6; Ex. 1a / Ch.4 Ex. 1
  return regular_grid_layout(32, full ? 1.0 : 1.0);  // n = 1024 (paper size)
}
inline Layout example_regular_fd(bool full) {  // Ex. 1b (finite-difference solver)
  return regular_grid_layout(full ? 32 : 16, full ? 1.0 : 2.0);  // n = 256 default
}
inline Layout example_irregular(bool /*full*/) {  // Fig. 3-7; Ex. 2
  return irregular_layout(32, 0.55, 20240602, 1.0);  // n ~ 560
}
inline Layout example_alternating(bool /*full*/) {  // Fig. 3-8; Ch.3 Ex.3 / Ch.4 Ex.2
  return alternating_size_layout(32, 1.0);  // n = 1024 (paper size)
}
inline Layout example_shapes(bool /*full*/) {  // Fig. 4-8; Ch.4 Ex.3
  return mixed_shapes_layout(32, 4257, 1.0);  // n ~ 850
}
inline Layout example_4_large_alternating(bool full) {  // Table 4.3 Ex. 4
  return alternating_size_layout(full ? 64 : 32, full ? 0.5 : 1.0);  // 4096 / 1024
}
inline Layout example_5_large_mixed(bool full) {  // Fig. 4-10; Table 4.3 Ex. 5
  return large_mixed_layout(full ? 64 : 32, 0.8, 31415, full ? 0.5 : 1.0);  // ~11k / ~3k
}

/// One evaluated sparsification run.
struct MethodRow {
  double sparsity = 0.0;       ///< n^2 / nnz(G_w), unthresholded
  double q_sparsity = 0.0;
  long solves = 0;
  double solve_reduction = 0.0;
  ErrorStats error;            ///< unthresholded accuracy
  double threshold_sparsity = 0.0;
  ErrorStats threshold_error;  ///< after ~6x thresholding
  double seconds = 0.0;
};

struct EvaluatedExample {
  std::string name;
  std::size_t n = 0;
  MethodRow wavelet;
  MethodRow lowrank;
};

/// Error columns of the exact G used for scoring (all columns when
/// sample_fraction == 1, a deterministic sample otherwise — Table 4.3).
struct ExactColumns {
  Matrix g;
  std::vector<std::size_t> ids;
};

inline ExactColumns exact_columns(const SubstrateSolver& solver, double sample_fraction) {
  ExactColumns out;
  out.ids = sample_columns(solver.n_contacts(), sample_fraction);
  out.g = extract_columns(solver, out.ids);
  return out;
}

/// One unthresholded extraction through the public pipeline, scored plain
/// and after ~threshold_multiple x thresholding (both tables come from the
/// same O(log n) solves, so the threshold is applied here, not re-requested).
inline MethodRow run_request(const SubstrateSolver& solver, const QuadTree& tree,
                             const ExactColumns& exact, double threshold_multiple,
                             const ExtractionRequest& request) {
  MethodRow row;
  solver.reset_solve_count();
  const ExtractionResult extracted = Extractor(solver, tree).extract(request);
  const SparsifiedModel& model = extracted.model;
  row.seconds = extracted.report.seconds;
  row.solves = extracted.report.solves;
  row.solve_reduction = extracted.report.solve_reduction;
  row.sparsity = extracted.report.gw_sparsity;
  row.q_sparsity = extracted.report.q_sparsity;
  row.error = reconstruction_error(model.q(), model.gw(), exact.g, exact.ids);
  const SparseMatrix gwt = threshold_to_nnz(
      model.gw(),
      static_cast<std::size_t>(static_cast<double>(model.gw().nnz()) / threshold_multiple));
  row.threshold_sparsity = gwt.sparsity_factor();
  row.threshold_error = reconstruction_error(model.q(), gwt, exact.g, exact.ids);
  return row;
}

inline MethodRow run_wavelet(const SubstrateSolver& solver, const QuadTree& tree,
                             const ExactColumns& exact, double threshold_multiple) {
  return run_request(solver, tree, exact, threshold_multiple,
                     {.method = SparsifyMethod::kWavelet});
}

inline MethodRow run_lowrank(const SubstrateSolver& solver, const QuadTree& tree,
                             const ExactColumns& exact, double threshold_multiple) {
  return run_request(solver, tree, exact, threshold_multiple,
                     {.method = SparsifyMethod::kLowRank});
}

/// The low-rank pipeline with the randomized block-Krylov row-basis scheme
/// (every other knob at its default) — the fewer-solves comparison rows of
/// Tables 4.1-4.3.
inline MethodRow run_lowrank_rbk(const SubstrateSolver& solver, const QuadTree& tree,
                                 const ExactColumns& exact, double threshold_multiple) {
  ExtractionRequest request{.method = SparsifyMethod::kLowRank};
  request.lowrank.basis = RowBasisScheme::kBlockKrylov;
  return run_request(solver, tree, exact, threshold_multiple, request);
}

}  // namespace subspar::bench
