// Microkernel throughput (google-benchmark): the computational primitives
// every experiment stands on — FFT/DCT, small SVDs, the fast Poisson solve,
// one black-box substrate solve, and one apply of the phase-1 low-rank
// representation.
#include <benchmark/benchmark.h>

#include "common.hpp"

using namespace subspar;
using namespace subspar::bench;

namespace {

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  for (auto _ : state) {
    auto y = x;
    fft(y);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(n));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Dct2d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> a(n * n);
  for (auto& v : a) v = rng.normal();
  for (auto _ : state) {
    auto b = a;
    dct2_2d(b, n, n);
    benchmark::DoNotOptimize(b);
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(n * n));
}
BENCHMARK(BM_Dct2d)->Arg(64)->Arg(128);

// Batched 2-D DCT: `range` independent 64x64 grids per call, threaded over
// the SUBSPAR_THREADS pool.
void BM_Dct2dMany(benchmark::State& state) {
  const std::size_t n = 64;
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> a(batch * n * n);
  for (auto& v : a) v = rng.normal();
  for (auto _ : state) {
    auto b = a;
    dct2_2d_many(b, n, n, batch);
    benchmark::DoNotOptimize(b);
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(batch * n * n));
}
BENCHMARK(BM_Dct2dMany)->Arg(4)->Arg(16);

// ---- dense kernel layer: blocked matmul / gram / tall SVD

Matrix random_dense(std::size_t m, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  return a;
}

// Reference point for BM_Matmul: the naive i-k-j triple loop (with the
// zero-skip branch) that was the seed's `matmul` before the blocked kernel
// replaced it. Items = multiply-accumulates, comparable across both.
void BM_MatmulNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_dense(n, n, 7);
  const Matrix b = random_dense(n, n, 8);
  for (auto _ : state) {
    Matrix c(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      double* crow = c.row_ptr(i);
      for (std::size_t k = 0; k < n; ++k) {
        const double aik = a(i, k);
        if (aik == 0.0) continue;
        const double* brow = b.row_ptr(k);
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
    benchmark::DoNotOptimize(c(0, 0));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(n * n * n));
}
BENCHMARK(BM_MatmulNaive)->Arg(64)->Arg(256);

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_dense(n, n, 7);
  const Matrix b = random_dense(n, n, 8);
  for (auto _ : state) {
    const Matrix c = matmul(a, b);
    benchmark::DoNotOptimize(c(0, 0));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(256);

// Mixed-precision GEMM (fp32-packed operands, fp64 accumulators): the
// Precision::kMixed engine behind iterative refinement. Same item count as
// BM_Matmul, so items/s compare directly.
void BM_MatmulMixed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_dense(n, n, 7);
  const Matrix b = random_dense(n, n, 8);
  for (auto _ : state) {
    const Matrix c = matmul_mixed(a, b);
    benchmark::DoNotOptimize(c(0, 0));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(n * n * n));
}
BENCHMARK(BM_MatmulMixed)->Arg(64)->Arg(256);

void BM_GramTn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_dense(4 * n, n, 9);  // tall sample-matrix shape
  for (auto _ : state) {
    const Matrix g = gram_tn(a);
    benchmark::DoNotOptimize(g(0, 0));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(4 * n * n * n));
}
BENCHMARK(BM_GramTn)->Arg(64)->Arg(256);

// Tall-matrix SVD, the low-rank sampling shape: QR-preconditioned path vs
// the plain one-sided Jacobi baseline it replaced.
void BM_TallSvd(benchmark::State& state) {
  const Matrix a = random_dense(512, 32, 10);
  for (auto _ : state) {
    const Svd s = svd(a);
    benchmark::DoNotOptimize(s.sigma[0]);
  }
}
BENCHMARK(BM_TallSvd);

void BM_TallSvdJacobi(benchmark::State& state) {
  const Matrix a = random_dense(512, 32, 10);
  for (auto _ : state) {
    const Svd s = svd_jacobi(a);
    benchmark::DoNotOptimize(s.sigma[0]);
  }
}
BENCHMARK(BM_TallSvdJacobi);

void BM_JacobiSvd(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Matrix a(m, 27);  // the shape of a sampled interaction block
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) = rng.normal();
  for (auto _ : state) {
    const Svd s = svd(a);
    benchmark::DoNotOptimize(s.sigma[0]);
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(32)->Arg(64);

void BM_FastPoissonSolve(benchmark::State& state) {
  PoissonGrid g;
  g.nx = g.ny = 64;
  g.nz = 20;
  g.lateral_g.assign(g.nz, 1.0);
  g.vertical_g.assign(g.nz - 1, 1.0);
  g.top_g = 0.25;
  const FastPoisson3D fp(g);
  Rng rng(4);
  Vector b(g.size());
  for (auto& v : b) v = rng.normal();
  for (auto _ : state) {
    const Vector x = fp.solve(b);
    benchmark::DoNotOptimize(x[0]);
  }
}
BENCHMARK(BM_FastPoissonSolve);

struct SolveFixtureState {
  Layout layout = regular_grid_layout(16);
  std::unique_ptr<SubstrateSolver> solver = make_solver(SolverKind::kSurface, layout, bench_stack());
};

void BM_SurfaceSolve(benchmark::State& state) {
  static SolveFixtureState fx;
  Rng rng(5);
  Vector v(fx.layout.n_contacts());
  for (auto& x : v) x = rng.normal();
  for (auto _ : state) {
    const Vector i = fx.solver->solve(v);
    benchmark::DoNotOptimize(i[0]);
  }
}
BENCHMARK(BM_SurfaceSolve);

// k right-hand sides through one solve_many call (blocked PCG + batched
// DCT applies) on the BM_SurfaceSolve layout. Compare k * BM_SurfaceSolve
// wall-clock against one BM_BatchedSolve/k iteration.
void BM_BatchedSolve(benchmark::State& state) {
  static SolveFixtureState fx;
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  Matrix v(fx.layout.n_contacts(), k);
  for (std::size_t i = 0; i < v.rows(); ++i)
    for (std::size_t j = 0; j < v.cols(); ++j) v(i, j) = rng.normal();
  for (auto _ : state) {
    const Matrix i = fx.solver->solve_many(v);
    benchmark::DoNotOptimize(i(0, 0));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(k));
}
BENCHMARK(BM_BatchedSolve)->Arg(4)->Arg(16);

// ---- sparse engine: batched SpMM / level-scheduled IC(0) / FD solve

// The Table 2.1 FD system's grid Laplacian (64x64x20, layered stack with a
// 1000x conductivity contrast), shared by the sparse micro-benches.
struct SparseFixture {
  GridSpec spec;
  SparseMatrix a;
  Ic0Preconditioner ic0_rcm;
  SparseFixture() : spec(make_spec()), a(assemble_grid_laplacian(spec)),
                    ic0_rcm(a, rcm_ordering(a)) {}
  static GridSpec make_spec() {
    GridSpec s;
    s.nx = s.ny = 64;
    s.nz = 20;
    s.h = 2.0;
    s.sigma.assign(s.nz, 100.0);
    s.sigma.front() = 1.0;
    s.sigma.back() = 0.1;
    s.g_top.assign(s.nx * s.ny, 0.0);
    Rng rng(12);
    for (auto& g : s.g_top) g = rng.below(4) == 0 ? 0.4 : 0.0;
    s.g_bottom = 4.0;
    return s;
  }
};

Matrix random_rhs(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  Matrix b(n, k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < k; ++j) b(i, j) = rng.normal();
  return b;
}

// Reference point for BM_SpMM: one CSR traversal per right-hand side.
void BM_SpMMPerColumn(benchmark::State& state) {
  static SparseFixture fx;
  const auto k = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_rhs(fx.a.cols(), k, 13);
  for (auto _ : state) {
    Matrix y(fx.a.rows(), k);
    for (std::size_t j = 0; j < k; ++j) y.set_col(j, fx.a.apply(x.col(j)));
    benchmark::DoNotOptimize(y(0, 0));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(fx.a.nnz() * k));
}
BENCHMARK(BM_SpMMPerColumn)->Arg(16);

// Batched multi-RHS SpMM: one row-partitioned traversal feeds all columns
// (bit-identical to the per-column reference).
void BM_SpMM(benchmark::State& state) {
  static SparseFixture fx;
  const auto k = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_rhs(fx.a.cols(), k, 13);
  for (auto _ : state) {
    const Matrix y = fx.a.apply_many(x);
    benchmark::DoNotOptimize(y(0, 0));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(fx.a.nnz() * k));
}
BENCHMARK(BM_SpMM)->Arg(4)->Arg(16);

// Mixed-precision SpMM: the fp32-value / 32-bit-index CSR mirror halves the
// bytes per traversed entry on this bandwidth-bound path; accumulation and
// right-hand sides stay fp64. Items = nnz * k, comparable with BM_SpMM.
void BM_SpMMMixed(benchmark::State& state) {
  static SparseFixture fx;
  static const SparseMirrorF32 mirror(fx.a);
  const auto k = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_rhs(fx.a.cols(), k, 13);
  for (auto _ : state) {
    const Matrix y = mirror.apply_many(x);
    benchmark::DoNotOptimize(y(0, 0));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) *
                          static_cast<long>(fx.a.nnz() * k));
}
BENCHMARK(BM_SpMMMixed)->Arg(4)->Arg(16);

void BM_Ic0SolvePerColumn(benchmark::State& state) {
  static SparseFixture fx;
  const auto k = static_cast<std::size_t>(state.range(0));
  const Matrix b = random_rhs(fx.a.rows(), k, 14);
  for (auto _ : state) {
    Matrix x(b.rows(), k);
    for (std::size_t j = 0; j < k; ++j)
      x.set_col(j, ic0_solve(fx.ic0_rcm.factor(), b.col(j)));
    benchmark::DoNotOptimize(x(0, 0));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(k));
}
BENCHMARK(BM_Ic0SolvePerColumn)->Arg(16);

// Level-scheduled forward/backward substitution on the RCM-permuted IC(0)
// factor, all right-hand sides per level sweep.
void BM_Ic0SolveMany(benchmark::State& state) {
  static SparseFixture fx;
  const auto k = static_cast<std::size_t>(state.range(0));
  const Matrix b = random_rhs(fx.a.rows(), k, 14);
  for (auto _ : state) {
    const Matrix x = ic0_solve_many(fx.ic0_rcm.factor(), b);
    benchmark::DoNotOptimize(x(0, 0));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(k));
}
BENCHMARK(BM_Ic0SolveMany)->Arg(4)->Arg(16);

// The whole-path numbers behind the sparse engine: k FD solves through the
// ICCG branch (level-scheduled RCM IC(0)), per-column vs one batched
// solve_many (shared block-Krylov space + multi-RHS sparse kernels).
struct FdSolveFixture {
  Layout layout = regular_grid_layout(8, 2.0);
  SubstrateStack stack = bench_stack_fd();
  FdSolver solver{layout, stack,
                  {.grid_h = 2.0, .precond = FdPreconditioner::kIncompleteCholesky}};
};

void BM_FdSolvePerColumn(benchmark::State& state) {
  static FdSolveFixture fx;
  const auto k = static_cast<std::size_t>(state.range(0));
  const Matrix v = random_rhs(fx.layout.n_contacts(), k, 15);
  for (auto _ : state) {
    Matrix i(fx.layout.n_contacts(), k);
    for (std::size_t j = 0; j < k; ++j) i.set_col(j, fx.solver.solve(v.col(j)));
    benchmark::DoNotOptimize(i(0, 0));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(k));
}
BENCHMARK(BM_FdSolvePerColumn)->Arg(16);

void BM_FdSolveBatched(benchmark::State& state) {
  static FdSolveFixture fx;
  const auto k = static_cast<std::size_t>(state.range(0));
  const Matrix v = random_rhs(fx.layout.n_contacts(), k, 15);
  for (auto _ : state) {
    const Matrix i = fx.solver.solve_many(v);
    benchmark::DoNotOptimize(i(0, 0));
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * static_cast<long>(k));
}
BENCHMARK(BM_FdSolveBatched)->Arg(4)->Arg(16);

void BM_RowBasisApply(benchmark::State& state) {
  static SolveFixtureState fx;
  static const QuadTree tree(fx.layout);
  static const RowBasisRep rep(*fx.solver, tree);
  Rng rng(6);
  Vector v(fx.layout.n_contacts());
  for (auto& x : v) x = rng.normal();
  for (auto _ : state) {
    const Vector i = rep.apply(v);
    benchmark::DoNotOptimize(i[0]);
  }
}
BENCHMARK(BM_RowBasisApply);

}  // namespace

// BENCHMARK_MAIN plus provenance: the active kernel backend and the thread
// count land in the JSON "context" block, so every saved baseline records
// which SUBSPAR_BACKEND / SUBSPAR_THREADS produced its numbers.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("subspar_backend", backend_name(active_backend()));
  benchmark::AddCustomContext("subspar_threads", std::to_string(thread_count()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
