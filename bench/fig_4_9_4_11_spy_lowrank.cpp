// Reproduces Figs. 4-9 and 4-11: spy plots of the low-rank G_wt for the
// mixed-shapes Example 3 and of G_w for the large mixed-field Example 5.
#include <filesystem>

#include "common.hpp"

using namespace subspar;
using namespace subspar::bench;

namespace {

void spy(const std::string& fig, const SparseMatrix& m) {
  std::printf("%s\n", ascii_spy(m.rows(), m.coordinates(), 64).c_str());
  const std::size_t side = m.rows();
  std::vector<unsigned char> px(side * side, 255);
  for (const auto& [i, j] : m.coordinates()) px[i * side + j] = 0;
  const std::string path = "bench_output/" + fig + "_spy.pgm";
  write_pgm(path, side, side, px);
  std::printf("wrote %s\n\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  std::filesystem::create_directories("bench_output");

  {
    const Layout layout = example_shapes(full);
    const auto solver = make_solver(SolverKind::kSurface, layout, bench_stack());
    const ExtractionResult r = Extractor(*solver, layout).extract();
    const SparseMatrix gwt = threshold_to_nnz(r.model.gw(), r.model.gw().nnz() / 6);
    std::printf("Fig. 4-9 — spy plot of thresholded G_wt, mixed-shapes example\n");
    std::printf("(n = %zu, solves = %ld, sparsity %.1f -> %.1f)\n\n", layout.n_contacts(),
                r.report.solves, r.report.gw_sparsity, gwt.sparsity_factor());
    spy("fig_4_9", gwt);
  }
  {
    const Layout layout = example_5_large_mixed(full);
    const auto solver = make_solver(SolverKind::kSurface, layout, bench_stack());
    const ExtractionResult r = Extractor(*solver, layout).extract();
    std::printf("Fig. 4-11 — spy plot of G_w, large mixed-field example\n");
    std::printf("(n = %zu, solves = %ld, sparsity %.1f)\n\n", layout.n_contacts(),
                r.report.solves, r.report.gw_sparsity);
    spy("fig_4_11", r.model.gw());
  }
  std::printf("expected shape: block diagonal rays from same-level local\n"
              "interactions plus dense level-2 leftover rows/columns.\n");
  return 0;
}
