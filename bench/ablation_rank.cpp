// Ablation: the low-rank method's two design knobs (DESIGN.md §5.4) —
// the row-basis singular-value tolerance and the rank cap — swept on the
// alternating-size example where accuracy is hardest.
//
// This study backs the library default (tol 1e-4, cap 6): the paper's
// nominal 1/100 tolerance truncates the row basis before the rank cap is
// reached, costing ~30x in max error for the same number of solves at cap 6.
#include "common.hpp"

using namespace subspar;
using namespace subspar::bench;

int main(int argc, char** argv) {
  (void)full_mode(argc, argv);
  const Layout layout = alternating_size_layout(16);  // n = 256 keeps the sweep cheap
  const auto solver = make_solver(SolverKind::kSurface, layout, bench_stack());
  const Extractor engine(*solver, layout);
  const Matrix g = extract_dense(*solver);
  std::printf("Ablation — row-basis truncation on the alternating-size layout (n = %zu)\n\n",
              layout.n_contacts());

  Table table({"sigma tol", "rank cap", "max rel err", "frac > 10%", "sparsity", "solves"});
  for (const double tol : {1e-2, 1e-3, 1e-4, 1e-6}) {
    for (const std::size_t cap : {std::size_t{4}, std::size_t{6}, std::size_t{8}}) {
      const ExtractionResult r =
          engine.extract({.lowrank = {.sigma_rel_tol = tol, .max_rank = cap}});
      const ErrorStats err = reconstruction_error(r.model.q(), r.model.gw(), g);
      table.add_row({Table::num(tol, 1), std::to_string(cap),
                     Table::pct(err.max_rel_error, 1), Table::pct(err.frac_above_10pct, 2),
                     Table::fixed(r.report.gw_sparsity, 2), std::to_string(r.report.solves)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: the paper's nominal 1e-2 tolerance truncates the\n"
              "row basis early and costs ~20x in max error; accuracy saturates\n"
              "once the tolerance stops binding before the cap (tol <= 1e-3).\n"
              "Tighter tolerances buy nothing further but cost extra solves.\n");
  return 0;
}
