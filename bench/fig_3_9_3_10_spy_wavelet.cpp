// Reproduces Figs. 3-9 and 3-10: spy plots of the wavelet G_ws for Example 2
// (irregular placement) before and after thresholding, with the
// quadrant-hierarchical column ordering of §3.7.1. ASCII spy on stdout, PGM
// under bench_output/.
#include <filesystem>

#include "common.hpp"

using namespace subspar;
using namespace subspar::bench;

namespace {

void spy(const std::string& fig, const SparseMatrix& m) {
  std::printf("%s\n", ascii_spy(m.rows(), m.coordinates(), 64).c_str());
  const std::size_t side = m.rows();
  std::vector<unsigned char> px(side * side, 255);
  for (const auto& [i, j] : m.coordinates()) px[i * side + j] = 0;
  const std::string path = "bench_output/" + fig + "_spy.pgm";
  write_pgm(path, side, side, px);
  std::printf("wrote %s\n\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  std::filesystem::create_directories("bench_output");
  const Layout layout = example_irregular(full);
  const auto solver = make_solver(SolverKind::kSurface, layout, bench_stack());
  const ExtractionResult r =
      Extractor(*solver, layout).extract({.method = SparsifyMethod::kWavelet});
  const SparseMatrix& gws = r.model.gw();

  std::printf("Fig. 3-9 — spy plot of G_ws for Example 2 (n = %zu)\n", layout.n_contacts());
  std::printf("expected shape: diagonal ray of same-level interactions, dense\n"
              "rays along the top/left from the coarsest-level vectors, and\n"
              "off-ray blocks from cross-level neighbor squares (§3.7.1)\n\n");
  spy("fig_3_9", gws);

  std::printf("Fig. 3-10 — spy plot after ~6x thresholding\n\n");
  const SparseMatrix gwt = threshold_to_nnz(gws, gws.nnz() / 6);
  spy("fig_3_10", gwt);
  std::printf("sparsity: G_ws %.1f -> G_wt %.1f (paper: 3.5 -> 20.6)\n",
              gws.sparsity_factor(), gwt.sparsity_factor());
  return 0;
}
