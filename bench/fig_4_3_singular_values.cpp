// Reproduces Fig. 4-3 (singular values of a square's self-interaction vs its
// interaction with a well-separated square) and the §4.1 numeric vignette
// (eqs. 4.2-4.5) on the Fig. 4-1 layout.
#include <cmath>

#include "common.hpp"

using namespace subspar;
using namespace subspar::bench;

namespace {

Matrix block_from_columns(const Matrix& cols, const std::vector<std::size_t>& rows) {
  Matrix out(rows.size(), cols.cols());
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (std::size_t j = 0; j < cols.cols(); ++j) out(i, j) = cols(rows[i], j);
  return out;
}

}  // namespace

int main() {
  // ---- Fig. 4-3: sigma decay for a level-2 square of the regular grid.
  const Layout layout = regular_grid_layout(32);  // 1024 contacts
  const QuadTree tree(layout);
  const auto solver = make_solver(SolverKind::kSurface, layout, bench_stack());

  const SquareId s{2, 0, 0};
  const SquareId d{2, 3, 1};  // interactive to s
  const auto& cs = tree.contacts_in(s);
  const auto& cd = tree.contacts_in(d);
  const Matrix g_cols = extract_columns(*solver, cs);  // 64 solves
  const Svd self = svd(block_from_columns(g_cols, cs));
  const Svd far = svd(block_from_columns(g_cols, cd));

  std::printf("Fig. 4-3 — singular values: self-interaction (stars in the paper)\n");
  std::printf("vs interaction with a well-separated square (dots)\n\n");
  Table table({"k", "sigma_k (self) / sigma_0", "sigma_k (s->d) / sigma_0"});
  for (std::size_t k = 0; k < 16; ++k) {
    table.add_row({std::to_string(k), Table::num(self.sigma[k] / self.sigma[0], 3),
                   Table::num(far.sigma[k] / far.sigma[0], 3)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: the s->d spectrum collapses by many orders within\n"
              "~6 values; the self-interaction decays slowly (%g vs %g at k=6).\n\n",
              far.sigma[6] / far.sigma[0], self.sigma[6] / self.sigma[0]);

  // ---- §4.1 vignette on the Fig. 4-1 layout.
  const Layout six = simple_six_layout();
  const auto ssix = make_solver(SolverKind::kSurface, six, bench_stack());
  const Matrix gsix_cols = extract_columns(*ssix, {0, 1});
  const std::vector<std::size_t> dst{2, 3, 4, 5};
  const Matrix gds = block_from_columns(gsix_cols, dst);
  const Svd dec = svd(gds);

  std::printf("§4.1 vignette (Fig. 4-1 layout): G_ds =\n");
  for (std::size_t i = 0; i < gds.rows(); ++i)
    std::printf("  [% .6f  % .6f]\n", gds(i, 0), gds(i, 1));
  std::printf("singular values: %.6f, %.6f (ratio %.2e; paper: 2.274, 0.0016)\n",
              dec.sigma[0], dec.sigma[1], dec.sigma[1] / dec.sigma[0]);

  Vector drive(six.n_contacts());
  drive[0] = dec.v(0, 1);
  drive[1] = dec.v(1, 1);
  const Vector resp = ssix->solve(drive);
  std::printf("response at contacts 3..6 to the trailing right singular vector:\n  ");
  for (const std::size_t k : dst) std::printf("% .2e  ", resp[k]);
  std::printf("\n(expected: near zero — the SVD finds the basis function with\n"
              "vanishing far response, eq. 4.5)\n");
  return 0;
}
