// Regenerates the contact-layout figures (3-6, 3-7, 3-8, 4-1, 4-8, 4-10) as
// ASCII art on stdout and PGM images under bench_output/.
#include <filesystem>

#include "common.hpp"

using namespace subspar;
using namespace subspar::bench;

namespace {

void emit(const std::string& fig, const std::string& title, const Layout& layout) {
  std::printf("== %s: %s ==\n%s", fig.c_str(), title.c_str(), layout.ascii().c_str());
  std::printf("contacts: %zu\n\n", layout.n_contacts());

  // PGM: 4x upscaled occupancy map (white background, black contacts).
  const std::size_t scale = 4;
  const std::size_t rows = layout.panels_y() * scale, cols = layout.panels_x() * scale;
  std::vector<unsigned char> px(rows * cols, 255);
  for (std::size_t y = 0; y < layout.panels_y(); ++y)
    for (std::size_t x = 0; x < layout.panels_x(); ++x)
      if (layout.panel_owner(x, y) >= 0)
        for (std::size_t dy = 0; dy < scale; ++dy)
          for (std::size_t dx = 0; dx < scale; ++dx)
            px[(y * scale + dy) * cols + x * scale + dx] = 0;
  const std::string path = "bench_output/" + fig + "_layout.pgm";
  write_pgm(path, rows, cols, px);
  std::printf("wrote %s\n\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  std::filesystem::create_directories("bench_output");
  emit("fig_3_6", "regular contact layout (Examples 1a/1b)", regular_grid_layout(16));
  emit("fig_3_7", "same-size contacts, irregular placement (Example 2)",
       irregular_layout(16, 0.55, 20240602));
  emit("fig_3_8", "alternating-size contact layout (Ch.3 Ex.3)", alternating_size_layout(16));
  emit("fig_4_1", "simple example contact layout", simple_six_layout());
  emit("fig_4_8", "mixed shapes: squares, strips, rings (Ch.4 Ex.3)",
       mixed_shapes_layout(16, 4257));
  emit("fig_4_10", "large mixed fields (Example 5, scaled)",
       large_mixed_layout(full ? 64 : 16, 0.8, 31415));
  return 0;
}
