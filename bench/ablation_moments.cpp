// Ablation: the wavelet method's moment order p (§3.2.1). The paper chose
// p = 2 ("we found p = 2 to be effective"); this sweep shows the
// accuracy/sparsity/solve-count trade-off behind that choice, on both a
// layout where wavelets work (regular) and one where they fail
// (alternating sizes).
#include "common.hpp"

using namespace subspar;
using namespace subspar::bench;

namespace {

void sweep(const char* name, const Layout& layout) {
  const auto solver = make_solver(SolverKind::kSurface, layout, bench_stack());
  const Extractor engine(*solver, layout);
  const Matrix g = extract_dense(*solver);
  std::printf("-- %s (n = %zu) --\n", name, layout.n_contacts());
  Table table({"p", "moments", "max rel err", "frac > 10%", "sparsity G_ws", "solves"});
  for (const int p : {0, 1, 2, 3}) {
    const ExtractionResult r =
        engine.extract({.method = SparsifyMethod::kWavelet, .moment_order = p});
    const ErrorStats err = reconstruction_error(r.model.q(), r.model.gw(), g);
    table.add_row({std::to_string(p), std::to_string(moment_count(p)),
                   Table::pct(err.max_rel_error, 2), Table::pct(err.frac_above_10pct, 2),
                   Table::fixed(r.report.gw_sparsity, 2), std::to_string(r.report.solves)});
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  (void)full_mode(argc, argv);
  std::printf("Ablation — wavelet moment order p (paper default: p = 2)\n\n");
  sweep("regular grid", regular_grid_layout(16));
  sweep("alternating sizes", alternating_size_layout(16));
  std::printf("expected shape: on the regular grid, accuracy improves sharply\n"
              "up to p = 2 and the extra solves stop paying beyond it; no p\n"
              "rescues the alternating-size layout (the Ch. 4 motivation).\n");
  return 0;
}
