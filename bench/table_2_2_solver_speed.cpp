// Reproduces Table 2.2: solve speed, finite-difference vs eigenfunction
// substrate solver (iterations per solve and time per solve over 10 solves).
//
// Paper values: FD 7.0 iters / 3.8 s, eigenfunction 6.0 iters / 0.4 s.
// Expected shape: comparable iteration counts, eigenfunction faster by about
// an order of magnitude (it discretizes only the surface).
#include "common.hpp"

using namespace subspar;
using namespace subspar::bench;

int main(int argc, char** argv) {
  const bool full = full_mode(argc, argv);
  const Layout layout = example_regular_fd(full);
  std::printf("Table 2.2 — solve speed, FD vs eigenfunction (%zu contacts)\n\n",
              layout.n_contacts());

  const auto eigen_solver = make_solver(SolverKind::kSurface, layout, bench_stack());
  const auto fd_solver =
      make_solver(SolverKind::kFd, layout, bench_stack_fd(), {.fd = {.grid_h = 2.0}});
  const auto& eigen = dynamic_cast<const SurfaceSolver&>(*eigen_solver);
  const auto& fd = dynamic_cast<const FdSolver&>(*fd_solver);

  Rng rng(3);
  std::vector<Vector> workload;
  for (int t = 0; t < 10; ++t) {
    Vector v(layout.n_contacts());
    for (auto& x : v) x = rng.normal();
    workload.push_back(std::move(v));
  }

  Table table({"solver", "iterations/solve", "time/solve (s)", "unknowns", "paper (iters, s)"});
  Timer t;
  for (const Vector& v : workload) fd.solve(v);
  const double fd_time = t.seconds() / 10.0;
  t.reset();
  for (const Vector& v : workload) eigen.solve(v);
  const double eig_time = t.seconds() / 10.0;

  table.add_row({"finite difference", Table::fixed(fd.avg_iterations(), 1),
                 Table::num(fd_time, 3), std::to_string(fd.grid_nodes()), "7.0, 3.8"});
  table.add_row({"eigenfunction", Table::fixed(eigen.avg_iterations(), 1),
                 Table::num(eig_time, 3),
                 std::to_string(layout.panels_x() * layout.panels_y()), "6.0, 0.4"});
  std::printf("%s\n", table.str().c_str());
  std::printf("eigenfunction speedup: %.1fx (paper: ~10x)\n", fd_time / eig_time);
  return 0;
}
