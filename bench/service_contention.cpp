// Service contention bench: N client threads hammer one ExtractionService
// with M distinct extraction keys for several rounds, measuring what the
// job engine adds on top of the pipeline — throughput, the dedup/cache hit
// rate (N x M x rounds submissions must cost exactly M extractions), and
// client-observed job latency (p50/p99).
//
//   bench_service_contention [--full] [--clients N] [--layouts M]
//                            [--rounds R] [--json <path>]
//
// --json writes a one-object artifact for CI trend tracking. Extraction
// numerics are seeded and deterministic; wall-clock figures vary with the
// host like every other bench.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"

namespace {

using namespace subspar;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

const char* flag_value(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = subspar::bench::full_mode(argc, argv);
  const char* clients_arg = flag_value(argc, argv, "--clients");
  const char* layouts_arg = flag_value(argc, argv, "--layouts");
  const char* rounds_arg = flag_value(argc, argv, "--rounds");
  const char* json_path = flag_value(argc, argv, "--json");

  const int clients = clients_arg ? std::atoi(clients_arg) : 4;
  const int keys = layouts_arg ? std::atoi(layouts_arg) : (full ? 6 : 3);
  const int rounds = rounds_arg ? std::atoi(rounds_arg) : (full ? 4 : 2);
  const SubstrateStack stack = subspar::bench::bench_stack();
  const Layout layout = regular_grid_layout(full ? 16 : 8);

  // One solver per key: deduplication guarantees at most one extraction of a
  // key runs at a time, so sharing a solver across clients is safe — that is
  // the precondition the service documents.
  std::vector<std::shared_ptr<SubstrateSolver>> solvers;
  std::vector<ExtractionRequest> requests;
  for (int k = 0; k < keys; ++k) {
    solvers.push_back(
        std::shared_ptr<SubstrateSolver>(make_solver(SolverKind::kSurface, layout, stack)));
    ExtractionRequest request{.method = SparsifyMethod::kLowRank,
                              .threshold_sparsity_multiple = 6.0};
    request.lowrank.seed = static_cast<std::uint64_t>(k);
    requests.push_back(request);
  }

  ExtractionService service({.workers = static_cast<std::size_t>(std::max(2, clients / 2)),
                             .queue_capacity = 1024});

  std::printf("service contention: %d clients x %d keys x %d rounds (n = %zu)\n", clients,
              keys, rounds, layout.n_contacts());

  Mutex latency_mutex;  // subspar/util.hpp: the annotated wrapper, same as library code
  std::vector<double> latencies_ms;
  long failures = 0;

  const double t0 = now_ms();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      std::vector<double> local;
      long local_failures = 0;
      for (int r = 0; r < rounds; ++r)
        for (int k = 0; k < keys; ++k) {
          // Stagger which key each client starts on so submissions collide.
          const int key = (k + c) % keys;
          const double start = now_ms();
          ExtractionJob job =
              service.submit(solvers[key], layout, stack, requests[key]);
          if (!job.wait().ok()) ++local_failures;
          local.push_back(now_ms() - start);
        }
      const MutexLock lock(latency_mutex);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
      failures += local_failures;
    });
  for (std::thread& t : threads) t.join();
  const double elapsed_s = (now_ms() - t0) / 1e3;

  const ServiceStats stats = service.stats();
  long total_solves = 0;
  for (const auto& solver : solvers) total_solves += solver->solve_count();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p50 = percentile(latencies_ms, 0.50);
  const double p99 = percentile(latencies_ms, 0.99);
  const std::size_t jobs = latencies_ms.size();
  const double throughput = elapsed_s > 0.0 ? static_cast<double>(jobs) / elapsed_s : 0.0;
  const double dedup_rate =
      jobs > 0 ? static_cast<double>(stats.deduped + stats.cache_hits) /
                     static_cast<double>(jobs)
               : 0.0;

  std::printf("  jobs            %zu (%ld failed)\n", jobs, failures);
  std::printf("  elapsed         %.3f s  (%.1f jobs/s)\n", elapsed_s, throughput);
  std::printf("  latency         p50 %.1f ms, p99 %.1f ms\n", p50, p99);
  std::printf("  dedup/cache     %zu deduped + %zu cache hits (rate %.2f)\n", stats.deduped,
              stats.cache_hits, dedup_rate);
  std::printf("  extractions     %zu accepted, %ld black-box solves total\n", stats.accepted,
              total_solves);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\"clients\": %d, \"keys\": %d, \"rounds\": %d, \"n\": %zu, "
                 "\"jobs\": %zu, \"failures\": %ld, \"elapsed_s\": %.6f, "
                 "\"throughput_jobs_per_s\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"dedup_rate\": %.4f, \"deduped\": %zu, \"cache_hits\": %zu, "
                 "\"accepted\": %zu, \"solves\": %ld}\n",
                 clients, keys, rounds, layout.n_contacts(), jobs, failures, elapsed_s,
                 throughput, p50, p99, dedup_rate, stats.deduped, stats.cache_hits,
                 stats.accepted, total_solves);
    std::fclose(f);
    std::printf("  json artifact   %s\n", json_path);
  }

  // The dedup invariant doubles as the bench's self-check: failures or
  // missing dedup make the artifact untrustworthy.
  return failures == 0 ? 0 : 1;
}
