// Cross-validation and speed comparison of the two black-box substrate
// solvers (Chapter 2): the volume finite-difference solver and the
// surface eigenfunction solver — the engineering trade-off behind
// Table 2.2, on a layout small enough to compare entry by entry.
#include <cstdio>

#include "subspar/subspar.hpp"

using namespace subspar;

int main() {
  // A stack both solvers discretize faithfully: boundaries on grid planes.
  const SubstrateStack stack({{4.0, 1.0}, {10.0, 100.0}, {2.0, 0.2}}, Backplane::kGrounded);
  const Layout layout = regular_grid_layout(8);  // 64 contacts, 32x32 panels
  std::printf("layout: %zu contacts, substrate depth %.0f\n\n", layout.n_contacts(),
              stack.depth());

  // Both discretizations come out of the same registry behind the black-box
  // interface; the concrete types are only needed for iteration statistics.
  const auto eigen = make_solver(SolverKind::kSurface, layout, stack);
  const auto fd = make_solver(SolverKind::kFd, layout, stack, {.fd = {.grid_h = 1.0}});
  const auto& eigen_stats = dynamic_cast<const SurfaceSolver&>(*eigen);
  const auto& fd_stats = dynamic_cast<const FdSolver&>(*fd);

  Timer t;
  const Matrix g_eigen = extract_dense(*eigen);
  const double t_eigen = t.seconds() / static_cast<double>(layout.n_contacts());
  t.reset();
  const Matrix g_fd = extract_dense(*fd);
  const double t_fd = t.seconds() / static_cast<double>(layout.n_contacts());

  std::printf("%-18s %12s %12s %14s\n", "solver", "iters/solve", "time/solve", "unknowns");
  std::printf("%-18s %12.1f %10.2f ms %14zu\n", "eigenfunction", eigen_stats.avg_iterations(),
              1e3 * t_eigen, layout.panels_x() * layout.panels_y());
  std::printf("%-18s %12.1f %10.2f ms %14zu\n\n", "finite-difference", fd_stats.avg_iterations(),
              1e3 * t_fd, fd_stats.grid_nodes());
  std::printf("eigenfunction speedup: %.1fx (paper Table 2.2: ~10x)\n\n", t_fd / t_eigen);

  // Entry-by-entry agreement between the two independent discretizations.
  double diag_ratio_min = 1e9, diag_ratio_max = 0.0, worst_coupling = 0.0;
  for (std::size_t i = 0; i < g_eigen.rows(); ++i) {
    const double r = g_fd(i, i) / g_eigen(i, i);
    diag_ratio_min = std::min(diag_ratio_min, r);
    diag_ratio_max = std::max(diag_ratio_max, r);
    for (std::size_t j = 0; j < g_eigen.cols(); ++j) {
      if (i == j || std::abs(g_eigen(i, j)) < 1e-3 * g_eigen.max_abs()) continue;
      worst_coupling =
          std::max(worst_coupling, std::abs(g_fd(i, j) / g_eigen(i, j) - 1.0));
    }
  }
  std::printf("agreement: diagonal ratio FD/eigen in [%.3f, %.3f]\n", diag_ratio_min,
              diag_ratio_max);
  std::printf("           worst significant-coupling deviation: %.1f%%\n",
              100.0 * worst_coupling);
  std::printf("           (FD converges first-order in grid spacing; see tests)\n");
  return 0;
}
