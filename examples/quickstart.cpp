// Quickstart: extract a sparse substrate-coupling model and use it.
//
// Builds the paper's layered substrate, a 16x16 grid of contacts, runs the
// low-rank sparsification (Chapter 4) against the eigenfunction black-box
// solver (Chapter 2), and checks the sparse model against exact solves.
#include <cstdio>

#include "core/extractor.hpp"
#include "geometry/layout_gen.hpp"
#include "substrate/eigen_solver.hpp"
#include "substrate/stack.hpp"
#include "util/rng.hpp"

using namespace subspar;

int main() {
  // 1. Describe the substrate: layered resistive stack (sigma 1 / 100 /
  //    0.1 emulating a floating backplane) and a contact layout.
  const SubstrateStack stack = paper_stack(/*depth=*/40.0);
  const Layout layout = regular_grid_layout(/*contacts_per_side=*/16);
  std::printf("layout: %zu contacts on a %zux%zu panel grid\n", layout.n_contacts(),
              layout.panels_x(), layout.panels_y());

  // 2. Any black-box solver works; here the eigenfunction (DCT) solver.
  const SurfaceSolver solver(layout, stack);

  // 3. Sparsify. The quadtree supplies the multilevel square hierarchy.
  const QuadTree tree(layout);
  const SparsifiedModel model = extract_sparsified(
      solver, tree,
      {.method = SparsifyMethod::kLowRank, .threshold_sparsity_multiple = 6.0});
  std::printf("model: %s\n", model.summary().c_str());

  // 4. Use it: currents from voltages via three sparse products, validated
  //    against direct black-box solves.
  Rng rng(2024);
  Vector voltages(layout.n_contacts());
  for (auto& v : voltages) v = rng.uniform(-0.5, 0.5);
  const Vector fast = model.apply(voltages);
  const Vector exact = solver.solve(voltages);
  std::printf("apply check: |fast - exact| / |exact| = %.2e\n",
              norm2(fast - exact) / norm2(exact));
  std::printf("sample currents (contact 0, %zu): fast %.6f / %.6f, exact %.6f / %.6f\n",
              layout.n_contacts() / 2, fast[0], fast[layout.n_contacts() / 2], exact[0],
              exact[layout.n_contacts() / 2]);
  return 0;
}
