// Quickstart: extract a sparse substrate-coupling model and use it —
// entirely through the public API (include/subspar/subspar.hpp).
//
// Builds the paper's layered substrate, a 16x16 grid of contacts, runs the
// low-rank sparsification (Chapter 4) against the eigenfunction black-box
// solver (Chapter 2) through the ExtractionRequest -> ExtractionResult
// pipeline, checks the sparse model against exact solves, and shows the
// ModelCache serving a repeat request for zero additional solves.
#include <cstdio>

#include "subspar/subspar.hpp"

using namespace subspar;

int main() {
  // 1. Describe the substrate: layered resistive stack (sigma 1 / 100 /
  //    0.1 emulating a floating backplane) and a contact layout.
  const SubstrateStack stack = paper_stack(/*depth=*/40.0);
  const Layout layout = regular_grid_layout(/*contacts_per_side=*/16);
  std::printf("layout: %zu contacts on a %zux%zu panel grid\n", layout.n_contacts(),
              layout.panels_x(), layout.panels_y());

  // 2. Any black-box solver works; the registry names the discretizations
  //    (here the eigenfunction/DCT solver) behind one interface.
  const auto solver = make_solver(SolverKind::kSurface, layout, stack);

  // 3. Sparsify through the pipeline: the Extractor owns the quadtree build,
  //    validation, and method dispatch; the result carries the model plus a
  //    structured report of what building it cost.
  const Extractor engine(*solver, layout);
  const ExtractionRequest request{.method = SparsifyMethod::kLowRank,
                                  .threshold_sparsity_multiple = 6.0};
  const ExtractionResult extracted = engine.extract(request);
  const SparsifiedModel& model = extracted.model;
  std::printf("model: %s\n", model.summary().c_str());

  //    The report also records every recovery the pipeline took: solver
  //    restarts, direct-solve fallbacks, RBK sampling-basis fallbacks, and
  //    quarantined cache files. A clean run prints nothing here; under
  //    fault injection (SUBSPAR_FAULT) each degradation is listed.
  for (const auto& w : extracted.report.warnings)
    std::printf("warning: %s\n", w.c_str());
  for (const auto& f : extracted.report.fallbacks)
    std::printf("fallback: %s\n", f.c_str());

  // 4. Use it: currents from voltages via three sparse products, validated
  //    against direct black-box solves.
  Rng rng(2024);
  Vector voltages(layout.n_contacts());
  for (auto& v : voltages) v = rng.uniform(-0.5, 0.5);
  const Vector fast = model.apply(voltages);
  const Vector exact = solver->solve(voltages);
  const double rel_err = norm2(fast - exact) / norm2(exact);
  std::printf("apply check: |fast - exact| / |exact| = %.2e\n", rel_err);
  // Hard gate (CI runs this under fault injection too): the sparse model must
  // stay within the deterministic route's error bound even when the fallback
  // chain had to recover injected faults along the way.
  if (!(rel_err < 1e-2)) {
    std::printf("FAIL: apply error %.2e exceeds the 1e-2 bound\n", rel_err);
    return 1;
  }
  std::printf("sample currents (contact 0, %zu): fast %.6f / %.6f, exact %.6f / %.6f\n",
              layout.n_contacts() / 2, fast[0], fast[layout.n_contacts() / 2], exact[0],
              exact[layout.n_contacts() / 2]);

  // 5. Reuse it: an identical request through the ModelCache is a lookup,
  //    not a re-extraction — zero additional black-box solves.
  ModelCache cache;
  cache.get_or_extract(*solver, layout, stack, request);  // miss: extracts once
  const long solves_before_hit = solver->solve_count();
  const ExtractionResult again = cache.get_or_extract(*solver, layout, stack, request);
  std::printf("cache: repeat request consumed %ld solves (hit: %s)\n",
              solver->solve_count() - solves_before_hit,
              again.report.from_cache ? "yes" : "no");
  return 0;
}
